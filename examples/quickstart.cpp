/**
 * @file
 * Quickstart: assemble a RISC-V program with the built-in assembler,
 * validate it on the golden functional simulator, then run it on a
 * DiAG processor (Table 2's F4C16 configuration) and inspect cycles,
 * IPC, and the datapath-reuse counters.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "sim/golden.hpp"

using namespace diag;

int
main()
{
    // 1. Write a program: sum of squares 1..100, kept in registers.
    const char *source = R"(
        _start:
            li a0, 0          # acc
            li a1, 1          # i
            li a2, 101
        loop:
            mul a3, a1, a1
            add a0, a0, a3
            addi a1, a1, 1
            bne a1, a2, loop
            ebreak
    )";

    // 2. Assemble it.
    const Program prog = assembler::assemble(source);
    std::printf("assembled %u bytes, entry at 0x%x\n",
                prog.totalBytes(), prog.entry);

    // 3. Check functional behaviour on the golden simulator.
    sim::GoldenSim golden(prog);
    const sim::RunResult gr = golden.run();
    std::printf("golden: a0 = %u after %llu instructions\n",
                golden.reg(10),
                static_cast<unsigned long long>(gr.inst_count));

    // 4. Run on a DiAG processor and look at the microarchitecture.
    core::DiagProcessor proc(core::DiagConfig::f4c16());
    const sim::RunStats rs = proc.run(prog);
    std::printf("diag %s: a0 = %u\n", proc.config().name.c_str(),
                proc.finalReg(0, 10));
    std::printf("  cycles            %llu\n",
                static_cast<unsigned long long>(rs.cycles));
    std::printf("  instructions      %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(rs.instructions),
                rs.ipc());
    std::printf("  activations       %.0f (%.0f reused the resident "
                "datapath)\n",
                rs.counters.get("activations"),
                rs.counters.get("reuse_activations"));
    std::printf("  I-line fetches    %.0f\n",
                rs.counters.get("iline_fetches"));
    std::printf("  decoded instrs    %.0f  <- does not scale with the "
                "%llu retired\n",
                rs.counters.get("decodes"),
                static_cast<unsigned long long>(rs.instructions));

    if (proc.finalReg(0, 10) != golden.reg(10)) {
        std::printf("MISMATCH against golden!\n");
        return 1;
    }
    std::printf("golden and DiAG agree.\n");
    return 0;
}
