/**
 * @file
 * Thread-pipelining demo (paper §4.4, §5.4): a data-parallel loop is
 * annotated with the simt_s / simt_e ISA extensions. DiAG's control
 * unit detects the region, spawns one thread per loop instance, and
 * pipelines them through the resident datapath — spatially replicating
 * the pipeline across free clusters.
 *
 * Build & run:  ./build/examples/simt_pipelining
 */
#include <cstdio>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "sim/golden.hpp"

using namespace diag;
using namespace diag::core;

namespace
{

// out[i] = 3 * in[i] + 1 over 1024 elements. rc (a2) carries the byte
// offset, stepping by 4 until 4096; every loop instance is a thread.
const char *kKernel = R"(
    .data
    .org 0x100000
    vin: .space 4096
    .org 0x102000
    vout: .space 4096
    .text
    _start:
        li t0, 0x100000
        li t1, 0
        li t2, 1024
    init:
        slli t3, t1, 2
        add t4, t0, t3
        sw t1, 0(t4)
        addi t1, t1, 1
        bne t1, t2, init
        li s2, 0x100000
        li s3, 0x102000
        li a2, 0              # rc: byte offset
        li a3, 4              # step
        li a4, 4096           # end
    head:
        simt_s a2, a3, a4, 1
        add t5, s2, a2
        lw t6, 0(t5)
        slli t0, t6, 1
        add t6, t6, t0        # 3 * in[i]
        addi t6, t6, 1
        add t5, s3, a2
        sw t6, 0(t5)
        simt_e a2, a4, head
        ebreak
)";

} // namespace

int
main()
{
    const Program prog = assembler::assemble(kKernel);

    // Reference run: the simt pair has well-defined scalar semantics
    // (a do-while loop), so any engine can execute the same binary.
    sim::GoldenSim golden(prog);
    golden.run();

    for (const bool simt_on : {false, true}) {
        DiagConfig cfg = DiagConfig::f4c32();
        cfg.simt_enabled = simt_on;
        DiagProcessor proc(cfg);
        const sim::RunStats rs = proc.run(prog);

        bool ok = true;
        for (u32 i = 0; i < 1024 && ok; ++i)
            ok = proc.memory().read32(0x102000 + 4 * i) ==
                 golden.memory().read32(0x102000 + 4 * i);

        std::printf("%-26s cycles=%7llu ipc=%5.2f  threads=%5.0f "
                    "replicas=%2.0f  output %s\n",
                    simt_on ? "F4C32 (simt pipelining)"
                            : "F4C32 (scalar loop)",
                    static_cast<unsigned long long>(rs.cycles),
                    rs.ipc(), rs.counters.get("simt_threads"),
                    rs.counters.get("simt_replicas"),
                    ok ? "matches golden" : "MISMATCH");
    }

    std::printf("\nWith pipelining, each loop instance becomes a "
                "thread carrying its own rc;\nthe region is replicated "
                "across free clusters and threads launch every\n"
                "`interval` cycles (paper Fig. 7: every PE busy, IPC "
                "scaling with PEs).\n");
    return 0;
}
