/**
 * @file
 * Datapath reuse demo (paper §4.3.2, Table 1): a dot-product loop runs
 * on two DiAG configurations. On F4C16 the loop body stays resident in
 * the ring and every iteration reuses the constructed datapath — no
 * fetch, no decode. With reuse disabled (ablation switch), every
 * backward branch pays the full fetch/decode path again.
 *
 * Build & run:  ./build/examples/loop_reuse
 */
#include <cstdio>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"

using namespace diag;
using namespace diag::core;

namespace
{

const char *kDotProduct = R"(
    .data
    .org 0x100000
    va: .space 4096
    .org 0x102000
    vb: .space 4096
    .text
    _start:
        li t0, 0x100000
        li t1, 0x102000
        li t2, 1024          # elements
        li t3, 0
        fmv.w.x fa0, x0
    init:                    # fill both vectors with i as float
        fcvt.s.w ft0, t3
        fsw ft0, 0(t0)
        fsw ft0, 0(t1)
        addi t0, t0, 4
        addi t1, t1, 4
        addi t3, t3, 1
        bne t3, t2, init
        li t0, 0x100000
        li t1, 0x102000
        li t3, 0
    dot:
        flw ft0, 0(t0)
        flw ft1, 0(t1)
        fmadd.s fa0, ft0, ft1, fa0
        addi t0, t0, 4
        addi t1, t1, 4
        addi t3, t3, 1
        bne t3, t2, dot
        fcvt.w.s a0, fa0
        ebreak
)";

void
runOne(const char *label, const DiagConfig &cfg)
{
    DiagProcessor proc(cfg);
    const sim::RunStats rs =
        proc.run(assembler::assemble(kDotProduct));
    std::printf("%-22s cycles=%8llu  ipc=%5.2f  fetches=%5.0f  "
                "decodes=%6.0f  reused=%6.0f\n",
                label, static_cast<unsigned long long>(rs.cycles),
                rs.ipc(), rs.counters.get("iline_fetches"),
                rs.counters.get("decodes"),
                rs.counters.get("reuse_activations"));
}

} // namespace

int
main()
{
    std::printf("dot product of 1024-element vectors "
                "(~7200 dynamic instructions in the kernel loop)\n\n");

    runOne("F4C16 (reuse)", DiagConfig::f4c16());

    DiagConfig no_reuse = DiagConfig::f4c16();
    no_reuse.name = "F4C16-noreuse";
    no_reuse.reuse_enabled = false;
    runOne("F4C16 (reuse off)", no_reuse);

    DiagConfig tiny = DiagConfig::f4c2();
    runOne("F4C2 (2 clusters)", tiny);

    std::printf(
        "\nWith reuse, the loop line is fetched and decoded once and "
        "the backward\nbranch re-activates the resident datapath "
        "(paper Table 1: 'DiAG (Reuse)'\nperforms no fetch, no decode, "
        "no rename - only execute).\n");
    return 0;
}
