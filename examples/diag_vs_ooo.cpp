/**
 * @file
 * Head-to-head demo: run one of the built-in benchmark kernels on the
 * DiAG model and on the out-of-order baseline, then compare cycles,
 * IPC, energy, and the energy breakdown — the comparison behind the
 * paper's Figures 9-12.
 *
 * Build & run:  ./build/examples/diag_vs_ooo [workload]
 *               (default workload: kmeans)
 */
#include <cstdio>
#include <string>

#include "harness/runner.hpp"

using namespace diag;
using namespace diag::harness;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "kmeans";
    const workloads::Workload w = workloads::findWorkload(name);
    std::printf("workload: %s (%s)\n  %s\n\n", w.name.c_str(),
                w.suite.c_str(), w.description.c_str());

    const EngineRun diag_run =
        runOnDiag(core::DiagConfig::f4c32(), w, {1, false});
    const EngineRun ooo_run =
        runOnOoo(ooo::OooConfig::baseline8(), w, {1, false});

    auto report = [](const char *label, const EngineRun &run) {
        std::printf("%-18s cycles=%8llu  ipc=%5.2f  energy=%8.2f uJ\n",
                    label,
                    static_cast<unsigned long long>(run.stats.cycles),
                    run.stats.ipc(),
                    run.energy.totalJoules() * 1e6);
        for (const auto &kv : run.energy.breakdown_pj)
            std::printf("    %-16s %5.1f%%\n", kv.first.c_str(),
                        100.0 * run.energy.fraction(kv.first));
    };
    report("DiAG F4C32", diag_run);
    report("OoO 8-wide", ooo_run);

    const double rel_perf =
        static_cast<double>(ooo_run.stats.cycles) /
        static_cast<double>(diag_run.stats.cycles);
    const double rel_eff =
        ooo_run.energy.totalPj() / diag_run.energy.totalPj();
    std::printf("\nrelative performance (baseline = 1.0): %.2fx\n",
                rel_perf);
    std::printf("relative energy efficiency:            %.2fx\n",
                rel_eff);
    std::printf("\nBoth engines executed the identical RISC-V binary "
                "and passed the\nworkload's output check.\n");
    return 0;
}
