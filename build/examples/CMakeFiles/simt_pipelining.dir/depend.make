# Empty dependencies file for simt_pipelining.
# This may be replaced when dependencies are built.
