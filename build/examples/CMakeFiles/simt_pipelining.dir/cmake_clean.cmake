file(REMOVE_RECURSE
  "../examples-bin/simt_pipelining"
  "../examples-bin/simt_pipelining.pdb"
  "CMakeFiles/simt_pipelining.dir/simt_pipelining.cpp.o"
  "CMakeFiles/simt_pipelining.dir/simt_pipelining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
