file(REMOVE_RECURSE
  "../examples-bin/diag_vs_ooo"
  "../examples-bin/diag_vs_ooo.pdb"
  "CMakeFiles/diag_vs_ooo.dir/diag_vs_ooo.cpp.o"
  "CMakeFiles/diag_vs_ooo.dir/diag_vs_ooo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_vs_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
