# Empty compiler generated dependencies file for diag_vs_ooo.
# This may be replaced when dependencies are built.
