# Empty compiler generated dependencies file for loop_reuse.
# This may be replaced when dependencies are built.
