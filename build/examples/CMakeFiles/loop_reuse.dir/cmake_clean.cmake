file(REMOVE_RECURSE
  "../examples-bin/loop_reuse"
  "../examples-bin/loop_reuse.pdb"
  "CMakeFiles/loop_reuse.dir/loop_reuse.cpp.o"
  "CMakeFiles/loop_reuse.dir/loop_reuse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
