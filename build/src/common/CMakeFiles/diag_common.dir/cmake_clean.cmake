file(REMOVE_RECURSE
  "CMakeFiles/diag_common.dir/log.cpp.o"
  "CMakeFiles/diag_common.dir/log.cpp.o.d"
  "CMakeFiles/diag_common.dir/stats.cpp.o"
  "CMakeFiles/diag_common.dir/stats.cpp.o.d"
  "libdiag_common.a"
  "libdiag_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
