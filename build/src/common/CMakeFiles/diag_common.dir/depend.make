# Empty dependencies file for diag_common.
# This may be replaced when dependencies are built.
