file(REMOVE_RECURSE
  "libdiag_common.a"
)
