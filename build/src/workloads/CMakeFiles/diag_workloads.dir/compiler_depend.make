# Empty compiler generated dependencies file for diag_workloads.
# This may be replaced when dependencies are built.
