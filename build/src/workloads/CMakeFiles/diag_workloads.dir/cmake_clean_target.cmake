file(REMOVE_RECURSE
  "libdiag_workloads.a"
)
