file(REMOVE_RECURSE
  "CMakeFiles/diag_workloads.dir/rodinia_a.cpp.o"
  "CMakeFiles/diag_workloads.dir/rodinia_a.cpp.o.d"
  "CMakeFiles/diag_workloads.dir/rodinia_b.cpp.o"
  "CMakeFiles/diag_workloads.dir/rodinia_b.cpp.o.d"
  "CMakeFiles/diag_workloads.dir/rodinia_c.cpp.o"
  "CMakeFiles/diag_workloads.dir/rodinia_c.cpp.o.d"
  "CMakeFiles/diag_workloads.dir/spec_a.cpp.o"
  "CMakeFiles/diag_workloads.dir/spec_a.cpp.o.d"
  "CMakeFiles/diag_workloads.dir/spec_b.cpp.o"
  "CMakeFiles/diag_workloads.dir/spec_b.cpp.o.d"
  "CMakeFiles/diag_workloads.dir/suites.cpp.o"
  "CMakeFiles/diag_workloads.dir/suites.cpp.o.d"
  "libdiag_workloads.a"
  "libdiag_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
