
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/rodinia_a.cpp" "src/workloads/CMakeFiles/diag_workloads.dir/rodinia_a.cpp.o" "gcc" "src/workloads/CMakeFiles/diag_workloads.dir/rodinia_a.cpp.o.d"
  "/root/repo/src/workloads/rodinia_b.cpp" "src/workloads/CMakeFiles/diag_workloads.dir/rodinia_b.cpp.o" "gcc" "src/workloads/CMakeFiles/diag_workloads.dir/rodinia_b.cpp.o.d"
  "/root/repo/src/workloads/rodinia_c.cpp" "src/workloads/CMakeFiles/diag_workloads.dir/rodinia_c.cpp.o" "gcc" "src/workloads/CMakeFiles/diag_workloads.dir/rodinia_c.cpp.o.d"
  "/root/repo/src/workloads/spec_a.cpp" "src/workloads/CMakeFiles/diag_workloads.dir/spec_a.cpp.o" "gcc" "src/workloads/CMakeFiles/diag_workloads.dir/spec_a.cpp.o.d"
  "/root/repo/src/workloads/spec_b.cpp" "src/workloads/CMakeFiles/diag_workloads.dir/spec_b.cpp.o" "gcc" "src/workloads/CMakeFiles/diag_workloads.dir/spec_b.cpp.o.d"
  "/root/repo/src/workloads/suites.cpp" "src/workloads/CMakeFiles/diag_workloads.dir/suites.cpp.o" "gcc" "src/workloads/CMakeFiles/diag_workloads.dir/suites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/diag_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diag_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/diag_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
