file(REMOVE_RECURSE
  "libdiag_mem.a"
)
