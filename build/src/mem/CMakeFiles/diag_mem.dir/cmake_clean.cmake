file(REMOVE_RECURSE
  "CMakeFiles/diag_mem.dir/cache.cpp.o"
  "CMakeFiles/diag_mem.dir/cache.cpp.o.d"
  "CMakeFiles/diag_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/diag_mem.dir/hierarchy.cpp.o.d"
  "libdiag_mem.a"
  "libdiag_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
