# Empty compiler generated dependencies file for diag_mem.
# This may be replaced when dependencies are built.
