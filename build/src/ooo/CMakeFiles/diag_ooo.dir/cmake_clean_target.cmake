file(REMOVE_RECURSE
  "libdiag_ooo.a"
)
