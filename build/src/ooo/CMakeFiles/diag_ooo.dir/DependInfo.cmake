
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ooo/config.cpp" "src/ooo/CMakeFiles/diag_ooo.dir/config.cpp.o" "gcc" "src/ooo/CMakeFiles/diag_ooo.dir/config.cpp.o.d"
  "/root/repo/src/ooo/core.cpp" "src/ooo/CMakeFiles/diag_ooo.dir/core.cpp.o" "gcc" "src/ooo/CMakeFiles/diag_ooo.dir/core.cpp.o.d"
  "/root/repo/src/ooo/predictor.cpp" "src/ooo/CMakeFiles/diag_ooo.dir/predictor.cpp.o" "gcc" "src/ooo/CMakeFiles/diag_ooo.dir/predictor.cpp.o.d"
  "/root/repo/src/ooo/processor.cpp" "src/ooo/CMakeFiles/diag_ooo.dir/processor.cpp.o" "gcc" "src/ooo/CMakeFiles/diag_ooo.dir/processor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/diag_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/diag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/diag_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/diag_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
