file(REMOVE_RECURSE
  "CMakeFiles/diag_ooo.dir/config.cpp.o"
  "CMakeFiles/diag_ooo.dir/config.cpp.o.d"
  "CMakeFiles/diag_ooo.dir/core.cpp.o"
  "CMakeFiles/diag_ooo.dir/core.cpp.o.d"
  "CMakeFiles/diag_ooo.dir/predictor.cpp.o"
  "CMakeFiles/diag_ooo.dir/predictor.cpp.o.d"
  "CMakeFiles/diag_ooo.dir/processor.cpp.o"
  "CMakeFiles/diag_ooo.dir/processor.cpp.o.d"
  "libdiag_ooo.a"
  "libdiag_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
