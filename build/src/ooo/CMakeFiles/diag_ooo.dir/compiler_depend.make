# Empty compiler generated dependencies file for diag_ooo.
# This may be replaced when dependencies are built.
