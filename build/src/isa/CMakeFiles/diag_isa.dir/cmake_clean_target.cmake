file(REMOVE_RECURSE
  "libdiag_isa.a"
)
