file(REMOVE_RECURSE
  "CMakeFiles/diag_isa.dir/decoder.cpp.o"
  "CMakeFiles/diag_isa.dir/decoder.cpp.o.d"
  "CMakeFiles/diag_isa.dir/disasm.cpp.o"
  "CMakeFiles/diag_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/diag_isa.dir/encoder.cpp.o"
  "CMakeFiles/diag_isa.dir/encoder.cpp.o.d"
  "CMakeFiles/diag_isa.dir/exec.cpp.o"
  "CMakeFiles/diag_isa.dir/exec.cpp.o.d"
  "CMakeFiles/diag_isa.dir/inst.cpp.o"
  "CMakeFiles/diag_isa.dir/inst.cpp.o.d"
  "CMakeFiles/diag_isa.dir/latency.cpp.o"
  "CMakeFiles/diag_isa.dir/latency.cpp.o.d"
  "CMakeFiles/diag_isa.dir/opcodes.cpp.o"
  "CMakeFiles/diag_isa.dir/opcodes.cpp.o.d"
  "libdiag_isa.a"
  "libdiag_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
