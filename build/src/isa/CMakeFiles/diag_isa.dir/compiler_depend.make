# Empty compiler generated dependencies file for diag_isa.
# This may be replaced when dependencies are built.
