
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/decoder.cpp" "src/isa/CMakeFiles/diag_isa.dir/decoder.cpp.o" "gcc" "src/isa/CMakeFiles/diag_isa.dir/decoder.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/isa/CMakeFiles/diag_isa.dir/disasm.cpp.o" "gcc" "src/isa/CMakeFiles/diag_isa.dir/disasm.cpp.o.d"
  "/root/repo/src/isa/encoder.cpp" "src/isa/CMakeFiles/diag_isa.dir/encoder.cpp.o" "gcc" "src/isa/CMakeFiles/diag_isa.dir/encoder.cpp.o.d"
  "/root/repo/src/isa/exec.cpp" "src/isa/CMakeFiles/diag_isa.dir/exec.cpp.o" "gcc" "src/isa/CMakeFiles/diag_isa.dir/exec.cpp.o.d"
  "/root/repo/src/isa/inst.cpp" "src/isa/CMakeFiles/diag_isa.dir/inst.cpp.o" "gcc" "src/isa/CMakeFiles/diag_isa.dir/inst.cpp.o.d"
  "/root/repo/src/isa/latency.cpp" "src/isa/CMakeFiles/diag_isa.dir/latency.cpp.o" "gcc" "src/isa/CMakeFiles/diag_isa.dir/latency.cpp.o.d"
  "/root/repo/src/isa/opcodes.cpp" "src/isa/CMakeFiles/diag_isa.dir/opcodes.cpp.o" "gcc" "src/isa/CMakeFiles/diag_isa.dir/opcodes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/diag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
