file(REMOVE_RECURSE
  "CMakeFiles/diag_energy.dir/diag_energy.cpp.o"
  "CMakeFiles/diag_energy.dir/diag_energy.cpp.o.d"
  "CMakeFiles/diag_energy.dir/ooo_energy.cpp.o"
  "CMakeFiles/diag_energy.dir/ooo_energy.cpp.o.d"
  "libdiag_energy.a"
  "libdiag_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
