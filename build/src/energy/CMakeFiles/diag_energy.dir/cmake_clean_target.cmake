file(REMOVE_RECURSE
  "libdiag_energy.a"
)
