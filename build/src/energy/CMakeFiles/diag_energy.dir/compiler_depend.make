# Empty compiler generated dependencies file for diag_energy.
# This may be replaced when dependencies are built.
