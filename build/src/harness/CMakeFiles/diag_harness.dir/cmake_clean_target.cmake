file(REMOVE_RECURSE
  "libdiag_harness.a"
)
