file(REMOVE_RECURSE
  "CMakeFiles/diag_harness.dir/runner.cpp.o"
  "CMakeFiles/diag_harness.dir/runner.cpp.o.d"
  "CMakeFiles/diag_harness.dir/table.cpp.o"
  "CMakeFiles/diag_harness.dir/table.cpp.o.d"
  "libdiag_harness.a"
  "libdiag_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
