# Empty dependencies file for diag_harness.
# This may be replaced when dependencies are built.
