
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diag/activation.cpp" "src/diag/CMakeFiles/diag_core.dir/activation.cpp.o" "gcc" "src/diag/CMakeFiles/diag_core.dir/activation.cpp.o.d"
  "/root/repo/src/diag/config.cpp" "src/diag/CMakeFiles/diag_core.dir/config.cpp.o" "gcc" "src/diag/CMakeFiles/diag_core.dir/config.cpp.o.d"
  "/root/repo/src/diag/processor.cpp" "src/diag/CMakeFiles/diag_core.dir/processor.cpp.o" "gcc" "src/diag/CMakeFiles/diag_core.dir/processor.cpp.o.d"
  "/root/repo/src/diag/ring.cpp" "src/diag/CMakeFiles/diag_core.dir/ring.cpp.o" "gcc" "src/diag/CMakeFiles/diag_core.dir/ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/diag_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/diag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/diag_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/diag_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
