file(REMOVE_RECURSE
  "libdiag_core.a"
)
