file(REMOVE_RECURSE
  "CMakeFiles/diag_core.dir/activation.cpp.o"
  "CMakeFiles/diag_core.dir/activation.cpp.o.d"
  "CMakeFiles/diag_core.dir/config.cpp.o"
  "CMakeFiles/diag_core.dir/config.cpp.o.d"
  "CMakeFiles/diag_core.dir/processor.cpp.o"
  "CMakeFiles/diag_core.dir/processor.cpp.o.d"
  "CMakeFiles/diag_core.dir/ring.cpp.o"
  "CMakeFiles/diag_core.dir/ring.cpp.o.d"
  "libdiag_core.a"
  "libdiag_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
