# Empty compiler generated dependencies file for diag_core.
# This may be replaced when dependencies are built.
