# Empty dependencies file for diag_sim.
# This may be replaced when dependencies are built.
