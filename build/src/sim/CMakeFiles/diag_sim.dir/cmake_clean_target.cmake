file(REMOVE_RECURSE
  "libdiag_sim.a"
)
