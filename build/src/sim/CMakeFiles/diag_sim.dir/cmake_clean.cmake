file(REMOVE_RECURSE
  "CMakeFiles/diag_sim.dir/fuzz.cpp.o"
  "CMakeFiles/diag_sim.dir/fuzz.cpp.o.d"
  "CMakeFiles/diag_sim.dir/golden.cpp.o"
  "CMakeFiles/diag_sim.dir/golden.cpp.o.d"
  "libdiag_sim.a"
  "libdiag_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
