file(REMOVE_RECURSE
  "libdiag_asm.a"
)
