file(REMOVE_RECURSE
  "CMakeFiles/diag_asm.dir/assembler.cpp.o"
  "CMakeFiles/diag_asm.dir/assembler.cpp.o.d"
  "CMakeFiles/diag_asm.dir/program.cpp.o"
  "CMakeFiles/diag_asm.dir/program.cpp.o.d"
  "CMakeFiles/diag_asm.dir/regnames.cpp.o"
  "CMakeFiles/diag_asm.dir/regnames.cpp.o.d"
  "libdiag_asm.a"
  "libdiag_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
