# Empty compiler generated dependencies file for diag_asm.
# This may be replaced when dependencies are built.
