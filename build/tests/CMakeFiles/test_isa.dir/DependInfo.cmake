
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/isa/test_decoder.cpp" "tests/CMakeFiles/test_isa.dir/isa/test_decoder.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/isa/test_decoder.cpp.o.d"
  "/root/repo/tests/isa/test_disasm.cpp" "tests/CMakeFiles/test_isa.dir/isa/test_disasm.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/isa/test_disasm.cpp.o.d"
  "/root/repo/tests/isa/test_exec.cpp" "tests/CMakeFiles/test_isa.dir/isa/test_exec.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/isa/test_exec.cpp.o.d"
  "/root/repo/tests/isa/test_roundtrip.cpp" "tests/CMakeFiles/test_isa.dir/isa/test_roundtrip.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/isa/test_roundtrip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/diag_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/diag_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/diag_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/ooo/CMakeFiles/diag_ooo.dir/DependInfo.cmake"
  "/root/repo/build/src/diag/CMakeFiles/diag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/diag_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/diag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/diag_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/diag_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
