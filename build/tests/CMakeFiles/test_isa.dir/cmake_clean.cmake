file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/isa/test_decoder.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_decoder.cpp.o.d"
  "CMakeFiles/test_isa.dir/isa/test_disasm.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_disasm.cpp.o.d"
  "CMakeFiles/test_isa.dir/isa/test_exec.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_exec.cpp.o.d"
  "CMakeFiles/test_isa.dir/isa/test_roundtrip.cpp.o"
  "CMakeFiles/test_isa.dir/isa/test_roundtrip.cpp.o.d"
  "test_isa"
  "test_isa.pdb"
  "test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
