file(REMOVE_RECURSE
  "CMakeFiles/test_diag.dir/diag/test_activation.cpp.o"
  "CMakeFiles/test_diag.dir/diag/test_activation.cpp.o.d"
  "CMakeFiles/test_diag.dir/diag/test_differential.cpp.o"
  "CMakeFiles/test_diag.dir/diag/test_differential.cpp.o.d"
  "CMakeFiles/test_diag.dir/diag/test_processor.cpp.o"
  "CMakeFiles/test_diag.dir/diag/test_processor.cpp.o.d"
  "CMakeFiles/test_diag.dir/diag/test_ring_control.cpp.o"
  "CMakeFiles/test_diag.dir/diag/test_ring_control.cpp.o.d"
  "CMakeFiles/test_diag.dir/diag/test_simt.cpp.o"
  "CMakeFiles/test_diag.dir/diag/test_simt.cpp.o.d"
  "test_diag"
  "test_diag.pdb"
  "test_diag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
