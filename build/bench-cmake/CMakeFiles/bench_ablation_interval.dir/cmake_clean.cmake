file(REMOVE_RECURSE
  "../bench/bench_ablation_interval"
  "../bench/bench_ablation_interval.pdb"
  "CMakeFiles/bench_ablation_interval.dir/bench_ablation_interval.cpp.o"
  "CMakeFiles/bench_ablation_interval.dir/bench_ablation_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
