# Empty dependencies file for bench_ablation_memlanes.
# This may be replaced when dependencies are built.
