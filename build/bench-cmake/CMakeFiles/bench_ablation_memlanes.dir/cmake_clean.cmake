file(REMOVE_RECURSE
  "../bench/bench_ablation_memlanes"
  "../bench/bench_ablation_memlanes.pdb"
  "CMakeFiles/bench_ablation_memlanes.dir/bench_ablation_memlanes.cpp.o"
  "CMakeFiles/bench_ablation_memlanes.dir/bench_ablation_memlanes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memlanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
