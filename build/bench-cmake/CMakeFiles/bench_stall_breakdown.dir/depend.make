# Empty dependencies file for bench_stall_breakdown.
# This may be replaced when dependencies are built.
