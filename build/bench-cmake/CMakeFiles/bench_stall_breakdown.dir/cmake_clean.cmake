file(REMOVE_RECURSE
  "../bench/bench_stall_breakdown"
  "../bench/bench_stall_breakdown.pdb"
  "CMakeFiles/bench_stall_breakdown.dir/bench_stall_breakdown.cpp.o"
  "CMakeFiles/bench_stall_breakdown.dir/bench_stall_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stall_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
