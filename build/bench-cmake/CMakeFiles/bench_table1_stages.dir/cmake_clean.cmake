file(REMOVE_RECURSE
  "../bench/bench_table1_stages"
  "../bench/bench_table1_stages.pdb"
  "CMakeFiles/bench_table1_stages.dir/bench_table1_stages.cpp.o"
  "CMakeFiles/bench_table1_stages.dir/bench_table1_stages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
