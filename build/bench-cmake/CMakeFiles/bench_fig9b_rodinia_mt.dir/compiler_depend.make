# Empty compiler generated dependencies file for bench_fig9b_rodinia_mt.
# This may be replaced when dependencies are built.
