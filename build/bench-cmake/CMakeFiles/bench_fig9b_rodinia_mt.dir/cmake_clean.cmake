file(REMOVE_RECURSE
  "../bench/bench_fig9b_rodinia_mt"
  "../bench/bench_fig9b_rodinia_mt.pdb"
  "CMakeFiles/bench_fig9b_rodinia_mt.dir/bench_fig9b_rodinia_mt.cpp.o"
  "CMakeFiles/bench_fig9b_rodinia_mt.dir/bench_fig9b_rodinia_mt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_rodinia_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
