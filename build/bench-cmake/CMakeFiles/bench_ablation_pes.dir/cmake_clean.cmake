file(REMOVE_RECURSE
  "../bench/bench_ablation_pes"
  "../bench/bench_ablation_pes.pdb"
  "CMakeFiles/bench_ablation_pes.dir/bench_ablation_pes.cpp.o"
  "CMakeFiles/bench_ablation_pes.dir/bench_ablation_pes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
