# Empty dependencies file for bench_ablation_pes.
# This may be replaced when dependencies are built.
