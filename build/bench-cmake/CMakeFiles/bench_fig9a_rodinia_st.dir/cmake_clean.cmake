file(REMOVE_RECURSE
  "../bench/bench_fig9a_rodinia_st"
  "../bench/bench_fig9a_rodinia_st.pdb"
  "CMakeFiles/bench_fig9a_rodinia_st.dir/bench_fig9a_rodinia_st.cpp.o"
  "CMakeFiles/bench_fig9a_rodinia_st.dir/bench_fig9a_rodinia_st.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_rodinia_st.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
