# Empty dependencies file for bench_fig9a_rodinia_st.
# This may be replaced when dependencies are built.
