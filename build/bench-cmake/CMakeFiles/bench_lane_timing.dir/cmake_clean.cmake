file(REMOVE_RECURSE
  "../bench/bench_lane_timing"
  "../bench/bench_lane_timing.pdb"
  "CMakeFiles/bench_lane_timing.dir/bench_lane_timing.cpp.o"
  "CMakeFiles/bench_lane_timing.dir/bench_lane_timing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lane_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
