# Empty dependencies file for bench_fig10a_spec_st.
# This may be replaced when dependencies are built.
