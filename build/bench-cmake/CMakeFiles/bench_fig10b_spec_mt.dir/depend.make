# Empty dependencies file for bench_fig10b_spec_mt.
# This may be replaced when dependencies are built.
