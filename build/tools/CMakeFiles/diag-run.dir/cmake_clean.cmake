file(REMOVE_RECURSE
  "../tools-bin/diag-run"
  "../tools-bin/diag-run.pdb"
  "CMakeFiles/diag-run.dir/diag_run.cpp.o"
  "CMakeFiles/diag-run.dir/diag_run.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
