# Empty compiler generated dependencies file for diag-run.
# This may be replaced when dependencies are built.
