/**
 * @file
 * Table 2 reproduction: the four DiAG hardware configurations used for
 * evaluation, printed from the config presets the other benches use.
 */
#include <cstdio>

#include "diag/config.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::harness;

namespace
{

std::string
kb(u32 bytes)
{
    if (bytes >= 1024 * 1024)
        return std::to_string(bytes / (1024 * 1024)) + "MB";
    return std::to_string(bytes / 1024) + "KB";
}

} // namespace

int
main()
{
    Table t("Table 2: DiAG configurations used for evaluation");
    t.header({"Configuration", "I4C2", "F4C2", "F4C16", "F4C32"});
    const DiagConfig cfgs[4] = {DiagConfig::i4c2(), DiagConfig::f4c2(),
                                DiagConfig::f4c16(),
                                DiagConfig::f4c32()};
    auto row = [&](const char *name, auto getter) {
        std::vector<std::string> cells{name};
        for (const DiagConfig &c : cfgs)
            cells.push_back(getter(c));
        t.row(cells);
    };
    row("ISA", [](const DiagConfig &c) {
        return std::string(c.fp_supported ? "RV32IMF" : "RV32I");
    });
    row("PEs / Cluster", [](const DiagConfig &c) {
        return std::to_string(c.pes_per_cluster);
    });
    row("Total Clusters", [](const DiagConfig &c) {
        return std::to_string(c.total_clusters);
    });
    row("Total PEs", [](const DiagConfig &c) {
        return std::to_string(c.totalPes());
    });
    row("Freq. (Sim.)", [](const DiagConfig &c) {
        return c.fp_supported ? Table::num(c.freq_ghz, 1) + "GHz"
                              : std::string("N/A");
    });
    row("L1I Cache Size", [](const DiagConfig &c) {
        return kb(c.mem.l1i.size_bytes);
    });
    row("L1D Cache Size", [](const DiagConfig &c) {
        return kb(c.mem.l1d.size_bytes);
    });
    row("L2 Cache Size", [](const DiagConfig &c) {
        return c.fp_supported ? kb(c.mem.l2.size_bytes)
                              : std::string("N/A");
    });
    row("Lane buffer every", [](const DiagConfig &c) {
        return std::to_string(c.segment_size) + " PEs";
    });
    t.print();

    std::printf("\nPaper Table 2: I4C2/F4C2 = 32 PEs, F4C16 = 256 PEs, "
                "F4C32 = 512 PEs;\n32KB L1I; 32/64/128/128KB L1D; 4MB "
                "L2; 2.0GHz simulated clock.\n");
    return 0;
}
