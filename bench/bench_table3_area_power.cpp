/**
 * @file
 * Table 3 reproduction: hardware area and power breakdown by component
 * for the F4C32 configuration, from the Table-3-seeded component
 * library and the area roll-up, printed against the paper's values.
 */
#include <cstdio>

#include "diag/config.hpp"
#include "energy/components.hpp"
#include "energy/diag_energy.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::energy;
using namespace diag::harness;

int
main()
{
    const DiagConfig cfg = DiagConfig::f4c32();
    const AreaReport area = diagArea(cfg);

    Table t("Table 3: area and power breakdown (45nm, 1GHz synthesis)");
    t.header({"Component", "Area", "Power", "Paper area", "Paper power"});
    t.row({"F4C32 (TOP)",
           Table::num(area.totalMm2(), 2) + " mm2",
           Table::num(diagPeakPowerW(cfg), 2) + " W",
           "93.07 mm2*", "74.30 W*"});
    t.row({"PCLUSTER",
           Table::num((16.0 * (kPeWithFpu.area_um2 + kRegLane.area_um2) +
                       kClusterCtrlAreaUm2) * 1e-6, 3) + " mm2",
           Table::num(kClusterPjCycle * 1e-3, 3) + " W",
           "2.208 mm2*", "2.104 W*"});
    t.row({"PE (w/ FPU)", Table::num(kPeWithFpu.area_um2, 0) + " um2",
           Table::num(kPeWithFpu.dyn_pj_cycle, 1) + " mW",
           "97014 um2", "120.4 mW"});
    t.row({"REGLANE", Table::num(kRegLane.area_um2, 0) + " um2",
           Table::num(kRegLane.dyn_pj_cycle, 3) + " mW",
           "15731 um2", "3.063 mW"});
    t.row({"INT ALU", Table::num(kIntAlu.area_um2, 1) + " um2",
           Table::num(kIntAlu.dyn_pj_cycle, 3) + " mW",
           "1375.4 um2", "0.774 mW"});
    t.row({"FPU (MUL / DIV)", Table::num(kFpu.area_um2, 0) + " um2",
           Table::num(kFpu.dyn_pj_cycle, 1) + " mW",
           "66592 um2", "105.2 mW"});
    t.row({"RV_DECODER", Table::num(kRvDecoder.area_um2, 1) + " um2",
           Table::num(kRvDecoder.dyn_pj_cycle, 3) + " mW",
           "244.6 um2", "0.019 mW"});
    t.print();

    Table b("F4C32 area roll-up by category");
    b.header({"Category", "Area (mm2)", "Share"});
    for (const auto &kv : area.breakdown_mm2)
        b.row({kv.first, Table::num(kv.second, 2),
               Table::num(100.0 * kv.second / area.totalMm2(), 1) +
                   "%"});
    b.print();

    // §6.1.1 observations.
    std::printf("\nFPU share of a PE: %.1f%% (paper: 68%%)\n",
                100.0 * kFpu.area_um2 / kPeWithFpu.area_um2);
    std::printf("Register-lane share of a cluster: %.1f%% "
                "(paper: 16.3%% incl. read network)\n",
                100.0 * 16.0 * kRegLane.area_um2 / kClusterAreaUm2);
    return 0;
}
