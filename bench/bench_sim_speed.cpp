/**
 * @file
 * Google-benchmark microbenchmarks of the simulators themselves:
 * host-side throughput of the DiAG model, the OoO model, and the
 * golden interpreter (simulated instructions per host second).
 */
#include <benchmark/benchmark.h>

// Throughput numbers from an unoptimized build measure the compiler,
// not the simulator, and have been committed as baselines by mistake
// before. Refuse to compile unless the caller explicitly opts in.
#if !defined(__OPTIMIZE__) && !defined(DIAG_ALLOW_DEBUG_BENCH)
#error "bench_sim_speed requires an optimized build: configure with \
-DCMAKE_BUILD_TYPE=Release (or pass -DDIAG_ALLOW_DEBUG_BENCH=ON to \
measure a debug build anyway)"
#endif

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/processor.hpp"
#include "obs/sim_profile.hpp"
#include "ooo/processor.hpp"
#include "sim/golden.hpp"

using namespace diag;

namespace
{

const char *kKernel = R"(
    _start:
        li a0, 0
        li a1, 2000
    loop:
        addi t0, a0, 3
        slli t1, t0, 2
        xor t2, t1, a0
        and t3, t2, t1
        addi a0, a0, 1
        bne a0, a1, loop
        ebreak
)";

void
BM_GoldenSim(benchmark::State &state)
{
    const Program p = assembler::assemble(kKernel);
    u64 insts = 0;
    for (auto _ : state) {
        sim::GoldenSim sim(p);
        const sim::RunResult r = sim.run();
        insts += r.inst_count;
    }
    state.counters["sim_inst_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GoldenSim);

void
BM_DiagModel(benchmark::State &state)
{
    const Program p = assembler::assemble(kKernel);
    u64 insts = 0;
    for (auto _ : state) {
        core::DiagProcessor proc(core::DiagConfig::f4c32());
        const sim::RunStats rs = proc.run(p);
        insts += rs.instructions;
    }
    state.counters["sim_inst_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DiagModel);

/**
 * The same kernel with skip-idle scheduling disabled (dense per-PE
 * stepping, the pre-batcher behavior). The BM_DiagModel /
 * BM_DiagModelDense ratio is the speedup of the steady-state loop
 * batcher; tools/check_bench.py gates on it.
 */
void
BM_DiagModelDense(benchmark::State &state)
{
    const Program p = assembler::assemble(kKernel);
    u64 insts = 0;
    for (auto _ : state) {
        core::DiagConfig cfg = core::DiagConfig::f4c32();
        cfg.dense_loop = true;
        core::DiagProcessor proc(cfg);
        const sim::RunStats rs = proc.run(p);
        insts += rs.instructions;
    }
    state.counters["sim_inst_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DiagModelDense);

void
BM_OooModel(benchmark::State &state)
{
    const Program p = assembler::assemble(kKernel);
    u64 insts = 0;
    for (auto _ : state) {
        ooo::OooProcessor proc(ooo::OooConfig::baseline8());
        const sim::RunStats rs = proc.run(p);
        insts += rs.instructions;
    }
    state.counters["sim_inst_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooModel);

void
BM_Assembler(benchmark::State &state)
{
    for (auto _ : state) {
        const Program p = assembler::assemble(kKernel);
        benchmark::DoNotOptimize(p.entry);
    }
}
BENCHMARK(BM_Assembler);

} // namespace

// BENCHMARK_MAIN() plus context the stock JSON lacks: the benchmark
// library's own "library_build_type" reports how *libbenchmark* was
// compiled, so record whether the simulator under test was optimized
// and which build type produced it.
int
main(int argc, char **argv)
{
#ifdef __OPTIMIZE__
    benchmark::AddCustomContext("diag_optimized", "true");
#else
    benchmark::AddCustomContext("diag_optimized", "false");
#endif
#ifdef DIAG_BENCH_BUILD_TYPE
    benchmark::AddCustomContext("diag_build_type",
                                DIAG_BENCH_BUILD_TYPE);
#endif
    // One profiled run of the benchmark kernel, so BENCH_sim_speed.json
    // records how much of the measured loop the skip-idle batcher
    // actually covers — when sim_inst_per_s moves, this says whether
    // the batcher's reach changed or the per-activation cost did.
    {
        const Program p = assembler::assemble(kKernel);
        obs::SimProfile prof;
        core::DiagProcessor proc(core::DiagConfig::f4c32());
        proc.attachObs(&prof);
        proc.run(p);
        proc.attachObs(nullptr);
        const auto u = [](u64 v) {
            return static_cast<unsigned long long>(v);
        };
        benchmark::AddCustomContext(
            "diag_batched_fraction",
            detail::vformat("%.4f", prof.batchedFraction()));
        benchmark::AddCustomContext(
            "diag_batched_iterations",
            detail::vformat("%llu", u(prof.batched_iterations)));
        benchmark::AddCustomContext(
            "diag_dense_activations",
            detail::vformat("%llu", u(prof.dense_activations)));
        benchmark::AddCustomContext(
            "diag_batch_jumps",
            detail::vformat("%llu", u(prof.batch_jumps)));
        benchmark::AddCustomContext(
            "diag_lines_batchable",
            detail::vformat("%llu", u(prof.lines_batchable)));
        benchmark::AddCustomContext(
            "diag_disqualified",
            detail::vformat("%llu", u(prof.disqualifiedTotal())));
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
