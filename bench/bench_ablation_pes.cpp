/**
 * @file
 * Ablation: PE-count sweep on serial code. Reproduces the paper's
 * observation that, "much like large ROB sizes, no noticeable
 * improvement can be gained with more than 256 PEs for serial
 * programs" (§7.2.1).
 */
#include <cstdio>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::harness;

int
main()
{
    const unsigned cluster_counts[] = {2, 4, 8, 16, 32};
    const char *names[] = {"backprop", "hotspot", "kmeans", "srad"};

    Table t("Ablation: cycles vs total PEs (serial execution)");
    std::vector<std::string> head{"benchmark"};
    for (unsigned c : cluster_counts)
        head.push_back(std::to_string(16 * c) + " PEs");
    t.header(head);

    for (const char *name : names) {
        const workloads::Workload w = workloads::findWorkload(name);
        std::vector<std::string> cells{name};
        double first = 0.0;
        for (unsigned clusters : cluster_counts) {
            DiagConfig cfg = DiagConfig::f4c32();
            cfg.total_clusters = clusters;
            cfg.name = "F4C" + std::to_string(clusters);
            const EngineRun run = runOnDiag(cfg, w, {1, false});
            const double cycles =
                static_cast<double>(run.stats.cycles);
            if (first == 0.0)
                first = cycles;
            cells.push_back(Table::num(cycles, 0) + " (" +
                            Table::num(first / cycles, 2) + "x)");
        }
        t.row(cells);
    }
    t.print();
    std::printf("\nExpected shape: gains flatten beyond 256 PEs — "
                "serial ILP saturates\njust like a larger ROB stops "
                "helping an OoO core (§7.2.1).\n");
    return 0;
}
