/**
 * @file
 * Ablation: memory lanes (store-to-load forwarding, §5.2) on/off.
 */
#include <cstdio>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::harness;

int
main()
{
    Table t("Ablation: memory lanes on vs off (F4C32, serial)");
    t.header({"benchmark", "cycles (lanes)", "cycles (no lanes)",
              "speedup", "forwards"});
    const char *names[] = {"nw", "pathfinder", "lud", "xz", "bfs",
                           "hotspot"};
    for (const char *name : names) {
        const workloads::Workload w = workloads::findWorkload(name);
        DiagConfig on = DiagConfig::f4c32();
        DiagConfig off = DiagConfig::f4c32();
        off.mem_lanes_enabled = false;
        off.name = "F4C32-nomemlanes";
        const EngineRun a = runOnDiag(on, w, {1, false});
        const EngineRun b = runOnDiag(off, w, {1, false});
        t.row({name,
               Table::num(static_cast<double>(a.stats.cycles), 0),
               Table::num(static_cast<double>(b.stats.cycles), 0),
               Table::num(static_cast<double>(b.stats.cycles) /
                              static_cast<double>(a.stats.cycles),
                          2) + "x",
               Table::num(a.stats.counters.get("memlane_fwd"), 0)});
    }
    t.print();
    return 0;
}
