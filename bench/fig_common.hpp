/**
 * @file
 * Shared driver for the figure benches: runs a workload suite on the
 * baseline and a set of DiAG configurations and prints relative
 * performance / energy-efficiency series the way the paper's figures
 * report them (baseline = 1.0).
 *
 * All engine runs fan out through harness::runMatrix /
 * harness::validateBoundMany onto host worker threads (--jobs N,
 * default one per hardware thread); results merge in cell order, so
 * the printed tables are byte-identical for any job count.
 */
#ifndef DIAG_BENCH_FIG_COMMON_HPP
#define DIAG_BENCH_FIG_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "harness/validate.hpp"

namespace diag::bench
{

using harness::BoundCell;
using harness::EngineRun;
using harness::MatrixCell;
using harness::RunSpec;
using harness::Table;

/**
 * Parse the shared bench command line: `[--jobs N]`. Returns the host
 * job count (0 = one per hardware thread, the default).
 */
inline unsigned
parseJobs(int argc, char **argv)
{
    unsigned jobs = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs") {
            fatal_if(i + 1 >= argc, "missing value for --jobs");
            jobs = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--jobs N]\n  --jobs N   host "
                        "threads (default: hardware concurrency)\n",
                        argv[0]);
            std::exit(0);
        } else {
            fatal("unknown option '%s' (benches take only --jobs N)",
                  arg.c_str());
        }
    }
    return jobs;
}

/** Relative performance of single-threaded DiAG configs vs the
 *  1-core baseline (Fig. 9a / Fig. 10a shape). */
inline void
relPerfSingleThread(const std::string &title,
                    const std::vector<workloads::Workload> &suite,
                    double paper_avg_32, double paper_avg_256,
                    double paper_avg_512, unsigned jobs = 0)
{
    const auto cfgs = harness::diagSingleThreadConfigs();
    // One matrix cell per (workload, engine config), stride
    // 1 + cfgs.size() per workload: baseline first, then each DiAG
    // config. Bound validation runs per workload on the largest config.
    const size_t stride = 1 + cfgs.size();
    std::vector<MatrixCell> cells;
    std::vector<BoundCell> bounds;
    for (const auto &w : suite) {
        cells.push_back({.w = &w,
                         .spec = {1, false},
                         .on_diag = false,
                         .diag_cfg = {},
                         .ooo_cfg = ooo::OooConfig::baseline8()});
        for (const auto &cfg : cfgs)
            cells.push_back({.w = &w,
                             .spec = {1, false},
                             .on_diag = true,
                             .diag_cfg = cfg,
                             .ooo_cfg = {}});
        bounds.push_back({.cfg = cfgs.back(), .w = &w,
                          .use_simt = false});
    }
    const std::vector<EngineRun> runs = harness::runMatrix(cells, jobs);
    const std::vector<harness::ValidationReport> reps =
        harness::validateBoundMany(bounds, jobs);

    Table t(title);
    t.header({"benchmark", "DiAG-32PE", "DiAG-256PE", "DiAG-512PE",
              "meas/bound", "baseline IPC"});
    std::vector<std::vector<double>> rels(cfgs.size());
    for (size_t i = 0; i < suite.size(); ++i) {
        const EngineRun &base = runs[i * stride];
        std::vector<std::string> cells_out{suite[i].name};
        for (size_t c = 0; c < cfgs.size(); ++c) {
            const EngineRun &run = runs[i * stride + 1 + c];
            const double rel = static_cast<double>(base.stats.cycles) /
                               static_cast<double>(run.stats.cycles);
            rels[c].push_back(rel);
            cells_out.push_back(Table::num(rel, 2) + "x");
        }
        // Measured cycles over the analyzer's provable lower bound on
        // the largest config: >= 1.0 by construction, and how close to
        // 1.0 says how much of the runtime the static model explains.
        cells_out.push_back(Table::num(
            reps[i].measured_cycles / reps[i].program_lower_bound, 2));
        cells_out.push_back(Table::num(base.stats.ipc(), 2));
        t.row(cells_out);
    }
    t.row({"geomean", Table::num(harness::geomean(rels[0]), 2) + "x",
           Table::num(harness::geomean(rels[1]), 2) + "x",
           Table::num(harness::geomean(rels[2]), 2) + "x", "", ""});
    t.print();
    std::printf("\nPaper-reported averages: %.2fx (32 PE), %.2fx "
                "(256 PE), %.2fx (512 PE)\n",
                paper_avg_32, paper_avg_256, paper_avg_512);
}

/** Relative multithreaded performance: 16x2 DiAG rings (and the
 *  MT+SIMT arrangement where a simt variant exists) vs the 12-core
 *  baseline (Fig. 9b / Fig. 10b shape). */
inline void
relPerfMultiThread(const std::string &title,
                   const std::vector<workloads::Workload> &suite,
                   double paper_avg_mt, double paper_avg_simt,
                   unsigned jobs = 0)
{
    // Cells per workload: baseline, DiAG MT, then (simt workloads
    // only) the MT+SIMT run; bound validation only for simt variants.
    std::vector<MatrixCell> cells;
    std::vector<BoundCell> bounds;
    std::vector<size_t> first_cell(suite.size());
    std::vector<int> bound_of(suite.size(), -1);
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto &w = suite[i];
        first_cell[i] = cells.size();
        cells.push_back({.w = &w,
                         .spec = {harness::kOooMtThreads, false},
                         .on_diag = false,
                         .diag_cfg = {},
                         .ooo_cfg = ooo::OooConfig::multicore12()});
        cells.push_back({.w = &w,
                         .spec = {harness::kDiagMtThreads, false},
                         .on_diag = true,
                         .diag_cfg = harness::diagMultiThreadConfig(),
                         .ooo_cfg = {}});
        if (!w.asm_simt.empty()) {
            cells.push_back({.w = &w,
                             .spec = {harness::kDiagMtSimtThreads, true},
                             .on_diag = true,
                             .diag_cfg = harness::diagMtSimtConfig(),
                             .ooo_cfg = {}});
            bound_of[i] = static_cast<int>(bounds.size());
            bounds.push_back({.cfg = harness::diagMtSimtConfig(),
                              .w = &w,
                              .use_simt = true});
        }
    }
    const std::vector<EngineRun> runs = harness::runMatrix(cells, jobs);
    const std::vector<harness::ValidationReport> reps =
        harness::validateBoundMany(bounds, jobs);

    Table t(title);
    t.header({"benchmark", "DiAG MT(16x2)", "DiAG MT+SIMT(8x4)",
              "meas/bound", "threads"});
    std::vector<double> mt_rels;
    std::vector<double> simt_rels;
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto &w = suite[i];
        const EngineRun &base = runs[first_cell[i]];
        const EngineRun &mt = runs[first_cell[i] + 1];
        const double rel_mt = static_cast<double>(base.stats.cycles) /
                              static_cast<double>(mt.stats.cycles);
        mt_rels.push_back(rel_mt);
        std::string simt_cell = "-";
        std::string bound_cell = "-";
        if (!w.asm_simt.empty()) {
            const EngineRun &st = runs[first_cell[i] + 2];
            const double rel =
                static_cast<double>(base.stats.cycles) /
                static_cast<double>(st.stats.cycles);
            simt_rels.push_back(rel);
            simt_cell = Table::num(rel, 2) + "x";
            // Single-thread simt run vs the analyzer's provable lower
            // bound (>= 1.0 by construction; near 1.0 means the
            // static model explains most of the runtime).
            const harness::ValidationReport &rep =
                reps[static_cast<size_t>(bound_of[i])];
            bound_cell = Table::num(
                rep.measured_cycles / rep.program_lower_bound, 2);
        } else {
            simt_rels.push_back(rel_mt);  // paper: purple == blue bar
        }
        t.row({w.name, Table::num(rel_mt, 2) + "x", simt_cell,
               bound_cell,
               w.partitionable ? std::to_string(
                                     harness::kDiagMtThreads)
                               : "1"});
    }
    t.row({"geomean", Table::num(harness::geomean(mt_rels), 2) + "x",
           Table::num(harness::geomean(simt_rels), 2) + "x", "", ""});
    t.print();
    std::printf("\nPaper-reported averages: %.2fx (MT), %.2fx "
                "(MT with SIMT pipelining)\n",
                paper_avg_mt, paper_avg_simt);
}

} // namespace diag::bench

#endif // DIAG_BENCH_FIG_COMMON_HPP
