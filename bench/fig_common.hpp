/**
 * @file
 * Shared driver for the figure benches: runs a workload suite on the
 * baseline and a set of DiAG configurations and prints relative
 * performance / energy-efficiency series the way the paper's figures
 * report them (baseline = 1.0).
 */
#ifndef DIAG_BENCH_FIG_COMMON_HPP
#define DIAG_BENCH_FIG_COMMON_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "harness/validate.hpp"

namespace diag::bench
{

using harness::EngineRun;
using harness::RunSpec;
using harness::Table;

/** Relative performance of single-threaded DiAG configs vs the
 *  1-core baseline (Fig. 9a / Fig. 10a shape). */
inline void
relPerfSingleThread(const std::string &title,
                    const std::vector<workloads::Workload> &suite,
                    double paper_avg_32, double paper_avg_256,
                    double paper_avg_512)
{
    const auto cfgs = harness::diagSingleThreadConfigs();
    Table t(title);
    t.header({"benchmark", "DiAG-32PE", "DiAG-256PE", "DiAG-512PE",
              "meas/bound", "baseline IPC"});
    std::vector<std::vector<double>> rels(cfgs.size());
    for (const auto &w : suite) {
        const EngineRun base =
            harness::runOnOoo(ooo::OooConfig::baseline8(), w, {1, false});
        std::vector<std::string> cells{w.name};
        for (size_t c = 0; c < cfgs.size(); ++c) {
            const EngineRun run = harness::runOnDiag(cfgs[c], w,
                                                     {1, false});
            const double rel = static_cast<double>(base.stats.cycles) /
                               static_cast<double>(run.stats.cycles);
            rels[c].push_back(rel);
            cells.push_back(Table::num(rel, 2) + "x");
        }
        // Measured cycles over the analyzer's provable lower bound on
        // the largest config: >= 1.0 by construction, and how close to
        // 1.0 says how much of the runtime the static model explains.
        const harness::ValidationReport rep = harness::validateBound(
            cfgs.back(), w, /*use_simt=*/false);
        cells.push_back(Table::num(
            rep.measured_cycles / rep.program_lower_bound, 2));
        cells.push_back(Table::num(base.stats.ipc(), 2));
        t.row(cells);
    }
    t.row({"geomean", Table::num(harness::geomean(rels[0]), 2) + "x",
           Table::num(harness::geomean(rels[1]), 2) + "x",
           Table::num(harness::geomean(rels[2]), 2) + "x", "", ""});
    t.print();
    std::printf("\nPaper-reported averages: %.2fx (32 PE), %.2fx "
                "(256 PE), %.2fx (512 PE)\n",
                paper_avg_32, paper_avg_256, paper_avg_512);
}

/** Relative multithreaded performance: 16x2 DiAG rings (and the
 *  MT+SIMT arrangement where a simt variant exists) vs the 12-core
 *  baseline (Fig. 9b / Fig. 10b shape). */
inline void
relPerfMultiThread(const std::string &title,
                   const std::vector<workloads::Workload> &suite,
                   double paper_avg_mt, double paper_avg_simt)
{
    Table t(title);
    t.header({"benchmark", "DiAG MT(16x2)", "DiAG MT+SIMT(8x4)",
              "meas/bound", "threads"});
    std::vector<double> mt_rels;
    std::vector<double> simt_rels;
    for (const auto &w : suite) {
        const EngineRun base = harness::runOnOoo(
            ooo::OooConfig::multicore12(), w,
            {harness::kOooMtThreads, false});
        const EngineRun mt = harness::runOnDiag(
            harness::diagMultiThreadConfig(), w,
            {harness::kDiagMtThreads, false});
        const double rel_mt = static_cast<double>(base.stats.cycles) /
                              static_cast<double>(mt.stats.cycles);
        mt_rels.push_back(rel_mt);
        std::string simt_cell = "-";
        std::string bound_cell = "-";
        if (!w.asm_simt.empty()) {
            const EngineRun st = harness::runOnDiag(
                harness::diagMtSimtConfig(), w,
                {harness::kDiagMtSimtThreads, true});
            const double rel =
                static_cast<double>(base.stats.cycles) /
                static_cast<double>(st.stats.cycles);
            simt_rels.push_back(rel);
            simt_cell = Table::num(rel, 2) + "x";
            // Single-thread simt run vs the analyzer's provable lower
            // bound (>= 1.0 by construction; near 1.0 means the
            // static model explains most of the runtime).
            const harness::ValidationReport rep =
                harness::validateBound(harness::diagMtSimtConfig(), w,
                                       /*use_simt=*/true);
            bound_cell = Table::num(
                rep.measured_cycles / rep.program_lower_bound, 2);
        } else {
            simt_rels.push_back(rel_mt);  // paper: purple == blue bar
        }
        t.row({w.name, Table::num(rel_mt, 2) + "x", simt_cell,
               bound_cell,
               w.partitionable ? std::to_string(
                                     harness::kDiagMtThreads)
                               : "1"});
    }
    t.row({"geomean", Table::num(harness::geomean(mt_rels), 2) + "x",
           Table::num(harness::geomean(simt_rels), 2) + "x", "", ""});
    t.print();
    std::printf("\nPaper-reported averages: %.2fx (MT), %.2fx "
                "(MT with SIMT pipelining)\n",
                paper_avg_mt, paper_avg_simt);
}

} // namespace diag::bench

#endif // DIAG_BENCH_FIG_COMMON_HPP
