/**
 * @file
 * Ablation for §6.1.2 (circuit timing): register-lane buffer spacing.
 * The paper buffers lanes every 8 PEs to meet timing; sparser buffers
 * would lower the achievable clock but reduce lane-crossing latency,
 * denser buffers the opposite. This sweep quantifies the cycle-count
 * side of that trade-off (clock period effects are annotated).
 */
#include <cstdio>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::harness;

int
main()
{
    Table t("Ablation: lane buffer spacing (segment size), F4C32");
    t.header({"benchmark", "every 4 PEs", "every 8 PEs (paper)",
              "every 16 PEs"});
    const char *names[] = {"backprop", "hotspot", "deepsjeng", "lbm"};
    for (const char *name : names) {
        const workloads::Workload w = workloads::findWorkload(name);
        std::vector<std::string> cells{name};
        for (const unsigned seg : {4u, 8u, 16u}) {
            DiagConfig cfg = DiagConfig::f4c32();
            cfg.segment_size = seg;
            cfg.name = "F4C32-seg" + std::to_string(seg);
            const EngineRun run = runOnDiag(cfg, w, {1, false});
            cells.push_back(
                Table::num(static_cast<double>(run.stats.cycles), 0));
        }
        t.row(cells);
    }
    t.print();
    std::printf(
        "\nDenser buffering (every 4) adds lane-crossing cycles but "
        "would allow a\nfaster clock; sparser buffering (every 16) "
        "saves crossings but fails 2GHz\ntiming in the paper's 45nm "
        "synthesis (§6.1.2: buffered every 8 at 2GHz).\n");
    return 0;
}
