/**
 * @file
 * Figure 12 reproduction: Rodinia energy-efficiency improvement
 * (inverse total energy, baseline = 1.0) for DiAG single-thread,
 * multithread, and multithread with SIMT pipelining.
 */
#include <cstdio>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::harness;

int
main()
{
    Table t("Fig 12: Rodinia energy efficiency vs baseline (x better)");
    t.header({"benchmark", "single-thread", "multi-thread",
              "MT + SIMT"});
    std::vector<double> st_rels;
    std::vector<double> mt_rels;
    std::vector<double> simt_rels;
    for (const auto &w : workloads::rodiniaSuite()) {
        // Single thread: F4C32 vs one baseline core.
        const EngineRun ooo_st =
            runOnOoo(ooo::OooConfig::baseline8(), w, {1, false});
        const EngineRun diag_st =
            runOnDiag(core::DiagConfig::f4c32(), w, {1, false});
        const double st =
            ooo_st.energy.totalPj() / diag_st.energy.totalPj();
        st_rels.push_back(st);

        // Multithread: 16x2 rings vs 12 cores.
        const EngineRun ooo_mt = runOnOoo(ooo::OooConfig::multicore12(),
                                          w, {kOooMtThreads, false});
        const EngineRun diag_mt =
            runOnDiag(diagMultiThreadConfig(), w,
                      {kDiagMtThreads, false});
        const double mt =
            ooo_mt.energy.totalPj() / diag_mt.energy.totalPj();
        mt_rels.push_back(mt);

        std::string simt_cell = "-";
        double simt = mt;
        if (!w.asm_simt.empty()) {
            const EngineRun diag_simt =
                runOnDiag(diagMtSimtConfig(), w,
                          {kDiagMtSimtThreads, true});
            simt = ooo_mt.energy.totalPj() /
                   diag_simt.energy.totalPj();
            simt_cell = Table::num(simt, 2) + "x";
        }
        simt_rels.push_back(simt);
        t.row({w.name, Table::num(st, 2) + "x",
               Table::num(mt, 2) + "x", simt_cell});
    }
    t.row({"geomean", Table::num(geomean(st_rels), 2) + "x",
           Table::num(geomean(mt_rels), 2) + "x",
           Table::num(geomean(simt_rels), 2) + "x"});
    t.print();
    std::printf("\nPaper-reported averages: 1.51x single-thread, 1.35x "
                "multithreaded,\n1.63x with SIMT pipelining "
                "enabled.\n");
    return 0;
}
