/**
 * @file
 * Figure 11 reproduction: DiAG energy consumption breakdown (%) by
 * hardware component across four benchmarks — compute-heavy kernels
 * spend close to half their energy in the FP units, while graph
 * traversal is dominated by memory and data movement (paper §7.3.1).
 */
#include <cstdio>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::harness;

int
main()
{
    // Two compute-heavy and two memory/control benchmarks, matching
    // the contrast the paper draws.
    const char *names[4] = {"backprop", "hotspot", "bfs", "mcf"};
    Table t("Fig 11: DiAG energy breakdown by component (%), F4C32");
    t.header({"benchmark", "fp_units", "lanes_alu", "memory",
              "control"});
    for (const char *name : names) {
        const workloads::Workload w = workloads::findWorkload(name);
        const EngineRun run =
            runOnDiag(core::DiagConfig::f4c32(), w, {1, false});
        t.row({name,
               Table::num(100.0 * run.energy.fraction("fp_units"), 1),
               Table::num(100.0 * run.energy.fraction("lanes_alu"), 1),
               Table::num(100.0 * run.energy.fraction("memory"), 1),
               Table::num(100.0 * run.energy.fraction("control"), 1)});
    }
    t.print();
    std::printf(
        "\nPaper Fig 11 shape: compute-heavy benchmarks spend ~half of "
        "energy on\nfunctional units with ~20%% on register lanes; "
        "graph traversal is dominated\nby memory and data movement.\n");
    return 0;
}
