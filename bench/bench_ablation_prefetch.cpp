/**
 * @file
 * Extension ablation: localized per-PE stride prefetching. The paper
 * (§5.2, §7.3.2) identifies this as promising future work — each PE's
 * reused memory instruction has a highly regular address stream — but
 * leaves it unevaluated. This bench quantifies it on streaming versus
 * irregular kernels.
 */
#include <cstdio>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::harness;

int
main()
{
    Table t("Extension: per-PE stride prefetching (F4C32, serial)");
    t.header({"benchmark", "cycles (off)", "cycles (on)", "speedup",
              "prefetches", "profile"});
    const char *names[] = {"backprop", "lbm",  "srad", "imagick",
                           "mcf",      "bfs",  "xz",   "kmeans"};
    for (const char *name : names) {
        const workloads::Workload w = workloads::findWorkload(name);
        DiagConfig off = DiagConfig::f4c32();
        DiagConfig on = DiagConfig::f4c32();
        on.stride_prefetch_enabled = true;
        on.name = "F4C32-prefetch";
        const EngineRun a = runOnDiag(off, w, {1, false});
        const EngineRun b = runOnDiag(on, w, {1, false});
        const char *profile =
            w.profile == workloads::Profile::Compute   ? "compute"
            : w.profile == workloads::Profile::Memory  ? "memory"
            : w.profile == workloads::Profile::Control ? "control"
                                                       : "mixed";
        t.row({name,
               Table::num(static_cast<double>(a.stats.cycles), 0),
               Table::num(static_cast<double>(b.stats.cycles), 0),
               Table::num(static_cast<double>(a.stats.cycles) /
                              static_cast<double>(b.stats.cycles),
                          2) + "x",
               Table::num(b.stats.counters.get("stride_prefetches"),
                          0),
               profile});
    }
    t.print();
    std::printf("\nStride prefetching helps regular streams (the "
                "paper's expectation in §5.2)\nand is neutral on "
                "irregular pointer-chasing access patterns.\n");
    return 0;
}
