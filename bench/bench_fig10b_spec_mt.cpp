/**
 * @file
 * Figure 10b reproduction: SPEC CPU2017-class multithreaded relative
 * performance with and without SIMT pipelining vs the 12-core OoO.
 */
#include "fig_common.hpp"

int
main(int argc, char **argv)
{
    const unsigned jobs = diag::bench::parseJobs(argc, argv);
    diag::bench::relPerfMultiThread(
        "Fig 10b: SPEC multithreaded relative performance "
        "(12-core baseline = 1.0)",
        diag::workloads::specSuite(), 0.97, 1.15, jobs);
    return 0;
}
