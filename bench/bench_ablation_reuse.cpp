/**
 * @file
 * Ablation: datapath reuse on/off. With reuse disabled every backward
 * branch pays the mispredict/refetch path, quantifying how much of
 * DiAG's performance comes from reusing already-constructed datapaths
 * (§4.3.2, Table 1's "DiAG (Reuse)" column).
 */
#include <cstdio>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::harness;

int
main()
{
    Table t("Ablation: datapath reuse on vs off (F4C32, serial)");
    t.header({"benchmark", "cycles (reuse)", "cycles (no reuse)",
              "speedup from reuse", "fetches saved"});
    for (const auto &w : workloads::rodiniaSuite()) {
        DiagConfig on = DiagConfig::f4c32();
        DiagConfig off = DiagConfig::f4c32();
        off.reuse_enabled = false;
        off.name = "F4C32-noreuse";
        const EngineRun a = runOnDiag(on, w, {1, false});
        const EngineRun b = runOnDiag(off, w, {1, false});
        t.row({w.name,
               Table::num(static_cast<double>(a.stats.cycles), 0),
               Table::num(static_cast<double>(b.stats.cycles), 0),
               Table::num(static_cast<double>(b.stats.cycles) /
                              static_cast<double>(a.stats.cycles),
                          2) + "x",
               Table::num(b.stats.counters.get("iline_fetches") -
                              a.stats.counters.get("iline_fetches"),
                          0)});
    }
    t.print();
    return 0;
}
