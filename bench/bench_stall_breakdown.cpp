/**
 * @file
 * §7.3.2 reproduction: breakdown of DiAG stall sources averaged over
 * the Rodinia suite — memory stalls, control-flow changes, and other
 * (structural) stalls. Paper: 73.6% / 21.1% / 5.3%.
 */
#include <cstdio>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::harness;

int
main()
{
    double mem = 0.0;
    double ctrl = 0.0;
    double other = 0.0;
    Table t("Stall breakdown per benchmark (F4C32, % of stall cycles)");
    t.header({"benchmark", "memory", "control", "other"});
    for (const auto &w : workloads::rodiniaSuite()) {
        const EngineRun run =
            runOnDiag(core::DiagConfig::f4c32(), w, {1, false});
        const auto &c = run.stats.counters;
        const double m = c.get("mem_stall_cycles") +
                         c.get("mem_queue_stall_cycles");
        const double k = c.get("ctrl_stall_cycles");
        const double o = c.get("other_stall_cycles") +
                         c.get("fetch_wait_cycles") +
                         c.get("bus_wait_cycles");
        const double total = m + k + o;
        if (total > 0.0)
            t.row({w.name, Table::num(100.0 * m / total, 1),
                   Table::num(100.0 * k / total, 1),
                   Table::num(100.0 * o / total, 1)});
        mem += m;
        ctrl += k;
        other += o;
    }
    t.print();

    const double total = mem + ctrl + other;
    Table s("§7.3.2: aggregate stall sources across Rodinia");
    s.header({"source", "measured %", "paper %"});
    s.row({"Memory stalls", Table::num(100.0 * mem / total, 1),
           "73.6"});
    s.row({"Control flow changes", Table::num(100.0 * ctrl / total, 1),
           "21.1"});
    s.row({"Other (structural)", Table::num(100.0 * other / total, 1),
           "5.3"});
    s.print();
    return 0;
}
