/**
 * @file
 * Figure 10a reproduction: SPEC CPU2017-class single-thread relative
 * performance of DiAG (32 / 256 / 512 PEs) against the OoO baseline.
 */
#include "fig_common.hpp"

int
main(int argc, char **argv)
{
    const unsigned jobs = diag::bench::parseJobs(argc, argv);
    diag::bench::relPerfSingleThread(
        "Fig 10a: SPEC single-thread relative performance "
        "(baseline = 1.0)",
        diag::workloads::specSuite(), 0.81, 0.97, 0.97, jobs);
    return 0;
}
