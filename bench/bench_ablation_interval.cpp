/**
 * @file
 * Ablation: SIMT thread-launch interval sweep (the `interval` operand
 * of simt_s, §5.4). Smaller intervals launch threads faster until the
 * pipeline's stage occupancy becomes the bottleneck.
 */
#include <cstdio>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::harness;

namespace
{

std::string
vecScaleKernel(unsigned interval)
{
    return R"(
        .data
        .org 0x100000
        vin: .space 2048
        .org 0x101000
        vout: .space 2048
        .text
        _start:
            la t0, vin
            li t1, 0
            li t2, 512
        init:
            slli t3, t1, 2
            add t4, t0, t3
            sw t1, 0(t4)
            addi t1, t1, 1
            bne t1, t2, init
            la s2, vin
            la s3, vout
            li a2, 0
            li a3, 4
            li a4, 2048
        head:
            simt_s a2, a3, a4, )" + std::to_string(interval) + R"(
            add t5, s2, a2
            lw t6, 0(t5)
            slli t6, t6, 1
            addi t6, t6, 7
            add s4, s3, a2
            sw t6, 0(s4)
            simt_e a2, a4, head
            ebreak
    )";
}

} // namespace

int
main()
{
    Table t("Ablation: simt_s launch interval (512-element kernel, "
            "F4C32)");
    t.header({"interval", "cycles", "threads", "speedup vs interval=8"});
    double base = 0.0;
    for (const unsigned interval : {8u, 4u, 2u, 1u}) {
        const Program p =
            assembler::assemble(vecScaleKernel(interval));
        DiagProcessor proc(DiagConfig::f4c32());
        const sim::RunStats rs = proc.run(p);
        const double cycles = static_cast<double>(rs.cycles);
        if (base == 0.0)
            base = cycles;
        t.row({std::to_string(interval), Table::num(cycles, 0),
               Table::num(rs.counters.get("simt_threads"), 0),
               Table::num(base / cycles, 2) + "x"});
    }
    t.print();
    return 0;
}
