/**
 * @file
 * Figure 9a reproduction: Rodinia single-thread relative performance
 * of DiAG (32 / 256 / 512 PEs) against the 8-issue OoO baseline.
 */
#include "fig_common.hpp"

int
main(int argc, char **argv)
{
    const unsigned jobs = diag::bench::parseJobs(argc, argv);
    diag::bench::relPerfSingleThread(
        "Fig 9a: Rodinia single-thread relative performance "
        "(baseline = 1.0)",
        diag::workloads::rodiniaSuite(), 0.91, 1.12, 1.12, jobs);
    return 0;
}
