/**
 * @file
 * Table 1 reproduction: per-instruction pipeline stages in an OoO
 * processor versus DiAG on first execution versus DiAG under datapath
 * reuse. The structural rows come from the architectures; the measured
 * rows demonstrate them on a 1000-iteration loop: under reuse, fetches
 * and decodes stop scaling with retired instructions.
 */
#include <cstdio>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::harness;

int
main()
{
    const Program p = assembler::assemble(R"(
        _start:
            li a0, 0
            li a1, 1000
        loop:
            addi a0, a0, 1
            bne a0, a1, loop
            ebreak
    )");
    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(p);

    Table t("Table 1: stage comparison (structural + measured)");
    t.header({"Stage/Structure", "Out-of-Order", "DiAG (Initial)",
              "DiAG (Reuse)"});
    t.row({"Fetch", "Yes", "Yes (Batch)", "No"});
    t.row({"Decode", "Yes", "Yes", "No"});
    t.row({"Issue", "Yes", "No", "No"});
    t.row({"Issue Width", "4-8 Instr.", "Scalable", "Scalable"});
    t.row({"Rename", "Yes", "No", "No"});
    t.row({"Register File", "Physical RF", "Reg Lanes", "Reg Lanes"});
    t.row({"Dispatch", "Yes", "No", "No"});
    t.row({"Execute", "Yes", "Yes", "Yes"});
    t.row({"Commit", "Reorder Buffer", "Reg Lanes", "Reg Lanes"});
    t.print();

    Table m("Measured on a 1000-iteration loop (F4C32)");
    m.header({"Counter", "Value"});
    m.row({"instructions retired",
           Table::num(static_cast<double>(rs.instructions), 0)});
    m.row({"cluster activations",
           Table::num(rs.counters.get("activations"), 0)});
    m.row({"reused activations (no fetch, no decode)",
           Table::num(rs.counters.get("reuse_activations"), 0)});
    m.row({"I-line fetches", Table::num(
                                 rs.counters.get("iline_fetches"), 0)});
    m.row({"instructions decoded",
           Table::num(rs.counters.get("decodes"), 0)});
    m.row({"decodes per retired instruction",
           Table::num(rs.counters.get("decodes") /
                          static_cast<double>(rs.instructions),
                      4)});
    m.print();

    std::printf("\nUnder reuse the loop's steady state performs no "
                "fetch and no decode:\nonly the execute stage remains "
                "per instruction (paper Table 1).\n");
    return 0;
}
