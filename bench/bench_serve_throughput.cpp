/**
 * @file
 * Google-benchmark measurements of the diag-serve service layer:
 * end-to-end request throughput through the threaded SimService with
 * a warm result cache (the steady state of a batched sweep), the
 * uncached path (every request simulates), and the soak DES replay
 * rate (virtual requests scheduled per host second).
 */
#include <benchmark/benchmark.h>

// Same bar as bench_sim_speed: throughput from an unoptimized build
// is not a measurement. Opt in explicitly to compile one anyway.
#if !defined(__OPTIMIZE__) && !defined(DIAG_ALLOW_DEBUG_BENCH)
#error "bench_serve_throughput requires an optimized build: configure \
with -DCMAKE_BUILD_TYPE=Release (or pass -DDIAG_ALLOW_DEBUG_BENCH=ON \
to measure a debug build anyway)"
#endif

#include <vector>

#include "serve/service.hpp"
#include "serve/soak.hpp"

using namespace diag;

namespace
{

serve::SimRequest
request(u64 id)
{
    serve::SimRequest q;
    q.id = id;
    q.workload = "nn";
    q.config = "F4C2";
    return q;
}

/** Steady state: repeat contents, verified cache hits. */
void
BM_ServeThroughputCached(benchmark::State &state)
{
    serve::ServiceConfig cfg;
    cfg.workers = static_cast<unsigned>(state.range(0));
    cfg.queue.capacity = 256;
    serve::SimService svc(cfg);
    // Warm the cache outside the timed region.
    svc.submit(request(0)).result.get();

    u64 id = 1;
    u64 served = 0;
    const unsigned kBatch = 64;
    for (auto _ : state) {
        std::vector<serve::SimService::Ticket> tickets;
        tickets.reserve(kBatch);
        for (unsigned i = 0; i < kBatch; ++i)
            tickets.push_back(svc.submit(request(id++)));
        for (auto &t : tickets)
            benchmark::DoNotOptimize(t.result.get().status);
        served += kBatch;
    }
    state.counters["requests_per_s"] = benchmark::Counter(
        static_cast<double>(served), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeThroughputCached)->Arg(1)->Arg(2)->Arg(4);

/** Every request pays a full simulation (cache disabled). */
void
BM_ServeThroughputUncached(benchmark::State &state)
{
    serve::ServiceConfig cfg;
    cfg.workers = static_cast<unsigned>(state.range(0));
    cfg.queue.capacity = 256;
    cfg.cache_enabled = false;
    serve::SimService svc(cfg);

    u64 id = 1;
    u64 served = 0;
    const unsigned kBatch = 4;
    for (auto _ : state) {
        std::vector<serve::SimService::Ticket> tickets;
        tickets.reserve(kBatch);
        for (unsigned i = 0; i < kBatch; ++i)
            tickets.push_back(svc.submit(request(id++)));
        for (auto &t : tickets)
            benchmark::DoNotOptimize(t.result.get().status);
        served += kBatch;
    }
    state.counters["requests_per_s"] = benchmark::Counter(
        static_cast<double>(served), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeThroughputUncached)->Arg(1)->Arg(2);

/** The soak DES end to end, fault injection included. */
void
BM_SoakReplay(benchmark::State &state)
{
    serve::SoakSpec spec;
    spec.requests = static_cast<unsigned>(state.range(0));
    spec.jobs = 1;
    spec.faults.crash_pct = 10;
    spec.faults.stall_pct = 5;
    spec.faults.corrupt_pct = 30;
    u64 replayed = 0;
    for (auto _ : state) {
        const serve::SoakReport rep = serve::runSoak(spec);
        benchmark::DoNotOptimize(rep.ok);
        replayed += rep.requests;
    }
    state.counters["requests_per_s"] = benchmark::Counter(
        static_cast<double>(replayed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SoakReplay)->Arg(200);

} // namespace

BENCHMARK_MAIN();
