/**
 * @file
 * Figure 9b reproduction: Rodinia multithreaded relative performance —
 * DiAG in the 16x2 ring arrangement, plus SIMT thread pipelining where
 * the benchmark has a pipelineable region, against the 12-core OoO.
 */
#include "fig_common.hpp"

int
main(int argc, char **argv)
{
    const unsigned jobs = diag::bench::parseJobs(argc, argv);
    diag::bench::relPerfMultiThread(
        "Fig 9b: Rodinia multithreaded relative performance "
        "(12-core baseline = 1.0)",
        diag::workloads::rodiniaSuite(), 0.95, 1.20, jobs);
    return 0;
}
