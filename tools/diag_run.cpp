/**
 * @file
 * diag-run: command-line driver for the simulators.
 *
 *   diag-run [options] [program.s]
 *     --engine diag|ooo|golden    execution engine (default: diag)
 *     --config I4C2|F4C2|F4C16|F4C32   DiAG preset (default: F4C32)
 *     --threads N                 software threads (default: 1)
 *     --workload NAME             run a built-in benchmark kernel
 *     --simt                      use the workload's simt variant
 *     --list-workloads            print the benchmark inventory
 *     --stats                     dump every model counter
 *     --regs                      dump final integer registers
 *     --max-insts N               instruction budget
 *
 * With a .s file, the program is assembled and run; with --workload,
 * the named kernel (inputs + output check included) is run instead.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/processor.hpp"
#include "harness/runner.hpp"
#include "isa/disasm.hpp"
#include "ooo/processor.hpp"
#include "sim/golden.hpp"

using namespace diag;

namespace
{

struct Options
{
    std::string engine = "diag";
    std::string config = "F4C32";
    std::string workload;
    std::string file;
    unsigned threads = 1;
    bool simt = false;
    bool stats = false;
    bool regs = false;
    u64 max_insts = 500'000'000;
};

void
usage()
{
    std::printf(
        "usage: diag-run [options] [program.s]\n"
        "  --engine diag|ooo|golden   execution engine (default diag)\n"
        "  --config I4C2|F4C2|F4C16|F4C32   DiAG preset\n"
        "  --threads N                software threads\n"
        "  --workload NAME            run a built-in benchmark kernel\n"
        "  --simt                     use the simt-annotated variant\n"
        "  --list-workloads           list the benchmark inventory\n"
        "  --stats                    dump all model counters\n"
        "  --regs                     dump final integer registers\n"
        "  --max-insts N              instruction budget\n");
}

core::DiagConfig
configByName(const std::string &name)
{
    if (name == "I4C2")
        return core::DiagConfig::i4c2();
    if (name == "F4C2")
        return core::DiagConfig::f4c2();
    if (name == "F4C16")
        return core::DiagConfig::f4c16();
    if (name == "F4C32")
        return core::DiagConfig::f4c32();
    fatal("unknown DiAG configuration '%s'", name.c_str());
}

void
listWorkloads()
{
    auto show = [](const workloads::Workload &w) {
        std::printf("  %-16s %-8s %s%s\n", w.name.c_str(),
                    w.suite.c_str(), w.description.c_str(),
                    w.asm_simt.empty() ? "" : " [simt]");
    };
    std::printf("Rodinia-class:\n");
    for (const auto &w : workloads::rodiniaSuite())
        show(w);
    std::printf("SPEC-class:\n");
    for (const auto &w : workloads::specSuite())
        show(w);
}

void
printStats(const sim::RunStats &rs, const Options &opt)
{
    std::printf("cycles        %llu\n",
                static_cast<unsigned long long>(rs.cycles));
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(rs.instructions));
    std::printf("ipc           %.3f\n", rs.ipc());
    std::printf("halted        %s\n", rs.halted ? "yes" : "NO");
    if (opt.stats) {
        std::printf("-- counters --\n");
        for (const auto &kv : rs.counters.all())
            std::printf("%-28s %.0f\n", kv.first.c_str(), kv.second);
    }
}

int
runWorkload(const Options &opt)
{
    const workloads::Workload w = workloads::findWorkload(opt.workload);
    harness::RunSpec spec{opt.threads, opt.simt};
    harness::EngineRun run;
    if (opt.engine == "diag") {
        run = harness::runOnDiag(configByName(opt.config), w, spec);
    } else if (opt.engine == "ooo") {
        run = harness::runOnOoo(ooo::OooConfig::baseline8(), w, spec);
    } else {
        fatal("--workload requires --engine diag or ooo");
    }
    std::printf("workload %s on %s: output check %s\n",
                w.name.c_str(), opt.engine.c_str(),
                run.checked ? "passed" : "FAILED");
    printStats(run.stats, opt);
    std::printf("energy        %.3f uJ\n",
                run.energy.totalJoules() * 1e6);
    return run.checked ? 0 : 1;
}

int
runFile(const Options &opt)
{
    std::ifstream in(opt.file);
    fatal_if(!in.good(), "cannot open '%s'", opt.file.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    const Program prog = assembler::assemble(ss.str());

    sim::RunStats rs;
    u32 final_regs[isa::kNumRegs] = {};
    if (opt.engine == "golden") {
        sim::GoldenSim sim(prog);
        const sim::RunResult r = sim.run(opt.max_insts);
        rs.cycles = r.inst_count;  // functional: 1 "cycle" per inst
        rs.instructions = r.inst_count;
        rs.halted = r.halted;
        for (unsigned i = 0; i < isa::kNumRegs; ++i)
            final_regs[i] = sim.reg(static_cast<isa::RegId>(i));
    } else if (opt.engine == "ooo") {
        ooo::OooProcessor proc(ooo::OooConfig::baseline8());
        rs = proc.run(prog, opt.max_insts);
        for (unsigned i = 0; i < isa::kNumRegs; ++i)
            final_regs[i] =
                proc.finalReg(0, static_cast<isa::RegId>(i));
    } else {
        core::DiagProcessor proc(configByName(opt.config));
        rs = proc.run(prog, opt.max_insts);
        for (unsigned i = 0; i < isa::kNumRegs; ++i)
            final_regs[i] =
                proc.finalReg(0, static_cast<isa::RegId>(i));
    }
    printStats(rs, opt);
    if (opt.regs) {
        std::printf("-- registers --\n");
        for (unsigned i = 0; i < isa::kNumIntRegs; ++i) {
            std::printf("%-4s 0x%08x%s",
                        isa::regName(static_cast<isa::RegId>(i)).c_str(),
                        final_regs[i], (i % 4 == 3) ? "\n" : "  ");
        }
    }
    return rs.halted ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--engine") {
            opt.engine = next();
        } else if (arg == "--config") {
            opt.config = next();
        } else if (arg == "--threads") {
            opt.threads = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--workload") {
            opt.workload = next();
        } else if (arg == "--simt") {
            opt.simt = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--regs") {
            opt.regs = true;
        } else if (arg == "--max-insts") {
            opt.max_insts = std::stoull(next());
        } else if (arg == "--list-workloads") {
            listWorkloads();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] != '-') {
            opt.file = arg;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (!opt.workload.empty())
        return runWorkload(opt);
    if (opt.file.empty()) {
        usage();
        fatal("no program file or --workload given");
    }
    return runFile(opt);
}
