/**
 * @file
 * diag-run: command-line driver for the simulators.
 *
 *   diag-run [options] [program.s]
 *     --engine diag|ooo|golden    execution engine (default: diag)
 *     --config I4C2|F4C2|F4C16|F4C32   DiAG preset (default: F4C32)
 *     --threads N                 software threads (default: 1)
 *     --workload NAME             run a built-in benchmark kernel
 *     --simt                      use the workload's simt variant
 *     --dense-loop                disable skip-idle scheduling (diag
 *                                 engine; must not change any number)
 *     --list-workloads            print the benchmark inventory
 *     --stats                     dump every model counter
 *     --regs                      dump final integer registers
 *     --max-insts N               instruction budget
 *     --max-cycles N              cycle ceiling (structured timeout)
 *     --golden-diff               diff final state against the golden
 *                                 reference (file mode)
 *     --diff-fuzz N               run N seeded fuzz programs through
 *                                 the engine vs golden, then exit
 *     --validate                  cross-check measured cycles against
 *                                 the static bound model (diag engine,
 *                                 workload mode)
 *     --obs                       report skip-idle fast-path coverage
 *                                 (batched fraction, probe outcomes,
 *                                 per-reason disqualifications)
 *     --obs-json FILE             byte-stable self-profile JSON dump
 *
 * With a .s file, the program is assembled and run; with --workload,
 * the named kernel (inputs + output check included) is run instead.
 *
 * Exit codes (CI tells pass from SDC from crash):
 *   0  pass        2  wrong result (SDC / failed check)
 *   1  usage or internal error     3  timeout (watchdog/budget)
 *   4  hardware trap or detected-unrecoverable abort
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/processor.hpp"
#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "host/parallel.hpp"
#include "harness/validate.hpp"
#include "isa/disasm.hpp"
#include "obs/metrics.hpp"
#include "obs/sim_profile.hpp"
#include "ooo/processor.hpp"
#include "sim/fuzz.hpp"
#include "sim/golden.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

using namespace diag;

namespace
{

struct Options
{
    std::string engine = "diag";
    std::string config = "F4C32";
    std::string workload;
    std::string file;
    unsigned threads = 1;
    bool simt = false;
    bool dense_loop = false;
    bool stats = false;
    bool regs = false;
    bool golden_diff = false;
    bool validate = false;
    u64 max_insts = 500'000'000;
    u64 max_cycles = 0;  //!< 0 = keep the config's default
    unsigned diff_fuzz = 0;
    u64 seed = 1;   //!< base seed for --diff-fuzz
    unsigned jobs = 0;  //!< host threads for --diff-fuzz (0 = auto)
    std::string trace_file;    //!< Chrome trace JSON output
    std::string metrics_file;  //!< time-series samples JSON output
    std::string stats_json;    //!< byte-stable counter dump output
    bool obs = false;          //!< skip-idle self-profile report
    std::string obs_json;      //!< byte-stable self-profile output
    u32 trace_events = trace::kDefaultEvents;
    u64 metrics_stride = 0;    //!< 0 = no time-series sampling

    bool wantsTrace() const
    {
        return !trace_file.empty() || !metrics_file.empty();
    }

    trace::TraceConfig
    traceConfig() const
    {
        trace::TraceConfig tc;
        tc.event_mask = trace_events;
        // --metrics without an explicit stride samples every 1k cycles.
        tc.metrics_stride = metrics_stride
                                ? metrics_stride
                                : (metrics_file.empty() ? 0 : 1000);
        return tc;
    }
};

/** Write the Chrome trace and/or metrics series a run collected. */
void
writeTraceOutputs(const Options &opt, const trace::Tracer &trc,
                  const trace::TraceMeta &meta)
{
    if (!opt.trace_file.empty()) {
        std::ofstream os(opt.trace_file);
        fatal_if(!os.good(), "cannot write '%s'",
                 opt.trace_file.c_str());
        trace::writeChromeTrace(os, trc, meta);
        std::printf("trace         %s (%zu events, %llu dropped)\n",
                    opt.trace_file.c_str(), trc.sink().events().size(),
                    static_cast<unsigned long long>(
                        trc.sink().dropped()));
        if (trc.sink().dropped() > 0)
            std::fprintf(stderr,
                         "diag-run: warning: the trace ring buffer "
                         "dropped %llu events (oldest first); narrow "
                         "--trace-events to keep the whole run\n",
                         static_cast<unsigned long long>(
                             trc.sink().dropped()));
    }
    if (!opt.metrics_file.empty()) {
        std::ofstream os(opt.metrics_file);
        fatal_if(!os.good(), "cannot write '%s'",
                 opt.metrics_file.c_str());
        trace::writeMetricsJson(os, trc, meta);
        std::printf("metrics       %s (%zu samples, stride %llu)\n",
                    opt.metrics_file.c_str(),
                    trc.metrics().samples().size(),
                    static_cast<unsigned long long>(
                        trc.metrics().stride()));
    }
}

/** Human-readable skip-idle coverage report (DESIGN.md §16). */
void
printObs(const obs::SimProfile &p)
{
    const auto u = [](u64 v) {
        return static_cast<unsigned long long>(v);
    };
    std::printf("-- skip-idle coverage --\n");
    std::printf("batched fraction    %.4f\n", p.batchedFraction());
    std::printf("batched iterations  %llu (%llu insts over %llu "
                "jumps)\n",
                u(p.batched_iterations), u(p.batched_insts),
                u(p.batch_jumps));
    std::printf("dense activations   %llu\n", u(p.dense_activations));
    std::printf("simt activations    %llu (%llu closed-form, %llu "
                "iterative regions)\n",
                u(p.simt_activations), u(p.simt_closed_form),
                u(p.simt_iterative));
    std::printf("probes              %llu attempts, %llu misses, "
                "%llu blacklisted\n",
                u(p.probe_attempts), u(p.probe_misses),
                u(p.probe_blacklisted));
    std::printf("lines batchable     %llu\n", u(p.lines_batchable));
    std::printf("disqualified        %llu\n",
                u(p.disqualifiedTotal()));
    for (unsigned r = 0; r < obs::kReasonCount; ++r)
        if (p.disqualified[r] > 0)
            std::printf("  %-18s %llu\n", obs::batchReasonName(r),
                        u(p.disqualified[r]));
}

/** Byte-stable self-profile dump for CI and the bench context. */
void
writeObsJson(const Options &opt, const obs::SimProfile &p)
{
    if (opt.obs_json.empty())
        return;
    std::ofstream os(opt.obs_json);
    fatal_if(!os.good(), "cannot write '%s'", opt.obs_json.c_str());
    obs::profileRegistry(p).dumpJson(os);
}

/** Satellite of the trace subsystem: byte-stable counters-to-file. */
void
writeStatsJson(const Options &opt, const sim::RunStats &rs)
{
    if (opt.stats_json.empty())
        return;
    std::ofstream os(opt.stats_json);
    fatal_if(!os.good(), "cannot write '%s'", opt.stats_json.c_str());
    rs.counters.dumpJson(os);
}

void
listWorkloads()
{
    auto show = [](const workloads::Workload &w) {
        std::printf("  %-16s %-8s %s%s\n", w.name.c_str(),
                    w.suite.c_str(), w.description.c_str(),
                    w.asm_simt.empty() ? "" : " [simt]");
    };
    std::printf("Rodinia-class:\n");
    for (const auto &w : workloads::rodiniaSuite())
        show(w);
    std::printf("SPEC-class:\n");
    for (const auto &w : workloads::specSuite())
        show(w);
}

void
printStats(const sim::RunStats &rs, const Options &opt)
{
    std::printf("cycles        %llu\n",
                static_cast<unsigned long long>(rs.cycles));
    std::printf("instructions  %llu\n",
                static_cast<unsigned long long>(rs.instructions));
    std::printf("ipc           %.3f\n", rs.ipc());
    std::printf("halted        %s\n", rs.halted ? "yes" : "NO");
    if (opt.stats) {
        std::printf("-- counters --\n");
        for (const auto &kv : rs.counters.all())
            std::printf("%-28s %.0f\n", kv.first.c_str(), kv.second);
    }
}

/**
 * Map a finished run onto the documented exit codes: timeouts (3) and
 * traps/aborts (4) take precedence over result checking (2).
 */
int
classify(const sim::RunStats &rs, bool checked)
{
    if (rs.timed_out)
        return 3;
    if (rs.faulted || rs.aborted || !rs.halted)
        return 4;
    return checked ? 0 : 2;
}

/** Byte-compare two sparse memories over the union of their pages. */
bool
memEqual(const SparseMemory &a, const SparseMemory &b)
{
    std::vector<Addr> pages;
    a.forEachPage([&](Addr base) { pages.push_back(base); });
    b.forEachPage([&](Addr base) { pages.push_back(base); });
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    for (const Addr base : pages)
        for (Addr off = 0; off < SparseMemory::kPageSize; off += 4)
            if (a.read32(base + off) != b.read32(base + off))
                return false;
    return true;
}

int
runWorkload(const Options &opt)
{
    const workloads::Workload w = workloads::findWorkload(opt.workload);
    harness::RunSpec spec{opt.threads, opt.simt,
                          /*tolerate_failures=*/true};
    const trace::TraceConfig tc = opt.traceConfig();
    if (opt.wantsTrace()) {
        fatal_if(opt.engine != "diag",
                 "--trace/--metrics hook the diag engine only");
        spec.trace = &tc;
    }
    if (opt.obs || !opt.obs_json.empty()) {
        fatal_if(opt.engine != "diag",
                 "--obs profiles the diag engine's skip-idle "
                 "scheduler");
        spec.obs = true;
    }
    harness::EngineRun run;
    if (opt.engine == "diag") {
        core::DiagConfig cfg = harness::configByName(opt.config);
        if (opt.max_cycles)
            cfg.max_cycles = opt.max_cycles;
        cfg.dense_loop = opt.dense_loop;
        run = harness::runOnDiag(cfg, w, spec);
    } else if (opt.engine == "ooo") {
        ooo::OooConfig cfg = ooo::OooConfig::baseline8();
        if (opt.max_cycles)
            cfg.max_cycles = opt.max_cycles;
        run = harness::runOnOoo(cfg, w, spec);
    } else {
        fatal("--workload requires --engine diag or ooo");
    }
    std::printf("workload %s on %s: output check %s\n",
                w.name.c_str(), opt.engine.c_str(),
                run.checked ? "passed" : "FAILED");
    printStats(run.stats, opt);
    std::printf("energy        %.3f uJ\n",
                run.energy.totalJoules() * 1e6);
    if (run.trace)
        writeTraceOutputs(opt, *run.trace,
                          {w.name, opt.config, opt.simt});
    if (run.obs) {
        if (opt.obs)
            printObs(*run.obs);
        writeObsJson(opt, *run.obs);
    }
    writeStatsJson(opt, run.stats);
    int rc = classify(run.stats, run.checked);
    if (rc == 0 && opt.validate) {
        fatal_if(opt.engine != "diag",
                 "--validate checks the diag engine's timing");
        const harness::ValidationReport rep = harness::validateBound(
            harness::configByName(opt.config), w, opt.simt);
        std::printf("%s", harness::renderValidation(rep).c_str());
        if (!rep.ok()) {
            std::printf("FAIL (exit 2): static bound validation "
                        "failed\n");
            return 2;  // timing contract broken: bound or prediction
        }
    }
    if (rc != 0)
        std::printf("FAIL (exit %d): %s\n", rc,
                    run.stats.stop_reason.empty()
                        ? (rc == 2 ? "silent data corruption: "
                                     "output check failed"
                                   : "did not halt")
                        : run.stats.stop_reason.c_str());
    return rc;
}

/**
 * Run an already-assembled program on the chosen engine; fills final
 * registers and (when @p mem_out is non-null) moves out the engine's
 * final memory image for golden-diff comparison.
 */
sim::RunStats
runProgram(const Options &opt, const Program &prog,
           u32 final_regs[isa::kNumRegs], SparseMemory *mem_out,
           trace::Tracer *trc = nullptr,
           obs::SimProfile *prof = nullptr)
{
    sim::RunStats rs;
    if (opt.engine == "golden") {
        sim::GoldenSim sim(prog);
        const sim::RunResult r = sim.run(opt.max_insts);
        rs.cycles = r.inst_count;  // functional: 1 "cycle" per inst
        rs.instructions = r.inst_count;
        rs.halted = r.halted;
        rs.faulted = r.faulted;
        if (r.faulted)
            rs.stop_reason = detail::vformat(
                "golden fault at pc 0x%x", r.stop_pc);
        else if (!r.halted)
            rs.timed_out = true;
        for (unsigned i = 0; i < isa::kNumRegs; ++i)
            final_regs[i] = sim.reg(static_cast<isa::RegId>(i));
        if (mem_out)
            *mem_out = sim.memory();
    } else if (opt.engine == "ooo") {
        ooo::OooConfig cfg = ooo::OooConfig::baseline8();
        if (opt.max_cycles)
            cfg.max_cycles = opt.max_cycles;
        ooo::OooProcessor proc(cfg);
        rs = proc.run(prog, opt.max_insts);
        for (unsigned i = 0; i < isa::kNumRegs; ++i)
            final_regs[i] =
                proc.finalReg(0, static_cast<isa::RegId>(i));
        if (mem_out)
            *mem_out = proc.memory();
    } else {
        core::DiagConfig cfg = harness::configByName(opt.config);
        if (opt.max_cycles)
            cfg.max_cycles = opt.max_cycles;
        cfg.dense_loop = opt.dense_loop;
        core::DiagProcessor proc(cfg);
        proc.attachTrace(trc);
        proc.attachObs(prof);
        rs = proc.run(prog, opt.max_insts);
        proc.attachTrace(nullptr);
        proc.attachObs(nullptr);
        for (unsigned i = 0; i < isa::kNumRegs; ++i)
            final_regs[i] =
                proc.finalReg(0, static_cast<isa::RegId>(i));
        if (mem_out)
            *mem_out = proc.memory();
    }
    return rs;
}

/**
 * Compare an engine run against the functional golden reference:
 * every unified register plus the full memory image. Returns true
 * when architecturally identical; appends its report to @p out (so
 * host-parallel fuzz workers can emit whole per-seed blocks).
 */
bool
goldenDiff(const Program &prog, u64 max_insts,
           const u32 final_regs[isa::kNumRegs],
           const SparseMemory &mem, bool verbose_pass,
           std::string &out)
{
    sim::GoldenSim gold(prog);
    const sim::RunResult gr = gold.run(max_insts);
    if (!gr.halted) {
        out += "golden-diff: golden reference did not halt; diff "
               "skipped\n";
        return false;
    }
    bool ok = true;
    for (unsigned i = 0; i < isa::kNumRegs; ++i) {
        const u32 want = gold.reg(static_cast<isa::RegId>(i));
        if (final_regs[i] != want) {
            out += detail::vformat(
                "golden-diff: %s = 0x%08x, golden has 0x%08x\n",
                isa::regName(static_cast<isa::RegId>(i)).c_str(),
                final_regs[i], want);
            ok = false;
        }
    }
    if (!memEqual(mem, gold.memory())) {
        out += "golden-diff: final memory image differs\n";
        ok = false;
    }
    if (ok && verbose_pass)
        out += "golden-diff: architectural state matches\n";
    return ok;
}

int
runFile(const Options &opt)
{
    std::ifstream in(opt.file);
    fatal_if(!in.good(), "cannot open '%s'", opt.file.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    const Program prog = assembler::assemble(ss.str());

    u32 final_regs[isa::kNumRegs] = {};
    SparseMemory mem;
    const bool want_mem = opt.golden_diff;
    std::unique_ptr<trace::Tracer> trc;
    if (opt.wantsTrace()) {
        fatal_if(opt.engine != "diag",
                 "--trace/--metrics hook the diag engine only");
        trc = std::make_unique<trace::Tracer>(opt.traceConfig());
    }
    std::unique_ptr<obs::SimProfile> prof;
    if (opt.obs || !opt.obs_json.empty()) {
        fatal_if(opt.engine != "diag",
                 "--obs profiles the diag engine's skip-idle "
                 "scheduler");
        prof = std::make_unique<obs::SimProfile>();
    }
    const sim::RunStats rs = runProgram(opt, prog, final_regs,
                                        want_mem ? &mem : nullptr,
                                        trc.get(), prof.get());
    printStats(rs, opt);
    if (trc)
        writeTraceOutputs(opt, *trc, {opt.file, opt.config, false});
    if (prof) {
        if (opt.obs)
            printObs(*prof);
        writeObsJson(opt, *prof);
    }
    writeStatsJson(opt, rs);
    if (opt.regs) {
        std::printf("-- registers --\n");
        for (unsigned i = 0; i < isa::kNumIntRegs; ++i) {
            std::printf("%-4s 0x%08x%s",
                        isa::regName(static_cast<isa::RegId>(i)).c_str(),
                        final_regs[i], (i % 4 == 3) ? "\n" : "  ");
        }
    }
    int rc = classify(rs, true);
    if (rc == 0 && opt.golden_diff && opt.engine != "golden") {
        std::string diff;
        const bool ok =
            goldenDiff(prog, opt.max_insts, final_regs, mem, true,
                       diff);
        std::fputs(diff.c_str(), stdout);
        if (!ok)
            rc = 2;  // silent data corruption vs the reference
    }
    if (rc != 0)
        std::printf("FAIL (exit %d): %s\n", rc,
                    rs.stop_reason.empty()
                        ? (rc == 2 ? "golden-diff mismatch"
                                   : "did not halt")
                        : rs.stop_reason.c_str());
    return rc;
}

/**
 * Differential fuzzing: N seeded random programs, each executed on the
 * selected engine and on the golden reference, with full architectural
 * state compared at the end. Any divergence exits 2. Seeds fan out
 * over host workers (--jobs); each seed derives its program from
 * opt.seed + index and reports are printed in seed order, so the
 * output is byte-identical for any job count.
 */
int
runDiffFuzz(const Options &opt)
{
    fatal_if(opt.engine == "golden",
             "--diff-fuzz compares an engine against golden; pick "
             "--engine diag or ooo");
    struct SeedResult
    {
        bool ok = false;
        std::string report;
    };
    const std::vector<SeedResult> results =
        host::parallelMap<SeedResult>(
            opt.jobs, opt.diff_fuzz, [&opt](size_t n) {
                SeedResult res;
                sim::FuzzOptions fo;
                fo.seed = opt.seed + n;
                const std::string src = sim::generateFuzzProgram(fo);
                const Program prog = assembler::assemble(src);
                u32 final_regs[isa::kNumRegs] = {};
                SparseMemory mem;
                const sim::RunStats rs =
                    runProgram(opt, prog, final_regs, &mem);
                res.ok = rs.halted && !rs.faulted && !rs.timed_out;
                if (!res.ok) {
                    res.report = detail::vformat(
                        "diff-fuzz seed %llu: engine stopped: %s\n",
                        static_cast<unsigned long long>(fo.seed),
                        rs.stop_reason.empty()
                            ? "did not halt"
                            : rs.stop_reason.c_str());
                } else if (!goldenDiff(prog, opt.max_insts, final_regs,
                                       mem, false, res.report)) {
                    res.report += detail::vformat(
                        "diff-fuzz seed %llu: MISMATCH vs golden\n",
                        static_cast<unsigned long long>(fo.seed));
                    res.ok = false;
                }
                return res;
            });
    unsigned mismatches = 0;
    for (const SeedResult &res : results) {
        std::fputs(res.report.c_str(), stdout);
        if (!res.ok)
            ++mismatches;
    }
    std::printf("diff-fuzz: %u/%u seeds matched golden\n",
                opt.diff_fuzz - mismatches, opt.diff_fuzz);
    return mismatches ? 2 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> files;
    std::string trace_events;
    bool list_workloads = false;
    harness::ArgParser ap("diag-run", "[program.s]");
    ap.option("--engine", &opt.engine, "diag|ooo|golden",
              "execution engine (default diag)")
        .configFlag(&opt.config)
        .option("--threads", &opt.threads, "N", "software threads")
        .option("--workload", &opt.workload, "NAME",
                "run a built-in benchmark kernel")
        .flag("--simt", &opt.simt,
              "use the simt-annotated variant")
        .flag("--dense-loop", &opt.dense_loop,
              "disable skip-idle scheduling (diag engine; equivalence "
              "debugging — must not change any reported number)")
        .flag("--list-workloads", &list_workloads,
              "list the benchmark inventory")
        .flag("--stats", &opt.stats, "dump all model counters")
        .flag("--regs", &opt.regs, "dump final integer registers")
        .option("--max-insts", &opt.max_insts, "N",
                "instruction budget")
        .option("--max-cycles", &opt.max_cycles, "N",
                "cycle ceiling (timeout)")
        .flag("--golden-diff", &opt.golden_diff,
              "diff final state vs golden")
        .option("--diff-fuzz", &opt.diff_fuzz, "N",
                "differential fuzz N seeds")
        .jobsFlag(&opt.jobs)
        .flag("--validate", &opt.validate,
              "cross-check vs the static bound")
        .seedFlag(&opt.seed)
        .option("--trace", &opt.trace_file, "FILE",
                "write a Chrome/Perfetto trace (diag engine only)")
        .option("--trace-events", &trace_events, "LIST",
                "comma list of event kinds, or 'all'/'default' "
                "(default skips lane-write)")
        .option("--metrics", &opt.metrics_file, "FILE",
                "write IPC/occupancy time series")
        .option("--metrics-stride", &opt.metrics_stride, "N",
                "sample bucket width in cycles (default 1000 with "
                "--metrics)")
        .option("--stats-json", &opt.stats_json, "FILE",
                "byte-stable JSON counter dump")
        .flag("--obs", &opt.obs,
              "report skip-idle fast-path coverage (diag engine; "
              "never changes cycles or counters)")
        .option("--obs-json", &opt.obs_json, "FILE",
                "byte-stable JSON self-profile dump")
        .operands(&files);
    switch (ap.parse(argc, argv)) {
    case harness::ArgParser::Status::Help:
        return 0;
    case harness::ArgParser::Status::Usage:
        return 1;
    case harness::ArgParser::Status::Run:
        break;
    }
    if (list_workloads) {
        listWorkloads();
        return 0;
    }
    if (!trace_events.empty()) {
        std::string bad;
        fatal_if(!trace::parseEventMask(trace_events,
                                        opt.trace_events, bad),
                 "unknown trace event kind '%s'", bad.c_str());
    }
    fatal_if(files.size() > 1, "more than one program file given");
    if (!files.empty())
        opt.file = files.front();
    if (opt.diff_fuzz > 0)
        return runDiffFuzz(opt);
    if (!opt.workload.empty())
        return runWorkload(opt);
    if (opt.file.empty()) {
        ap.usage();
        fatal("no program file or --workload given");
    }
    return runFile(opt);
}
