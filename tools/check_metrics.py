#!/usr/bin/env python3
"""Validate diag-obs metric JSON (CI obs smoke). Stdlib only.

Accepts any of the JSON shapes the obs layer emits and checks every
metric registry found inside against the MetricRegistry::dumpJson
schema (DESIGN.md §16):

  * a bare registry dump — diag-run --obs-json, diag-serve --batch's
    {"obs": ...} summary line;
  * a soak report — diag-serve --soak --json, whose "obs" member is a
    registry;
  * any other JSON object — searched recursively for registry-shaped
    objects (an object with "group", "counters", "gauges",
    "histograms").

Per registry, enforces:
  * the four sections exist with the right types and the group name is
    a non-empty string;
  * counters and gauges are string -> non-negative integer;
  * every histogram has integer count/sum/max/p50/p95/p99 and a
    buckets array of [upper_bound, count] pairs with strictly
    increasing bounds and positive counts;
  * histogram internal consistency: bucket counts sum to count,
    p50 <= p95 <= p99 <= max, and max lies within the top bucket.

With --require NAME (repeatable), fails unless a histogram (or
counter) with that key exists in some registry — CI uses this to
assert that e.g. total_ms percentiles are actually present in the soak
report rather than vacuously validating an empty object.

Usage: check_metrics.py FILE.json [FILE.json ...] [--require KEY]
"""

import argparse
import json
import sys

FAILED = False


def err(where: str, msg: str) -> None:
    global FAILED
    FAILED = True
    print(f"check_metrics: FAIL: {where}: {msg}")


def is_uint(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_scalar_map(where: str, section: str, m) -> None:
    if not isinstance(m, dict):
        err(where, f"'{section}' is not an object")
        return
    for k, v in m.items():
        if not is_uint(v):
            err(where, f"{section}[{k!r}] = {v!r} is not a "
                       f"non-negative integer")


def check_histogram(where: str, h) -> None:
    if not isinstance(h, dict):
        err(where, "histogram is not an object")
        return
    for key in ("count", "sum", "max", "p50", "p95", "p99"):
        if not is_uint(h.get(key)):
            err(where, f"'{key}' missing or not a non-negative "
                       f"integer")
            return
    buckets = h.get("buckets")
    if not isinstance(buckets, list):
        err(where, "'buckets' is not an array")
        return
    prev_upper = -1
    total = 0
    for i, b in enumerate(buckets):
        if (not isinstance(b, list) or len(b) != 2
                or not is_uint(b[0]) or not is_uint(b[1])):
            err(where, f"buckets[{i}] is not an "
                       f"[upper_bound, count] pair of integers")
            return
        upper, count = b
        if upper <= prev_upper:
            err(where, f"buckets[{i}] bound {upper} not above the "
                       f"previous bound {prev_upper}")
        if count == 0:
            err(where, f"buckets[{i}] has a zero count (empty "
                       f"buckets must be omitted)")
        prev_upper = upper
        total += count
    if total != h["count"]:
        err(where, f"bucket counts sum to {total}, 'count' says "
                   f"{h['count']}")
    if not h["p50"] <= h["p95"] <= h["p99"] <= h["max"]:
        err(where, f"percentiles not monotonic: p50={h['p50']} "
                   f"p95={h['p95']} p99={h['p99']} max={h['max']}")
    if buckets and h["max"] > buckets[-1][0]:
        err(where, f"max {h['max']} above the top bucket bound "
                   f"{buckets[-1][0]}")


def is_registry(obj) -> bool:
    return (isinstance(obj, dict)
            and {"group", "counters", "gauges",
                 "histograms"} <= set(obj))


def check_registry(where: str, reg: dict, seen_keys: set) -> None:
    if not (isinstance(reg.get("group"), str) and reg["group"]):
        err(where, "'group' missing or empty")
    check_scalar_map(where, "counters", reg.get("counters"))
    check_scalar_map(where, "gauges", reg.get("gauges"))
    hists = reg.get("histograms")
    if not isinstance(hists, dict):
        err(where, "'histograms' is not an object")
        return
    for name, h in hists.items():
        check_histogram(f"{where}.histograms[{name!r}]", h)
    for section in ("counters", "gauges", "histograms"):
        if isinstance(reg.get(section), dict):
            seen_keys.update(reg[section])


def find_registries(obj, where: str, out: list) -> None:
    if is_registry(obj):
        out.append((where, obj))
        return
    if isinstance(obj, dict):
        for k, v in obj.items():
            find_registries(v, f"{where}.{k}", out)
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            find_registries(v, f"{where}[{i}]", out)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("files", nargs="+")
    ap.add_argument("--require", action="append", default=[],
                    metavar="KEY",
                    help="fail unless this metric key exists in some "
                         "registry (repeatable)")
    args = ap.parse_args()

    seen_keys: set = set()
    total = 0
    for path in args.files:
        with open(path) as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                err(path, f"not JSON: {e}")
                continue
        regs: list = []
        find_registries(doc, path, regs)
        if not regs:
            err(path, "no metric registry found (expected an object "
                      "with group/counters/gauges/histograms)")
            continue
        for where, reg in regs:
            check_registry(where, reg, seen_keys)
        total += len(regs)
    for key in args.require:
        if key not in seen_keys:
            err("--require", f"metric {key!r} absent from every "
                             f"registry")
    if FAILED:
        sys.exit(1)
    print(f"check_metrics: PASS ({total} registries, "
          f"{len(seen_keys)} distinct metric keys)")


if __name__ == "__main__":
    main()
