#!/usr/bin/env bash
# Regenerate the analysis golden snapshots from a built tree.
#
#   tools/update_goldens.sh [build-dir]
#
# The snapshot is the diag-bound JSON (lint findings + bound model)
# for every bundled workload, compared byte-for-byte by the
# `analysis_goldens` ctest. Rerun this after any intentional change
# to the analyzer or the workloads, then commit the diff.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

for tool in diag-bound diag-stream; do
    bin="$build/tools-bin/$tool"
    if [[ ! -x "$bin" ]]; then
        echo "error: $bin not built (cmake --build $build)" >&2
        exit 1
    fi
done

out="$repo/tests/golden/analysis_all_workloads.json"
"$build/tools-bin/diag-bound" --all-workloads --json > "$out"
echo "wrote $out ($(wc -c < "$out") bytes)"

out="$repo/tests/golden/stream_all_workloads.json"
"$build/tools-bin/diag-stream" --all-workloads --json > "$out"
echo "wrote $out ($(wc -c < "$out") bytes)"
