#!/usr/bin/env bash
# Regenerate the analysis golden snapshots from a built tree.
#
#   tools/update_goldens.sh [build-dir]
#
# The snapshot is the diag-bound JSON (lint findings + bound model)
# for every bundled workload, compared byte-for-byte by the
# `analysis_goldens` ctest. Rerun this after any intentional change
# to the analyzer or the workloads, then commit the diff.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
bound="$build/tools-bin/diag-bound"

if [[ ! -x "$bound" ]]; then
    echo "error: $bound not built (cmake --build $build)" >&2
    exit 1
fi

out="$repo/tests/golden/analysis_all_workloads.json"
"$bound" --all-workloads --json > "$out"
echo "wrote $out ($(wc -c < "$out") bytes)"
