/**
 * @file
 * diag-fault: seeded fault-injection campaign driver.
 *
 *   diag-fault --workload NAME [options]
 *     --config I4C2|F4C2|F4C16|F4C32   DiAG preset (default F4C16)
 *     --trials N          injections to run (default 20)
 *     --seed S            campaign seed; reruns are bit-identical
 *     --sites LIST        comma list of lane,timing,pe,stuck,
 *                         memlane,memdata,cache (default all)
 *     --no-parity         disable the lane-parity detector
 *     --no-lockstep       disable the golden-lockstep oracle
 *     --jobs N            host threads running trials (default: one
 *                         per hardware thread; 1 = serial). The JSON
 *                         report is byte-identical for any N.
 *     --json FILE         write the JSON report to FILE ("-" = stdout)
 *     --assert-no-sdc     exit 1 if any undetected SDC occurred
 *     --verbose           narrate every trial (line order may vary
 *                         across workers when --jobs > 1)
 *
 * Exit codes: 0 campaign ran (and --assert-no-sdc held), 1 usage
 * error or SDC assertion failure.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/log.hpp"
#include "fault/campaign.hpp"

using namespace diag;

namespace
{

void
usage()
{
    std::printf(
        "usage: diag-fault --workload NAME [options]\n"
        "  --config I4C2|F4C2|F4C16|F4C32   DiAG preset (F4C16)\n"
        "  --trials N           injections to run (default 20)\n"
        "  --seed S             campaign seed (bit-reproducible)\n"
        "  --sites LIST         lane,timing,pe,stuck,memlane,\n"
        "                       memdata,cache,all (default all)\n"
        "  --no-parity          disable lane parity\n"
        "  --no-lockstep        disable the golden-lockstep oracle\n"
        "  --jobs N             host threads (default: hardware "
        "concurrency)\n"
        "  --json FILE          write JSON report (\"-\" = stdout)\n"
        "  --assert-no-sdc      exit 1 on any undetected SDC\n"
        "  --verbose            narrate every trial\n");
}

core::DiagConfig
configByName(const std::string &name)
{
    if (name == "I4C2")
        return core::DiagConfig::i4c2();
    if (name == "F4C2")
        return core::DiagConfig::f4c2();
    if (name == "F4C16")
        return core::DiagConfig::f4c16();
    if (name == "F4C32")
        return core::DiagConfig::f4c32();
    fatal("unknown DiAG configuration '%s'", name.c_str());
}

void
printSummary(const fault::CampaignReport &rep)
{
    const auto &t = rep.total;
    std::printf("campaign: %s, %u trials, seed %llu\n",
                rep.spec.workload.c_str(), rep.spec.trials,
                static_cast<unsigned long long>(rep.spec.seed));
    std::printf("  fired     %llu/%llu\n",
                static_cast<unsigned long long>(t.fired),
                static_cast<unsigned long long>(t.trials));
    std::printf("  masked    %llu\n",
                static_cast<unsigned long long>(t.masked));
    std::printf("  detected  %llu (recovered %llu)\n",
                static_cast<unsigned long long>(t.detected),
                static_cast<unsigned long long>(t.recovered));
    std::printf("  sdc       %llu\n",
                static_cast<unsigned long long>(t.sdc));
    std::printf("  hang      %llu\n",
                static_cast<unsigned long long>(t.hang));
    for (unsigned s = 0;
         s < static_cast<unsigned>(fault::FaultSite::Count); ++s) {
        const auto &ss = rep.by_site[s];
        if (ss.trials == 0)
            continue;
        std::printf(
            "  %-8s trials %-3llu masked %-3llu detected %-3llu "
            "sdc %-3llu hang %llu\n",
            fault::siteName(static_cast<fault::FaultSite>(s)),
            static_cast<unsigned long long>(ss.trials),
            static_cast<unsigned long long>(ss.masked),
            static_cast<unsigned long long>(ss.detected),
            static_cast<unsigned long long>(ss.sdc),
            static_cast<unsigned long long>(ss.hang));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    fault::CampaignSpec spec;
    spec.jobs = 0;  // CLI default: one host worker per hardware thread
    std::string json_path;
    bool assert_no_sdc = false;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload") {
            spec.workload = next();
        } else if (arg == "--config") {
            spec.config = configByName(next());
        } else if (arg == "--trials") {
            spec.trials =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--seed") {
            spec.seed = std::stoull(next());
        } else if (arg == "--sites") {
            const std::string list = next();
            spec.site_mask = fault::parseSiteMask(list);
            fatal_if(spec.site_mask == 0,
                     "bad --sites list '%s'", list.c_str());
        } else if (arg == "--no-parity") {
            spec.parity = false;
        } else if (arg == "--no-lockstep") {
            spec.lockstep = false;
        } else if (arg == "--jobs") {
            spec.jobs = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--assert-no-sdc") {
            assert_no_sdc = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (spec.workload.empty()) {
        usage();
        fatal("--workload is required");
    }

    const fault::CampaignReport rep =
        fault::runCampaign(spec, verbose);
    printSummary(rep);

    if (!json_path.empty()) {
        const std::string json = rep.renderJson();
        if (json_path == "-") {
            std::fwrite(json.data(), 1, json.size(), stdout);
        } else {
            std::ofstream out(json_path);
            fatal_if(!out.good(), "cannot write '%s'",
                     json_path.c_str());
            out << json;
        }
    }

    if (assert_no_sdc && rep.total.sdc > 0) {
        std::printf("ASSERTION FAILED: %llu undetected SDC(s)\n",
                    static_cast<unsigned long long>(rep.total.sdc));
        return 1;
    }
    return 0;
}
