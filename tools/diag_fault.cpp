/**
 * @file
 * diag-fault: seeded fault-injection campaign driver.
 *
 *   diag-fault --workload NAME [options]
 *     --config I4C2|F4C2|F4C16|F4C32   DiAG preset (default F4C16)
 *     --trials N          injections to run (default 20)
 *     --seed S            campaign seed; reruns are bit-identical
 *     --sites LIST        comma list of lane,timing,pe,stuck,
 *                         memlane,memdata,cache (default all)
 *     --no-parity         disable the lane-parity detector
 *     --no-lockstep       disable the golden-lockstep oracle
 *     --jobs N            host threads running trials (default: one
 *                         per hardware thread; 1 = serial). The JSON
 *                         report is byte-identical for any N.
 *     --trial-timeout-ms MS  wall-clock watchdog per trial (default
 *                         120000, 0 = uncapped) so one pathological
 *                         seed cannot wedge a CI job
 *     --json FILE         write the JSON report to FILE ("-" = stdout)
 *     --assert-no-sdc     exit 1 if any undetected SDC occurred
 *     --verbose           narrate every trial (line order may vary
 *                         across workers when --jobs > 1)
 *
 * Exit codes: 0 campaign ran (and --assert-no-sdc held), 1 usage
 * error or SDC assertion failure.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/log.hpp"
#include "fault/campaign.hpp"
#include "harness/cli.hpp"

using namespace diag;

namespace
{

void
printSummary(const fault::CampaignReport &rep)
{
    const auto &t = rep.total;
    std::printf("campaign: %s, %u trials, seed %llu\n",
                rep.spec.workload.c_str(), rep.spec.trials,
                static_cast<unsigned long long>(rep.spec.seed));
    std::printf("  fired     %llu/%llu\n",
                static_cast<unsigned long long>(t.fired),
                static_cast<unsigned long long>(t.trials));
    std::printf("  masked    %llu\n",
                static_cast<unsigned long long>(t.masked));
    std::printf("  detected  %llu (recovered %llu)\n",
                static_cast<unsigned long long>(t.detected),
                static_cast<unsigned long long>(t.recovered));
    std::printf("  sdc       %llu\n",
                static_cast<unsigned long long>(t.sdc));
    std::printf("  hang      %llu\n",
                static_cast<unsigned long long>(t.hang));
    for (unsigned s = 0;
         s < static_cast<unsigned>(fault::FaultSite::Count); ++s) {
        const auto &ss = rep.by_site[s];
        if (ss.trials == 0)
            continue;
        std::printf(
            "  %-8s trials %-3llu masked %-3llu detected %-3llu "
            "sdc %-3llu hang %llu\n",
            fault::siteName(static_cast<fault::FaultSite>(s)),
            static_cast<unsigned long long>(ss.trials),
            static_cast<unsigned long long>(ss.masked),
            static_cast<unsigned long long>(ss.detected),
            static_cast<unsigned long long>(ss.sdc),
            static_cast<unsigned long long>(ss.hang));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    fault::CampaignSpec spec;
    spec.jobs = 0;  // CLI default: one host worker per hardware thread
    std::string config_name = spec.config.name;
    std::string sites;
    std::string json_path;
    bool no_parity = false;
    bool no_lockstep = false;
    bool assert_no_sdc = false;
    bool verbose = false;
    harness::ArgParser ap("diag-fault");
    ap.option("--workload", &spec.workload, "NAME",
              "the benchmark kernel to inject into (required)")
        .configFlag(&config_name)
        .option("--trials", &spec.trials, "N",
                "injections to run (default 20)")
        .seedFlag(&spec.seed)
        .option("--sites", &sites, "LIST",
                "lane,timing,pe,stuck,memlane,memdata,cache,all "
                "(default all)")
        .flag("--no-parity", &no_parity,
              "disable the lane-parity detector")
        .flag("--no-lockstep", &no_lockstep,
              "disable the golden-lockstep oracle")
        .jobsFlag(&spec.jobs)
        .option("--trial-timeout-ms", &spec.host_trial_timeout_ms,
                "MS",
                "wall-clock cap per trial, 0 = uncapped (default "
                "120000); exceeding it classifies the trial as a "
                "hang by the host watchdog")
        .option("--json", &json_path, "FILE",
                "write the JSON report to FILE (\"-\" = stdout)")
        .flag("--assert-no-sdc", &assert_no_sdc,
              "exit 1 on any undetected SDC")
        .flag("--verbose", &verbose, "narrate every trial");
    switch (ap.parse(argc, argv)) {
    case harness::ArgParser::Status::Help:
        return 0;
    case harness::ArgParser::Status::Usage:
        return 1;
    case harness::ArgParser::Status::Run:
        break;
    }
    spec.config = harness::configByName(config_name);
    if (!sites.empty()) {
        spec.site_mask = fault::parseSiteMask(sites);
        fatal_if(spec.site_mask == 0, "bad --sites list '%s'",
                 sites.c_str());
    }
    spec.parity = !no_parity;
    spec.lockstep = !no_lockstep;
    if (spec.workload.empty()) {
        ap.usage();
        fatal("--workload is required");
    }

    const fault::CampaignReport rep =
        fault::runCampaign(spec, verbose);
    printSummary(rep);

    if (!json_path.empty()) {
        const std::string json = rep.renderJson();
        if (json_path == "-") {
            std::fwrite(json.data(), 1, json.size(), stdout);
        } else {
            std::ofstream out(json_path);
            fatal_if(!out.good(), "cannot write '%s'",
                     json_path.c_str());
            out << json;
        }
    }

    if (assert_no_sdc && rep.total.sdc > 0) {
        std::printf("ASSERTION FAILED: %llu undetected SDC(s)\n",
                    static_cast<unsigned long long>(rep.total.sdc));
        return 1;
    }
    return 0;
}
