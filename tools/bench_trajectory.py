#!/usr/bin/env python3
"""Accumulate benchmark captures into BENCH_trajectory.json.

Each committed BENCH_*.json is a single google-benchmark capture that
gets *overwritten* when a baseline is refreshed — the history of how
throughput moved across PRs lives only in git archaeology. This tool
distills each capture into a compact dated record and appends it to a
trajectory file, so performance over time is one `git log`-free read.

A record keeps only what trend analysis needs: the capture date, which
bench produced it, the build context that makes the numbers comparable
(build type, optimization, any diag_* self-profile context such as the
skip-idle batcher coverage emitted by bench_sim_speed), and the per-s
rate counters of every benchmark in the capture.

Usage:
  bench_trajectory.py append BENCH_sim_speed.json [--trajectory FILE]
                                                  [--dedup]
  bench_trajectory.py show [--trajectory FILE]
  bench_trajectory.py validate [--trajectory FILE]

append  distill the capture and append its record (with --dedup, skip
        when an identical record is already the latest for that bench).
show    print one line per record: date, bench, headline rates.
validate exit non-zero unless the file matches the schema below; also
        invoked by check_bench.py --trajectory.

Schema (version 1):
  {"version": 1,
   "records": [
     {"date": "...", "bench": "bench_sim_speed",
      "context": {"library_build_type": "release", ...},
      "rates": {"BM_DiagModel": {"sim_inst_per_s": 6.77e7}, ...}},
     ...]}

Records are append-only and kept in file order (which is capture-append
order, not necessarily date order — reruns of old captures are legal).
Stdlib only.
"""

import argparse
import json
import os
import sys

SCHEMA_VERSION = 1

# Context keys worth tracking across captures: everything that changes
# the meaning of the numbers, none of the per-host noise (cache sizes,
# load average) that would make every record unique.
CONTEXT_KEYS = ("library_build_type", "host_name", "num_cpus")


def fail(msg: str) -> None:
    print(f"bench_trajectory: FAIL: {msg}")
    sys.exit(1)


def load_trajectory(path: str) -> dict:
    if not os.path.exists(path):
        return {"version": SCHEMA_VERSION, "records": []}
    with open(path) as f:
        doc = json.load(f)
    errs = validate_doc(doc)
    if errs:
        fail(f"{path}: {errs[0]}")
    return doc


def validate_doc(doc) -> list:
    """Schema errors in @p doc, empty when valid."""
    errs = []
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    if doc.get("version") != SCHEMA_VERSION:
        errs.append(f"version is {doc.get('version')!r}, "
                    f"expected {SCHEMA_VERSION}")
    records = doc.get("records")
    if not isinstance(records, list):
        return errs + ["'records' is not an array"]
    for i, rec in enumerate(records):
        where = f"records[{i}]"
        if not isinstance(rec, dict):
            errs.append(f"{where} is not an object")
            continue
        for key, kind in (("date", str), ("bench", str),
                          ("context", dict), ("rates", dict)):
            if not isinstance(rec.get(key), kind):
                errs.append(f"{where}.{key} missing or not "
                            f"{kind.__name__}")
        for name, counters in rec.get("rates", {}).items():
            if not isinstance(counters, dict):
                errs.append(f"{where}.rates[{name!r}] is not an object")
                continue
            for ck, cv in counters.items():
                if not isinstance(cv, (int, float)):
                    errs.append(f"{where}.rates[{name!r}].{ck} is not "
                                f"a number")
    return errs


def distill(capture: dict, bench_json_path: str) -> dict:
    """A trajectory record from one google-benchmark capture."""
    ctx = capture.get("context", {})
    exe = ctx.get("executable", "")
    bench = os.path.basename(exe) or \
        os.path.basename(bench_json_path).replace("BENCH_", "") \
                                         .replace(".json", "")
    record_ctx = {k: ctx[k] for k in CONTEXT_KEYS if k in ctx}
    # diag_* keys are this repo's own AddCustomContext payload (build
    # type, optimization, skip-idle batcher coverage) — keep them all.
    record_ctx.update(
        {k: v for k, v in ctx.items() if k.startswith("diag_")})
    rates = {}
    for run in capture.get("benchmarks", []):
        counters = {k: v for k, v in run.items()
                    if k.endswith("_per_s")
                    and isinstance(v, (int, float))}
        if counters:
            rates[run["name"]] = counters
    return {"date": ctx.get("date", ""), "bench": bench,
            "context": record_ctx, "rates": rates}


def dump(doc: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def cmd_append(args) -> None:
    with open(args.bench_json) as f:
        capture = json.load(f)
    rec = distill(capture, args.bench_json)
    if not rec["rates"]:
        fail(f"{args.bench_json}: no *_per_s counters to track")
    doc = load_trajectory(args.trajectory)
    if args.dedup:
        latest = next((r for r in reversed(doc["records"])
                       if r["bench"] == rec["bench"]), None)
        if latest == rec:
            print(f"bench_trajectory: {rec['bench']} capture of "
                  f"{rec['date']} already recorded, skipping")
            return
    doc["records"].append(rec)
    dump(doc, args.trajectory)
    print(f"bench_trajectory: appended {rec['bench']} "
          f"({rec['date']}, {len(rec['rates'])} benchmarks) -> "
          f"{args.trajectory} [{len(doc['records'])} records]")


def cmd_show(args) -> None:
    doc = load_trajectory(args.trajectory)
    if not doc["records"]:
        print("bench_trajectory: no records")
        return
    for rec in doc["records"]:
        parts = []
        for name in sorted(rec["rates"]):
            counters = rec["rates"][name]
            key = sorted(counters)[0]
            parts.append(f"{name}={counters[key]:.3e}")
        tail = " ..." if len(parts) > 4 else ""
        print(f"{rec['date']}  {rec['bench']:24s} "
              + "  ".join(parts[:4]) + tail)


def cmd_validate(args) -> None:
    if not os.path.exists(args.trajectory):
        # Tolerated: the trajectory is optional until first append.
        print(f"bench_trajectory: {args.trajectory} absent (ok)")
        return
    with open(args.trajectory) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{args.trajectory}: not JSON: {e}")
    errs = validate_doc(doc)
    for e in errs:
        print(f"bench_trajectory: {args.trajectory}: {e}")
    if errs:
        sys.exit(1)
    print(f"bench_trajectory: {args.trajectory} valid "
          f"({len(doc['records'])} records)")


def main() -> None:
    ap = argparse.ArgumentParser(
        description="accumulate bench captures into a trajectory file")
    ap.add_argument("--trajectory", default="BENCH_trajectory.json")
    sub = ap.add_subparsers(dest="cmd", required=True)
    p_append = sub.add_parser("append")
    p_append.add_argument("bench_json")
    p_append.add_argument("--dedup", action="store_true",
                          help="skip when the latest record for this "
                               "bench is identical")
    sub.add_parser("show")
    sub.add_parser("validate")
    args = ap.parse_args()
    {"append": cmd_append, "show": cmd_show,
     "validate": cmd_validate}[args.cmd](args)


if __name__ == "__main__":
    main()
