/**
 * @file
 * diag-trace: trace capture and bottleneck attribution driver.
 *
 *   diag-trace --workload NAME [options]
 *   diag-trace --all-workloads [options]
 *     --config I4C2|F4C2|F4C16|F4C32   DiAG preset (default: F4C32)
 *     --simt                      run the simt-annotated variant
 *     --threads N                 software threads (default: 1)
 *     --out FILE                  write the Chrome/Perfetto trace
 *     --metrics FILE              write the IPC/occupancy time series
 *     --metrics-stride N          sample bucket width in cycles
 *     --events LIST               comma list of event kinds
 *     --attribution-json FILE     machine-readable attribution
 *     --jobs N                    host threads for --all-workloads
 *
 * Every invocation prints the bottleneck attribution report: measured
 * per-region cycles aligned against the static bound model's
 * prediction, decomposed into fill / steady-state / replica-setup
 * components, with the model's dominant limiter named per region.
 * --all-workloads sweeps every workload that has a simt variant (the
 * validated simt regions) and fans the runs out over host workers;
 * reports print in workload order, byte-identical for any job count.
 *
 * Exit codes: 0 pass, 1 usage/internal error, 2 a run failed its
 * output check or stopped early.
 */
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "harness/validate.hpp"
#include "host/parallel.hpp"
#include "trace/attribution.hpp"
#include "trace/export.hpp"

using namespace diag;

namespace
{

struct Options
{
    std::string config = "F4C32";
    std::string workload;
    std::string out_file;
    std::string metrics_file;
    std::string attribution_json;
    bool simt = false;
    bool all_workloads = false;
    unsigned threads = 1;
    unsigned jobs = 0;
    u32 events = trace::kDefaultEvents;
    u64 metrics_stride = 0;
};

/** One traced run plus its attribution (the per-workload work unit,
 *  self-contained so --all-workloads can fan it out per worker). */
struct TracedRun
{
    harness::EngineRun run;
    trace::AttributionReport attribution;
    bool ok = false;
};

TracedRun
traceOne(const Options &opt, const workloads::Workload &w, bool simt)
{
    const core::DiagConfig cfg =
        harness::configByName(opt.config);

    trace::TraceConfig tc;
    tc.event_mask = opt.events;
    tc.metrics_stride =
        opt.metrics_stride ? opt.metrics_stride
                           : (opt.metrics_file.empty() ? 0 : 1000);

    harness::RunSpec spec;
    spec.threads = opt.threads;
    spec.use_simt = simt;
    spec.tolerate_failures = true;
    spec.trace = &tc;

    TracedRun res;
    res.run = harness::runOnDiag(cfg, w, spec);
    res.ok = res.run.stats.halted && res.run.checked;

    // Attribution: static model of this program vs the run's counters.
    const Program prog =
        assembler::assemble(simt ? w.asm_simt : w.asm_serial);
    const analysis::ProgramAnalysis an = analysis::analyzeProgram(
        prog, harness::lintOptionsFor(cfg));
    res.attribution = trace::attributeRegions(
        an.bound, res.run.stats.counters,
        static_cast<double>(res.run.stats.cycles),
        static_cast<double>(res.run.stats.instructions));
    res.attribution.workload = w.name;
    res.attribution.config = cfg.name;
    res.attribution.simt = simt;
    return res;
}

int
runSingle(const Options &opt)
{
    const workloads::Workload w = workloads::findWorkload(opt.workload);
    if (opt.simt)
        fatal_if(w.asm_simt.empty(), "%s has no simt variant",
                 w.name.c_str());
    const TracedRun res = traceOne(opt, w, opt.simt);

    const trace::TraceMeta meta{w.name, opt.config, opt.simt};
    if (!opt.out_file.empty()) {
        std::ofstream os(opt.out_file);
        fatal_if(!os.good(), "cannot write '%s'", opt.out_file.c_str());
        trace::writeChromeTrace(os, *res.run.trace, meta);
        std::printf("trace    %s (%zu events, %llu dropped)\n",
                    opt.out_file.c_str(),
                    res.run.trace->sink().events().size(),
                    static_cast<unsigned long long>(
                        res.run.trace->sink().dropped()));
        if (res.run.trace->sink().dropped() > 0)
            std::fprintf(stderr,
                         "diag-trace: warning: the trace ring buffer "
                         "dropped %llu events (oldest first); narrow "
                         "--events to keep the whole run\n",
                         static_cast<unsigned long long>(
                             res.run.trace->sink().dropped()));
    }
    if (!opt.metrics_file.empty()) {
        std::ofstream os(opt.metrics_file);
        fatal_if(!os.good(), "cannot write '%s'",
                 opt.metrics_file.c_str());
        trace::writeMetricsJson(os, *res.run.trace, meta);
        std::printf("metrics  %s (%zu samples)\n",
                    opt.metrics_file.c_str(),
                    res.run.trace->metrics().samples().size());
    }
    if (!opt.attribution_json.empty()) {
        std::ofstream os(opt.attribution_json);
        fatal_if(!os.good(), "cannot write '%s'",
                 opt.attribution_json.c_str());
        os << trace::renderAttributionJson(res.attribution);
    }
    std::printf("%s", trace::renderAttribution(res.attribution).c_str());
    if (!res.ok) {
        std::printf("FAIL (exit 2): %s\n",
                    res.run.stats.stop_reason.empty()
                        ? "output check failed"
                        : res.run.stats.stop_reason.c_str());
        return 2;
    }
    return 0;
}

int
runAll(const Options &opt)
{
    // The validated simt inventory: every bundled workload that ships
    // a simt-annotated variant.
    std::vector<workloads::Workload> all;
    for (auto &w : workloads::rodiniaSuite())
        if (!w.asm_simt.empty())
            all.push_back(std::move(w));
    for (auto &w : workloads::specSuite())
        if (!w.asm_simt.empty())
            all.push_back(std::move(w));
    fatal_if(all.empty(), "no simt-annotated workloads found");

    // Each worker owns its run's simulator and tracer (DESIGN.md §11);
    // reports come back in workload order.
    const std::vector<TracedRun> runs = host::parallelMap<TracedRun>(
        opt.jobs, all.size(),
        [&](size_t i) { return traceOne(opt, all[i], true); });

    int rc = 0;
    std::string json = "[";
    for (size_t i = 0; i < runs.size(); ++i) {
        std::printf("%s",
                    trace::renderAttribution(runs[i].attribution)
                        .c_str());
        if (!runs[i].ok) {
            std::printf("FAIL: %s did not pass\n",
                        all[i].name.c_str());
            rc = 2;
        }
        json += (i ? ",\n " : "") +
                trace::renderAttributionJson(runs[i].attribution);
    }
    json += "]\n";
    if (!opt.attribution_json.empty()) {
        std::ofstream os(opt.attribution_json);
        fatal_if(!os.good(), "cannot write '%s'",
                 opt.attribution_json.c_str());
        os << json;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::string events;
    harness::ArgParser ap("diag-trace");
    ap.option("--workload", &opt.workload, "NAME",
              "trace a built-in benchmark kernel")
        .flag("--all-workloads", &opt.all_workloads,
              "sweep every simt-annotated kernel")
        .configFlag(&opt.config)
        .flag("--simt", &opt.simt, "run the simt-annotated variant")
        .option("--threads", &opt.threads, "N",
                "software threads (default 1)")
        .option("--out", &opt.out_file, "FILE",
                "write a Chrome/Perfetto trace")
        .option("--metrics", &opt.metrics_file, "FILE",
                "write IPC/occupancy time series")
        .option("--metrics-stride", &opt.metrics_stride, "N",
                "sample bucket width in cycles (default 1000 with "
                "--metrics)")
        .option("--events", &events, "LIST",
                "comma list of event kinds, or 'all'/'default'")
        .option("--attribution-json", &opt.attribution_json, "FILE",
                "machine-readable attribution")
        .jobsFlag(&opt.jobs);
    switch (ap.parse(argc, argv)) {
    case harness::ArgParser::Status::Help:
        return 0;
    case harness::ArgParser::Status::Usage:
        return 1;
    case harness::ArgParser::Status::Run:
        break;
    }
    if (!events.empty()) {
        std::string bad;
        fatal_if(!trace::parseEventMask(events, opt.events, bad),
                 "unknown trace event kind '%s'", bad.c_str());
    }
    if (opt.all_workloads)
        return runAll(opt);
    if (opt.workload.empty()) {
        ap.usage();
        fatal("no --workload or --all-workloads given");
    }
    return runSingle(opt);
}
