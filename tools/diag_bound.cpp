/**
 * @file
 * diag-bound: static performance-bound & memory-dependence analyzer
 * with simulator cross-validation.
 *
 *   diag-bound [options] [program.s ...]
 *     --workload NAME        analyze a built-in benchmark kernel
 *     --all-workloads        analyze every bundled kernel
 *     --config I4C2|F4C2|F4C16|F4C32   DiAG preset (default F4C32)
 *     --rings N              override the ring count of the preset
 *     --json                 emit machine-readable JSON
 *     --sarif                emit SARIF 2.1.0 (findings only)
 *     --validate             simulate and cross-check the bound model
 *     --slack FRAC           allowed prediction error (default 0.15)
 *     --jobs N               host threads for the sweep (default: one
 *                            per hardware thread); output stays
 *                            byte-identical for any N
 *     --werror               treat warnings as errors (exit status)
 *
 * Analysis mode prints the diag-lint findings (including the memdep
 * pass: load classification, cross-iteration races, CAM pressure)
 * plus the static schedule model: per-block critical paths, resident
 * loop iteration periods, and per-simt-region fill/II bounds.
 *
 * Validation mode additionally runs the workload on the simulator and
 * compares the measured per-region cycles against the model: measured
 * below the *provable* lower bound fails (that is a simulator timing
 * bug), and a prediction off by more than --slack fails (model drift).
 *
 * Exit status: 0 when no errors and validation holds (no warnings
 * either under --werror), 1 otherwise (usage errors included).
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.hpp"
#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/config.hpp"
#include "harness/cli.hpp"
#include "harness/validate.hpp"
#include "host/parallel.hpp"
#include "workloads/workload.hpp"

using namespace diag;

namespace
{

struct Options
{
    std::string config = "F4C32";
    std::string workload;
    std::vector<std::string> files;
    unsigned rings = 0;  //!< 0 = keep the preset's ring count
    unsigned jobs = 0;   //!< host threads for the sweep (0 = auto)
    double slack = 0.15;
    bool all_workloads = false;
    bool json = false;
    bool sarif = false;
    bool validate = false;
    bool werror = false;
};

core::DiagConfig
engineConfig(const Options &opt)
{
    return harness::configWithRings(opt.config, opt.rings);
}

std::string
renderBoundText(const analysis::BoundResult &b)
{
    std::string out;
    for (const auto &blk : b.blocks)
        out += detail::vformat(
            "block 0x%08x..0x%08x: %u insts, critical path >= %llu "
            "cycles\n",
            blk.first, blk.last, blk.insts,
            static_cast<unsigned long long>(blk.crit_lb));
    for (const auto &l : b.loops) {
        out += detail::vformat(
            "loop 0x%08x..0x%08x: %u insts over %u lines, %s", l.head,
            l.tail, l.insts, l.lines,
            l.resident ? "resident (datapath reuse)" : "not resident");
        if (l.iter_pred > 0)
            out += detail::vformat(", ~%.1f cycles/iteration",
                                   l.iter_pred);
        out += "\n";
    }
    for (const auto &r : b.regions)
        out += detail::vformat(
            "simt region 0x%08x..0x%08x: %u-inst body over %u lines, "
            "interval %llu, fill >= %llu, II floor %.2f "
            "(lsu %.2f, unpipelined %.2f, replicas <= %u)\n",
            r.simt_s_pc, r.simt_e_pc, r.body_insts, r.lines,
            static_cast<unsigned long long>(r.interval),
            static_cast<unsigned long long>(r.fill_lb), r.resource_ii,
            r.lsu_ii, r.unpip_ii, r.max_replicas);
    return out;
}

/** True when @p res fails the exit bar of @p opt. */
bool
fails(const analysis::LintResult &res, const Options &opt)
{
    return res.errors() > 0 || (opt.werror && res.warnings() > 0);
}

/**
 * One analysis unit of the sweep: a (label, source) pair, plus the
 * owning workload when the unit may also be simulated for --validate.
 */
struct UnitSpec
{
    std::string label;
    std::string source;
    workloads::Workload w;  //!< empty name = plain file, no validation
    bool simt = false;
    bool abi_entry = true;
};

/** What one unit produces: its printed block (exactly what the serial
 *  sweep would print), its lint result for SARIF, and its fail count. */
struct UnitResult
{
    std::string printed;
    analysis::LintResult lint;
    int bad = 0;
};

/** Analyze (and under --validate simulate) one unit. Pure: all output
 *  is returned, so units can run on host workers in any order. */
UnitResult
processUnit(const UnitSpec &u, const Options &opt)
{
    UnitResult r;
    const Program prog = assembler::assemble(u.source);
    analysis::LintOptions lo =
        harness::lintOptionsFor(engineConfig(opt));
    if (!u.abi_entry)
        lo.entry_defined = analysis::RegSet{};
    analysis::ProgramAnalysis an = analysis::analyzeProgram(prog, lo);
    if (!opt.sarif) {
        if (opt.json) {
            r.printed = detail::vformat(
                "{\"unit\": \"%s\",\n\"lint\": %s,\n\"bound\": %s}\n",
                u.label.c_str(),
                analysis::renderJson(an.lint).c_str(),
                analysis::renderBoundJson(an.bound).c_str());
        } else {
            r.printed = detail::vformat(
                "== %s ==\n%s%s", u.label.c_str(),
                analysis::renderText(an.lint).c_str(),
                renderBoundText(an.bound).c_str());
        }
    }
    r.bad += fails(an.lint, opt);
    if (opt.validate && !u.w.name.empty() && !fails(an.lint, opt)) {
        const harness::ValidationReport rep = harness::validateBound(
            engineConfig(opt), u.w, u.simt, opt.slack);
        if (!opt.json && !opt.sarif)
            r.printed += harness::renderValidation(rep);
        else if (opt.json)
            r.printed += harness::renderValidationJson(rep);
        r.bad += rep.ok() ? 0 : 1;
    }
    r.lint = std::move(an.lint);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    harness::ArgParser ap("diag-bound", "[program.s ...]");
    ap.option("--workload", &opt.workload, "NAME",
              "analyze a built-in benchmark kernel")
        .flag("--all-workloads", &opt.all_workloads,
              "analyze every bundled kernel")
        .configFlag(&opt.config)
        .option("--rings", &opt.rings, "N",
                "override the preset's ring count")
        .jsonFlag(&opt.json)
        .sarifFlag(&opt.sarif)
        .flag("--validate", &opt.validate,
              "simulate and cross-check the model")
        .option("--slack", &opt.slack, "FRAC",
                "allowed prediction error (default 0.15)")
        .jobsFlag(&opt.jobs)
        .werrorFlag(&opt.werror)
        .operands(&opt.files);
    switch (ap.parse(argc, argv)) {
    case harness::ArgParser::Status::Help:
        return 0;
    case harness::ArgParser::Status::Usage:
        return 1;
    case harness::ArgParser::Status::Run:
        break;
    }

    if (!opt.all_workloads && opt.workload.empty() &&
        opt.files.empty()) {
        ap.usage();
        return 2;
    }

    // Collect every unit first (cheap), then fan the analysis +
    // validation out over host workers; printing the returned blocks
    // in unit order keeps the output byte-identical for any --jobs.
    std::vector<UnitSpec> units;
    const auto addWorkload = [&](const workloads::Workload &w) {
        units.push_back({w.name + " (serial)", w.asm_serial, w,
                         /*simt=*/false, /*abi_entry=*/true});
        if (!w.asm_simt.empty())
            units.push_back({w.name + " (simt)", w.asm_simt, w,
                             /*simt=*/true, /*abi_entry=*/true});
    };
    if (opt.all_workloads) {
        for (const auto &w : workloads::rodiniaSuite())
            addWorkload(w);
        for (const auto &w : workloads::specSuite())
            addWorkload(w);
    } else if (!opt.workload.empty()) {
        addWorkload(workloads::findWorkload(opt.workload));
    }
    for (const std::string &file : opt.files) {
        std::ifstream in(file);
        fatal_if(!in.good(), "cannot open '%s'", file.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        units.push_back({file, ss.str(), workloads::Workload{},
                         /*simt=*/false, /*abi_entry=*/false});
    }

    std::vector<UnitResult> results =
        host::parallelMap<UnitResult>(
            opt.jobs, units.size(),
            [&units, &opt](size_t i) {
                return processUnit(units[i], opt);
            });

    std::vector<std::pair<std::string, analysis::LintResult>> sarif_units;
    int bad = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        std::fputs(results[i].printed.c_str(), stdout);
        bad += results[i].bad;
        if (opt.sarif)
            sarif_units.emplace_back(units[i].label,
                                     std::move(results[i].lint));
    }
    if (opt.sarif)
        std::printf("%s\n",
                    analysis::renderSarif(sarif_units, "diag-bound")
                        .c_str());
    return bad ? 1 : 0;
}
