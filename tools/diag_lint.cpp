/**
 * @file
 * diag-lint: static dataflow analyzer for assembled DiAG programs.
 *
 *   diag-lint [options] [program.s ...]
 *     --workload NAME        lint a built-in benchmark kernel
 *     --all-workloads        lint every bundled kernel (both variants)
 *     --config I4C2|F4C2|F4C16|F4C32   DiAG preset (default F4C32)
 *     --rings N              override the ring count of the preset
 *     --json                 emit machine-readable JSON
 *     --sarif                emit SARIF 2.1.0 (one document per run)
 *     --werror               treat warnings as errors (exit status)
 *
 * Passes: CFG construction (unreachable code, control flow leaving the
 * image), register-lane liveness (undefined-lane reads, dead writes,
 * x0 destinations), SIMT region legality (the exact rules the control
 * unit applies at runtime), and datapath-reuse diagnostics (loop spans
 * vs. loaded clusters, I-line straddles).
 *
 * Exit status: 0 when no errors (no warnings either under --werror),
 * 1 when findings fail that bar or on usage errors.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.hpp"
#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/config.hpp"
#include "harness/cli.hpp"
#include "workloads/workload.hpp"

using namespace diag;

namespace
{

struct Options
{
    std::string config = "F4C32";
    std::string workload;
    std::vector<std::string> files;
    unsigned rings = 0;  //!< 0 = keep the preset's ring count
    bool all_workloads = false;
    bool json = false;
    bool sarif = false;
    bool werror = false;
};

/** Units accumulated for the single SARIF document. */
std::vector<std::pair<std::string, analysis::LintResult>> g_sarif_units;

analysis::LintOptions
lintOptions(const Options &opt, bool abi_entry)
{
    const core::DiagConfig cfg =
        harness::configWithRings(opt.config, opt.rings);
    analysis::LintOptions lo =
        abi_entry ? analysis::LintOptions::abiEntry()
                  : analysis::LintOptions{};
    lo.line_bytes = cfg.pes_per_cluster * 4;
    lo.clusters_per_ring = cfg.clustersPerRing();
    lo.simt_enabled = cfg.simt_enabled;
    return lo;
}

/** Lint one unit; prints findings, returns the result. */
analysis::LintResult
lintUnit(const std::string &label, const std::string &source,
         const Options &opt, bool abi_entry)
{
    const Program prog = assembler::assemble(source);
    const analysis::LintResult res =
        analysis::lintProgram(prog, lintOptions(opt, abi_entry));
    if (opt.sarif) {
        g_sarif_units.emplace_back(label, res);
    } else if (opt.json) {
        std::printf("%s\n", analysis::renderJson(res).c_str());
    } else {
        std::printf("== %s ==\n%s", label.c_str(),
                    analysis::renderText(res).c_str());
    }
    return res;
}

/** True when @p res fails the exit bar of @p opt. */
bool
fails(const analysis::LintResult &res, const Options &opt)
{
    return res.errors() > 0 || (opt.werror && res.warnings() > 0);
}

int
lintWorkload(const workloads::Workload &w, const Options &opt)
{
    int bad = 0;
    bad += fails(lintUnit(w.name + " (serial)", w.asm_serial, opt,
                          /*abi_entry=*/true),
                 opt);
    if (!w.asm_simt.empty())
        bad += fails(lintUnit(w.name + " (simt)", w.asm_simt, opt,
                              /*abi_entry=*/true),
                     opt);
    return bad;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    harness::ArgParser ap("diag-lint", "[program.s ...]");
    ap.option("--workload", &opt.workload, "NAME",
              "lint a built-in benchmark kernel")
        .flag("--all-workloads", &opt.all_workloads,
              "lint every bundled kernel (both variants)")
        .configFlag(&opt.config)
        .option("--rings", &opt.rings, "N",
                "override the preset's ring count")
        .jsonFlag(&opt.json)
        .sarifFlag(&opt.sarif)
        .werrorFlag(&opt.werror)
        .operands(&opt.files);
    switch (ap.parse(argc, argv)) {
    case harness::ArgParser::Status::Help:
        return 0;
    case harness::ArgParser::Status::Usage:
        return 1;
    case harness::ArgParser::Status::Run:
        break;
    }

    int bad = 0;
    if (opt.all_workloads) {
        for (const auto &w : workloads::rodiniaSuite())
            bad += lintWorkload(w, opt);
        for (const auto &w : workloads::specSuite())
            bad += lintWorkload(w, opt);
    } else if (!opt.workload.empty()) {
        bad += lintWorkload(workloads::findWorkload(opt.workload), opt);
    }
    for (const std::string &file : opt.files) {
        std::ifstream in(file);
        fatal_if(!in.good(), "cannot open '%s'", file.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        bad += fails(lintUnit(file, ss.str(), opt, /*abi_entry=*/false),
                     opt);
    }
    if (!opt.all_workloads && opt.workload.empty() &&
        opt.files.empty()) {
        ap.usage();
        return 2;
    }
    if (opt.sarif)
        std::printf("%s\n",
                    analysis::renderSarif(g_sarif_units, "diag-lint")
                        .c_str());
    return bad ? 1 : 0;
}
