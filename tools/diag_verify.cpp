/**
 * @file
 * diag-verify: abstract-interpretation program verifier with a
 * SIMT-aware differential fuzzer checking its own soundness.
 *
 * Verification mode (default) decides, per program, the safety
 * properties of analysis/verify.hpp — control safety, div-by-zero /
 * alignment / bounds freedom, and per-simt-region race and deadlock
 * freedom — each as proven / refuted / unknown, and prints the
 * verdicts plus any findings. Workload units verify against the
 * kernel's declared data map (Workload::data_ranges).
 *
 * Fuzz mode (--fuzz N) generates N seeded programs (scalar trap
 * hazards and simt regions with injected races) and cross-checks
 * every verdict against the golden reference, the DiAG model, and
 * the OoO baseline (harness::validateVerify): an unsound proof or a
 * bogus refutation fails the corpus. Failing programs can be dumped
 * for CI artifact upload with --dump-failing.
 *
 * Exit status: 0 when every unit verifies clean (or the whole corpus
 * holds up), 1 on refuted properties / unsound verdicts (or warnings
 * under --werror) and on usage errors.
 */
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/verify.hpp"
#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/config.hpp"
#include "harness/cli.hpp"
#include "harness/validate.hpp"
#include "harness/validate_verify.hpp"
#include "host/parallel.hpp"
#include "workloads/workload.hpp"

using namespace diag;

namespace
{

struct Options
{
    std::string config = "F4C32";
    std::string workload;
    std::string profile = "mixed";
    std::string dump_dir;
    std::vector<std::string> files;
    unsigned rings = 0;  //!< 0 = keep the preset's ring count
    unsigned jobs = 0;   //!< host threads for the sweep (0 = auto)
    unsigned fuzz = 0;   //!< 0 = verification mode
    u64 fuzz_timeout_ms = 60000; //!< host watchdog per fuzz seed
    u64 seed = 1;
    bool all_workloads = false;
    bool json = false;
    bool sarif = false;
    bool verbose = false;
    bool werror = false;
};

/** One verification unit: a (label, source) pair plus its data map. */
struct UnitSpec
{
    std::string label;
    std::string source;
    std::vector<std::pair<Addr, u32>> extra_ranges;
    bool abi_entry = true;
};

/** What one unit produces, printable in unit order for any --jobs. */
struct UnitResult
{
    std::string printed;
    analysis::LintResult findings;
    int bad = 0;
};

/** Verify one unit. Pure: all output is returned, so units can run
 *  on host workers in any order. */
UnitResult
processUnit(const UnitSpec &u, const Options &opt,
            const core::DiagConfig &cfg)
{
    UnitResult r;
    const Program prog = assembler::assemble(u.source);
    analysis::VerifyOptions vo;
    vo.lint = harness::lintOptionsFor(cfg);
    if (!u.abi_entry)
        vo.lint.entry_defined = analysis::RegSet{};
    vo.extra_ranges = u.extra_ranges;
    analysis::VerifyResult res = analysis::verifyProgram(prog, vo);
    if (opt.json)
        r.printed = detail::vformat(
            "{\"unit\": \"%s\",\n\"verify\": %s}\n", u.label.c_str(),
            analysis::renderVerifyJson(res).c_str());
    else if (!opt.sarif)
        r.printed =
            detail::vformat("== %s ==\n%s", u.label.c_str(),
                            analysis::renderVerifyText(res).c_str());
    r.bad = (!res.clean() ||
             (opt.werror && res.report.warnings() > 0))
                ? 1
                : 0;
    r.findings = std::move(res.report);
    return r;
}

harness::FuzzProfile
profileByName(const std::string &name)
{
    if (name == "scalar")
        return harness::FuzzProfile::Scalar;
    if (name == "simt")
        return harness::FuzzProfile::Simt;
    if (name == "mixed")
        return harness::FuzzProfile::Mixed;
    fatal("unknown fuzz profile '%s' (scalar|simt|mixed)",
          name.c_str());
}

/** The --fuzz mode: a seeded differential corpus. */
int
runFuzz(const Options &opt, const core::DiagConfig &cfg)
{
    const harness::VerifyFuzzReport rep = harness::runVerifyFuzz(
        cfg, opt.seed, opt.fuzz, opt.jobs, profileByName(opt.profile),
        opt.fuzz_timeout_ms);
    std::fputs(harness::renderVerifyFuzz(rep, opt.verbose).c_str(),
               stdout);
    if (!opt.dump_dir.empty() && !rep.ok()) {
        std::filesystem::create_directories(opt.dump_dir);
        for (const harness::VerifyCheck &c : rep.checks) {
            if (c.ok())
                continue;
            const std::string path = detail::vformat(
                "%s/seed_%llu.s", opt.dump_dir.c_str(),
                static_cast<unsigned long long>(c.seed));
            std::ofstream out(path);
            out << "# diag-verify fuzz failure, seed "
                << c.seed << "\n";
            for (const std::string &f : c.failures)
                out << "#   " << f << "\n";
            if (!c.engines_match)
                out << "#   engine state mismatch vs golden\n";
            out << c.source;
            std::printf("wrote %s\n", path.c_str());
        }
    }
    return rep.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    harness::ArgParser ap("diag-verify", "[program.s ...]");
    ap.option("--workload", &opt.workload, "NAME",
              "verify a built-in benchmark kernel")
        .flag("--all-workloads", &opt.all_workloads,
              "verify every bundled kernel")
        .configFlag(&opt.config)
        .option("--rings", &opt.rings, "N",
                "override the preset's ring count")
        .jsonFlag(&opt.json)
        .sarifFlag(&opt.sarif)
        .option("--fuzz", &opt.fuzz, "N",
                "cross-validate verdicts on N generated programs")
        .option("--profile", &opt.profile, "scalar|simt|mixed",
                "fuzz generator profile (default mixed)")
        .option("--fuzz-timeout-ms", &opt.fuzz_timeout_ms, "MS",
                "wall-clock cap per fuzz seed, 0 = uncapped "
                "(default 60000)")
        .seedFlag(&opt.seed)
        .option("--dump-failing", &opt.dump_dir, "DIR",
                "write failing fuzz programs into DIR")
        .flag("--verbose", &opt.verbose,
              "per-seed fuzz result lines")
        .jobsFlag(&opt.jobs)
        .werrorFlag(&opt.werror)
        .operands(&opt.files);
    switch (ap.parse(argc, argv)) {
    case harness::ArgParser::Status::Help:
        return 0;
    case harness::ArgParser::Status::Usage:
        return 1;
    case harness::ArgParser::Status::Run:
        break;
    }

    const core::DiagConfig cfg =
        harness::configWithRings(opt.config, opt.rings);
    if (opt.fuzz > 0)
        return runFuzz(opt, cfg);

    if (!opt.all_workloads && opt.workload.empty() &&
        opt.files.empty()) {
        std::fprintf(stderr,
                     "diag-verify: error: nothing to verify (give "
                     "--workload, --all-workloads, --fuzz, or a "
                     "program file)\n");
        ap.usage();
        return 1;
    }

    // Collect every unit first (cheap), then fan the verification out
    // over host workers; printing the returned blocks in unit order
    // keeps the output byte-identical for any --jobs.
    std::vector<UnitSpec> units;
    const auto addWorkload = [&](const workloads::Workload &w) {
        units.push_back({w.name + " (serial)", w.asm_serial,
                         w.data_ranges, /*abi_entry=*/true});
        if (!w.asm_simt.empty())
            units.push_back({w.name + " (simt)", w.asm_simt,
                             w.data_ranges, /*abi_entry=*/true});
    };
    if (opt.all_workloads) {
        for (const auto &w : workloads::rodiniaSuite())
            addWorkload(w);
        for (const auto &w : workloads::specSuite())
            addWorkload(w);
    } else if (!opt.workload.empty()) {
        addWorkload(workloads::findWorkload(opt.workload));
    }
    for (const std::string &file : opt.files) {
        std::ifstream in(file);
        fatal_if(!in.good(), "cannot open '%s'", file.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        units.push_back({file, ss.str(), {}, /*abi_entry=*/false});
    }

    std::vector<UnitResult> results = host::parallelMap<UnitResult>(
        opt.jobs, units.size(), [&units, &opt, &cfg](size_t i) {
            return processUnit(units[i], opt, cfg);
        });

    std::vector<std::pair<std::string, analysis::LintResult>>
        sarif_units;
    int bad = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        std::fputs(results[i].printed.c_str(), stdout);
        bad += results[i].bad;
        if (opt.sarif)
            sarif_units.emplace_back(units[i].label,
                                     std::move(results[i].findings));
    }
    if (opt.sarif)
        std::printf("%s\n",
                    analysis::renderSarif(sarif_units, "diag-verify")
                        .c_str());
    return bad ? 1 : 0;
}
