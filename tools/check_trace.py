#!/usr/bin/env python3
"""Validate a diag-run/diag-trace Chrome trace-event JSON file.

Stdlib-only schema check used by the CI trace-smoke job (and handy
before loading a trace into Perfetto): the file must parse as JSON,
carry a traceEvents array, and every event must be one of the phases
the exporter emits with the fields that phase requires. Exits 0 on a
valid trace, 1 with a diagnostic otherwise.

usage: check_trace.py trace.json [--min-events N]
"""
import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(i, ev):
    if not isinstance(ev, dict):
        fail(f"event {i} is not an object")
    ph = ev.get("ph")
    if ph not in ("X", "i", "M"):
        fail(f"event {i}: unexpected phase {ph!r}")
    if "pid" not in ev:
        fail(f"event {i}: missing pid")
    if ph == "M":
        if ev.get("name") not in ("process_name", "thread_name"):
            fail(f"event {i}: metadata name {ev.get('name')!r}")
        if "name" not in ev.get("args", {}):
            fail(f"event {i}: metadata without args.name")
        return
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        fail(f"event {i}: missing name")
    if not isinstance(ev.get("ts"), int) or ev["ts"] < 0:
        fail(f"event {i}: bad ts {ev.get('ts')!r}")
    if "tid" not in ev:
        fail(f"event {i}: missing tid")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, int) or dur < 0:
            fail(f"event {i}: complete event with bad dur {dur!r}")
    if ph == "i" and ev.get("s") not in ("t", "p", "g"):
        fail(f"event {i}: instant event with bad scope")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-events", type=int, default=1,
                    help="require at least N non-metadata events")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents array")
    real = 0
    tracks = set()
    for i, ev in enumerate(events):
        check_event(i, ev)
        if ev.get("ph") == "M":
            tracks.add((ev["pid"], ev.get("tid")))
        else:
            real += 1
            if (ev["pid"], ev.get("tid")) not in tracks and \
               (ev["pid"], None) not in tracks:
                fail(f"event {i} on unnamed track "
                     f"pid={ev['pid']} tid={ev.get('tid')}")
    if real < args.min_events:
        fail(f"only {real} events (< {args.min_events})")
    other = doc.get("otherData", {})
    print(f"check_trace: OK: {real} events on {len(tracks)} named "
          f"tracks, workload={other.get('workload', '?')}, "
          f"dropped={other.get('dropped', '?')}")


if __name__ == "__main__":
    main()
