#!/usr/bin/env python3
"""Gate simulator-throughput benchmark results (CI bench smoke).

Reads a bench_sim_speed --benchmark_out JSON file and fails (exit 1)
when:
  * the timing library self-reports a debug build (the numbers would
    measure the library, not the simulator),
  * the simulator under test was not optimized,
  * BM_DiagModel's sim_inst_per_s falls below the absolute floor
    (guards against the skip-idle scheduler regressing back toward the
    4.5M inst/s dense baseline), or
  * BM_DiagModel is not at least MIN_RATIO times BM_DiagModelDense
    (the steady-state loop batcher's speedup on the bench kernel).

With --trajectory, additionally validates the accumulated
BENCH_trajectory.json (see tools/bench_trajectory.py) against its
schema, so a malformed append fails the bench smoke rather than
rotting silently; an absent trajectory file is tolerated.

Usage: check_bench.py BENCH_sim_speed.json [--floor INSTS_PER_S]
                                           [--ratio MIN_RATIO]
                                           [--trajectory FILE]
"""

import argparse
import json
import os
import sys

import bench_trajectory

# The committed pre-skip-idle baseline measured 4.51M simulated
# instructions per host second for BM_DiagModel; the issue's acceptance
# bar is >= 3x that. CI hosts vary, so the default floor keeps margin.
DEFAULT_FLOOR = 13.5e6
DEFAULT_RATIO = 3.0


def fail(msg: str) -> None:
    print(f"check_bench: FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                    help="minimum BM_DiagModel sim_inst_per_s")
    ap.add_argument("--ratio", type=float, default=DEFAULT_RATIO,
                    help="minimum BM_DiagModel / BM_DiagModelDense")
    ap.add_argument("--trajectory", default=None,
                    help="also validate this BENCH_trajectory.json "
                         "(absent file tolerated)")
    args = ap.parse_args()

    if args.trajectory is not None and os.path.exists(args.trajectory):
        with open(args.trajectory) as f:
            try:
                tdoc = json.load(f)
            except json.JSONDecodeError as e:
                fail(f"{args.trajectory}: not JSON: {e}")
        errs = bench_trajectory.validate_doc(tdoc)
        if errs:
            fail(f"{args.trajectory}: {errs[0]}")
        print(f"check_bench: trajectory {args.trajectory} valid "
              f"({len(tdoc['records'])} records)")

    with open(args.bench_json) as f:
        doc = json.load(f)

    ctx = doc.get("context", {})
    if ctx.get("library_build_type") != "release":
        fail(f"timing library built as "
             f"'{ctx.get('library_build_type')}' — numbers are not a "
             f"measurement (need a Release build of the bench tree)")
    if ctx.get("diag_optimized") == "false":
        fail("simulator under test compiled without optimization")

    rates = {}
    for run in doc.get("benchmarks", []):
        if "sim_inst_per_s" in run:
            rates[run["name"]] = run["sim_inst_per_s"]

    diag = rates.get("BM_DiagModel")
    dense = rates.get("BM_DiagModelDense")
    if diag is None:
        fail("BM_DiagModel missing from the benchmark output")
    if dense is None:
        fail("BM_DiagModelDense missing from the benchmark output")

    print(f"check_bench: BM_DiagModel      {diag:.3e} inst/s")
    print(f"check_bench: BM_DiagModelDense {dense:.3e} inst/s")
    print(f"check_bench: speedup           {diag / dense:.2f}x "
          f"(floor {args.ratio:.2f}x)")

    if diag < args.floor:
        fail(f"BM_DiagModel {diag:.3e} inst/s below the "
             f"{args.floor:.3e} floor")
    if diag < args.ratio * dense:
        fail(f"skip-idle speedup {diag / dense:.2f}x below the "
             f"{args.ratio:.2f}x floor")
    print("check_bench: PASS")


if __name__ == "__main__":
    main()
