/**
 * @file
 * diag-stream: static stream & locality analyzer with
 * trace-differential validation.
 *
 *   diag-stream [options] [program.s ...]
 *     --workload NAME        analyze a built-in benchmark kernel
 *     --all-workloads        analyze every bundled kernel
 *     --config I4C2|F4C2|F4C16|F4C32   DiAG preset (default F4C32)
 *     --rings N              override the ring count of the preset
 *     --json                 emit machine-readable JSON
 *     --sarif                emit SARIF 2.1.0 (findings only)
 *     --validate             record per-instruction addresses on the
 *                            simulator and replay them against the
 *                            predicted affine maps (simt units)
 *     --jobs N               host threads for the sweep (default: one
 *                            per hardware thread); output stays
 *                            byte-identical for any N
 *     --werror               treat warnings as errors (exit status)
 *
 * Analysis mode classifies every memory access of every simt region
 * (and serial single-block loop) as affine / indirect / pointer-chase
 * / unknown, with proven strides, footprint and reuse estimates, L1D
 * bank-conflict verdicts, and a prefetchability class per stream.
 *
 * Validation mode additionally runs each simt workload unit with the
 * address recorder attached: any proven-affine stream whose observed
 * address sequence deviates from the predicted map, or any proven
 * conflict-free stream with an observed same-bank consecutive pair,
 * fails the unit (a soundness bug in the analyzer).
 *
 * Exit status: 0 when no errors and validation holds (no warnings
 * either under --werror), 1 otherwise, 2 when no input was given.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/stream.hpp"
#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/config.hpp"
#include "harness/cli.hpp"
#include "harness/validate.hpp"
#include "harness/validate_stream.hpp"
#include "host/parallel.hpp"
#include "workloads/workload.hpp"

using namespace diag;

namespace
{

struct Options
{
    std::string config = "F4C32";
    std::string workload;
    std::vector<std::string> files;
    unsigned rings = 0;  //!< 0 = keep the preset's ring count
    unsigned jobs = 0;   //!< host threads for the sweep (0 = auto)
    bool all_workloads = false;
    bool json = false;
    bool sarif = false;
    bool validate = false;
    bool werror = false;
};

core::DiagConfig
engineConfig(const Options &opt)
{
    return harness::configWithRings(opt.config, opt.rings);
}

/** True when @p res fails the exit bar of @p opt. */
bool
fails(const analysis::LintResult &res, const Options &opt)
{
    return res.errors() > 0 || (opt.werror && res.warnings() > 0);
}

/**
 * One analysis unit of the sweep: a (label, source) pair, plus the
 * owning workload when the unit may also be simulated for --validate.
 */
struct UnitSpec
{
    std::string label;
    std::string source;
    workloads::Workload w;  //!< empty name = plain file, no validation
    bool simt = false;
    bool abi_entry = true;
};

/** What one unit produces: its printed block (exactly what the serial
 *  sweep would print), its diagnostics for SARIF, and its fail count. */
struct UnitResult
{
    std::string printed;
    analysis::LintResult diags;
    int bad = 0;
};

/** Analyze (and under --validate simulate) one unit. Pure: all output
 *  is returned, so units can run on host workers in any order. */
UnitResult
processUnit(const UnitSpec &u, const Options &opt)
{
    UnitResult r;
    const Program prog = assembler::assemble(u.source);
    analysis::LintOptions lo =
        harness::lintOptionsFor(engineConfig(opt));
    if (!u.abi_entry)
        lo.entry_defined = analysis::RegSet{};
    analysis::LintResult diags;
    const analysis::StreamResult sr =
        analysis::analyzeStreams(prog, lo, diags);
    if (!opt.sarif) {
        if (opt.json) {
            r.printed = detail::vformat(
                "{\"unit\": \"%s\",\n\"diags\": %s,\n\"streams\": %s}\n",
                u.label.c_str(), analysis::renderJson(diags).c_str(),
                analysis::renderStreamJson(sr).c_str());
        } else {
            r.printed = detail::vformat(
                "== %s ==\n%s%s", u.label.c_str(),
                analysis::renderText(diags).c_str(),
                analysis::renderStreamText(sr).c_str());
        }
    }
    r.bad += fails(diags, opt);
    // Validation replays simt regions, so only simt workload units
    // simulate; serial units are static-only.
    if (opt.validate && !u.w.name.empty() && u.simt &&
        !fails(diags, opt)) {
        const harness::StreamValidation rep =
            harness::validateStream(engineConfig(opt), u.w);
        if (!opt.json && !opt.sarif)
            r.printed += harness::renderStreamValidation(rep);
        else if (opt.json)
            r.printed += harness::renderStreamValidationJson(rep);
        r.bad += rep.ok() ? 0 : 1;
    }
    r.diags = std::move(diags);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    harness::ArgParser ap("diag-stream", "[program.s ...]");
    ap.option("--workload", &opt.workload, "NAME",
              "analyze a built-in benchmark kernel")
        .flag("--all-workloads", &opt.all_workloads,
              "analyze every bundled kernel")
        .configFlag(&opt.config)
        .option("--rings", &opt.rings, "N",
                "override the preset's ring count")
        .jsonFlag(&opt.json)
        .sarifFlag(&opt.sarif)
        .flag("--validate", &opt.validate,
              "replay recorded addresses against the predicted maps")
        .jobsFlag(&opt.jobs)
        .werrorFlag(&opt.werror)
        .operands(&opt.files);
    switch (ap.parse(argc, argv)) {
    case harness::ArgParser::Status::Help:
        return 0;
    case harness::ArgParser::Status::Usage:
        return 1;
    case harness::ArgParser::Status::Run:
        break;
    }

    if (!opt.all_workloads && opt.workload.empty() &&
        opt.files.empty()) {
        ap.usage();
        return 2;
    }

    // Collect every unit first (cheap), then fan the analysis +
    // validation out over host workers; printing the returned blocks
    // in unit order keeps the output byte-identical for any --jobs.
    std::vector<UnitSpec> units;
    const auto addWorkload = [&](const workloads::Workload &w) {
        units.push_back({w.name + " (serial)", w.asm_serial, w,
                         /*simt=*/false, /*abi_entry=*/true});
        if (!w.asm_simt.empty())
            units.push_back({w.name + " (simt)", w.asm_simt, w,
                             /*simt=*/true, /*abi_entry=*/true});
    };
    if (opt.all_workloads) {
        for (const auto &w : workloads::rodiniaSuite())
            addWorkload(w);
        for (const auto &w : workloads::specSuite())
            addWorkload(w);
    } else if (!opt.workload.empty()) {
        addWorkload(workloads::findWorkload(opt.workload));
    }
    for (const std::string &file : opt.files) {
        std::ifstream in(file);
        fatal_if(!in.good(), "cannot open '%s'", file.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        units.push_back({file, ss.str(), workloads::Workload{},
                         /*simt=*/false, /*abi_entry=*/false});
    }

    std::vector<UnitResult> results =
        host::parallelMap<UnitResult>(
            opt.jobs, units.size(),
            [&units, &opt](size_t i) {
                return processUnit(units[i], opt);
            });

    std::vector<std::pair<std::string, analysis::LintResult>> sarif_units;
    int bad = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        std::fputs(results[i].printed.c_str(), stdout);
        bad += results[i].bad;
        if (opt.sarif)
            sarif_units.emplace_back(units[i].label,
                                     std::move(results[i].diags));
    }
    if (opt.sarif)
        std::printf("%s\n",
                    analysis::renderSarif(sarif_units, "diag-stream")
                        .c_str());
    return bad ? 1 : 0;
}
