/**
 * @file
 * diag-serve: the fault-tolerant batched simulation service CLI.
 *
 * Two modes:
 *
 *   diag-serve --batch FILE [options]
 *     One-shot: submit every request in FILE through the real
 *     threaded SimService and print one response JSON line per
 *     request (in submit order) plus a service-stats summary.
 *     FILE holds one request per line:
 *        WORKLOAD [CONFIG] [THREADS] [low|normal|high] [DEADLINE_MS]
 *     ('#' starts a comment; later fields default to F4C16 / 1 /
 *     normal / the service default deadline). "-" reads stdin.
 *
 *   diag-serve --soak [options]
 *     Self-driving synthetic load on the deterministic soak DES:
 *     unique request contents are simulated once (in parallel,
 *     --jobs), then admission/shedding/deadlines/retries/breaker/
 *     cache replay on a virtual timeline. The JSON report is
 *     byte-identical for any --jobs value, including under fault
 *     injection (--crash-pct/--stall-pct/--corrupt-pct).
 *
 * Observability: --span-trace FILE writes request-lifecycle spans
 * (queue wait, attempts, backoffs, one Perfetto track per worker) in
 * both modes; batch mode adds --metrics FILE / --metrics-stride N,
 * the same time-series schema diag-run emits, folded across every
 * in-process attempt. Reports embed an "obs" object with per-stage
 * latency histograms (p50/p95/p99) and lifecycle counters.
 *
 * Common service knobs: --workers, --queue-capacity, --deadline-ms,
 * --max-attempts, --restart-budget, --no-cache, --subprocess
 * (batch mode only: run each attempt in a forked, crash-isolated
 * child), --seed.
 *
 * Exit codes: 0 ran (and --assert-robust held), 1 usage error or
 * robustness assertion failure.
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "harness/cli.hpp"
#include "obs/serve_obs.hpp"
#include "serve/service.hpp"
#include "serve/soak.hpp"
#include "trace/export.hpp"

using namespace diag;

namespace
{

/** Parse one batch line into a request; false on malformed syntax
 *  (semantic validation happens in the service). */
bool
parseBatchLine(const std::string &line, u64 id, u64 default_deadline,
               serve::SimRequest *out)
{
    std::istringstream is(line);
    serve::SimRequest q;
    q.id = id;
    q.deadline_ms = default_deadline;
    if (!(is >> q.workload))
        return false;
    std::string prio;
    if (is >> q.config && is >> q.threads && is >> prio) {
        if (prio == "low")
            q.priority = serve::Priority::Low;
        else if (prio == "normal")
            q.priority = serve::Priority::Normal;
        else if (prio == "high")
            q.priority = serve::Priority::High;
        else
            return false;
        u64 dl;
        if (is >> dl)
            q.deadline_ms = dl;
    }
    *out = q;
    return true;
}

/** Write request-lifecycle spans as Perfetto JSON. */
void
writeSpans(const std::string &path,
           const std::vector<trace::SpanEvent> &spans,
           const trace::TraceMeta &meta)
{
    std::ofstream os(path);
    fatal_if(!os.good(), "cannot write '%s'", path.c_str());
    trace::writeSpanTrace(os, spans, meta);
    std::fprintf(stderr, "spans: %s (%zu spans)\n", path.c_str(),
                 spans.size());
}

int
runBatch(const std::string &path, const serve::ServiceConfig &cfg,
         const std::string &metrics_file,
         const std::string &span_file)
{
    std::ifstream file;
    std::istream *in = &std::cin;
    if (path != "-") {
        file.open(path);
        fatal_if(!file.good(), "cannot read '%s'", path.c_str());
        in = &file;
    }

    std::vector<serve::SimRequest> reqs;
    std::string line;
    while (std::getline(*in, line)) {
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        serve::SimRequest q;
        if (!parseBatchLine(line, reqs.size() + 1,
                            cfg.default_deadline_ms, &q)) {
            std::fprintf(stderr,
                         "diag-serve: bad batch line: %s\n",
                         line.c_str());
            return 1;
        }
        reqs.push_back(std::move(q));
    }

    serve::SimService svc(cfg);
    std::vector<serve::SimService::Ticket> tickets;
    tickets.reserve(reqs.size());
    for (const serve::SimRequest &q : reqs)
        tickets.push_back(svc.submit(q));
    for (serve::SimService::Ticket &t : tickets) {
        const serve::SimResponse r = t.result.get();
        const std::string json = serve::renderResponseJson(r);
        std::printf("%s\n", json.c_str());
    }

    const serve::ServiceStats s = svc.stats();
    const serve::ResultCache::Stats c = svc.cacheStats();
    std::printf(
        "{\"summary\": {\"submitted\": %llu, \"ok\": %llu, "
        "\"failed\": %llu, \"expired\": %llu, \"rejected\": %llu, "
        "\"shed\": %llu, \"malformed\": %llu, \"retries\": %llu, "
        "\"worker_crashes\": %llu, \"worker_stalls\": %llu, "
        "\"cache_hits\": %llu, \"breaker\": \"%s\"}}\n",
        static_cast<unsigned long long>(s.submitted),
        static_cast<unsigned long long>(s.ok),
        static_cast<unsigned long long>(s.failed),
        static_cast<unsigned long long>(s.expired),
        static_cast<unsigned long long>(s.rejected_full),
        static_cast<unsigned long long>(s.shed),
        static_cast<unsigned long long>(s.malformed),
        static_cast<unsigned long long>(s.retries),
        static_cast<unsigned long long>(s.worker_crashes),
        static_cast<unsigned long long>(s.worker_stalls),
        static_cast<unsigned long long>(c.hits),
        svc.breakerState());

    // Lifecycle observability: the summary's counters again, this
    // time next to the stage histograms that contextualize them.
    serve::ServiceStats st = s;
    obs::ServeObs ob = svc.obsSnapshot();
    ob.reg.set("submitted", st.submitted);
    ob.reg.set("accepted", st.accepted);
    ob.reg.set("ok", st.ok);
    ob.reg.set("failed", st.failed);
    ob.reg.set("expired", st.expired);
    ob.reg.set("cancelled", st.cancelled);
    ob.reg.set("rejected_full", st.rejected_full);
    ob.reg.set("shed", st.shed);
    ob.reg.set("malformed", st.malformed);
    ob.reg.set("retries", st.retries);
    ob.reg.set("worker_crashes", st.worker_crashes);
    ob.reg.set("worker_stalls", st.worker_stalls);
    ob.reg.set("cache_hits", c.hits);
    ob.reg.set("cache_misses", c.misses);
    ob.reg.set("cache_inserts", c.inserts);
    ob.reg.set("cache_integrity_drops", c.integrity_drops);
    std::string js = ob.reg.toJson();
    while (!js.empty() && js.back() == '\n')
        js.pop_back();
    std::printf("{\"obs\": %s}\n", js.c_str());

    const trace::TraceMeta meta{"batch", "service", false};
    if (!metrics_file.empty()) {
        std::ofstream os(metrics_file);
        fatal_if(!os.good(), "cannot write '%s'",
                 metrics_file.c_str());
        trace::writeMetricsJson(os, svc.metricsSeries(),
                                svc.metricsClusters(), meta);
    }
    if (!span_file.empty())
        writeSpans(span_file, ob.spans, meta);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string batch_path;
    bool soak = false;
    std::string json_path;
    bool assert_robust = false;
    bool subprocess = false;
    bool no_cache = false;
    serve::SoakSpec sp;
    sp.jobs = 0; // CLI default: one per hardware thread
    // 0 / kUnset mean "mode default" (batch and soak differ).
    const u64 kUnset = ~0ull;
    unsigned workers = 0;
    u64 queue_capacity = 0;
    u64 deadline_ms = kUnset;
    unsigned max_attempts = 3;
    std::string metrics_file;
    u64 metrics_stride = 0;
    std::string span_file;

    harness::ArgParser ap("diag-serve");
    ap.option("--batch", &batch_path, "FILE",
              "submit the requests in FILE through the threaded "
              "service (\"-\" = stdin)")
        .flag("--soak", &soak,
              "deterministic synthetic-load soak on the virtual-"
              "time DES")
        .option("--requests", &sp.requests, "N",
                "soak: synthetic requests to generate (default 200)")
        .seedFlag(&sp.seed)
        .jobsFlag(&sp.jobs)
        .option("--workers", &workers, "N",
                "service worker threads / soak virtual workers "
                "(default 2 / 4)")
        .option("--queue-capacity", &queue_capacity, "N",
                "admission queue bound (default 64 / soak 16)")
        .option("--deadline-ms", &deadline_ms, "MS",
                "default per-request deadline (batch default 30000, "
                "soak 60 virtual ms; 0 = none)")
        .option("--max-attempts", &max_attempts, "N",
                "attempts per request incl. the first (default 3)")
        .option("--crash-pct", &sp.faults.crash_pct, "P",
                "inject: P% of attempts crash their worker")
        .option("--stall-pct", &sp.faults.stall_pct, "P",
                "inject: P% of attempts stall until killed")
        .option("--corrupt-pct", &sp.faults.corrupt_pct, "P",
                "inject: P% of cache inserts are corrupted")
        .option("--restart-budget", &sp.restart_budget, "N",
                "worker crashes tolerated before the circuit "
                "breaker opens (default 8)")
        .flag("--subprocess", &subprocess,
              "batch: crash-isolate each attempt in a forked child")
        .flag("--no-cache", &no_cache,
              "disable the content-hash result cache")
        .option("--metrics", &metrics_file, "FILE",
                "batch: write the folded IPC/occupancy time series "
                "(in-process attempts; same schema as diag-run "
                "--metrics)")
        .option("--metrics-stride", &metrics_stride, "N",
                "sample bucket width in cycles (default 1000 with "
                "--metrics)")
        .option("--span-trace", &span_file, "FILE",
                "write request-lifecycle spans (queue/attempt/"
                "backoff per worker track) as Perfetto JSON")
        .option("--json", &json_path, "FILE",
                "soak: write the JSON report to FILE (\"-\" = "
                "stdout only)")
        .flag("--assert-robust", &assert_robust,
              "soak: exit 1 unless every request resolved and no "
              "payload deviated from its golden run");
    switch (ap.parse(argc, argv)) {
    case harness::ArgParser::Status::Help:
        return 0;
    case harness::ArgParser::Status::Usage:
        return 1;
    case harness::ArgParser::Status::Run:
        break;
    }
    if (soak != batch_path.empty()) {
        ap.usage();
        std::fprintf(stderr,
                     "diag-serve: pass exactly one of --batch FILE "
                     "or --soak\n");
        return 1;
    }

    if (soak) {
        if (workers != 0)
            sp.virtual_workers = workers;
        if (queue_capacity != 0)
            sp.queue.capacity = queue_capacity;
        if (deadline_ms != kUnset)
            sp.deadline_ms = deadline_ms;
        sp.retry.max_attempts = max_attempts;
        sp.cache_enabled = !no_cache;
        const serve::SoakReport rep = serve::runSoak(sp);
        const std::string json = serve::renderSoakJson(sp, rep);
        std::fwrite(json.data(), 1, json.size(), stdout);
        if (!span_file.empty())
            writeSpans(span_file, rep.obs.spans,
                       {"soak", "virtual", false});
        if (!json_path.empty() && json_path != "-") {
            std::ofstream out(json_path);
            fatal_if(!out.good(), "cannot write '%s'",
                     json_path.c_str());
            out << json;
        }
        if (assert_robust && !rep.robust()) {
            std::fprintf(stderr,
                         "ASSERTION FAILED: %llu wrong payload(s), "
                         "%llu unresolved request(s)\n",
                         static_cast<unsigned long long>(
                             rep.wrong_payloads),
                         static_cast<unsigned long long>(
                             rep.unresolved));
            return 1;
        }
        return 0;
    }

    serve::ServiceConfig cfg;
    cfg.workers = workers != 0 ? workers : 2;
    cfg.queue.capacity = queue_capacity != 0 ? queue_capacity : 64;
    cfg.retry.max_attempts = max_attempts;
    cfg.faults = sp.faults;
    cfg.subprocess = subprocess;
    cfg.restart_budget = sp.restart_budget;
    cfg.default_deadline_ms =
        deadline_ms != kUnset ? deadline_ms : 30000;
    cfg.cache_enabled = !no_cache;
    cfg.seed = sp.seed;
    cfg.metrics_stride =
        metrics_stride ? metrics_stride
                       : (metrics_file.empty() ? 0 : 1000);
    if (cfg.subprocess && cfg.metrics_stride != 0)
        std::fprintf(stderr,
                     "diag-serve: note: --metrics is ignored for "
                     "--subprocess attempts (the child's series "
                     "dies with it)\n");
    return runBatch(batch_path, cfg, metrics_file, span_file);
}
