/**
 * @file
 * minibench implementation: adaptive-iteration runner, console
 * reporter, and a google-benchmark-schema JSON reporter. Linux-only
 * (reads /sys and /proc for the context block), which is the only
 * platform this repository builds on.
 */
#include "benchmark/benchmark.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <regex>
#include <sstream>

#include <unistd.h>

namespace benchmark
{

namespace
{

// ---- flags (set by Initialize) ----
struct Flags
{
    std::string filter;          // empty = run everything
    double min_time = 0.5;       // seconds of real time per run
    std::string out_path;        // empty = no file output
    std::string out_format = "json";
    bool list_tests = false;
    std::string executable;      // argv[0]
};

Flags &
flags()
{
    static Flags f;
    return f;
}

std::vector<std::pair<std::string, std::string>> &
customContext()
{
    static std::vector<std::pair<std::string, std::string>> ctx;
    return ctx;
}

// ---- clocks ----
double
clockSeconds(clockid_t id)
{
    timespec ts{};
    clock_gettime(id, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

double
wallNow()
{
    return clockSeconds(CLOCK_MONOTONIC);
}

double
cpuNow()
{
    return clockSeconds(CLOCK_PROCESS_CPUTIME_ID);
}

} // namespace

// ---- State ----

std::int64_t
State::range(std::size_t i) const
{
    if (i >= args_.size()) {
        std::fprintf(stderr,
                     "minibench: State::range(%zu) but only %zu Arg()s "
                     "were registered\n",
                     i, args_.size());
        std::abort();
    }
    return args_[i];
}

void
State::start()
{
    real_start_ = wallNow();
    cpu_start_ = cpuNow();
}

void
State::finish()
{
    real_elapsed_ = wallNow() - real_start_;
    cpu_elapsed_ = cpuNow() - cpu_start_;
}

void
State::PauseTiming()
{
    pause_real_ = wallNow();
    pause_cpu_ = cpuNow();
}

void
State::ResumeTiming()
{
    // Shift the start marks forward by the paused span so the final
    // finish() subtraction excludes it.
    real_start_ += wallNow() - pause_real_;
    cpu_start_ += cpuNow() - pause_cpu_;
}

// ---- registry ----

namespace internal
{

namespace
{
std::vector<std::unique_ptr<Benchmark>> &
registry()
{
    static std::vector<std::unique_ptr<Benchmark>> r;
    return r;
}
} // namespace

Benchmark *
RegisterBenchmarkInternal(const char *name, Benchmark::Function fn)
{
    registry().push_back(std::make_unique<Benchmark>(name, fn));
    return registry().back().get();
}

} // namespace internal

// ---- runner ----

/** One benchmark instance (a family member) and its measured run. */
struct Runner
{
    struct Instance
    {
        std::string name;  // "family" or "family/arg"
        internal::Benchmark::Function fn;
        std::vector<std::int64_t> args;
        int family_index = 0;
        int instance_index = 0;
    };

    struct Result
    {
        Instance inst;
        std::uint64_t iterations = 0;
        double real_s = 0.0;  // total across all iterations
        double cpu_s = 0.0;
        UserCounters counters;
    };

    static std::vector<Instance>
    expand()
    {
        std::vector<Instance> out;
        int family = 0;
        for (const auto &b : internal::registry()) {
            if (b->args().empty()) {
                out.push_back(
                    {b->name(), b->fn(), {}, family, 0});
            } else {
                int idx = 0;
                for (const auto &argv : b->args()) {
                    std::string name = b->name();
                    for (std::int64_t a : argv)
                        name += "/" + std::to_string(a);
                    out.push_back(
                        {std::move(name), b->fn(), argv, family, idx++});
                }
            }
            ++family;
        }
        return out;
    }

    /**
     * Measure one instance: grow the iteration count until the timed
     * loop covers the requested minimum real time (google-benchmark's
     * strategy: predict from the last sample with 40% headroom, never
     * more than 10x at once).
     */
    static Result
    run(const Instance &inst)
    {
        constexpr std::uint64_t kMaxIters = 1'000'000'000;
        const double min_time = flags().min_time;
        std::uint64_t iters = 1;
        for (;;) {
            State st(iters, inst.args);
            inst.fn(st);
            const double real = st.real_elapsed_;
            if (real >= min_time || iters >= kMaxIters) {
                Result res;
                res.inst = inst;
                res.iterations = iters;
                res.real_s = real;
                res.cpu_s = st.cpu_elapsed_;
                res.counters = st.counters;
                return res;
            }
            const double per =
                real > 0 ? real / static_cast<double>(iters) : 0.0;
            std::uint64_t next =
                per > 0 ? static_cast<std::uint64_t>(min_time * 1.4 /
                                                     per)
                        : iters * 10;
            next = std::min(next, iters * 10);
            next = std::max(next, iters + 1);
            iters = std::min(next, kMaxIters);
        }
    }
};

// ---- context block ----

namespace
{

struct CacheInfo
{
    std::string type;
    int level = 0;
    long size = 0;
    int num_sharing = 1;
};

std::string
readLine(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    if (in)
        std::getline(in, line);
    return line;
}

std::vector<CacheInfo>
sysfsCaches()
{
    std::vector<CacheInfo> out;
    for (int idx = 0;; ++idx) {
        const std::string base =
            "/sys/devices/system/cpu/cpu0/cache/index" +
            std::to_string(idx) + "/";
        const std::string type = readLine(base + "type");
        if (type.empty())
            break;
        CacheInfo ci;
        ci.type = type;
        ci.level = std::atoi(readLine(base + "level").c_str());
        const std::string size = readLine(base + "size");
        ci.size = std::atol(size.c_str());
        if (!size.empty()) {
            if (size.back() == 'K')
                ci.size *= 1024;
            else if (size.back() == 'M')
                ci.size *= 1024 * 1024;
        }
        // shared_cpu_list like "0" / "0-3" / "0,4": count members.
        const std::string shared = readLine(base + "shared_cpu_list");
        int sharing = 0;
        std::stringstream ss(shared);
        std::string piece;
        while (std::getline(ss, piece, ',')) {
            const auto dash = piece.find('-');
            if (dash == std::string::npos)
                sharing += 1;
            else
                sharing += std::atoi(piece.c_str() + dash + 1) -
                           std::atoi(piece.c_str()) + 1;
        }
        ci.num_sharing = std::max(sharing, 1);
        out.push_back(ci);
    }
    return out;
}

int
cpuMhz()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("cpu MHz", 0) == 0) {
            const auto colon = line.find(':');
            if (colon != std::string::npos)
                return static_cast<int>(
                    std::atof(line.c_str() + colon + 1) + 0.5);
        }
    }
    return 0;
}

bool
cpuScalingEnabled()
{
    const std::string gov = readLine(
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
    return !gov.empty() && gov != "performance";
}

std::string
iso8601Now()
{
    char buf[64];
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    localtime_r(&t, &tm);
    std::strftime(buf, sizeof buf, "%FT%T%z", &tm);
    // strftime %z gives "+0000"; the google schema uses "+00:00".
    std::string s(buf);
    if (s.size() >= 5)
        s.insert(s.size() - 2, ":");
    return s;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Doubles in google-benchmark's %.17g-equivalent scientific form. */
std::string
jsonDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.16e", v);
    return buf;
}

void
writeJson(std::ostream &os, const std::vector<Runner::Result> &results)
{
    os << "{\n  \"context\": {\n";
    os << "    \"date\": \"" << iso8601Now() << "\",\n";
    char host[256] = "unknown";
    gethostname(host, sizeof host - 1);
    os << "    \"host_name\": \"" << jsonEscape(host) << "\",\n";
    os << "    \"executable\": \"" << jsonEscape(flags().executable)
       << "\",\n";
    os << "    \"num_cpus\": " << sysconf(_SC_NPROCESSORS_ONLN)
       << ",\n";
    os << "    \"mhz_per_cpu\": " << cpuMhz() << ",\n";
    os << "    \"cpu_scaling_enabled\": "
       << (cpuScalingEnabled() ? "true" : "false") << ",\n";
    os << "    \"caches\": [\n";
    const auto caches = sysfsCaches();
    for (size_t i = 0; i < caches.size(); ++i) {
        const CacheInfo &c = caches[i];
        os << "      {\n"
           << "        \"type\": \"" << jsonEscape(c.type) << "\",\n"
           << "        \"level\": " << c.level << ",\n"
           << "        \"size\": " << c.size << ",\n"
           << "        \"num_sharing\": " << c.num_sharing << "\n"
           << "      }" << (i + 1 < caches.size() ? "," : "") << "\n";
    }
    os << "    ],\n";
    double load[3] = {0, 0, 0};
    getloadavg(load, 3);
    char lbuf[96];
    std::snprintf(lbuf, sizeof lbuf, "[%g,%g,%g]", load[0], load[1],
                  load[2]);
    os << "    \"load_avg\": " << lbuf << ",\n";
    // Honest self-report: minibench is compiled by this project's own
    // configure, so NDEBUG tells the truth about the timing library.
#ifdef NDEBUG
    os << "    \"library_build_type\": \"release\"";
#else
    os << "    \"library_build_type\": \"debug\"";
#endif
    for (const auto &[k, v] : customContext())
        os << ",\n    \"" << jsonEscape(k) << "\": \"" << jsonEscape(v)
           << "\"";
    os << "\n  },\n";
    os << "  \"benchmarks\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const Runner::Result &r = results[i];
        const double it = static_cast<double>(r.iterations);
        os << "    {\n";
        os << "      \"name\": \"" << jsonEscape(r.inst.name)
           << "\",\n";
        os << "      \"family_index\": " << r.inst.family_index
           << ",\n";
        os << "      \"per_family_instance_index\": "
           << r.inst.instance_index << ",\n";
        os << "      \"run_name\": \"" << jsonEscape(r.inst.name)
           << "\",\n";
        os << "      \"run_type\": \"iteration\",\n";
        os << "      \"repetitions\": 1,\n";
        os << "      \"repetition_index\": 0,\n";
        os << "      \"threads\": 1,\n";
        os << "      \"iterations\": " << r.iterations << ",\n";
        os << "      \"real_time\": " << jsonDouble(r.real_s * 1e9 / it)
           << ",\n";
        os << "      \"cpu_time\": " << jsonDouble(r.cpu_s * 1e9 / it)
           << ",\n";
        os << "      \"time_unit\": \"ns\"";
        for (const auto &[key, c] : r.counters) {
            const double v = (c.flags & Counter::kIsRate)
                                 ? c.value / r.cpu_s
                                 : c.value;
            os << ",\n      \"" << jsonEscape(key)
               << "\": " << jsonDouble(v);
        }
        os << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
printConsole(const Runner::Result &r)
{
    const double it = static_cast<double>(r.iterations);
    std::string extra;
    for (const auto &[key, c] : r.counters) {
        const double v = (c.flags & Counter::kIsRate)
                             ? c.value / r.cpu_s
                             : c.value;
        char cbuf[96];
        std::snprintf(cbuf, sizeof cbuf, " %s=%.6g", key.c_str(), v);
        extra += cbuf;
    }
    std::printf("%-40s %12.0f ns %12.0f ns %12llu%s\n",
                r.inst.name.c_str(), r.real_s * 1e9 / it,
                r.cpu_s * 1e9 / it,
                static_cast<unsigned long long>(r.iterations),
                extra.c_str());
}

} // namespace

// ---- public API ----

void
AddCustomContext(const std::string &key, const std::string &value)
{
    customContext().emplace_back(key, value);
}

void
Initialize(int *argc, char **argv)
{
    if (*argc > 0)
        flags().executable = argv[0];
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *name) -> const char * {
            const size_t n = std::strlen(name);
            if (arg.compare(0, n, name) == 0 && arg[n] == '=')
                return arg.c_str() + n + 1;
            return nullptr;
        };
        if (const char *v = value("--benchmark_filter")) {
            flags().filter = v;
        } else if (const char *v = value("--benchmark_min_time")) {
            // Accept both the bare-seconds spelling ("1") and the
            // newer suffixed one ("1s"); reject "Nx" repetitions.
            std::string s(v);
            if (!s.empty() && s.back() == 's')
                s.pop_back();
            flags().min_time = std::atof(s.c_str());
        } else if (const char *v = value("--benchmark_out")) {
            flags().out_path = v;
        } else if (const char *v = value("--benchmark_out_format")) {
            flags().out_format = v;
        } else if (arg == "--benchmark_list_tests" ||
                   arg == "--benchmark_list_tests=true") {
            flags().list_tests = true;
        } else {
            argv[out++] = argv[i];
            continue;
        }
    }
    *argc = out;
}

bool
ReportUnrecognizedArguments(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        std::fprintf(stderr, "%s: unrecognized command-line flag: %s\n",
                     argv[0], argv[i]);
    return argc > 1;
}

void
RunSpecifiedBenchmarks()
{
    std::vector<Runner::Instance> instances = Runner::expand();
    if (!flags().filter.empty()) {
        const std::regex re(flags().filter);
        instances.erase(
            std::remove_if(instances.begin(), instances.end(),
                           [&re](const Runner::Instance &inst) {
                               return !std::regex_search(inst.name,
                                                         re);
                           }),
            instances.end());
    }
    if (flags().list_tests) {
        for (const auto &inst : instances)
            std::printf("%s\n", inst.name.c_str());
        return;
    }
    if (flags().out_format != "json" && !flags().out_path.empty()) {
        std::fprintf(stderr,
                     "minibench: only --benchmark_out_format=json is "
                     "supported\n");
        std::exit(1);
    }
    std::printf("%-40s %15s %15s %12s\n", "Benchmark", "Time", "CPU",
                "Iterations");
    std::printf("%s\n", std::string(86, '-').c_str());
    std::vector<Runner::Result> results;
    for (const auto &inst : instances) {
        results.push_back(Runner::run(inst));
        printConsole(results.back());
    }
    if (!flags().out_path.empty()) {
        std::ofstream out(flags().out_path);
        if (!out) {
            std::fprintf(stderr, "minibench: cannot open %s\n",
                         flags().out_path.c_str());
            std::exit(1);
        }
        writeJson(out, results);
    }
}

void
Shutdown()
{}

} // namespace benchmark
