/**
 * @file
 * minibench: a small, vendored microbenchmark library exposing the
 * subset of the google-benchmark API this repository uses, under the
 * same <benchmark/benchmark.h> header and benchmark:: namespace so the
 * bench sources compile unchanged against either library.
 *
 * Why it exists: throughput baselines (BENCH_*.json) must be measured
 * through an optimized timing library, and the system libbenchmark-dev
 * package ships a debug build (its JSON self-reports
 * "library_build_type": "debug"). minibench is compiled by this
 * project's own build, so a Release configure yields a Release timing
 * library — no network fetch, no submodule.
 *
 * Supported surface (see README.md): State ranged-for iteration with
 * adaptive iteration counts, State::range(), user counters with
 * Counter::kIsRate (rate = value / total CPU seconds, matching
 * google-benchmark), BENCHMARK()->Arg() registration, DoNotOptimize,
 * AddCustomContext, Initialize / ReportUnrecognizedArguments /
 * RunSpecifiedBenchmarks / Shutdown, BENCHMARK_MAIN, and the
 * --benchmark_filter / --benchmark_min_time / --benchmark_out /
 * --benchmark_out_format=json / --benchmark_list_tests flags. The JSON
 * reporter emits the same schema google-benchmark emits (context block
 * with host info and caches, one object per run) so downstream tooling
 * and committed BENCH_*.json artifacts keep their shape.
 */
#ifndef MINIBENCH_BENCHMARK_H
#define MINIBENCH_BENCHMARK_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace benchmark
{

/** A user-defined counter attached to a run via State::counters. */
class Counter
{
  public:
    enum Flags : unsigned {
        kDefaults = 0,
        /** Report value / total CPU seconds instead of the raw value. */
        kIsRate = 1u << 0,
    };

    double value = 0.0;
    Flags flags = kDefaults;

    Counter() = default;
    Counter(double v, Flags f = kDefaults) : value(v), flags(f) {}

    operator double() const { return value; }
};

using UserCounters = std::map<std::string, Counter>;

/**
 * Per-run benchmark state. The runner picks an iteration count, the
 * benchmark body loops `for (auto _ : state)`, and the walltime/CPU
 * clocks run exactly while that loop does.
 */
class State
{
  public:
    UserCounters counters;

    /** The i-th Arg() of this instance. */
    std::int64_t range(std::size_t i = 0) const;

    /** Iterations the timed loop will execute (fixed per run). */
    std::uint64_t iterations() const { return max_iterations_; }

    /** Exclude a region from the timed interval. */
    void PauseTiming();
    void ResumeTiming();

    struct StateIterator
    {
        struct Value
        {};

        State *parent = nullptr;
        std::uint64_t cached = 0;

        Value operator*() const { return Value{}; }

        StateIterator &
        operator++()
        {
            --cached;
            return *this;
        }

        // Only the begin-derived operand is inspected; when the cached
        // count hits zero the timers stop (google-benchmark's pattern,
        // which keeps the hot loop to one decrement + one compare).
        bool
        operator!=(const StateIterator &) const
        {
            if (cached != 0)
                return true;
            parent->finish();
            return false;
        }
    };

    StateIterator
    begin()
    {
        start();
        return StateIterator{this, max_iterations_};
    }

    StateIterator end() { return StateIterator{}; }

  private:
    friend struct Runner;

    State(std::uint64_t iters, const std::vector<std::int64_t> &args)
        : max_iterations_(iters), args_(args)
    {}

    void start();
    void finish();

    std::uint64_t max_iterations_;
    const std::vector<std::int64_t> &args_;
    double real_start_ = 0.0, cpu_start_ = 0.0;
    double real_elapsed_ = 0.0, cpu_elapsed_ = 0.0;
    double pause_real_ = 0.0, pause_cpu_ = 0.0;
};

namespace internal
{

/** A registered benchmark family (one BENCHMARK() statement). */
class Benchmark
{
  public:
    using Function = void (*)(State &);

    Benchmark(std::string name, Function fn)
        : name_(std::move(name)), fn_(fn)
    {}

    /** Add an instance run with this argument (chainable). */
    Benchmark *
    Arg(std::int64_t x)
    {
        args_.push_back({x});
        return this;
    }

    /** Add an instance with several arguments (chainable). */
    Benchmark *
    Args(const std::vector<std::int64_t> &xs)
    {
        args_.push_back(xs);
        return this;
    }

    const std::string &name() const { return name_; }
    Function fn() const { return fn_; }
    /** Per-instance argument lists; empty = one argless instance. */
    const std::vector<std::vector<std::int64_t>> &args() const
    {
        return args_;
    }

  private:
    std::string name_;
    Function fn_;
    std::vector<std::vector<std::int64_t>> args_;
};

Benchmark *RegisterBenchmarkInternal(const char *name,
                                     Benchmark::Function fn);

} // namespace internal

/**
 * Defeat dead-code elimination of @p value without fencing anything
 * else (same contract as google-benchmark's DoNotOptimize).
 */
template <class Tp>
inline void
DoNotOptimize(Tp const &value)
{
    asm volatile("" : : "r,m"(value) : "memory");
}

template <class Tp>
inline void
DoNotOptimize(Tp &value)
{
    asm volatile("" : "+r,m"(value) : : "memory");
}

/** Append a (key, value) pair to the reported context block. */
void AddCustomContext(const std::string &key, const std::string &value);

/** Parse and consume recognized --benchmark_* flags from argv. */
void Initialize(int *argc, char **argv);

/** True (after printing them) iff unconsumed arguments remain. */
bool ReportUnrecognizedArguments(int argc, char **argv);

/** Run every registered benchmark that matches the filter. */
void RunSpecifiedBenchmarks();

/** Release library state (no-op placeholder for API parity). */
void Shutdown();

} // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)

/** Register @p fn; yields the Benchmark* so ->Arg() chains work. */
#define BENCHMARK(fn)                                                  \
    static ::benchmark::internal::Benchmark *MINIBENCH_CONCAT(         \
        _minibench_reg_, __COUNTER__) [[maybe_unused]] =               \
        ::benchmark::internal::RegisterBenchmarkInternal(#fn, fn)

#define BENCHMARK_MAIN()                                               \
    int main(int argc, char **argv)                                    \
    {                                                                  \
        ::benchmark::Initialize(&argc, argv);                          \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))      \
            return 1;                                                  \
        ::benchmark::RunSpecifiedBenchmarks();                         \
        ::benchmark::Shutdown();                                       \
        return 0;                                                      \
    }

#endif // MINIBENCH_BENCHMARK_H
