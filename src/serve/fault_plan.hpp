/**
 * @file
 * ServiceFaultPlan: seeded injection of *service-layer* failures, the
 * robustness analogue of fault::FaultPlan (which injects into the
 * simulated hardware). A plan decides, purely from (seed, request id,
 * attempt), whether an execution attempt crashes its worker, stalls
 * past the watchdog, or whether a cache entry gets corrupted after a
 * write — so a soak run under injection is exactly reproducible, and
 * every recovery path (supervisor restart, stall kill, checksum
 * degrade) can be exercised and *asserted* rather than hoped for.
 *
 * Decisions are order-independent: any interleaving of requests and
 * attempts sees the same verdict for the same (id, attempt) pair,
 * which is what keeps shed/retry tallies byte-identical for any
 * --jobs value.
 */
#ifndef DIAG_SERVE_FAULT_PLAN_HPP
#define DIAG_SERVE_FAULT_PLAN_HPP

#include "common/types.hpp"
#include "serve/hash.hpp"

namespace diag::serve
{

struct ServiceFaultPlan
{
    u64 seed = 0;
    double crash_pct = 0.0;   //!< P(worker crash) per attempt, 0..100
    double stall_pct = 0.0;   //!< P(worker stall) per attempt, 0..100
    double corrupt_pct = 0.0; //!< P(cache corruption) per insert

    bool
    any() const
    {
        return crash_pct > 0 || stall_pct > 0 || corrupt_pct > 0;
    }

    /** Does attempt @p attempt of request @p id crash its worker? */
    bool
    crashes(u64 id, unsigned attempt) const
    {
        return crash_pct > 0 &&
               mixUniform(seed ^ 0xc5a5ull, id, attempt) * 100.0 <
                   crash_pct;
    }

    /** Does it stall (stop making progress) instead? Crash wins when
     *  both fire, so one attempt has exactly one injected fate. */
    bool
    stalls(u64 id, unsigned attempt) const
    {
        return stall_pct > 0 && !crashes(id, attempt) &&
               mixUniform(seed ^ 0x57a1ull, id, attempt) * 100.0 <
                   stall_pct;
    }

    /** Is the cache entry for @p key corrupted after this insert?
     *  @p insert_no distinguishes re-inserts of the same key. */
    bool
    corrupts(u64 key, u64 insert_no) const
    {
        return corrupt_pct > 0 &&
               mixUniform(seed ^ 0xc0dell, key, insert_no) * 100.0 <
                   corrupt_pct;
    }
};

} // namespace diag::serve

#endif // DIAG_SERVE_FAULT_PLAN_HPP
