/**
 * @file
 * Deterministic soak: a discrete-event simulation of the service
 * under sustained synthetic load and fault injection.
 *
 * Why a DES and not just hammering the threaded SimService: the
 * acceptance bar is *byte-identical* tallies for any --jobs value,
 * and a real multi-threaded soak cannot promise that (admission
 * order depends on scheduler interleaving). So the soak splits the
 * problem the way DESIGN.md §10 splits every driver:
 *
 *  1. the expensive, embarrassingly-parallel part — actually
 *     simulating each *unique* request content (workload x config x
 *     options) once — fans out through parallelMap, whose merge is
 *     already order-independent;
 *  2. the policy part — admission, shedding, deadlines, retries,
 *     backoff, the circuit breaker, the cache — replays
 *     single-threaded on a virtual millisecond timeline, with
 *     virtual service time derived from the simulated cycle count
 *     of step 1.
 *
 * The DES reuses the *same* policy objects the threaded service
 * runs (BoundedQueue, RetryPolicy, CircuitBreaker, ResultCache,
 * ServiceFaultPlan): one implementation, two drivers. Virtual
 * workers mirror pump-task semantics — a worker is held from
 * dispatch through every retry and backoff of its request, exactly
 * as a pool thread is in SimService::serveRequest.
 *
 * The report carries the two robustness oracles the soak asserts:
 *  - wrong_payloads: an Ok response whose payload is not byte-equal
 *    to the uninjected golden payload for its content key (must be
 *    0 — corruption may cost a recompute, never a wrong answer);
 *  - unresolved: a request that never reached a terminal response
 *    (must be 0 — no hangs, no dropped promises).
 */
#ifndef DIAG_SERVE_SOAK_HPP
#define DIAG_SERVE_SOAK_HPP

#include <string>

#include "obs/serve_obs.hpp"
#include "serve/cache.hpp"
#include "serve/fault_plan.hpp"
#include "serve/queue.hpp"
#include "serve/retry.hpp"

namespace diag::serve
{

struct SoakSpec
{
    unsigned requests = 200;
    u64 seed = 1;
    /** Host threads for the base-execution phase only; the policy
     *  replay is single-threaded by construction, so the report is
     *  byte-identical for any value here. */
    unsigned jobs = 1;
    unsigned virtual_workers = 4;
    QueueConfig queue{16, 0, 0};
    RetryPolicy retry;
    ServiceFaultPlan faults;
    unsigned restart_budget = 8;
    u64 breaker_cooldown_ms = 200;
    /** Default per-request deadline in virtual ms (0 = none). */
    u64 deadline_ms = 60;
    /** Fraction of requests generated with an unsatisfiable 2 ms
     *  deadline, to keep the expiry path exercised. */
    double tight_deadline_pct = 8.0;
    /** Fraction generated with an unknown workload name. */
    double malformed_pct = 3.0;
    bool cache_enabled = true;
};

struct SoakReport
{
    u64 requests = 0;
    u64 base_runs = 0; //!< unique contents actually simulated
    u64 ok = 0;
    u64 ok_from_cache = 0;
    u64 rejected_full = 0;
    u64 shed = 0;
    u64 expired = 0;
    u64 failed = 0;
    u64 malformed = 0;
    u64 retries = 0;
    u64 worker_crashes = 0;
    u64 worker_stalls = 0;
    u64 breaker_trips = 0;
    ResultCache::Stats cache;
    double latency_mean_ms = 0.0;
    u64 latency_p50_ms = 0;
    u64 latency_p95_ms = 0;
    u64 latency_p99_ms = 0;
    u64 latency_max_ms = 0;
    u64 virtual_makespan_ms = 0;
    u64 wrong_payloads = 0; //!< Ok payloads != golden (oracle; 0)
    u64 unresolved = 0;     //!< requests without a terminal answer

    /** Request-lifecycle observability: per-stage latency histograms,
     *  lifecycle counters mirroring the tallies above, and spans on
     *  the virtual-worker timeline. Filled entirely by the
     *  single-threaded phase-2 replay, so it is byte-identical for
     *  any jobs value just like the rest of the report. */
    obs::ServeObs obs;

    bool
    robust() const
    {
        return wrong_payloads == 0 && unresolved == 0;
    }
};

/** Run the soak described by @p spec (see the file comment). */
SoakReport runSoak(const SoakSpec &spec);

/** Byte-stable JSON rendering of a soak run. */
std::string renderSoakJson(const SoakSpec &spec,
                           const SoakReport &rep);

} // namespace diag::serve

#endif // DIAG_SERVE_SOAK_HPP
