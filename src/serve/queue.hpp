/**
 * @file
 * Bounded multi-priority admission queue with explicit backpressure.
 *
 * The admission policy, applied at submit time:
 *  - at capacity, every request is Rejected (queue full) with a
 *    retry-after hint — the service never buffers without limit;
 *  - at or above the high watermark the queue enters shedding mode
 *    and Low-priority requests are Shed until depth sinks back under
 *    the low watermark (hysteresis, so the shed decision does not
 *    flap around one boundary);
 *  - otherwise the request is Admitted.
 *
 * Pops serve the highest priority first and FIFO within a priority,
 * so High traffic overtakes backlog but nothing starves within its
 * class (a starving class is shed explicitly instead).
 *
 * The queue is deliberately *not* self-synchronizing: every operation
 * is plain and O(1)-ish, and callers wrap it in their own lock (the
 * threaded service) or run it single-threaded on a virtual timeline
 * (the soak DES). One policy implementation, two drivers — which is
 * exactly what makes the DES a faithful model of the service.
 */
#ifndef DIAG_SERVE_QUEUE_HPP
#define DIAG_SERVE_QUEUE_HPP

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/types.hpp"
#include "serve/request.hpp"

namespace diag::serve
{

/** Queue shape. Watermarks default from the capacity. */
struct QueueConfig
{
    size_t capacity = 64;
    /** Depth at which Low-priority shedding starts (0 = 3/4 cap). */
    size_t high_watermark = 0;
    /** Depth below which shedding stops again (0 = 1/2 cap). */
    size_t low_watermark = 0;

    size_t
    high() const
    {
        return high_watermark ? high_watermark : capacity * 3 / 4;
    }
    size_t
    low() const
    {
        return low_watermark ? low_watermark : capacity / 2;
    }
};

/** Outcome of an admission attempt. */
enum class Admission : u8
{
    Admitted,
    Shed,     //!< load-shed by priority at the high watermark
    Rejected, //!< queue at capacity
};

template <class T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(QueueConfig cfg = {}) : cfg_(cfg) {}

    /**
     * Apply the admission policy. Only an Admitted item is moved
     * into the queue; on Shed/Rejected @p item is left untouched so
     * the caller can still respond through it.
     */
    Admission
    tryPush(T &item, Priority prio)
    {
        if (size_ >= cfg_.capacity)
            return Admission::Rejected;
        if (shedding_ && size_ < cfg_.low())
            shedding_ = false;
        if (size_ >= cfg_.high())
            shedding_ = true;
        if (shedding_ && prio == Priority::Low)
            return Admission::Shed;
        lanes_[static_cast<unsigned>(prio)].push_back(
            std::move(item));
        ++size_;
        return Admission::Admitted;
    }

    /** Highest priority first, FIFO within a priority. */
    std::optional<T>
    tryPop()
    {
        for (int p = 2; p >= 0; --p) {
            auto &lane = lanes_[p];
            if (lane.empty())
                continue;
            T item = std::move(lane.front());
            lane.pop_front();
            --size_;
            return item;
        }
        return std::nullopt;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool shedding() const { return shedding_; }
    const QueueConfig &config() const { return cfg_; }

  private:
    QueueConfig cfg_;
    std::deque<T> lanes_[3];
    size_t size_ = 0;
    bool shedding_ = false;
};

} // namespace diag::serve

#endif // DIAG_SERVE_QUEUE_HPP
