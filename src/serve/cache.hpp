/**
 * @file
 * Content-addressed result cache with integrity verification.
 *
 * Keys are FNV-1a 64 hashes of everything that determines a run's
 * output: the workload's assembly source (which fully determines the
 * program image), the engine configuration name, the thread count,
 * and the variant selector. Payloads are the byte-stable stats JSON
 * of a successful run; identical keys therefore imply identical
 * payloads, which is what makes serving from cache sound.
 *
 * Every entry stores a checksum taken at insert time and re-verified
 * on every read. A mismatch (bit rot, a fault-plan corruption, a bug)
 * silently *degrades* — the entry is dropped and the caller
 * recomputes — but can never serve wrong bytes. Integrity failures
 * are counted so soak runs can prove the path was exercised.
 *
 * Thread safety: all operations take an internal mutex. This is the
 * service control plane, not the simulator hot path; one lock per
 * whole-simulation request is noise (cf. the StatGroup confinement
 * rule, which exists for per-event counters).
 */
#ifndef DIAG_SERVE_CACHE_HPP
#define DIAG_SERVE_CACHE_HPP

#include <mutex>
#include <string>
#include <unordered_map>

#include "common/types.hpp"

namespace diag::serve
{

class ResultCache
{
  public:
    /** Stable counters, readable at any time. */
    struct Stats
    {
        u64 hits = 0;
        u64 misses = 0;
        u64 inserts = 0;
        u64 integrity_drops = 0; //!< reads that failed verification
    };

    /**
     * Look @p key up; on a verified hit copy the payload into
     * @p payload and return true. A checksum mismatch drops the entry,
     * counts an integrity_drop, and reports a miss.
     */
    bool get(u64 key, std::string *payload);

    /** Insert (or overwrite) the payload for @p key. */
    void put(u64 key, std::string payload);

    /**
     * Corrupt the stored payload for @p key by flipping one bit, if
     * present. Fault-injection hook: the next get() must detect the
     * damage and degrade to recompute, never return the bytes.
     */
    void corrupt(u64 key);

    size_t size() const;
    Stats stats() const;

  private:
    struct Entry
    {
        std::string payload;
        u64 checksum = 0;
    };

    mutable std::mutex m_;
    std::unordered_map<u64, Entry> map_;
    Stats stats_;
};

} // namespace diag::serve

#endif // DIAG_SERVE_CACHE_HPP
