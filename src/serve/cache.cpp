#include "serve/cache.hpp"

#include <utility>

#include "serve/hash.hpp"

namespace diag::serve
{

bool
ResultCache::get(u64 key, std::string *payload)
{
    std::lock_guard<std::mutex> lk(m_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return false;
    }
    if (fnv1a(it->second.payload) != it->second.checksum) {
        // Verification failed: degrade to recompute. Dropping the
        // entry means the recomputed payload re-inserts cleanly.
        map_.erase(it);
        ++stats_.integrity_drops;
        ++stats_.misses;
        return false;
    }
    *payload = it->second.payload;
    ++stats_.hits;
    return true;
}

void
ResultCache::put(u64 key, std::string payload)
{
    std::lock_guard<std::mutex> lk(m_);
    Entry e;
    e.checksum = fnv1a(payload);
    e.payload = std::move(payload);
    map_[key] = std::move(e);
    ++stats_.inserts;
}

void
ResultCache::corrupt(u64 key)
{
    std::lock_guard<std::mutex> lk(m_);
    auto it = map_.find(key);
    if (it == map_.end() || it->second.payload.empty())
        return;
    it->second.payload[it->second.payload.size() / 2] ^= 0x20;
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lk(m_);
    return map_.size();
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    return stats_;
}

} // namespace diag::serve
