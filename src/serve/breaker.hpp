/**
 * @file
 * Restart-budget circuit breaker for crash-isolated workers.
 *
 * Each worker crash consumes one unit of restart budget. While budget
 * remains the breaker stays Closed and the supervisor restarts freely.
 * When the budget is exhausted the breaker Opens for a cooldown: new
 * attempts are refused (classified Saturated, which is retryable, so
 * well-behaved clients back off rather than hammering a crashing
 * binary). After the cooldown the breaker goes HalfOpen: one probe
 * attempt is allowed; success refills the budget and Closes, another
 * crash re-Opens.
 *
 * Time is an explicit parameter (milliseconds on whatever clock the
 * caller runs — real for the threaded service, virtual for the soak
 * DES), which is what keeps the DES byte-deterministic.
 */
#ifndef DIAG_SERVE_BREAKER_HPP
#define DIAG_SERVE_BREAKER_HPP

#include "common/types.hpp"

namespace diag::serve
{

class CircuitBreaker
{
  public:
    enum class State : u8
    {
        Closed,
        Open,
        HalfOpen,
    };

    CircuitBreaker(unsigned restart_budget, u64 cooldown_ms)
        : budget_(restart_budget), remaining_(restart_budget),
          cooldown_ms_(cooldown_ms)
    {
    }

    /** May an attempt start now? Transitions Open->HalfOpen when the
     *  cooldown has elapsed (and lets exactly one probe through). */
    bool
    allow(u64 now_ms)
    {
        if (state_ == State::Closed)
            return true;
        if (state_ == State::Open) {
            if (now_ms < open_until_ms_)
                return false;
            state_ = State::HalfOpen;
            probe_inflight_ = false;
        }
        // HalfOpen: one probe at a time.
        if (probe_inflight_)
            return false;
        probe_inflight_ = true;
        return true;
    }

    /** A crash-isolated attempt died; consume budget. */
    void
    recordCrash(u64 now_ms)
    {
        ++crashes_;
        if (state_ == State::HalfOpen) {
            open(now_ms);
            return;
        }
        if (remaining_ > 0)
            --remaining_;
        if (remaining_ == 0)
            open(now_ms);
    }

    /** An attempt completed without crashing. */
    void
    recordSuccess()
    {
        if (state_ == State::HalfOpen) {
            state_ = State::Closed;
            remaining_ = budget_;
            probe_inflight_ = false;
        }
    }

    State state() const { return state_; }
    u64 crashes() const { return crashes_; }
    u64 trips() const { return trips_; }

    const char *
    stateName() const
    {
        switch (state_) {
          case State::Closed: return "closed";
          case State::Open: return "open";
          case State::HalfOpen: return "half-open";
        }
        return "unknown";
    }

  private:
    void
    open(u64 now_ms)
    {
        state_ = State::Open;
        open_until_ms_ = now_ms + cooldown_ms_;
        probe_inflight_ = false;
        ++trips_;
    }

    unsigned budget_;
    unsigned remaining_;
    u64 cooldown_ms_;
    State state_ = State::Closed;
    u64 open_until_ms_ = 0;
    bool probe_inflight_ = false;
    u64 crashes_ = 0;
    u64 trips_ = 0;
};

} // namespace diag::serve

#endif // DIAG_SERVE_BREAKER_HPP
