/**
 * @file
 * Execution layer of the simulation service: one *attempt* takes a
 * validated request to a classified result.
 *
 * Validation (validateRequest) happens once per request, before
 * admission: unknown workload or config names, a missing simt
 * variant, or a zero thread count classify as Malformed — the
 * long-running service must never feed fatal()-ing lookups.
 *
 * An attempt can run two ways:
 *  - in-process (executeAttempt with AttemptSpec::subprocess off):
 *    the simulator runs on the calling pool worker, cooperatively
 *    cancellable through the request's CancelToken;
 *  - crash-isolated (subprocess on): the simulator runs in a forked
 *    child that writes a checksummed, length-prefixed result frame
 *    over a pipe. A child that dies (WIFSIGNALED / nonzero exit /
 *    short frame) classifies WorkerCrash; one that stops producing
 *    output past the deadline is SIGKILLed and classifies
 *    WorkerStall. Either way the daemon itself never dies with the
 *    request. Fork without exec is safe here: the child only
 *    simulates and writes to an inherited pipe.
 *
 * Payloads (renderPayload) are byte-stable JSON over the run's
 * stats — the same program, config, and options always produce the
 * same bytes, whether computed in-process, in a child, or replayed
 * from cache. That byte-equality is the service's correctness
 * oracle under fault injection.
 */
#ifndef DIAG_SERVE_WORKER_HPP
#define DIAG_SERVE_WORKER_HPP

#include <memory>
#include <string>

#include "diag/config.hpp"
#include "host/cancel.hpp"
#include "serve/request.hpp"
#include "sim/run_stats.hpp"
#include "trace/tracer.hpp"
#include "workloads/workload.hpp"

namespace diag::serve
{

/** A request resolved against the workload/config registries. */
struct ValidatedRequest
{
    SimRequest req;
    workloads::Workload w;
    core::DiagConfig cfg;
    u64 content_key = 0; //!< cache key; see contentKey()
    bool ok = false;
    std::string error; //!< Malformed reason when !ok
};

/** Resolve and pre-validate @p req (never fatals). */
ValidatedRequest validateRequest(const SimRequest &req);

/**
 * Cache key of a validated request: FNV-1a over the workload's
 * assembly source (which fully determines the program image), the
 * configuration name, the thread count, and the variant selector.
 */
u64 contentKey(const ValidatedRequest &v);

/** Byte-stable stats JSON of a successful run. */
std::string renderPayload(const sim::RunStats &stats, bool checked);

/** How to run one attempt. */
struct AttemptSpec
{
    const ValidatedRequest *v = nullptr;
    /** Wall-clock budget for this attempt in ms (0 = none). */
    u64 deadline_ms = 0;
    /** Run in a forked child for crash isolation. */
    bool subprocess = false;
    /** Fault-plan injections for this attempt. In-process attempts
     *  simulate them (the classification path is identical); a
     *  subprocess attempt really aborts / really stalls. */
    bool inject_crash = false;
    bool inject_stall = false;
    /** Client cancellation, polled by the engine mid-run (in-process
     *  attempts only; a subprocess is covered by the deadline). */
    const host::CancelToken *cancel = nullptr;
    /** When nonzero, the attempt runs under a metrics-only tracer
     *  with this time-series stride and returns it in
     *  AttemptResult::trace. In-process attempts only: the subprocess
     *  result frame carries no series (the child's tracer dies with
     *  it), so subprocess mode ignores this. */
    u64 metrics_stride = 0;
};

/** Classified outcome of one attempt. */
struct AttemptResult
{
    FailKind fail = FailKind::None; //!< None = success
    bool cancelled = false;         //!< stop came from cancel()
    std::string reason;
    std::string payload; //!< renderPayload() when fail == None
    /** Simulated cycles the run consumed (0 when it never ran).
     *  The soak DES derives virtual service time from this. */
    u64 cycles = 0;
    /** The attempt's tracer when AttemptSpec::metrics_stride was set
     *  and the run happened in-process (else null). The caller folds
     *  its MetricsSeries into a service-wide series. */
    std::shared_ptr<trace::Tracer> trace;
};

/** Run one attempt per @p spec (see the file comment). */
AttemptResult executeAttempt(const AttemptSpec &spec);

} // namespace diag::serve

#endif // DIAG_SERVE_WORKER_HPP
