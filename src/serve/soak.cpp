#include "serve/soak.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "host/parallel.hpp"
#include "serve/breaker.hpp"
#include "serve/hash.hpp"
#include "serve/worker.hpp"

namespace diag::serve
{

namespace
{

const char *const kSoakWorkloads[] = {"nn", "pathfinder", "bfs",
                                      "kmeans"};
const char *const kSoakConfigs[] = {"F4C2", "F4C16"};

/** Per-request state across the virtual timeline. */
struct Slot
{
    SimRequest req;
    bool malformed = false;
    size_t base = 0;      //!< index into the golden-run vector
    u64 content_key = 0;
    u64 arrival_ms = 0;
    unsigned attempts = 0;
    /** Outcome computed at AttemptStart, consumed at AttemptEnd. */
    FailKind pending = FailKind::None;
    bool breaker_gated = false; //!< this attempt never ran at all
    bool resolved = false;
    unsigned worker = 0;     //!< virtual worker holding the request
    bool dispatched = false; //!< first AttemptStart already seen
};

struct Event
{
    u64 t = 0;
    u64 seq = 0; //!< stable tie-break: push order
    enum Kind : u8
    {
        Arrival,
        AttemptStart,
        AttemptEnd,
    } kind = Arrival;
    u32 idx = 0;
};

struct EventAfter
{
    bool
    operator()(const Event &a, const Event &b) const
    {
        return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
};

/** Virtual service time of one simulated run, in milliseconds. */
u64
serviceMs(u64 cycles)
{
    return 1 + cycles / 20000;
}

/** Deterministic synthetic load: requests and their arrival times. */
std::vector<Slot>
generateLoad(const SoakSpec &spec)
{
    std::vector<Slot> slots(spec.requests);
    u64 at = 0;
    for (unsigned i = 0; i < spec.requests; ++i) {
        SimRequest &q = slots[i].req;
        q.id = i + 1;
        if (mixUniform(spec.seed ^ 0x0badull, i, 1) * 100.0 <
            spec.malformed_pct)
            q.workload = "no-such-workload";
        else
            q.workload =
                kSoakWorkloads[mix64(spec.seed ^ 0x1001ull, i, 2) %
                               4];
        q.config =
            kSoakConfigs[mix64(spec.seed ^ 0x1002ull, i, 3) % 2];
        q.threads = 1 + static_cast<unsigned>(
                            mix64(spec.seed ^ 0x1003ull, i, 4) % 2);
        const double pr = mixUniform(spec.seed ^ 0x1004ull, i, 5);
        q.priority = pr < 0.30   ? Priority::Low
                     : pr < 0.90 ? Priority::Normal
                                 : Priority::High;
        q.deadline_ms =
            mixUniform(spec.seed ^ 0x1005ull, i, 6) * 100.0 <
                    spec.tight_deadline_pct
                ? 2
                : spec.deadline_ms;
        at += 1 + mix64(spec.seed ^ 0x1006ull, i, 7) % 4;
        slots[i].arrival_ms = at;
    }
    return slots;
}

} // namespace

SoakReport
runSoak(const SoakSpec &spec)
{
    SoakReport rep;
    rep.requests = spec.requests;

    std::vector<Slot> slots = generateLoad(spec);

    // Resolve each request against the registries and collapse the
    // valid ones onto their unique content keys.
    std::vector<ValidatedRequest> uniq;
    std::unordered_map<u64, size_t> key_to_base;
    for (Slot &s : slots) {
        ValidatedRequest v = validateRequest(s.req);
        if (!v.ok) {
            s.malformed = true;
            continue;
        }
        s.content_key = v.content_key;
        auto it = key_to_base.find(v.content_key);
        if (it == key_to_base.end()) {
            it = key_to_base
                     .emplace(v.content_key, uniq.size())
                     .first;
            uniq.push_back(std::move(v));
        }
        s.base = it->second;
    }
    rep.base_runs = uniq.size();

    // Phase 1: the golden runs — each unique content simulated once,
    // uninjected and undeadlined, fanned out over --jobs. Merged by
    // index, so the vector is byte-identical for any job count.
    const std::vector<AttemptResult> base =
        host::parallelMap<AttemptResult>(
            spec.jobs, uniq.size(), [&uniq](size_t i) {
                AttemptSpec as;
                as.v = &uniq[i];
                return executeAttempt(as);
            });

    // Phase 2: single-threaded policy replay on a virtual clock.
    BoundedQueue<u32> queue(spec.queue);
    CircuitBreaker breaker(spec.restart_budget,
                           spec.breaker_cooldown_ms);
    ResultCache cache;
    u64 cache_inserts = 0;
    // Free virtual workers by id; dispatch always takes the smallest
    // so worker-track assignment in the span trace is deterministic
    // (identity never affects timing, only labeling).
    std::set<unsigned> free_workers;
    for (unsigned w = 0;
         w < (spec.virtual_workers ? spec.virtual_workers : 1); ++w)
        free_workers.insert(w);

    std::priority_queue<Event, std::vector<Event>, EventAfter> heap;
    u64 seq = 0;
    const auto push = [&](u64 t, Event::Kind k, u32 idx) {
        heap.push(Event{t, seq++, k, idx});
    };
    for (u32 i = 0; i < slots.size(); ++i)
        push(slots[i].arrival_ms, Event::Arrival, i);

    std::vector<u64> latencies;
    latencies.reserve(slots.size());
    const auto resolve = [&](u32 i, u64 t, u64 &tally) {
        Slot &s = slots[i];
        s.resolved = true;
        ++tally;
        latencies.push_back(t - s.arrival_ms);
        rep.obs.totalMs(t - s.arrival_ms);
        if (t > rep.virtual_makespan_ms)
            rep.virtual_makespan_ms = t;
    };
    const auto resolveOk = [&](u32 i, u64 t, bool from_cache,
                               const std::string &payload) {
        // The robustness oracle: whatever path produced these bytes
        // (fresh run, retry, cache), they must equal the golden run.
        if (payload != base[slots[i].base].payload)
            ++rep.wrong_payloads;
        resolve(i, t, rep.ok);
        if (from_cache)
            ++rep.ok_from_cache;
    };
    const auto releaseWorker = [&](u64 t, unsigned w) {
        if (auto next = queue.tryPop()) {
            slots[*next].worker = w;
            push(t, Event::AttemptStart, *next);
        } else {
            free_workers.insert(w);
        }
    };

    while (!heap.empty()) {
        const Event ev = heap.top();
        heap.pop();
        Slot &s = slots[ev.idx];
        const u64 t = ev.t;

        switch (ev.kind) {
          case Event::Arrival: {
            if (s.malformed) {
                resolve(ev.idx, t, rep.malformed);
                break;
            }
            u32 idx = ev.idx;
            const Admission adm =
                queue.tryPush(idx, s.req.priority);
            if (adm == Admission::Rejected) {
                resolve(ev.idx, t, rep.rejected_full);
                break;
            }
            if (adm == Admission::Shed) {
                resolve(ev.idx, t, rep.shed);
                break;
            }
            rep.obs.queueDepth(queue.size());
            if (!free_workers.empty()) {
                const unsigned w = *free_workers.begin();
                free_workers.erase(free_workers.begin());
                const u32 next = *queue.tryPop();
                slots[next].worker = w;
                push(t, Event::AttemptStart, next);
            }
            break;
          }

          case Event::AttemptStart: {
            // Mirrors SimService::serveRequest's loop head: the
            // deadline gate, then the cache, then one attempt.
            if (!s.dispatched) {
                s.dispatched = true;
                rep.obs.queueWaitMs(t - s.arrival_ms);
                rep.obs.spanQueue(s.req.id, s.arrival_ms,
                                  t - s.arrival_ms);
            }
            const u64 dl = s.req.deadline_ms;
            if (dl > 0 && t - s.arrival_ms >= dl) {
                resolve(ev.idx, t, rep.expired);
                releaseWorker(t, s.worker);
                break;
            }
            std::string payload;
            if (spec.cache_enabled &&
                cache.get(s.content_key, &payload)) {
                rep.obs.spanAttempt(s.worker, s.req.id,
                                    s.attempts + 1, "cache", t, 0);
                resolveOk(ev.idx, t, true, payload);
                releaseWorker(t, s.worker);
                break;
            }
            ++s.attempts;
            s.breaker_gated = false;
            u64 dt = 0;
            if (!breaker.allow(t)) {
                s.pending = FailKind::Saturated;
                s.breaker_gated = true;
            } else if (spec.faults.crashes(s.req.id, s.attempts)) {
                s.pending = FailKind::WorkerCrash;
                dt = 2; // abort()s early, well before the run ends
            } else if (spec.faults.stalls(s.req.id, s.attempts)) {
                // A stalled worker burns the whole remaining budget
                // before the supervisor SIGKILLs it (plus the same
                // slack the real supervisor grants).
                s.pending = FailKind::WorkerStall;
                dt = dl > 0 ? dl - (t - s.arrival_ms) + 500 : 60000;
            } else {
                const AttemptResult &b = base[s.base];
                dt = serviceMs(b.cycles);
                s.pending = b.fail;
                if (b.fail == FailKind::None && dl > 0 &&
                    dt > dl - (t - s.arrival_ms)) {
                    // The run would outlast the deadline: the cancel
                    // token fires mid-run and the engine stops.
                    s.pending = FailKind::Timeout;
                    dt = dl - (t - s.arrival_ms);
                }
            }
            if (!s.breaker_gated)
                rep.obs.attemptMs(dt);
            rep.obs.spanAttempt(s.worker, s.req.id, s.attempts,
                                s.breaker_gated ? "breaker"
                                                : "attempt",
                                t, dt);
            push(t + dt, Event::AttemptEnd, ev.idx);
            break;
          }

          case Event::AttemptEnd: {
            if (!s.breaker_gated) {
                if (s.pending == FailKind::WorkerCrash) {
                    breaker.recordCrash(t);
                    ++rep.worker_crashes;
                } else {
                    breaker.recordSuccess();
                }
                if (s.pending == FailKind::WorkerStall)
                    ++rep.worker_stalls;
            }
            if (s.pending == FailKind::None) {
                const std::string &payload =
                    base[s.base].payload;
                if (spec.cache_enabled) {
                    cache.put(s.content_key, payload);
                    if (spec.faults.corrupts(s.content_key,
                                             ++cache_inserts))
                        cache.corrupt(s.content_key);
                }
                resolveOk(ev.idx, t, false, payload);
                releaseWorker(t, s.worker);
                break;
            }
            if (s.pending == FailKind::Timeout) {
                resolve(ev.idx, t, rep.expired);
                releaseWorker(t, s.worker);
                break;
            }
            if (spec.retry.shouldRetry(s.pending, s.attempts)) {
                ++rep.retries;
                // The virtual worker stays held through the backoff,
                // exactly as a pool thread does in serveRequest.
                const u64 backoff = spec.retry.backoffMs(
                    spec.seed, s.req.id, s.attempts);
                rep.obs.backoffMs(backoff);
                rep.obs.spanBackoff(s.worker, s.req.id, s.attempts,
                                    t, backoff);
                push(t + backoff, Event::AttemptStart, ev.idx);
                break;
            }
            resolve(ev.idx, t, rep.failed);
            releaseWorker(t, s.worker);
            break;
          }
        }
    }

    for (const Slot &s : slots)
        if (!s.resolved)
            ++rep.unresolved;

    rep.breaker_trips = breaker.trips();
    rep.cache = cache.stats();

    if (!latencies.empty()) {
        u64 sum = 0;
        for (const u64 l : latencies)
            sum += l;
        rep.latency_mean_ms = static_cast<double>(sum) /
                              static_cast<double>(latencies.size());
        std::sort(latencies.begin(), latencies.end());
        const auto pct = [&](unsigned p) {
            size_t i = latencies.size() * p / 100;
            if (i >= latencies.size())
                i = latencies.size() - 1;
            return latencies[i];
        };
        rep.latency_p50_ms = pct(50);
        rep.latency_p95_ms = pct(95);
        rep.latency_p99_ms = pct(99);
        rep.latency_max_ms = latencies.back();
    }

    // Mirror the report tallies into the registry so the obs snapshot
    // is self-contained (one JSON object carries histograms and the
    // lifecycle counters they contextualize).
    obs::MetricRegistry &reg = rep.obs.reg;
    reg.set("requests", rep.requests);
    reg.set("ok", rep.ok);
    reg.set("ok_from_cache", rep.ok_from_cache);
    reg.set("rejected_full", rep.rejected_full);
    reg.set("shed", rep.shed);
    reg.set("expired", rep.expired);
    reg.set("failed", rep.failed);
    reg.set("malformed", rep.malformed);
    reg.set("retries", rep.retries);
    reg.set("worker_crashes", rep.worker_crashes);
    reg.set("worker_stalls", rep.worker_stalls);
    reg.set("breaker_trips", rep.breaker_trips);
    reg.set("cache_hits", rep.cache.hits);
    reg.set("cache_misses", rep.cache.misses);
    reg.set("cache_inserts", rep.cache.inserts);
    reg.set("cache_integrity_drops", rep.cache.integrity_drops);
    return rep;
}

std::string
renderSoakJson(const SoakSpec &spec, const SoakReport &rep)
{
    std::ostringstream os;
    const auto u = [](u64 v) {
        return static_cast<unsigned long long>(v);
    };
    os << "{\n";
    os << detail::vformat(
        "  \"spec\": {\"requests\": %u, \"seed\": %llu, "
        "\"virtual_workers\": %u, \"queue_capacity\": %zu, "
        "\"deadline_ms\": %llu, \"crash_pct\": %.6g, "
        "\"stall_pct\": %.6g, \"corrupt_pct\": %.6g, "
        "\"restart_budget\": %u},\n",
        spec.requests, u(spec.seed), spec.virtual_workers,
        spec.queue.capacity, u(spec.deadline_ms),
        spec.faults.crash_pct, spec.faults.stall_pct,
        spec.faults.corrupt_pct, spec.restart_budget);
    os << detail::vformat(
        "  \"tally\": {\"ok\": %llu, \"ok_from_cache\": %llu, "
        "\"rejected_full\": %llu, \"shed\": %llu, "
        "\"expired\": %llu, \"failed\": %llu, "
        "\"malformed\": %llu, \"retries\": %llu, "
        "\"worker_crashes\": %llu, \"worker_stalls\": %llu, "
        "\"breaker_trips\": %llu},\n",
        u(rep.ok), u(rep.ok_from_cache), u(rep.rejected_full),
        u(rep.shed), u(rep.expired), u(rep.failed),
        u(rep.malformed), u(rep.retries), u(rep.worker_crashes),
        u(rep.worker_stalls), u(rep.breaker_trips));
    os << detail::vformat(
        "  \"cache\": {\"hits\": %llu, \"misses\": %llu, "
        "\"inserts\": %llu, \"integrity_drops\": %llu},\n",
        u(rep.cache.hits), u(rep.cache.misses),
        u(rep.cache.inserts), u(rep.cache.integrity_drops));
    os << detail::vformat(
        "  \"latency_ms\": {\"mean\": %.3f, \"p50\": %llu, "
        "\"p95\": %llu, \"p99\": %llu, \"max\": %llu},\n",
        rep.latency_mean_ms, u(rep.latency_p50_ms),
        u(rep.latency_p95_ms), u(rep.latency_p99_ms),
        u(rep.latency_max_ms));
    std::string obsj = rep.obs.reg.toJson();
    while (!obsj.empty() && obsj.back() == '\n')
        obsj.pop_back();
    os << "  \"obs\": " << obsj << ",\n";
    os << detail::vformat(
        "  \"virtual_makespan_ms\": %llu,\n  \"base_runs\": "
        "%llu,\n  \"wrong_payloads\": %llu,\n  \"unresolved\": "
        "%llu,\n  \"robust\": %s\n}\n",
        u(rep.virtual_makespan_ms), u(rep.base_runs),
        u(rep.wrong_payloads), u(rep.unresolved),
        rep.robust() ? "true" : "false");
    return os.str();
}

} // namespace diag::serve
