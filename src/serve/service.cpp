#include "serve/service.hpp"

#include <thread>
#include <utility>

#include "common/log.hpp"

namespace diag::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

u64
elapsedMs(Clock::time_point since)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - since)
            .count());
}

} // namespace

SimService::SimService(ServiceConfig cfg)
    : cfg_(cfg), epoch_(Clock::now()), queue_(cfg.queue),
      breaker_(cfg.restart_budget, cfg.breaker_cooldown_ms),
      series_(cfg.metrics_stride), pool_(cfg.workers)
{
}

SimService::~SimService() = default;

u64
SimService::nowMs() const
{
    return elapsedMs(epoch_);
}

unsigned
SimService::workerIdLocked()
{
    const auto id = std::this_thread::get_id();
    auto it = worker_ids_.find(id);
    if (it == worker_ids_.end())
        it = worker_ids_
                 .emplace(id,
                          static_cast<unsigned>(worker_ids_.size()))
                 .first;
    return it->second;
}

SimService::Ticket
SimService::submit(const SimRequest &req)
{
    Ticket t;
    t.id = req.id;

    ValidatedRequest v = validateRequest(req);
    if (!v.ok) {
        std::promise<SimResponse> pr;
        t.result = pr.get_future();
        SimResponse r;
        r.id = req.id;
        r.status = RespStatus::Failed;
        r.fail = FailKind::Malformed;
        r.reason = v.error;
        pr.set_value(std::move(r));
        std::lock_guard<std::mutex> lk(m_);
        ++stats_.submitted;
        ++stats_.malformed;
        return t;
    }

    auto p = std::make_unique<Pending>();
    p->v = std::move(v);
    p->cancel = t.cancel;
    p->accepted_at = Clock::now();
    p->deadline_ms =
        req.deadline_ms ? req.deadline_ms : cfg_.default_deadline_ms;
    if (p->deadline_ms > 0)
        p->cancel.setDeadline(
            p->accepted_at +
            std::chrono::milliseconds(p->deadline_ms));
    t.result = p->promise.get_future();

    Admission adm;
    {
        std::lock_guard<std::mutex> lk(m_);
        ++stats_.submitted;
        adm = queue_.tryPush(p, req.priority);
        if (adm == Admission::Admitted) {
            ++stats_.accepted;
            obs_.queueDepth(queue_.size());
        }
        else if (adm == Admission::Shed)
            ++stats_.shed;
        else
            ++stats_.rejected_full;
    }
    if (adm != Admission::Admitted) {
        // tryPush leaves p untouched when not admitting, so the
        // ticket's future resolves right here with the backpressure
        // signal and a retry-after hint.
        SimResponse r;
        r.id = req.id;
        r.status = adm == Admission::Shed ? RespStatus::Shed
                                          : RespStatus::Rejected;
        r.fail = FailKind::Saturated;
        r.reason = adm == Admission::Shed
                       ? "load shed: queue above the high watermark"
                       : "queue full";
        r.retry_after_ms =
            cfg_.retry.backoffMs(cfg_.seed, req.id, 1);
        p->promise.set_value(std::move(r));
        return t;
    }
    pool_.submit([this]() { pumpOne(); });
    return t;
}

void
SimService::pumpOne()
{
    std::unique_ptr<Pending> p;
    {
        std::lock_guard<std::mutex> lk(m_);
        auto popped = queue_.tryPop();
        if (!popped)
            return; // spurious: another pump already served it
        p = std::move(*popped);
    }
    serveRequest(std::move(p));
}

void
SimService::serveRequest(std::unique_ptr<Pending> p)
{
    const u64 id = p->v.req.id;

    // Lifecycle spans: the queue wait ends here, where a pool thread
    // picks the request up.
    unsigned worker_id;
    {
        const u64 wait = elapsedMs(p->accepted_at);
        const u64 now = nowMs();
        std::lock_guard<std::mutex> lk(m_);
        worker_id = workerIdLocked();
        obs_.queueWaitMs(wait);
        obs_.spanQueue(id, now >= wait ? now - wait : 0, wait);
    }

    const auto finish = [&](SimResponse r) {
        r.id = id;
        r.latency_ms = elapsedMs(p->accepted_at);
        {
            std::lock_guard<std::mutex> lk(m_);
            switch (r.status) {
              case RespStatus::Ok: ++stats_.ok; break;
              case RespStatus::Expired: ++stats_.expired; break;
              case RespStatus::Cancelled: ++stats_.cancelled; break;
              default: ++stats_.failed; break;
            }
            obs_.totalMs(r.latency_ms);
        }
        p->promise.set_value(std::move(r));
    };

    SimResponse r;
    unsigned attempts = 0;
    for (;;) {
        // Deadline/cancel gate before any work — also catches
        // cancel-before-start and queue-delay expiry.
        if (p->cancel.cancelled()) {
            r.status = RespStatus::Cancelled;
            r.fail = FailKind::None;
            r.attempts = attempts;
            r.reason = "cancelled by the client";
            return finish(std::move(r));
        }
        if (p->cancel.expired()) {
            r.status = RespStatus::Expired;
            r.fail = FailKind::Timeout;
            r.attempts = attempts;
            r.reason = "deadline expired";
            return finish(std::move(r));
        }

        // Cache: a verified hit costs nothing and cannot be wrong.
        if (cfg_.cache_enabled) {
            std::string payload;
            if (cache_.get(p->v.content_key, &payload)) {
                {
                    const u64 now = nowMs();
                    std::lock_guard<std::mutex> lk(m_);
                    obs_.spanAttempt(worker_id, id, attempts + 1,
                                     "cache", now, 0);
                }
                r.status = RespStatus::Ok;
                r.fail = FailKind::None;
                r.attempts = attempts;
                r.from_cache = true;
                r.payload = std::move(payload);
                return finish(std::move(r));
            }
        }

        ++attempts;
        AttemptResult ar;
        const u64 attempt_start_ms = nowMs();

        // Circuit breaker guards the crash-isolated path only; an
        // in-process attempt cannot consume restart budget.
        bool gated = false;
        if (cfg_.subprocess) {
            std::lock_guard<std::mutex> lk(m_);
            gated = !breaker_.allow(nowMs());
        }
        if (gated) {
            ar.fail = FailKind::Saturated;
            ar.reason = "circuit breaker open (restart budget "
                        "exhausted); cooling down";
        } else {
            AttemptSpec spec;
            spec.v = &p->v;
            spec.subprocess = cfg_.subprocess;
            spec.cancel = &p->cancel;
            if (p->deadline_ms > 0) {
                const u64 spent = elapsedMs(p->accepted_at);
                spec.deadline_ms = p->deadline_ms > spent
                                       ? p->deadline_ms - spent
                                       : 1;
            }
            spec.inject_crash = cfg_.faults.crashes(id, attempts);
            spec.inject_stall = cfg_.faults.stalls(id, attempts);
            if (!cfg_.subprocess)
                spec.metrics_stride = cfg_.metrics_stride;
            ar = executeAttempt(spec);
            if (cfg_.subprocess) {
                std::lock_guard<std::mutex> lk(m_);
                if (ar.fail == FailKind::WorkerCrash)
                    breaker_.recordCrash(nowMs());
                else
                    breaker_.recordSuccess();
            }
            {
                std::lock_guard<std::mutex> lk(m_);
                if (ar.fail == FailKind::WorkerCrash)
                    ++stats_.worker_crashes;
                if (ar.fail == FailKind::WorkerStall)
                    ++stats_.worker_stalls;
            }
        }
        {
            const u64 attempt_ms =
                gated ? 0 : nowMs() - attempt_start_ms;
            std::lock_guard<std::mutex> lk(m_);
            if (!gated)
                obs_.attemptMs(attempt_ms);
            obs_.spanAttempt(worker_id, id, attempts,
                             gated ? "breaker" : "attempt",
                             attempt_start_ms, attempt_ms);
            if (ar.trace) {
                series_.merge(ar.trace->metrics());
                if (ar.trace->clusters() > series_clusters_)
                    series_clusters_ = ar.trace->clusters();
            }
        }

        if (ar.fail == FailKind::None) {
            if (cfg_.cache_enabled) {
                cache_.put(p->v.content_key, ar.payload);
                u64 insert_no;
                {
                    std::lock_guard<std::mutex> lk(m_);
                    insert_no = ++cache_inserts_;
                }
                // Fault plan: damage the entry we just wrote; the
                // next read must catch it and recompute.
                if (cfg_.faults.corrupts(p->v.content_key,
                                         insert_no))
                    cache_.corrupt(p->v.content_key);
            }
            r.status = RespStatus::Ok;
            r.fail = FailKind::None;
            r.attempts = attempts;
            r.payload = std::move(ar.payload);
            return finish(std::move(r));
        }

        if (ar.cancelled) {
            r.status = RespStatus::Cancelled;
            r.fail = FailKind::None;
            r.attempts = attempts;
            r.reason = "cancelled by the client mid-run";
            return finish(std::move(r));
        }
        if (ar.fail == FailKind::Timeout) {
            // The engine's host watchdog fired on our deadline token.
            r.status = RespStatus::Expired;
            r.fail = FailKind::Timeout;
            r.attempts = attempts;
            r.reason = ar.reason;
            return finish(std::move(r));
        }

        if (!cfg_.retry.shouldRetry(ar.fail, attempts)) {
            r.status = RespStatus::Failed;
            r.fail = ar.fail;
            r.attempts = attempts;
            r.reason = ar.reason;
            return finish(std::move(r));
        }

        // Retry with seeded backoff. Sleep in small ticks so a
        // cancel or deadline still lands promptly.
        const u64 backoff =
            cfg_.retry.backoffMs(cfg_.seed, id, attempts);
        {
            const u64 now = nowMs();
            std::lock_guard<std::mutex> lk(m_);
            ++stats_.retries;
            obs_.backoffMs(backoff);
            obs_.spanBackoff(worker_id, id, attempts, now, backoff);
        }
        u64 slept = 0;
        while (slept < backoff && !p->cancel.stopRequested()) {
            const u64 tick = backoff - slept < 10 ? backoff - slept
                                                  : 10;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(tick));
            slept += tick;
        }
    }
}

ServiceStats
SimService::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    return stats_;
}

ResultCache::Stats
SimService::cacheStats() const
{
    return cache_.stats();
}

const char *
SimService::breakerState() const
{
    std::lock_guard<std::mutex> lk(m_);
    return breaker_.stateName();
}

size_t
SimService::queueDepth() const
{
    std::lock_guard<std::mutex> lk(m_);
    return queue_.size();
}

obs::ServeObs
SimService::obsSnapshot() const
{
    std::lock_guard<std::mutex> lk(m_);
    return obs_;
}

trace::MetricsSeries
SimService::metricsSeries() const
{
    std::lock_guard<std::mutex> lk(m_);
    return series_;
}

unsigned
SimService::metricsClusters() const
{
    std::lock_guard<std::mutex> lk(m_);
    return series_clusters_;
}

} // namespace diag::serve
