/**
 * @file
 * Tiny deterministic hashing helpers shared across the service layer:
 * FNV-1a 64 for content keys and payload checksums, and a
 * splitmix-style mixer for seeded per-(request, attempt) decisions
 * (backoff jitter, fault-plan rolls). All pure functions of their
 * inputs — no wall clock, no global state — so every consumer stays
 * byte-reproducible.
 */
#ifndef DIAG_SERVE_HASH_HPP
#define DIAG_SERVE_HASH_HPP

#include <string>

#include "common/types.hpp"

namespace diag::serve
{

inline constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr u64 kFnvPrime = 0x100000001b3ull;

/** FNV-1a 64 over @p bytes, continuing from @p h. */
inline u64
fnv1a(const std::string &bytes, u64 h = kFnvOffset)
{
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

/** FNV-1a 64 over the 8 bytes of @p v, continuing from @p h. */
inline u64
fnv1a64(u64 v, u64 h = kFnvOffset)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

/** Splitmix-style finalizer: one well-mixed sample from three ids. */
inline u64
mix64(u64 a, u64 b, u64 c)
{
    u64 z = a + 0x9e3779b97f4a7c15ull * (b + 1) +
            0x94d049bb133111ebull * (c + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** mix64 as a uniform sample in [0, 1): for seeded percentage rolls. */
inline double
mixUniform(u64 a, u64 b, u64 c)
{
    return static_cast<double>(mix64(a, b, c) >> 11) * 0x1.0p-53;
}

} // namespace diag::serve

#endif // DIAG_SERVE_HASH_HPP
