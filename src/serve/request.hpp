/**
 * @file
 * Request/response vocabulary of the diag-serve simulation service.
 *
 * A SimRequest names a bundled workload plus the engine configuration
 * and run options; a SimResponse carries either the byte-stable stats
 * payload of a successful run or a classified failure. The
 * classification (FailKind) is the service's failure taxonomy, mapped
 * from the simulator's RunStats flags:
 *
 *   retryable — the *host* got in the way, a repeat may succeed:
 *     Timeout     the request's wall-clock deadline (or the service
 *                 watchdog) expired mid-run
 *     WorkerCrash the isolated worker process died (signal/abort)
 *     WorkerStall the worker stopped making progress and was killed
 *     Saturated   no capacity (queue full past the watermark, or the
 *                 crash-restart circuit breaker is open)
 *
 *   terminal — deterministic, a retry would reproduce it:
 *     Sdc         the run completed but its outputs failed the check
 *     Trap        the run trapped, aborted, or exhausted its in-sim
 *                 cycle/instruction budget (all deterministic)
 *     Malformed   the request itself is invalid (unknown workload or
 *                 config, missing simt variant, zero threads)
 */
#ifndef DIAG_SERVE_REQUEST_HPP
#define DIAG_SERVE_REQUEST_HPP

#include <string>

#include "common/types.hpp"

namespace diag::serve
{

/** Load-shedding class: under pressure Low sheds first. */
enum class Priority : u8
{
    Low = 0,
    Normal = 1,
    High = 2,
};

const char *priorityName(Priority p);

/** Terminal state of a request, as seen by the client. */
enum class RespStatus : u8
{
    Ok,        //!< ran (or cache hit); payload is the stats JSON
    Rejected,  //!< not admitted: queue full — retry after backoff
    Shed,      //!< not admitted: load-shed by priority at the
               //!< high watermark — retry after backoff
    Expired,   //!< deadline passed before a successful attempt
    Cancelled, //!< the client cancelled before completion
    Failed,    //!< attempts exhausted (retryable kinds) or a
               //!< terminal kind; see fail/reason
};

const char *respStatusName(RespStatus s);

/** The failure taxonomy (see the file comment). */
enum class FailKind : u8
{
    None = 0,
    Timeout,
    WorkerCrash,
    WorkerStall,
    Saturated,
    Sdc,
    Trap,
    Malformed,
};

const char *failKindName(FailKind k);

/** Retryable kinds may succeed on a repeat; terminal kinds cannot. */
bool isRetryable(FailKind k);

/** One simulation request. */
struct SimRequest
{
    u64 id = 0;                  //!< client-chosen; echoed back
    std::string workload;        //!< bundled workload name
    std::string config = "F4C16"; //!< DiAG preset name
    unsigned threads = 1;        //!< software threads (a1 value)
    bool use_simt = false;       //!< run the simt-annotated variant
    Priority priority = Priority::Normal;
    /** Wall-clock budget from admission, 0 = the service default. */
    u64 deadline_ms = 0;
};

/** One response. */
struct SimResponse
{
    u64 id = 0;
    RespStatus status = RespStatus::Failed;
    FailKind fail = FailKind::None;
    std::string reason;      //!< one line; empty on Ok
    unsigned attempts = 0;   //!< execution attempts consumed
    bool from_cache = false; //!< payload served from the result cache
    /** Suggested client backoff for Rejected/Shed (milliseconds). */
    u64 retry_after_ms = 0;
    /** Byte-stable stats JSON when status == Ok (renderPayload()). */
    std::string payload;
    /** Admission-to-response latency. Real milliseconds under the
     *  threaded service, virtual milliseconds under the soak DES. */
    u64 latency_ms = 0;
};

/** Deterministic JSON rendering of one response (byte-stable). */
std::string renderResponseJson(const SimResponse &r);

} // namespace diag::serve

#endif // DIAG_SERVE_REQUEST_HPP
