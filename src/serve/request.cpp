#include "serve/request.hpp"

#include "common/log.hpp"

namespace diag::serve
{

const char *
priorityName(Priority p)
{
    switch (p) {
      case Priority::Low: return "low";
      case Priority::Normal: return "normal";
      case Priority::High: return "high";
    }
    return "unknown";
}

const char *
respStatusName(RespStatus s)
{
    switch (s) {
      case RespStatus::Ok: return "ok";
      case RespStatus::Rejected: return "rejected";
      case RespStatus::Shed: return "shed";
      case RespStatus::Expired: return "expired";
      case RespStatus::Cancelled: return "cancelled";
      case RespStatus::Failed: return "failed";
    }
    return "unknown";
}

const char *
failKindName(FailKind k)
{
    switch (k) {
      case FailKind::None: return "none";
      case FailKind::Timeout: return "timeout";
      case FailKind::WorkerCrash: return "worker-crash";
      case FailKind::WorkerStall: return "worker-stall";
      case FailKind::Saturated: return "saturated";
      case FailKind::Sdc: return "sdc";
      case FailKind::Trap: return "trap";
      case FailKind::Malformed: return "malformed";
    }
    return "unknown";
}

bool
isRetryable(FailKind k)
{
    switch (k) {
      case FailKind::Timeout:
      case FailKind::WorkerCrash:
      case FailKind::WorkerStall:
      case FailKind::Saturated:
        return true;
      case FailKind::None:
      case FailKind::Sdc:
      case FailKind::Trap:
      case FailKind::Malformed:
        return false;
    }
    return false;
}

std::string
renderResponseJson(const SimResponse &r)
{
    std::string esc;
    esc.reserve(r.reason.size());
    for (const char c : r.reason) {
        if (c == '"' || c == '\\')
            esc += '\\';
        if (c == '\n') {
            esc += "\\n";
            continue;
        }
        esc += c;
    }
    std::string out = detail::vformat(
        "{\"id\": %llu, \"status\": \"%s\", \"fail\": \"%s\", "
        "\"reason\": \"%s\", \"attempts\": %u, \"from_cache\": %s, "
        "\"retry_after_ms\": %llu, \"latency_ms\": %llu",
        static_cast<unsigned long long>(r.id), respStatusName(r.status),
        failKindName(r.fail), esc.c_str(), r.attempts,
        r.from_cache ? "true" : "false",
        static_cast<unsigned long long>(r.retry_after_ms),
        static_cast<unsigned long long>(r.latency_ms));
    if (r.status == RespStatus::Ok)
        out += ", \"payload\": " +
               (r.payload.empty() ? std::string("null") : r.payload);
    out += "}";
    return out;
}

} // namespace diag::serve
