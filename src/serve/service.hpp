/**
 * @file
 * SimService: the fault-tolerant batched simulation daemon.
 *
 * Requests flow submit() -> validate -> admission (BoundedQueue with
 * watermark shedding) -> a pump task on the host thread pool ->
 * attempt loop (cache, circuit breaker, executeAttempt, retry with
 * backoff) -> promise fulfilment. Every terminal state is a
 * classified SimResponse; the daemon itself never exits on a request,
 * however malformed, crashing, or slow.
 *
 * Robustness properties, each tested and soak-asserted:
 *  - backpressure: a full queue Rejects (with a retry-after hint)
 *    instead of buffering; above the high watermark Low-priority
 *    traffic is Shed until the backlog drains (hysteresis);
 *  - deadlines: each request carries a wall-clock deadline layered on
 *    the in-sim budgets, enforced cooperatively mid-run through its
 *    CancelToken (and by SIGKILL for stalled subprocess workers);
 *  - cancellation: Ticket::cancel stops a queued request before it
 *    starts and an in-flight one at the next activation boundary;
 *  - retries: retryable failures back off exponentially with seeded
 *    jitter; terminal ones (SDC, trap, malformed) never retry;
 *  - crash isolation: with ServiceConfig::subprocess, a simulator
 *    abort kills one forked worker, not the daemon; the supervisor
 *    restarts under a restart-budget circuit breaker;
 *  - degradation: the content-hash cache serves repeat requests, and
 *    a corrupted entry fails its checksum and recomputes — the
 *    service may get slower under damage, never wrong.
 *
 * Threading: submit() may be called from any thread. Shared control
 * state (queue, tallies) sits behind one mutex; the heavy work —
 * whole simulations — runs lock-free on pool workers, each owning
 * its simulator instance (DESIGN.md §10).
 */
#ifndef DIAG_SERVE_SERVICE_HPP
#define DIAG_SERVE_SERVICE_HPP

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "host/cancel.hpp"
#include "host/thread_pool.hpp"
#include "obs/serve_obs.hpp"
#include "serve/breaker.hpp"
#include "serve/cache.hpp"
#include "serve/fault_plan.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/retry.hpp"
#include "serve/worker.hpp"

namespace diag::serve
{

struct ServiceConfig
{
    unsigned workers = 2;     //!< pool threads executing requests
    QueueConfig queue;        //!< admission shape
    RetryPolicy retry;
    ServiceFaultPlan faults;  //!< default: no injection
    bool subprocess = false;  //!< crash-isolate attempts in children
    unsigned restart_budget = 8;
    u64 breaker_cooldown_ms = 1000;
    /** Deadline for requests that do not set one (0 = none). */
    u64 default_deadline_ms = 30000;
    bool cache_enabled = true;
    u64 seed = 1; //!< jitter/fault determinism base
    /** When nonzero, every in-process attempt runs under a
     *  metrics-only tracer with this stride and the service folds the
     *  per-attempt time series into one service-wide series
     *  (metricsSeries()). Ignored in subprocess mode. */
    u64 metrics_stride = 0;
};

/** Service-level tallies (monotonic). */
struct ServiceStats
{
    u64 submitted = 0;
    u64 accepted = 0;
    u64 rejected_full = 0;
    u64 shed = 0;
    u64 malformed = 0;
    u64 ok = 0;
    u64 failed = 0;
    u64 expired = 0;
    u64 cancelled = 0;
    u64 retries = 0;
    u64 worker_crashes = 0;
    u64 worker_stalls = 0;
};

class SimService
{
  public:
    /** Handle to one submitted request. */
    struct Ticket
    {
        u64 id = 0;
        std::future<SimResponse> result;
        /** Fires cooperative cancellation: before start the request
         *  resolves Cancelled without running; mid-run the engine
         *  stops at its next activation boundary. */
        host::CancelToken cancel;
    };

    explicit SimService(ServiceConfig cfg);

    /** Drains in-flight work, then joins the pool. Queued requests
     *  still resolve (every promise is always fulfilled). */
    ~SimService();

    SimService(const SimService &) = delete;
    SimService &operator=(const SimService &) = delete;

    /**
     * Validate, admit, and schedule @p req. Always returns a Ticket
     * whose future resolves exactly once — immediately for
     * Malformed/Rejected/Shed, after execution otherwise.
     */
    Ticket submit(const SimRequest &req);

    ServiceStats stats() const;
    ResultCache::Stats cacheStats() const;
    const char *breakerState() const;
    size_t queueDepth() const;

    /** Request-lifecycle observability snapshot: stage histograms,
     *  lifecycle counters, and wall-clock spans keyed by dense worker
     *  index. Unlike the soak's, these carry real timings and are not
     *  run-to-run reproducible. */
    obs::ServeObs obsSnapshot() const;

    /** Service-wide time series folded from every successful
     *  in-process attempt (empty unless metrics_stride was set). */
    trace::MetricsSeries metricsSeries() const;
    /** Largest cluster count seen by a folded attempt (exporter
     *  normalization hint). */
    unsigned metricsClusters() const;

  private:
    struct Pending
    {
        ValidatedRequest v;
        std::promise<SimResponse> promise;
        host::CancelToken cancel;
        std::chrono::steady_clock::time_point accepted_at;
        u64 deadline_ms = 0; //!< resolved (request or default)
    };

    void pumpOne();
    void serveRequest(std::unique_ptr<Pending> p);
    u64 nowMs() const;
    /** Dense index of the calling pool thread for span tracks;
     *  assigned on first use. Caller holds m_. */
    unsigned workerIdLocked();

    ServiceConfig cfg_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex m_;
    BoundedQueue<std::unique_ptr<Pending>> queue_;
    ServiceStats stats_;
    CircuitBreaker breaker_;
    u64 cache_inserts_ = 0; //!< insert ordinal for fault decisions
    obs::ServeObs obs_;
    std::map<std::thread::id, unsigned> worker_ids_;
    trace::MetricsSeries series_;
    unsigned series_clusters_ = 0;

    ResultCache cache_; // internally locked

    /** Declared last: its destructor drains pump tasks that touch
     *  every member above, so it must die first. */
    host::ThreadPool pool_;
};

} // namespace diag::serve

#endif // DIAG_SERVE_SERVICE_HPP
