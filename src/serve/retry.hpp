/**
 * @file
 * Retry policy: exponential backoff with seeded, deterministic jitter.
 *
 * Attempt n (0-based) backs off base * 2^n, capped, plus a jitter
 * drawn from mix64(seed, request id, attempt) — so two runs of the
 * same campaign produce byte-identical retry schedules, while
 * different requests still decorrelate (no thundering herd after a
 * shared saturation event).
 *
 * Only retryable FailKinds (see request.hpp) consume further
 * attempts; a terminal kind ends the request immediately regardless
 * of the attempts remaining.
 */
#ifndef DIAG_SERVE_RETRY_HPP
#define DIAG_SERVE_RETRY_HPP

#include "common/types.hpp"
#include "serve/hash.hpp"
#include "serve/request.hpp"

namespace diag::serve
{

struct RetryPolicy
{
    unsigned max_attempts = 3; //!< total attempts (first + retries)
    u64 base_backoff_ms = 50;
    u64 max_backoff_ms = 2000;
    /** Jitter fraction of the capped backoff, in [0, jitter]. */
    double jitter = 0.5;

    /**
     * Backoff before retry number @p attempt (1 = after the first
     * failure). Deterministic in (seed, request id, attempt).
     */
    u64
    backoffMs(u64 seed, u64 request_id, unsigned attempt) const
    {
        u64 base = base_backoff_ms;
        for (unsigned i = 1; i < attempt && base < max_backoff_ms;
             ++i)
            base *= 2;
        if (base > max_backoff_ms)
            base = max_backoff_ms;
        const double j =
            jitter * mixUniform(seed, request_id, attempt);
        return base + static_cast<u64>(static_cast<double>(base) * j);
    }

    /** One more attempt allowed after @p failed attempts of @p kind? */
    bool
    shouldRetry(FailKind kind, unsigned attempts_done) const
    {
        return isRetryable(kind) && attempts_done < max_attempts;
    }
};

} // namespace diag::serve

#endif // DIAG_SERVE_RETRY_HPP
