#include "serve/worker.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#if defined(__linux__) || defined(__unix__)
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define DIAG_SERVE_HAS_FORK 1
#else
#define DIAG_SERVE_HAS_FORK 0
#endif

#include "common/log.hpp"
#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "serve/hash.hpp"

namespace diag::serve
{

namespace
{

/** The engine's host-watchdog stop (vs an in-sim budget stop). */
bool
hostStopped(const sim::RunStats &s)
{
    // Not a prefix test: multi-thread runs wrap the reason as
    // "thread N: host watchdog: ...".
    return s.timed_out &&
           s.stop_reason.find("host watchdog") != std::string::npos;
}

/**
 * The uninjected in-process attempt body, shared by the pool-worker
 * path and the forked child. @p tok may be null (no deadline, no
 * cancellation).
 */
AttemptResult
runBody(const ValidatedRequest &v, const host::CancelToken *tok,
        u64 metrics_stride)
{
    harness::RunSpec rs;
    rs.threads = v.req.threads;
    rs.use_simt = v.req.use_simt;
    rs.tolerate_failures = true;
    rs.cancel = tok;
    // Metrics-only tracing: no event mask, so the ring buffer stays
    // empty and only the time series accumulates.
    trace::TraceConfig tc;
    if (metrics_stride > 0) {
        tc.event_mask = 0;
        tc.metrics_stride = metrics_stride;
        tc.buffer_events = 1;
        rs.trace = &tc;
    }
    const harness::EngineRun run = harness::runOnDiag(v.cfg, v.w, rs);

    AttemptResult r;
    r.cycles = run.stats.cycles;
    r.trace = run.trace;
    if (run.stats.halted) {
        if (!run.checked) {
            r.fail = FailKind::Sdc;
            r.reason = "run completed but failed its output check";
            return r;
        }
        r.payload = renderPayload(run.stats, run.checked);
        return r;
    }
    if (hostStopped(run.stats)) {
        r.fail = FailKind::Timeout;
        r.cancelled = tok != nullptr && tok->cancelled();
        r.reason = run.stats.stop_reason;
        return r;
    }
    // Anything else the model stopped for — trap, detected-fault
    // abort, in-sim cycle/instruction budget — is deterministic: the
    // same request replays to the same stop. Terminal.
    r.fail = FailKind::Trap;
    r.reason = run.stats.stop_reason.empty()
                   ? "run stopped without halting"
                   : run.stats.stop_reason;
    return r;
}

#if DIAG_SERVE_HAS_FORK

void
putU32(std::string &s, u32 v)
{
    for (int i = 0; i < 4; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

u32
getU32(const unsigned char *p)
{
    return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
           (static_cast<u32>(p[2]) << 16) |
           (static_cast<u32>(p[3]) << 24);
}

/** Child side: run, serialize, write one checksummed frame, _exit. */
[[noreturn]] void
childMain(int wfd, const AttemptSpec &spec)
{
    if (spec.inject_crash)
        abort(); // a real worker crash: parent sees WIFSIGNALED
    const AttemptResult r = runBody(*spec.v, nullptr, 0);
    if (spec.inject_stall) {
        // A real stall: the result exists but never reaches the
        // parent, which must SIGKILL us at the deadline.
        for (;;)
            pause();
    }
    std::string frame;
    frame.push_back(static_cast<char>(r.fail));
    frame.push_back(r.cancelled ? 1 : 0);
    putU32(frame, static_cast<u32>(r.reason.size()));
    putU32(frame, static_cast<u32>(r.payload.size()));
    putU32(frame, static_cast<u32>(r.cycles & 0xffffffffull));
    putU32(frame, static_cast<u32>(r.cycles >> 32));
    frame += r.reason;
    frame += r.payload;
    const u64 sum = fnv1a(frame);
    for (int i = 0; i < 8; ++i)
        frame.push_back(
            static_cast<char>((sum >> (8 * i)) & 0xff));
    size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            write(wfd, frame.data() + off, frame.size() - off);
        if (n <= 0)
            _exit(3); // parent gone; nothing sane left to do
        off += static_cast<size_t>(n);
    }
    _exit(0);
}

/** Read until EOF or the deadline; true on clean EOF in time. */
bool
readAllWithDeadline(int rfd, u64 budget_ms, std::string *out)
{
    struct pollfd pf;
    pf.fd = rfd;
    pf.events = POLLIN;
    // Coarse 50 ms ticks are plenty: the budget guards whole
    // simulations, not syscalls.
    const int tick_ms = 50;
    u64 waited = 0;
    char buf[4096];
    for (;;) {
        const int pr = poll(&pf, 1, tick_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (pr > 0) {
            const ssize_t n = read(rfd, buf, sizeof(buf));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return true; // EOF: child closed its end
            out->append(buf, static_cast<size_t>(n));
            continue;
        }
        waited += tick_ms;
        if (budget_ms > 0 && waited >= budget_ms)
            return false;
    }
}

AttemptResult
runSubprocess(const AttemptSpec &spec)
{
    AttemptResult r;
    int fds[2];
    if (pipe(fds) != 0) {
        r.fail = FailKind::Saturated;
        r.reason = "pipe() failed";
        return r;
    }
    const pid_t pid = fork();
    if (pid < 0) {
        close(fds[0]);
        close(fds[1]);
        r.fail = FailKind::Saturated;
        r.reason = "fork() failed";
        return r;
    }
    if (pid == 0) {
        close(fds[0]);
        childMain(fds[1], spec); // never returns
    }
    close(fds[1]);

    // A stalled worker gets the request deadline plus slack before
    // the supervisor gives up on it; an unbounded request still gets
    // a cap so a stall can never wedge the daemon.
    const u64 kill_budget_ms =
        spec.deadline_ms > 0 ? spec.deadline_ms + 500 : 60000;
    std::string frame;
    const bool got_eof =
        readAllWithDeadline(fds[0], kill_budget_ms, &frame);
    close(fds[0]);

    if (!got_eof) {
        kill(pid, SIGKILL);
        int status = 0;
        waitpid(pid, &status, 0);
        r.fail = FailKind::WorkerStall;
        r.reason = detail::vformat(
            "worker made no progress for %llu ms; killed",
            static_cast<unsigned long long>(kill_budget_ms));
        return r;
    }

    int status = 0;
    waitpid(pid, &status, 0);
    if (WIFSIGNALED(status)) {
        r.fail = FailKind::WorkerCrash;
        r.reason = detail::vformat("worker killed by signal %d",
                                   WTERMSIG(status));
        return r;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        r.fail = FailKind::WorkerCrash;
        r.reason = detail::vformat(
            "worker exited with status %d",
            WIFEXITED(status) ? WEXITSTATUS(status) : -1);
        return r;
    }

    // Deserialize and verify the frame. Anything short or mismatched
    // counts as a crash — the parent never trusts damaged bytes.
    const size_t kHeader = 1 + 1 + 4 + 4 + 8;
    if (frame.size() < kHeader + 8) {
        r.fail = FailKind::WorkerCrash;
        r.reason = "worker produced a truncated result frame";
        return r;
    }
    const auto *p =
        reinterpret_cast<const unsigned char *>(frame.data());
    const u32 rlen = getU32(p + 2);
    const u32 plen = getU32(p + 6);
    if (frame.size() != kHeader + rlen + plen + 8) {
        r.fail = FailKind::WorkerCrash;
        r.reason = "worker result frame has a bad length";
        return r;
    }
    u64 sum = 0;
    for (int i = 0; i < 8; ++i)
        sum |= static_cast<u64>(
                   p[frame.size() - 8 + static_cast<size_t>(i)])
               << (8 * i);
    if (fnv1a(frame.substr(0, frame.size() - 8)) != sum) {
        r.fail = FailKind::WorkerCrash;
        r.reason = "worker result frame failed its checksum";
        return r;
    }
    r.fail = static_cast<FailKind>(p[0]);
    r.cancelled = p[1] != 0;
    r.cycles = static_cast<u64>(getU32(p + 10)) |
               (static_cast<u64>(getU32(p + 14)) << 32);
    r.reason = frame.substr(kHeader, rlen);
    r.payload = frame.substr(kHeader + rlen, plen);
    return r;
}

#endif // DIAG_SERVE_HAS_FORK

} // namespace

ValidatedRequest
validateRequest(const SimRequest &req)
{
    ValidatedRequest v;
    v.req = req;
    if (!workloads::tryFindWorkload(req.workload, &v.w)) {
        v.error = detail::vformat("unknown workload '%s'",
                                  req.workload.c_str());
        return v;
    }
    if (!harness::tryConfigByName(req.config, &v.cfg)) {
        v.error = detail::vformat("unknown config '%s'",
                                  req.config.c_str());
        return v;
    }
    if (req.threads == 0) {
        v.error = "thread count must be at least 1";
        return v;
    }
    if (req.use_simt && v.w.asm_simt.empty()) {
        v.error = detail::vformat("workload '%s' has no simt variant",
                                  req.workload.c_str());
        return v;
    }
    v.ok = true;
    v.content_key = contentKey(v);
    return v;
}

u64
contentKey(const ValidatedRequest &v)
{
    u64 h = fnv1a(v.req.use_simt ? v.w.asm_simt : v.w.asm_serial);
    h = fnv1a(v.cfg.name, h);
    h = fnv1a64(v.req.threads, h);
    h = fnv1a64(v.req.use_simt ? 1 : 0, h);
    return h;
}

std::string
renderPayload(const sim::RunStats &stats, bool checked)
{
    std::ostringstream os;
    stats.counters.dumpJson(os);
    std::string counters = os.str();
    while (!counters.empty() && counters.back() == '\n')
        counters.pop_back();
    return detail::vformat(
               "{\"cycles\": %llu, \"instructions\": %llu, "
               "\"halted\": %s, \"checked\": %s, \"stats\": ",
               static_cast<unsigned long long>(stats.cycles),
               static_cast<unsigned long long>(stats.instructions),
               stats.halted ? "true" : "false",
               checked ? "true" : "false") +
           counters + "}";
}

AttemptResult
executeAttempt(const AttemptSpec &spec)
{
    panic_if(spec.v == nullptr || !spec.v->ok,
             "executeAttempt needs a validated request");
#if DIAG_SERVE_HAS_FORK
    if (spec.subprocess)
        return runSubprocess(spec);
#endif
    // In-process: injected crashes/stalls are simulated (the
    // classification and retry paths are identical; only the
    // blast-radius differs, which is the point of subprocess mode).
    AttemptResult r;
    if (spec.inject_crash) {
        r.fail = FailKind::WorkerCrash;
        r.reason = "injected worker crash";
        return r;
    }
    if (spec.inject_stall) {
        r.fail = FailKind::WorkerStall;
        r.reason = "injected worker stall";
        return r;
    }
    host::CancelToken local;
    const host::CancelToken *tok = spec.cancel;
    if (tok == nullptr && spec.deadline_ms > 0) {
        local = host::CancelToken::withTimeout(spec.deadline_ms);
        tok = &local;
    }
    return runBody(*spec.v, tok, spec.metrics_stride);
}

} // namespace diag::serve
