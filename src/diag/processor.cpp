#include "diag/processor.hpp"

#include <algorithm>

#include "analysis/lint.hpp"
#include "analysis/verify.hpp"
#include "common/log.hpp"
#include "fault/controller.hpp"

namespace diag::core
{

DiagProcessor::DiagProcessor(DiagConfig cfg)
    : cfg_(std::move(cfg)), mh_(cfg_.mem, 1), bus_("diag_bus"),
      stats_("diag")
{
    fatal_if(cfg_.total_clusters % cfg_.num_rings != 0,
             "%u clusters do not split evenly over %u rings",
             cfg_.total_clusters, cfg_.num_rings);
    for (unsigned r = 0; r < cfg_.num_rings; ++r)
        rings_.push_back(
            std::make_unique<Ring>(cfg_, r, mh_, bus_, stats_));
}

sim::RunStats
DiagProcessor::run(const Program &prog, u64 max_insts)
{
    return runThreads(prog, {ThreadSpec{prog.entry, {}}}, max_insts);
}

void
DiagProcessor::beginRun(const Program &prog)
{
    // Stale-program guard: a reused processor handed a different
    // Program used to keep executing whichever image was loaded first
    // (runThreads only loaded when nothing was loaded yet). Reload
    // from scratch on mismatch; an identical program keeps the current
    // image so inputs placed via memory() survive.
    const bool stale =
        program_loaded_ && prog.fingerprint() != program_hash_;
    if (stale) {
        mem_ = SparseMemory{};
        warmed_ = false;
    }
    if (!program_loaded_ || stale)
        loadProgram(prog);
    // Per-run isolation: a second run() used to fold the first run's
    // counters into its RunStats (rs.counters started from the
    // accumulated stats_) and to inherit its cache, bus, and ring
    // state. Reset to the post-load state — re-warming if the caller
    // warmed — so run-twice equals run-once. The first run skips all
    // of this and is bit-identical to a fresh processor's.
    if (ran_) {
        for (auto &ring : rings_)
            ring->reset();
        bus_.reset();
        mh_.reset();
        stats_.clear(false);
        if (warmed_)
            warmCaches();
    }
    ran_ = true;
}

void
DiagProcessor::attachFaults(fault::FaultController *fc)
{
    faults_ = fc;
    for (auto &ring : rings_)
        ring->setFaultController(fc);
}

void
DiagProcessor::attachCancel(const host::CancelToken *t)
{
    for (auto &ring : rings_)
        ring->setCancelToken(t);
}

void
DiagProcessor::attachTrace(trace::Tracer *t)
{
    trc_ = t;
    for (auto &ring : rings_)
        ring->setTracer(t);
    mh_.setTracer(t);
    if (t)
        t->setClusters(cfg_.total_clusters);
}

void
DiagProcessor::attachAddrTrace(trace::AddrTrace *t)
{
    for (auto &ring : rings_)
        ring->setAddrTrace(t);
}

void
DiagProcessor::attachObs(obs::SimProfile *p)
{
    for (auto &ring : rings_)
        ring->setObs(p);
}

void
DiagProcessor::lintStrict(const Program &prog,
                          const std::vector<ThreadSpec> &threads) const
{
    analysis::LintOptions opt;
    opt.line_bytes = cfg_.pes_per_cluster * 4;
    opt.clusters_per_ring = cfg_.clustersPerRing();
    opt.simt_enabled = cfg_.simt_enabled;
    // A lane is entry-defined only if every thread initializes it.
    opt.entry_defined.set();
    for (const ThreadSpec &spec : threads) {
        analysis::RegSet regs;
        for (const auto &[reg, value] : spec.init_regs)
            regs.set(reg);
        opt.entry_defined &= regs;
    }
    const analysis::LintResult lint = analysis::lintProgram(prog, opt);
    if (lint.errors() > 0) {
        analysis::LintResult errors_only;
        for (const analysis::Diagnostic &d : lint.diags)
            if (d.severity == analysis::Severity::Error)
                errors_only.diags.push_back(d);
        fatal("program rejected by the static analyzer:\n%s",
              analysis::renderText(errors_only).c_str());
    }
}

void
DiagProcessor::verifyStrict(const Program &prog,
                            const std::vector<ThreadSpec> &threads) const
{
    analysis::VerifyOptions opt;
    opt.lint.line_bytes = cfg_.pes_per_cluster * 4;
    opt.lint.clusters_per_ring = cfg_.clustersPerRing();
    opt.lint.simt_enabled = cfg_.simt_enabled;
    opt.lint.entry_defined.set();
    for (const ThreadSpec &spec : threads) {
        analysis::RegSet regs;
        for (const auto &[reg, value] : spec.init_regs)
            regs.set(reg);
        opt.lint.entry_defined &= regs;
    }
    const analysis::VerifyResult res =
        analysis::verifyProgram(prog, opt);
    if (!res.clean())
        fatal("program rejected by the verifier:\n%s",
              analysis::renderVerifyText(res).c_str());
}

sim::RunStats
DiagProcessor::runThreads(const Program &prog,
                          const std::vector<ThreadSpec> &threads,
                          u64 max_insts)
{
    if (cfg_.lint_enabled)
        lintStrict(prog, threads);
    if (cfg_.verify_enabled)
        verifyStrict(prog, threads);
    fatal_if(faults_ && faults_->lockstepEnabled() &&
                 threads.size() > 1,
             "golden-lockstep checking shadows a single retirement "
             "stream; run one thread");
    beginRun(prog);
    results_.clear();
    sim::RunStats rs;
    rs.halted = true;
    Cycle finish = 0;
    // When there are more threads than rings, later waves start on a
    // ring only after its previous thread finished.
    std::vector<Cycle> ring_free(rings_.size(), 0);
    for (unsigned t = 0; t < threads.size(); ++t) {
        const ThreadSpec &spec = threads[t];
        LaneFile regs{};
        for (const auto &[reg, value] : spec.init_regs) {
            panic_if(reg == 0 || reg >= isa::kNumRegs,
                     "bad init register %u", reg);
            regs[reg].value = value;
        }
        const unsigned r = t % rings_.size();
        Ring &ring = *rings_[r];
        const Cycle launch = ring_free[r];
        const ThreadResult tr = ring.runThread(spec.entry, regs, mem_,
                                               ring_free[r], max_insts);
        if (trc_)
            trc_->thread(static_cast<u8>(r), static_cast<u16>(t),
                         spec.entry, launch, tr.finish, tr.retired);
        ring_free[r] = tr.finish;
        if (tr.faulted)
            warn("thread %u faulted at pc 0x%x", t, tr.stop_pc);
        rs.halted = rs.halted && tr.halted;
        rs.timed_out = rs.timed_out || tr.timed_out;
        rs.faulted = rs.faulted || tr.faulted;
        rs.aborted = rs.aborted || tr.aborted;
        if (rs.stop_reason.empty() && !tr.stop_reason.empty())
            rs.stop_reason = detail::vformat(
                "thread %u: %s", t, tr.stop_reason.c_str());
        rs.instructions += tr.retired;
        finish = std::max(finish, tr.finish);
        results_.push_back(tr);
    }
    rs.cycles = finish;
    rs.counters = stats_;
    rs.counters.set("threads", static_cast<double>(threads.size()));
    rs.counters.set("bus_wait_cycles",
                    bus_.stats().get("wait_cycles"));
    rs.counters.set("bus_transfers", bus_.stats().get("transfers"));
    mh_.mergeStats(rs.counters);
    return rs;
}

u32
DiagProcessor::finalReg(unsigned thread, isa::RegId reg) const
{
    panic_if(thread >= results_.size(), "no result for thread %u",
             thread);
    if (reg == isa::kRegZero)
        return 0;
    return results_[thread].final_regs[reg].value;
}

} // namespace diag::core
