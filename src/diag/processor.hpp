/**
 * @file
 * DiagProcessor: the full DiAG chip — dataflow rings over a shared
 * banked L1D / unified L2 hierarchy and the shared 512-bit bus.
 * Public entry point of the DiAG model.
 */
#ifndef DIAG_DIAG_PROCESSOR_HPP
#define DIAG_DIAG_PROCESSOR_HPP

#include <memory>
#include <vector>

#include "asm/program.hpp"
#include "diag/ring.hpp"
#include "sim/run_stats.hpp"

namespace diag::core
{

/** Initial state for one software thread. */
struct ThreadSpec
{
    Addr entry = 0;
    /** (unified register, value) pairs applied before start. */
    std::vector<std::pair<isa::RegId, u32>> init_regs;
};

/** A complete DiAG processor instance. */
class DiagProcessor
{
  public:
    explicit DiagProcessor(DiagConfig cfg);

    /** The functional memory image (set inputs before run()). */
    SparseMemory &memory() { return mem_; }

    /**
     * Load the program image now, so callers can initialize input data
     * on top of it before run()/runThreads() (which otherwise load the
     * image themselves and would overwrite such data with .space zeros).
     * Records the program's fingerprint: a later run() with a
     * *different* Program reloads memory from scratch instead of
     * silently executing the stale image.
     */
    void
    loadProgram(const Program &prog)
    {
        prog.loadInto(mem_);
        program_loaded_ = true;
        program_hash_ = prog.fingerprint();
    }

    /**
     * Pre-install every resident line of the memory image into the
     * shared L2 (steady-state warmup, as in the paper's methodology of
     * measuring kernels rather than cold starts). Call after
     * loadProgram() and input initialization.
     */
    void
    warmCaches()
    {
        mem_.forEachPage([&](Addr base) {
            for (Addr off = 0; off < SparseMemory::kPageSize; off += 64)
                mh_.warmLine(base + off);
        });
        warmed_ = true;
    }

    const DiagConfig &config() const { return cfg_; }

    /**
     * Attach (or detach with nullptr) a fault controller for the next
     * run: injection per its plan, parity/lockstep detection, and
     * checkpoint-rollback recovery in every ring. The caller keeps
     * ownership and reads the tally back after the run.
     */
    void attachFaults(fault::FaultController *fc);

    /**
     * Attach (or detach with nullptr) a tracer: every ring, the
     * activation engine, and the L1D banks emit typed events into it.
     * Purely observational — attaching a tracer never changes any
     * cycle the model computes. The caller keeps ownership and must
     * keep the tracer alive across the run; like the StatGroup, a
     * tracer is unsynchronized and must stay confined to the worker
     * that owns this processor (DESIGN.md §11).
     */
    void attachTrace(trace::Tracer *t);

    /**
     * Attach (or detach with nullptr) the stream validator's address
     * recorder: every ring records simt region launch parameters and
     * the effective address of each executed load/store inside regions
     * (DESIGN.md §14). Same contract as attachTrace — purely
     * observational, caller-owned, worker-confined.
     */
    void attachAddrTrace(trace::AddrTrace *t);

    /**
     * Attach (or detach with nullptr) a cooperative cancellation
     * token (host::CancelToken): every ring polls it at activation
     * boundaries and a fired token stops the run with a structured
     * timeout (stop_reason "host watchdog: ..."). The caller keeps
     * ownership; the token must outlive the run.
     */
    void attachCancel(const host::CancelToken *t);

    /**
     * Attach (or detach with nullptr) a skip-idle self-profile
     * (obs::SimProfile, DESIGN.md §16): every ring tallies fast-path
     * coverage — batched vs densely stepped activations, extrapolated
     * iterations, batcher disqualification reasons — into it. Purely
     * observational and, unlike the tracers, it does not disqualify
     * the loop batcher: cycles and counters are identical with or
     * without a profile attached. Caller-owned, worker-confined.
     */
    void attachObs(obs::SimProfile *p);

    /**
     * Run @p prog single-threaded on ring 0. Loads the program image
     * into memory first.
     */
    sim::RunStats run(const Program &prog,
                      u64 max_insts = 500'000'000);

    /**
     * Run one thread per spec; thread t executes on ring t % rings.
     * Total cycles = latest finish across threads. Threads must touch
     * disjoint writable data (the paper's parallelizable workloads).
     */
    sim::RunStats runThreads(const Program &prog,
                             const std::vector<ThreadSpec> &threads,
                             u64 max_insts = 500'000'000);

    /** Architectural register value of thread @p t after a run. */
    u32 finalReg(unsigned thread, isa::RegId reg) const;

    /** Model-wide counters (activations, reuse, stalls, energy events). */
    const StatGroup &stats() const { return stats_; }

  private:
    /**
     * Per-run setup: load (or reload, if @p prog differs from the
     * loaded one) the program, and — on every run after the first —
     * reset rings, bus, hierarchy, and counters so each run() reports
     * per-run deltas from the same post-load, post-warm initial state
     * instead of folding in the previous run's counters and cache
     * contents. The first run is left untouched so a freshly
     * constructed processor behaves exactly as before.
     */
    void beginRun(const Program &prog);

    /** Strict-mode static lint: fatal() on error-level findings. */
    void lintStrict(const Program &prog,
                    const std::vector<ThreadSpec> &threads) const;

    /** Strict-mode verification (cfg.verify_enabled): fatal() when
     *  diag-verify refutes a safety property or proves a race. */
    void verifyStrict(const Program &prog,
                      const std::vector<ThreadSpec> &threads) const;

    DiagConfig cfg_;
    SparseMemory mem_;
    mem::MemHierarchy mh_;
    mem::Bus bus_;
    StatGroup stats_;
    std::vector<std::unique_ptr<Ring>> rings_;
    std::vector<ThreadResult> results_;
    bool program_loaded_ = false;
    bool warmed_ = false;  //!< warmCaches() called (re-warm each run)
    bool ran_ = false;     //!< a run completed (reset before the next)
    u64 program_hash_ = 0; //!< fingerprint of the loaded program
    fault::FaultController *faults_ = nullptr;
    trace::Tracer *trc_ = nullptr;  //!< null = tracing off
};

} // namespace diag::core

#endif // DIAG_DIAG_PROCESSOR_HPP
