#include "diag/ring.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <deque>
#include <map>

#include "analysis/simt_scan.hpp"
#include "common/bits.hpp"
#include "common/log.hpp"
#include "fault/checkpoint.hpp"
#include "fault/controller.hpp"
#include "fault/watchdog.hpp"
#include "isa/decoder.hpp"
#include "isa/exec.hpp"
#include "obs/sim_profile.hpp"
#include "trace/addr_trace.hpp"

namespace diag::core
{

using namespace diag::isa;

Ring::Ring(const DiagConfig &cfg, unsigned index, mem::MemHierarchy &mh,
           mem::Bus &bus, StatGroup &stats)
    : cfg_(cfg), index_(index), mh_(mh), bus_(bus), stats_(stats),
      engine_(cfg, mh, 0, stats),
      line_bytes_(cfg.pes_per_cluster * 4)
{
    clusters_.resize(cfg.clustersPerRing());
    for (unsigned c = 0; c < clusters_.size(); ++c)
        clusters_[c].index = c;
    fatal_if(clusters_.size() < 2,
             "a ring needs at least two clusters to alternate (have %zu)",
             clusters_.size());
}

void
Ring::reset()
{
    for (Cluster &cl : clusters_)
        cl.reset();
    resident_.clear();
    pinned_lines_.clear();
    not_pipelinable_.clear();
    use_counter_ = 0;
}

void
Ring::setFaultController(fault::FaultController *fc)
{
    faults_ = fc;
    engine_.setFaultController(fc);
}

void
Ring::setTracer(trace::Tracer *t)
{
    trc_ = t;
    engine_.setTracer(t, index_);
}

void
Ring::setAddrTrace(trace::AddrTrace *t)
{
    atrc_ = t;
    engine_.setAddrTrace(t);
}

unsigned
Ring::enabledClusters() const
{
    unsigned n = 0;
    for (const Cluster &cl : clusters_)
        n += cl.disabled ? 0 : 1;
    return n;
}

void
Ring::disableCluster(Cluster &cl)
{
    auto it = resident_.find(cl.line_base);
    if (it != resident_.end() && it->second == cl.index)
        resident_.erase(it);
    cl.evict();
    cl.disabled = true;
    stats_.inc("clusters_disabled");
    if (faults_)
        faults_->noteClusterDisabled();
    warn("ring%u: cluster %u disabled after repeated faults; "
         "remapping onto %u surviving clusters",
         index_, cl.index, enabledClusters());
}

void
Ring::dumpState(const char *why) const
{
    warn("ring%u state dump (%s):", index_, why);
    for (const Cluster &cl : clusters_) {
        warn("  cl%u%s line=0x%x ready=%llu free=%llu last_use=%llu",
             cl.index, cl.disabled ? " [disabled]" : "",
             cl.line_base, static_cast<unsigned long long>(cl.ready_at),
             static_cast<unsigned long long>(cl.free_at),
             static_cast<unsigned long long>(cl.last_use));
    }
}

Cluster &
Ring::chooseVictim()
{
    Cluster *victim = nullptr;
    for (Cluster &cl : clusters_) {
        if (cl.disabled)
            continue;
        if (cl.loaded() && pinned_lines_.count(cl.line_base))
            continue;
        if (!victim || cl.last_use < victim->last_use)
            victim = &cl;
    }
    panic_if(!victim, "all clusters pinned; cannot evict");
    return *victim;
}

Cycle
Ring::loadLine(Cluster &cl, Addr line, Cycle when, SparseMemory &mem)
{
    if (cl.loaded() && resident_.count(cl.line_base) &&
        resident_[cl.line_base] == cl.index)
        resident_.erase(cl.line_base);

    // The cluster must finish draining before it can be re-loaded.
    const Cycle start = std::max(when, cl.free_at);
    if (cl.free_at > when)
        stats_.inc("other_stall_cycles",
                   static_cast<double>(cl.free_at - when));
    // I-cache line fetch, delivery over the shared 512-bit bus, and
    // one decode cycle (paper §5.1.1).
    const mem::MemResult res = mh_.fetchLine(0, line, start);
    const Cycle grant = bus_.request(res.done, cfg_.bus_iline_transfer);
    const Cycle ready =
        grant + cfg_.bus_iline_transfer + cfg_.decode_latency;

    if (cl.last_use == 0)
        stats_.inc("clusters_used");  // first use: un-gates its lanes
    cl.line_base = line;
    cl.ready_at = ready;
    cl.last_use = ++use_counter_;
    cl.insts.clear();
    cl.insts.reserve(cfg_.pes_per_cluster);
    for (unsigned i = 0; i < cfg_.pes_per_cluster; ++i)
        cl.insts.push_back(decode(mem.read32(line + 4 * i)));
    // Skip-idle metadata (DESIGN.md §15), derived once per line load
    // instead of once per activation.
    cl.has_backward_branch = false;
    for (const DecodedInst &di : cl.insts) {
        if ((di.isBranch() || di.op == Op::JAL) && di.imm < 0) {
            cl.has_backward_branch = true;
            break;
        }
    }
    cl.batch_window.clear();
    stats_.inc("iline_fetches");
    stats_.inc("decodes", cfg_.pes_per_cluster);
    return ready;
}

Ring::Resident
Ring::ensureLoaded(Addr line, Cycle when, SparseMemory &mem)
{
    auto it = resident_.find(line);
    if (it != resident_.end()) {
        Cluster &cl = clusters_[it->second];
        cl.last_use = ++use_counter_;
        if (cfg_.reuse_enabled)
            return {&cl, cl.ready_at, true};
        // Ablation: without datapath reuse every activation re-fetches
        // and re-decodes its line, even when it is still resident.
        const Cycle ready = loadLine(cl, line, when, mem);
        resident_[line] = cl.index;
        return {&cl, ready, false};
    }
    Cluster &victim = chooseVictim();
    const Cycle ready = loadLine(victim, line, when, mem);
    resident_[line] = victim.index;
    return {&victim, ready, false};
}

void
Ring::prefetch(Addr line, Cycle when, SparseMemory &mem)
{
    if (resident_.count(line))
        return;
    ensureLoaded(line, when, mem);
    stats_.inc("prefetches");
}

u8
Ring::qualifyBatchWindow(Cluster &cl, unsigned slot) const
{
    const unsigned n = static_cast<unsigned>(cl.insts.size());
    if (slot >= n) {
        if (obs_)
            ++obs_->disqualified[obs::kReasonOutOfLine];
        return 1;
    }
    if (cl.batch_window.size() != n)
        cl.batch_window.assign(n, 0);
    if (cl.batch_window[slot] != 0)
        return cl.batch_window[slot];
    u8 code = 1;
    // Self-profiling (DESIGN.md §16): the verdict is cached per line
    // load, so each reason tallies once per classification, not once
    // per execution of the line.
    unsigned reason = obs::kReasonNoTerminator;
    for (unsigned b = slot; b < n; ++b) {
        const DecodedInst &di = cl.insts[b];
        if (!di.valid()) {
            reason = obs::kReasonInvalidInst;
            break;
        }
        if (di.isBranch()) {
            // Window terminator: a conditional backward branch whose
            // target is the entry slot again (a self-loop).
            const Addr addr = cl.line_base + 4 * b;
            const Addr target =
                static_cast<Addr>(static_cast<i64>(addr) + di.imm);
            if (di.imm < 0 && target == cl.line_base + 4 * slot)
                code = static_cast<u8>(2 + (b - slot));
            else
                reason = obs::kReasonNotSelfLoop;
            break;
        }
        // Interior instructions must be pure lane-to-lane compute:
        // memory would touch cache/bus/LSU state the loop probe does
        // not snapshot; control, system, and simt end the activation.
        if (di.isMem() || di.isControl() || di.isSimt()) {
            reason = di.isMem()    ? obs::kReasonInteriorMem
                     : di.isSimt() ? obs::kReasonInteriorSimt
                                   : obs::kReasonInteriorControl;
            break;
        }
    }
    if (obs_) {
        if (code >= 2)
            ++obs_->lines_batchable;
        else
            ++obs_->disqualified[reason];
    }
    cl.batch_window[slot] = code;
    return code;
}

ThreadResult
Ring::runThread(Addr entry, const LaneFile &init_regs, SparseMemory &mem,
                Cycle start_cycle, u64 max_insts)
{
    ThreadResult res;
    LaneFile regs = init_regs;
    for (LaneState &l : regs) {
        l.ready = std::max(l.ready, start_cycle);
        l.seg = kInputLatch;
    }
    Addr pc = entry;
    Cycle pc_enter = start_cycle;
    Cycle min_start = start_cycle;
    ThreadMemCtx tmc(mem, cfg_.mem_lane_entries);
    u64 retired = 0;
    // Lookahead window: an activation may not begin before the one
    // speculation_depth activations earlier finished executing.
    std::deque<Cycle> inflight;

    if (faults_ && faults_->parityEnabled())
        refreshParity(regs);
    fault::Watchdog wd(cfg_.max_cycles);
    fault::ThreadCheckpoint ckpt;

    // Fill in the common tail of every structured early stop.
    auto stop = [&](Cycle when, Addr where, std::string reason) {
        res.finish = when;
        res.retired = retired;
        res.stop_pc = where;
        res.stop_reason = std::move(reason);
        res.final_regs = regs;
    };

    u64 activations = 0;

    // ---- steady-state loop batcher (DESIGN.md §15) ----
    // A resident self-loop reaches a steady state where each iteration
    // shifts the entire timing vector by one constant c: probe two
    // consecutive loop-top-to-loop-top intervals, and once their state
    // deltas agree exactly, replay only the *values* (functional
    // isa::execute per window instruction) to find the exit iteration,
    // then bulk-apply j iterations' worth of timing shift and counter
    // deltas at once. Eligible only when every per-iteration side
    // effect is visible to the probe: no fault controller (checkpoints
    // and injection force dense stepping), no tracers (per-activation
    // events must be emitted), datapath reuse on (otherwise every
    // iteration re-fetches over the bus), and not dense_loop mode.
    // verbose() keeps the per-activation inform() stream complete.
    const bool batch_ok = !cfg_.dense_loop && !faults_ && !trc_ &&
                          !atrc_ && cfg_.reuse_enabled && !verbose();
    struct LoopProbe
    {
        Addr pc = kNoLine;   //!< loop-top pc being probed
        unsigned cluster = 0;
        unsigned fails = 0;
        bool have_snap = false;
        bool have_delta = false;
        // previous loop-top snapshot
        LaneFile regs{};
        Cycle pc_enter = 0;
        Cycle min_start = 0;
        Cycle free_at = 0;
        u64 use_counter = 0;
        std::vector<Cycle> pe_busy;
        std::deque<Cycle> inflight;
        std::map<std::string, double> stats;
        // candidate per-iteration deltas (awaiting one confirmation)
        Cycle c = 0;
        std::array<Cycle, isa::kNumRegs> lane_d{};
        std::map<std::string, double> stat_d;
    };
    LoopProbe probe;
    // A window that never settles (e.g. an operand lane still crossing
    // a max) is re-probed a bounded number of times, then blacklisted
    // in the cluster's window cache to stop the snapshot overhead.
    constexpr unsigned kProbeFails = 8;

    auto snapshot_probe = [&](const Cluster &cl, unsigned slot,
                              unsigned last) {
        probe.regs = regs;
        probe.pc_enter = pc_enter;
        probe.min_start = min_start;
        probe.free_at = cl.free_at;
        probe.use_counter = use_counter_;
        probe.pe_busy.assign(cl.pe_busy.begin() + slot,
                             cl.pe_busy.begin() + last + 1);
        probe.inflight = inflight;
        probe.stats = stats_.all();
        probe.have_snap = true;
        if (obs_)
            ++obs_->probe_attempts;
    };

    // Returns true when it advanced the thread past j>=1 batched loop
    // iterations; the caller continues at the (post-jump) loop top so
    // the budget / watchdog / cancellation checks run there as usual.
    auto try_batch = [&]() -> bool {
        const Addr line = alignDown(pc, line_bytes_);
        const auto res_it = resident_.find(line);
        if (res_it == resident_.end()) {
            probe.pc = kNoLine;
            return false;
        }
        Cluster &cl = clusters_[res_it->second];
        const unsigned slot = static_cast<unsigned>((pc - line) / 4);
        const u8 code = qualifyBatchWindow(cl, slot);
        if (code < 2) {
            probe.pc = kNoLine;
            return false;
        }
        const unsigned last = slot + (code - 2);  // branch slot
        if (pc != probe.pc || res_it->second != probe.cluster ||
            cl.pe_busy.size() <= last) {
            probe.pc = pc;
            probe.cluster = res_it->second;
            probe.fails = 0;
            probe.have_delta = false;
            probe.have_snap = false;
            if (cl.pe_busy.size() > last)
                snapshot_probe(cl, slot, last);
            return false;
        }
        if (!probe.have_snap) {
            snapshot_probe(cl, slot, last);
            return false;
        }

        // ---- diff this loop top against the previous one ----
        const Cycle c = pc_enter - probe.pc_enter;
        // The speculation-lookahead deque grows by one activation per
        // iteration until it saturates at speculation_depth; while it
        // is still growing the intervals cannot match structurally, so
        // the mismatch is a ramp-up transient, not a verdict on the
        // loop — it must not count toward the blacklist.
        const bool ramping =
            inflight.size() != probe.inflight.size();
        bool ok = pc_enter > probe.pc_enter &&
                  min_start - probe.min_start == c &&
                  cl.free_at - probe.free_at == c &&
                  use_counter_ - probe.use_counter == 2 && !ramping;
        for (size_t i = 0; ok && i < inflight.size(); ++i)
            ok = inflight[i] - probe.inflight[i] == c;
        for (unsigned i = slot; ok && i <= last; ++i)
            ok = cl.pe_busy[i] - probe.pe_busy[i - slot] == c;
        // Static read / write sets of the window.
        bool in_w[isa::kNumRegs] = {};
        bool in_r[isa::kNumRegs] = {};
        for (unsigned i = slot; i <= last; ++i) {
            const DecodedInst &di = cl.insts[i];
            for (RegId r : {di.rs1, di.rs2, di.rs3})
                if (r != kNoReg && r != kRegZero)
                    in_r[r] = true;
            if (di.writesReg())
                in_w[di.rd] = true;
        }
        std::array<Cycle, isa::kNumRegs> lane_d{};
        for (unsigned r = 0; ok && r < isa::kNumRegs; ++r) {
            const LaneState &now = regs[r];
            const LaneState &then = probe.regs[r];
            if (now.seg != then.seg || now.ready < then.ready) {
                ok = false;
                break;
            }
            lane_d[r] = now.ready - then.ready;
            if (in_w[r]) {
                // Written lanes must ride the uniform shift.
                ok = lane_d[r] == c;
            } else {
                // Unwritten lanes evolve autonomously (reuse latch +
                // output sweep): values must be loop-invariant, and
                // operand lanes may not outgrow the shift — a faster-
                // growing term could come to dominate a max later and
                // break the extrapolation.
                ok = now.value == then.value &&
                     (!in_r[r] || lane_d[r] <= c);
            }
        }
        std::map<std::string, double> stat_d;
        if (ok) {
            for (const auto &kv : stats_.all()) {
                const auto it = probe.stats.find(kv.first);
                const double prev =
                    it == probe.stats.end() ? 0.0 : it->second;
                if (kv.second != prev)
                    stat_d[kv.first] = kv.second - prev;
            }
        }
        if (!ok) {
            if (obs_)
                ++obs_->probe_misses;
            if (!ramping && ++probe.fails >= kProbeFails) {
                cl.batch_window[slot] = 1;  // dynamic blacklist
                if (obs_)
                    ++obs_->probe_blacklisted;
            }
            probe.have_delta = false;
            snapshot_probe(cl, slot, last);
            return false;
        }
        if (!probe.have_delta || c != probe.c ||
            lane_d != probe.lane_d || stat_d != probe.stat_d) {
            probe.c = c;
            probe.lane_d = lane_d;
            probe.stat_d = std::move(stat_d);
            probe.have_delta = true;
            snapshot_probe(cl, slot, last);
            return false;
        }

        // ---- two consecutive intervals agree exactly: extrapolate ----
        // Replay values only, bounded by the instruction budget, the
        // first cycle-watchdog violation, and a chunk cap that keeps
        // cooperative-cancellation polls reachable.
        const u64 per_iter = last - slot + 1;
        u64 cap = u64{1} << 20;
        cap = std::min(cap,
                       (max_insts - retired + per_iter - 1) / per_iter);
        const Cycle top = std::max(pc_enter, min_start);
        if (cfg_.max_cycles != 0 && cfg_.max_cycles >= top)
            cap = std::min(cap, (cfg_.max_cycles - top) / c + 1);
        u32 vals[isa::kNumRegs];
        for (unsigned r = 0; r < isa::kNumRegs; ++r)
            vals[r] = regs[r].value;
        auto val_of = [&](RegId r) -> u32 {
            return (r == kNoReg || r == kRegZero) ? 0 : vals[r];
        };
        u64 j = 0;
        while (j < cap) {
            // The not-taken iteration belongs to the dense engine (it
            // keeps executing past the branch), so its interior writes
            // are undone before leaving the replay.
            RegId undo_rd[16];
            u32 undo_val[16];
            unsigned nu = 0;
            bool taken = true;
            for (unsigned i = slot; i <= last; ++i) {
                const DecodedInst &di = cl.insts[i];
                const ExecOut eo =
                    execute(di, line + 4 * i, val_of(di.rs1),
                            val_of(di.rs2), val_of(di.rs3));
                if (i == last) {
                    taken = eo.redirect;
                } else if (di.writesReg()) {
                    undo_rd[nu] = di.rd;
                    undo_val[nu] = vals[di.rd];
                    ++nu;
                    vals[di.rd] = eo.value;
                }
            }
            if (!taken) {
                while (nu--)
                    vals[undo_rd[nu]] = undo_val[nu];
                break;
            }
            ++j;
        }
        if (j == 0)
            return false;

        // ---- bulk-apply j iterations of the confirmed deltas ----
        for (unsigned r = 0; r < isa::kNumRegs; ++r) {
            regs[r].value = vals[r];
            regs[r].ready += j * probe.lane_d[r];
        }
        pc_enter += j * c;
        min_start += j * c;
        for (Cycle &d : inflight)
            d += j * c;
        for (unsigned i = slot; i <= last; ++i)
            cl.pe_busy[i] += j * c;
        cl.free_at += j * c;
        use_counter_ += 2 * j;
        cl.last_use = use_counter_;
        retired += j * per_iter;
        activations += j;
        if (obs_) {
            ++obs_->batch_jumps;
            obs_->batched_iterations += j;
            obs_->batched_insts += j * per_iter;
        }
        for (const auto &kv : probe.stat_d)
            stats_.inc(kv.first, static_cast<double>(j) * kv.second);
        probe.have_snap = false;  // re-probe from scratch after a jump
        probe.have_delta = false;
        return true;
    };

    while (retired < max_insts) {
        // Cooperative host cancellation / wall-clock watchdog: the
        // flag is one atomic load per activation; the deadline (a
        // clock read) is consulted on the first activation and every
        // 64th after, so an already-expired token stops before any
        // work and a pathological seed stops within one check window.
        if (cancel_ &&
            (cancel_->cancelled() ||
             ((activations++ & 63) == 0 && cancel_->expired()))) {
            res.timed_out = true;
            stop(std::max(pc_enter, min_start), pc,
                 detail::vformat("host watchdog: %s",
                                 cancel_->reason()));
            return res;
        }
        // Hardware trap: a misaligned PC (reachable through jalr off a
        // corrupted lane — the ISA masks only bit 0) cannot address an
        // I-line slot.
        if (pc & 3u) {
            res.faulted = true;
            stop(std::max(pc_enter, min_start), pc,
                 detail::vformat("trap: misaligned pc 0x%x", pc));
            return res;
        }
        // Forward-progress watchdog: activation boundaries that stop
        // retiring instructions mean a control-unit livelock.
        if (wd.onProgress(retired) ||
            wd.onCycle(std::max(pc_enter, min_start))) {
            dumpState(wd.reason().c_str());
            res.timed_out = true;
            stop(std::max(pc_enter, min_start), pc, wd.reason());
            return res;
        }
        if (faults_) {
            // Activation boundary = checkpoint: snapshot architectural
            // state *before* injection so recovery restores a clean
            // image, then let due fault events strike.
            ckpt.valid = true;
            ckpt.pc = pc;
            ckpt.pc_enter = pc_enter;
            ckpt.min_start = min_start;
            ckpt.retired = retired;
            ckpt.regs = regs;
            ckpt.inflight = inflight;
            ckpt.mem_lanes = tmc;
            faults_->undoLog().clear();
            faults_->oracleMark();
            faults_->onBoundary(regs, tmc, mem, mh_, retired);
            if (trc_)
                trc_->checkpoint(static_cast<u8>(index_), pc,
                                 std::max(pc_enter, min_start), retired);
            if (faults_->parityEnabled()) {
                const int bad = faults_->paritySweep(regs);
                if (bad >= 0) {
                    stats_.inc("fault_parity_detections");
                    faults_->noteParityDetection();
                    if (!faults_->recoveryBudgetLeft()) {
                        res.aborted = true;
                        stop(std::max(pc_enter, min_start), pc,
                             detail::vformat(
                                 "parity error on lane %d: recovery "
                                 "budget exhausted", bad));
                        return res;
                    }
                    // Lane scrub: restore the checkpointed lane file
                    // and pay the recovery penalty before re-entry.
                    faults_->noteRecovery();
                    stats_.inc("fault_recoveries");
                    regs = ckpt.regs;
                    const Cycle resume =
                        std::max(pc_enter, min_start) +
                        faults_->detect().recovery_penalty;
                    pc_enter = resume;
                    min_start = resume;
                    if (trc_)
                        trc_->rollback(static_cast<u8>(index_), pc,
                                       resume,
                                       faults_->tally().recoveries);
                }
            }
        }
        if (batch_ok && try_batch())
            continue;
        const Addr line = alignDown(pc, line_bytes_);
        const Cycle demand = std::max(pc_enter, min_start);
        const Resident got = ensureLoaded(line, demand, mem);
        Cluster &cl = *got.cluster;
        if (got.reused)
            st_reuse_activations_.inc();
        if (got.ready > demand)
            st_fetch_wait_cycles_.inc(
                static_cast<double>(got.ready - demand));

        ActivationInput in;
        in.cluster = &cl;
        in.entry_pc = pc;
        in.pc_enter = std::max(pc_enter, got.ready);
        // Per-PE occupancy is enforced inside the activation engine;
        // min_start carries decode readiness, squash re-steer floors,
        // and the bounded speculation window.
        in.min_start = std::max(min_start, got.ready);
        if (inflight.size() >= cfg_.speculation_depth)
            in.min_start = std::max(in.min_start, inflight.front());
        in.mode = ActMode::Serial;
        in.trap_on_simt = cfg_.simt_enabled;

        // Overlap: prefetch the fall-through line while executing —
        // but not while a loop is resident in this line (a backward
        // branch will re-enter it; prefetching would evict the loop's
        // own lines in small rings, defeating reuse).
        bool has_backward_branch = cl.has_backward_branch;
        if (cfg_.dense_loop) {
            // Dense escape hatch: rescan the (unchanged) line the way
            // the pre-skip-idle control unit did. Same answer as the
            // cached flag, by construction.
            has_backward_branch = false;
            for (const DecodedInst &di : cl.insts) {
                if ((di.isBranch() || di.op == Op::JAL) && di.imm < 0) {
                    has_backward_branch = true;
                    break;
                }
            }
        }
        if (!has_backward_branch)
            prefetch(line + line_bytes_, in.min_start, mem);

        const ActivationOutput act = engine_.run(in, regs, tmc);
        if (obs_)
            ++obs_->dense_activations;
        if (trc_)
            trc_->activation(static_cast<u8>(index_),
                             static_cast<u16>(cl.index), pc, in.min_start,
                             act.end_cycle, got.reused, act.retired);
        inform("ring%u act cl%u pc=0x%x..0x%x start=%llu done=%llu "
               "retired=%llu exit=%d%s",
               index_, cl.index, pc, act.exit_pc,
               static_cast<unsigned long long>(in.min_start),
               static_cast<unsigned long long>(act.compute_done),
               static_cast<unsigned long long>(act.retired),
               static_cast<int>(act.exit), got.reused ? " [reuse]" : "");
        // The cluster accepts the next (speculative) activation once
        // its PEs finished executing; the retire sweep (pc_exit) can
        // trail behind.
        cl.free_at = act.compute_done;
        cl.last_use = ++use_counter_;
        if (faults_ && faults_->divergencePending()) {
            // Lockstep oracle flagged a retirement mismatch inside this
            // activation: discard its architectural effects (precise at
            // the activation boundary), roll back, and re-execute. A
            // cluster blamed repeatedly is taken offline.
            stats_.inc("fault_lockstep_detections");
            faults_->noteLockstepDetection();
            if (!faults_->recoveryBudgetLeft()) {
                res.aborted = true;
                stop(act.end_cycle, pc,
                     "lockstep: " + faults_->divergenceReason() +
                         " (recovery budget exhausted)");
                return res;
            }
            faults_->noteRecovery();
            stats_.inc("fault_recoveries");
            faults_->undoLog().rollback(mem);
            regs = ckpt.regs;
            pc = ckpt.pc;
            retired = ckpt.retired;
            tmc = *ckpt.mem_lanes;
            inflight = ckpt.inflight;
            const Cycle resume =
                act.end_cycle + faults_->detect().recovery_penalty;
            pc_enter = resume;
            min_start = resume;
            if (trc_)
                trc_->rollback(static_cast<u8>(index_), pc, resume,
                               faults_->tally().recoveries);
            faults_->oracleRewind();
            faults_->clearDivergence();
            if (faults_->strike(cl.index) && enabledClusters() > 2)
                disableCluster(cl);
            continue;
        }
        retired += act.retired;
        inflight.push_back(act.compute_done);
        if (inflight.size() > cfg_.speculation_depth)
            inflight.pop_front();

        switch (act.exit) {
          case ActExit::Halt:
            res.finish = act.end_cycle;
            res.retired = retired;
            res.halted = !act.faulted;
            res.faulted = act.faulted;
            res.stop_pc = act.exit_pc;
            if (act.faulted)
                res.stop_reason = detail::vformat(
                    "trap: invalid encoding at pc 0x%x", act.exit_pc);
            res.final_regs = regs;
            return res;
          case ActExit::SimtTrap: {
            const Addr simt_s_pc = act.exit_pc;
            if (!not_pipelinable_.count(simt_s_pc)) {
                const SimtRegion region = scanSimtRegion(simt_s_pc, mem);
                if (region.ok) {
                    if (!runSimtPipeline(region, simt_s_pc, regs,
                                         act.exit_resolve, pc, pc_enter,
                                         min_start, tmc, retired)) {
                        dumpState("simt pipeline cycle ceiling");
                        res.timed_out = true;
                        stop(std::max(pc_enter, min_start), pc,
                             detail::vformat(
                                 "watchdog: simt pipeline exceeded "
                                 "max_cycles %llu",
                                 static_cast<unsigned long long>(
                                     cfg_.max_cycles)));
                        return res;
                    }
                    continue;
                }
                not_pipelinable_.insert(simt_s_pc);
                stats_.inc("simt_fallbacks");
            }
            // Fall back to scalar execution: re-enter at the simt_s
            // with trapping suppressed via a one-shot serial pass.
            {
                ActivationInput again = in;
                again.entry_pc = simt_s_pc;
                again.pc_enter = std::max(act.exit_resolve, got.ready);
                again.min_start =
                    std::max(act.exit_resolve, got.ready);
                again.trap_on_simt = false;
                const ActivationOutput act2 = engine_.run(again, regs, tmc);
                if (obs_)
                    ++obs_->dense_activations;
                if (trc_)
                    trc_->activation(static_cast<u8>(index_),
                                     static_cast<u16>(cl.index),
                                     simt_s_pc, again.min_start,
                                     act2.end_cycle, false,
                                     act2.retired);
                cl.free_at = act2.end_cycle;
                if (faults_ && faults_->divergencePending()) {
                    // Same recovery as the main path: the whole loop
                    // iteration (including the simt trap) re-executes
                    // from the boundary checkpoint.
                    stats_.inc("fault_lockstep_detections");
                    faults_->noteLockstepDetection();
                    if (!faults_->recoveryBudgetLeft()) {
                        res.aborted = true;
                        stop(act2.end_cycle, pc,
                             "lockstep: " +
                                 faults_->divergenceReason() +
                                 " (recovery budget exhausted)");
                        return res;
                    }
                    faults_->noteRecovery();
                    stats_.inc("fault_recoveries");
                    faults_->undoLog().rollback(mem);
                    regs = ckpt.regs;
                    pc = ckpt.pc;
                    retired = ckpt.retired;
                    tmc = *ckpt.mem_lanes;
                    inflight = ckpt.inflight;
                    const Cycle resume =
                        act2.end_cycle +
                        faults_->detect().recovery_penalty;
                    pc_enter = resume;
                    min_start = resume;
                    if (trc_)
                        trc_->rollback(static_cast<u8>(index_), pc,
                                       resume,
                                       faults_->tally().recoveries);
                    faults_->oracleRewind();
                    faults_->clearDivergence();
                    if (faults_->strike(cl.index) &&
                        enabledClusters() > 2)
                        disableCluster(cl);
                    continue;
                }
                retired += act2.retired;
                if (act2.exit == ActExit::Halt) {
                    res.finish = act2.end_cycle;
                    res.retired = retired;
                    res.halted = !act2.faulted;
                    res.faulted = act2.faulted;
                    res.stop_pc = act2.exit_pc;
                    if (act2.faulted)
                        res.stop_reason = detail::vformat(
                            "trap: invalid encoding at pc 0x%x",
                            act2.exit_pc);
                    res.final_regs = regs;
                    return res;
                }
                pc = act2.exit_pc;
                if (act2.exit == ActExit::FellThrough) {
                    pc_enter = act2.exit_resolve + cfg_.inter_cluster_latch;
                    min_start = 0;
                    for (LaneState &l : regs)
                        l.ready += cfg_.inter_cluster_latch;
                } else {  // Redirect
                    const Cycle grant = bus_.request(
                        act2.exit_resolve, cfg_.bus_regfile_transfer);
                    const Cycle xfer =
                        grant + cfg_.bus_regfile_transfer;
                    for (LaneState &l : regs)
                        l.ready = std::max(l.ready, grant) +
                                  cfg_.bus_regfile_transfer;
                    pc_enter = xfer;
                    min_start = act2.exit_resolve + cfg_.squash_resteer;
                    st_ctrl_stall_cycles_.inc(
                        static_cast<double>(xfer - act2.exit_resolve));
                }
            }
            continue;
          }
          case ActExit::FellThrough:
            pc = act.exit_pc;
            pc_enter = act.exit_resolve + cfg_.inter_cluster_latch;
            min_start = 0;
            for (LaneState &l : regs)
                l.ready += cfg_.inter_cluster_latch;
            break;
          case ActExit::Redirect: {
            if (trc_)
                trc_->pcRedirect(static_cast<u8>(index_),
                                 static_cast<u16>(cl.index), pc,
                                 act.exit_resolve, act.exit_pc);
            pc = act.exit_pc;
            const Addr target_line = alignDown(pc, line_bytes_);
            const auto res_it = resident_.find(target_line);
            const bool reuse = cfg_.reuse_enabled &&
                               act.redirect_backward &&
                               res_it != resident_.end();
            if (reuse) {
                // Predicted-taken backward branch into a resident
                // datapath: no fetch, no decode, no re-steer bubble —
                // the control unit's scheduling table has the loop's
                // head/tail clusters registered (§5.1.3), so the lane
                // wrap path is pre-configured and the handover costs
                // one latch like any cluster-to-cluster transfer.
                const Cycle latch = cfg_.inter_cluster_latch;
                for (LaneState &l : regs)
                    l.ready += latch;
                min_start = act.branch_done + latch;
                pc_enter = act.exit_resolve + latch;
                st_reuse_redirects_.inc();
                if (trc_)
                    trc_->reuseHit(
                        static_cast<u8>(index_),
                        static_cast<u16>(
                            clusters_[res_it->second].index),
                        pc, pc_enter);
            } else if (pc == line + line_bytes_) {
                // Taken forward branch to the immediately next line:
                // lanes hand over through the inter-cluster latch; the
                // wrong-path squash costs the re-steer bubble.
                pc_enter = act.exit_resolve + cfg_.inter_cluster_latch;
                for (LaneState &l : regs)
                    l.ready += cfg_.inter_cluster_latch;
                min_start = act.exit_resolve + cfg_.squash_resteer;
                st_ctrl_stall_cycles_.inc(
                    static_cast<double>(cfg_.squash_resteer));
            } else {
                // Mispredicted control transfer to a far or
                // non-resident target: register file over the bus plus
                // the squash re-steer.
                const Cycle grant = bus_.request(
                    act.exit_resolve, cfg_.bus_regfile_transfer);
                const Cycle xfer = grant + cfg_.bus_regfile_transfer;
                for (LaneState &l : regs)
                    l.ready = std::max(l.ready, grant) +
                              cfg_.bus_regfile_transfer;
                pc_enter = xfer;
                min_start = act.exit_resolve + cfg_.squash_resteer;
                st_ctrl_stall_cycles_.inc(
                    static_cast<double>(xfer - act.exit_resolve));
            }
            break;
          }
          case ActExit::ThreadEnd:
            panic("ThreadEnd exit outside a simt pipeline stage");
        }
    }
    // Instruction budget exhausted: report a structured timeout.
    res.timed_out = true;
    stop(std::max(pc_enter, min_start), pc,
         detail::vformat("instruction budget exhausted (%llu retired)",
                         static_cast<unsigned long long>(retired)));
    return res;
}

Ring::SimtRegion
Ring::scanSimtRegion(Addr simt_s_pc, SparseMemory &mem) const
{
    // The legality rules live in the shared static analyzer so that
    // diag-lint reports exactly what this control unit will accept.
    SimtRegion region;
    if (!cfg_.simt_enabled)
        return region;
    const analysis::SimtScan scan = analysis::scanSimtRegion(
        simt_s_pc, mem, line_bytes_, cfg_.clustersPerRing());
    if (!scan.ok())
        return region;
    region.ok = true;
    region.simt_e_pc = scan.simt_e_pc;
    region.fields = scan.fields;
    return region;
}

bool
Ring::runSimtPipeline(const SimtRegion &region, Addr simt_s_pc,
                      LaneFile &regs, Cycle resolve, Addr &pc,
                      Cycle &pc_enter, Cycle &min_start,
                      ThreadMemCtx &tmc, u64 &retired)
{
    // Retirement order across pipelined threads is interleaved, so the
    // instruction-by-instruction golden oracle cannot follow it.
    fatal_if(faults_ && faults_->lockstepEnabled(),
             "golden-lockstep checking is incompatible with simt "
             "thread pipelining; disable one of the two");
    const auto &f = region.fields;
    auto reg_value = [&](RegId r) -> u32 {
        return r == kRegZero ? 0 : regs[r].value;
    };
    const u32 rc0 = reg_value(f.rc);
    const u32 step = reg_value(f.rStep);
    const u32 end = reg_value(f.rEnd);

    // Trip count with do-while semantics, matching simt_e's scalar
    // behaviour exactly (the step's sign selects the condition).
    constexpr u64 kTripCap = u64{1} << 20;
    u64 trips = 0;
    bool capped = false;
    bool closed = false;
    if (!cfg_.dense_loop) {
        // Closed form (skip-idle, DESIGN.md §15): the counter walks an
        // arithmetic progression, so the exit trip is one division.
        // Valid only while the i32 counter never wraps; since the
        // progression is monotone, checking the final value in i64
        // covers every intermediate one. On wrap, fall back to the
        // iterative walk below, which has wrap semantics built in.
        const i64 c0 = static_cast<i32>(rc0);
        const i64 sstep = static_cast<i32>(step);
        const i64 e = static_cast<i32>(end);
        i64 t;
        if (sstep > 0)
            t = std::max<i64>(1, (e - c0 + sstep - 1) / sstep);
        else if (sstep < 0)
            t = std::max<i64>(1, (c0 - e + (-sstep) - 1) / (-sstep));
        else
            t = c0 < e ? static_cast<i64>(kTripCap) + 1 : 1;
        capped = t > static_cast<i64>(kTripCap);
        trips = capped ? kTripCap : static_cast<u64>(t);
        const i64 v_last = c0 + static_cast<i64>(trips) * sstep;
        closed = v_last >= std::numeric_limits<i32>::min() &&
                 v_last <= std::numeric_limits<i32>::max();
    }
    if (!closed) {
        trips = 0;
        capped = false;
        for (u32 v = rc0;;) {
            ++trips;
            v += step;
            const bool more =
                static_cast<i32>(step) >= 0
                    ? static_cast<i32>(v) < static_cast<i32>(end)
                    : static_cast<i32>(v) > static_cast<i32>(end);
            if (!more)
                break;
            if (trips >= kTripCap) {
                capped = true;
                break;
            }
        }
    }
    if (capped)
        warn("simt region at 0x%x exceeds 2^20 threads; capping",
             simt_s_pc);
    if (obs_) {
        if (closed)
            ++obs_->simt_closed_form;
        else
            ++obs_->simt_iterative;
    }
    stats_.inc("simt_regions");
    stats_.inc("simt_threads", static_cast<double>(trips));
    // Per-region counters (keyed by the simt_s pc) let the bound
    // validator compare each region's measured duration against its
    // static model (tools/diag_bound.cpp --validate).
    stats_.inc(detail::vformat("simt_region_%08x_entries", simt_s_pc));
    stats_.inc(detail::vformat("simt_region_%08x_threads", simt_s_pc),
               static_cast<double>(trips));
    if (trc_)
        trc_->regionEnter(static_cast<u8>(index_), simt_s_pc, resolve,
                          trips);
    if (atrc_)
        atrc_->regionEnter(simt_s_pc, rc0, step, trips);

    // Region lines; pin them so stage clusters are never evicted.
    const Addr first_line = alignDown(simt_s_pc + 4, line_bytes_);
    const Addr last_line = alignDown(region.simt_e_pc, line_bytes_);
    std::vector<Addr> lines;
    for (Addr line = first_line; line <= last_line; line += line_bytes_)
        lines.push_back(line);
    for (Addr line : lines)
        pinned_lines_.insert(line);

    // Spatial replication (paper §4.4.1): when the pipeline has fewer
    // stages than the ring has clusters, replicate it to maximise PE
    // utilisation. Threads round-robin across replicas.
    const unsigned max_replicas = static_cast<unsigned>(
        clusters_.size() / lines.size());
    const unsigned replicas = static_cast<unsigned>(std::max<u64>(
        1, std::min<u64>({max_replicas, trips})));
    stats_.inc("simt_replicas", static_cast<double>(replicas));

    // Allocate and load stage clusters: replica r, stage s uses a
    // dedicated cluster. Replica 0 reuses already-resident lines.
    std::vector<std::vector<Cluster *>> stage(replicas);
    Cycle ready_all = resolve;
    for (unsigned r = 0; r < replicas; ++r) {
        for (const Addr line : lines) {
            Cluster *cl = nullptr;
            Cycle ready = 0;
            if (r == 0) {
                const Resident got = ensureLoaded(line, resolve,
                                                  tmc.mem());
                cl = got.cluster;
                ready = got.ready;
            } else {
                cl = &chooseVictim();
                ready = loadLine(*cl, line, resolve, tmc.mem());
            }
            stage[r].push_back(cl);
            ready_all = std::max(ready_all, ready);
        }
    }

    const Cycle interval = std::max<Cycle>(1, f.interval);
    Cycle launch = std::max(resolve, ready_all);
    Cycle last_exit_resolve = resolve;
    LaneFile last_regs = regs;

    for (u64 k = 0; k < trips; ++k) {
        if (cfg_.max_cycles != 0 && launch > cfg_.max_cycles) {
            if (atrc_)
                atrc_->regionExit(); // close the partial entry record
            return false; // structured timeout, not an endless spin
        }
        const auto &my_stages = stage[k % replicas];
        LaneFile thr = regs;
        thr[f.rc] = {rc0 + static_cast<u32>(k) * step, launch,
                     kInputLatch};
        if (faults_ && faults_->parityEnabled())
            thr[f.rc].parity = laneParity(thr[f.rc].value);
        Addr tpc = simt_s_pc + 4;
        Cycle tpc_enter = launch;
        Cycle tmin = launch;
        for (;;) {
            const Addr line = alignDown(tpc, line_bytes_);
            const size_t idx =
                static_cast<size_t>((line - first_line) / line_bytes_);
            Cluster &cl = *my_stages[idx];
            ActivationInput in;
            in.cluster = &cl;
            in.entry_pc = tpc;
            in.pc_enter = std::max(tpc_enter, cl.ready_at);
            // Threads stream through stage PEs back-to-back; per-PE
            // occupancy (pipeline registers) is enforced inside the
            // engine rather than whole-cluster exclusivity.
            in.min_start = std::max(tmin, cl.ready_at);
            in.mode = ActMode::SimtStage;
            in.simt_step = step;
            const ActivationOutput act = engine_.run(in, thr, tmc);
            if (obs_)
                ++obs_->simt_activations;
            if (trc_) {
                trc_->simtStage(static_cast<u8>(index_),
                                static_cast<u16>(cl.index), tpc,
                                in.min_start, act.end_cycle, k);
                trc_->retired(act.end_cycle, act.retired);
            }
            inform("simt thread %llu stage cl%u: launch=%llu "
                   "min_start=%llu end=%llu exit=%d",
                   static_cast<unsigned long long>(k), cl.index,
                   static_cast<unsigned long long>(launch),
                   static_cast<unsigned long long>(in.min_start),
                   static_cast<unsigned long long>(act.end_cycle),
                   static_cast<int>(act.exit));
            cl.free_at = act.end_cycle;
            cl.last_use = ++use_counter_;
            retired += act.retired;
            if (act.exit == ActExit::ThreadEnd) {
                if (act.exit_resolve > last_exit_resolve) {
                    last_exit_resolve = act.exit_resolve;
                }
                if (k == trips - 1)
                    last_regs = thr;
                break;
            }
            panic_if(act.exit == ActExit::Halt ||
                         act.exit == ActExit::SimtTrap,
                     "unexpected exit %d inside simt stage",
                     static_cast<int>(act.exit));
            // FellThrough or forward Redirect within the region.
            panic_if(act.exit_pc <= tpc || act.exit_pc >
                         region.simt_e_pc,
                     "simt stage left the region: 0x%x", act.exit_pc);
            tpc = act.exit_pc;
            tpc_enter = act.exit_resolve + cfg_.inter_cluster_latch;
            tmin = 0;
            for (LaneState &l : thr)
                l.ready += cfg_.inter_cluster_latch;
        }
        launch += interval;
    }

    // Release replica clusters (replica 0 stays resident for reuse).
    for (unsigned r = 1; r < replicas; ++r) {
        for (Cluster *cl : stage[r])
            cl->evict();
    }
    for (Addr line : lines)
        pinned_lines_.erase(line);

    // Only the last thread's lanes propagate past simt_e (paper §5.4).
    regs = last_regs;
    pc = region.simt_e_pc + 4;
    stats_.inc(detail::vformat("simt_region_%08x_cycles", simt_s_pc),
               static_cast<double>(last_exit_resolve +
                                   cfg_.inter_cluster_latch - resolve));
    if (trc_)
        trc_->regionExit(static_cast<u8>(index_), simt_s_pc, resolve,
                         last_exit_resolve + cfg_.inter_cluster_latch);
    if (atrc_)
        atrc_->regionExit();
    pc_enter = last_exit_resolve + cfg_.inter_cluster_latch;
    min_start = 0;
    for (LaneState &l : regs)
        l.ready += cfg_.inter_cluster_latch;
    return true;
}

} // namespace diag::core
