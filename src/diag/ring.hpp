/**
 * @file
 * A dataflow ring: a chain of processing clusters with a control unit
 * (paper §5.1.3). The control unit fetches I-lines into clusters,
 * tracks which lines are resident (enabling backward-branch datapath
 * reuse), prefetches the fall-through line, and orchestrates the SIMT
 * thread pipeline for simt_s/simt_e regions.
 */
#ifndef DIAG_DIAG_RING_HPP
#define DIAG_DIAG_RING_HPP

#include <set>
#include <unordered_map>
#include <vector>

#include <string>

#include "diag/activation.hpp"
#include "host/cancel.hpp"
#include "mem/bus.hpp"

namespace diag::obs
{
struct SimProfile;
} // namespace diag::obs

namespace diag::core
{

/** Result of running one software thread to completion on a ring. */
struct ThreadResult
{
    Cycle finish = 0;      //!< cycle the thread halted
    u64 retired = 0;       //!< instructions committed
    bool halted = false;   //!< reached EBREAK/ECALL
    bool faulted = false;  //!< invalid encoding or misaligned PC
    bool timed_out = false; //!< watchdog / cycle or inst budget
    bool aborted = false;  //!< detected fault, recovery exhausted
    Addr stop_pc = 0;      //!< PC of the halting instruction
    std::string stop_reason; //!< one-line reason when not halted
    LaneFile final_regs{}; //!< architectural registers at halt
};

/** One dataflow ring and its control unit. */
class Ring
{
  public:
    Ring(const DiagConfig &cfg, unsigned index, mem::MemHierarchy &mh,
         mem::Bus &bus, StatGroup &stats);

    /**
     * Run a thread starting at @p entry with initial lane state
     * @p init_regs against memory @p mem. @p start_cycle is the cycle
     * the thread becomes runnable (MT launch skew).
     */
    ThreadResult runThread(Addr entry, const LaneFile &init_regs,
                           SparseMemory &mem, Cycle start_cycle,
                           u64 max_insts);

    void reset();

    /** Attach (or detach with nullptr) a fault controller; forwards to
     *  the activation engine's per-instruction hooks. */
    void setFaultController(fault::FaultController *fc);

    /** Attach (or detach with nullptr) a tracer; forwards to the
     *  activation engine. Every hook is one null check when off and
     *  never alters timing — a traced run retires on the same cycle
     *  as an untraced one. */
    void setTracer(trace::Tracer *t);

    /** Attach (or detach with nullptr) the stream validator's address
     *  recorder; forwards to the activation engine. Region entries
     *  record their launch parameters (rc0/step/trips) so predicted
     *  affine maps can be replayed against observed addresses. Same
     *  zero-overhead contract as setTracer. */
    void setAddrTrace(trace::AddrTrace *t);

    /**
     * Attach (or detach with nullptr) a cooperative cancellation
     * token. runThread polls it at activation boundaries (the
     * cancelled flag every activation, the wall-clock deadline every
     * 64th) and stops with a structured timeout when it fires. Host
     * policy only: an uncancelled run computes cycle-identical results
     * with or without a token attached.
     */
    void setCancelToken(const host::CancelToken *t) { cancel_ = t; }

    /**
     * Attach (or detach with nullptr) a skip-idle self-profile
     * (DESIGN.md §16). The profile is pure observation — plain u64
     * tallies of fast-path coverage — and, unlike the tracers, does
     * NOT disqualify the loop batcher: a profiled run batches exactly
     * where an unprofiled one does and computes cycle- and
     * counter-identical results.
     */
    void setObs(obs::SimProfile *p) { obs_ = p; }

    /** Pre-validate a simt region starting at @p simt_s_pc. Public so
     *  tests can check it agrees with the static analyzer. */
    struct SimtRegion
    {
        bool ok = false;
        Addr simt_e_pc = 0;
        isa::SimtStartFields fields{};
    };
    SimtRegion scanSimtRegion(Addr simt_s_pc, SparseMemory &mem) const;

  private:
    /** A line made resident in a cluster. */
    struct Resident
    {
        Cluster *cluster;
        Cycle ready;   //!< fetched + decoded
        bool reused;   //!< was already resident (datapath reuse)
    };

    /**
     * Make @p line resident, fetching into an LRU victim if needed,
     * with the request issued no earlier than @p when.
     */
    Resident ensureLoaded(Addr line, Cycle when, SparseMemory &mem);

    /** Pick the LRU unpinned cluster (panics if all are pinned). */
    Cluster &chooseVictim();

    /** Fetch + decode @p line into @p cl; returns the ready cycle. */
    Cycle loadLine(Cluster &cl, Addr line, Cycle when,
                   SparseMemory &mem);

    /** Fire-and-forget prefetch of the fall-through line. */
    void prefetch(Addr line, Cycle when, SparseMemory &mem);

    /**
     * Execute a simt region as a thread pipeline. Returns the serial
     * resume state via the in/out parameters. False when the cycle
     * ceiling was exceeded mid-pipeline (structured timeout).
     */
    bool runSimtPipeline(const SimtRegion &region, Addr simt_s_pc,
                         LaneFile &regs, Cycle resolve, Addr &pc,
                         Cycle &pc_enter, Cycle &min_start,
                         ThreadMemCtx &tmc, u64 &retired);

    /** Clusters not taken offline by fault recovery. */
    unsigned enabledClusters() const;

    /**
     * Graceful degradation: take @p cl offline and let the normal
     * allocation path remap its lines onto the survivors.
     */
    void disableCluster(Cluster &cl);

    /** warn()-level ring-state dump attached to watchdog aborts. */
    void dumpState(const char *why) const;

    /**
     * Classify (and cache in @p cl.batch_window) whether an activation
     * entering at slot @p slot is a batchable self-loop window: every
     * instruction from the entry slot up to a final backward
     * conditional branch whose target is the entry slot again, with no
     * memory, control, system, or simt instruction in between. Returns
     * the cache encoding (0 never returned: 1 = not batchable,
     * 2 + b = batchable, branch in slot b).
     */
    u8 qualifyBatchWindow(Cluster &cl, unsigned slot) const;

    const DiagConfig &cfg_;
    unsigned index_;
    mem::MemHierarchy &mh_;
    mem::Bus &bus_;
    StatGroup &stats_;
    ActivationEngine engine_;
    std::vector<Cluster> clusters_;
    std::unordered_map<Addr, unsigned> resident_;  // line -> cluster
    std::set<Addr> pinned_lines_;      //!< simt region lines (no evict)
    std::set<Addr> not_pipelinable_;   //!< simt_s PCs that fell back
    u64 use_counter_ = 0;
    u32 line_bytes_;

    // Lazy-bound counter handles for the per-activation hot path.
    StatCounter st_reuse_activations_{stats_, "reuse_activations"};
    StatCounter st_fetch_wait_cycles_{stats_, "fetch_wait_cycles"};
    StatCounter st_reuse_redirects_{stats_, "reuse_redirects"};
    StatCounter st_ctrl_stall_cycles_{stats_, "ctrl_stall_cycles"};
    // Note: the loop batcher deliberately adds NO counters of its own —
    // the dense/skip-idle equivalence contract includes byte-identical
    // dumpJson output, so the batched path must create exactly the keys
    // the dense path creates.
    fault::FaultController *faults_ = nullptr; //!< null = no injection
    trace::Tracer *trc_ = nullptr;             //!< null = tracing off
    trace::AddrTrace *atrc_ = nullptr;         //!< null = no addr log
    const host::CancelToken *cancel_ = nullptr; //!< null = no watchdog
    obs::SimProfile *obs_ = nullptr;           //!< null = profiling off
};

} // namespace diag::core

#endif // DIAG_DIAG_RING_HPP
