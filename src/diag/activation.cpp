#include "diag/activation.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "fault/controller.hpp"
#include "isa/decoder.hpp"
#include "isa/exec.hpp"
#include "isa/latency.hpp"
#include "trace/addr_trace.hpp"

namespace diag::core
{

using namespace diag::isa;

ActivationEngine::ActivationEngine(const DiagConfig &cfg,
                                   mem::MemHierarchy &mh,
                                   unsigned mem_port, StatGroup &stats)
    : cfg_(cfg), mh_(mh), mem_port_(mem_port), stats_(stats),
      line_bytes_(cfg.pes_per_cluster * 4)
{}

Cycle
ActivationEngine::serveLoad(Cluster &cl, ThreadMemCtx &tmc, Addr ea,
                            u8 size, Cycle issue, unsigned pe)
{
    st_loads_.inc();
    // Localized stride prefetch: each PE slot holds one (reused)
    // memory instruction, so its address stream is highly regular.
    if (cfg_.stride_prefetch_enabled) {
        const Addr predict = cl.strideTrain(pe, ea);
        if (predict != 0 &&
            alignDown(predict, 64) != alignDown(ea, 64)) {
            // Fetch the predicted line into L1D and the line buffer in
            // the background (bank occupancy is paid, the PE is not).
            mh_.dataAccess(mem_port_, predict, false, issue);
            cl.lineBufAccess(alignDown(predict, 64));
            st_stride_prefetches_.inc();
        }
    }
    // Queue admission: at most lsq_entries outstanding requests.
    auto &q = cl.outstanding;
    std::erase_if(q, [&](Cycle done) { return done <= issue; });
    if (q.size() >= cfg_.lsq_entries) {
        const Cycle earliest = *std::min_element(q.begin(), q.end());
        st_mem_queue_stall_cycles_.inc(
            static_cast<double>(earliest - issue));
        if (trc_)
            trc_->lsuQueue(ring_, static_cast<u16>(cl.index),
                           cl.line_base + 4 * pe, issue,
                           earliest - issue, q.size());
        issue = earliest;
        std::erase_if(q, [&](Cycle done) { return done <= issue; });
    }
    // LSU issue port (order-tolerant: pipelined iterations may present
    // requests out of time order).
    const Cycle grant =
        cl.lsu_port.reserve(issue, cfg_.lsu_issue_occupancy);

    // 1. Memory lanes: store-to-load forwarding (paper §5.2).
    if (cfg_.mem_lanes_enabled) {
        const Cycle fwd = tmc.forwardProbe(ea, size);
        if (fwd != kNeverCycle) {
            st_memlane_fwd_.inc();
            if (trc_)
                trc_->memLaneHit(
                    ring_, cl.line_base + 4 * pe, std::max(grant, fwd),
                    static_cast<u16>(tmc.entries().size()));
            return std::max(grant, fwd) + cfg_.mem_lane_latency;
        }
    }
    // 2. Cluster line buffer: recently accessed lines (paper §5.2).
    const Addr line = alignDown(ea, 64);
    if (cl.lineBufAccess(line)) {
        st_linebuf_hits_.inc();
        return grant + cfg_.line_buffer_latency;
    }
    // 3. Banked L1D (a second-level cache per §5.2), then L2, DRAM.
    const mem::MemResult res = mh_.dataAccess(mem_port_, ea, false,
                                              grant);
    switch (res.level) {
      case mem::ServedBy::L1: st_l1_loads_.inc(); break;
      case mem::ServedBy::L2: st_l2_loads_.inc(); break;
      case mem::ServedBy::Dram: st_dram_loads_.inc(); break;
    }
    // Memory stall attribution: everything beyond the cluster-local
    // ideal (memory-lane / line-buffer speed) counts as memory-stall
    // time, the way the paper attributes PE stalls to memory (§7.3.2).
    const Cycle ideal = grant + cfg_.line_buffer_latency;
    if (res.done > ideal)
        st_mem_stall_cycles_.inc(
            static_cast<double>(res.done - ideal));
    q.push_back(res.done);
    return res.done;
}

void
ActivationEngine::commitStore(Cluster &cl, Addr ea, Cycle commit)
{
    st_stores_.inc();
    // Committed stores drain from the memory lanes in the background
    // (the lanes "enable access reordering", §5.2): the write-back
    // occupies L1D bank bandwidth but not the cluster's load-issue
    // port, so younger loads — which forward from the lanes anyway —
    // are not delayed behind retirement-ordered store drains.
    mh_.dataAccess(mem_port_, ea, true, commit);
    cl.lineBufAccess(alignDown(ea, 64));
}

ActivationOutput
ActivationEngine::run(const ActivationInput &in, LaneFile &regs,
                      ThreadMemCtx &tmc)
{
    Cluster &cl = *in.cluster;
    panic_if(!cl.loaded(), "activation on unloaded cluster %u", cl.index);
    const Addr base = cl.line_base;
    const unsigned n = static_cast<unsigned>(cl.insts.size());
    const unsigned seg_size = cfg_.segment_size;
    const int last_seg = static_cast<int>((n - 1) / seg_size);

    panic_if(in.entry_pc < base || in.entry_pc >= base + line_bytes_ ||
                 (in.entry_pc & 3),
             "entry pc 0x%x outside cluster line 0x%x", in.entry_pc,
             base);

    ActivationOutput out;
    Cycle pc_cursor = in.pc_enter;
    int pc_seg = 0;
    Addr expect = in.entry_pc;
    Cycle floor = in.min_start;
    Cycle max_done = in.min_start;
    bool exited = false;

    // Per-PE occupancy from the previous firing: a PE cannot begin the
    // next iteration's instance before its unit is free.
    if (cl.pe_busy.size() < n)
        cl.pe_busy.resize(n, 0);

    auto lane_value = [&](RegId r) -> u32 {
        if (r == kNoReg || r == kRegZero)
            return 0;
        return regs[r].value;
    };
    auto avail = [&](RegId r, int seg) -> Cycle {
        if (r == kNoReg || r == kRegZero)
            return 0;
        return regs[r].ready + laneDelay(regs[r].seg, seg);
    };
    auto finish = [&](ActExit why, Addr next, Cycle resolve) {
        out.exit = why;
        out.exit_pc = next;
        out.exit_resolve = resolve;
        exited = true;
    };

    st_activations_.inc();

    for (unsigned i = (in.entry_pc - base) / 4; i < n && !exited; ++i) {
        const Addr addr = base + 4 * i;
        if (addr != expect) {
            // PE disabled: instruction-address/PC mismatch. `expect`
            // only ever moves forward within the line, so the cursor
            // can jump straight to the re-enable slot instead of
            // scanning each disabled PE (timing-neutral: disabled PEs
            // contribute nothing).
            if (!cfg_.dense_loop)
                i = static_cast<unsigned>((expect - base) / 4) - 1;
            continue;
        }
        const DecodedInst &di = cl.insts[i];
        const int seg = static_cast<int>(i / seg_size);

        if (!di.valid()) {
            // Fault precisely at this instruction.
            out.faulted = true;
            const Cycle here =
                std::max(floor, pc_cursor + laneDelay(pc_seg, seg));
            pc_cursor = here;
            pc_seg = seg;
            finish(ActExit::Halt, addr, here);
            break;
        }
        if (di.op == Op::SIMT_S && in.mode == ActMode::Serial &&
            in.trap_on_simt) {
            // Hand control to the ring's thread-pipeline logic without
            // executing the marker.
            const Cycle here =
                std::max(floor, pc_cursor + laneDelay(pc_seg, seg));
            finish(ActExit::SimtTrap, addr, here);
            break;
        }
        panic_if(!cfg_.fp_supported && di.isFp(),
                 "FP instruction %s on an integer-only configuration",
                 opName(di.op));

        // ---- operand availability over the register lanes ----
        Cycle ops_ready = std::max(avail(di.rs1, seg),
                                   avail(di.rs2, seg));
        u32 c_val = 0;
        if (di.op == Op::SIMT_E) {
            if (in.mode == ActMode::Serial) {
                // Scalar semantics: the step register named by the
                // matching simt_s is an extra operand.
                const auto ef = simtEndFields(di);
                const DecodedInst start_inst =
                    decode(tmc.mem().read32(addr - ef.lOffset));
                panic_if(start_inst.op != Op::SIMT_S,
                         "simt_e at 0x%x without matching simt_s", addr);
                const RegId r_step = simtStartFields(start_inst).rStep;
                ops_ready = std::max(ops_ready, avail(r_step, seg));
                c_val = lane_value(r_step);
            } else {
                c_val = in.simt_step;
            }
        } else if (di.rs3 != kNoReg) {
            ops_ready = std::max(ops_ready, avail(di.rs3, seg));
            c_val = lane_value(di.rs3);
        }
        const Cycle start =
            std::max({ops_ready, floor, cl.pe_busy[i]});

        // ---- execute ----
        Cycle done;
        u32 value = 0;
        bool redirect = false;
        Addr target = 0;
        bool halt = false;
        bool is_store = false;
        Addr store_ea = 0;
        u8 store_size = 0;
        u32 store_val = 0;
        Cycle store_addr_ready = 0;

        if (di.isLoad()) {
            const Addr ea = effectiveAddr(di, lane_value(di.rs1));
            if (atrc_)
                atrc_->access(addr, ea);
            const Cycle addr_ready = start + 1;  // address generation
            const Cycle issue =
                std::max(addr_ready, tmc.storeAddrGate());
            done = serveLoad(cl, tmc, ea, di.info().memBytes, issue, i);
            value = loadExtend(di, tmc.mem().read(ea,
                                                  di.info().memBytes));
            if (fc_)
                fc_->onPeResult(cl.index, i, value);
        } else if (di.isStore()) {
            is_store = true;
            store_ea = effectiveAddr(di, lane_value(di.rs1));
            store_size = di.info().memBytes;
            store_val = lane_value(di.rs2);
            if (fc_)
                fc_->onPeResult(cl.index, i, store_val);
            done = start + 1;  // address + data latched in the PE
            // The address resolves as soon as rs1 is available, even
            // if the data operand arrives much later; younger loads
            // are gated by the address only.
            store_addr_ready =
                std::max(avail(di.rs1, seg), floor) + 1;
        } else {
            const ExecOut eo = execute(di, addr, lane_value(di.rs1),
                                       lane_value(di.rs2), c_val);
            done = start + execLatency(di);
            value = eo.value;
            if (fc_)
                fc_->onPeResult(cl.index, i, value);
            halt = eo.halt;
            if (eo.redirect) {
                redirect = true;
                target = eo.target;
            }
            if (di.isFp())
                st_fpu_active_cycles_.inc(
                    static_cast<double>(execLatency(di)));
        }
        st_pe_exec_.inc();
        st_pe_busy_cycles_.inc(static_cast<double>(done - start));
        // Clock-gated activity: execute-stage occupancy only (memory
        // wait time is spent in the LSU, not the PE's compute logic).
        st_pe_exec_cycles_.inc(
            static_cast<double>(di.isMem() ? 1 : execLatency(di)));

        // ---- destination lane write ----
        if (di.writesReg()) {
            regs[di.rd] = {value, done, seg};
            if (fc_ && fc_->parityEnabled())
                regs[di.rd].parity = laneParity(value);
            if (trc_)
                trc_->laneWrite(ring_, di.rd, addr, done, value);
            st_lane_writes_.inc();
            st_lane_hops_.inc(
                static_cast<double>(last_seg - seg + 1));
        }

        // ---- PC-lane retirement (in program order) ----
        const Cycle pc_arrive = pc_cursor + laneDelay(pc_seg, seg);
        const Cycle pc_leave = std::max(pc_arrive, done);
        pc_cursor = pc_leave;
        pc_seg = seg;
        if (is_store) {
            // Stores commit when the PC lane passes (paper §4.3).
            if (atrc_)
                atrc_->access(addr, store_ea);
            if (fc_)
                fc_->onStoreCommit(
                    store_ea, store_size,
                    tmc.mem().read(store_ea, store_size));
            tmc.mem().write(store_ea, store_val, store_size);
            if (tmc.recordStore(store_ea, store_size,
                                store_addr_ready, done) &&
                trc_)
                trc_->memLaneEvict(
                    ring_, addr, done,
                    static_cast<u16>(tmc.entries().size()));
            commitStore(cl, store_ea, pc_leave);
        }
        ++out.retired;
        if (fc_) {
            fault::RetireRecord rr;
            rr.pc = addr;
            rr.wrote_reg = di.writesReg();
            rr.rd = di.rd;
            rr.rd_value = value;
            rr.is_store = is_store;
            rr.store_addr = store_ea;
            rr.store_value = store_val;
            fc_->onRetire(rr);
        }
        expect += 4;
        max_done = std::max(max_done, done);
        if (in.mode == ActMode::SimtStage) {
            // Thread pipelining inserts pipeline registers (paper
            // §4.4.1), letting a PE accept the next thread as soon as
            // its (pipelined) unit can take a new operation; divide
            // and square-root units are not pipelined.
            const ExecClass cls = di.cls();
            const bool unpipelined = cls == ExecClass::IntDiv ||
                                     cls == ExecClass::FpDiv ||
                                     cls == ExecClass::FpSqrt;
            cl.pe_busy[i] =
                unpipelined ? done : start + 1;
        } else {
            // Serial mode has no pipeline registers per PE: the PE's
            // operand/result latches hold one instance until done.
            cl.pe_busy[i] = done;
        }

        if (halt) {
            finish(ActExit::Halt, addr, pc_leave);
            break;
        }
        if (di.op == Op::SIMT_E && in.mode == ActMode::SimtStage) {
            finish(ActExit::ThreadEnd, addr + 4, pc_leave);
            break;
        }
        if (di.isBranch() && !redirect &&
            di.imm < 0) {
            // Loop exit: a backward branch is predicted taken under
            // datapath reuse, so falling through is a misprediction —
            // downstream PEs were held off and must be re-steered.
            floor = std::max(floor,
                             pc_leave + cfg_.squash_resteer + 2);
            st_loop_exit_mispredicts_.inc();
            st_ctrl_stall_cycles_.inc(
                static_cast<double>(cfg_.squash_resteer + 3));
        }
        if (redirect) {
            ++out.taken_branches;
            st_taken_branches_.inc();
            if (atrc_ && target <= addr)
                atrc_->loopBack(addr);
            out.branch_done = done;
            const Cycle resolve = pc_leave;
            if (target > addr && alignDown(target, line_bytes_) == base) {
                // Forward skip within this cluster: downstream PEs are
                // disabled until the PC matches again; the squash
                // re-steer delays everything after the branch.
                expect = target;
                floor = std::max(floor, resolve + cfg_.squash_resteer);
                st_ctrl_stall_cycles_.inc(
                    static_cast<double>(cfg_.squash_resteer + 1));
            } else {
                out.redirect_backward = target <= addr;
                finish(ActExit::Redirect, target, resolve);
                break;
            }
        }
    }

    if (!exited) {
        // Fell through: the PC crosses the remaining segments and the
        // output latch; the next cluster continues at `expect`.
        out.exit = ActExit::FellThrough;
        out.exit_pc = expect;
        pc_cursor += laneDelay(pc_seg, last_seg);
        out.exit_resolve = pc_cursor;
    }
    if (out.exit != ActExit::Redirect)
        out.branch_done = out.exit_resolve;
    out.pc_exit = pc_cursor;
    out.end_cycle = std::max(max_done, pc_cursor);
    out.compute_done = max_done;

    // Apply the cluster output-latch transfer to the lane file in
    // place (batched lane propagation: one sweep, no copy).
    for (auto &l : regs) {
        l.ready += laneDelay(l.seg, last_seg);
        l.seg = kInputLatch;
    }
    return out;
}

} // namespace diag::core
