/**
 * @file
 * The activation engine: simulates one pass of the PC lane through one
 * processing cluster (an "activation"), computing per-PE dataflow
 * timing over the register lanes, memory-system interaction through the
 * cluster LSU, and control-flow (PC-lane) retirement. This is the core
 * of the DiAG model — both serial execution and SIMT pipeline stages
 * are sequences of activations.
 */
#ifndef DIAG_DIAG_ACTIVATION_HPP
#define DIAG_DIAG_ACTIVATION_HPP

#include "common/stats.hpp"
#include "diag/cluster.hpp"
#include "diag/config.hpp"
#include "diag/lanes.hpp"
#include "diag/thread_ctx.hpp"
#include "mem/hierarchy.hpp"
#include "trace/tracer.hpp"

namespace diag::fault
{
class FaultController;
}

namespace diag::trace
{
class AddrTrace;
}

namespace diag::core
{

/** How an activation interprets simt instructions. */
enum class ActMode : u8
{
    Serial,    //!< normal execution; simt_e loops back (scalar semantics)
    SimtStage, //!< pipeline stage; simt_e terminates the thread
};

/** Why an activation ended. */
enum class ActExit : u8
{
    FellThrough, //!< PC ran off the end of the line
    Redirect,    //!< control transfer out of the cluster
    Halt,        //!< ebreak/ecall or invalid encoding
    SimtTrap,    //!< serial mode reached a simt_s (not executed)
    ThreadEnd,   //!< stage mode retired its simt_e
};

/**
 * Activation request. The lane file itself is passed to run() by
 * reference and updated in place — an activation used to copy the
 * whole LaneFile in and out (three ~1.5KB copies per activation),
 * which dominated the runThread profile. The batched-lane-propagation
 * form (DESIGN.md §15) applies the cluster output-latch transfer as
 * one in-place sweep instead.
 */
struct ActivationInput
{
    Cluster *cluster = nullptr;
    Addr entry_pc = 0;
    Cycle pc_enter = 0;       //!< PC-lane arrival at the cluster
    Cycle min_start = 0;      //!< earliest correct execution (decode,
                              //!< squash re-steer, pipeline entry)
    ActMode mode = ActMode::Serial;
    bool trap_on_simt = false; //!< serial: stop at simt_s for the CU
    u32 simt_step = 0;         //!< stage mode: step value for simt_e
};

/** Activation outcome. */
struct ActivationOutput
{
    ActExit exit = ActExit::FellThrough;
    bool faulted = false;     //!< Halt caused by an invalid encoding
    bool redirect_backward = false;  //!< Redirect target is at or
                                     //!< before the branch (a loop)
    Addr exit_pc = 0;         //!< next PC (or the simt_s PC on SimtTrap)
    Cycle exit_resolve = 0;   //!< cycle the next PC was known in order
    Cycle branch_done = 0;    //!< redirecting PE's execute-done cycle
                              //!< (= exit_resolve for other exits);
                              //!< earliest cycle a predicted-taken
                              //!< backward branch can re-steer
    Cycle pc_exit = 0;        //!< PC lane left the cluster
    Cycle end_cycle = 0;      //!< PEs done and retire sweep finished
    Cycle compute_done = 0;   //!< all PEs done executing; the cluster
                              //!< can accept a new (speculative)
                              //!< activation from this cycle on
    u64 retired = 0;
    u64 taken_branches = 0;
};

/** Simulates activations against the shared memory system. */
class ActivationEngine
{
  public:
    ActivationEngine(const DiagConfig &cfg, mem::MemHierarchy &mh,
                     unsigned mem_port, StatGroup &stats);

    /** Run one activation for the thread @p tmc. @p regs is the lane
     *  file at the cluster input latch; it is updated in place and
     *  holds the output-latch state on return (on every exit kind). */
    ActivationOutput run(const ActivationInput &in, LaneFile &regs,
                         ThreadMemCtx &tmc);

    /** Attach (or detach with nullptr) a fault controller. Every hook
     *  in the hot path is a single null check when detached. */
    void setFaultController(fault::FaultController *fc) { fc_ = fc; }

    /** Attach (or detach with nullptr) a tracer for lane-write,
     *  memory-lane, and LSU-queue events; @p ring labels the track.
     *  Same hot-path contract: one null check when detached. */
    void
    setTracer(trace::Tracer *t, unsigned ring)
    {
        trc_ = t;
        ring_ = static_cast<u8>(ring);
    }

    /** Attach (or detach with nullptr) the address recorder for the
     *  stream validator. Same hot-path contract: one null check when
     *  detached, and the hook never feeds back into timing. */
    void setAddrTrace(trace::AddrTrace *t) { atrc_ = t; }

  private:
    /** Cycles until a load's data is available, with full accounting.
     *  @p pe is the issuing PE slot (keys the stride prefetcher). */
    Cycle serveLoad(Cluster &cl, ThreadMemCtx &tmc, Addr ea, u8 size,
                    Cycle issue, unsigned pe);

    /** Occupy LSU + cache for a committing store. */
    void commitStore(Cluster &cl, Addr ea, Cycle commit);

    const DiagConfig &cfg_;
    mem::MemHierarchy &mh_;
    unsigned mem_port_;
    StatGroup &stats_;
    u32 line_bytes_;

    // Lazy-bound counter handles for the per-activation hot path (see
    // StatCounter): identical key-creation semantics to stats_.inc,
    // without a map lookup per event.
    StatCounter st_activations_{stats_, "activations"};
    StatCounter st_pe_exec_{stats_, "pe_exec"};
    StatCounter st_pe_busy_cycles_{stats_, "pe_busy_cycles"};
    StatCounter st_pe_exec_cycles_{stats_, "pe_exec_cycles"};
    StatCounter st_fpu_active_cycles_{stats_, "fpu_active_cycles"};
    StatCounter st_lane_writes_{stats_, "lane_writes"};
    StatCounter st_lane_hops_{stats_, "lane_hops"};
    StatCounter st_taken_branches_{stats_, "taken_branches"};
    StatCounter st_loop_exit_mispredicts_{stats_, "loop_exit_mispredicts"};
    StatCounter st_ctrl_stall_cycles_{stats_, "ctrl_stall_cycles"};
    StatCounter st_loads_{stats_, "loads"};
    StatCounter st_stores_{stats_, "stores"};
    StatCounter st_stride_prefetches_{stats_, "stride_prefetches"};
    StatCounter st_mem_queue_stall_cycles_{stats_,
                                           "mem_queue_stall_cycles"};
    StatCounter st_memlane_fwd_{stats_, "memlane_fwd"};
    StatCounter st_linebuf_hits_{stats_, "linebuf_hits"};
    StatCounter st_l1_loads_{stats_, "l1_loads"};
    StatCounter st_l2_loads_{stats_, "l2_loads"};
    StatCounter st_dram_loads_{stats_, "dram_loads"};
    StatCounter st_mem_stall_cycles_{stats_, "mem_stall_cycles"};
    fault::FaultController *fc_ = nullptr; //!< null = injection off
    trace::Tracer *trc_ = nullptr;         //!< null = tracing off
    trace::AddrTrace *atrc_ = nullptr;     //!< null = no address log
    u8 ring_ = 0;                          //!< ring id for trace tracks
};

} // namespace diag::core

#endif // DIAG_DIAG_ACTIVATION_HPP
