/**
 * @file
 * DiAG processor configuration, including the four hardware
 * configurations of the paper's Table 2 as presets.
 */
#ifndef DIAG_DIAG_CONFIG_HPP
#define DIAG_DIAG_CONFIG_HPP

#include <string>

#include "mem/params.hpp"

namespace diag::core
{

/** All parameters of a DiAG processor instance. */
struct DiagConfig
{
    std::string name = "F4C32";

    // ---- structural (paper §5.1, §6.1.2) ----
    unsigned pes_per_cluster = 16;  //!< one 64B I-line per cluster
    unsigned segment_size = 8;      //!< lane buffer every 8 PEs
    unsigned total_clusters = 32;   //!< across the whole processor
    unsigned num_rings = 1;         //!< rings; clusters split evenly
    bool fp_supported = true;       //!< RV32IMF vs RV32I
    double freq_ghz = 2.0;          //!< simulated clock (Table 2)

    // ---- feature switches (ablations) ----
    bool reuse_enabled = true;      //!< backward-branch datapath reuse
    bool simt_enabled = true;       //!< thread pipelining extension
    bool mem_lanes_enabled = true;  //!< store-to-load forwarding lanes
    /**
     * Localized per-PE stride prefetching (paper §5.2 names this as
     * promising future work but leaves it out of the evaluation, so it
     * defaults to off; bench_ablation_prefetch quantifies it).
     */
    bool stride_prefetch_enabled = false;
    /**
     * Statically lint every program before simulating it (strict
     * mode): programs with error-level findings — reachable invalid
     * encodings, control flow leaving the image — are rejected with
     * fatal() instead of faulting mid-simulation.
     */
    bool lint_enabled = true;
    /**
     * Additionally run the diag-verify abstract-interpretation
     * verifier before simulating (next to lint): programs with a
     * *proven* violation — a refuted safety property, a proven
     * cross-thread race, a livelocking simt region — are rejected
     * with fatal(). Off by default: lint already gates structural
     * errors, and the verifier costs a whole-program fixpoint.
     */
    bool verify_enabled = false;
    /**
     * Escape hatch for the skip-idle simulation kernel (DESIGN.md
     * §15): with dense_loop = true the model runs the pre-PR-9 dense
     * paths — per-activation backward-branch rescans, the
     * instruction-by-instruction disabled-PE scan, the iterative simt
     * trip-count loop, and no steady-state loop batching. Results are
     * bit-for-bit identical either way (cycles, counters, traces);
     * the flag exists so the equivalence is testable in-tree and so a
     * suspected kernel bug can be bisected against the dense path.
     */
    bool dense_loop = false;

    // ---- timing ----
    /**
     * Bound on concurrently in-flight activation wavefronts under
     * loop datapath reuse: each lane boundary register holds one value,
     * so execution can only run a few iterations ahead of retirement.
     */
    unsigned speculation_depth = 12;
    Cycle decode_latency = 1;        //!< cluster decode after line load
    Cycle inter_cluster_latch = 1;   //!< lane latch between clusters
    Cycle bus_regfile_transfer = 2;  //!< §5.1.3 partial RF over the bus
    Cycle bus_iline_transfer = 1;    //!< I-line delivery over the bus
    Cycle squash_resteer = 1;        //!< redirect-to-reenable delay

    // ---- per-cluster memory interface ----
    unsigned mem_lane_entries = 16;  //!< forwarding entries per thread
    Cycle mem_lane_latency = 1;      //!< forwarding hit
    Cycle line_buffer_latency = 2;   //!< cluster-level last-line buffer
    unsigned lsq_entries = 8;        //!< outstanding requests / cluster
    Cycle lsu_issue_occupancy = 1;   //!< LSU port occupancy per access

    // ---- memory hierarchy ----
    mem::MemParams mem;

    // ---- limits ----
    u64 max_cycles = 2'000'000'000;

    /** Clusters per ring. */
    unsigned
    clustersPerRing() const
    {
        return total_clusters / num_rings;
    }

    /** Total PE count (Table 2 row "Total PEs"). */
    unsigned totalPes() const { return total_clusters * pes_per_cluster; }

    // ---- Table 2 presets ----
    static DiagConfig i4c2();   //!< RV32I, 2 clusters, 32 PEs, 100 MHz
    static DiagConfig f4c2();   //!< RV32IMF, 2 clusters, 32 PEs
    static DiagConfig f4c16();  //!< RV32IMF, 16 clusters, 256 PEs
    static DiagConfig f4c32();  //!< RV32IMF, 32 clusters, 512 PEs

    /**
     * The paper's multi-thread arrangement (§7.2.1): "16-by-2 format",
     * each thread on a dataflow ring with two clusters to alternate.
     */
    static DiagConfig f4c32MultiRing();
};

} // namespace diag::core

#endif // DIAG_DIAG_CONFIG_HPP
