#include "diag/config.hpp"

namespace diag::core
{

namespace
{

/** Shared memory-system shape per Table 2 (sizes set per config). */
mem::MemParams
memFor(u32 l1d_kb, u32 l2_mb)
{
    mem::MemParams m;
    m.l1i = {32 * 1024, 1, 64, 1, 2, 1};  // 32KB direct-mapped L1I
    m.l1d = {l1d_kb * 1024, 4, 64, 4, 4, 1};
    m.l2 = {l2_mb * 1024 * 1024, 8, 64, 8, 20, 2};
    m.dram = {120, 8};
    return m;
}

} // namespace

DiagConfig
DiagConfig::i4c2()
{
    DiagConfig c;
    c.name = "I4C2";
    c.total_clusters = 2;
    c.fp_supported = false;
    c.freq_ghz = 0.1;  // 100 MHz FPGA-class prototype
    c.mem = memFor(32, 4);
    c.mem.l2 = {0, 0, 64, 1, 0, 0};  // no L2 in the I4C2 prototype
    c.mem.l2.size_bytes = 64 * 1024;  // modelled as a small SRAM
    c.mem.l2.assoc = 1;
    c.mem.l2.hit_latency = 10;
    c.simt_enabled = false;
    return c;
}

DiagConfig
DiagConfig::f4c2()
{
    DiagConfig c;
    c.name = "F4C2";
    c.total_clusters = 2;
    c.mem = memFor(64, 4);
    return c;
}

DiagConfig
DiagConfig::f4c16()
{
    DiagConfig c;
    c.name = "F4C16";
    c.total_clusters = 16;
    c.mem = memFor(128, 4);
    return c;
}

DiagConfig
DiagConfig::f4c32()
{
    DiagConfig c;
    c.name = "F4C32";
    c.total_clusters = 32;
    c.mem = memFor(128, 4);
    return c;
}

DiagConfig
DiagConfig::f4c32MultiRing()
{
    DiagConfig c = f4c32();
    c.name = "F4C32-16x2";
    c.num_rings = 16;
    return c;
}

} // namespace diag::core
