/**
 * @file
 * Per-thread memory context for the DiAG model. The memory lanes of
 * paper §5.2 are modelled by the shared StoreTracker: a window of
 * recent stores searchable for store-to-load forwarding, plus the
 * program-order address gate that load issue respects.
 */
#ifndef DIAG_DIAG_THREAD_CTX_HPP
#define DIAG_DIAG_THREAD_CTX_HPP

#include "sim/mem_order.hpp"

namespace diag::core
{

/** DiAG's memory lanes are a per-thread store tracker. */
using ThreadMemCtx = sim::StoreTracker;

} // namespace diag::core

#endif // DIAG_DIAG_THREAD_CTX_HPP
