/**
 * @file
 * A processing cluster: 16 PEs fed by one I-cache line (paper §5.1.1),
 * with its cluster-level load/store unit state (line buffer, request
 * queue occupancy, issue port).
 */
#ifndef DIAG_DIAG_CLUSTER_HPP
#define DIAG_DIAG_CLUSTER_HPP

#include <vector>

#include "common/calendar.hpp"
#include "isa/inst.hpp"

namespace diag::core
{

/** Sentinel for "no line loaded". */
inline constexpr Addr kNoLine = ~Addr{0};

/** One processing cluster's persistent hardware state. */
struct Cluster
{
    unsigned index = 0;       //!< position within its ring
    /** Taken offline by fault recovery (graceful degradation): the
     *  control unit never allocates lines to a disabled cluster. */
    bool disabled = false;

    // ---- instruction side ----
    Addr line_base = kNoLine; //!< loaded I-line base address
    Cycle ready_at = 0;       //!< fetch + decode complete
    Cycle free_at = 0;        //!< previous activation fully retired
    u64 last_use = 0;         //!< LRU stamp for victim selection
    std::vector<isa::DecodedInst> insts;  //!< decoded line contents

    // ---- skip-idle kernel metadata (DESIGN.md §15) ----
    /** Line contains a backward branch / backward JAL. Derived from
     *  insts at load time so the control unit's prefetch decision does
     *  not rescan the (unchanged) line on every activation. */
    bool has_backward_branch = false;
    /**
     * Steady-state batch-window qualification per entry slot, computed
     * lazily by the ring's loop batcher: 0 = not analyzed yet, 1 = not
     * batchable, 2 + d = batchable self-loop whose backward branch
     * sits d slots after the entry slot. Pure derived data — cleared
     * with the line.
     */
    std::vector<u8> batch_window;

    // ---- cluster-level LSU (paper §5.2) ----
    /** Small set-associative line buffer ("set-associative register
     *  lanes" for memory): tags of recently accessed D-lines. */
    static constexpr unsigned kLineBufEntries = 4;
    Addr line_buf[kLineBufEntries] = {kNoLine, kNoLine, kNoLine,
                                      kNoLine};
    u64 line_buf_use[kLineBufEntries] = {0, 0, 0, 0};
    u64 line_buf_tick = 0;
    BusyCalendar lsu_port;          //!< issue-port occupancy calendar
    std::vector<Cycle> outstanding; //!< completion times, <= lsq_entries

    /**
     * Per-PE occupancy. A PE holds one instruction and re-fires for
     * the next loop iteration as soon as its inputs are valid again
     * and its functional unit is free (§5.1.4: "PEs can always execute
     * at will") — the lane buffers every 8 PEs (§6.1.2) let successive
     * iteration values stream through a resident loop datapath.
     * pe_busy[i] is when PE i finished its previous firing.
     */
    std::vector<Cycle> pe_busy;

    /**
     * Per-PE stride prefetcher state (paper §5.2: "with instruction
     * reuse, each PE is assigned a single memory instruction whose
     * address likely changes in a fixed pattern each iteration. We
     * expect that localized stride prefetching ... will be effective").
     * One entry per PE slot, trained across activations.
     */
    struct StrideEntry
    {
        Addr last_addr = 0;
        i32 stride = 0;
        u8 confidence = 0;
        bool valid = false;
    };
    std::vector<StrideEntry> stride_table;

    /**
     * Train PE slot @p pe with the observed address; returns the
     * predicted next address when the stride is confident, else 0.
     */
    Addr
    strideTrain(unsigned pe, Addr addr)
    {
        if (stride_table.size() <= pe)
            stride_table.resize(pe + 1);
        StrideEntry &e = stride_table[pe];
        Addr predict = 0;
        if (e.valid) {
            const i32 delta =
                static_cast<i32>(addr - e.last_addr);
            if (delta == e.stride && delta != 0) {
                if (e.confidence < 3)
                    ++e.confidence;
            } else {
                e.stride = delta;
                e.confidence = 0;
            }
            if (e.confidence >= 1)
                predict = addr + static_cast<Addr>(e.stride);
        }
        e.last_addr = addr;
        e.valid = true;
        return predict;
    }

    /** Probe the line buffer; inserts on miss. True on hit. */
    bool
    lineBufAccess(Addr line)
    {
        unsigned victim = 0;
        for (unsigned e = 0; e < kLineBufEntries; ++e) {
            if (line_buf[e] == line) {
                line_buf_use[e] = ++line_buf_tick;
                return true;
            }
            if (line_buf_use[e] < line_buf_use[victim])
                victim = e;
        }
        line_buf[victim] = line;
        line_buf_use[victim] = ++line_buf_tick;
        return false;
    }

    bool loaded() const { return line_base != kNoLine; }

    /** Drop the loaded line (eviction / reallocation). */
    void
    evict()
    {
        line_base = kNoLine;
        insts.clear();
        has_backward_branch = false;
        batch_window.clear();
    }

    /** Reset all state between runs. */
    void
    reset()
    {
        evict();
        disabled = false;
        ready_at = 0;
        free_at = 0;
        last_use = 0;
        for (unsigned e = 0; e < kLineBufEntries; ++e) {
            line_buf[e] = kNoLine;
            line_buf_use[e] = 0;
        }
        line_buf_tick = 0;
        lsu_port.clear();
        outstanding.clear();
        pe_busy.clear();
        stride_table.clear();
    }
};

} // namespace diag::core

#endif // DIAG_DIAG_CLUSTER_HPP
