/**
 * @file
 * Register-lane state. A lane carries one architectural register's value
 * and valid timing through the PE row (paper §4.1): `ready` is the cycle
 * the value becomes valid at its producer, and `seg` records which
 * 8-PE segment produced it so downstream consumers pay one extra cycle
 * per lane buffer crossed (§6.1.2: lanes are buffered every 8 PEs).
 */
#ifndef DIAG_DIAG_LANES_HPP
#define DIAG_DIAG_LANES_HPP

#include <array>
#include <bit>

#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace diag::core
{

/** Producer segment index meaning "the cluster's input latch". */
inline constexpr int kInputLatch = -1;

/** One register lane's value and validity timing. */
struct LaneState
{
    u32 value = 0;
    Cycle ready = 0;       //!< cycle valid at the producer's output
    int seg = kInputLatch; //!< producing segment within the cluster
    u8 parity = 0;         //!< even-parity bit over value (fault
                           //!< detection; maintained only when a
                           //!< FaultController has parity enabled)
};

/** All 64 lanes (x0..x31, f0..f31). x0 is never written. */
using LaneFile = std::array<LaneState, isa::kNumRegs>;

/** Even-parity bit over a lane value. */
inline u8
laneParity(u32 value)
{
    return static_cast<u8>(std::popcount(value) & 1);
}

/** Recompute every lane's stored parity (thread start / recovery). */
inline void
refreshParity(LaneFile &regs)
{
    for (LaneState &lane : regs)
        lane.parity = laneParity(lane.value);
}

/**
 * Cycles for a value produced in @p producer_seg to reach a consumer in
 * @p consumer_seg (>= producer_seg): one cycle per lane buffer crossed.
 * The input latch behaves like segment 0.
 */
constexpr Cycle
laneDelay(int producer_seg, int consumer_seg)
{
    const int from = producer_seg < 0 ? 0 : producer_seg;
    return static_cast<Cycle>(consumer_seg - from);
}

} // namespace diag::core

#endif // DIAG_DIAG_LANES_HPP
