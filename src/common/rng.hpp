/**
 * @file
 * Deterministic pseudo-random number generator (xorshift64*), used by
 * workload input generators and property tests so runs are reproducible
 * across platforms and standard-library versions.
 */
#ifndef DIAG_COMMON_RNG_HPP
#define DIAG_COMMON_RNG_HPP

#include <cassert>

#include "common/types.hpp"

namespace diag
{

/** Small, fast, seedable PRNG with a 64-bit state. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit sample. */
    u64
    next64()
    {
        u64 x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Next 32-bit sample. */
    u32 next32() { return static_cast<u32>(next64() >> 32); }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    u64
    below(u64 bound)
    {
        assert(bound != 0);
        return next64() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    i64
    range(i64 lo, i64 hi)
    {
        assert(lo <= hi);
        return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
    }

    /** Uniform float in [0, 1). */
    float
    uniform()
    {
        return static_cast<float>(next64() >> 40) * 0x1.0p-24f;
    }

    /** Bernoulli sample with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    u64 state_;
};

} // namespace diag

#endif // DIAG_COMMON_RNG_HPP
