/**
 * @file
 * Lightweight named-statistics registry. Components own a StatGroup and
 * register scalar counters in it; the harness and benches walk groups to
 * render tables or feed the energy model.
 */
#ifndef DIAG_COMMON_STATS_HPP
#define DIAG_COMMON_STATS_HPP

#include <map>
#include <ostream>
#include <string>

#include "common/types.hpp"

namespace diag
{

/**
 * Byte-stable JSON number: counters are mostly exact integral counts,
 * which render without a fraction; anything else uses %.12g (enough
 * digits that equal doubles render equal bytes, and unequal ones
 * almost surely do not). Shared by StatGroup::dumpJson and the obs
 * metrics registry so every JSON artifact renders numbers identically.
 */
std::string jsonNumber(double v);

/**
 * Escape a string for embedding in a JSON document. Counter keys are
 * ASCII identifiers, but escape defensively so a hostile key cannot
 * break the document.
 */
std::string jsonEscape(const std::string &s);

/**
 * A flat collection of named double-valued statistics. Counters default
 * to zero; reading a missing counter returns zero so consumers do not
 * need to know the full set in advance.
 *
 * Concurrency contract (host execution layer, DESIGN.md §10): a
 * StatGroup is deliberately unsynchronized — inc() sits on the
 * simulators' per-event hot path where a mutex or atomic would
 * dominate the cost. Every group must therefore stay confined to the
 * host worker that owns its simulator instance; cross-worker
 * aggregation happens after the owning tasks complete, on the merging
 * thread, via merge(). There are no process-global StatGroups.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "stats") : name_(std::move(name))
    {}

    /** Group name used as a prefix when dumping. */
    const std::string &name() const { return name_; }

    /** Add @p delta (default 1) to the counter @p key. */
    void
    inc(const std::string &key, double delta = 1.0)
    {
        values_[key] += delta;
    }

    /** Overwrite the counter @p key. */
    void
    set(const std::string &key, double value)
    {
        values_[key] = value;
    }

    /** Read a counter; missing keys read as zero. */
    double
    get(const std::string &key) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? 0.0 : it->second;
    }

    /** True iff the counter was ever written. */
    bool
    has(const std::string &key) const
    {
        return values_.find(key) != values_.end();
    }

    /**
     * Reset the group. With @p retain_keys (the default) every counter
     * is zeroed but stays registered, so a later dump() still lists it
     * — the mode reset-between-runs callers want, since dumps keep a
     * stable schema across runs. With retain_keys = false the key set
     * itself is dropped (has() turns false), for reusing one group
     * across unrelated programs without leaking per-PC counters such
     * as simt_region_* between them. Dropping the key set destroys the
     * map nodes, so the epoch advances and every cached StatCounter
     * handle re-binds on its next use.
     */
    void
    clear(bool retain_keys = true)
    {
        if (!retain_keys) {
            values_.clear();
            ++epoch_;
            return;
        }
        for (auto &kv : values_)
            kv.second = 0.0;
    }

    /** Merge another group into this one by summing matching keys. */
    void
    merge(const StatGroup &other)
    {
        for (const auto &kv : other.values_)
            values_[kv.first] += kv.second;
    }

    /** All (key, value) pairs, sorted by key. */
    const std::map<std::string, double> &all() const { return values_; }

    /**
     * Stable address of the counter @p key, creating it (at zero) if
     * absent. std::map nodes never move, so the pointer stays valid
     * for the group's lifetime or until clear(false) drops the key
     * set — which is what epoch() lets StatCounter detect.
     */
    double *slot(const std::string &key) { return &values_[key]; }

    /** Generation of the key set; advanced by clear(false). */
    u64 epoch() const { return epoch_; }

    /** Pretty-print "group.key value" lines. */
    void dump(std::ostream &os) const;

    /**
     * Machine-readable dump: one JSON object with the group name and a
     * key-sorted "counters" object. Byte-stable — the same counters
     * always render the same bytes (std::map iteration order plus a
     * fixed number format: integers without a fraction, everything
     * else with %.12g), so golden-file diffs and artifact comparisons
     * across runs are exact.
     */
    void dumpJson(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, double> values_;
    u64 epoch_ = 1;
};

/**
 * Cached handle to one StatGroup counter for per-event hot paths.
 * inc() through a string key costs a map lookup (and a std::string
 * construction at const char* call sites) on every event; a handle
 * costs one epoch compare plus a pointer add once bound.
 *
 * The binding is lazy: the key is created in the group on the first
 * inc(), never before — so "a counter exists iff it was ever
 * incremented" (and with it the byte-stable dumpJson key set) is
 * preserved exactly. read() never creates the key either. The handle
 * re-binds automatically after StatGroup::clear(false) via the
 * group's epoch. @p key must have static storage duration (string
 * literals at every call site in-tree).
 */
class StatCounter
{
  public:
    StatCounter(StatGroup &group, const char *key)
        : group_(&group), key_(key)
    {}

    /** Add @p delta (default 1) to the bound counter. */
    void
    inc(double delta = 1.0)
    {
        if (epoch_ != group_->epoch()) {
            slot_ = group_->slot(key_);
            epoch_ = group_->epoch();
        }
        *slot_ += delta;
    }

    /** Current value; does not create the key when never incremented. */
    double
    read() const
    {
        if (epoch_ == group_->epoch())
            return *slot_;
        return group_->get(key_);
    }

  private:
    StatGroup *group_;
    const char *key_;
    double *slot_ = nullptr;
    u64 epoch_ = 0;  //!< 0 never matches a live group epoch (>= 1)
};

} // namespace diag

#endif // DIAG_COMMON_STATS_HPP
