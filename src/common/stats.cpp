#include "common/stats.hpp"

#include <iomanip>

namespace diag
{

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : values_) {
        os << name_ << '.' << kv.first << ' ' << std::setprecision(12)
           << kv.second << '\n';
    }
}

} // namespace diag
