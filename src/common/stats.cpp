#include "common/stats.hpp"

#include <cmath>
#include <iomanip>

#include "common/log.hpp"

namespace diag
{

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : values_) {
        os << name_ << '.' << kv.first << ' ' << std::setprecision(12)
           << kv.second << '\n';
    }
}

std::string
jsonNumber(double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::fabs(v) < 9.007199254740992e15)  // 2^53: exactly integral
        return detail::vformat("%lld", static_cast<long long>(v));
    return detail::vformat("%.12g", v);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\', out += c;
        else if (static_cast<unsigned char>(c) < 0x20)
            out += detail::vformat("\\u%04x", c);
        else
            out += c;
    }
    return out;
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\"group\": \"" << jsonEscape(name_)
       << "\", \"counters\": {";
    bool first = true;
    for (const auto &kv : values_) {
        os << (first ? "" : ", ") << '"' << jsonEscape(kv.first)
           << "\": " << jsonNumber(kv.second);
        first = false;
    }
    os << "}}\n";
}

} // namespace diag
