/**
 * @file
 * Fundamental fixed-width type aliases shared by all modules.
 */
#ifndef DIAG_COMMON_TYPES_HPP
#define DIAG_COMMON_TYPES_HPP

#include <cstdint>

namespace diag
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Byte address in the simulated 32-bit physical address space. */
using Addr = u32;

/** Absolute simulation time in core clock cycles. */
using Cycle = u64;

/** Sentinel for "not yet scheduled / unknown" cycle values. */
inline constexpr Cycle kNeverCycle = ~Cycle{0};

} // namespace diag

#endif // DIAG_COMMON_TYPES_HPP
