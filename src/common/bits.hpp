/**
 * @file
 * Bit-manipulation helpers used by the ISA encoder/decoder and the
 * microarchitectural models.
 */
#ifndef DIAG_COMMON_BITS_HPP
#define DIAG_COMMON_BITS_HPP

#include <bit>
#include <cassert>

#include "common/types.hpp"

namespace diag
{

/**
 * Extract bits [hi:lo] (inclusive, hi >= lo) of @p value, shifted down
 * so the lowest extracted bit lands at position 0.
 */
constexpr u32
bits(u32 value, unsigned hi, unsigned lo)
{
    assert(hi >= lo && hi < 32);
    const u32 width = hi - lo + 1;
    const u32 mask = width >= 32 ? ~u32{0} : ((u32{1} << width) - 1);
    return (value >> lo) & mask;
}

/** Extract a single bit of @p value. */
constexpr u32
bit(u32 value, unsigned pos)
{
    assert(pos < 32);
    return (value >> pos) & 1u;
}

/**
 * Sign-extend the low @p width bits of @p value to a full 32-bit signed
 * integer, returned as u32 (two's complement).
 */
constexpr u32
sext(u32 value, unsigned width)
{
    assert(width >= 1 && width <= 32);
    if (width == 32)
        return value;
    const u32 sign = u32{1} << (width - 1);
    const u32 mask = (u32{1} << width) - 1;
    value &= mask;
    return (value ^ sign) - sign;
}

/** Insert the low @p width bits of @p field at position @p lo. */
constexpr u32
insertBits(u32 word, unsigned lo, unsigned width, u32 field)
{
    assert(lo + width <= 32);
    const u32 mask = width >= 32 ? ~u32{0} : ((u32{1} << width) - 1);
    return (word & ~(mask << lo)) | ((field & mask) << lo);
}

/** True iff @p value is a power of two (zero excluded). */
constexpr bool
isPow2(u64 value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2i(u64 value)
{
    assert(isPow2(value));
    return static_cast<unsigned>(std::countr_zero(value));
}

/** Round @p value up to the next multiple of the power-of-two @p align. */
constexpr u64
alignUp(u64 value, u64 align)
{
    assert(isPow2(align));
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of the power-of-two @p align. */
constexpr u64
alignDown(u64 value, u64 align)
{
    assert(isPow2(align));
    return value & ~(align - 1);
}

} // namespace diag

#endif // DIAG_COMMON_BITS_HPP
