#include "common/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace diag
{

namespace
{
bool g_verbose = false;
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

namespace detail
{

std::string
vformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_verbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace diag
