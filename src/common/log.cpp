#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace diag
{

namespace
{

/** Relaxed is enough: verbosity is configured before any host worker
 *  threads exist, and a stale read only mislabels one line. */
std::atomic<bool> g_verbose{false};

/** Serializes stderr writes so host-parallel workers (fault-campaign
 *  trials, sweep cells) emit whole lines, never interleaved bytes. */
std::mutex &
ioMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace detail
{

std::string
vformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Deliberately no unlock: the process dies holding the mutex, and
    // that is fine — nothing after abort() prints.
    ioMutex().lock();
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    ioMutex().lock();
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    const std::lock_guard<std::mutex> lk(ioMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!verbose())
        return;
    const std::lock_guard<std::mutex> lk(ioMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace diag
