/**
 * @file
 * Sparse byte-addressable memory image over a 32-bit address space,
 * shared by the assembler's program image, the golden simulator, and
 * both microarchitectural models. Little-endian, zero-fill-on-read.
 */
#ifndef DIAG_COMMON_SPARSE_MEM_HPP
#define DIAG_COMMON_SPARSE_MEM_HPP

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/types.hpp"

namespace diag
{

/** Paged sparse memory; untouched locations read as zero. */
class SparseMemory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr unsigned kPageSize = 1u << kPageShift;

    SparseMemory() = default;
    SparseMemory(SparseMemory &&) = default;
    SparseMemory &operator=(SparseMemory &&) = default;

    /** Deep copy (used to snapshot state between runs). */
    SparseMemory(const SparseMemory &other) { *this = other; }

    SparseMemory &
    operator=(const SparseMemory &other)
    {
        if (this == &other)
            return *this;
        pages_.clear();
        for (const auto &kv : other.pages_)
            pages_[kv.first] = std::make_unique<Page>(*kv.second);
        return *this;
    }

    u8
    read8(Addr addr) const
    {
        const Page *p = findPage(addr);
        return p ? (*p)[addr & (kPageSize - 1)] : 0;
    }

    void
    write8(Addr addr, u8 value)
    {
        page(addr)[addr & (kPageSize - 1)] = value;
    }

    u16
    read16(Addr addr) const
    {
        return static_cast<u16>(read8(addr)) |
               (static_cast<u16>(read8(addr + 1)) << 8);
    }

    void
    write16(Addr addr, u16 value)
    {
        write8(addr, static_cast<u8>(value));
        write8(addr + 1, static_cast<u8>(value >> 8));
    }

    u32
    read32(Addr addr) const
    {
        return static_cast<u32>(read16(addr)) |
               (static_cast<u32>(read16(addr + 2)) << 16);
    }

    void
    write32(Addr addr, u32 value)
    {
        write16(addr, static_cast<u16>(value));
        write16(addr + 2, static_cast<u16>(value >> 16));
    }

    /** Read @p bytes (1, 2, or 4) zero-extended to 32 bits. */
    u32
    read(Addr addr, unsigned bytes) const
    {
        switch (bytes) {
          case 1: return read8(addr);
          case 2: return read16(addr);
          default: return read32(addr);
        }
    }

    /** Write the low @p bytes (1, 2, or 4) of @p value. */
    void
    write(Addr addr, u32 value, unsigned bytes)
    {
        switch (bytes) {
          case 1: write8(addr, static_cast<u8>(value)); break;
          case 2: write16(addr, static_cast<u16>(value)); break;
          default: write32(addr, value); break;
        }
    }

    void
    writeBlock(Addr addr, const void *src, size_t len)
    {
        const u8 *bytes = static_cast<const u8 *>(src);
        for (size_t i = 0; i < len; ++i)
            write8(addr + static_cast<Addr>(i), bytes[i]);
    }

    void
    readBlock(Addr addr, void *dst, size_t len) const
    {
        u8 *bytes = static_cast<u8 *>(dst);
        for (size_t i = 0; i < len; ++i)
            bytes[i] = read8(addr + static_cast<Addr>(i));
    }

    /** Number of resident pages (for tests / footprint reporting). */
    size_t numPages() const { return pages_.size(); }

    /** Invoke @p fn with the base address of every resident page. */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const auto &kv : pages_)
            fn(static_cast<Addr>(kv.first) << kPageShift);
    }

    /** Drop all contents. */
    void clear() { pages_.clear(); }

  private:
    using Page = std::array<u8, kPageSize>;

    const Page *
    findPage(Addr addr) const
    {
        auto it = pages_.find(addr >> kPageShift);
        return it == pages_.end() ? nullptr : it->second.get();
    }

    Page &
    page(Addr addr)
    {
        auto &slot = pages_[addr >> kPageShift];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return *slot;
    }

    std::unordered_map<u32, std::unique_ptr<Page>> pages_;
};

} // namespace diag

#endif // DIAG_COMMON_SPARSE_MEM_HPP
