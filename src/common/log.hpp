/**
 * @file
 * Status and error reporting in the gem5 style: panic() for internal
 * invariant violations, fatal() for user/configuration errors, warn()
 * and inform() for non-fatal diagnostics.
 *
 * Thread safety: every macro may be called from host worker threads
 * (see src/host). Lines are emitted atomically (never interleaved
 * mid-line), but the relative order of lines from concurrent workers
 * is unspecified — deterministic artifacts (JSON reports, tables)
 * must go through their renderers, never through this logger.
 */
#ifndef DIAG_COMMON_LOG_HPP
#define DIAG_COMMON_LOG_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

namespace diag
{

namespace detail
{
/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
} // namespace detail

/** Global verbosity switch for inform(); warnings always print.
 *  Configure it before spawning host workers — flipping it while
 *  workers log is safe (the flag is atomic) but which in-flight lines
 *  see the change is unspecified. */
void setVerbose(bool verbose);
bool verbose();

} // namespace diag

/**
 * Report an internal simulator bug (a condition that should never occur
 * regardless of user input) and abort.
 */
#define panic(...) \
    ::diag::detail::panicImpl(__FILE__, __LINE__, \
                              ::diag::detail::vformat(__VA_ARGS__))

/**
 * Report an unrecoverable user-level error (bad configuration, malformed
 * input) and exit(1).
 */
#define fatal(...) \
    ::diag::detail::fatalImpl(::diag::detail::vformat(__VA_ARGS__))

/** Report suspicious but survivable conditions. */
#define warn(...) \
    ::diag::detail::warnImpl(::diag::detail::vformat(__VA_ARGS__))

/** Report normal operating status (suppressed unless verbose; the
 *  format arguments are not evaluated when verbosity is off). */
#define inform(...) \
    do { \
        if (::diag::verbose()) \
            ::diag::detail::informImpl( \
                ::diag::detail::vformat(__VA_ARGS__)); \
    } while (0)

/** panic() unless @p cond holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic(__VA_ARGS__); \
    } while (0)

/** fatal() unless @p cond holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(__VA_ARGS__); \
    } while (0)

#endif // DIAG_COMMON_LOG_HPP
