/**
 * @file
 * Order-tolerant occupancy calendar for shared hardware resources
 * (cache banks, DRAM channels, buses).
 *
 * The engines in this project process software threads sequentially
 * while their timestamps interleave in simulated time, so requests can
 * arrive at a shared resource out of time order. A plain busy-until
 * scalar would push an early-time request from a later-processed thread
 * behind another thread's far-future reservation — serializing threads
 * that really run in parallel. The calendar instead keeps a bounded,
 * sorted window of reserved intervals and grants each request the first
 * gap at or after its arrival time, independent of processing order.
 */
#ifndef DIAG_COMMON_CALENDAR_HPP
#define DIAG_COMMON_CALENDAR_HPP

#include <algorithm>
#include <vector>

#include "common/types.hpp"

namespace diag
{

/** Single-server reservation calendar with a bounded history window. */
class BusyCalendar
{
  public:
    explicit BusyCalendar(size_t capacity = 96) : cap_(capacity) {}

    /**
     * First gap of @p occupancy cycles at or after @p now, without
     * reserving it.
     */
    Cycle
    probe(Cycle now, Cycle occupancy) const
    {
        Cycle t = now;
        size_t i = 0;
        while (i < iv_.size() && iv_[i].end <= t)
            ++i;
        while (i < iv_.size()) {
            if (t + occupancy <= iv_[i].start)
                break;  // the gap before interval i fits
            t = std::max(t, iv_[i].end);
            ++i;
        }
        return t;
    }

    /**
     * Reserve the resource for @p occupancy cycles at the first gap at
     * or after @p now. Returns the grant (service start) cycle.
     */
    Cycle
    reserve(Cycle now, Cycle occupancy)
    {
        Cycle t = now;
        size_t i = 0;
        while (i < iv_.size() && iv_[i].end <= t)
            ++i;
        while (i < iv_.size()) {
            if (t + occupancy <= iv_[i].start)
                break;  // the gap before interval i fits
            t = std::max(t, iv_[i].end);
            ++i;
        }
        iv_.insert(iv_.begin() + static_cast<long>(i),
                   {t, t + occupancy});
        if (iv_.size() > cap_)
            iv_.erase(iv_.begin());  // forget the oldest reservation
        return t;
    }

    /** True iff some reservation covers cycle @p t. */
    bool
    busyAt(Cycle t) const
    {
        for (const Interval &iv : iv_) {
            if (iv.start <= t && t < iv.end)
                return true;
            if (iv.start > t)
                break;
        }
        return false;
    }

    void clear() { iv_.clear(); }

    size_t size() const { return iv_.size(); }

  private:
    struct Interval
    {
        Cycle start;
        Cycle end;
    };

    size_t cap_;
    std::vector<Interval> iv_;  // sorted by start
};

} // namespace diag

#endif // DIAG_COMMON_CALENDAR_HPP
