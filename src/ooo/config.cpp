#include "ooo/config.hpp"

namespace diag::ooo
{

OooConfig
OooConfig::baseline8()
{
    OooConfig c;
    c.name = "OoO-8w-1c";
    c.cores = 1;
    c.mem.l1i = {64 * 1024, 2, 64, 1, 2, 1};
    c.mem.l1d = {64 * 1024, 4, 64, 4, 4, 1};
    c.mem.l2 = {4 * 1024 * 1024, 8, 64, 8, 20, 2};
    c.mem.dram = {120, 8};
    return c;
}

OooConfig
OooConfig::multicore12()
{
    OooConfig c = baseline8();
    c.name = "OoO-8w-12c";
    c.cores = 12;
    return c;
}

} // namespace diag::ooo
