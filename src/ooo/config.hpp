/**
 * @file
 * Configuration of the out-of-order baseline CPU. Defaults follow the
 * paper's §7.1 baseline: an aggressive core that issues, dispatches,
 * and retires up to 8 instructions with a 2-cycle latency per frontend
 * stage, 64 KB L1s and a 4-8 MB unified L2, 12 cores for the
 * multi-threaded comparison, at the same 2 GHz clock as DiAG.
 */
#ifndef DIAG_OOO_CONFIG_HPP
#define DIAG_OOO_CONFIG_HPP

#include <string>

#include "mem/params.hpp"

namespace diag::ooo
{

/** All parameters of the OoO baseline. */
struct OooConfig
{
    std::string name = "OoO-8w";

    // ---- widths and windows ----
    unsigned width = 8;          //!< fetch/issue/commit width
    unsigned rob_entries = 256;
    unsigned iq_entries = 96;
    unsigned lsq_entries = 64;

    // ---- frontend ----
    Cycle decode_latency = 2;    //!< paper: 2 cycles per stage
    Cycle rename_latency = 2;
    Cycle dispatch_latency = 2;
    Cycle mispredict_penalty = 8; //!< resolve-to-refill bubble
    Cycle taken_branch_bubble = 1;
    Cycle btb_miss_penalty = 2;
    /**
     * Extra cycles on every register dependency edge. The paper's
     * baseline issues/dispatches with a 2-cycle latency per stage
     * (§7.1), so dependent instructions cannot issue back-to-back.
     */
    Cycle wakeup_delay = 1;

    // ---- predictor ----
    unsigned gshare_entries = 4096;  //!< 2-bit counters
    unsigned gshare_history = 12;    //!< global history bits
    unsigned btb_entries = 1024;
    unsigned ras_entries = 16;

    // ---- functional units ----
    unsigned alu_units = 6;
    unsigned mul_units = 2;
    unsigned div_units = 1;
    unsigned fpu_units = 4;
    unsigned fpdiv_units = 1;  // ARM-class cores carry one FP divider
    unsigned mem_ports = 2;

    // ---- store buffer (forwarding window) ----
    unsigned store_buffer_entries = 32;

    // ---- system ----
    unsigned cores = 1;
    double freq_ghz = 2.0;
    mem::MemParams mem;

    u64 max_insts = 500'000'000;
    /** Cycle ceiling: runs past this report a structured timeout
     *  (same contract as DiagConfig::max_cycles). */
    u64 max_cycles = 2'000'000'000;

    /** The paper's single-core baseline (64KB L1s, 4MB L2). */
    static OooConfig baseline8();

    /** The 12-core multithreaded baseline. */
    static OooConfig multicore12();
};

} // namespace diag::ooo

#endif // DIAG_OOO_CONFIG_HPP
