#include "ooo/processor.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace diag::ooo
{

OooProcessor::OooProcessor(OooConfig cfg)
    : cfg_(std::move(cfg)), mh_(cfg_.mem, cfg_.cores), stats_("ooo")
{
    for (unsigned c = 0; c < cfg_.cores; ++c)
        cores_.push_back(
            std::make_unique<OooCore>(cfg_, c, mh_, stats_));
}

sim::RunStats
OooProcessor::run(const Program &prog, u64 max_insts)
{
    return runThreads(prog, {ThreadSpec{prog.entry, {}}}, max_insts);
}

void
OooProcessor::beginRun(const Program &prog)
{
    // Stale-program guard: a reused processor handed a different
    // Program used to keep executing whichever image was loaded first.
    const bool stale =
        program_loaded_ && prog.fingerprint() != program_hash_;
    if (stale) {
        mem_ = SparseMemory{};
        warmed_ = false;
    }
    if (!program_loaded_ || stale)
        loadProgram(prog);
    // Per-run isolation: a second run() used to fold the first run's
    // counters into its RunStats and to inherit its decoded-inst,
    // FU-calendar, and cache state. Reset to the post-load state so
    // run-twice equals run-once; the first run skips all of this and
    // is bit-identical to a fresh processor's.
    if (ran_) {
        for (auto &core : cores_)
            core->reset();
        mh_.reset();
        stats_.clear(false);
        if (warmed_)
            warmCaches();
    }
    ran_ = true;
}

sim::RunStats
OooProcessor::runThreads(const Program &prog,
                         const std::vector<ThreadSpec> &threads,
                         u64 max_insts)
{
    beginRun(prog);
    results_.clear();
    sim::RunStats rs;
    rs.halted = true;
    Cycle finish = 0;
    // Later waves start on a core after its previous thread finished.
    std::vector<Cycle> core_free(cores_.size(), 0);
    for (unsigned t = 0; t < threads.size(); ++t) {
        const ThreadSpec &spec = threads[t];
        const unsigned c = t % cores_.size();
        OooCore &core = *cores_[c];
        const CoreResult cr = core.runThread(
            spec.entry, spec.init_regs, mem_, core_free[c], max_insts);
        core_free[c] = cr.finish;
        if (cr.faulted)
            warn("ooo thread %u faulted at pc 0x%x", t, cr.stop_pc);
        rs.halted = rs.halted && cr.halted;
        rs.timed_out = rs.timed_out || cr.timed_out;
        rs.faulted = rs.faulted || cr.faulted;
        if (rs.stop_reason.empty() && !cr.stop_reason.empty())
            rs.stop_reason = detail::vformat(
                "thread %u: %s", t, cr.stop_reason.c_str());
        rs.instructions += cr.retired;
        finish = std::max(finish, cr.finish);
        results_.push_back(cr);
    }
    rs.cycles = finish;
    rs.counters = stats_;
    rs.counters.set("threads", static_cast<double>(threads.size()));
    mh_.mergeStats(rs.counters);
    return rs;
}

u32
OooProcessor::finalReg(unsigned thread, isa::RegId reg) const
{
    panic_if(thread >= results_.size(), "no result for thread %u",
             thread);
    if (reg == isa::kRegZero)
        return 0;
    return results_[thread].regs[reg];
}

} // namespace diag::ooo
