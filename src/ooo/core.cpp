#include "ooo/core.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "isa/decoder.hpp"
#include "isa/exec.hpp"
#include "isa/latency.hpp"

namespace diag::ooo
{

using namespace diag::isa;

OooCore::OooCore(const OooConfig &cfg, unsigned core_id,
                 mem::MemHierarchy &mh, StatGroup &stats)
    : cfg_(cfg), core_id_(core_id), mh_(mh), stats_(stats),
      alu_(cfg.alu_units), mul_(cfg.mul_units), div_(cfg.div_units),
      fpu_(cfg.fpu_units), fpdiv_(cfg.fpdiv_units),
      memport_(cfg.mem_ports)
{}

const DecodedInst &
OooCore::decodeAt(Addr pc, SparseMemory &mem)
{
    auto it = icache_.find(pc);
    if (it != icache_.end())
        return it->second;
    return icache_.emplace(pc, decode(mem.read32(pc))).first->second;
}

OooCore::FuPool &
OooCore::poolFor(ExecClass cls)
{
    switch (cls) {
      case ExecClass::IntMul: return mul_;
      case ExecClass::IntDiv: return div_;
      case ExecClass::FpDiv:
      case ExecClass::FpSqrt: return fpdiv_;
      case ExecClass::FpAdd:
      case ExecClass::FpMul:
      case ExecClass::FpFma:
      case ExecClass::FpMisc:
      case ExecClass::FpCmp:
      case ExecClass::FpCvt: return fpu_;
      case ExecClass::Load:
      case ExecClass::Store: return memport_;
      default: return alu_;
    }
}

CoreResult
OooCore::runThread(Addr entry,
                   const std::vector<std::pair<RegId, u32>> &init_regs,
                   SparseMemory &mem, Cycle start_cycle, u64 max_insts)
{
    CoreResult res;
    u32 regs[kNumRegs] = {};
    Cycle reg_ready[kNumRegs] = {};
    for (auto &r : reg_ready)
        r = start_cycle;
    for (const auto &[reg, value] : init_regs) {
        panic_if(reg == 0 || reg >= kNumRegs, "bad init register %u",
                 reg);
        regs[reg] = value;
    }

    sim::StoreTracker tracker(mem, cfg_.store_buffer_entries);
    GsharePredictor gshare(cfg_.gshare_entries, cfg_.gshare_history);
    Btb btb(cfg_.btb_entries);
    Ras ras(cfg_.ras_entries);

    // Frontend state.
    Cycle fetch_cycle = start_cycle;
    unsigned fetch_in_cycle = 0;
    Cycle redirect_gate = start_cycle;
    Addr cur_line = ~Addr{0};
    // Window state.
    std::vector<Cycle> commit_hist(cfg_.rob_entries, 0);
    std::vector<Cycle> issue_hist(cfg_.iq_entries, 0);
    std::vector<Cycle> memop_hist(cfg_.lsq_entries, 0);
    u64 memop_count = 0;
    // Commit pacing.
    Cycle commit_cycle = start_cycle;
    unsigned commit_in_cycle = 0;
    Cycle last_commit = start_cycle;

    const Cycle fe_latency = cfg_.decode_latency + cfg_.rename_latency +
                             cfg_.dispatch_latency;
    Addr pc = entry;

    auto reg_value = [&](RegId r) -> u32 {
        return (r == kNoReg || r == kRegZero) ? 0 : regs[r];
    };
    auto reg_time = [&](RegId r) -> Cycle {
        return (r == kNoReg || r == kRegZero) ? 0 : reg_ready[r];
    };

    for (u64 i = 0; i < max_insts; ++i) {
        // Cooperative host cancellation / wall-clock watchdog (same
        // contract as Ring::runThread): flag every instruction, clock
        // on the first and every 64th.
        if (cancel_ &&
            (cancel_->cancelled() ||
             ((i & 63) == 0 && cancel_->expired()))) {
            res.timed_out = true;
            res.stop_pc = pc;
            res.finish = last_commit;
            res.stop_reason = detail::vformat("host watchdog: %s",
                                              cancel_->reason());
            break;
        }
        if (pc & 3u) {
            // A misaligned PC (jalr masks only bit 0) cannot be
            // fetched; trap instead of decoding garbage.
            res.faulted = true;
            res.stop_pc = pc;
            res.finish = last_commit;
            res.stop_reason =
                detail::vformat("trap: misaligned pc 0x%x", pc);
            break;
        }
        if (cfg_.max_cycles != 0 && last_commit > cfg_.max_cycles) {
            res.timed_out = true;
            res.stop_pc = pc;
            res.finish = last_commit;
            res.stop_reason = detail::vformat(
                "watchdog: cycle ceiling exceeded (%llu > max_cycles "
                "%llu)",
                static_cast<unsigned long long>(last_commit),
                static_cast<unsigned long long>(cfg_.max_cycles));
            break;
        }
        const DecodedInst &di = decodeAt(pc, mem);
        if (!di.valid()) {
            res.faulted = true;
            res.stop_pc = pc;
            res.finish = last_commit;
            res.stop_reason = detail::vformat(
                "trap: invalid encoding at pc 0x%x", pc);
            break;
        }

        // ---- fetch ----
        Cycle f = std::max(fetch_cycle, redirect_gate);
        const Addr line = alignDown(pc, 64);
        if (line != cur_line) {
            const mem::MemResult ir = mh_.fetchLine(core_id_, line, f);
            if (ir.level != mem::ServedBy::L1)
                f = std::max(f, ir.done);  // I-miss stalls the frontend
            cur_line = line;
        }
        if (f > fetch_cycle) {
            fetch_cycle = f;
            fetch_in_cycle = 0;
        }
        if (fetch_in_cycle >= cfg_.width) {
            fetch_cycle += 1;
            fetch_in_cycle = 0;
        }
        const Cycle fetched = fetch_cycle;
        ++fetch_in_cycle;
        stats_.inc("fetches");

        // ---- decode / rename / dispatch ----
        Cycle dispatch = fetched + fe_latency;
        // ROB entry must be free.
        if (i >= cfg_.rob_entries)
            dispatch = std::max(dispatch,
                                commit_hist[i % cfg_.rob_entries]);
        // IQ entry must be free.
        if (i >= cfg_.iq_entries)
            dispatch = std::max(dispatch,
                                issue_hist[i % cfg_.iq_entries] + 1);
        // LSQ entry must be free (memory ops only).
        if (di.isMem()) {
            if (memop_count >= cfg_.lsq_entries)
                dispatch = std::max(
                    dispatch,
                    memop_hist[memop_count % cfg_.lsq_entries]);
        }
        stats_.inc("decodes");
        stats_.inc("renames");
        stats_.inc("dispatches");

        // ---- operand readiness ----
        u32 c_val = 0;
        Cycle ops_ready =
            std::max(reg_time(di.rs1), reg_time(di.rs2));
        if (di.op == Op::SIMT_E) {
            // Scalar semantics (the baseline has no simt hardware).
            const auto ef = simtEndFields(di);
            const DecodedInst &start_inst =
                decodeAt(pc - ef.lOffset, mem);
            panic_if(start_inst.op != Op::SIMT_S,
                     "simt_e at 0x%x without simt_s", pc);
            const RegId r_step = simtStartFields(start_inst).rStep;
            ops_ready = std::max(ops_ready, reg_time(r_step));
            c_val = reg_value(r_step);
        } else if (di.rs3 != kNoReg) {
            ops_ready = std::max(ops_ready, reg_time(di.rs3));
            c_val = reg_value(di.rs3);
        }
        if (di.rs1 != kNoReg)
            stats_.inc("regfile_reads");
        if (di.rs2 != kNoReg)
            stats_.inc("regfile_reads");

        // ---- issue (wakeup/select) ----
        FuPool &pool = poolFor(di.cls());
        const Cycle want = std::max(dispatch + 1, ops_ready);
        const ExecClass cls = di.cls();
        const bool unpipelined = cls == ExecClass::IntDiv ||
                                 cls == ExecClass::FpDiv ||
                                 cls == ExecClass::FpSqrt;
        const Cycle lat = execLatency(cls);
        const Cycle issue = pool.acquire(want, unpipelined ? lat : 1);
        stats_.inc("issues");
        stats_.inc("iq_wakeups");

        // ---- execute ----
        Cycle complete;
        u32 value = 0;
        bool redirect = false;
        Addr target = 0;
        bool halt = false;

        if (di.isLoad()) {
            const Addr ea = effectiveAddr(di, reg_value(di.rs1));
            const Cycle addr_ready = issue + 1;
            const Cycle ld_issue =
                std::max(addr_ready, tracker.storeAddrGate());
            stats_.inc("lsq_searches");
            const Cycle fwd = tracker.forwardProbe(ea,
                                                   di.info().memBytes);
            if (fwd != kNeverCycle) {
                complete = std::max(ld_issue, fwd) + 1;
                stats_.inc("stl_forwards");
            } else {
                const mem::MemResult mr =
                    mh_.dataAccess(core_id_, ea, false, ld_issue);
                complete = mr.done;
                switch (mr.level) {
                  case mem::ServedBy::L1: stats_.inc("l1_loads"); break;
                  case mem::ServedBy::L2: stats_.inc("l2_loads"); break;
                  case mem::ServedBy::Dram:
                    stats_.inc("dram_loads");
                    break;
                }
            }
            value = loadExtend(di, mem.read(ea, di.info().memBytes));
            memop_hist[memop_count++ % cfg_.lsq_entries] = complete;
            stats_.inc("loads");
        } else if (di.isStore()) {
            const Addr ea = effectiveAddr(di, reg_value(di.rs1));
            complete = issue + 1;
            // Program-order functional update; the cache write happens
            // post-commit and only occupies the port. The address
            // resolves once rs1 is ready (split STA/STD), so younger
            // loads wait only on the address.
            const Cycle addr_ready =
                std::max(dispatch + 1, reg_time(di.rs1)) + 1;
            mem.write(ea, reg_value(di.rs2), di.info().memBytes);
            tracker.recordStore(ea, di.info().memBytes, addr_ready,
                                complete);
            mh_.dataAccess(core_id_, ea, true, complete);
            memop_hist[memop_count++ % cfg_.lsq_entries] = complete;
            stats_.inc("stores");
        } else {
            const ExecOut eo = execute(di, pc, reg_value(di.rs1),
                                       reg_value(di.rs2), c_val);
            complete = issue + lat;
            value = eo.value;
            halt = eo.halt;
            redirect = eo.redirect;
            target = eo.target;
            switch (cls) {
              case ExecClass::IntMul: stats_.inc("fu_mul"); break;
              case ExecClass::IntDiv: stats_.inc("fu_div"); break;
              default:
                stats_.inc(di.isFp() ? "fu_fpu" : "fu_int");
                break;
            }
        }

        // ---- destination write ----
        if (di.writesReg()) {
            regs[di.rd] = value;
            reg_ready[di.rd] = complete + cfg_.wakeup_delay;
            stats_.inc("regfile_writes");
        }

        // ---- control flow and prediction ----
        const Addr next_pc = redirect ? target : pc + 4;
        if (di.isBranch() || di.op == Op::SIMT_E) {
            stats_.inc("bp_lookups");
            const bool taken = redirect;
            const bool pred = gshare.predict(pc);
            gshare.update(pc, taken);
            if (pred != taken) {
                stats_.inc("mispredicts");
                redirect_gate = std::max(
                    redirect_gate, complete + cfg_.mispredict_penalty);
            } else if (taken) {
                fetch_cycle =
                    std::max(fetch_cycle,
                             fetched + cfg_.taken_branch_bubble);
                fetch_in_cycle = 0;
            }
            if (taken)
                cur_line = ~Addr{0};
        } else if (di.op == Op::JAL) {
            stats_.inc("btb_lookups");
            Addr btb_target = 0;
            if (btb.lookup(pc, btb_target)) {
                fetch_cycle = std::max(
                    fetch_cycle, fetched + cfg_.taken_branch_bubble);
            } else {
                // Target becomes known at decode.
                fetch_cycle = std::max(
                    fetch_cycle, fetched + cfg_.btb_miss_penalty);
                btb.insert(pc, target);
            }
            fetch_in_cycle = 0;
            cur_line = ~Addr{0};
            if (di.rd == 1)  // call: push the return address
                ras.push(pc + 4);
        } else if (di.op == Op::JALR) {
            const bool is_ret = di.rd == kNoReg && di.rs1 == 1;
            bool predicted = false;
            if (is_ret) {
                predicted = ras.pop() == target;
                stats_.inc("ras_lookups");
            } else {
                Addr btb_target = 0;
                predicted = btb.lookup(pc, btb_target) &&
                            btb_target == target;
                btb.insert(pc, target);
                stats_.inc("btb_lookups");
            }
            if (predicted) {
                fetch_cycle = std::max(
                    fetch_cycle, fetched + cfg_.taken_branch_bubble);
                fetch_in_cycle = 0;
            } else {
                stats_.inc("mispredicts");
                redirect_gate = std::max(
                    redirect_gate, complete + cfg_.mispredict_penalty);
            }
            cur_line = ~Addr{0};
            if (di.rd == 1)
                ras.push(pc + 4);
        }

        // ---- commit (in order, width per cycle) ----
        Cycle c = std::max(complete + 1, last_commit);
        if (c > commit_cycle) {
            commit_cycle = c;
            commit_in_cycle = 0;
        }
        if (commit_in_cycle >= cfg_.width) {
            commit_cycle += 1;
            commit_in_cycle = 0;
        }
        const Cycle commit = commit_cycle;
        ++commit_in_cycle;
        last_commit = commit;
        commit_hist[i % cfg_.rob_entries] = commit;
        issue_hist[i % cfg_.iq_entries] = issue;
        stats_.inc("commits");
        inform("ooo i=%llu pc=0x%x f=%llu d=%llu iss=%llu c=%llu "
               "commit=%llu",
               static_cast<unsigned long long>(i), pc,
               static_cast<unsigned long long>(fetched),
               static_cast<unsigned long long>(dispatch),
               static_cast<unsigned long long>(issue),
               static_cast<unsigned long long>(complete),
               static_cast<unsigned long long>(commit));
        ++res.retired;

        if (halt) {
            res.halted = true;
            res.stop_pc = pc;
            res.finish = commit;
            break;
        }
        pc = next_pc;
        res.finish = commit;
    }

    if (!res.halted && !res.faulted && !res.timed_out) {
        res.timed_out = true;
        res.stop_reason = detail::vformat(
            "instruction budget exhausted (%llu retired)",
            static_cast<unsigned long long>(res.retired));
    }
    for (unsigned r = 0; r < kNumRegs; ++r)
        res.regs[r] = regs[r];
    return res;
}

} // namespace diag::ooo
