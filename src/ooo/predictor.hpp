/**
 * @file
 * Branch prediction for the OoO baseline: gshare direction predictor,
 * branch target buffer, and return-address stack.
 */
#ifndef DIAG_OOO_PREDICTOR_HPP
#define DIAG_OOO_PREDICTOR_HPP

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace diag::ooo
{

/** Gshare 2-bit direction predictor. */
class GsharePredictor
{
  public:
    GsharePredictor(unsigned entries, unsigned history_bits);

    /** Predicted direction for the branch at @p pc. */
    bool predict(Addr pc) const;

    /** Train with the actual outcome and update global history. */
    void update(Addr pc, bool taken);

  private:
    u32 indexOf(Addr pc) const;

    std::vector<u8> table_;  //!< 2-bit saturating counters
    u32 mask_;
    u32 history_ = 0;
    u32 history_mask_;
};

/** Direct-mapped branch target buffer. */
class Btb
{
  public:
    explicit Btb(unsigned entries);

    /** True and sets @p target iff the BTB has a mapping for @p pc. */
    bool lookup(Addr pc, Addr &target) const;

    void insert(Addr pc, Addr target);

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<Entry> entries_;
    u32 mask_;
};

/** Return-address stack. */
class Ras
{
  public:
    explicit Ras(unsigned entries) : stack_(entries) {}

    void
    push(Addr ret)
    {
        stack_[top_] = ret;
        top_ = (top_ + 1) % stack_.size();
        if (depth_ < stack_.size())
            ++depth_;
    }

    /** Pop a predicted return address; 0 if empty. */
    Addr
    pop()
    {
        if (depth_ == 0)
            return 0;
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        --depth_;
        return stack_[top_];
    }

  private:
    std::vector<Addr> stack_;
    size_t top_ = 0;
    size_t depth_ = 0;
};

} // namespace diag::ooo

#endif // DIAG_OOO_PREDICTOR_HPP
