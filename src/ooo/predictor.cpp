#include "ooo/predictor.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace diag::ooo
{

GsharePredictor::GsharePredictor(unsigned entries, unsigned history_bits)
    : table_(entries, 1),  // weakly not-taken
      mask_(entries - 1),
      history_mask_((1u << history_bits) - 1)
{
    fatal_if(!isPow2(entries), "gshare entries must be a power of two");
}

u32
GsharePredictor::indexOf(Addr pc) const
{
    return ((pc >> 2) ^ history_) & mask_;
}

bool
GsharePredictor::predict(Addr pc) const
{
    return table_[indexOf(pc)] >= 2;
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    u8 &ctr = table_[indexOf(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
}

Btb::Btb(unsigned entries) : entries_(entries), mask_(entries - 1)
{
    fatal_if(!isPow2(entries), "BTB entries must be a power of two");
}

bool
Btb::lookup(Addr pc, Addr &target) const
{
    const Entry &e = entries_[(pc >> 2) & mask_];
    if (e.valid && e.tag == pc) {
        target = e.target;
        return true;
    }
    return false;
}

void
Btb::insert(Addr pc, Addr target)
{
    entries_[(pc >> 2) & mask_] = {pc, target, true};
}

} // namespace diag::ooo
