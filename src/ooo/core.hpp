/**
 * @file
 * One out-of-order core. The model is a one-pass timestamp simulator:
 * instructions are processed in program order (functional oracle) and
 * each dynamic instruction receives fetch / dispatch / issue /
 * complete / commit timestamps subject to frontend width and latency,
 * branch prediction, ROB/IQ/LSQ windows, functional-unit pools, and
 * the shared memory hierarchy. This style models the same constraints
 * a cycle-driven OoO model enforces, at much higher simulation speed.
 */
#ifndef DIAG_OOO_CORE_HPP
#define DIAG_OOO_CORE_HPP

#include <string>
#include <unordered_map>
#include <vector>

#include "common/calendar.hpp"
#include "common/stats.hpp"
#include "host/cancel.hpp"
#include "isa/inst.hpp"
#include "mem/hierarchy.hpp"
#include "ooo/config.hpp"
#include "ooo/predictor.hpp"
#include "sim/mem_order.hpp"

namespace diag::ooo
{

/** Outcome of running one software thread on a core. */
struct CoreResult
{
    Cycle finish = 0;
    u64 retired = 0;
    bool halted = false;
    bool faulted = false;
    bool timed_out = false;  //!< cycle ceiling or instruction budget
    Addr stop_pc = 0;
    std::string stop_reason; //!< one-line reason when not halted
    u32 regs[isa::kNumRegs] = {};
};

/** One 8-issue out-of-order core. */
class OooCore
{
  public:
    OooCore(const OooConfig &cfg, unsigned core_id,
            mem::MemHierarchy &mh, StatGroup &stats);

    /** Run a thread to EBREAK (or the instruction budget). */
    CoreResult runThread(Addr entry,
                         const std::vector<std::pair<isa::RegId, u32>>
                             &init_regs,
                         SparseMemory &mem, Cycle start_cycle,
                         u64 max_insts);

    /** Attach (or detach with nullptr) a cooperative cancellation
     *  token polled every 64 instructions; a fired token stops the
     *  run as a structured timeout (same contract as DiAG's rings). */
    void setCancelToken(const host::CancelToken *t) { cancel_ = t; }

    /** Reset per-run state: the decoded-instruction cache and every
     *  functional-unit occupancy calendar (predictor state is local to
     *  runThread and needs no reset). */
    void
    reset()
    {
        icache_.clear();
        for (FuPool *p : {&alu_, &mul_, &div_, &fpu_, &fpdiv_,
                          &memport_})
            for (BusyCalendar &u : p->units)
                u.clear();
    }

  private:
    /**
     * Functional-unit pool. Each unit keeps an occupancy calendar so
     * that instructions whose operands become ready early can slot
     * into gaps before later reservations (the timestamp model
     * processes instructions in program order, but issue is not
     * monotonic in time).
     */
    struct FuPool
    {
        std::vector<BusyCalendar> units;

        explicit FuPool(unsigned n) : units(n) {}

        /** Acquire the unit giving the earliest grant >= @p when. */
        Cycle
        acquire(Cycle when, Cycle occupancy)
        {
            size_t best = 0;
            Cycle best_grant = units[0].probe(when, occupancy);
            for (size_t i = 1; i < units.size(); ++i) {
                const Cycle g = units[i].probe(when, occupancy);
                if (g < best_grant) {
                    best_grant = g;
                    best = i;
                }
            }
            return units[best].reserve(when, occupancy);
        }
    };

    const isa::DecodedInst &decodeAt(Addr pc, SparseMemory &mem);

    FuPool &poolFor(isa::ExecClass cls);

    const OooConfig &cfg_;
    unsigned core_id_;
    mem::MemHierarchy &mh_;
    StatGroup &stats_;
    std::unordered_map<Addr, isa::DecodedInst> icache_;
    FuPool alu_, mul_, div_, fpu_, fpdiv_, memport_;
    const host::CancelToken *cancel_ = nullptr; //!< null = no watchdog
};

} // namespace diag::ooo

#endif // DIAG_OOO_CORE_HPP
