/**
 * @file
 * OooProcessor: the multicore out-of-order baseline (paper §7.1's
 * 12-core, 8-issue configuration). API mirrors DiagProcessor so the
 * harness can drive both engines uniformly.
 */
#ifndef DIAG_OOO_PROCESSOR_HPP
#define DIAG_OOO_PROCESSOR_HPP

#include <memory>
#include <vector>

#include "asm/program.hpp"
#include "ooo/core.hpp"
#include "sim/run_stats.hpp"

namespace diag::ooo
{

/** Initial state for one software thread (same shape as DiAG's). */
struct ThreadSpec
{
    Addr entry = 0;
    std::vector<std::pair<isa::RegId, u32>> init_regs;
};

/** The full baseline chip: N cores over private L1s and a shared L2. */
class OooProcessor
{
  public:
    explicit OooProcessor(OooConfig cfg);

    SparseMemory &memory() { return mem_; }
    const OooConfig &config() const { return cfg_; }

    /** Load the image now so inputs can be initialized before run().
     *  Records the program's fingerprint so a later run() with a
     *  *different* Program reloads instead of executing a stale
     *  image (same contract as DiagProcessor::loadProgram). */
    void
    loadProgram(const Program &prog)
    {
        prog.loadInto(mem_);
        program_loaded_ = true;
        program_hash_ = prog.fingerprint();
    }

    /** Pre-install the memory image into the shared L2 (steady-state
     *  warmup; identical methodology to DiagProcessor::warmCaches). */
    void
    warmCaches()
    {
        mem_.forEachPage([&](Addr base) {
            for (Addr off = 0; off < SparseMemory::kPageSize; off += 64)
                mh_.warmLine(base + off);
        });
        warmed_ = true;
    }

    /** Attach (or detach with nullptr) a cooperative cancellation
     *  token; forwards to every core (same contract as DiAG). */
    void
    attachCancel(const host::CancelToken *t)
    {
        for (auto &core : cores_)
            core->setCancelToken(t);
    }

    /** Run single-threaded on core 0. */
    sim::RunStats run(const Program &prog, u64 max_insts = 500'000'000);

    /** Run one thread per spec; thread t executes on core t % cores. */
    sim::RunStats runThreads(const Program &prog,
                             const std::vector<ThreadSpec> &threads,
                             u64 max_insts = 500'000'000);

    /** Architectural register of thread @p t after a run. */
    u32 finalReg(unsigned thread, isa::RegId reg) const;

    const StatGroup &stats() const { return stats_; }

  private:
    /**
     * Per-run setup, mirroring DiagProcessor::beginRun: reload when
     * handed a different program, and — on every run after the first —
     * reset cores, hierarchy, and counters (re-warming if the caller
     * warmed) so each run() reports per-run deltas. The first run is
     * left untouched and bit-identical to a fresh processor's.
     */
    void beginRun(const Program &prog);

    OooConfig cfg_;
    SparseMemory mem_;
    mem::MemHierarchy mh_;
    StatGroup stats_;
    std::vector<std::unique_ptr<OooCore>> cores_;
    std::vector<CoreResult> results_;
    bool program_loaded_ = false;
    bool warmed_ = false;  //!< warmCaches() called (re-warm each run)
    bool ran_ = false;     //!< a run completed (reset before the next)
    u64 program_hash_ = 0; //!< fingerprint of the loaded program
};

} // namespace diag::ooo

#endif // DIAG_OOO_PROCESSOR_HPP
