#include "isa/decoder.hpp"

#include "common/bits.hpp"

namespace diag::isa
{

namespace
{

/** RISC-V major opcode field (bits [6:0]). */
enum MajorOpcode : u32
{
    OPC_LOAD = 0x03,
    OPC_LOAD_FP = 0x07,
    OPC_CUSTOM0 = 0x0b,  // DiAG simt_s
    OPC_MISC_MEM = 0x0f,
    OPC_OP_IMM = 0x13,
    OPC_AUIPC = 0x17,
    OPC_STORE = 0x23,
    OPC_STORE_FP = 0x27,
    OPC_CUSTOM1 = 0x2b,  // DiAG simt_e
    OPC_OP = 0x33,
    OPC_LUI = 0x37,
    OPC_MADD = 0x43,
    OPC_MSUB = 0x47,
    OPC_NMSUB = 0x4b,
    OPC_NMADD = 0x4f,
    OPC_OP_FP = 0x53,
    OPC_BRANCH = 0x63,
    OPC_JALR = 0x67,
    OPC_JAL = 0x6f,
    OPC_SYSTEM = 0x73,
};

i32 immI(u32 raw) { return static_cast<i32>(sext(bits(raw, 31, 20), 12)); }

i32
immS(u32 raw)
{
    const u32 v = (bits(raw, 31, 25) << 5) | bits(raw, 11, 7);
    return static_cast<i32>(sext(v, 12));
}

i32
immB(u32 raw)
{
    const u32 v = (bit(raw, 31) << 12) | (bit(raw, 7) << 11) |
                  (bits(raw, 30, 25) << 5) | (bits(raw, 11, 8) << 1);
    return static_cast<i32>(sext(v, 13));
}

i32 immU(u32 raw) { return static_cast<i32>(raw & 0xfffff000u); }

i32
immJ(u32 raw)
{
    const u32 v = (bit(raw, 31) << 20) | (bits(raw, 19, 12) << 12) |
                  (bit(raw, 20) << 11) | (bits(raw, 30, 21) << 1);
    return static_cast<i32>(sext(v, 21));
}

RegId rdOf(u32 raw) { return static_cast<RegId>(bits(raw, 11, 7)); }
RegId rs1Of(u32 raw) { return static_cast<RegId>(bits(raw, 19, 15)); }
RegId rs2Of(u32 raw) { return static_cast<RegId>(bits(raw, 24, 20)); }
RegId rs3Of(u32 raw) { return static_cast<RegId>(bits(raw, 31, 27)); }

/** Writes to x0 are architectural no-ops; drop the destination. */
RegId
intDest(u32 raw)
{
    const RegId rd = rdOf(raw);
    return rd == 0 ? kNoReg : rd;
}

DecodedInst
makeInvalid(u32 raw)
{
    DecodedInst di;
    di.raw = raw;
    di.op = Op::INVALID;
    return di;
}

DecodedInst
decodeOpImm(u32 raw)
{
    DecodedInst di;
    di.raw = raw;
    di.rd = intDest(raw);
    di.rs1 = rs1Of(raw);
    di.imm = immI(raw);
    const u32 f3 = bits(raw, 14, 12);
    const u32 f7 = bits(raw, 31, 25);
    switch (f3) {
      case 0: di.op = Op::ADDI; break;
      case 1:
        if (f7 != 0)
            return makeInvalid(raw);
        di.op = Op::SLLI;
        di.imm = static_cast<i32>(bits(raw, 24, 20));
        break;
      case 2: di.op = Op::SLTI; break;
      case 3: di.op = Op::SLTIU; break;
      case 4: di.op = Op::XORI; break;
      case 5:
        di.imm = static_cast<i32>(bits(raw, 24, 20));
        if (f7 == 0x00) {
            di.op = Op::SRLI;
        } else if (f7 == 0x20) {
            di.op = Op::SRAI;
        } else {
            return makeInvalid(raw);
        }
        break;
      case 6: di.op = Op::ORI; break;
      case 7: di.op = Op::ANDI; break;
      default: return makeInvalid(raw);
    }
    return di;
}

DecodedInst
decodeOp(u32 raw)
{
    DecodedInst di;
    di.raw = raw;
    di.rd = intDest(raw);
    di.rs1 = rs1Of(raw);
    di.rs2 = rs2Of(raw);
    const u32 f3 = bits(raw, 14, 12);
    const u32 f7 = bits(raw, 31, 25);
    if (f7 == 0x01) {  // RV32M
        static constexpr Op kMulOps[8] = {Op::MUL, Op::MULH, Op::MULHSU,
                                          Op::MULHU, Op::DIV, Op::DIVU,
                                          Op::REM, Op::REMU};
        di.op = kMulOps[f3];
        return di;
    }
    switch (f3) {
      case 0:
        if (f7 == 0x00) {
            di.op = Op::ADD;
        } else if (f7 == 0x20) {
            di.op = Op::SUB;
        } else {
            return makeInvalid(raw);
        }
        break;
      case 1: di.op = Op::SLL; break;
      case 2: di.op = Op::SLT; break;
      case 3: di.op = Op::SLTU; break;
      case 4: di.op = Op::XOR; break;
      case 5:
        if (f7 == 0x00) {
            di.op = Op::SRL;
        } else if (f7 == 0x20) {
            di.op = Op::SRA;
        } else {
            return makeInvalid(raw);
        }
        break;
      case 6: di.op = Op::OR; break;
      case 7: di.op = Op::AND; break;
      default: return makeInvalid(raw);
    }
    if (f3 != 0 && f3 != 5 && f7 != 0)
        return makeInvalid(raw);
    return di;
}

DecodedInst
decodeOpFp(u32 raw)
{
    DecodedInst di;
    di.raw = raw;
    const u32 f7 = bits(raw, 31, 25);
    const u32 f3 = bits(raw, 14, 12);
    const u32 rs2n = bits(raw, 24, 20);
    // Defaults for the common fp-in / fp-out shape.
    di.rd = fpReg(rdOf(raw));
    di.rs1 = fpReg(rs1Of(raw));
    di.rs2 = fpReg(rs2Of(raw));
    switch (f7) {
      case 0x00: di.op = Op::FADD_S; break;
      case 0x04: di.op = Op::FSUB_S; break;
      case 0x08: di.op = Op::FMUL_S; break;
      case 0x0c: di.op = Op::FDIV_S; break;
      case 0x2c:
        if (rs2n != 0)
            return makeInvalid(raw);
        di.op = Op::FSQRT_S;
        di.rs2 = kNoReg;
        break;
      case 0x10:
        switch (f3) {
          case 0: di.op = Op::FSGNJ_S; break;
          case 1: di.op = Op::FSGNJN_S; break;
          case 2: di.op = Op::FSGNJX_S; break;
          default: return makeInvalid(raw);
        }
        break;
      case 0x14:
        switch (f3) {
          case 0: di.op = Op::FMIN_S; break;
          case 1: di.op = Op::FMAX_S; break;
          default: return makeInvalid(raw);
        }
        break;
      case 0x60:
        di.rd = intDest(raw);
        di.rs2 = kNoReg;
        if (rs2n == 0) {
            di.op = Op::FCVT_W_S;
        } else if (rs2n == 1) {
            di.op = Op::FCVT_WU_S;
        } else {
            return makeInvalid(raw);
        }
        break;
      case 0x68:
        di.rs1 = rs1Of(raw);
        di.rs2 = kNoReg;
        if (rs2n == 0) {
            di.op = Op::FCVT_S_W;
        } else if (rs2n == 1) {
            di.op = Op::FCVT_S_WU;
        } else {
            return makeInvalid(raw);
        }
        break;
      case 0x70:
        di.rd = intDest(raw);
        di.rs2 = kNoReg;
        if (f3 == 0) {
            di.op = Op::FMV_X_W;
        } else if (f3 == 1) {
            di.op = Op::FCLASS_S;
        } else {
            return makeInvalid(raw);
        }
        break;
      case 0x78:
        if (f3 != 0)
            return makeInvalid(raw);
        di.op = Op::FMV_W_X;
        di.rs1 = rs1Of(raw);
        di.rs2 = kNoReg;
        break;
      case 0x50:
        di.rd = intDest(raw);
        switch (f3) {
          case 0: di.op = Op::FLE_S; break;
          case 1: di.op = Op::FLT_S; break;
          case 2: di.op = Op::FEQ_S; break;
          default: return makeInvalid(raw);
        }
        break;
      default:
        return makeInvalid(raw);
    }
    return di;
}

DecodedInst
decodeFma(u32 raw, Op op)
{
    DecodedInst di;
    di.raw = raw;
    di.op = op;
    di.rd = fpReg(rdOf(raw));
    di.rs1 = fpReg(rs1Of(raw));
    di.rs2 = fpReg(rs2Of(raw));
    di.rs3 = fpReg(rs3Of(raw));
    if (bits(raw, 26, 25) != 0)  // fmt must be single precision
        return makeInvalid(raw);
    return di;
}

} // namespace

DecodedInst
decode(u32 raw)
{
    DecodedInst di;
    di.raw = raw;
    switch (raw & 0x7f) {
      case OPC_LUI:
        di.op = Op::LUI;
        di.rd = intDest(raw);
        di.imm = immU(raw);
        return di;
      case OPC_AUIPC:
        di.op = Op::AUIPC;
        di.rd = intDest(raw);
        di.imm = immU(raw);
        return di;
      case OPC_JAL:
        di.op = Op::JAL;
        di.rd = intDest(raw);
        di.imm = immJ(raw);
        return di;
      case OPC_JALR:
        if (bits(raw, 14, 12) != 0)
            return makeInvalid(raw);
        di.op = Op::JALR;
        di.rd = intDest(raw);
        di.rs1 = rs1Of(raw);
        di.imm = immI(raw);
        return di;
      case OPC_BRANCH: {
        static constexpr Op kBrOps[8] = {Op::BEQ, Op::BNE, Op::INVALID,
                                         Op::INVALID, Op::BLT, Op::BGE,
                                         Op::BLTU, Op::BGEU};
        di.op = kBrOps[bits(raw, 14, 12)];
        if (di.op == Op::INVALID)
            return makeInvalid(raw);
        di.rs1 = rs1Of(raw);
        di.rs2 = rs2Of(raw);
        di.imm = immB(raw);
        return di;
      }
      case OPC_LOAD: {
        static constexpr Op kLdOps[8] = {Op::LB, Op::LH, Op::LW,
                                         Op::INVALID, Op::LBU, Op::LHU,
                                         Op::INVALID, Op::INVALID};
        di.op = kLdOps[bits(raw, 14, 12)];
        if (di.op == Op::INVALID)
            return makeInvalid(raw);
        di.rd = intDest(raw);
        di.rs1 = rs1Of(raw);
        di.imm = immI(raw);
        return di;
      }
      case OPC_STORE: {
        static constexpr Op kStOps[8] = {Op::SB, Op::SH, Op::SW,
                                         Op::INVALID, Op::INVALID,
                                         Op::INVALID, Op::INVALID,
                                         Op::INVALID};
        di.op = kStOps[bits(raw, 14, 12)];
        if (di.op == Op::INVALID)
            return makeInvalid(raw);
        di.rs1 = rs1Of(raw);
        di.rs2 = rs2Of(raw);
        di.imm = immS(raw);
        return di;
      }
      case OPC_LOAD_FP:
        if (bits(raw, 14, 12) != 2)
            return makeInvalid(raw);
        di.op = Op::FLW;
        di.rd = fpReg(rdOf(raw));
        di.rs1 = rs1Of(raw);
        di.imm = immI(raw);
        return di;
      case OPC_STORE_FP:
        if (bits(raw, 14, 12) != 2)
            return makeInvalid(raw);
        di.op = Op::FSW;
        di.rs1 = rs1Of(raw);
        di.rs2 = fpReg(rs2Of(raw));
        di.imm = immS(raw);
        return di;
      case OPC_OP_IMM:
        return decodeOpImm(raw);
      case OPC_OP:
        return decodeOp(raw);
      case OPC_OP_FP:
        return decodeOpFp(raw);
      case OPC_MADD:
        return decodeFma(raw, Op::FMADD_S);
      case OPC_MSUB:
        return decodeFma(raw, Op::FMSUB_S);
      case OPC_NMSUB:
        return decodeFma(raw, Op::FNMSUB_S);
      case OPC_NMADD:
        return decodeFma(raw, Op::FNMADD_S);
      case OPC_MISC_MEM:
        di.op = Op::FENCE;
        return di;
      case OPC_SYSTEM:
        if (raw == 0x00000073) {
            di.op = Op::ECALL;
        } else if (raw == 0x00100073) {
            di.op = Op::EBREAK;
        } else {
            return makeInvalid(raw);
        }
        return di;
      case OPC_CUSTOM0:
        // simt_s rc(rd), r_step(rs1), r_end(rs2), interval(funct7).
        // simt_s does not write any architectural register; its operand
        // fields are recovered from `raw` via simtStartFields().
        if (bits(raw, 14, 12) != 0)
            return makeInvalid(raw);
        di.op = Op::SIMT_S;
        di.rs1 = rs1Of(raw);
        di.rs2 = rs2Of(raw);
        return di;
      case OPC_CUSTOM1:
        // simt_e rc(rd), r_end(rs1), l_offset(imm12). Reads and writes
        // rc and redirects the PC, so rc also appears as rs2.
        if (bits(raw, 14, 12) != 0)
            return makeInvalid(raw);
        di.op = Op::SIMT_E;
        di.rd = intDest(raw);
        di.rs1 = rs1Of(raw);
        di.rs2 = rdOf(raw) == 0 ? kNoReg : rdOf(raw);
        // l_offset is an unsigned backward byte distance, not a signed
        // I-type immediate.
        di.imm = static_cast<i32>(bits(raw, 31, 20));
        return di;
      default:
        return makeInvalid(raw);
    }
}

} // namespace diag::isa
