/**
 * @file
 * Instruction disassembler for traces, error messages, and tests.
 */
#ifndef DIAG_ISA_DISASM_HPP
#define DIAG_ISA_DISASM_HPP

#include <string>

#include "isa/inst.hpp"

namespace diag::isa
{

/** Name of a unified-space register ("x5", "f12", or "-"). */
std::string regName(RegId reg);

/** Render @p di as assembler text; @p pc resolves branch/jump targets. */
std::string disassemble(const DecodedInst &di, u32 pc = 0);

} // namespace diag::isa

#endif // DIAG_ISA_DISASM_HPP
