#include "isa/encoder.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace diag::isa::enc
{

u32
rType(u32 opc, u32 rd, u32 f3, u32 rs1, u32 rs2, u32 f7)
{
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
           (rd << 7) | opc;
}

u32
iType(u32 opc, u32 rd, u32 f3, u32 rs1, i32 imm)
{
    panic_if(imm < -2048 || imm > 2047, "I-type immediate %d out of range",
             imm);
    return (static_cast<u32>(imm & 0xfff) << 20) | (rs1 << 15) |
           (f3 << 12) | (rd << 7) | opc;
}

u32
sType(u32 opc, u32 f3, u32 rs1, u32 rs2, i32 imm)
{
    panic_if(imm < -2048 || imm > 2047, "S-type immediate %d out of range",
             imm);
    const u32 u = static_cast<u32>(imm) & 0xfff;
    return (bits(u, 11, 5) << 25) | (rs2 << 20) | (rs1 << 15) |
           (f3 << 12) | (bits(u, 4, 0) << 7) | opc;
}

u32
bType(u32 opc, u32 f3, u32 rs1, u32 rs2, i32 imm)
{
    panic_if(imm < -4096 || imm > 4095 || (imm & 1),
             "B-type offset %d out of range or misaligned", imm);
    const u32 u = static_cast<u32>(imm) & 0x1fff;
    return (bit(u, 12) << 31) | (bits(u, 10, 5) << 25) | (rs2 << 20) |
           (rs1 << 15) | (f3 << 12) | (bits(u, 4, 1) << 8) |
           (bit(u, 11) << 7) | opc;
}

u32
uType(u32 opc, u32 rd, i32 imm)
{
    return (static_cast<u32>(imm) & 0xfffff000u) | (rd << 7) | opc;
}

u32
jType(u32 opc, u32 rd, i32 imm)
{
    panic_if(imm < -(1 << 20) || imm >= (1 << 20) || (imm & 1),
             "J-type offset %d out of range or misaligned", imm);
    const u32 u = static_cast<u32>(imm) & 0x1fffff;
    return (bit(u, 20) << 31) | (bits(u, 10, 1) << 21) |
           (bit(u, 11) << 20) | (bits(u, 19, 12) << 12) | (rd << 7) | opc;
}

u32
r4Type(u32 opc, u32 rd, u32 f3, u32 rs1, u32 rs2, u32 fmt, u32 rs3)
{
    return (rs3 << 27) | (fmt << 25) | (rs2 << 20) | (rs1 << 15) |
           (f3 << 12) | (rd << 7) | opc;
}

u32
simtS(u32 rc, u32 r_step, u32 r_end, u32 interval)
{
    panic_if(interval > 127, "simt_s interval %u exceeds 7 bits", interval);
    return rType(0x0b, rc, 0, r_step, r_end, interval);
}

u32
simtE(u32 rc, u32 r_end, u32 l_offset)
{
    panic_if(l_offset > 4095, "simt_e l_offset %u exceeds 12 bits",
             l_offset);
    return (l_offset << 20) | (r_end << 15) | (0u << 12) | (rc << 7) |
           0x2b;
}

} // namespace diag::isa::enc
