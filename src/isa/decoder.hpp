/**
 * @file
 * Binary decoder for RV32IMF plus the DiAG simt_s/simt_e extensions.
 */
#ifndef DIAG_ISA_DECODER_HPP
#define DIAG_ISA_DECODER_HPP

#include "isa/inst.hpp"

namespace diag::isa
{

/**
 * Decode one 32-bit instruction word. Undecodable words yield a
 * DecodedInst with op == Op::INVALID rather than an error, so execution
 * engines can fault precisely when (and only when) the word is reached.
 */
DecodedInst decode(u32 raw);

} // namespace diag::isa

#endif // DIAG_ISA_DECODER_HPP
