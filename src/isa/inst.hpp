/**
 * @file
 * DecodedInst: the common decoded-instruction record consumed by the
 * golden simulator, the DiAG model, and the out-of-order baseline.
 */
#ifndef DIAG_ISA_INST_HPP
#define DIAG_ISA_INST_HPP

#include "isa/opcodes.hpp"

namespace diag::isa
{

/**
 * One decoded instruction. Register operands use the unified register
 * space (integer x0..x31 at 0..31, FP f0..f31 at 32..63); absent
 * operands are kNoReg. Writes to x0 are represented with rd == kNoReg so
 * downstream models never have to special-case the zero register.
 */
struct DecodedInst
{
    u32 raw = 0;          //!< original 32-bit encoding
    Op op = Op::INVALID;  //!< decoded opcode
    RegId rd = kNoReg;    //!< destination (unified space), kNoReg if none
    RegId rs1 = kNoReg;   //!< first source, kNoReg if unused
    RegId rs2 = kNoReg;   //!< second source, kNoReg if unused
    RegId rs3 = kNoReg;   //!< third source (FMA family only)
    i32 imm = 0;          //!< sign-extended immediate, 0 if none

    /** Static metadata for the opcode. */
    const OpInfo &info() const { return opInfo(op); }
    /** Execution class (latency / functional unit). */
    ExecClass cls() const { return info().cls; }

    bool isLoad() const { return cls() == ExecClass::Load; }
    bool isStore() const { return cls() == ExecClass::Store; }
    bool isMem() const { return isLoad() || isStore(); }
    /** Conditional branch. */
    bool isBranch() const { return cls() == ExecClass::Branch; }
    /** Unconditional jump (JAL/JALR). */
    bool isJump() const { return cls() == ExecClass::Jump; }
    /** Any instruction that can redirect the PC. */
    bool
    isControl() const
    {
        return isBranch() || isJump() || op == Op::SIMT_E ||
               op == Op::EBREAK || op == Op::ECALL;
    }
    /** Control transfer whose target depends on a register (JALR). */
    bool isIndirect() const { return op == Op::JALR; }
    bool isSimt() const { return cls() == ExecClass::Simt; }
    /** Uses the floating-point unit. */
    bool isFp() const { return isFpClass(cls()); }
    bool writesReg() const { return rd != kNoReg; }

    bool valid() const { return op != Op::INVALID; }
};

/**
 * Operand fields of the DiAG simt_s instruction (ASPLOS'21 §5.4),
 * recovered from a DecodedInst whose op is SIMT_S:
 *   rd  = rc (loop control register)
 *   rs1 = r_step (step value register)
 *   rs2 = r_end (loop bound register)
 *   imm = thread launch interval in cycles
 */
struct SimtStartFields
{
    RegId rc;
    RegId rStep;
    RegId rEnd;
    u32 interval;
};

/** Decode the simt_s operand fields. Only valid for Op::SIMT_S. */
SimtStartFields simtStartFields(const DecodedInst &di);

/**
 * Operand fields of simt_e:
 *   rd  = rc, rs1 = r_end,
 *   imm = l_offset: positive byte distance back to the matching simt_s.
 */
struct SimtEndFields
{
    RegId rc;
    RegId rEnd;
    u32 lOffset;
};

/** Decode the simt_e operand fields. Only valid for Op::SIMT_E. */
SimtEndFields simtEndFields(const DecodedInst &di);

} // namespace diag::isa

#endif // DIAG_ISA_INST_HPP
