/**
 * @file
 * Pure (memory-free) instruction semantics shared by the golden
 * simulator, the DiAG model, and the out-of-order baseline. Keeping one
 * implementation guarantees all engines agree bit-for-bit, which the
 * differential tests rely on.
 */
#ifndef DIAG_ISA_EXEC_HPP
#define DIAG_ISA_EXEC_HPP

#include "isa/inst.hpp"

namespace diag::isa
{

/** Result of executing one non-memory instruction. */
struct ExecOut
{
    u32 value = 0;         //!< destination register value (if any)
    bool redirect = false; //!< PC redirected (taken branch/jump/simt_e)
    u32 target = 0;        //!< redirect target, valid iff redirect
    bool halt = false;     //!< EBREAK/ECALL: stop execution
};

/**
 * Execute @p di at @p pc with already-read operand values. FP operands
 * and results are raw IEEE-754 single bit patterns.
 *
 * @param a value of rs1 (or 0 if absent)
 * @param b value of rs2 (or 0 if absent)
 * @param c value of rs3; for SIMT_E this carries the step value read
 *          from the matching simt_s's r_step register
 *
 * Loads/stores must not be passed here: address generation uses
 * effectiveAddr() and data handling is the engine's responsibility.
 */
ExecOut execute(const DecodedInst &di, u32 pc, u32 a, u32 b, u32 c = 0);

/** Effective address of a load/store given the rs1 value. */
u32 effectiveAddr(const DecodedInst &di, u32 rs1_val);

/**
 * Apply sub-word extraction semantics to a load: @p raw holds the
 * memBytes() bytes at the effective address, zero-extended to 32 bits;
 * returns the architectural destination value.
 */
u32 loadExtend(const DecodedInst &di, u32 raw);

/** Canonical RISC-V quiet NaN, produced by all FP ops that make NaNs. */
inline constexpr u32 kCanonicalNan = 0x7fc00000u;

} // namespace diag::isa

#endif // DIAG_ISA_EXEC_HPP
