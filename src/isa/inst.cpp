#include "isa/inst.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace diag::isa
{

SimtStartFields
simtStartFields(const DecodedInst &di)
{
    panic_if(di.op != Op::SIMT_S, "simtStartFields on %s", opName(di.op));
    SimtStartFields f;
    f.rc = static_cast<RegId>(bits(di.raw, 11, 7));
    f.rStep = static_cast<RegId>(bits(di.raw, 19, 15));
    f.rEnd = static_cast<RegId>(bits(di.raw, 24, 20));
    f.interval = bits(di.raw, 31, 25);
    return f;
}

SimtEndFields
simtEndFields(const DecodedInst &di)
{
    panic_if(di.op != Op::SIMT_E, "simtEndFields on %s", opName(di.op));
    SimtEndFields f;
    f.rc = static_cast<RegId>(bits(di.raw, 11, 7));
    f.rEnd = static_cast<RegId>(bits(di.raw, 19, 15));
    f.lOffset = bits(di.raw, 31, 20);
    return f;
}

} // namespace diag::isa
