/**
 * @file
 * Execution latencies per functional-unit class. Both microarchitectural
 * models use the same table so performance differences come from the
 * architectures, never from inconsistent operation costs (the paper's
 * RTL models FP operations as fixed delays the same way, §7.1).
 */
#ifndef DIAG_ISA_LATENCY_HPP
#define DIAG_ISA_LATENCY_HPP

#include "isa/inst.hpp"

namespace diag::isa
{

/**
 * Execute-stage latency in cycles for @p cls. Loads return the
 * address-generation latency only; memory time is added by the memory
 * subsystem of each model.
 */
Cycle execLatency(ExecClass cls);

/** Convenience overload. */
inline Cycle execLatency(const DecodedInst &di)
{
    return execLatency(di.cls());
}

} // namespace diag::isa

#endif // DIAG_ISA_LATENCY_HPP
