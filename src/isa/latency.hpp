/**
 * @file
 * Execution latencies per functional-unit class. Both microarchitectural
 * models use the same table so performance differences come from the
 * architectures, never from inconsistent operation costs (the paper's
 * RTL models FP operations as fixed delays the same way, §7.1).
 */
#ifndef DIAG_ISA_LATENCY_HPP
#define DIAG_ISA_LATENCY_HPP

#include "isa/inst.hpp"

namespace diag::isa
{

/**
 * Execute-stage latency in cycles for @p cls. Loads return the
 * address-generation latency only; memory time is added by the memory
 * subsystem of each model. Inline and branch-free (a constexpr table)
 * — called once per simulated instruction in every engine.
 */
Cycle
constexpr execLatency(ExecClass cls)
{
    constexpr Cycle kLatency[] = {
        1,   // IntAlu
        3,   // IntMul
        12,  // IntDiv
        4,   // FpAdd
        4,   // FpMul
        12,  // FpDiv
        16,  // FpSqrt
        5,   // FpFma
        1,   // FpMisc
        2,   // FpCmp
        2,   // FpCvt
        1,   // Load (address generation only)
        1,   // Store
        1,   // Branch
        1,   // Jump
        1,   // System
        1,   // Simt
        1,   // Invalid
    };
    static_assert(sizeof(kLatency) / sizeof(kLatency[0]) ==
                      static_cast<unsigned>(ExecClass::Invalid) + 1,
                  "latency table out of sync with ExecClass");
    return kLatency[static_cast<unsigned>(cls)];
}

/** Convenience overload. */
inline Cycle execLatency(const DecodedInst &di)
{
    return execLatency(di.cls());
}

} // namespace diag::isa

#endif // DIAG_ISA_LATENCY_HPP
