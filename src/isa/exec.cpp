#include "isa/exec.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace diag::isa
{

namespace
{

float asF(u32 bits) { return std::bit_cast<float>(bits); }

/** Box a float result, canonicalizing NaNs per the RISC-V F spec. */
u32
asU(float f)
{
    const u32 b = std::bit_cast<u32>(f);
    if (std::isnan(f))
        return kCanonicalNan;
    return b;
}

bool isSNan(u32 b) { return (b & 0x7fc00000u) == 0x7f800000u &&
                            (b & 0x003fffffu) != 0; }

u32
fpMinMax(u32 a, u32 b, bool take_max)
{
    const bool a_nan = std::isnan(asF(a));
    const bool b_nan = std::isnan(asF(b));
    if (a_nan && b_nan)
        return kCanonicalNan;
    if (a_nan)
        return b;
    if (b_nan)
        return a;
    const float fa = asF(a);
    const float fb = asF(b);
    // RISC-V orders -0.0 below +0.0.
    if (fa == 0.0f && fb == 0.0f) {
        const bool a_neg = bit(a, 31);
        if (take_max)
            return a_neg ? b : a;
        return a_neg ? a : b;
    }
    if (take_max)
        return fa > fb ? a : b;
    return fa < fb ? a : b;
}

u32
fcvtWS(u32 a, bool is_unsigned)
{
    const float f = asF(a);
    if (std::isnan(f))
        return is_unsigned ? 0xffffffffu : 0x7fffffffu;
    if (is_unsigned) {
        if (f <= -1.0f)
            return 0;
        if (f >= 4294967296.0f)
            return 0xffffffffu;
        return static_cast<u32>(f);
    }
    if (f <= -2147483904.0f)
        return 0x80000000u;
    if (f >= 2147483648.0f)
        return 0x7fffffffu;
    return static_cast<u32>(static_cast<i32>(f));
}

u32
fclass(u32 a)
{
    const bool neg = bit(a, 31);
    const u32 exp = bits(a, 30, 23);
    const u32 frac = bits(a, 22, 0);
    if (exp == 0xff) {
        if (frac == 0)
            return neg ? (1u << 0) : (1u << 7);       // +/- inf
        return isSNan(a) ? (1u << 8) : (1u << 9);      // sNaN / qNaN
    }
    if (exp == 0) {
        if (frac == 0)
            return neg ? (1u << 3) : (1u << 4);        // +/- zero
        return neg ? (1u << 2) : (1u << 5);            // +/- subnormal
    }
    return neg ? (1u << 1) : (1u << 6);                // +/- normal
}

u32
fma4(Op op, u32 a, u32 b, u32 c)
{
    const float fa = asF(a);
    const float fb = asF(b);
    const float fc = asF(c);
    switch (op) {
      case Op::FMADD_S:  return asU(std::fmaf(fa, fb, fc));
      case Op::FMSUB_S:  return asU(std::fmaf(fa, fb, -fc));
      case Op::FNMSUB_S: return asU(std::fmaf(-fa, fb, fc));
      case Op::FNMADD_S: return asU(std::fmaf(-fa, fb, -fc));
      default: panic("fma4: bad op");
    }
}

} // namespace

ExecOut
execute(const DecodedInst &di, u32 pc, u32 a, u32 b, u32 c)
{
    ExecOut out;
    const i32 sa = static_cast<i32>(a);
    const i32 sb = static_cast<i32>(b);
    const u32 uimm = static_cast<u32>(di.imm);
    switch (di.op) {
      case Op::LUI:    out.value = uimm; break;
      case Op::AUIPC:  out.value = pc + uimm; break;
      case Op::JAL:
        out.value = pc + 4;
        out.redirect = true;
        out.target = pc + uimm;
        break;
      case Op::JALR:
        out.value = pc + 4;
        out.redirect = true;
        out.target = (a + uimm) & ~1u;
        break;
      case Op::BEQ:  out.redirect = (a == b); break;
      case Op::BNE:  out.redirect = (a != b); break;
      case Op::BLT:  out.redirect = (sa < sb); break;
      case Op::BGE:  out.redirect = (sa >= sb); break;
      case Op::BLTU: out.redirect = (a < b); break;
      case Op::BGEU: out.redirect = (a >= b); break;
      case Op::ADDI:  out.value = a + uimm; break;
      case Op::SLTI:  out.value = sa < di.imm ? 1 : 0; break;
      case Op::SLTIU: out.value = a < uimm ? 1 : 0; break;
      case Op::XORI:  out.value = a ^ uimm; break;
      case Op::ORI:   out.value = a | uimm; break;
      case Op::ANDI:  out.value = a & uimm; break;
      case Op::SLLI:  out.value = a << (uimm & 31); break;
      case Op::SRLI:  out.value = a >> (uimm & 31); break;
      case Op::SRAI:  out.value = static_cast<u32>(sa >> (uimm & 31));
        break;
      case Op::ADD:  out.value = a + b; break;
      case Op::SUB:  out.value = a - b; break;
      case Op::SLL:  out.value = a << (b & 31); break;
      case Op::SLT:  out.value = sa < sb ? 1 : 0; break;
      case Op::SLTU: out.value = a < b ? 1 : 0; break;
      case Op::XOR:  out.value = a ^ b; break;
      case Op::SRL:  out.value = a >> (b & 31); break;
      case Op::SRA:  out.value = static_cast<u32>(sa >> (b & 31)); break;
      case Op::OR:   out.value = a | b; break;
      case Op::AND:  out.value = a & b; break;
      case Op::FENCE:
        break;  // single memory system: fence is a timing-only no-op
      case Op::ECALL:
      case Op::EBREAK:
        out.halt = true;
        break;
      case Op::MUL:
        out.value = a * b;
        break;
      case Op::MULH:
        out.value = static_cast<u32>(
            (static_cast<i64>(sa) * static_cast<i64>(sb)) >> 32);
        break;
      case Op::MULHSU:
        out.value = static_cast<u32>(
            (static_cast<i64>(sa) * static_cast<i64>(static_cast<u64>(b)))
            >> 32);
        break;
      case Op::MULHU:
        out.value = static_cast<u32>(
            (static_cast<u64>(a) * static_cast<u64>(b)) >> 32);
        break;
      case Op::DIV:
        if (b == 0) {
            out.value = 0xffffffffu;
        } else if (a == 0x80000000u && b == 0xffffffffu) {
            out.value = 0x80000000u;
        } else {
            out.value = static_cast<u32>(sa / sb);
        }
        break;
      case Op::DIVU:
        out.value = b == 0 ? 0xffffffffu : a / b;
        break;
      case Op::REM:
        if (b == 0) {
            out.value = a;
        } else if (a == 0x80000000u && b == 0xffffffffu) {
            out.value = 0;
        } else {
            out.value = static_cast<u32>(sa % sb);
        }
        break;
      case Op::REMU:
        out.value = b == 0 ? a : a % b;
        break;
      case Op::FADD_S: out.value = asU(asF(a) + asF(b)); break;
      case Op::FSUB_S: out.value = asU(asF(a) - asF(b)); break;
      case Op::FMUL_S: out.value = asU(asF(a) * asF(b)); break;
      case Op::FDIV_S: out.value = asU(asF(a) / asF(b)); break;
      case Op::FSQRT_S:
        out.value = asF(a) < 0.0f ? kCanonicalNan
                                  : asU(std::sqrt(asF(a)));
        break;
      case Op::FMADD_S:
      case Op::FMSUB_S:
      case Op::FNMSUB_S:
      case Op::FNMADD_S:
        out.value = fma4(di.op, a, b, c);
        break;
      case Op::FSGNJ_S:  out.value = (a & 0x7fffffffu) | (b & 0x80000000u);
        break;
      case Op::FSGNJN_S: out.value = (a & 0x7fffffffu) |
                                     (~b & 0x80000000u);
        break;
      case Op::FSGNJX_S: out.value = a ^ (b & 0x80000000u); break;
      case Op::FMIN_S:   out.value = fpMinMax(a, b, false); break;
      case Op::FMAX_S:   out.value = fpMinMax(a, b, true); break;
      case Op::FCVT_W_S:  out.value = fcvtWS(a, false); break;
      case Op::FCVT_WU_S: out.value = fcvtWS(a, true); break;
      case Op::FMV_X_W:   out.value = a; break;
      case Op::FEQ_S:
        out.value = (!std::isnan(asF(a)) && !std::isnan(asF(b)) &&
                     asF(a) == asF(b)) ? 1 : 0;
        break;
      case Op::FLT_S:
        out.value = (!std::isnan(asF(a)) && !std::isnan(asF(b)) &&
                     asF(a) < asF(b)) ? 1 : 0;
        break;
      case Op::FLE_S:
        out.value = (!std::isnan(asF(a)) && !std::isnan(asF(b)) &&
                     asF(a) <= asF(b)) ? 1 : 0;
        break;
      case Op::FCLASS_S: out.value = fclass(a); break;
      case Op::FCVT_S_W:
        out.value = asU(static_cast<float>(static_cast<i32>(a)));
        break;
      case Op::FCVT_S_WU:
        out.value = asU(static_cast<float>(a));
        break;
      case Op::FMV_W_X: out.value = a; break;
      case Op::SIMT_S:
        break;  // pure marker; the control unit interprets its fields
      case Op::SIMT_E: {
        // a = r_end value, b = current rc, c = step (from simt_s).
        // The step's sign selects the ending condition (§5.4: "the
        // value and type of r_step determines how the control register
        // changes and r_end determines the ending condition").
        const auto f = simtEndFields(di);
        out.value = b + c;  // new rc
        const bool more =
            static_cast<i32>(c) >= 0
                ? static_cast<i32>(out.value) < static_cast<i32>(a)
                : static_cast<i32>(out.value) > static_cast<i32>(a);
        if (more) {
            out.redirect = true;
            out.target = pc - f.lOffset + 4;  // first body instruction
        }
        break;
      }
      case Op::LB: case Op::LH: case Op::LW: case Op::LBU: case Op::LHU:
      case Op::FLW: case Op::SB: case Op::SH: case Op::SW: case Op::FSW:
        panic("execute() called on memory op %s", opName(di.op));
      case Op::INVALID:
        out.halt = true;
        break;
      default:
        panic("execute: unhandled op %s", opName(di.op));
    }
    if (di.isBranch() && out.redirect)
        out.target = pc + uimm;
    return out;
}

u32
effectiveAddr(const DecodedInst &di, u32 rs1_val)
{
    return rs1_val + static_cast<u32>(di.imm);
}

u32
loadExtend(const DecodedInst &di, u32 raw)
{
    const auto &info = di.info();
    if (info.memBytes == 4)
        return raw;
    const unsigned w = info.memBytes * 8;
    return info.memSigned ? sext(raw, w) : (raw & ((1u << w) - 1));
}

} // namespace diag::isa
