#include "isa/disasm.hpp"

#include <cstdio>

#include "common/log.hpp"

namespace diag::isa
{

namespace
{

std::string
hex(u32 v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%x", v);
    return buf;
}

} // namespace

std::string
regName(RegId reg)
{
    if (reg == kNoReg)
        return "-";
    char buf[8];
    if (reg < kNumIntRegs)
        std::snprintf(buf, sizeof(buf), "x%u", reg);
    else
        std::snprintf(buf, sizeof(buf), "f%u", reg - kNumIntRegs);
    return buf;
}

std::string
disassemble(const DecodedInst &di, u32 pc)
{
    const std::string name = opName(di.op);
    switch (di.cls()) {
      case ExecClass::Load:
        return name + ' ' + regName(di.rd) + ", " +
               std::to_string(di.imm) + '(' + regName(di.rs1) + ')';
      case ExecClass::Store:
        return name + ' ' + regName(di.rs2) + ", " +
               std::to_string(di.imm) + '(' + regName(di.rs1) + ')';
      case ExecClass::Branch:
        return name + ' ' + regName(di.rs1) + ", " + regName(di.rs2) +
               ", " + hex(pc + static_cast<u32>(di.imm));
      case ExecClass::Jump:
        if (di.op == Op::JAL) {
            return name + ' ' + regName(di.rd) + ", " +
                   hex(pc + static_cast<u32>(di.imm));
        }
        return name + ' ' + regName(di.rd) + ", " +
               std::to_string(di.imm) + '(' + regName(di.rs1) + ')';
      case ExecClass::System:
      case ExecClass::Invalid:
        return name;
      case ExecClass::Simt:
        if (di.op == Op::SIMT_S) {
            const auto f = simtStartFields(di);
            return name + " x" + std::to_string(f.rc) + ", x" +
                   std::to_string(f.rStep) + ", x" +
                   std::to_string(f.rEnd) + ", " +
                   std::to_string(f.interval);
        } else {
            const auto f = simtEndFields(di);
            return name + " x" + std::to_string(f.rc) + ", x" +
                   std::to_string(f.rEnd) + ", " +
                   hex(pc - f.lOffset);
        }
      default:
        break;
    }
    // Register-register and register-immediate ALU/FP forms.
    std::string out = name + ' ' + regName(di.rd);
    if (di.rs1 != kNoReg)
        out += ", " + regName(di.rs1);
    if (di.rs2 != kNoReg)
        out += ", " + regName(di.rs2);
    if (di.rs3 != kNoReg)
        out += ", " + regName(di.rs3);
    if (di.op == Op::LUI || di.op == Op::AUIPC) {
        out += ", " + hex(static_cast<u32>(di.imm) >> 12);
    } else if (di.cls() == ExecClass::IntAlu && di.rs2 == kNoReg &&
               di.rs1 != kNoReg) {
        out += ", " + std::to_string(di.imm);
    }
    return out;
}

} // namespace diag::isa
