#include "isa/opcodes.hpp"

#include "common/log.hpp"

namespace diag::isa
{

namespace
{

constexpr OpInfo kOpTable[] = {
    // name       class              memBytes signed fpDest
    {"lui",       ExecClass::IntAlu, 0, false, false},
    {"auipc",     ExecClass::IntAlu, 0, false, false},
    {"jal",       ExecClass::Jump,   0, false, false},
    {"jalr",      ExecClass::Jump,   0, false, false},
    {"beq",       ExecClass::Branch, 0, false, false},
    {"bne",       ExecClass::Branch, 0, false, false},
    {"blt",       ExecClass::Branch, 0, false, false},
    {"bge",       ExecClass::Branch, 0, false, false},
    {"bltu",      ExecClass::Branch, 0, false, false},
    {"bgeu",      ExecClass::Branch, 0, false, false},
    {"lb",        ExecClass::Load,   1, true,  false},
    {"lh",        ExecClass::Load,   2, true,  false},
    {"lw",        ExecClass::Load,   4, true,  false},
    {"lbu",       ExecClass::Load,   1, false, false},
    {"lhu",       ExecClass::Load,   2, false, false},
    {"sb",        ExecClass::Store,  1, false, false},
    {"sh",        ExecClass::Store,  2, false, false},
    {"sw",        ExecClass::Store,  4, false, false},
    {"addi",      ExecClass::IntAlu, 0, false, false},
    {"slti",      ExecClass::IntAlu, 0, false, false},
    {"sltiu",     ExecClass::IntAlu, 0, false, false},
    {"xori",      ExecClass::IntAlu, 0, false, false},
    {"ori",       ExecClass::IntAlu, 0, false, false},
    {"andi",      ExecClass::IntAlu, 0, false, false},
    {"slli",      ExecClass::IntAlu, 0, false, false},
    {"srli",      ExecClass::IntAlu, 0, false, false},
    {"srai",      ExecClass::IntAlu, 0, false, false},
    {"add",       ExecClass::IntAlu, 0, false, false},
    {"sub",       ExecClass::IntAlu, 0, false, false},
    {"sll",       ExecClass::IntAlu, 0, false, false},
    {"slt",       ExecClass::IntAlu, 0, false, false},
    {"sltu",      ExecClass::IntAlu, 0, false, false},
    {"xor",       ExecClass::IntAlu, 0, false, false},
    {"srl",       ExecClass::IntAlu, 0, false, false},
    {"sra",       ExecClass::IntAlu, 0, false, false},
    {"or",        ExecClass::IntAlu, 0, false, false},
    {"and",       ExecClass::IntAlu, 0, false, false},
    {"fence",     ExecClass::System, 0, false, false},
    {"ecall",     ExecClass::System, 0, false, false},
    {"ebreak",    ExecClass::System, 0, false, false},
    {"mul",       ExecClass::IntMul, 0, false, false},
    {"mulh",      ExecClass::IntMul, 0, false, false},
    {"mulhsu",    ExecClass::IntMul, 0, false, false},
    {"mulhu",     ExecClass::IntMul, 0, false, false},
    {"div",       ExecClass::IntDiv, 0, false, false},
    {"divu",      ExecClass::IntDiv, 0, false, false},
    {"rem",       ExecClass::IntDiv, 0, false, false},
    {"remu",      ExecClass::IntDiv, 0, false, false},
    {"flw",       ExecClass::Load,   4, false, true},
    {"fsw",       ExecClass::Store,  4, false, false},
    {"fmadd.s",   ExecClass::FpFma,  0, false, true},
    {"fmsub.s",   ExecClass::FpFma,  0, false, true},
    {"fnmsub.s",  ExecClass::FpFma,  0, false, true},
    {"fnmadd.s",  ExecClass::FpFma,  0, false, true},
    {"fadd.s",    ExecClass::FpAdd,  0, false, true},
    {"fsub.s",    ExecClass::FpAdd,  0, false, true},
    {"fmul.s",    ExecClass::FpMul,  0, false, true},
    {"fdiv.s",    ExecClass::FpDiv,  0, false, true},
    {"fsqrt.s",   ExecClass::FpSqrt, 0, false, true},
    {"fsgnj.s",   ExecClass::FpMisc, 0, false, true},
    {"fsgnjn.s",  ExecClass::FpMisc, 0, false, true},
    {"fsgnjx.s",  ExecClass::FpMisc, 0, false, true},
    {"fmin.s",    ExecClass::FpMisc, 0, false, true},
    {"fmax.s",    ExecClass::FpMisc, 0, false, true},
    {"fcvt.w.s",  ExecClass::FpCvt,  0, false, false},
    {"fcvt.wu.s", ExecClass::FpCvt,  0, false, false},
    {"fmv.x.w",   ExecClass::FpMisc, 0, false, false},
    {"feq.s",     ExecClass::FpCmp,  0, false, false},
    {"flt.s",     ExecClass::FpCmp,  0, false, false},
    {"fle.s",     ExecClass::FpCmp,  0, false, false},
    {"fclass.s",  ExecClass::FpMisc, 0, false, false},
    {"fcvt.s.w",  ExecClass::FpCvt,  0, false, true},
    {"fcvt.s.wu", ExecClass::FpCvt,  0, false, true},
    {"fmv.w.x",   ExecClass::FpMisc, 0, false, true},
    {"simt_s",    ExecClass::Simt,   0, false, false},
    {"simt_e",    ExecClass::Simt,   0, false, false},
    {"invalid",   ExecClass::Invalid, 0, false, false},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) ==
                  static_cast<unsigned>(Op::NUM_OPS) + 1,
              "opcode metadata table out of sync with Op enum");

} // namespace

const OpInfo &
opInfo(Op op)
{
    const auto idx = static_cast<unsigned>(op);
    panic_if(idx > static_cast<unsigned>(Op::NUM_OPS),
             "opInfo: bad opcode %u", idx);
    return kOpTable[idx];
}

const char *
opName(Op op)
{
    return opInfo(op).name;
}

} // namespace diag::isa
