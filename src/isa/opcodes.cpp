#include "isa/opcodes.hpp"

#include "common/log.hpp"

namespace diag::isa::opdetail
{

void
opInfoBadOp(unsigned idx)
{
    panic("opInfo: bad opcode %u", idx);
}

} // namespace diag::isa::opdetail
