/**
 * @file
 * RV32IMF opcode enumeration plus the two DiAG ISA extensions
 * (simt_s / simt_e, ASPLOS'21 §5.4) and static per-opcode metadata.
 */
#ifndef DIAG_ISA_OPCODES_HPP
#define DIAG_ISA_OPCODES_HPP

#include "common/types.hpp"

namespace diag::isa
{

/** Architectural register file sizes. */
inline constexpr unsigned kNumIntRegs = 32;
inline constexpr unsigned kNumFpRegs = 32;
/** Unified register-space size: x0..x31 then f0..f31. */
inline constexpr unsigned kNumRegs = kNumIntRegs + kNumFpRegs;

/** Unified register index (FP registers live at 32..63). */
using RegId = u8;
/** Sentinel meaning "operand not present". */
inline constexpr RegId kNoReg = 0xff;
/** The hardwired-zero integer register. */
inline constexpr RegId kRegZero = 0;
/** Convert an FP register number (0..31) to its unified index. */
constexpr RegId fpReg(unsigned n) { return static_cast<RegId>(32 + n); }

/**
 * Execution resource class of an instruction; keys the latency table and
 * the functional-unit selection in both microarchitectural models.
 */
enum class ExecClass : u8
{
    IntAlu,   //!< integer add/logic/shift/compare, LUI/AUIPC
    IntMul,   //!< M-extension multiply
    IntDiv,   //!< M-extension divide/remainder
    FpAdd,    //!< FP add/sub
    FpMul,    //!< FP multiply
    FpDiv,    //!< FP divide
    FpSqrt,   //!< FP square root
    FpFma,    //!< fused multiply-add family
    FpMisc,   //!< sign injection, moves, min/max, classify
    FpCmp,    //!< FP compares (write integer rd)
    FpCvt,    //!< int<->float conversions
    Load,     //!< memory read (int or FP destination)
    Store,    //!< memory write
    Branch,   //!< conditional branch
    Jump,     //!< JAL / JALR
    System,   //!< FENCE / ECALL / EBREAK
    Simt,     //!< DiAG simt_s / simt_e extension markers
    Invalid,  //!< undecodable encoding
};

/** Every opcode the toolchain and the three execution engines support. */
enum class Op : u8
{
    // RV32I
    LUI, AUIPC, JAL, JALR,
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    LB, LH, LW, LBU, LHU,
    SB, SH, SW,
    ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
    ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
    FENCE, ECALL, EBREAK,
    // RV32M
    MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,
    // RV32F
    FLW, FSW,
    FMADD_S, FMSUB_S, FNMSUB_S, FNMADD_S,
    FADD_S, FSUB_S, FMUL_S, FDIV_S, FSQRT_S,
    FSGNJ_S, FSGNJN_S, FSGNJX_S, FMIN_S, FMAX_S,
    FCVT_W_S, FCVT_WU_S, FMV_X_W, FEQ_S, FLT_S, FLE_S, FCLASS_S,
    FCVT_S_W, FCVT_S_WU, FMV_W_X,
    // DiAG extensions (custom-0 / custom-1 opcode space)
    SIMT_S, SIMT_E,
    INVALID,
    NUM_OPS = INVALID,
};

/** Static properties of one opcode. */
struct OpInfo
{
    const char *name;     //!< assembler mnemonic
    ExecClass cls;        //!< functional-unit / latency class
    u8 memBytes;          //!< access size for loads/stores, else 0
    bool memSigned;       //!< sign-extend sub-word loads
    bool fpDest;          //!< destination is an FP register
};

/** Look up static properties for @p op. */
const OpInfo &opInfo(Op op);

/** Mnemonic for @p op ("invalid" for Op::INVALID). */
const char *opName(Op op);

/** True iff @p cls executes on the floating-point unit. */
constexpr bool
isFpClass(ExecClass cls)
{
    switch (cls) {
      case ExecClass::FpAdd:
      case ExecClass::FpMul:
      case ExecClass::FpDiv:
      case ExecClass::FpSqrt:
      case ExecClass::FpFma:
      case ExecClass::FpMisc:
      case ExecClass::FpCmp:
      case ExecClass::FpCvt:
        return true;
      default:
        return false;
    }
}

} // namespace diag::isa

#endif // DIAG_ISA_OPCODES_HPP
