/**
 * @file
 * RV32IMF opcode enumeration plus the two DiAG ISA extensions
 * (simt_s / simt_e, ASPLOS'21 §5.4) and static per-opcode metadata.
 */
#ifndef DIAG_ISA_OPCODES_HPP
#define DIAG_ISA_OPCODES_HPP

#include "common/types.hpp"

namespace diag::isa
{

/** Architectural register file sizes. */
inline constexpr unsigned kNumIntRegs = 32;
inline constexpr unsigned kNumFpRegs = 32;
/** Unified register-space size: x0..x31 then f0..f31. */
inline constexpr unsigned kNumRegs = kNumIntRegs + kNumFpRegs;

/** Unified register index (FP registers live at 32..63). */
using RegId = u8;
/** Sentinel meaning "operand not present". */
inline constexpr RegId kNoReg = 0xff;
/** The hardwired-zero integer register. */
inline constexpr RegId kRegZero = 0;
/** Convert an FP register number (0..31) to its unified index. */
constexpr RegId fpReg(unsigned n) { return static_cast<RegId>(32 + n); }

/**
 * Execution resource class of an instruction; keys the latency table and
 * the functional-unit selection in both microarchitectural models.
 */
enum class ExecClass : u8
{
    IntAlu,   //!< integer add/logic/shift/compare, LUI/AUIPC
    IntMul,   //!< M-extension multiply
    IntDiv,   //!< M-extension divide/remainder
    FpAdd,    //!< FP add/sub
    FpMul,    //!< FP multiply
    FpDiv,    //!< FP divide
    FpSqrt,   //!< FP square root
    FpFma,    //!< fused multiply-add family
    FpMisc,   //!< sign injection, moves, min/max, classify
    FpCmp,    //!< FP compares (write integer rd)
    FpCvt,    //!< int<->float conversions
    Load,     //!< memory read (int or FP destination)
    Store,    //!< memory write
    Branch,   //!< conditional branch
    Jump,     //!< JAL / JALR
    System,   //!< FENCE / ECALL / EBREAK
    Simt,     //!< DiAG simt_s / simt_e extension markers
    Invalid,  //!< undecodable encoding
};

/** Every opcode the toolchain and the three execution engines support. */
enum class Op : u8
{
    // RV32I
    LUI, AUIPC, JAL, JALR,
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    LB, LH, LW, LBU, LHU,
    SB, SH, SW,
    ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
    ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
    FENCE, ECALL, EBREAK,
    // RV32M
    MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,
    // RV32F
    FLW, FSW,
    FMADD_S, FMSUB_S, FNMSUB_S, FNMADD_S,
    FADD_S, FSUB_S, FMUL_S, FDIV_S, FSQRT_S,
    FSGNJ_S, FSGNJN_S, FSGNJX_S, FMIN_S, FMAX_S,
    FCVT_W_S, FCVT_WU_S, FMV_X_W, FEQ_S, FLT_S, FLE_S, FCLASS_S,
    FCVT_S_W, FCVT_S_WU, FMV_W_X,
    // DiAG extensions (custom-0 / custom-1 opcode space)
    SIMT_S, SIMT_E,
    INVALID,
    NUM_OPS = INVALID,
};

/** Static properties of one opcode. */
struct OpInfo
{
    const char *name;     //!< assembler mnemonic
    ExecClass cls;        //!< functional-unit / latency class
    u8 memBytes;          //!< access size for loads/stores, else 0
    bool memSigned;       //!< sign-extend sub-word loads
    bool fpDest;          //!< destination is an FP register
};

namespace opdetail
{

/** [[noreturn]] panic for an out-of-range opcode (cold path). */
[[noreturn]] void opInfoBadOp(unsigned idx);

inline constexpr OpInfo kOpTable[] = {
    // name       class              memBytes signed fpDest
    {"lui",       ExecClass::IntAlu, 0, false, false},
    {"auipc",     ExecClass::IntAlu, 0, false, false},
    {"jal",       ExecClass::Jump,   0, false, false},
    {"jalr",      ExecClass::Jump,   0, false, false},
    {"beq",       ExecClass::Branch, 0, false, false},
    {"bne",       ExecClass::Branch, 0, false, false},
    {"blt",       ExecClass::Branch, 0, false, false},
    {"bge",       ExecClass::Branch, 0, false, false},
    {"bltu",      ExecClass::Branch, 0, false, false},
    {"bgeu",      ExecClass::Branch, 0, false, false},
    {"lb",        ExecClass::Load,   1, true,  false},
    {"lh",        ExecClass::Load,   2, true,  false},
    {"lw",        ExecClass::Load,   4, true,  false},
    {"lbu",       ExecClass::Load,   1, false, false},
    {"lhu",       ExecClass::Load,   2, false, false},
    {"sb",        ExecClass::Store,  1, false, false},
    {"sh",        ExecClass::Store,  2, false, false},
    {"sw",        ExecClass::Store,  4, false, false},
    {"addi",      ExecClass::IntAlu, 0, false, false},
    {"slti",      ExecClass::IntAlu, 0, false, false},
    {"sltiu",     ExecClass::IntAlu, 0, false, false},
    {"xori",      ExecClass::IntAlu, 0, false, false},
    {"ori",       ExecClass::IntAlu, 0, false, false},
    {"andi",      ExecClass::IntAlu, 0, false, false},
    {"slli",      ExecClass::IntAlu, 0, false, false},
    {"srli",      ExecClass::IntAlu, 0, false, false},
    {"srai",      ExecClass::IntAlu, 0, false, false},
    {"add",       ExecClass::IntAlu, 0, false, false},
    {"sub",       ExecClass::IntAlu, 0, false, false},
    {"sll",       ExecClass::IntAlu, 0, false, false},
    {"slt",       ExecClass::IntAlu, 0, false, false},
    {"sltu",      ExecClass::IntAlu, 0, false, false},
    {"xor",       ExecClass::IntAlu, 0, false, false},
    {"srl",       ExecClass::IntAlu, 0, false, false},
    {"sra",       ExecClass::IntAlu, 0, false, false},
    {"or",        ExecClass::IntAlu, 0, false, false},
    {"and",       ExecClass::IntAlu, 0, false, false},
    {"fence",     ExecClass::System, 0, false, false},
    {"ecall",     ExecClass::System, 0, false, false},
    {"ebreak",    ExecClass::System, 0, false, false},
    {"mul",       ExecClass::IntMul, 0, false, false},
    {"mulh",      ExecClass::IntMul, 0, false, false},
    {"mulhsu",    ExecClass::IntMul, 0, false, false},
    {"mulhu",     ExecClass::IntMul, 0, false, false},
    {"div",       ExecClass::IntDiv, 0, false, false},
    {"divu",      ExecClass::IntDiv, 0, false, false},
    {"rem",       ExecClass::IntDiv, 0, false, false},
    {"remu",      ExecClass::IntDiv, 0, false, false},
    {"flw",       ExecClass::Load,   4, false, true},
    {"fsw",       ExecClass::Store,  4, false, false},
    {"fmadd.s",   ExecClass::FpFma,  0, false, true},
    {"fmsub.s",   ExecClass::FpFma,  0, false, true},
    {"fnmsub.s",  ExecClass::FpFma,  0, false, true},
    {"fnmadd.s",  ExecClass::FpFma,  0, false, true},
    {"fadd.s",    ExecClass::FpAdd,  0, false, true},
    {"fsub.s",    ExecClass::FpAdd,  0, false, true},
    {"fmul.s",    ExecClass::FpMul,  0, false, true},
    {"fdiv.s",    ExecClass::FpDiv,  0, false, true},
    {"fsqrt.s",   ExecClass::FpSqrt, 0, false, true},
    {"fsgnj.s",   ExecClass::FpMisc, 0, false, true},
    {"fsgnjn.s",  ExecClass::FpMisc, 0, false, true},
    {"fsgnjx.s",  ExecClass::FpMisc, 0, false, true},
    {"fmin.s",    ExecClass::FpMisc, 0, false, true},
    {"fmax.s",    ExecClass::FpMisc, 0, false, true},
    {"fcvt.w.s",  ExecClass::FpCvt,  0, false, false},
    {"fcvt.wu.s", ExecClass::FpCvt,  0, false, false},
    {"fmv.x.w",   ExecClass::FpMisc, 0, false, false},
    {"feq.s",     ExecClass::FpCmp,  0, false, false},
    {"flt.s",     ExecClass::FpCmp,  0, false, false},
    {"fle.s",     ExecClass::FpCmp,  0, false, false},
    {"fclass.s",  ExecClass::FpMisc, 0, false, false},
    {"fcvt.s.w",  ExecClass::FpCvt,  0, false, true},
    {"fcvt.s.wu", ExecClass::FpCvt,  0, false, true},
    {"fmv.w.x",   ExecClass::FpMisc, 0, false, true},
    {"simt_s",    ExecClass::Simt,   0, false, false},
    {"simt_e",    ExecClass::Simt,   0, false, false},
    {"invalid",   ExecClass::Invalid, 0, false, false},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) ==
                  static_cast<unsigned>(Op::NUM_OPS) + 1,
              "opcode metadata table out of sync with Op enum");

} // namespace opdetail

/**
 * Look up static properties for @p op. Inline (the table is constexpr
 * in this header) — this sits on the per-instruction hot path of all
 * three execution engines, where an out-of-line call dominated the
 * profile.
 */
inline const OpInfo &
opInfo(Op op)
{
    const auto idx = static_cast<unsigned>(op);
    if (idx > static_cast<unsigned>(Op::NUM_OPS))
        opdetail::opInfoBadOp(idx);
    return opdetail::kOpTable[idx];
}

/** Mnemonic for @p op ("invalid" for Op::INVALID). */
inline const char *
opName(Op op)
{
    return opInfo(op).name;
}

/** True iff @p cls executes on the floating-point unit. */
constexpr bool
isFpClass(ExecClass cls)
{
    switch (cls) {
      case ExecClass::FpAdd:
      case ExecClass::FpMul:
      case ExecClass::FpDiv:
      case ExecClass::FpSqrt:
      case ExecClass::FpFma:
      case ExecClass::FpMisc:
      case ExecClass::FpCmp:
      case ExecClass::FpCvt:
        return true;
      default:
        return false;
    }
}

} // namespace diag::isa

#endif // DIAG_ISA_OPCODES_HPP
