#include "isa/latency.hpp"

#include "common/log.hpp"

namespace diag::isa
{

Cycle
execLatency(ExecClass cls)
{
    switch (cls) {
      case ExecClass::IntAlu: return 1;
      case ExecClass::IntMul: return 3;
      case ExecClass::IntDiv: return 12;
      case ExecClass::FpAdd:  return 4;
      case ExecClass::FpMul:  return 4;
      case ExecClass::FpDiv:  return 12;
      case ExecClass::FpSqrt: return 16;
      case ExecClass::FpFma:  return 5;
      case ExecClass::FpMisc: return 1;
      case ExecClass::FpCmp:  return 2;
      case ExecClass::FpCvt:  return 2;
      case ExecClass::Load:   return 1;  // address generation only
      case ExecClass::Store:  return 1;
      case ExecClass::Branch: return 1;
      case ExecClass::Jump:   return 1;
      case ExecClass::System: return 1;
      case ExecClass::Simt:   return 1;
      case ExecClass::Invalid: return 1;
    }
    panic("execLatency: bad class");
}

} // namespace diag::isa
