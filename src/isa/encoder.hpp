/**
 * @file
 * Raw-format instruction encoders. Used by the assembler back-end and by
 * tests that need known-good encodings (decoder round-trip checks).
 */
#ifndef DIAG_ISA_ENCODER_HPP
#define DIAG_ISA_ENCODER_HPP

#include "common/types.hpp"

namespace diag::isa::enc
{

/** Encode an R-type instruction. */
u32 rType(u32 opc, u32 rd, u32 f3, u32 rs1, u32 rs2, u32 f7);
/** Encode an I-type instruction (12-bit signed immediate). */
u32 iType(u32 opc, u32 rd, u32 f3, u32 rs1, i32 imm);
/** Encode an S-type (store) instruction. */
u32 sType(u32 opc, u32 f3, u32 rs1, u32 rs2, i32 imm);
/** Encode a B-type (branch) instruction; @p imm is a byte offset. */
u32 bType(u32 opc, u32 f3, u32 rs1, u32 rs2, i32 imm);
/** Encode a U-type instruction; @p imm supplies bits [31:12]. */
u32 uType(u32 opc, u32 rd, i32 imm);
/** Encode a J-type (JAL) instruction; @p imm is a byte offset. */
u32 jType(u32 opc, u32 rd, i32 imm);
/** Encode an R4-type (FMA) instruction. */
u32 r4Type(u32 opc, u32 rd, u32 f3, u32 rs1, u32 rs2, u32 fmt, u32 rs3);

/** Encode simt_s rc, r_step, r_end, interval (DiAG custom-0). */
u32 simtS(u32 rc, u32 r_step, u32 r_end, u32 interval);
/** Encode simt_e rc, r_end, l_offset (DiAG custom-1). */
u32 simtE(u32 rc, u32 r_end, u32 l_offset);

} // namespace diag::isa::enc

#endif // DIAG_ISA_ENCODER_HPP
