/**
 * @file
 * McPAT-style per-event energy model of the out-of-order baseline
 * (the paper estimates baseline power with McPAT, §7.1). Frontend and
 * scheduling structures pay per instruction; caches pay per access;
 * each active core pays leakage per cycle.
 */
#ifndef DIAG_ENERGY_OOO_ENERGY_HPP
#define DIAG_ENERGY_OOO_ENERGY_HPP

#include "energy/report.hpp"
#include "ooo/config.hpp"
#include "sim/run_stats.hpp"

namespace diag::energy
{

/** Energy of one baseline run. Categories: "frontend", "scheduling",
 *  "regfile_bypass", "fu", "memory", "static". */
EnergyReport oooEnergy(const ooo::OooConfig &cfg,
                       const sim::RunStats &rs);

} // namespace diag::energy

#endif // DIAG_ENERGY_OOO_ENERGY_HPP
