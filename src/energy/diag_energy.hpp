/**
 * @file
 * Activity-based energy model of a DiAG processor (paper §6.1.3,
 * §7.3.1, §7.4). Dynamic energy is component activations times the
 * Table-3-derived per-cycle energies; register lanes (with their
 * integer ALUs), the memory subsystem, and control logic are always
 * powered in clusters that have been brought up, while PE compute
 * logic and FPUs are clock-gated and pay only for active cycles.
 */
#ifndef DIAG_ENERGY_DIAG_ENERGY_HPP
#define DIAG_ENERGY_DIAG_ENERGY_HPP

#include "diag/config.hpp"
#include "energy/report.hpp"
#include "sim/run_stats.hpp"

namespace diag::energy
{

/** Energy of one DiAG run. Categories match Figure 11's legend:
 *  "fp_units", "lanes_alu", "memory", "control". */
EnergyReport diagEnergy(const core::DiagConfig &cfg,
                        const sim::RunStats &rs);

/** Area roll-up of a DiAG configuration (Table 3 reproduction). */
AreaReport diagArea(const core::DiagConfig &cfg);

/** Peak (all-components-on) power in watts at the synthesis clock,
 *  reproducing Table 3's power column. */
double diagPeakPowerW(const core::DiagConfig &cfg);

} // namespace diag::energy

#endif // DIAG_ENERGY_DIAG_ENERGY_HPP
