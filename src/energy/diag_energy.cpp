#include "energy/diag_energy.hpp"

#include <algorithm>

#include "energy/components.hpp"

namespace diag::energy
{

EnergyReport
diagEnergy(const core::DiagConfig &cfg, const sim::RunStats &rs)
{
    EnergyReport rep;
    const auto &c = rs.counters;
    const double cycles = static_cast<double>(rs.cycles);

    // ---- FP units: clock-gated, pay only for active cycles ----
    rep.breakdown_pj["fp_units"] =
        c.get("fpu_active_cycles") * kFpu.dyn_pj_cycle +
        // Clock-gated FPUs "consume very little leakage power"
        // (paper §7.3.1): ~1% of dynamic, in powered-up clusters only.
        cycles * c.get("clusters_used") * cfg.pes_per_cluster *
            kFpu.dyn_pj_cycle * 0.01;

    // ---- Register lanes + integer ALUs: always powered in clusters
    // that have been brought up (paper §7.3.1) ----
    const double lanes_on =
        std::max(1.0, c.get("clusters_used")) * cfg.pes_per_cluster;
    double lanes = cycles * lanes_on *
                   (kRegLane.dyn_pj_cycle + kIntAlu.dyn_pj_cycle) * 0.5;
    // Transport activity: each lane write drives its remaining hops.
    lanes += c.get("lane_hops") * kRegLane.dyn_pj_cycle;
    // PE miscellaneous logic when executing (operand capture etc.).
    lanes += c.get("pe_exec_cycles") * kPeMiscPjCycle * 0.35;
    rep.breakdown_pj["lanes_alu"] = lanes;

    // ---- Memory subsystem ----
    double memory = 0.0;
    memory += (c.get("l1d.reads") + c.get("l1d.writes")) * kL1AccessPj;
    memory += c.get("l1i.reads") * kL1AccessPj;
    memory += (c.get("l2.reads") + c.get("l2.writes")) * kL2AccessPj;
    memory += c.get("dram.accesses") * kDramAccessPj;
    memory += c.get("linebuf_hits") * kLineBufferPj;
    memory += c.get("memlane_fwd") * kMemLanePj;
    // SRAM leakage (L1s + L2), always on.
    const double sram_kb =
        (cfg.mem.l1i.size_bytes + cfg.mem.l1d.size_bytes +
         cfg.mem.l2.size_bytes) /
        1024.0;
    memory += cycles * sram_kb * kSramLeakPjCycleKb;
    rep.breakdown_pj["memory"] = memory;

    // ---- Control: cluster LSU/control slices, ring control units,
    // decode, line delivery, register-file bus transfers ----
    double control = 0.0;
    control += cycles * std::max(1.0, c.get("clusters_used")) *
               kClusterCtrlPjCycle * 0.05;
    control += cycles * cfg.num_rings * kRingCtrlPjCycle;
    control += c.get("decodes") * kRvDecoder.dyn_pj_cycle * 16.0;
    control += c.get("iline_fetches") * kIlineFetchPj;
    control += c.get("bus_transfers") * kBusTransferPj;
    rep.breakdown_pj["control"] = control;

    return rep;
}

AreaReport
diagArea(const core::DiagConfig &cfg)
{
    AreaReport rep;
    const double pes = static_cast<double>(cfg.totalPes());
    const double clusters = static_cast<double>(cfg.total_clusters);
    rep.breakdown_mm2["pe_compute"] =
        pes * (kPeWithFpu.area_um2 - (cfg.fp_supported
                                          ? 0.0
                                          : kFpu.area_um2)) *
        1e-6;
    rep.breakdown_mm2["register_lanes"] =
        pes * kRegLane.area_um2 * 1e-6;
    rep.breakdown_mm2["cluster_ctrl_lsu"] =
        clusters * kClusterCtrlAreaUm2 * 1e-6;
    const double cache_kb =
        (cfg.mem.l1i.size_bytes + cfg.mem.l1d.size_bytes +
         cfg.mem.l2.size_bytes) /
        1024.0;
    rep.breakdown_mm2["caches"] = cache_kb * kSramAreaUm2Kb * 1e-6;
    return rep;
}

double
diagPeakPowerW(const core::DiagConfig &cfg)
{
    // Table 3 reports power at the 1 GHz synthesis clock with every
    // PE powered: clusters plus cache leakage-class consumers.
    const double cluster_w =
        kClusterPjCycle * 1e-3;  // pJ/cycle at 1 GHz == mW -> W
    const double cache_kb =
        (cfg.mem.l1i.size_bytes + cfg.mem.l1d.size_bytes +
         cfg.mem.l2.size_bytes) /
        1024.0;
    // SRAM dynamic+leak estimate ~0.9 mW per KB at full tilt.
    const double cache_w = cache_kb * 0.9e-3;
    return cfg.total_clusters * cluster_w + cache_w;
}

} // namespace diag::energy
