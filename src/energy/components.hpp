/**
 * @file
 * Hardware component library seeded from the paper's Table 3
 * (Synopsys DC + FreePDK45 synthesis at 1 GHz) plus CACTI-class SRAM
 * estimates for the caches the paper models separately. A component's
 * dynamic energy per active cycle in pJ equals its Table 3 power in mW
 * at the 1 GHz synthesis clock.
 */
#ifndef DIAG_ENERGY_COMPONENTS_HPP
#define DIAG_ENERGY_COMPONENTS_HPP

#include "common/types.hpp"

namespace diag::energy
{

/** One hardware component's silicon cost. */
struct Component
{
    const char *name;
    double area_um2;      //!< layout area in µm²
    double dyn_pj_cycle;  //!< dynamic energy per active cycle (pJ)
    double leak_frac;     //!< leakage as a fraction of dynamic power
};

// ---- DiAG components, straight from Table 3 ----
inline constexpr Component kPeWithFpu{"PE (w/ FPU)", 97014.0, 120.4,
                                      0.10};
inline constexpr Component kRegLane{"REGLANE", 15731.0, 3.063, 0.10};
inline constexpr Component kIntAlu{"INT ALU", 1375.4, 0.774, 0.10};
inline constexpr Component kFpu{"FPU (MUL / DIV)", 66592.0, 105.2,
                                0.10};
inline constexpr Component kRvDecoder{"RV_DECODER", 244.6, 0.019, 0.10};

/**
 * PE miscellaneous logic (operand capture, instruction register, PC
 * comparator): the PE total minus FPU, ALU, and decoder.
 */
inline constexpr double kPeMiscPjCycle =
    kPeWithFpu.dyn_pj_cycle - kFpu.dyn_pj_cycle - kIntAlu.dyn_pj_cycle -
    kRvDecoder.dyn_pj_cycle;
inline constexpr double kPeMiscAreaUm2 =
    kPeWithFpu.area_um2 - kFpu.area_um2 - kIntAlu.area_um2 -
    kRvDecoder.area_um2;

/** Table 3: a processing cluster (16 PEs plus LSU/control). */
inline constexpr double kClusterAreaUm2 = 2.208e6;
inline constexpr double kClusterPjCycle = 2104.0;  // 2.104 W at 1 GHz
/** Cluster-level LSU + control: the residual over 16 PE slices. */
inline constexpr double kClusterCtrlPjCycle =
    kClusterPjCycle - 16.0 * kPeWithFpu.dyn_pj_cycle;
inline constexpr double kClusterCtrlAreaUm2 =
    kClusterAreaUm2 - 16.0 * (kPeWithFpu.area_um2 + kRegLane.area_um2);

// ---- ring/bus control (estimated, §5.1.3) ----
inline constexpr double kRingCtrlPjCycle = 25.0;
inline constexpr double kBusTransferPj = 180.0;   //!< 512-bit transfer
inline constexpr double kIlineFetchPj = 220.0;    //!< 64B line delivery

// ---- CACTI-class SRAM costs (45 nm) ----
/** Per-access dynamic energy. */
inline constexpr double kL1AccessPj = 60.0;
inline constexpr double kL2AccessPj = 800.0;
inline constexpr double kDramAccessPj = 15000.0;
inline constexpr double kLineBufferPj = 8.0;  //!< cluster line buffer
inline constexpr double kMemLanePj = 6.0;     //!< memory-lane forward

/** Leakage per cycle per KB of SRAM capacity (45 nm, 2 GHz). */
inline constexpr double kSramLeakPjCycleKb = 0.03;

/** SRAM area per KB in µm² (45 nm). */
inline constexpr double kSramAreaUm2Kb = 5200.0;

// ---- OoO baseline per-event energies (McPAT-class, 45 nm, 8-wide) ----
inline constexpr double kOooFetchPj = 15.0;     //!< per instruction
inline constexpr double kOooDecodePj = 4.0;
inline constexpr double kOooRenamePj = 11.0;    //!< RAT + freelist
inline constexpr double kOooDispatchPj = 7.0;   //!< IQ write
inline constexpr double kOooIssuePj = 12.0;     //!< wakeup + select
inline constexpr double kOooRegReadPj = 4.0;    //!< per operand
inline constexpr double kOooRegWritePj = 6.0;
inline constexpr double kOooRobPj = 8.0;        //!< alloc + commit
inline constexpr double kOooBypassPj = 3.0;
inline constexpr double kOooBpLookupPj = 4.0;
inline constexpr double kOooLsqSearchPj = 10.0;
inline constexpr double kOooIntOpPj = 1.5;
inline constexpr double kOooMulOpPj = 15.0;
inline constexpr double kOooDivOpPj = 25.0;
/** FPU op energy matches DiAG's FPU for an apples-to-apples compare. */
inline constexpr double kOooFpOpPj = 105.2;
/** Core static power per cycle (only while the core runs a thread). */
inline constexpr double kOooCoreLeakPjCycle = 420.0;

} // namespace diag::energy

#endif // DIAG_ENERGY_COMPONENTS_HPP
