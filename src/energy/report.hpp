/**
 * @file
 * Energy and area report structures shared by both energy models.
 */
#ifndef DIAG_ENERGY_REPORT_HPP
#define DIAG_ENERGY_REPORT_HPP

#include <map>
#include <string>

#include "common/types.hpp"

namespace diag::energy
{

/** Energy of one run, broken down by hardware category. */
struct EnergyReport
{
    /** Category name -> energy in picojoules. */
    std::map<std::string, double> breakdown_pj;

    double
    totalPj() const
    {
        double total = 0.0;
        for (const auto &kv : breakdown_pj)
            total += kv.second;
        return total;
    }

    double totalJoules() const { return totalPj() * 1e-12; }

    /** Fraction of total for one category (0 when total is zero). */
    double
    fraction(const std::string &category) const
    {
        const double total = totalPj();
        if (total <= 0.0)
            return 0.0;
        auto it = breakdown_pj.find(category);
        return it == breakdown_pj.end() ? 0.0 : it->second / total;
    }
};

/** Area of one configuration, broken down by component. */
struct AreaReport
{
    /** Component name -> area in mm². */
    std::map<std::string, double> breakdown_mm2;

    double
    totalMm2() const
    {
        double total = 0.0;
        for (const auto &kv : breakdown_mm2)
            total += kv.second;
        return total;
    }
};

} // namespace diag::energy

#endif // DIAG_ENERGY_REPORT_HPP
