#include "energy/ooo_energy.hpp"

#include <algorithm>

#include "energy/components.hpp"

namespace diag::energy
{

EnergyReport
oooEnergy(const ooo::OooConfig &cfg, const sim::RunStats &rs)
{
    EnergyReport rep;
    const auto &c = rs.counters;
    const double cycles = static_cast<double>(rs.cycles);

    // ---- frontend: fetch, decode, prediction ----
    rep.breakdown_pj["frontend"] =
        c.get("fetches") * kOooFetchPj +
        c.get("decodes") * kOooDecodePj +
        (c.get("bp_lookups") + c.get("btb_lookups") +
         c.get("ras_lookups")) *
            kOooBpLookupPj;

    // ---- scheduling: rename, dispatch, issue, ROB ----
    rep.breakdown_pj["scheduling"] =
        c.get("renames") * kOooRenamePj +
        c.get("dispatches") * kOooDispatchPj +
        c.get("issues") * kOooIssuePj + c.get("commits") * kOooRobPj;

    // ---- register file and bypass network ----
    rep.breakdown_pj["regfile_bypass"] =
        c.get("regfile_reads") * kOooRegReadPj +
        c.get("regfile_writes") * (kOooRegWritePj + kOooBypassPj);

    // ---- functional units ----
    rep.breakdown_pj["fu"] = c.get("fu_int") * kOooIntOpPj +
                             c.get("fu_mul") * kOooMulOpPj +
                             c.get("fu_div") * kOooDivOpPj +
                             c.get("fu_fpu") * kOooFpOpPj;

    // ---- memory ----
    double memory = 0.0;
    memory += (c.get("l1d.reads") + c.get("l1d.writes")) * kL1AccessPj;
    memory += c.get("l1i.reads") * kL1AccessPj;
    memory += (c.get("l2.reads") + c.get("l2.writes")) * kL2AccessPj;
    memory += c.get("dram.accesses") * kDramAccessPj;
    memory += c.get("lsq_searches") * kOooLsqSearchPj;
    const double sram_kb =
        (cfg.mem.l1i.size_bytes + cfg.mem.l1d.size_bytes) / 1024.0 *
            std::min<double>(cfg.cores, std::max(1.0, c.get("threads"))) +
        cfg.mem.l2.size_bytes / 1024.0;
    memory += cycles * sram_kb * kSramLeakPjCycleKb;
    rep.breakdown_pj["memory"] = memory;

    // ---- core static (active cores only; idle cores power-gate) ----
    const double active_cores =
        std::min<double>(cfg.cores, std::max(1.0, c.get("threads")));
    rep.breakdown_pj["static"] =
        cycles * active_cores * kOooCoreLeakPjCycle;

    return rep;
}

} // namespace diag::energy
