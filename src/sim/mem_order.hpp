/**
 * @file
 * Program-order store tracking shared by both timing models: younger
 * loads may not issue before all older store addresses are known, and
 * a load fully covered by a recent older store can take its data by
 * forwarding. In DiAG this models the memory lanes (paper §5.2); in
 * the OoO baseline it models the LSQ's store buffer.
 */
#ifndef DIAG_SIM_MEM_ORDER_HPP
#define DIAG_SIM_MEM_ORDER_HPP

#include <deque>

#include "common/sparse_mem.hpp"
#include "common/types.hpp"

namespace diag::sim
{

/** A store whose data is still forwardable. */
struct PendingStore
{
    Addr addr = 0;
    u8 size = 0;
    Cycle data_ready = 0;
};

/**
 * Per-thread memory-order state. Also carries the thread's functional
 * memory image reference so execution engines have one handle for both
 * data values and ordering.
 */
class StoreTracker
{
  public:
    StoreTracker(SparseMemory &mem, unsigned entries)
        : mem_(&mem), entries_(entries)
    {}

    SparseMemory &mem() { return *mem_; }

    /** Latest cycle at which any older store's address resolved. */
    Cycle storeAddrGate() const { return store_addr_gate_; }

    /** Record a store in program order. Returns true when the CAM
     *  window was full and the oldest entry was displaced (the trace
     *  layer reports these as memory-lane evictions). */
    bool
    recordStore(Addr addr, u8 size, Cycle addr_ready, Cycle data_ready)
    {
        if (addr_ready > store_addr_gate_)
            store_addr_gate_ = addr_ready;
        stores_.push_back({addr, size, data_ready});
        if (stores_.size() > entries_) {
            stores_.pop_front();
            return true;
        }
        return false;
    }

    /**
     * Forwarding probe: data-ready cycle of the youngest older store
     * fully covering [addr, addr+size), or kNeverCycle when the load
     * cannot forward (no overlap in the window, or partial overlap).
     */
    Cycle
    forwardProbe(Addr addr, u8 size) const
    {
        for (auto it = stores_.rbegin(); it != stores_.rend(); ++it) {
            const PendingStore &st = *it;
            const bool overlap = addr < st.addr + st.size &&
                                 st.addr < addr + size;
            if (!overlap)
                continue;
            const bool covered = st.addr <= addr &&
                                 addr + size <= st.addr + st.size;
            return covered ? st.data_ready : kNeverCycle;
        }
        return kNeverCycle;
    }

    void
    reset()
    {
        stores_.clear();
        store_addr_gate_ = 0;
    }

    /** Direct access to the CAM window (fault injection / tests). */
    std::deque<PendingStore> &entries() { return stores_; }

  private:
    SparseMemory *mem_;
    unsigned entries_;
    std::deque<PendingStore> stores_;
    Cycle store_addr_gate_ = 0;
};

} // namespace diag::sim

#endif // DIAG_SIM_MEM_ORDER_HPP
