#include "sim/fuzz.hpp"

#include <vector>

#include "common/rng.hpp"

namespace diag::sim
{

namespace
{

/** Registers the generator may freely clobber with data. */
constexpr int kDataRegs[] = {5, 6, 7, 28, 12, 13, 14, 15, 16, 17,
                             18, 19, 20, 21, 22, 23};
constexpr int kNumDataRegs =
    static_cast<int>(sizeof(kDataRegs) / sizeof(kDataRegs[0]));

class Generator
{
  public:
    explicit Generator(const FuzzOptions &opt)
        : opt_(opt), rng_(opt.seed ? opt.seed : 1)
    {}

    FuzzProgram
    run()
    {
        emit(".data");
        emit("buf: .space " + std::to_string(opt_.buffer_words * 4));
        emit(".text");
        emit("_start:");
        emit("    la x29, buf");
        // Seed data registers with deterministic pseudo-random values.
        for (int i = 0; i < kNumDataRegs; ++i)
            emit("    li " + reg(kDataRegs[i]) + ", " +
                 std::to_string(
                     static_cast<i32>(rng_.next32() & 0x7fffffff)));
        if (opt_.use_fp) {
            for (int f = 0; f < 8; ++f)
                emit("    fcvt.s.w f" + std::to_string(f) + ", " +
                     reg(kDataRegs[f]));
        }
        // Interleave simt regions among the scalar segments. Every
        // rng draw below is gated on the option that needs it, so
        // programs generated with the pre-simt options are
        // byte-identical to what this generator always produced.
        for (unsigned s = 0; s < opt_.segments; ++s) {
            if (opt_.use_simt && meta_.regions < opt_.simt_regions &&
                rng_.below(3) == 0)
                simtRegion();
            else
                segment();
        }
        while (opt_.use_simt && meta_.regions < opt_.simt_regions)
            simtRegion();
        if (opt_.hazard_pct > 0 &&
            rng_.below(100) < opt_.hazard_pct)
            scalarHazard();
        emit("    ebreak");
        if (opt_.use_calls)
            helpers();
        meta_.source = std::move(out_);
        return std::move(meta_);
    }

  private:
    void emit(const std::string &line) { out_ += line + "\n"; }

    std::string reg(int n) { return "x" + std::to_string(n); }

    std::string
    dataReg()
    {
        return reg(kDataRegs[rng_.below(kNumDataRegs)]);
    }

    std::string freg() { return "f" + std::to_string(rng_.below(8)); }

    std::string
    label(const char *stem)
    {
        return std::string(stem) + std::to_string(label_counter_++);
    }

    /** One random ALU instruction. */
    void
    aluOp()
    {
        static const char *kRR[] = {"add", "sub", "sll", "slt", "sltu",
                                    "xor", "srl", "sra", "or", "and"};
        static const char *kRI[] = {"addi", "slti", "sltiu", "xori",
                                    "ori", "andi"};
        static const char *kSh[] = {"slli", "srli", "srai"};
        static const char *kMd[] = {"mul", "mulh", "mulhsu", "mulhu",
                                    "div", "divu", "rem", "remu"};
        const unsigned pick = static_cast<unsigned>(rng_.below(10));
        if (pick < 4) {
            emit("    " + std::string(kRR[rng_.below(10)]) + " " +
                 dataReg() + ", " + dataReg() + ", " + dataReg());
        } else if (pick < 7) {
            emit("    " + std::string(kRI[rng_.below(6)]) + " " +
                 dataReg() + ", " + dataReg() + ", " +
                 std::to_string(rng_.range(-2048, 2047)));
        } else if (pick < 9) {
            emit("    " + std::string(kSh[rng_.below(3)]) + " " +
                 dataReg() + ", " + dataReg() + ", " +
                 std::to_string(rng_.below(32)));
        } else if (opt_.use_muldiv) {
            emit("    " + std::string(kMd[rng_.below(8)]) + " " +
                 dataReg() + ", " + dataReg() + ", " + dataReg());
        } else {
            emit("    add " + dataReg() + ", " + dataReg() + ", " +
                 dataReg());
        }
    }

    void
    fpOp()
    {
        static const char *kF2[] = {"fadd.s", "fsub.s", "fmul.s",
                                    "fdiv.s", "fmin.s", "fmax.s",
                                    "fsgnj.s", "fsgnjx.s"};
        const unsigned pick = static_cast<unsigned>(rng_.below(10));
        if (pick < 6) {
            emit("    " + std::string(kF2[rng_.below(8)]) + " " +
                 freg() + ", " + freg() + ", " + freg());
        } else if (pick < 7) {
            emit("    fmadd.s " + freg() + ", " + freg() + ", " +
                 freg() + ", " + freg());
        } else if (pick < 8) {
            emit("    fcvt.s.w " + freg() + ", " + dataReg());
        } else if (pick < 9) {
            emit("    fcvt.w.s " + dataReg() + ", " + freg());
        } else {
            emit("    feq.s " + dataReg() + ", " + freg() + ", " +
                 freg());
        }
    }

    /** A load or store confined to the scratch buffer. */
    void
    memOp()
    {
        const u32 word_off = static_cast<u32>(
            rng_.below(opt_.buffer_words) * 4);
        // Keep offsets encodable in 12 bits.
        const u32 off = word_off & 0x7fc;
        const unsigned pick = static_cast<unsigned>(rng_.below(10));
        const std::string at = std::to_string(off) + "(x29)";
        if (pick < 3) {
            emit("    sw " + dataReg() + ", " + at);
        } else if (pick < 6) {
            emit("    lw " + dataReg() + ", " + at);
        } else if (pick < 7) {
            emit("    sb " + dataReg() + ", " +
                 std::to_string(off + rng_.below(4)) + "(x29)");
        } else if (pick < 8) {
            emit("    lbu " + dataReg() + ", " +
                 std::to_string(off + rng_.below(4)) + "(x29)");
        } else if (pick < 9) {
            emit("    sh " + dataReg() + ", " +
                 std::to_string(off + 2 * rng_.below(2)) + "(x29)");
        } else {
            emit("    lh " + dataReg() + ", " +
                 std::to_string(off + 2 * rng_.below(2)) + "(x29)");
        }
    }

    void
    body(unsigned len, bool allow_branch)
    {
        for (unsigned i = 0; i < len; ++i) {
            const unsigned pick = static_cast<unsigned>(rng_.below(10));
            if (opt_.use_mem && pick < 3) {
                memOp();
            } else if (opt_.use_fp && pick < 5) {
                fpOp();
            } else if (allow_branch && pick == 9) {
                forwardBranch();
            } else {
                aluOp();
            }
        }
    }

    /** A branch over a short always-defined fall-through body. */
    void
    forwardBranch()
    {
        static const char *kBr[] = {"beq", "bne", "blt", "bge", "bltu",
                                    "bgeu"};
        const std::string skip = label("skip");
        emit("    " + std::string(kBr[rng_.below(6)]) + " " +
             dataReg() + ", " + dataReg() + ", " + skip);
        body(1 + static_cast<unsigned>(rng_.below(4)), false);
        emit(skip + ":");
    }

    /** A counted loop (x30 is reserved as the counter). */
    void
    countedLoop()
    {
        const std::string head = label("loop");
        emit("    li x30, " + std::to_string(2 + rng_.below(6)));
        emit(head + ":");
        body(2 + static_cast<unsigned>(rng_.below(8)), true);
        emit("    addi x30, x30, -1");
        emit("    bnez x30, " + head);
    }

    void
    callHelper()
    {
        emit("    call helper" + std::to_string(rng_.below(2)));
    }

    void
    segment()
    {
        const unsigned pick = static_cast<unsigned>(rng_.below(10));
        if (pick < 4) {
            body(4 + static_cast<unsigned>(rng_.below(12)), true);
        } else if (pick < 7) {
            countedLoop();
        } else if (pick < 8 && opt_.use_calls) {
            callHelper();
        } else {
            forwardBranch();
        }
    }

    /**
     * A counted parallel loop over the scratch buffer. rc (x26)
     * counts bytes in stride steps, so each thread owns the
     * [rc, rc+stride) slice and per-thread footprints are disjoint
     * by construction — unless a race is injected, in which case a
     * load reaches into the next thread's slice (or a fixed address
     * is shared), and FuzzProgram::racy records that ground truth.
     * Body temporaries (x8, x24) are always written before read so
     * the region passes the loop-carried-dependence scan.
     */
    void
    simtRegion()
    {
        const unsigned n = 2 + static_cast<unsigned>(rng_.below(15));
        const unsigned stride =
            8 + 4 * static_cast<unsigned>(rng_.below(3));
        const bool inject_race =
            opt_.hazard_pct > 0 &&
            rng_.below(100) < opt_.hazard_pct;
        const std::string head = label("simt");
        emit("    li x26, 0");
        emit("    li x27, " + std::to_string(stride));
        emit("    li x25, " + std::to_string(n * stride));
        emit(head + ":");
        emit("    simt_s x26, x27, x25, " +
             std::to_string(1 + rng_.below(2)));
        emit("    add x8, x29, x26");
        emit("    sw " + dataReg() + ", 0(x8)");
        const unsigned extra = static_cast<unsigned>(rng_.below(3));
        for (unsigned i = 0; i < extra; ++i) {
            const unsigned off =
                4 * (1 + static_cast<unsigned>(
                             rng_.below(stride / 4 - 1)));
            if (rng_.below(2) == 0) {
                emit("    sw " + dataReg() + ", " +
                     std::to_string(off) + "(x8)");
            } else {
                emit("    lw x24, " + std::to_string(off) + "(x8)");
                emit("    add x24, x24, " + dataReg());
                emit("    sw x24, " + std::to_string(off) + "(x8)");
            }
        }
        if (inject_race) {
            if (rng_.below(2) == 0) {
                // Read the next thread's slice: a definite
                // cross-thread RAW on the store at offset 0.
                emit("    addi x24, x26, " + std::to_string(stride));
                emit("    add x24, x24, x29");
                emit("    lw x24, 0(x24)");
            } else {
                // Every thread stores to and loads from buf[0].
                emit("    sw " + dataReg() + ", 0(x29)");
                emit("    lw x24, 0(x29)");
            }
            meta_.racy = true;
            ++meta_.racy_regions;
        }
        emit("    simt_e x26, x25, " + head);
        meta_.has_simt = true;
        ++meta_.regions;
    }

    /** One deliberate scalar trap hazard, recorded in the metadata. */
    void
    scalarHazard()
    {
        const unsigned pick = static_cast<unsigned>(rng_.below(3));
        if (pick == 0 && opt_.use_muldiv) {
            emit("    li x8, 0");
            emit("    div x24, " + dataReg() + ", x8");
            meta_.div0 = true;
        } else if (pick <= 1 && opt_.use_mem) {
            emit("    lw x24, 2(x29)");
            meta_.misaligned = true;
        } else if (opt_.use_mem) {
            emit("    li x8, " +
                 std::to_string(opt_.buffer_words * 4 + 4096));
            emit("    add x8, x8, x29");
            emit("    sw " + dataReg() + ", 0(x8)");
            meta_.oob = true;
        }
    }

    void
    helpers()
    {
        for (int h = 0; h < 2; ++h) {
            emit("helper" + std::to_string(h) + ":");
            for (int i = 0; i < 4; ++i)
                aluOp();
            emit("    ret");
        }
    }

    const FuzzOptions &opt_;
    Rng rng_;
    std::string out_;
    FuzzProgram meta_;
    unsigned label_counter_ = 0;
};

} // namespace

std::string
generateFuzzProgram(const FuzzOptions &opt)
{
    Generator gen(opt);
    return gen.run().source;
}

FuzzProgram
generateFuzzProgramEx(const FuzzOptions &opt)
{
    Generator gen(opt);
    return gen.run();
}

} // namespace diag::sim
