/**
 * @file
 * Engine-agnostic run statistics returned by both the DiAG model and
 * the out-of-order baseline; consumed by the harness and energy model.
 */
#ifndef DIAG_SIM_RUN_STATS_HPP
#define DIAG_SIM_RUN_STATS_HPP

#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace diag::sim
{

/** Result of running a workload on a timing model. */
struct RunStats
{
    Cycle cycles = 0;        //!< total execution time in core cycles
    u64 instructions = 0;    //!< retired (committed) instructions
    bool halted = false;     //!< reached EBREAK normally
    bool timed_out = false;  //!< watchdog / max_cycles / inst budget
    bool faulted = false;    //!< hardware trap (bad encoding, bad PC)
    bool aborted = false;    //!< detected-unrecoverable fault abort
    std::string stop_reason; //!< one-line reason when not halted
    StatGroup counters{"run"}; //!< model-specific activity counters

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

} // namespace diag::sim

#endif // DIAG_SIM_RUN_STATS_HPP
