/**
 * @file
 * Random RISC-V program generator for differential testing. Generated
 * programs are control-flow-closed (every loop is counted, every branch
 * target exists), touch memory only inside a scratch buffer, and end in
 * EBREAK — so they terminate on any correct execution engine and can be
 * compared architecturally against the golden simulator.
 */
#ifndef DIAG_SIM_FUZZ_HPP
#define DIAG_SIM_FUZZ_HPP

#include <string>

#include "common/types.hpp"

namespace diag::sim
{

/** Knobs for the random program generator. */
struct FuzzOptions
{
    u64 seed = 1;
    unsigned segments = 12;     //!< top-level code segments
    bool use_mem = true;        //!< loads/stores to the scratch buffer
    bool use_fp = false;        //!< RV32F operations
    bool use_muldiv = true;     //!< RV32M operations
    bool use_calls = true;      //!< jal/jalr function calls
    unsigned buffer_words = 256; //!< scratch buffer size in words
    /** Emit simt_s/simt_e counted parallel loops over the scratch
     *  buffer (each thread owns a stride-disjoint slice). */
    bool use_simt = false;
    unsigned simt_regions = 2;  //!< parallel regions when use_simt
    /**
     * Percent chance of deliberately injecting one hazard of each
     * scope: per region a cross-thread race (overlapping per-thread
     * footprints), and per program one scalar trap hazard (constant
     * zero divisor, misaligned word access, or an access beyond the
     * data map). What was injected is reported in FuzzProgram, giving
     * differential validation its ground truth. 0 = always clean.
     */
    unsigned hazard_pct = 0;
};

/**
 * A generated program plus the ground truth of what the generator
 * deliberately injected. The flags are constructive guarantees: when
 * `racy` is false every simt region's per-thread footprints are
 * disjoint by construction; when true, two pipelined threads touch
 * the same bytes with at least one store.
 */
struct FuzzProgram
{
    std::string source;
    bool has_simt = false;
    unsigned regions = 0;      //!< simt regions emitted
    unsigned racy_regions = 0; //!< regions with an injected race
    bool racy = false;         //!< injected cross-thread race
    bool div0 = false;        //!< injected constant zero divisor
    bool misaligned = false;  //!< injected misaligned word access
    bool oob = false;         //!< injected access beyond the data map
};

/** Generate an assembly source string per @p opt. */
std::string generateFuzzProgram(const FuzzOptions &opt);

/** Generate a program along with its injected-hazard ground truth. */
FuzzProgram generateFuzzProgramEx(const FuzzOptions &opt);

} // namespace diag::sim

#endif // DIAG_SIM_FUZZ_HPP
