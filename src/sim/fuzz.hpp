/**
 * @file
 * Random RISC-V program generator for differential testing. Generated
 * programs are control-flow-closed (every loop is counted, every branch
 * target exists), touch memory only inside a scratch buffer, and end in
 * EBREAK — so they terminate on any correct execution engine and can be
 * compared architecturally against the golden simulator.
 */
#ifndef DIAG_SIM_FUZZ_HPP
#define DIAG_SIM_FUZZ_HPP

#include <string>

#include "common/types.hpp"

namespace diag::sim
{

/** Knobs for the random program generator. */
struct FuzzOptions
{
    u64 seed = 1;
    unsigned segments = 12;     //!< top-level code segments
    bool use_mem = true;        //!< loads/stores to the scratch buffer
    bool use_fp = false;        //!< RV32F operations
    bool use_muldiv = true;     //!< RV32M operations
    bool use_calls = true;      //!< jal/jalr function calls
    unsigned buffer_words = 256; //!< scratch buffer size in words
};

/** Generate an assembly source string per @p opt. */
std::string generateFuzzProgram(const FuzzOptions &opt);

} // namespace diag::sim

#endif // DIAG_SIM_FUZZ_HPP
