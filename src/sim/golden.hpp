/**
 * @file
 * Golden functional RV32IMF simulator. This is the reference model: the
 * DiAG and out-of-order timing models are differentially tested against
 * it, and workload self-checks run on it first.
 */
#ifndef DIAG_SIM_GOLDEN_HPP
#define DIAG_SIM_GOLDEN_HPP

#include <functional>
#include <unordered_map>

#include "asm/program.hpp"
#include "common/sparse_mem.hpp"
#include "isa/decoder.hpp"
#include "isa/exec.hpp"

namespace diag::sim
{

/** What one retired instruction did (for traces and diff-testing). */
struct StepInfo
{
    Addr pc = 0;               //!< address of the retired instruction
    isa::DecodedInst inst;     //!< decoded instruction
    Addr next_pc = 0;          //!< PC after this instruction
    bool wrote_reg = false;    //!< destination register written
    isa::RegId rd = isa::kNoReg;
    u32 rd_value = 0;
    bool is_mem = false;       //!< load or store
    Addr mem_addr = 0;
    u32 mem_value = 0;         //!< loaded or stored value
    bool halted = false;       //!< EBREAK/ECALL reached
    bool faulted = false;      //!< undecodable instruction reached
};

/** Outcome of a run() call. */
struct RunResult
{
    u64 inst_count = 0;  //!< retired instructions
    bool halted = false; //!< reached EBREAK/ECALL
    bool faulted = false;//!< hit an invalid encoding
    Addr stop_pc = 0;    //!< PC of the halting/faulting instruction
};

/**
 * Architectural-state interpreter. Unified register file (x0..x31 then
 * f0..f31), byte-addressable sparse memory, no timing.
 */
class GoldenSim
{
  public:
    /** Load @p prog (code+data into memory, PC at the entry point). */
    explicit GoldenSim(const Program &prog);

    /** Execute one instruction. */
    StepInfo step();

    /** Run until halt/fault or @p max_insts retires. */
    RunResult run(u64 max_insts = 100'000'000);

    /** Read a unified-space register (x0 reads as zero). */
    u32
    reg(isa::RegId r) const
    {
        return r == isa::kRegZero ? 0 : regs_[r];
    }

    /** Write a unified-space register (x0 writes are dropped). */
    void
    setReg(isa::RegId r, u32 value)
    {
        if (r != isa::kRegZero)
            regs_[r] = value;
    }

    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; }
    bool halted() const { return halted_; }

    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }

    /** Total instructions retired so far. */
    u64 instCount() const { return inst_count_; }

    /** Optional per-instruction observer (tracing, diff-testing). */
    void setTraceHook(std::function<void(const StepInfo &)> hook)
    {
        trace_ = std::move(hook);
    }

    /** Decoded instruction at @p addr (cached). */
    const isa::DecodedInst &decodeAt(Addr addr);

  private:
    SparseMemory mem_;
    u32 regs_[isa::kNumRegs] = {};
    Addr pc_ = 0;
    bool halted_ = false;
    u64 inst_count_ = 0;
    std::function<void(const StepInfo &)> trace_;
    std::unordered_map<Addr, isa::DecodedInst> icache_;
};

} // namespace diag::sim

#endif // DIAG_SIM_GOLDEN_HPP
