#include "sim/golden.hpp"

#include "common/log.hpp"

namespace diag::sim
{

using namespace diag::isa;

GoldenSim::GoldenSim(const Program &prog)
{
    prog.loadInto(mem_);
    pc_ = prog.entry;
}

const DecodedInst &
GoldenSim::decodeAt(Addr addr)
{
    auto it = icache_.find(addr);
    if (it != icache_.end())
        return it->second;
    const DecodedInst di = decode(mem_.read32(addr));
    return icache_.emplace(addr, di).first->second;
}

StepInfo
GoldenSim::step()
{
    StepInfo info;
    info.pc = pc_;
    const DecodedInst &di = decodeAt(pc_);
    info.inst = di;
    if (!di.valid()) {
        info.faulted = true;
        info.halted = true;
        halted_ = true;
        info.next_pc = pc_;
        return info;
    }
    ++inst_count_;
    Addr next_pc = pc_ + 4;
    if (di.isLoad()) {
        const Addr ea = effectiveAddr(di, reg(di.rs1));
        const u32 raw = mem_.read(ea, di.info().memBytes);
        const u32 value = loadExtend(di, raw);
        setReg(di.rd, value);
        info.is_mem = true;
        info.mem_addr = ea;
        info.mem_value = value;
        info.wrote_reg = di.writesReg();
        info.rd = di.rd;
        info.rd_value = value;
    } else if (di.isStore()) {
        const Addr ea = effectiveAddr(di, reg(di.rs1));
        const u32 value = reg(di.rs2);
        mem_.write(ea, value, di.info().memBytes);
        info.is_mem = true;
        info.mem_addr = ea;
        info.mem_value = value;
    } else {
        u32 c = 0;
        if (di.op == Op::SIMT_E) {
            // Recover the step register from the matching simt_s.
            const auto ef = simtEndFields(di);
            const DecodedInst &start = decodeAt(pc_ - ef.lOffset);
            fatal_if(start.op != Op::SIMT_S,
                     "simt_e at 0x%x: no simt_s at 0x%x", pc_,
                     pc_ - ef.lOffset);
            c = reg(simtStartFields(start).rStep);
        } else if (di.rs3 != kNoReg) {
            c = reg(di.rs3);
        }
        const ExecOut out =
            execute(di, pc_, reg(di.rs1 == kNoReg ? kRegZero : di.rs1),
                    reg(di.rs2 == kNoReg ? kRegZero : di.rs2), c);
        if (di.writesReg()) {
            setReg(di.rd, out.value);
            info.wrote_reg = true;
            info.rd = di.rd;
            info.rd_value = out.value;
        }
        if (out.redirect)
            next_pc = out.target;
        if (out.halt) {
            halted_ = true;
            info.halted = true;
            next_pc = pc_;
        }
    }
    info.next_pc = next_pc;
    pc_ = next_pc;
    if (trace_)
        trace_(info);
    return info;
}

RunResult
GoldenSim::run(u64 max_insts)
{
    RunResult res;
    const u64 start = inst_count_;
    while (!halted_ && inst_count_ - start < max_insts) {
        const StepInfo info = step();
        if (info.halted) {
            res.halted = !info.faulted;
            res.faulted = info.faulted;
            res.stop_pc = info.pc;
            break;
        }
    }
    res.inst_count = inst_count_ - start;
    return res;
}

} // namespace diag::sim
