/**
 * @file
 * Request-lifecycle observability for the serve layer (DESIGN.md §16):
 * a MetricRegistry holding per-stage latency histograms plus lifecycle
 * counters, and a span list renderable as a Perfetto track per worker
 * via trace::writeSpanTrace.
 *
 * The serve layer records timestamps in milliseconds (virtual ms in the
 * soak DES, wall ms in the threaded service); spans convert to
 * microseconds on the way into the track so the viewer scale matches
 * the engine traces. A ServeObs is unsynchronized like the registry it
 * wraps — the soak DES owns one on its single replay thread, and the
 * threaded service guards its instance with the service mutex.
 */
#ifndef DIAG_OBS_SERVE_OBS_HPP
#define DIAG_OBS_SERVE_OBS_HPP

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "trace/export.hpp"

namespace diag::obs
{

/** Stage histograms, lifecycle metrics, and spans for one service
 *  run. Copyable so the threaded service can hand out snapshots. */
class ServeObs
{
  public:
    MetricRegistry reg{"serve"};
    std::vector<trace::SpanEvent> spans;

    // ---- stage histograms (fixed key set, see DESIGN.md §16) ----

    /** Admission to first dispatch, ms. */
    void queueWaitMs(u64 ms) { reg.observe("queue_wait_ms", ms); }
    /** One attempt's service time, ms (breaker-gated excluded). */
    void attemptMs(u64 ms) { reg.observe("attempt_ms", ms); }
    /** Retry backoff wait, ms. */
    void backoffMs(u64 ms) { reg.observe("backoff_ms", ms); }
    /** Admission to resolution, ms. */
    void totalMs(u64 ms) { reg.observe("total_ms", ms); }
    /** High-watermark of the admission queue depth. */
    void queueDepth(u64 depth) { reg.maxGauge("queue_depth_max", depth); }

    // ---- span emitters (ts/dur in ms; stored as us) ----

    /** Queued span on the shared queue track. */
    void spanQueue(u64 request, u64 ts_ms, u64 dur_ms);

    /**
     * One attempt on @p worker's track. @p cat is the span taxonomy
     * slot: "attempt" (real execution), "breaker" (gated, burns the
     * attempt without running), or "cache" (served from the result
     * cache, zero duration).
     */
    void spanAttempt(unsigned worker, u64 request, unsigned attempt,
                     const char *cat, u64 ts_ms, u64 dur_ms);

    /** Retry backoff on @p worker's track. */
    void spanBackoff(unsigned worker, u64 request, unsigned attempt,
                     u64 ts_ms, u64 dur_ms);
};

} // namespace diag::obs

#endif // DIAG_OBS_SERVE_OBS_HPP
