/**
 * @file
 * Simulator self-profiling counters for the skip-idle scheduler
 * (DESIGN.md §15/§16): how often the steady-state loop batcher
 * actually engages, how much work it extrapolates, and — when it does
 * not engage — why qualifyBatchWindow or the dynamic blacklist turned
 * the line down.
 *
 * Header-only on purpose: diag_core does not link diag_trace or
 * diag_obs, so the hook type it stores a pointer to must be complete
 * from a header alone. The profile is plain u64 tallies with no
 * side effects on simulation state; attaching one never alters
 * cycles, counters, or traces (asserted by tests/obs/test_metrics.cpp
 * the same way the tracer's zero-overhead contract is).
 */
#ifndef DIAG_OBS_SIM_PROFILE_HPP
#define DIAG_OBS_SIM_PROFILE_HPP

#include "common/types.hpp"

namespace diag::obs
{

/**
 * Why the loop batcher declined a line, tallied once per line
 * classification (qualifyBatchWindow caches its verdict per cluster,
 * so each reason is counted at most once per line load — re-running
 * the same cached verdict adds nothing, keeping the tallies
 * deterministic and independent of how often the line re-executes).
 */
enum BatchReason : unsigned {
    kReasonInvalidInst = 0,   //!< window reached a non-instruction slot
    kReasonNotSelfLoop,       //!< branch present but not a self-loop top
    kReasonInteriorMem,       //!< memory op inside the window
    kReasonInteriorControl,   //!< non-loop control flow inside the window
    kReasonInteriorSimt,      //!< simt region marker inside the window
    kReasonNoTerminator,      //!< fell off the line without a branch
    kReasonOutOfLine,         //!< start slot beyond the line's PEs
    kReasonCount
};

inline const char *
batchReasonName(unsigned r)
{
    switch (r) {
    case kReasonInvalidInst: return "invalid_inst";
    case kReasonNotSelfLoop: return "not_self_loop";
    case kReasonInteriorMem: return "interior_mem";
    case kReasonInteriorControl: return "interior_control";
    case kReasonInteriorSimt: return "interior_simt";
    case kReasonNoTerminator: return "no_terminator";
    case kReasonOutOfLine: return "out_of_line";
    default: return "unknown";
    }
}

/**
 * Skip-idle fast-path coverage for one simulator run. All counters are
 * additive, so per-ring/per-worker profiles merge with operator+=.
 */
struct SimProfile {
    /// Activations stepped densely through the execution engine
    /// (serial path; each engine.run call on the scalar pipeline).
    u64 dense_activations = 0;
    /// Activations retired via simt pipeline dispatch.
    u64 simt_activations = 0;
    /// Successful bulk extrapolations (each covers many iterations).
    u64 batch_jumps = 0;
    /// Loop iterations applied in bulk instead of being stepped.
    u64 batched_iterations = 0;
    /// Instructions retired through bulk extrapolation.
    u64 batched_insts = 0;
    /// Loop-probe windows opened (snapshot taken at a batchable top).
    u64 probe_attempts = 0;
    /// Probe diffs that failed to confirm a steady state.
    u64 probe_misses = 0;
    /// Lines dynamically blacklisted after kProbeFails non-ramping
    /// failures (batch_window demoted to "not batchable").
    u64 probe_blacklisted = 0;
    /// simt regions resolved with the closed-form trip count...
    u64 simt_closed_form = 0;
    /// ...vs. walked iteratively (data-dependent trip).
    u64 simt_iterative = 0;
    /// Lines classified batchable by qualifyBatchWindow.
    u64 lines_batchable = 0;
    /// Per-reason disqualification tallies (see BatchReason).
    u64 disqualified[kReasonCount] = {};

    void
    merge(const SimProfile &o)
    {
        dense_activations += o.dense_activations;
        simt_activations += o.simt_activations;
        batch_jumps += o.batch_jumps;
        batched_iterations += o.batched_iterations;
        batched_insts += o.batched_insts;
        probe_attempts += o.probe_attempts;
        probe_misses += o.probe_misses;
        probe_blacklisted += o.probe_blacklisted;
        simt_closed_form += o.simt_closed_form;
        simt_iterative += o.simt_iterative;
        lines_batchable += o.lines_batchable;
        for (unsigned r = 0; r < kReasonCount; ++r)
            disqualified[r] += o.disqualified[r];
    }

    u64
    disqualifiedTotal() const
    {
        u64 t = 0;
        for (unsigned r = 0; r < kReasonCount; ++r)
            t += disqualified[r];
        return t;
    }

    /** Fraction of loop-iteration activations covered by the batcher:
     *  batched / (batched + densely stepped). Zero when nothing ran. */
    double
    batchedFraction() const
    {
        const u64 denom = batched_iterations + dense_activations;
        return denom == 0
            ? 0.0
            : static_cast<double>(batched_iterations) /
                  static_cast<double>(denom);
    }
};

} // namespace diag::obs

#endif // DIAG_OBS_SIM_PROFILE_HPP
