#include "obs/serve_obs.hpp"

#include "common/log.hpp"

namespace diag::obs
{

void
ServeObs::spanQueue(u64 request, u64 ts_ms, u64 dur_ms)
{
    spans.push_back({trace::kSpanTrackQueue,
                     detail::vformat("req %llu queued",
                                     static_cast<unsigned long long>(
                                         request)),
                     "queue", ts_ms * 1000, dur_ms * 1000, request});
}

void
ServeObs::spanAttempt(unsigned worker, u64 request, unsigned attempt,
                      const char *cat, u64 ts_ms, u64 dur_ms)
{
    spans.push_back({worker,
                     detail::vformat(
                         "req %llu attempt %u",
                         static_cast<unsigned long long>(request),
                         attempt),
                     cat, ts_ms * 1000, dur_ms * 1000, request});
}

void
ServeObs::spanBackoff(unsigned worker, u64 request, unsigned attempt,
                      u64 ts_ms, u64 dur_ms)
{
    spans.push_back({worker,
                     detail::vformat(
                         "req %llu backoff %u",
                         static_cast<unsigned long long>(request),
                         attempt),
                     "backoff", ts_ms * 1000, dur_ms * 1000, request});
}

} // namespace diag::obs
