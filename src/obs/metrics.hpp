/**
 * @file
 * Deterministic metrics core (DESIGN.md §16): counters, gauges, and
 * log2-bucketed histograms with byte-stable key-sorted JSON dumps
 * matching the StatGroup::dumpJson contract.
 *
 * Concurrency contract mirrors StatGroup (DESIGN.md §10): a
 * MetricRegistry is deliberately unsynchronized and must stay confined
 * to the host worker that owns it; cross-worker aggregation happens
 * after the owning tasks complete via merge(), in task-index order.
 * Every merge operation is commutative and associative (counters and
 * histogram buckets sum, gauges take the max), so a merged snapshot is
 * byte-identical for any --jobs N.
 */
#ifndef DIAG_OBS_METRICS_HPP
#define DIAG_OBS_METRICS_HPP

#include <array>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace diag::obs
{

/**
 * Fixed-shape log2 histogram over unsigned values.
 *
 * Bucket 0 holds the value 0; bucket k >= 1 holds [2^(k-1), 2^k), so
 * bucket k's inclusive upper bound is 2^k - 1 (bucket 64 absorbs the
 * top of the u64 range). The shape is data-independent, which makes
 * merge() a plain bucket-wise sum and keeps snapshots byte-identical
 * regardless of how samples were sharded across workers.
 *
 * Percentiles are computed with integer rank arithmetic — no floating
 * point — and report the matching bucket's upper bound, capped at the
 * exact recorded max (so max() is always exact and p-anything never
 * exceeds it).
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 65;

    /** Bucket index for @p v: 0 for 0, else 64 - clz(v). */
    static unsigned
    bucketOf(u64 v)
    {
        if (v == 0)
            return 0;
        unsigned b = 0;
        while (v) {
            v >>= 1;
            ++b;
        }
        return b;
    }

    /** Inclusive upper bound of bucket @p b. */
    static u64
    upperOf(unsigned b)
    {
        if (b == 0)
            return 0;
        if (b >= 64)
            return ~u64{0};
        return (u64{1} << b) - 1;
    }

    void
    record(u64 v)
    {
        ++counts_[bucketOf(v)];
        ++count_;
        sum_ += v;
        if (v > max_)
            max_ = v;
    }

    void
    merge(const Histogram &other)
    {
        for (unsigned b = 0; b < kBuckets; ++b)
            counts_[b] += other.counts_[b];
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

    u64 count() const { return count_; }
    u64 sum() const { return sum_; }
    u64 max() const { return max_; }
    u64 bucket(unsigned b) const { return counts_[b]; }

    /**
     * Value at or below which at least @p pct percent of samples fall:
     * the upper bound of the first bucket whose cumulative count
     * reaches rank ceil(count * pct / 100), capped at the recorded
     * max. Returns 0 for an empty histogram.
     */
    u64
    percentile(unsigned pct) const
    {
        if (count_ == 0)
            return 0;
        const u64 rank = (count_ * pct + 99) / 100;
        u64 cum = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            cum += counts_[b];
            if (cum >= rank) {
                const u64 up = upperOf(b);
                return up < max_ ? up : max_;
            }
        }
        return max_;
    }

  private:
    std::array<u64, kBuckets> counts_{};
    u64 count_ = 0;
    u64 sum_ = 0;
    u64 max_ = 0;
};

/**
 * Named registry of counters (merge: sum), gauges (merge: max), and
 * histograms (merge: bucket-wise sum). Keys live in std::map so every
 * dump walks them sorted; the JSON number format is the shared
 * diag::jsonNumber, byte-compatible with StatGroup::dumpJson.
 */
class MetricRegistry
{
  public:
    explicit MetricRegistry(std::string name = "obs")
        : name_(std::move(name))
    {}

    const std::string &name() const { return name_; }

    void inc(const std::string &key, u64 delta = 1)
    {
        counters_[key] += delta;
    }

    void set(const std::string &key, u64 value) { counters_[key] = value; }

    /** Raise the gauge @p key to @p v if larger (high-watermark). */
    void
    maxGauge(const std::string &key, u64 v)
    {
        auto &g = gauges_[key];
        if (v > g)
            g = v;
    }

    /** Record @p v into the histogram @p key, creating it if absent. */
    void observe(const std::string &key, u64 v) { hists_[key].record(v); }

    u64
    counter(const std::string &key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second;
    }

    u64
    gauge(const std::string &key) const
    {
        auto it = gauges_.find(key);
        return it == gauges_.end() ? 0 : it->second;
    }

    /** Histogram by key, or nullptr when never observed. */
    const Histogram *
    histogram(const std::string &key) const
    {
        auto it = hists_.find(key);
        return it == hists_.end() ? nullptr : &it->second;
    }

    /** Commutative merge; see class comment for per-kind semantics. */
    void merge(const MetricRegistry &other);

    bool
    empty() const
    {
        return counters_.empty() && gauges_.empty() && hists_.empty();
    }

    /**
     * Byte-stable dump: one JSON object with the registry name and
     * key-sorted "counters", "gauges", and "histograms" sections.
     * Histogram buckets render as an array of [upper_bound, count]
     * pairs (an array, not an object keyed by bound — string keys
     * would sort "16" before "8") listing only non-empty buckets.
     */
    void dumpJson(std::ostream &os) const;

    std::string toJson() const;

  private:
    std::string name_;
    std::map<std::string, u64> counters_;
    std::map<std::string, u64> gauges_;
    std::map<std::string, Histogram> hists_;
};

/**
 * Merge per-worker shards into one snapshot, walking shards in task
 * index order. Because every merge is commutative the order does not
 * affect the result — the fixed order just makes that easy to audit.
 */
MetricRegistry mergeShards(const std::string &name,
                           const std::vector<MetricRegistry> &shards);

struct SimProfile;

/**
 * Flatten a skip-idle self-profile into a registry named "sim"
 * (counters only; disqualification reasons keyed disq_<reason>), for
 * byte-stable JSON dumps via MetricRegistry::dumpJson.
 */
MetricRegistry profileRegistry(const SimProfile &p);

} // namespace diag::obs

#endif // DIAG_OBS_METRICS_HPP
