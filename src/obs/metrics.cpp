#include "obs/metrics.hpp"

#include <sstream>

#include "common/stats.hpp"
#include "obs/sim_profile.hpp"

namespace diag::obs
{

void
MetricRegistry::merge(const MetricRegistry &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
    for (const auto &kv : other.gauges_) {
        auto &g = gauges_[kv.first];
        if (kv.second > g)
            g = kv.second;
    }
    for (const auto &kv : other.hists_)
        hists_[kv.first].merge(kv.second);
}

namespace
{

void
dumpScalarMap(std::ostream &os, const char *section,
              const std::map<std::string, u64> &m)
{
    os << ", \"" << section << "\": {";
    bool first = true;
    for (const auto &kv : m) {
        os << (first ? "" : ", ") << '"' << jsonEscape(kv.first)
           << "\": " << jsonNumber(static_cast<double>(kv.second));
        first = false;
    }
    os << '}';
}

void
dumpHistogram(std::ostream &os, const Histogram &h)
{
    os << "{\"count\": " << jsonNumber(static_cast<double>(h.count()))
       << ", \"sum\": " << jsonNumber(static_cast<double>(h.sum()))
       << ", \"max\": " << jsonNumber(static_cast<double>(h.max()))
       << ", \"p50\": " << jsonNumber(static_cast<double>(h.percentile(50)))
       << ", \"p95\": " << jsonNumber(static_cast<double>(h.percentile(95)))
       << ", \"p99\": " << jsonNumber(static_cast<double>(h.percentile(99)))
       << ", \"buckets\": [";
    bool first = true;
    for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
        if (h.bucket(b) == 0)
            continue;
        os << (first ? "" : ", ") << '['
           << jsonNumber(static_cast<double>(Histogram::upperOf(b))) << ", "
           << jsonNumber(static_cast<double>(h.bucket(b))) << ']';
        first = false;
    }
    os << "]}";
}

} // namespace

void
MetricRegistry::dumpJson(std::ostream &os) const
{
    os << "{\"group\": \"" << jsonEscape(name_) << '"';
    dumpScalarMap(os, "counters", counters_);
    dumpScalarMap(os, "gauges", gauges_);
    os << ", \"histograms\": {";
    bool first = true;
    for (const auto &kv : hists_) {
        os << (first ? "" : ", ") << '"' << jsonEscape(kv.first) << "\": ";
        dumpHistogram(os, kv.second);
        first = false;
    }
    os << "}}\n";
}

std::string
MetricRegistry::toJson() const
{
    std::ostringstream os;
    dumpJson(os);
    return os.str();
}

MetricRegistry
mergeShards(const std::string &name,
            const std::vector<MetricRegistry> &shards)
{
    MetricRegistry merged(name);
    for (const auto &shard : shards)
        merged.merge(shard);
    return merged;
}

MetricRegistry
profileRegistry(const SimProfile &p)
{
    MetricRegistry reg("sim");
    reg.set("dense_activations", p.dense_activations);
    reg.set("simt_activations", p.simt_activations);
    reg.set("batch_jumps", p.batch_jumps);
    reg.set("batched_iterations", p.batched_iterations);
    reg.set("batched_insts", p.batched_insts);
    reg.set("probe_attempts", p.probe_attempts);
    reg.set("probe_misses", p.probe_misses);
    reg.set("probe_blacklisted", p.probe_blacklisted);
    reg.set("simt_closed_form", p.simt_closed_form);
    reg.set("simt_iterative", p.simt_iterative);
    reg.set("lines_batchable", p.lines_batchable);
    for (unsigned r = 0; r < kReasonCount; ++r)
        reg.set(std::string("disq_") + batchReasonName(r),
                p.disqualified[r]);
    return reg;
}

} // namespace diag::obs
