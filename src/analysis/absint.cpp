#include "analysis/absint.hpp"

#include <algorithm>
#include <deque>

namespace diag::analysis
{

using namespace diag::isa;

namespace
{

constexpr u64 kU32Max = 0xffffffffull;

/** Bits strictly above the highest set bit of @p x (x != 0). */
u32
aboveHighestBit(u32 x)
{
    unsigned hb = 31;
    while (!(x & (1u << hb)))
        --hb;
    return hb == 31 ? 0 : (~0u << (hb + 1));
}

} // namespace

void
AbsVal::normalize()
{
    if (lo > hi || hi > kU32Max) {
        *this = bottom();
        return;
    }
    kval &= kmask;
    // Iterate interval<->bits tightening to a local fixed point; each
    // direction only shrinks the abstraction, so this terminates fast.
    for (int pass = 0; pass < 4; ++pass) {
        bool changed = false;
        // Interval -> bits: bits above the highest differing bit of
        // lo and hi are shared by every value in the interval.
        const u32 l = static_cast<u32>(lo);
        const u32 h = static_cast<u32>(hi);
        const u32 diff = l ^ h;
        const u32 iv_mask = diff ? aboveHighestBit(diff) : ~0u;
        const u32 iv_val = l & iv_mask;
        if ((iv_val ^ kval) & (iv_mask & kmask)) {
            *this = bottom();
            return;
        }
        if ((kmask & iv_mask) != iv_mask) {
            kmask |= iv_mask;
            kval |= iv_val;
            changed = true;
        }
        // Bits -> interval: clamp to the min/max value any bit
        // assignment of the unknown positions can reach.
        const u64 bit_min = kval;
        const u64 bit_max = static_cast<u64>(kval | ~kmask) & kU32Max;
        if (lo < bit_min) {
            lo = bit_min;
            changed = true;
        }
        if (hi > bit_max) {
            hi = bit_max;
            changed = true;
        }
        if (lo > hi) {
            *this = bottom();
            return;
        }
        if (!changed)
            break;
    }
}

bool
AbsVal::join(const AbsVal &o)
{
    if (o.isBottom())
        return false;
    if (isBottom()) {
        *this = o;
        return true;
    }
    AbsVal r;
    r.lo = std::min(lo, o.lo);
    r.hi = std::max(hi, o.hi);
    const u32 agree = kmask & o.kmask & ~(kval ^ o.kval);
    r.kmask = agree;
    r.kval = kval & agree;
    r.normalize();
    if (r == *this)
        return false;
    *this = r;
    return true;
}

bool
AbsVal::widen(const AbsVal &o)
{
    if (o.isBottom())
        return false;
    if (isBottom()) {
        *this = o;
        return true;
    }
    AbsVal r = *this;
    // A bound that is still growing jumps straight to its extreme so
    // long chains of loop iterations cannot creep one step at a time.
    if (o.lo < r.lo)
        r.lo = 0;
    if (o.hi > r.hi)
        r.hi = kU32Max;
    const u32 agree = r.kmask & o.kmask & ~(r.kval ^ o.kval);
    r.kmask = agree;
    r.kval &= agree;
    r.normalize();
    if (r == *this)
        return false;
    *this = r;
    return true;
}

void
AbsVal::meet(const AbsVal &o)
{
    if (isBottom())
        return;
    if (o.isBottom()) {
        *this = bottom();
        return;
    }
    if ((kval ^ o.kval) & (kmask & o.kmask)) {
        *this = bottom();
        return;
    }
    lo = std::max(lo, o.lo);
    hi = std::min(hi, o.hi);
    kval = (kval & kmask) | (o.kval & o.kmask);
    kmask |= o.kmask;
    normalize();
}

AbsVal
absAdd(const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom() || b.isBottom())
        return AbsVal::bottom();
    AbsVal r = AbsVal::top();
    const u64 s_lo = a.lo + b.lo;
    const u64 s_hi = a.hi + b.hi;
    if (s_hi <= kU32Max) {
        r.lo = s_lo;
        r.hi = s_hi;
    }
    // Ripple-carry over the known low bits; the chain is modular, so
    // it stays valid even when the interval above overflowed.
    unsigned carry = 0;
    for (unsigned i = 0; i < 32; ++i) {
        const u32 bit = 1u << i;
        if (!(a.kmask & bit) || !(b.kmask & bit))
            break;
        const unsigned sum = ((a.kval >> i) & 1) + ((b.kval >> i) & 1) +
                             carry;
        r.kmask |= bit;
        r.kval |= (sum & 1u) << i;
        carry = sum >> 1;
    }
    r.normalize();
    return r;
}

AbsVal
absSub(const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom() || b.isBottom())
        return AbsVal::bottom();
    AbsVal r = AbsVal::top();
    if (a.lo >= b.hi) {
        r.lo = a.lo - b.hi;
        r.hi = a.hi - b.lo;
    }
    unsigned borrow = 0;
    for (unsigned i = 0; i < 32; ++i) {
        const u32 bit = 1u << i;
        if (!(a.kmask & bit) || !(b.kmask & bit))
            break;
        const unsigned ai = (a.kval >> i) & 1;
        const unsigned bi = (b.kval >> i) & 1;
        r.kmask |= bit;
        r.kval |= ((ai ^ bi ^ borrow) & 1u) << i;
        borrow = ((1u - ai) & (bi | borrow)) | (bi & borrow);
    }
    r.normalize();
    return r;
}

AbsVal
absAnd(const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom() || b.isBottom())
        return AbsVal::bottom();
    AbsVal r = AbsVal::top();
    const u32 known0 = (a.kmask & ~a.kval) | (b.kmask & ~b.kval);
    const u32 known1 = (a.kmask & a.kval) & (b.kmask & b.kval);
    r.kmask = known0 | known1;
    r.kval = known1;
    r.hi = std::min(a.hi, b.hi);
    r.normalize();
    return r;
}

AbsVal
absOr(const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom() || b.isBottom())
        return AbsVal::bottom();
    AbsVal r = AbsVal::top();
    const u32 known0 = (a.kmask & ~a.kval) & (b.kmask & ~b.kval);
    const u32 known1 = (a.kmask & a.kval) | (b.kmask & b.kval);
    r.kmask = known0 | known1;
    r.kval = known1;
    r.lo = std::max(a.lo, b.lo);
    r.normalize();
    return r;
}

AbsVal
absXor(const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom() || b.isBottom())
        return AbsVal::bottom();
    AbsVal r = AbsVal::top();
    r.kmask = a.kmask & b.kmask;
    r.kval = (a.kval ^ b.kval) & r.kmask;
    r.normalize();
    return r;
}

AbsVal
absShl(const AbsVal &a, unsigned sh)
{
    if (a.isBottom())
        return AbsVal::bottom();
    sh &= 31;
    if (sh == 0)
        return a;
    AbsVal r = AbsVal::top();
    r.kmask = (a.kmask << sh) | ((1u << sh) - 1);
    r.kval = a.kval << sh;
    if ((a.hi << sh) <= kU32Max) {
        r.lo = a.lo << sh;
        r.hi = a.hi << sh;
    }
    r.normalize();
    return r;
}

AbsVal
absShr(const AbsVal &a, unsigned sh)
{
    if (a.isBottom())
        return AbsVal::bottom();
    sh &= 31;
    if (sh == 0)
        return a;
    AbsVal r = AbsVal::top();
    r.kmask = (a.kmask >> sh) | (~0u << (32 - sh));
    r.kval = a.kval >> sh;
    r.lo = a.lo >> sh;
    r.hi = a.hi >> sh;
    r.normalize();
    return r;
}

AbsVal
absMul(const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom() || b.isBottom())
        return AbsVal::bottom();
    if (a.isConst() && b.isConst())
        return AbsVal::constant(a.constVal() * b.constVal());
    if ((a.isConst() && a.constVal() == 0) ||
        (b.isConst() && b.constVal() == 0))
        return AbsVal::constant(0);
    AbsVal r = AbsVal::top();
    // Trailing zeros add: a product is at least as aligned as the
    // product of its factors' provable power-of-two divisors.
    unsigned tz = 0;
    while (tz < 32 && (a.kmask & (1u << tz)) && !(a.kval & (1u << tz)))
        ++tz;
    unsigned tzb = 0;
    while (tzb < 32 && (b.kmask & (1u << tzb)) &&
           !(b.kval & (1u << tzb)))
        ++tzb;
    const unsigned zeros = std::min(31u, tz + tzb);
    r.kmask = (1u << zeros) - 1;
    r.kval = 0;
    if (a.hi != 0 && b.hi != 0 && a.hi <= kU32Max / b.hi) {
        r.lo = a.lo * b.lo;
        r.hi = a.hi * b.hi;
    }
    r.normalize();
    return r;
}

namespace
{

constexpr unsigned kWidenAfter = 32;  //!< joins before widening

AbsVal
readReg(const AbsRegs &st, RegId r)
{
    if (r == kNoReg || r == kRegZero)
        return AbsVal::constant(0);
    return st[r];
}

/** rs1 + sign-extended immediate (effective addresses, addi). */
AbsVal
addImm(const AbsVal &a, i32 imm)
{
    return imm >= 0
               ? absAdd(a, AbsVal::constant(static_cast<u32>(imm)))
               : absSub(a, AbsVal::constant(static_cast<u32>(-imm)));
}

/** Shifted-compare result when provable, else [0, 1]. */
AbsVal
absLessThan(const AbsVal &a, const AbsVal &b, bool is_signed)
{
    if (a.isBottom() || b.isBottom())
        return AbsVal::bottom();
    // Signed compares reduce to unsigned when both operands are
    // proven non-negative (interval within [0, 2^31)).
    if (!is_signed || (a.hi < 0x80000000ull && b.hi < 0x80000000ull)) {
        if (a.hi < b.lo)
            return AbsVal::constant(1);
        if (a.lo >= b.hi)
            return AbsVal::constant(0);
    }
    return AbsVal::interval(0, 1);
}

void
transfer(AbsRegs &st, Addr pc, const DecodedInst &di)
{
    if (!di.writesReg())
        return;
    const AbsVal a = readReg(st, di.rs1);
    const AbsVal b = readReg(st, di.rs2);
    const AbsVal imm = AbsVal::constant(static_cast<u32>(di.imm));
    AbsVal out = AbsVal::top();
    switch (di.op) {
      case Op::LUI:
        out = AbsVal::constant(static_cast<u32>(di.imm));
        break;
      case Op::AUIPC:
        out = AbsVal::constant(pc + static_cast<u32>(di.imm));
        break;
      case Op::ADDI:
        out = addImm(a, di.imm);
        break;
      case Op::ADD:
        out = absAdd(a, b);
        break;
      case Op::SUB:
        out = absSub(a, b);
        break;
      case Op::ANDI:
        out = absAnd(a, imm);
        break;
      case Op::AND:
        out = absAnd(a, b);
        break;
      case Op::ORI:
        out = absOr(a, imm);
        break;
      case Op::OR:
        out = absOr(a, b);
        break;
      case Op::XORI:
        out = absXor(a, imm);
        break;
      case Op::XOR:
        out = absXor(a, b);
        break;
      case Op::SLLI:
        out = absShl(a, static_cast<unsigned>(di.imm) & 31);
        break;
      case Op::SRLI:
        out = absShr(a, static_cast<unsigned>(di.imm) & 31);
        break;
      case Op::SRAI:
        if (a.isConst())
            out = AbsVal::constant(static_cast<u32>(
                static_cast<i32>(a.constVal()) >>
                (static_cast<unsigned>(di.imm) & 31)));
        else if ((a.kmask & 0x80000000u) && !(a.kval & 0x80000000u))
            out = absShr(a, static_cast<unsigned>(di.imm) & 31);
        break;
      case Op::SLL:
        if (b.isConst())
            out = absShl(a, b.constVal() & 31);
        break;
      case Op::SRL:
        if (b.isConst())
            out = absShr(a, b.constVal() & 31);
        break;
      case Op::SRA:
        if (b.isConst() && a.isConst())
            out = AbsVal::constant(static_cast<u32>(
                static_cast<i32>(a.constVal()) >> (b.constVal() & 31)));
        else if (b.isConst() && (a.kmask & 0x80000000u) &&
                 !(a.kval & 0x80000000u))
            out = absShr(a, b.constVal() & 31);
        break;
      case Op::SLT:
        out = absLessThan(a, b, /*is_signed=*/true);
        break;
      case Op::SLTU:
        out = absLessThan(a, b, /*is_signed=*/false);
        break;
      case Op::SLTI:
        out = absLessThan(a, imm, /*is_signed=*/true);
        break;
      case Op::SLTIU:
        out = absLessThan(a, imm, /*is_signed=*/false);
        break;
      case Op::MUL:
        out = absMul(a, b);
        break;
      case Op::LBU:
        out = AbsVal::interval(0, 0xff);
        break;
      case Op::LHU:
        out = AbsVal::interval(0, 0xffff);
        break;
      case Op::JAL:
      case Op::JALR:
        out = AbsVal::constant(pc + 4);
        break;
      case Op::SIMT_S:
        return;  // pure marker: rc keeps its value
      default:
        break;  // loads, div/rem, mulh, FP, simt_e: top
    }
    st[di.rd] = out;
}

/**
 * Refine @p st for the CFG edge on which the branch @p di evaluated
 * to @p taken. Returns false when the refined state is empty (the
 * edge is statically dead).
 */
bool
refineEdge(AbsRegs &st, const DecodedInst &di, bool taken)
{
    AbsVal a = readReg(st, di.rs1);
    AbsVal b = readReg(st, di.rs2);

    enum class Rel { Eq, Ne, Ltu, Geu };
    Rel rel;
    bool usable = true;
    switch (di.op) {
      case Op::BEQ:
        rel = taken ? Rel::Eq : Rel::Ne;
        break;
      case Op::BNE:
        rel = taken ? Rel::Ne : Rel::Eq;
        break;
      case Op::BLTU:
        rel = taken ? Rel::Ltu : Rel::Geu;
        break;
      case Op::BGEU:
        rel = taken ? Rel::Geu : Rel::Ltu;
        break;
      case Op::BLT:
      case Op::BGE:
        // Signed orderings refine like unsigned ones only when both
        // sides are proven non-negative.
        usable = a.hi < 0x80000000ull && b.hi < 0x80000000ull;
        rel = (di.op == Op::BLT) == taken ? Rel::Ltu : Rel::Geu;
        break;
      default:
        return true;
    }
    if (!usable)
        return true;

    switch (rel) {
      case Rel::Eq: {
        AbsVal m = a;
        m.meet(b);
        a = m;
        b = m;
        break;
      }
      case Rel::Ne:
        if (a.isConst() && b.isConst() && a.constVal() == b.constVal())
            return false;
        if (b.isConst()) {
            if (a.lo == b.lo)
                ++a.lo;
            else if (a.hi == b.hi)
                --a.hi;
            a.normalize();
        }
        if (a.isConst()) {
            if (b.lo == a.lo)
                ++b.lo;
            else if (b.hi == a.hi)
                --b.hi;
            b.normalize();
        }
        break;
      case Rel::Ltu:
        if (b.hi == 0)
            return false;
        a.hi = std::min(a.hi, b.hi - 1);
        b.lo = std::max(b.lo, a.lo + 1);
        a.normalize();
        b.normalize();
        break;
      case Rel::Geu:
        a.lo = std::max(a.lo, b.lo);
        b.hi = std::min(b.hi, a.hi);
        a.normalize();
        b.normalize();
        break;
    }
    if (a.isBottom() || b.isBottom())
        return false;
    if (di.rs1 != kNoReg && di.rs1 != kRegZero)
        st[di.rs1] = a;
    if (di.rs2 != kNoReg && di.rs2 != kRegZero)
        st[di.rs2] = b;
    return true;
}

AbsRegs
entryState()
{
    AbsRegs st;
    st.fill(AbsVal::top());
    st[kRegZero] = AbsVal::constant(0);
    return st;
}

/** Post-call state: the callee may have written any lane. */
AbsRegs
clobberedState()
{
    return entryState();
}

bool
joinRegs(AbsRegs &into, const AbsRegs &from, bool widen)
{
    bool changed = false;
    for (unsigned r = 0; r < kNumRegs; ++r)
        changed |= widen ? into[r].widen(from[r])
                         : into[r].join(from[r]);
    return changed;
}

/**
 * Per-block must-execute: a block lies on every entry->halt path iff
 * it dominates every halting (ebreak/ecall) block. Iterative
 * dominator sets over word-packed bitsets; block counts are small.
 */
std::vector<bool>
mustExecuteBlocks(const Cfg &cfg, unsigned entry_id)
{
    const size_t nb = cfg.blocks.size();
    const size_t words = (nb + 63) / 64;
    std::vector<std::vector<u64>> dom(
        nb, std::vector<u64>(words, ~0ull));
    dom[entry_id].assign(words, 0);
    dom[entry_id][entry_id / 64] = 1ull << (entry_id % 64);
    bool changed = true;
    while (changed) {
        changed = false;
        for (const BasicBlock &bb : cfg.blocks) {
            if (bb.id == entry_id)
                continue;
            std::vector<u64> next(words, ~0ull);
            if (bb.preds.empty())
                next.assign(words, 0);
            for (const unsigned p : bb.preds)
                for (size_t w = 0; w < words; ++w)
                    next[w] &= dom[p][w];
            next[bb.id / 64] |= 1ull << (bb.id % 64);
            if (next != dom[bb.id]) {
                dom[bb.id] = std::move(next);
                changed = true;
            }
        }
    }

    std::vector<unsigned> exits;
    for (const BasicBlock &bb : cfg.blocks) {
        const auto it = cfg.insts.find(bb.last);
        if (it != cfg.insts.end() && (it->second.op == Op::EBREAK ||
                                      it->second.op == Op::ECALL))
            exits.push_back(bb.id);
    }

    std::vector<bool> must(nb, false);
    if (exits.empty()) {
        if (entry_id < nb)
            must[entry_id] = true;
        return must;
    }
    for (size_t b = 0; b < nb; ++b) {
        bool all = true;
        for (const unsigned e : exits)
            if (!(dom[e][b / 64] & (1ull << (b % 64)))) {
                all = false;
                break;
            }
        must[b] = all;
    }
    return must;
}

} // namespace

AbsIntResult
runAbsInt(const Cfg &cfg)
{
    AbsIntResult out;
    const size_t nb = cfg.blocks.size();
    out.block_must_execute.assign(nb, false);
    const auto ei = cfg.leader_index.find(cfg.entry);
    if (nb == 0 || ei == cfg.leader_index.end())
        return out;
    const unsigned entry_id = ei->second;
    out.block_must_execute = mustExecuteBlocks(cfg, entry_id);

    std::vector<AbsRegs> in(nb, entryState());
    std::vector<bool> reached(nb, false);
    std::vector<bool> queued(nb, false);
    std::vector<unsigned> joins(nb, 0);
    std::deque<unsigned> wl;

    reached[entry_id] = true;
    queued[entry_id] = true;
    wl.push_back(entry_id);

    u64 budget = 50'000 + 200ull * nb;
    while (!wl.empty()) {
        if (budget-- == 0) {
            out.converged = false;
            break;
        }
        const unsigned bi = wl.front();
        wl.pop_front();
        queued[bi] = false;
        const BasicBlock &bb = cfg.blocks[bi];

        AbsRegs st = in[bi];
        for (Addr pc = bb.first; pc <= bb.last; pc += 4) {
            const auto it = cfg.insts.find(pc);
            if (it == cfg.insts.end())
                break;
            transfer(st, pc, it->second);
        }

        const auto li = cfg.insts.find(bb.last);
        const DecodedInst *last =
            li != cfg.insts.end() ? &li->second : nullptr;
        for (const Addr succ_pc : bb.succs) {
            const auto si = cfg.leader_index.find(succ_pc);
            if (si == cfg.leader_index.end())
                continue;
            const unsigned s = si->second;
            AbsRegs edge = st;
            if (last && last->isBranch()) {
                const Addr tgt =
                    bb.last + static_cast<u32>(last->imm);
                if (tgt != bb.last + 4 &&
                    !refineEdge(edge, *last, succ_pc == tgt))
                    continue;  // statically dead edge
            } else if (bb.call_fallthrough && succ_pc == bb.last + 4) {
                edge = clobberedState();
            }
            if (!reached[s]) {
                reached[s] = true;
                in[s] = edge;
            } else {
                const bool widen = ++joins[s] > kWidenAfter;
                if (!joinRegs(in[s], edge, widen))
                    continue;
            }
            if (!queued[s]) {
                queued[s] = true;
                wl.push_back(s);
            }
        }
    }

    // A truncated fixpoint would under-approximate: fall back to top
    // everywhere so every downstream verdict degrades to Unknown.
    if (!out.converged)
        for (auto &st : in)
            st = entryState();

    // Extraction: evaluate each site in the converged entry state of
    // its block, re-applying transfers up to the site.
    for (const BasicBlock &bb : cfg.blocks) {
        if (!reached[bb.id] && out.converged)
            continue;
        AbsRegs st = in[bb.id];
        for (Addr pc = bb.first; pc <= bb.last; pc += 4) {
            const auto it = cfg.insts.find(pc);
            if (it == cfg.insts.end())
                break;
            const DecodedInst &di = it->second;
            if (di.isMem()) {
                SiteInfo s;
                s.pc = pc;
                s.is_mem = true;
                s.is_store = di.isStore();
                s.mem_bytes = di.info().memBytes;
                s.addr = addImm(readReg(st, di.rs1), di.imm);
                s.must_execute = out.block_must_execute[bb.id];
                out.sites[pc] = s;
            } else if (di.op == Op::DIV || di.op == Op::DIVU ||
                       di.op == Op::REM || di.op == Op::REMU) {
                SiteInfo s;
                s.pc = pc;
                s.is_div = true;
                s.divisor = readReg(st, di.rs2);
                s.must_execute = out.block_must_execute[bb.id];
                out.sites[pc] = s;
            } else if (di.op == Op::SIMT_S) {
                out.simt_entry[pc] = st;
            }
            transfer(st, pc, di);
        }
    }
    return out;
}

} // namespace diag::analysis
