/**
 * @file
 * Static legality scan of a simt_s/simt_e thread-pipelining region
 * (paper §4.4.3, §5.4). One implementation serves both the runtime
 * (the ring control unit pre-validates a region before committing
 * clusters to it) and the static analyzer (diag-lint reports *why* a
 * region cannot pipeline before a simulation is ever run).
 */
#ifndef DIAG_ANALYSIS_SIMT_SCAN_HPP
#define DIAG_ANALYSIS_SIMT_SCAN_HPP

#include "common/sparse_mem.hpp"
#include "isa/inst.hpp"

namespace diag::analysis
{

/** Outcome of scanning one candidate region. */
struct SimtScan
{
    enum class Status : u8
    {
        Ok,              //!< region is pipelinable
        NotSimtS,        //!< the scanned pc is not a simt_s
        Unterminated,    //!< no simt_e within the ring's capacity
        MismatchedEnd,   //!< a simt_e closing a *different* simt_s
        TooManyLines,    //!< region spans more I-lines than the ring
        NestedStart,     //!< simt_s inside the region
        IllegalInst,     //!< invalid/indirect/ebreak/ecall in the body
        BackwardBranch,  //!< backward control flow in the body
        LoopCarriedDep,  //!< cross-iteration register dependence
    };

    Status status = Status::NotSimtS;
    Addr simt_e_pc = 0;  //!< set when a matching simt_e was found
    Addr fault_pc = 0;   //!< instruction that broke legality (if any)
    isa::SimtStartFields fields{};
    unsigned lines = 0;  //!< I-lines the region spans (when known)
    /** The offending register for LoopCarriedDep. */
    isa::RegId dep_reg = isa::kNoReg;

    bool ok() const { return status == Status::Ok; }
};

/** Human-readable name of a scan status. */
const char *simtScanStatusName(SimtScan::Status s);

/**
 * Scan the region opened by the simt_s at @p simt_s_pc in @p mem.
 * @p line_bytes is the I-line (cluster) size in bytes and
 * @p clusters_per_ring bounds both the instruction capacity and the
 * line span of a pipelinable region.
 *
 * Legality rules (must match what the ring can execute):
 *  - a matching simt_e (l_offset pointing back at this simt_s) within
 *    clusters_per_ring * (line_bytes / 4) instructions;
 *  - the region's line span fits the ring's clusters;
 *  - no invalid encodings, indirect jumps, ebreak/ecall, or nested
 *    simt_s inside the body, and no backward control flow;
 *  - no register other than rc may carry a value from one iteration
 *    into a read of the next (threads see only the simt_s snapshot
 *    plus their own writes).
 */
SimtScan scanSimtRegion(Addr simt_s_pc, const SparseMemory &mem,
                        unsigned line_bytes,
                        unsigned clusters_per_ring);

} // namespace diag::analysis

#endif // DIAG_ANALYSIS_SIMT_SCAN_HPP
