/**
 * @file
 * diag-verify: an abstract-interpretation program verifier over
 * assembled RV32IMF+SIMT programs. On top of the absint fixpoint and
 * the memdep value numbering it decides, per property, one of three
 * verdicts:
 *
 *   Proven   — no execution can violate the property (a proof);
 *   Refuted  — every halting execution violates it (the violating
 *              site lies on every entry->halt path and its operands
 *              are proven violating);
 *   Unknown  — neither could be established.
 *
 * Program-scope properties: control safety (no trap, no control flow
 * the CFG cannot resolve), divide-by-zero freedom, alignment of every
 * memory access, and in-bounds access against the program's declared
 * data map. Region-scope properties (per pipelinable simt region):
 * cross-thread race freedom — strengthening memdep's unknown-alias
 * answer into proven-safe / proven-racy via resolved affine
 * per-thread address maps — and deadlock freedom / activation-token
 * conservation (a proven finite thread count with bounded in-flight
 * activations against the lane-buffer capacity).
 *
 * Soundness is checked differentially: harness::validateVerify runs
 * every verdict against actual DiAG execution and the golden oracle
 * (DESIGN.md §12); a Proven verdict contradicted by an observed event
 * fails CI.
 */
#ifndef DIAG_ANALYSIS_VERIFY_HPP
#define DIAG_ANALYSIS_VERIFY_HPP

#include <string>
#include <utility>
#include <vector>

#include "analysis/absint.hpp"
#include "analysis/lint.hpp"

namespace diag::analysis
{

/** Three-valued outcome of one property. */
enum class Verdict : u8
{
    Proven,
    Refuted,
    Unknown,
};

/** Printable name ("proven", "refuted", "unknown"). */
const char *verdictName(Verdict v);

/** The program-scope properties diag-verify decides, in print order. */
enum class PropertyKind : u8
{
    ControlSafe,    //!< no trap: all control flow statically resolved
    NoDivByZero,    //!< no integer divide/remainder by zero
    NoMisaligned,   //!< every access aligned to its size
    NoOutOfBounds,  //!< every access inside the declared data map
    NumProperties,
};

/** Printable property name ("control-safe", "no-div-by-zero", ...). */
const char *propertyName(PropertyKind k);

/** One decided program-scope property. */
struct PropertyVerdict
{
    PropertyKind kind = PropertyKind::ControlSafe;
    Verdict verdict = Verdict::Unknown;
    /** Refuted/Unknown: the deciding site (0 when program-scope). */
    Addr pc = 0;
    /** One-line proof sketch or counterexample description. */
    std::string detail;
};

/** Verdicts for one pipelinable simt region. */
struct RegionVerify
{
    Addr simt_s_pc = 0;
    Addr simt_e_pc = 0;
    /** Cross-thread race freedom. Proven = every store/access pair
     *  provably disjoint across threads; Refuted = a definite
     *  cross-thread store->load collision. */
    Verdict race = Verdict::Unknown;
    /** Deadlock freedom / token conservation: a proven finite thread
     *  count whose in-flight activations fit the lane buffers. */
    Verdict deadlock = Verdict::Unknown;
    /** Proven thread count (valid when deadlock == Proven). */
    u64 threads = 0;
    /** Static in-flight activation bound (threads concurrently in
     *  the pipeline) and the ring capacity it is compared against. */
    unsigned inflight_bound = 0;
    unsigned capacity = 0;
    /** Access pairs proven disjoint across threads (race == Proven). */
    unsigned pairs_proven = 0;
    std::string race_detail;
    std::string deadlock_detail;
};

/** Verifier configuration. */
struct VerifyOptions
{
    /** Machine geometry / entry conventions (same as the linter). */
    LintOptions lint;
    /**
     * Memory the program may legally touch beyond its own emitted
     * chunks ([base, base+size) pairs); the harness adds
     * workload-initialized input ranges here.
     */
    std::vector<std::pair<Addr, u32>> extra_ranges;
    /** Cap on per-region thread enumeration for the affine address
     *  collision tests; larger regions verify as Unknown. */
    u64 max_threads_enumerated = 65536;
};

/** Everything diag-verify decided about one program. */
struct VerifyResult
{
    /** Findings of the verify pass only (pass name "verify"),
     *  finalized: proven violations are errors. */
    LintResult report;
    /** Program-scope verdicts, in PropertyKind order. */
    std::vector<PropertyVerdict> props;
    /** Per pipelinable simt region, in address order. */
    std::vector<RegionVerify> regions;
    /** The absint fixpoint hit its iteration cap (all Unknown). */
    bool aborted = false;

    const PropertyVerdict &prop(PropertyKind k) const;
    /** No refuted property/region and no error-level finding. */
    bool clean() const;
};

/** Run the verifier over @p prog. */
VerifyResult verifyProgram(const Program &prog,
                           const VerifyOptions &opt);

/** Human-readable report: verdict lines then findings. */
std::string renderVerifyText(const VerifyResult &r);

/** Machine-readable JSON document. */
std::string renderVerifyJson(const VerifyResult &r);

} // namespace diag::analysis

#endif // DIAG_ANALYSIS_VERIFY_HPP
