#include "analysis/simt_scan.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "isa/decoder.hpp"

namespace diag::analysis
{

using namespace diag::isa;

const char *
simtScanStatusName(SimtScan::Status s)
{
    switch (s) {
      case SimtScan::Status::Ok: return "ok";
      case SimtScan::Status::NotSimtS: return "not-simt-s";
      case SimtScan::Status::Unterminated: return "unterminated";
      case SimtScan::Status::MismatchedEnd: return "mismatched-end";
      case SimtScan::Status::TooManyLines: return "too-many-lines";
      case SimtScan::Status::NestedStart: return "nested-start";
      case SimtScan::Status::IllegalInst: return "illegal-inst";
      case SimtScan::Status::BackwardBranch: return "backward-branch";
      case SimtScan::Status::LoopCarriedDep: return "loop-carried-dep";
    }
    return "?";
}

SimtScan
scanSimtRegion(Addr simt_s_pc, const SparseMemory &mem,
               unsigned line_bytes, unsigned clusters_per_ring)
{
    SimtScan scan;
    const DecodedInst start = decode(mem.read32(simt_s_pc));
    if (start.op != Op::SIMT_S)
        return scan;
    scan.fields = simtStartFields(start);
    // The whole region [simt_s, simt_e] must fit in the ring's
    // clusters, and the body must be free of backward control flow and
    // indirect jumps (paper §4.4.3). Additionally reject loop-carried
    // register dependences: any register other than rc that is read
    // before it is written in the body would observe the previous
    // thread's value, which a pipeline cannot provide.
    const unsigned max_insts = clusters_per_ring * (line_bytes / 4);
    bool written[kNumRegs] = {};        // definitely written
    bool maybe_written[kNumRegs] = {};  // written on any path
    bool live_in[kNumRegs] = {};  // read before a definite write
    Addr conditional_until = 0;   // writes under a forward branch are
                                  // not definite
    scan.status = SimtScan::Status::Unterminated;
    for (unsigned i = 1; i <= max_insts; ++i) {
        const Addr pc = simt_s_pc + 4 * i;
        const DecodedInst di = decode(mem.read32(pc));
        if (di.op != Op::SIMT_E) {
            for (const RegId src : {di.rs1, di.rs2, di.rs3}) {
                if (src != kNoReg && src != kRegZero &&
                    src != scan.fields.rc && !written[src])
                    live_in[src] = true;
            }
            if ((di.isBranch() || di.op == Op::JAL) && di.imm > 0)
                conditional_until = std::max(
                    conditional_until,
                    pc + static_cast<u32>(di.imm));
            if (di.writesReg() && di.rd != scan.fields.rc) {
                maybe_written[di.rd] = true;
                if (pc >= conditional_until)
                    written[di.rd] = true;
            }
        }
        if (di.op == Op::SIMT_E) {
            scan.simt_e_pc = pc;
            if (simtEndFields(di).lOffset != 4 * i) {
                // This simt_e closes a different simt_s.
                scan.status = SimtScan::Status::MismatchedEnd;
                scan.fault_pc = pc;
                return scan;
            }
            // Check the line span fits the ring.
            const Addr first_line =
                alignDown(simt_s_pc + 4, line_bytes);
            const Addr last_line = alignDown(pc, line_bytes);
            scan.lines = (last_line - first_line) / line_bytes + 1;
            if (scan.lines > clusters_per_ring) {
                scan.status = SimtScan::Status::TooManyLines;
                scan.fault_pc = pc;
                return scan;
            }
            // Loop-carried register dependence: a register that can
            // carry a value from one iteration into a read of the
            // next cannot be pipelined (threads see only the simt_s
            // snapshot plus their own writes).
            for (unsigned r = 1; r < kNumRegs; ++r) {
                if (live_in[r] && maybe_written[r]) {
                    scan.status = SimtScan::Status::LoopCarriedDep;
                    scan.fault_pc = pc;
                    scan.dep_reg = static_cast<RegId>(r);
                    return scan;
                }
            }
            scan.status = SimtScan::Status::Ok;
            return scan;
        }
        if (di.op == Op::SIMT_S) {
            scan.status = SimtScan::Status::NestedStart;
            scan.fault_pc = pc;
            return scan;
        }
        if (!di.valid() || di.isIndirect() || di.op == Op::EBREAK ||
            di.op == Op::ECALL) {
            scan.status = SimtScan::Status::IllegalInst;
            scan.fault_pc = pc;
            return scan;
        }
        if ((di.isBranch() || di.op == Op::JAL) && di.imm < 0) {
            // Backward branch: cannot pipeline.
            scan.status = SimtScan::Status::BackwardBranch;
            scan.fault_pc = pc;
            return scan;
        }
    }
    return scan;
}

} // namespace diag::analysis
