/**
 * @file
 * Structured findings produced by the static analyzer: one Diagnostic
 * per issue, collected into a LintResult with text and JSON renderers.
 */
#ifndef DIAG_ANALYSIS_DIAGNOSTIC_HPP
#define DIAG_ANALYSIS_DIAGNOSTIC_HPP

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace diag::analysis
{

/**
 * Finding severity. Errors are conditions that fault or corrupt an
 * execution (reachable invalid encodings, control flow leaving the
 * image); warnings are legal-but-suspicious constructs and anything
 * that silently loses performance (serialized simt regions, datapath
 * reuse misses); notes are optimization hints.
 */
enum class Severity : u8
{
    Error,
    Warning,
    Note,
};

/** Printable name of a severity ("error", "warning", "note"). */
const char *severityName(Severity s);

/** One static-analysis finding, anchored at a program counter. */
struct Diagnostic
{
    Severity severity = Severity::Warning;
    Addr pc = 0;          //!< instruction the finding anchors to
    std::string pass;     //!< producing pass: cfg/liveness/simt/reuse
    std::string message;  //!< human-readable description
};

/** All findings for one program, in pass order then address order. */
struct LintResult
{
    std::vector<Diagnostic> diags;

    unsigned count(Severity s) const;
    unsigned errors() const { return count(Severity::Error); }
    unsigned warnings() const { return count(Severity::Warning); }
    bool clean() const { return diags.empty(); }

    void
    add(Severity sev, Addr pc, std::string pass, std::string message)
    {
        diags.push_back(
            {sev, pc, std::move(pass), std::move(message)});
    }

    /**
     * Canonicalize for output: sort by (pc, pass, severity, message)
     * and drop exact duplicates, so text/JSON/SARIF renderings are
     * byte-stable regardless of pass iteration order.
     */
    void finalize();
};

/**
 * Render findings as compiler-style text, one per line:
 *   0x00001010: error: [cfg] execution falls off the end ...
 * followed by a one-line summary. Empty results render as "clean".
 */
std::string renderText(const LintResult &result);

/**
 * Render findings as a JSON document:
 *   {"errors": N, "warnings": N, "notes": N, "diagnostics": [...]}
 */
std::string renderJson(const LintResult &result);

/**
 * Render findings as a SARIF 2.1.0 log (one run, one result per
 * diagnostic) so CI can annotate pull requests. Each unit pairs an
 * artifact URI (the linted file or a workload pseudo-path) with its
 * findings; the instruction word index maps to startLine (pc/4 + 1)
 * since assembled programs carry no source mapping.
 */
std::string
renderSarif(const std::vector<std::pair<std::string, LintResult>> &units,
            const std::string &tool_name);

} // namespace diag::analysis

#endif // DIAG_ANALYSIS_DIAGNOSTIC_HPP
