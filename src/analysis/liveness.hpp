/**
 * @file
 * Register-lane def-use and liveness analysis over the CFG.
 *
 * In DiAG the register file is a set of lanes flowing through the PE
 * row, so classic liveness maps directly onto the hardware: a lane
 * read before any write observes the zero-initialized lane, and a dead
 * write drives a lane value no later PE ever captures. This pass runs
 * a backward liveness fixpoint plus a forward must-define fixpoint and
 * reports: reads of never-written lanes, dead writes, and instructions
 * that discard their result into x0.
 */
#ifndef DIAG_ANALYSIS_LIVENESS_HPP
#define DIAG_ANALYSIS_LIVENESS_HPP

#include <bitset>

#include "analysis/cfg.hpp"

namespace diag::analysis
{

/** One bit per unified register (x0..x31, f0..f31). */
using RegSet = std::bitset<64>;

/**
 * Registers @p di reads / writes, with the simt markers modelled
 * precisely: simt_s reads rc/r_step/r_end and preserves rc; simt_e
 * reads rc/r_end plus the matching simt_s's r_step and rewrites rc.
 * x0 is never in either set.
 */
struct UseDef
{
    RegSet use;
    RegSet def;
};
UseDef instUseDef(const Cfg &cfg, Addr pc, const isa::DecodedInst &di);

/**
 * Run the liveness checks over @p cfg and append findings to
 * @p report. @p entry_defined is the set of registers the launch
 * environment initializes (e.g. a0/a1 under the workload harness
 * convention); reads of any other lane before a write are flagged.
 */
void checkLiveness(const Cfg &cfg, const RegSet &entry_defined,
                   LintResult &report);

} // namespace diag::analysis

#endif // DIAG_ANALYSIS_LIVENESS_HPP
