/**
 * @file
 * Static store-to-load memory-dependence analysis (diag-lint pass 5).
 *
 * DiAG's memory lanes (paper §5.2) are a per-thread CAM that forwards
 * a store's data to younger loads of the same address. Whether a load
 * hits that forwarding path is a *static* property of the address
 * expressions, because every address in a dataflow region is a short
 * base+offset chain over the lanes. This pass reconstructs those
 * chains with a light value numbering and
 *
 *  (a) classifies each load as lane-forwardable (a covering older
 *      store in the CAM window), LSU-serialized (a partially
 *      overlapping older store that cannot forward), or unknown-alias;
 *  (b) detects cross-iteration store->load dependences inside
 *      simt_s/simt_e regions — threads snapshot the lanes at simt_s,
 *      so a load that reads another iteration's store is a
 *      pipelined-thread race (Severity::Error);
 *  (c) estimates memory-lane CAM capacity pressure per region.
 */
#ifndef DIAG_ANALYSIS_MEMDEP_HPP
#define DIAG_ANALYSIS_MEMDEP_HPP

#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/diagnostic.hpp"

namespace diag::analysis
{

struct LintOptions;

/**
 * A value-numbered address expression: `term(base) + rc_coeff*rc +
 * offset`, where `base` is an opaque symbolic term (0 = "no base",
 * i.e. an absolute constant) and `rc` is the enclosing simt region's
 * loop-control register (coefficient 0 outside regions). Two
 * expressions are comparable iff they share the base term.
 */
struct SymExpr
{
    u32 base = 0;      //!< opaque term id; 0 = absolute constant
    i64 rc_coeff = 0;  //!< linear coefficient on the region's rc
    i64 offset = 0;

    bool sameBase(const SymExpr &o) const { return base == o.base; }
};

/** How a load relates to older stores on the same lane-CAM window. */
enum class LoadClass : u8
{
    UnknownAlias,     //!< no decision: opaque bases in the window
    LaneForwardable,  //!< covered by an older store: CAM forwards
    LsuSerialized,    //!< partial overlap: must serialize via the LSU
};

/** Printable name of a load class. */
const char *loadClassName(LoadClass c);

/** Per-load classification result. */
struct LoadDep
{
    Addr pc = 0;                //!< the load
    Addr store_pc = 0;          //!< deciding store (0 when none)
    LoadClass cls = LoadClass::UnknownAlias;
    SymExpr ea;                 //!< reconstructed address expression
};

/** One store with its reconstructed address expression. */
struct StoreRef
{
    Addr pc = 0;
    SymExpr ea;
};

/** Memory-dependence summary of one pipelinable simt region. */
struct RegionMemDep
{
    Addr simt_s_pc = 0;
    Addr simt_e_pc = 0;
    unsigned loads_per_iter = 0;
    unsigned stores_per_iter = 0;
    /** A definite cross-iteration store->load (the Error case). */
    bool carried_race = false;
    /** Estimated concurrent CAM entries demanded vs. the window. */
    unsigned cam_demand = 0;
    /** Per-load classification within one iteration (thread). */
    std::vector<LoadDep> loads;
    /** Per-iteration stores (address streams, for the bound model). */
    std::vector<StoreRef> stores;
};

/** All findings of the memdep pass, for downstream consumers. */
struct MemDepResult
{
    std::vector<LoadDep> loads;        //!< straight-line (block) scope
    std::vector<RegionMemDep> regions; //!< pipelinable simt regions
};

/**
 * Pass 5: run the store-to-load dependence analysis over @p cfg,
 * appending diagnostics to @p report. Region-scope races are errors;
 * everything else reports as notes (forwardability and CAM pressure
 * are performance properties, not bugs).
 */
MemDepResult checkMemDep(const Cfg &cfg, const Program &prog,
                         const LintOptions &opt, LintResult &report);

} // namespace diag::analysis

#endif // DIAG_ANALYSIS_MEMDEP_HPP
