#include "analysis/cfg.hpp"

#include <algorithm>
#include <set>

#include "common/log.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"

namespace diag::analysis
{

using namespace diag::isa;

namespace
{

/** True iff a 4-byte instruction fits at @p pc inside some chunk. */
bool
inImage(const Program &prog, Addr pc)
{
    for (const ProgramChunk &c : prog.chunks) {
        if (pc >= c.base && pc + 4 <= c.base + c.size)
            return true;
    }
    return false;
}

/** Statically-known successors of one instruction. */
struct Succs
{
    Addr target[2];
    unsigned n = 0;
    bool unknown = false;      //!< indirect transfer (jalr)
    bool fallthrough = false;  //!< target[i] == pc + 4 present
    bool call_return = false;  //!< the fall-through models a call return

    void
    add(Addr a)
    {
        target[n++] = a;
    }
};

Succs
successors(Addr pc, const DecodedInst &di)
{
    Succs s;
    if (!di.valid() || di.op == Op::EBREAK || di.op == Op::ECALL)
        return s;  // faults or halts: no successors
    if (di.isBranch()) {
        s.add(pc + static_cast<u32>(di.imm));
        s.add(pc + 4);
        s.fallthrough = true;
        return s;
    }
    if (di.op == Op::JAL) {
        s.add(pc + static_cast<u32>(di.imm));
        if (di.writesReg()) {
            // A call: assume the callee returns to pc + 4.
            s.add(pc + 4);
            s.fallthrough = true;
            s.call_return = true;
        }
        return s;
    }
    if (di.op == Op::JALR) {
        s.unknown = true;
        if (di.writesReg()) {
            s.add(pc + 4);
            s.fallthrough = true;
            s.call_return = true;
        }
        return s;
    }
    if (di.op == Op::SIMT_E) {
        // Scalar semantics: a do-while back edge to the first body
        // instruction, falling through once the loop ends.
        s.add(pc - simtEndFields(di).lOffset + 4);
        s.add(pc + 4);
        s.fallthrough = true;
        return s;
    }
    s.add(pc + 4);
    s.fallthrough = true;
    return s;
}

} // namespace

Cfg
buildCfg(const Program &prog, LintResult &report)
{
    Cfg cfg;
    cfg.entry = prog.entry;
    std::set<Addr> leaders;
    std::vector<Addr> worklist{prog.entry};
    leaders.insert(prog.entry);
    if (!inImage(prog, prog.entry)) {
        report.add(Severity::Error, prog.entry, "cfg",
                   "entry point is outside the emitted program image");
        return cfg;
    }

    // Pass 1: discover every reachable instruction and every leader.
    while (!worklist.empty()) {
        const Addr pc = worklist.back();
        worklist.pop_back();
        if (cfg.insts.count(pc))
            continue;
        const DecodedInst di = decode(prog.word(pc));
        cfg.insts.emplace(pc, di);
        if (!di.valid()) {
            report.add(Severity::Error, pc, "cfg",
                       detail::vformat(
                           "reachable invalid instruction encoding "
                           "0x%08x: execution faults here",
                           di.raw));
            continue;
        }
        const Succs s = successors(pc, di);
        for (unsigned i = 0; i < s.n; ++i) {
            const Addr t = s.target[i];
            if (!inImage(prog, t)) {
                if (s.fallthrough && t == pc + 4)
                    report.add(
                        Severity::Error, pc, "cfg",
                        "execution can fall off the end of the "
                        "emitted image (missing ebreak?)");
                else
                    report.add(
                        Severity::Error, pc, "cfg",
                        detail::vformat("control transfer target "
                                        "0x%08x is outside the "
                                        "program image",
                                        t));
                continue;
            }
            if (t != pc + 4)
                leaders.insert(t);  // branch/jump/back-edge target
            worklist.push_back(t);
        }
        // The instruction after any control transfer starts a block.
        if (di.isControl() || di.op == Op::JAL || di.op == Op::JALR)
            leaders.insert(pc + 4);
    }

    // Pass 2: carve the reachable instructions into basic blocks.
    for (auto it = cfg.insts.begin(); it != cfg.insts.end(); ++it) {
        const Addr pc = it->first;
        const bool new_block =
            cfg.blocks.empty() || leaders.count(pc) ||
            cfg.blocks.back().last + 4 != pc;
        if (new_block) {
            BasicBlock bb;
            bb.id = static_cast<unsigned>(cfg.blocks.size());
            bb.first = bb.last = pc;
            cfg.blocks.push_back(bb);
            cfg.leader_index[pc] = bb.id;
        } else {
            cfg.blocks.back().last = pc;
        }
    }

    // Pass 3: block-level edges.
    for (BasicBlock &bb : cfg.blocks) {
        const DecodedInst &di = cfg.insts.at(bb.last);
        const Succs s = successors(bb.last, di);
        bb.unknown_succ = s.unknown;
        bb.call_fallthrough = s.call_return;
        for (unsigned i = 0; i < s.n; ++i) {
            if (cfg.leader_index.count(s.target[i]))
                bb.succs.push_back(s.target[i]);
        }
    }
    for (const BasicBlock &bb : cfg.blocks) {
        for (const Addr t : bb.succs)
            cfg.blocks[cfg.leader_index.at(t)].preds.push_back(bb.id);
    }
    return cfg;
}

void
checkUnreachable(const Cfg &cfg, const Program &prog, LintResult &report)
{
    for (const ProgramChunk &c : prog.chunks) {
        // Only chunks holding reachable code are treated as code; a
        // pure data chunk legitimately contains no instructions.
        auto lo = cfg.insts.lower_bound(c.base);
        if (lo == cfg.insts.end() || lo->first >= c.base + c.size)
            continue;
        Addr run_start = 0;
        unsigned run_len = 0;
        auto flush = [&]() {
            if (run_len > 0)
                report.add(
                    Severity::Warning, run_start, "cfg",
                    detail::vformat("unreachable code: %u "
                                    "instruction(s) no path from the "
                                    "entry point reaches",
                                    run_len));
            run_len = 0;
        };
        for (Addr pc = c.base; pc + 4 <= c.base + c.size; pc += 4) {
            // Runs of valid instructions only: zero padding and data
            // words that do not decode are not code.
            if (!cfg.reachable(pc) && decode(prog.word(pc)).valid()) {
                if (run_len == 0)
                    run_start = pc;
                ++run_len;
            } else {
                flush();
            }
        }
        flush();
    }
}

} // namespace diag::analysis
