/**
 * @file
 * Static performance-bound model (diag-lint pass 6, `diag-bound`).
 *
 * DiAG discovers its schedule at run time from program order plus
 * register-lane availability (paper §4), which makes that schedule
 * statically computable: this pass re-runs the activation engine's
 * timing rules over the binary with every nondeterministic delay
 * (cache misses, bus contention, occupancy floors) replaced by its
 * *minimum*, yielding
 *
 *  - a per-basic-block lane critical path (a provable lower bound on
 *    the block's execution time),
 *  - a per-resident-loop iteration-period estimate under datapath
 *    reuse (steady-state II of the re-activated body),
 *  - a per-SIMT-region model: pipeline-fill lower bound, the
 *    initiation-interval floor max(launch interval, resource II /
 *    replicas), and a bottleneck attribution,
 *  - a whole-program cycle lower bound, assembled from measured
 *    region entry/thread counts by the validation harness.
 *
 * Every component is *optimistic* with respect to the simulator, so
 * "measured < bound" proves a simulator timing bug and "measured >>
 * bound" flags a lost optimization; `--validate` checks both.
 */
#ifndef DIAG_ANALYSIS_BOUND_HPP
#define DIAG_ANALYSIS_BOUND_HPP

#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/diagnostic.hpp"
#include "analysis/memdep.hpp"

namespace diag::analysis
{

struct LintOptions;

/**
 * Timing parameters of the bound model: the subset of DiagConfig and
 * the memory hierarchy the static schedule depends on. Defaults match
 * the F4C* presets; the harness fills them from a live DiagConfig.
 */
struct BoundParams
{
    unsigned segment_size = 8;      //!< lane buffer every N PEs
    Cycle inter_cluster_latch = 1;  //!< lane latch between clusters
    Cycle mem_lane_latency = 1;     //!< store-to-load forwarding hit
    Cycle line_buffer_latency = 2;  //!< cluster last-line buffer hit
    Cycle l1d_hit_latency = 4;      //!< banked L1D hit
    Cycle l1i_hit_latency = 2;      //!< L1I hit (region line loads)
    Cycle bus_iline_transfer = 1;   //!< I-line delivery over the bus
    Cycle decode_latency = 1;       //!< cluster decode after line load
    Cycle squash_resteer = 1;       //!< redirect-to-reenable delay
    Cycle lsu_issue_occupancy = 1;  //!< LSU port occupancy per load
    unsigned mem_lane_entries = 16; //!< forwarding CAM entries
    unsigned line_buf_entries = 4;  //!< cluster line-buffer entries
    unsigned l1d_line_bytes = 64;   //!< data line size (buffer grain)
    unsigned l1d_banks = 4;         //!< independently busy L1D banks
    Cycle l1d_bank_occupancy = 1;   //!< bank hold time per access
};

/** Lane critical path of one basic block (optimistic schedule). */
struct BlockBound
{
    Addr first = 0;
    Addr last = 0;
    unsigned insts = 0;
    Cycle crit_lb = 0;  //!< entry-to-retire lower bound, cycles
};

/** Steady-state model of one resident backward-branch loop. */
struct LoopBound
{
    Addr head = 0;       //!< branch target (loop entry)
    Addr tail = 0;       //!< the backward branch
    unsigned insts = 0;
    unsigned lines = 0;
    bool resident = false;      //!< fits the ring: datapath reuse
    bool straightline = false;  //!< body has no internal control flow
    /** Predicted steady-state cycles per iteration under reuse
     *  (recurrence through the lanes + serial per-PE occupancy);
     *  0 when not modelled (non-resident or branchy body). */
    double iter_pred = 0;
};

/** Static schedule model of one pipelinable simt region. */
struct RegionBound
{
    Addr simt_s_pc = 0;
    Addr simt_e_pc = 0;
    unsigned body_insts = 0;  //!< simt_s+4 .. simt_e inclusive
    unsigned lines = 0;       //!< I-lines (pipeline stages)
    unsigned max_replicas = 1;//!< ring capacity / lines
    Cycle interval = 1;       //!< simt_s launch interval operand
    /** Provable per-entry fill bound: first launch to last-thread
     *  exit-resolve plus the trailing latch, at minimum latencies. */
    Cycle fill_lb = 0;
    double fill_pred = 0;     //!< predicted per-entry fill (same span)
    /** Provable steady-state cycles/thread: the launch cadence or the
     *  memory-order gate recurrence, whichever is larger (straight-
     *  line bodies only; branchy bodies fall back to the interval). */
    double ii_lb = 1;
    /** Predicted cycles/thread from the pipeline emulation with the
     *  store-address gate and expected load service levels. */
    double ii_gate = 1;
    /** Per-entry replica line-load cost: replicas beyond the first
     *  reload their stage lines over the serialized bus every entry
     *  (Ring::runSimtPipeline evicts them at region end). */
    double setup_per_line = 0;
    double setup_fixed = 0;   //!< fetch+bus+decode tail of that burst
    double resource_ii = 1;   //!< per-replica II floor
    double lsu_ii = 0;        //!< loads/line * LSU occupancy
    double unpip_ii = 0;      //!< unpipelined div/sqrt occupancy
    /** L1D bank-bandwidth floor, shared by all replicas: stores write
     *  back through the banks unconditionally, and loads join them
     *  when their cluster's line buffer thrashes (more distinct line
     *  streams than buffer entries). */
    double bank_ii = 0;
    bool straightline = true; //!< no forward branches in the body

    /** Replicas the ring would commit for this thread count. */
    unsigned replicasFor(double threads, double entries) const;
    /** Predicted steady-state initiation interval. */
    double iiPred(double threads, double entries) const;
    /** Provable lower bound on the summed region cycles, given the
     *  measured entry and thread counts. */
    double lowerBound(double threads, double entries) const;
    /** Predicted summed region cycles for the same counts. */
    double predict(double threads, double entries) const;
    /** Dominant limiter of the predicted schedule: "recurrence",
     *  "memory-order", "memory-bandwidth", "memory-lane", "compute",
     *  or "cluster-fit". */
    const char *bottleneck(double threads, double entries) const;
};

/** Everything the bound pass derives from one program. */
struct BoundResult
{
    std::vector<BlockBound> blocks;
    std::vector<LoopBound> loops;
    std::vector<RegionBound> regions;
};

/**
 * Pass 6: compute the static schedule model. Appends performance
 * notes to @p report when given (regions whose resource floor exceeds
 * their launch interval even at full replication).
 */
BoundResult analyzeBound(const Cfg &cfg, const Program &prog,
                         const MemDepResult &md,
                         const LintOptions &opt,
                         LintResult *report = nullptr);

/** Render a BoundResult as a JSON document (deterministic order). */
std::string renderBoundJson(const BoundResult &bound);

} // namespace diag::analysis

#endif // DIAG_ANALYSIS_BOUND_HPP
