#include "analysis/bound.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "analysis/lint.hpp"
#include "analysis/simt_scan.hpp"
#include "common/bits.hpp"
#include "common/log.hpp"
#include "isa/decoder.hpp"
#include "isa/latency.hpp"

namespace diag::analysis
{

using namespace diag::isa;

namespace
{

/**
 * Lane-buffer crossing delay, mirroring diag/lanes.hpp laneDelay()
 * (the analysis layer must not include runtime headers — the runtime
 * already includes ours). The input latch behaves like segment 0.
 */
constexpr Cycle
segDelay(int producer_seg, int consumer_seg)
{
    const int from = producer_seg < 0 ? 0 : producer_seg;
    return static_cast<Cycle>(consumer_seg - from);
}

/** One lane's timing in the optimistic schedule. */
struct MiniLane
{
    Cycle ready = 0;
    int seg = -1;  //!< -1 = cluster input latch
};

using MiniLanes = std::array<MiniLane, kNumRegs>;

/**
 * Memory-order state threaded through consecutive activations: the
 * simulator gates every load on the resolve time of all older store
 * addresses (sim/mem_order.hpp), shared across pipelined threads.
 * This is the recurrence that serializes regions whose store
 * addresses depend on loaded data.
 */
struct GateState
{
    Cycle store_addr_gate = 0;
    /** Store done times by pc (same-thread forwarding sources). */
    std::map<Addr, Cycle> store_done;
};

/** Shared inputs of the mini schedule emulator. */
struct Ctx
{
    const BoundParams &p;
    unsigned line_bytes;
    unsigned pes;
    /** Per-load latency beyond address generation. Null = use the
     *  provable minimum everywhere (lower-bound mode). */
    const std::map<Addr, Cycle> *load_extra = nullptr;
    Cycle min_load_extra = 1;
    /** When set, model the store-address load gate. */
    GateState *gate = nullptr;
    /** Load pc -> forwarding store pc (prediction mode only). */
    const std::map<Addr, Addr> *fwd_store = nullptr;
    /**
     * Treat forward branches as taken (prediction of branchy simt
     * bodies): an in-line skip floors downstream PEs at the branch
     * resolve plus the squash re-steer (activation.cpp), a cross-line
     * skip ends the activation with a redirect.
     */
    bool assume_taken = false;
};

Cycle
loadExtraAt(const Ctx &ctx, Addr pc)
{
    if (!ctx.load_extra)
        return ctx.min_load_extra;
    const auto it = ctx.load_extra->find(pc);
    return it == ctx.load_extra->end() ? ctx.min_load_extra
                                       : it->second;
}

bool
isUnpipelined(const DecodedInst &di)
{
    const ExecClass cls = di.cls();
    return cls == ExecClass::IntDiv || cls == ExecClass::FpDiv ||
           cls == ExecClass::FpSqrt;
}

/** Exit record of one emulated activation (sub-)range. */
struct MiniOut
{
    Cycle exit_resolve = 0;  //!< PC-lane leave time at the exit
    Cycle branch_done = 0;   //!< the exiting instruction's done time
    bool thread_end = false; //!< simt_e reached in stage mode
    Addr redirect = 0;       //!< assumed-taken cross-line target
};

/** Convert lanes to cluster-output-latch timing (engine exit). */
void
latchLanes(MiniLanes &lane, int last_seg)
{
    for (MiniLane &l : lane) {
        l.ready += segDelay(l.seg, last_seg);
        l.seg = -1;
    }
}

/**
 * Emulate the activation engine over [from, to] within the I-line at
 * @p line, using the engine's exact additive timing rules but the
 * minimum of every nondeterministic delay (see activation.cpp run()).
 * @p taken_tail treats the instruction at @p to as a taken control
 * transfer (loop-tail emulation); @p fell_exit adds the fell-through
 * PC traversal to the line's last segment.
 */
MiniOut
miniRun(const Program &prog, Addr line, Addr from, Addr to,
        MiniLanes &lane, std::vector<Cycle> &pe_busy, Cycle pc_enter,
        Cycle min_start, bool stage_mode, bool taken_tail,
        bool fell_exit, const Ctx &ctx)
{
    const int last_seg =
        static_cast<int>((ctx.pes - 1) / ctx.p.segment_size);
    Cycle pc_cursor = pc_enter;
    int pc_seg = 0;
    Cycle floor = min_start;
    MiniOut out;

    auto avail = [&](RegId r, int seg) -> Cycle {
        if (r == kNoReg || r == kRegZero)
            return 0;
        return lane[r].ready + segDelay(lane[r].seg, seg);
    };

    for (Addr pc = from; pc <= to;) {
        const unsigned i = static_cast<unsigned>((pc - line) / 4);
        const DecodedInst di = decode(prog.word(pc));
        const int seg = static_cast<int>(i / ctx.p.segment_size);

        Cycle ops = std::max(avail(di.rs1, seg), avail(di.rs2, seg));
        if (di.rs3 != kNoReg)
            ops = std::max(ops, avail(di.rs3, seg));
        const Cycle busy = i < pe_busy.size() ? pe_busy[i] : 0;
        const Cycle start = std::max({ops, floor, busy});

        Cycle done;
        if (di.isLoad()) {
            Cycle issue = start + 1;  // address generation
            if (ctx.gate)
                issue = std::max(issue, ctx.gate->store_addr_gate);
            done = issue + loadExtraAt(ctx, pc);
            if (ctx.gate && ctx.fwd_store) {
                // Forwarding data arrives no earlier than the source
                // store's done time (StoreTracker::forwardProbe).
                const auto f = ctx.fwd_store->find(pc);
                if (f != ctx.fwd_store->end()) {
                    const auto st =
                        ctx.gate->store_done.find(f->second);
                    if (st != ctx.gate->store_done.end())
                        done = std::max(issue, st->second) +
                               ctx.p.mem_lane_latency;
                }
            }
        } else if (di.isStore()) {
            done = start + 1;
            if (ctx.gate) {
                const Cycle addr_ready =
                    std::max(avail(di.rs1, seg), floor) + 1;
                ctx.gate->store_addr_gate = std::max(
                    ctx.gate->store_addr_gate, addr_ready);
                ctx.gate->store_done[pc] = done;
            }
        } else {
            done = start + execLatency(di);
        }

        if (di.writesReg())
            lane[di.rd] = {done, seg};

        const Cycle pc_arrive = pc_cursor + segDelay(pc_seg, seg);
        const Cycle pc_leave = std::max(pc_arrive, done);
        pc_cursor = pc_leave;
        pc_seg = seg;
        if (i < pe_busy.size())
            pe_busy[i] = stage_mode && !isUnpipelined(di) ? start + 1
                                                          : done;

        if (stage_mode && di.op == Op::SIMT_E) {
            out.thread_end = true;
            out.exit_resolve = pc_leave;
            out.branch_done = done;
            latchLanes(lane, last_seg);
            return out;
        }
        if (taken_tail && pc == to) {
            out.exit_resolve = pc_leave;
            out.branch_done = done;
            latchLanes(lane, last_seg);
            return out;
        }
        if (ctx.assume_taken && di.imm > 0 &&
            (di.isBranch() || di.op == Op::JAL)) {
            const Addr target = pc + static_cast<u32>(di.imm);
            if (target <= to) {
                // In-line forward skip: downstream PEs re-enable at
                // the branch resolve plus the squash re-steer.
                floor = std::max(floor,
                                 pc_leave + ctx.p.squash_resteer);
                pc = target;
                continue;
            }
            // Cross-line skip: the activation ends with a redirect.
            out.exit_resolve = pc_leave;
            out.branch_done = done;
            out.redirect = target;
            latchLanes(lane, last_seg);
            return out;
        }
        pc += 4;
    }
    if (fell_exit)
        pc_cursor += segDelay(pc_seg, last_seg);
    out.exit_resolve = pc_cursor;
    out.branch_done = pc_cursor;
    latchLanes(lane, last_seg);
    return out;
}

/** Pipeline emulation result over several successive threads. */
struct PipeModel
{
    Cycle fill = 0;     //!< thread 0 launch-to-exit-resolve
    double ii_mean = 1; //!< mean steady-state exit increment
    double ii_min = 1;  //!< smallest late increment (provable slope)
};

/**
 * Emulate a sequence of pipelined threads through the region body
 * (simt_s+4 .. simt_e), lines chained through the inter-cluster
 * latch like Ring::runSimtPipeline: thread k launches at k*interval
 * and all threads share the store-address load gate. The late exit
 * increments give the steady-state initiation interval, including
 * the memory-order recurrence (a store address computed from loaded
 * data serializes successive threads through the gate).
 *
 * Branchy bodies (base.assume_taken) mix taken and fall-through
 * threads three-to-one: region guards are skip-the-update branches
 * (argmin updates, boundary clamps) that are taken more often than
 * not — an argmin over K candidates takes its k-th guard k/(k+1) of
 * the time. The mix runs through one shared gate, so a taken thread's
 * late store still delays the fall-through thread behind it, which an
 * average of two single-outcome runs would miss.
 */
PipeModel
pipeEmulate(const Program &prog, Addr body_begin, Addr simt_e_pc,
            Cycle interval, RegId rc, const Ctx &base)
{
    constexpr int kThreads = 16;
    GateState gs;
    Ctx ctx = base;
    ctx.gate = &gs;
    std::array<Cycle, kThreads> resolve{};
    for (int k = 0; k < kThreads; ++k) {
        ctx.assume_taken = base.assume_taken && k % 4 != 3;
        gs.store_done.clear();  // forwarding is same-thread only
        const Cycle launch = static_cast<Cycle>(k) * interval;
        MiniLanes lane{};
        if (rc != kNoReg && rc != kRegZero)
            lane[rc] = {launch, -1};
        Cycle pc_enter = launch;
        Cycle min_start = launch;
        Addr pc = body_begin;
        MiniOut o;
        for (;;) {
            const Addr line = alignDown(pc, ctx.line_bytes);
            const Addr line_last = line + ctx.line_bytes - 4;
            const Addr to = std::min(line_last, simt_e_pc);
            std::vector<Cycle> busy(ctx.pes, 0);
            o = miniRun(prog, line, pc, to, lane, busy, pc_enter,
                        min_start, /*stage_mode=*/true,
                        /*taken_tail=*/false,
                        /*fell_exit=*/to != simt_e_pc, ctx);
            if (o.thread_end)
                break;
            pc = o.redirect ? o.redirect : to + 4;
            pc_enter = o.exit_resolve + ctx.p.inter_cluster_latch;
            min_start = 0;
            for (MiniLane &l : lane)
                l.ready += ctx.p.inter_cluster_latch;
        }
        resolve[static_cast<size_t>(k)] = o.exit_resolve;
    }
    PipeModel m;
    m.fill = resolve[0];
    // Steady state: the max-plus recurrence settles to a periodic
    // increment after a short transient; average the late increments
    // for the prediction and take their minimum for the bound.
    double sum = 0;
    double mn = 1e18;
    constexpr int kTail = 8;
    for (int k = kThreads - kTail; k < kThreads; ++k) {
        const double d = static_cast<double>(
            resolve[static_cast<size_t>(k)] -
            resolve[static_cast<size_t>(k - 1)]);
        sum += d;
        mn = std::min(mn, d);
    }
    m.ii_mean = std::max(sum / kTail, static_cast<double>(interval));
    m.ii_min = std::max(mn, static_cast<double>(interval));
    return m;
}

/**
 * Steady-state cycles per iteration of a resident straight-line loop
 * under datapath reuse: emulate several iterations with persistent
 * per-PE occupancy and carried lanes, then measure the last delta.
 */
double
loopIterPred(const Program &prog, Addr head, Addr tail,
             const Ctx &ctx)
{
    std::map<Addr, std::vector<Cycle>> busy_by_line;
    GateState gs;  // the load gate carries across serial iterations
    Ctx gctx = ctx;
    gctx.gate = &gs;
    MiniLanes lane{};
    Cycle pc_enter = 0;
    Cycle min_start = 0;
    constexpr int kIters = 8;
    std::array<Cycle, kIters> resolve{};
    for (int k = 0; k < kIters; ++k) {
        Addr pc = head;
        MiniOut o;
        for (;;) {
            const Addr line = alignDown(pc, ctx.line_bytes);
            const Addr line_last = line + ctx.line_bytes - 4;
            const Addr to = std::min(line_last, tail);
            auto &busy = busy_by_line[line];
            if (busy.empty())
                busy.resize(ctx.pes, 0);
            o = miniRun(prog, line, pc, to, lane, busy, pc_enter,
                        min_start, /*stage_mode=*/false,
                        /*taken_tail=*/to == tail,
                        /*fell_exit=*/to != tail, gctx);
            if (to == tail)
                break;
            pc = to + 4;
            pc_enter = o.exit_resolve + ctx.p.inter_cluster_latch;
            min_start = 0;
            for (MiniLane &l : lane)
                l.ready += ctx.p.inter_cluster_latch;
        }
        resolve[static_cast<size_t>(k)] = o.exit_resolve;
        // Taken backward branch into the resident datapath: one latch,
        // the branch's done time floors the next wavefront (runThread
        // Redirect-with-reuse arm).
        pc_enter = o.exit_resolve + ctx.p.inter_cluster_latch;
        min_start = o.branch_done + ctx.p.inter_cluster_latch;
        for (MiniLane &l : lane)
            l.ready += ctx.p.inter_cluster_latch;
    }
    return static_cast<double>(resolve[kIters - 1] -
                               resolve[kIters - 5]) /
           4.0;
}

/** True iff [begin, end) decodes entirely without control flow. */
bool
rangeStraightline(const Program &prog, Addr begin, Addr end)
{
    for (Addr pc = begin; pc < end; pc += 4) {
        const DecodedInst di = decode(prog.word(pc));
        if (!di.valid() || di.isControl() || di.isSimt())
            return false;
    }
    return true;
}

} // namespace

unsigned
RegionBound::replicasFor(double threads, double entries) const
{
    if (entries <= 0)
        return 1;
    const double per_entry = threads / entries;
    const auto want = static_cast<unsigned>(std::max(1.0, per_entry));
    return std::max(1u, std::min(max_replicas, want));
}

double
RegionBound::iiPred(double threads, double entries) const
{
    const unsigned replicas = replicasFor(threads, entries);
    return std::max({ii_gate, resource_ii / replicas, bank_ii});
}

double
RegionBound::lowerBound(double threads, double entries) const
{
    if (entries <= 0)
        return 0;
    // Per entry: the last thread's exit is at least fill + (T-1)
    // steady increments; the increment is the launch cadence or the
    // provable memory-order recurrence.
    return entries * static_cast<double>(fill_lb) +
           (threads - entries) * ii_lb;
}

double
RegionBound::predict(double threads, double entries) const
{
    if (entries <= 0)
        return 0;
    const unsigned replicas = replicasFor(threads, entries);
    double setup = 0;
    if (replicas > 1)
        setup = static_cast<double>(replicas - 1) * lines *
                    setup_per_line +
                setup_fixed;
    return entries * (fill_pred + setup) +
           (threads - entries) * iiPred(threads, entries);
}

const char *
RegionBound::bottleneck(double threads, double entries) const
{
    const unsigned replicas = replicasFor(threads, entries);
    const double ii = iiPred(threads, entries);
    const double fill_term = entries * fill_pred;
    const double drain_term = (threads - entries) * ii;
    if (fill_term >= drain_term)
        return "recurrence";  // dominated by the per-thread lane
                              // critical path (pipeline mostly fills)
    if (ii_gate > static_cast<double>(interval) &&
        ii_gate >= resource_ii / replicas && ii_gate >= bank_ii)
        return "memory-order";  // the store-address gate serializes
                                // successive threads
    if (bank_ii > static_cast<double>(interval) &&
        bank_ii >= resource_ii / replicas)
        return "memory-bandwidth";  // L1D banks saturate on store
                                    // write-backs + thrashing loads
    if (ii <= static_cast<double>(interval))
        return "recurrence";  // launch cadence (the rc chain) limits
    if (unpip_ii > lsu_ii)
        return "compute";
    if (replicas == max_replicas && lines > 1)
        return "cluster-fit";
    return "memory-lane";
}

BoundResult
analyzeBound(const Cfg &cfg, const Program &prog,
             const MemDepResult &md, const LintOptions &opt,
             LintResult *report)
{
    BoundResult out;
    const BoundParams &p = opt.timing;
    Ctx lb_ctx{p, opt.line_bytes, opt.line_bytes / 4, nullptr,
               std::min({p.mem_lane_latency, p.line_buffer_latency,
                         p.l1d_hit_latency})};

    // ---- per-block lane critical paths ----
    for (const BasicBlock &bb : cfg.blocks) {
        bool plain = true;
        for (Addr pc = bb.first; pc <= bb.last; pc += 4) {
            const auto it = cfg.insts.find(pc);
            if (it == cfg.insts.end() || it->second.isSimt()) {
                plain = false;
                break;
            }
        }
        if (!plain)
            continue;
        BlockBound b;
        b.first = bb.first;
        b.last = bb.last;
        b.insts = static_cast<unsigned>(bb.size());
        MiniLanes lane{};
        Cycle pc_enter = 0;
        Addr pc = bb.first;
        for (;;) {
            const Addr line = alignDown(pc, opt.line_bytes);
            const Addr line_last = line + opt.line_bytes - 4;
            const Addr to = std::min(line_last, bb.last);
            std::vector<Cycle> busy(lb_ctx.pes, 0);
            const MiniOut o =
                miniRun(prog, line, pc, to, lane, busy, pc_enter, 0,
                        false, false, /*fell_exit=*/to != bb.last,
                        lb_ctx);
            if (to == bb.last) {
                b.crit_lb = o.exit_resolve;
                break;
            }
            pc = to + 4;
            pc_enter = o.exit_resolve + p.inter_cluster_latch;
            for (MiniLane &l : lane)
                l.ready += p.inter_cluster_latch;
        }
        out.blocks.push_back(b);
    }

    // ---- resident-loop iteration periods ----
    for (const auto &[pc, di] : cfg.insts) {
        const bool backward =
            (di.isBranch() || di.op == Op::JAL) && di.imm < 0;
        if (!backward)
            continue;
        LoopBound lp;
        lp.head = pc + static_cast<u32>(di.imm);
        lp.tail = pc;
        lp.insts =
            static_cast<unsigned>((lp.tail - lp.head) / 4) + 1;
        lp.lines = static_cast<unsigned>(
                       (alignDown(lp.tail, opt.line_bytes) -
                        alignDown(lp.head, opt.line_bytes)) /
                       opt.line_bytes) +
                   1;
        lp.resident = lp.lines <= opt.clusters_per_ring;
        lp.straightline = rangeStraightline(prog, lp.head, lp.tail);
        if (lp.resident && lp.straightline)
            lp.iter_pred = loopIterPred(prog, lp.head, lp.tail,
                                        lb_ctx);
        out.loops.push_back(lp);
    }

    // ---- simt-region pipeline models ----
    for (const RegionMemDep &rm : md.regions) {
        RegionBound r;
        r.simt_s_pc = rm.simt_s_pc;
        r.simt_e_pc = rm.simt_e_pc;
        r.body_insts = static_cast<unsigned>(
            (rm.simt_e_pc - rm.simt_s_pc) / 4);
        const Addr first_line =
            alignDown(rm.simt_s_pc + 4, opt.line_bytes);
        const Addr last_line = alignDown(rm.simt_e_pc, opt.line_bytes);
        r.lines = static_cast<unsigned>(
                      (last_line - first_line) / opt.line_bytes) +
                  1;
        r.max_replicas =
            std::max(1u, opt.clusters_per_ring / r.lines);
        const DecodedInst start = decode(prog.word(rm.simt_s_pc));
        r.interval = std::max<Cycle>(1, simtStartFields(start).interval);
        r.straightline =
            rangeStraightline(prog, rm.simt_s_pc + 4, rm.simt_e_pc);

        // Resource floors per replica: the per-cluster LSU load port
        // and unpipelined divide/sqrt units.
        std::map<Addr, unsigned> loads_per_line;
        for (Addr pc = rm.simt_s_pc + 4; pc <= rm.simt_e_pc; pc += 4) {
            const DecodedInst di = decode(prog.word(pc));
            if (di.isLoad())
                ++loads_per_line[alignDown(pc, opt.line_bytes)];
            if (isUnpipelined(di))
                r.unpip_ii = std::max(
                    r.unpip_ii,
                    static_cast<double>(execLatency(di)));
        }
        for (const auto &[line, n] : loads_per_line)
            r.lsu_ii = std::max(
                r.lsu_ii, static_cast<double>(
                              n * p.lsu_issue_occupancy));
        r.resource_ii = std::max({1.0, r.lsu_ii, r.unpip_ii});
        // Replicas beyond the first reload (replicas-1)*lines stage
        // lines every entry, serialized over the bus, plus one
        // fetch + transfer + decode tail (Ring::loadLine).
        r.setup_per_line = static_cast<double>(p.bus_iline_transfer);
        r.setup_fixed =
            static_cast<double>(p.l1i_hit_latency +
                                p.bus_iline_transfer + p.decode_latency);
        const RegId rc = simtStartFields(start).rc;

        // Line-buffer residency per cluster: group each access stream
        // by its 64-byte data-line identity (base term, rc stride,
        // offset window). A cluster whose streams outnumber the
        // buffer entries thrashes — its loads fall through to the
        // banked L1D — and every store writes back through the banks
        // regardless, so the banks impose a throughput floor shared
        // by all replicas.
        using LineGroup = std::tuple<u32, i64, i64>;
        const auto lineGroup = [&](const SymExpr &ea) {
            const i64 grain = static_cast<i64>(p.l1d_line_bytes);
            const i64 window = ea.offset >= 0
                                   ? ea.offset / grain
                                   : (ea.offset - grain + 1) / grain;
            return LineGroup{ea.base, ea.rc_coeff, window};
        };
        std::map<Addr, std::set<LineGroup>> load_groups;
        std::map<Addr, std::set<LineGroup>> all_groups;
        for (const LoadDep &ld : rm.loads) {
            if (ld.cls == LoadClass::LaneForwardable)
                continue;  // served by the lanes, not the buffer
            const Addr cl = alignDown(ld.pc, opt.line_bytes);
            load_groups[cl].insert(lineGroup(ld.ea));
            all_groups[cl].insert(lineGroup(ld.ea));
        }
        for (const StoreRef &st : rm.stores)
            all_groups[alignDown(st.pc, opt.line_bytes)].insert(
                lineGroup(st.ea));
        std::set<Addr> thrashing;
        double bank_demand = static_cast<double>(rm.stores.size());
        for (const auto &[cl, groups] : all_groups) {
            if (groups.size() <= p.line_buf_entries)
                continue;
            thrashing.insert(cl);
            // Each distinct stream costs one banked access per
            // thread; same-stream neighbors hit the just-filled
            // buffer entry.
            const auto lg = load_groups.find(cl);
            if (lg != load_groups.end())
                bank_demand += static_cast<double>(lg->second.size());
        }
        r.bank_ii = bank_demand *
                    static_cast<double>(p.l1d_bank_occupancy) /
                    static_cast<double>(std::max(1u, p.l1d_banks));

        // Prediction: forwardable loads hit the memory lanes, loads
        // in a thrashing cluster pay the banked L1D, everything else
        // the cluster line buffer (streaming bodies touch the same
        // line many threads in a row).
        std::map<Addr, Cycle> pred_extra;
        std::map<Addr, Addr> fwd_store;
        for (const LoadDep &ld : rm.loads) {
            if (ld.cls == LoadClass::LaneForwardable) {
                pred_extra[ld.pc] = p.mem_lane_latency;
                fwd_store[ld.pc] = ld.store_pc;
            } else if (thrashing.count(
                           alignDown(ld.pc, opt.line_bytes))) {
                pred_extra[ld.pc] = p.l1d_hit_latency;
            } else {
                pred_extra[ld.pc] = p.line_buffer_latency;
            }
        }
        Ctx pred_ctx = lb_ctx;
        pred_ctx.load_extra = &pred_extra;
        pred_ctx.min_load_extra = p.line_buffer_latency;
        pred_ctx.fwd_store = &fwd_store;
        // Branchy bodies predict the assumed-taken path: skips and
        // their squash re-steers dominate guard-style kernels, and
        // the resulting late store-address resolve is what feeds the
        // gate recurrence. The *bound* cannot assume either outcome.
        pred_ctx.assume_taken = !r.straightline;
        const PipeModel pred = pipeEmulate(prog, rm.simt_s_pc + 4,
                                           rm.simt_e_pc, r.interval,
                                           rc, pred_ctx);
        r.fill_pred =
            static_cast<double>(pred.fill + p.inter_cluster_latch);
        r.ii_gate = pred.ii_mean;

        if (r.straightline) {
            const PipeModel lb = pipeEmulate(prog, rm.simt_s_pc + 4,
                                             rm.simt_e_pc, r.interval,
                                             rc, lb_ctx);
            r.fill_lb = lb.fill + p.inter_cluster_latch;
            r.ii_lb = lb.ii_min;
        } else {
            // Forward branches can skip arbitrary body suffixes, so
            // only the simt_e execution and line hand-offs are
            // guaranteed per thread, and the launch cadence per
            // steady-state increment.
            r.fill_lb = 1 +
                        (r.lines > 1 ? p.inter_cluster_latch : 0) +
                        p.inter_cluster_latch;
            r.ii_lb = static_cast<double>(r.interval);
        }

        if (report &&
            r.resource_ii / r.max_replicas >
                static_cast<double>(r.interval)) {
            report->add(
                Severity::Note, rm.simt_s_pc, "bound",
                detail::vformat(
                    "thread pipeline is resource-bound: %s gives an "
                    "initiation-interval floor of %.1f cycles/thread "
                    "even at full replication (%u replicas), above "
                    "the launch interval of %u",
                    r.unpip_ii > r.lsu_ii
                        ? "an unpipelined divide/sqrt unit"
                        : "the per-cluster LSU load port",
                    r.resource_ii / r.max_replicas, r.max_replicas,
                    static_cast<unsigned>(r.interval)));
        }
        out.regions.push_back(r);
    }
    return out;
}

std::string
renderBoundJson(const BoundResult &bound)
{
    std::string out = "{\"blocks\": [";
    bool first = true;
    for (const BlockBound &b : bound.blocks) {
        if (!first)
            out += ", ";
        first = false;
        out += detail::vformat(
            "{\"first\": %u, \"last\": %u, \"insts\": %u, "
            "\"crit_lb\": %llu}",
            b.first, b.last, b.insts,
            static_cast<unsigned long long>(b.crit_lb));
    }
    out += "], \"loops\": [";
    first = true;
    for (const LoopBound &l : bound.loops) {
        if (!first)
            out += ", ";
        first = false;
        out += detail::vformat(
            "{\"head\": %u, \"tail\": %u, \"insts\": %u, "
            "\"lines\": %u, \"resident\": %s, \"straightline\": %s, "
            "\"iter_pred\": %.2f}",
            l.head, l.tail, l.insts, l.lines,
            l.resident ? "true" : "false",
            l.straightline ? "true" : "false", l.iter_pred);
    }
    out += "], \"regions\": [";
    first = true;
    for (const RegionBound &r : bound.regions) {
        if (!first)
            out += ", ";
        first = false;
        out += detail::vformat(
            "{\"simt_s\": %u, \"simt_e\": %u, \"body_insts\": %u, "
            "\"lines\": %u, \"max_replicas\": %u, \"interval\": %llu, "
            "\"fill_lb\": %llu, \"fill_pred\": %.2f, "
            "\"ii_lb\": %.2f, \"ii_gate\": %.2f, "
            "\"resource_ii\": %.2f, \"lsu_ii\": %.2f, "
            "\"unpip_ii\": %.2f, \"bank_ii\": %.2f, "
            "\"straightline\": %s}",
            r.simt_s_pc, r.simt_e_pc, r.body_insts, r.lines,
            r.max_replicas,
            static_cast<unsigned long long>(r.interval),
            static_cast<unsigned long long>(r.fill_lb), r.fill_pred,
            r.ii_lb, r.ii_gate, r.resource_ii, r.lsu_ii, r.unpip_ii,
            r.bank_ii, r.straightline ? "true" : "false");
    }
    out += "]}\n";
    return out;
}

} // namespace diag::analysis
