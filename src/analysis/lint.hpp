/**
 * @file
 * diag-lint: the static dataflow analyzer for assembled programs.
 *
 * Runs a pipeline of passes over a diag::Program:
 *   1. cfg      — basic blocks, reachability, structural errors
 *   2. liveness — register-lane def-use (undefined reads, dead writes,
 *                 results discarded into x0)
 *   3. simt     — simt_s/simt_e region legality (the same scan the
 *                 ring control unit runs at run time, with reasons)
 *   4. reuse    — datapath-reuse / cluster-fit perf diagnostics
 *
 * Errors are conditions that fault at run time; warnings are legal
 * constructs that silently lose performance (a region that serializes,
 * a loop too long to stay resident) or look like bugs (undefined lane
 * reads). The DiAG processor and the workload harness lint every
 * program in strict mode and refuse to simulate one with errors.
 */
#ifndef DIAG_ANALYSIS_LINT_HPP
#define DIAG_ANALYSIS_LINT_HPP

#include "analysis/bound.hpp"
#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "analysis/memdep.hpp"

namespace diag::analysis
{

/** Analyzer configuration (machine geometry and entry conventions). */
struct LintOptions
{
    /** I-line / cluster size in bytes (pes_per_cluster * 4). */
    unsigned line_bytes = 64;
    /** Clusters per dataflow ring: bounds simt regions and reuse. */
    unsigned clusters_per_ring = 32;
    /** When false, simt markers are inert and the simt pass is off. */
    bool simt_enabled = true;
    /** Rough fetch+decode cost of one I-line, for perf estimates. */
    unsigned iline_fetch_cycles = 4;
    /** Timing parameters for the memdep/bound passes. */
    BoundParams timing;
    /** Lanes the launch environment initializes (x0 is implicit). */
    RegSet entry_defined;

    /** Options with the workload-harness convention: a0 = thread id
     *  and a1 = thread count are defined at entry. */
    static LintOptions
    abiEntry()
    {
        LintOptions opt;
        opt.entry_defined.set(10).set(11);
        return opt;
    }
};

/** Run every pass over @p prog and collect the findings. */
LintResult lintProgram(const Program &prog,
                       const LintOptions &opt = {});

/** Findings plus the structured memdep/bound models (diag-bound). */
struct ProgramAnalysis
{
    LintResult lint;
    MemDepResult memdep;
    BoundResult bound;
};

/** Run every pass and keep the structured pass results. */
ProgramAnalysis analyzeProgram(const Program &prog,
                               const LintOptions &opt = {});

/** Pass 3: static simt_s/simt_e region legality (reachable regions). */
void checkSimt(const Cfg &cfg, const Program &prog,
               const LintOptions &opt, LintResult &report);

/** Pass 4: backward-branch reuse and cluster-fit diagnostics. */
void checkReuse(const Cfg &cfg, const LintOptions &opt,
                LintResult &report);

} // namespace diag::analysis

#endif // DIAG_ANALYSIS_LINT_HPP
