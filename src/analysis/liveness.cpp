#include "analysis/liveness.hpp"

#include <map>

#include "common/log.hpp"
#include "isa/disasm.hpp"

namespace diag::analysis
{

using namespace diag::isa;

namespace
{

void
addReg(RegSet &set, RegId r)
{
    if (r != kNoReg && r != kRegZero)
        set.set(r);
}

/** True for opcode classes whose encodings carry a destination field,
 *  so `rd == kNoReg` means the programmer wrote x0 as destination. */
bool
encodesIntDest(const DecodedInst &di)
{
    switch (di.cls()) {
      case ExecClass::IntAlu:
      case ExecClass::IntMul:
      case ExecClass::IntDiv:
      case ExecClass::Load:
      case ExecClass::FpCmp:
      case ExecClass::FpCvt:
      case ExecClass::FpMisc:
        return !di.info().fpDest;
      default:
        return false;
    }
}

constexpr u32 kCanonicalNop = 0x00000013;  // addi x0, x0, 0

} // namespace

UseDef
instUseDef(const Cfg &cfg, Addr pc, const DecodedInst &di)
{
    UseDef ud;
    if (!di.valid())
        return ud;
    if (di.op == Op::SIMT_S) {
        // simt_s launches threads from rc/r_step/r_end but leaves rc
        // with its entry value (the marker itself writes nothing).
        const SimtStartFields f = simtStartFields(di);
        addReg(ud.use, f.rc);
        addReg(ud.use, f.rStep);
        addReg(ud.use, f.rEnd);
        return ud;
    }
    if (di.op == Op::SIMT_E) {
        // simt_e advances rc by the matching simt_s's step and
        // compares it against r_end (scalar do-while semantics).
        const SimtEndFields f = simtEndFields(di);
        addReg(ud.use, f.rc);
        addReg(ud.use, f.rEnd);
        const Addr s_pc = pc - f.lOffset;
        auto it = cfg.insts.find(s_pc);
        if (it != cfg.insts.end() && it->second.op == Op::SIMT_S)
            addReg(ud.use, simtStartFields(it->second).rStep);
        addReg(ud.def, f.rc);
        return ud;
    }
    addReg(ud.use, di.rs1);
    addReg(ud.use, di.rs2);
    addReg(ud.use, di.rs3);
    addReg(ud.def, di.rd);
    return ud;
}

void
checkLiveness(const Cfg &cfg, const RegSet &entry_defined,
              LintResult &report)
{
    const size_t n = cfg.blocks.size();
    if (n == 0)
        return;
    const RegSet all = RegSet{}.flip();

    // ---- backward liveness fixpoint ----
    std::vector<RegSet> live_in(n), live_out(n);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = n; i-- > 0;) {
            const BasicBlock &bb = cfg.blocks[i];
            RegSet out;
            if (bb.unknown_succ)
                out = all;  // indirect transfer: anything may be read
            for (const Addr s : bb.succs)
                out |= live_in[cfg.leader_index.at(s)];
            RegSet in = out;
            for (Addr pc = bb.last;; pc -= 4) {
                const UseDef ud =
                    instUseDef(cfg, pc, cfg.insts.at(pc));
                in = (in & ~ud.def) | ud.use;
                if (pc == bb.first)
                    break;
            }
            if (out != live_out[i] || in != live_in[i]) {
                live_out[i] = out;
                live_in[i] = in;
                changed = true;
            }
        }
    }

    // ---- dead writes: defs of lanes not live just after the def ----
    for (size_t i = 0; i < n; ++i) {
        const BasicBlock &bb = cfg.blocks[i];
        RegSet live = live_out[i];
        for (Addr pc = bb.last;; pc -= 4) {
            const DecodedInst &di = cfg.insts.at(pc);
            const UseDef ud = instUseDef(cfg, pc, di);
            // Link writes (call/return idiom) and simt markers are
            // conventionally unread; only flag plain computation.
            if (ud.def.any() && (ud.def & live).none() &&
                di.op != Op::JAL && di.op != Op::JALR && !di.isSimt()) {
                report.add(
                    Severity::Warning, pc, "liveness",
                    detail::vformat("dead write: `%s` drives lane %s "
                                    "but no later instruction reads it "
                                    "before the next write",
                                    disassemble(di, pc).c_str(),
                                    regName(di.rd).c_str()));
            }
            live = (live & ~ud.def) | ud.use;
            if (pc == bb.first)
                break;
        }
    }

    // ---- forward must-define fixpoint (definitely-written lanes) ----
    const unsigned entry_idx = cfg.leader_index.at(cfg.entry);
    std::vector<RegSet> def_in(n, all), def_out(n, all);
    changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < n; ++i) {
            const BasicBlock &bb = cfg.blocks[i];
            RegSet in = all;
            for (const unsigned p : bb.preds) {
                const BasicBlock &pred = cfg.blocks[p];
                // A call-return edge may define anything (the callee's
                // writes are visible after it returns).
                const bool via_call = pred.call_fallthrough &&
                                      pred.last + 4 == bb.first;
                in &= via_call ? all : def_out[p];
            }
            // Entering from the launch environment is a real path.
            if (bb.id == entry_idx)
                in &= entry_defined;
            RegSet out = in;
            for (Addr pc = bb.first; pc <= bb.last; pc += 4)
                out |= instUseDef(cfg, pc, cfg.insts.at(pc)).def;
            if (in != def_in[i] || out != def_out[i]) {
                def_in[i] = in;
                def_out[i] = out;
                changed = true;
            }
        }
    }

    // ---- report: first read of each never-/maybe-unwritten lane ----
    std::map<unsigned, Addr> first_undef_read;  // reg -> lowest pc
    for (size_t i = 0; i < n; ++i) {
        const BasicBlock &bb = cfg.blocks[i];
        RegSet defined = def_in[i];
        for (Addr pc = bb.first; pc <= bb.last; pc += 4) {
            const UseDef ud = instUseDef(cfg, pc, cfg.insts.at(pc));
            const RegSet undef = ud.use & ~defined;
            for (unsigned r = 0; r < 64; ++r) {
                if (!undef.test(r))
                    continue;
                auto it = first_undef_read.find(r);
                if (it == first_undef_read.end() || pc < it->second)
                    first_undef_read[r] = pc;
            }
            defined |= ud.def;
        }
    }
    for (const auto &[r, pc] : first_undef_read) {
        report.add(
            Severity::Warning, pc, "liveness",
            detail::vformat("register %s is read here but no write "
                            "precedes it on some path from the entry "
                            "(the lane reads as zero)",
                            regName(static_cast<RegId>(r)).c_str()));
    }

    // ---- results discarded into x0 ----
    for (const auto &[pc, di] : cfg.insts) {
        if (di.valid() && di.rd == kNoReg && encodesIntDest(di) &&
            di.raw != kCanonicalNop) {
            report.add(
                Severity::Warning, pc, "liveness",
                detail::vformat("`%s` discards its result into x0 "
                                "(did you mean another destination?)",
                                disassemble(di, pc).c_str()));
        }
    }
}

} // namespace diag::analysis
