/**
 * @file
 * Abstract interpretation over the recovered CFG: a forward fixpoint
 * that tracks, per register lane, an unsigned interval plus a
 * known-bits (bit-level constant/alignment) domain. The fixpoint is
 * the value foundation of diag-verify: it resolves divisors, effective
 * addresses, and simt_s operand registers to provable facts, and it
 * computes which blocks *must* execute (dominate every halt) so that
 * a violated property can be refuted rather than merely suspected.
 *
 * Soundness contract: every abstract value over-approximates the set
 * of concrete values the lane can hold at that point on any execution
 * that follows the CFG (call edges clobber to top, indirect-jump
 * blocks propagate nothing they cannot see). Widening only ever grows
 * intervals, so a converged fixpoint stays an over-approximation.
 */
#ifndef DIAG_ANALYSIS_ABSINT_HPP
#define DIAG_ANALYSIS_ABSINT_HPP

#include <array>
#include <map>
#include <vector>

#include "analysis/cfg.hpp"

namespace diag::analysis
{

/**
 * Abstract value of one 32-bit lane: the unsigned interval [lo, hi]
 * intersected with the bit-level constraint "bits in kmask equal the
 * corresponding bits of kval". lo > hi encodes bottom (unreachable).
 * The two components are kept mutually normalized: a full kmask pins
 * the interval to the constant, and known leading/trailing bits
 * tighten the interval bounds.
 */
struct AbsVal
{
    u64 lo = 0;            //!< unsigned lower bound (inclusive)
    u64 hi = 0xffffffffull; //!< unsigned upper bound (inclusive)
    u32 kmask = 0;         //!< bit i known iff kmask bit i set
    u32 kval = 0;          //!< value of known bits (subset of kmask)

    static AbsVal top() { return {}; }
    static AbsVal
    constant(u32 c)
    {
        return {c, c, 0xffffffffu, c};
    }
    static AbsVal
    bottom()
    {
        return {1, 0, 0, 0};
    }
    /** [lo, hi] with no bit knowledge (normalized on use). */
    static AbsVal
    interval(u64 lo, u64 hi)
    {
        AbsVal v{lo, hi, 0, 0};
        v.normalize();
        return v;
    }

    bool isBottom() const { return lo > hi; }
    bool isConst() const { return !isBottom() && lo == hi; }
    u32 constVal() const { return static_cast<u32>(lo); }

    /** True when @p v is outside the abstraction (proven never held). */
    bool
    excludes(u32 v) const
    {
        if (isBottom())
            return true;
        if (v < lo || v > hi)
            return true;
        return (v & kmask) != kval;
    }

    /**
     * The value modulo @p m (a power of two, <= 4096) when the low
     * bits are all known; -1 when unprovable.
     */
    int
    remainder(u32 m) const
    {
        if (isBottom() || m == 0 || (m & (m - 1)) != 0)
            return -1;
        const u32 low = m - 1;
        if ((kmask & low) != low)
            return -1;
        return static_cast<int>(kval & low);
    }

    /** Re-establish interval<->bits consistency (may produce bottom). */
    void normalize();
    /** In-place join (least upper bound); true when this changed. */
    bool join(const AbsVal &o);
    /** In-place widening join: growing bounds jump to the extremes. */
    bool widen(const AbsVal &o);
    /** In-place meet (intersection); may produce bottom. */
    void meet(const AbsVal &o);

    bool
    operator==(const AbsVal &o) const
    {
        return lo == o.lo && hi == o.hi && kmask == o.kmask &&
               kval == o.kval;
    }
};

// Transfer helpers over the combined domain (exposed for unit tests).
AbsVal absAdd(const AbsVal &a, const AbsVal &b);
AbsVal absSub(const AbsVal &a, const AbsVal &b);
AbsVal absAnd(const AbsVal &a, const AbsVal &b);
AbsVal absOr(const AbsVal &a, const AbsVal &b);
AbsVal absXor(const AbsVal &a, const AbsVal &b);
AbsVal absShl(const AbsVal &a, unsigned sh);
AbsVal absShr(const AbsVal &a, unsigned sh);
AbsVal absMul(const AbsVal &a, const AbsVal &b);

/** One abstract register file (unified x/f space; x0 is constant 0). */
using AbsRegs = std::array<AbsVal, isa::kNumRegs>;

/**
 * Facts proven at one instruction of interest, evaluated in the
 * converged fixpoint state on entry to that instruction.
 */
struct SiteInfo
{
    Addr pc = 0;
    bool is_mem = false;
    bool is_store = false;
    bool is_div = false;        //!< DIV/DIVU/REM/REMU
    u8 mem_bytes = 0;           //!< access size for mem sites
    AbsVal addr;                //!< rs1 + imm for mem sites
    AbsVal divisor;             //!< rs2 for divide sites
    /** The site's block lies on every entry->halt path. */
    bool must_execute = false;
};

/** Result of one whole-program fixpoint. */
struct AbsIntResult
{
    /** Memory and divide sites, keyed by pc. */
    std::map<Addr, SiteInfo> sites;
    /** Abstract register file on entry to each simt_s (by its pc). */
    std::map<Addr, AbsRegs> simt_entry;
    /** Per block id: the block dominates every halting block. */
    std::vector<bool> block_must_execute;
    /** False when the iteration cap was hit; all states are then top. */
    bool converged = true;
};

/** Run the fixpoint over @p cfg (entry state: x0 = 0, all else top). */
AbsIntResult runAbsInt(const Cfg &cfg);

} // namespace diag::analysis

#endif // DIAG_ANALYSIS_ABSINT_HPP
