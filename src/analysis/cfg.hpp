/**
 * @file
 * Control-flow graph construction over an assembled program image.
 *
 * DiAG's premise is that program order plus register lanes *is* the
 * dataflow graph, so the CFG of the assembled binary statically
 * determines most properties the hardware otherwise discovers at run
 * time. This module recovers that CFG by recursive traversal from the
 * entry point: reachable instructions, basic blocks, and block-level
 * successor edges (including the simt_e back edge and call/return
 * edges), and reports structural defects — reachable invalid
 * encodings, control flow leaving the emitted image, execution falling
 * off the end of a chunk, and unreachable code.
 */
#ifndef DIAG_ANALYSIS_CFG_HPP
#define DIAG_ANALYSIS_CFG_HPP

#include <map>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "asm/program.hpp"
#include "isa/inst.hpp"

namespace diag::analysis
{

/** One basic block of reachable straight-line code. */
struct BasicBlock
{
    unsigned id = 0;
    Addr first = 0;  //!< pc of the first instruction
    Addr last = 0;   //!< pc of the last instruction
    /** Leader pcs of the known successor blocks. */
    std::vector<Addr> succs;
    /** Block ids of the known predecessors. */
    std::vector<unsigned> preds;
    /**
     * The block ends in an indirect transfer (jalr): its full
     * successor set is statically unknown and analyses must treat its
     * out-state conservatively.
     */
    bool unknown_succ = false;
    /**
     * True when the edge to the textual fall-through leader models a
     * call returning (jal/jalr with a link register): the callee may
     * clobber or define anything between the two blocks.
     */
    bool call_fallthrough = false;

    unsigned
    size() const
    {
        return static_cast<unsigned>((last - first) / 4 + 1);
    }
};

/** The recovered control-flow graph. */
struct Cfg
{
    /** The traversal root (the program's entry point). */
    Addr entry = 0;
    /** Every reachable instruction, decoded, keyed by pc. */
    std::map<Addr, isa::DecodedInst> insts;
    /** Basic blocks sorted by start address. */
    std::vector<BasicBlock> blocks;
    /** Block leader pc -> index into blocks. */
    std::map<Addr, unsigned> leader_index;

    bool reachable(Addr pc) const { return insts.count(pc) != 0; }

    /** The block whose leader is @p pc, or nullptr. */
    const BasicBlock *
    blockAt(Addr pc) const
    {
        auto it = leader_index.find(pc);
        return it == leader_index.end() ? nullptr : &blocks[it->second];
    }
};

/**
 * Build the CFG of @p prog by traversal from its entry point,
 * reporting structural errors (reachable invalid instructions, control
 * flow leaving the image, falling off the end of a chunk) into
 * @p report.
 */
Cfg buildCfg(const Program &prog, LintResult &report);

/**
 * Report unreachable code: maximal runs of valid instructions inside
 * chunks that contain reachable code but that no path from the entry
 * reaches. Data chunks (no reachable code) and zero padding are not
 * reported.
 */
void checkUnreachable(const Cfg &cfg, const Program &prog,
                      LintResult &report);

} // namespace diag::analysis

#endif // DIAG_ANALYSIS_CFG_HPP
