#include "analysis/memdep.hpp"

#include <algorithm>
#include <deque>

#include "analysis/lint.hpp"
#include "analysis/simt_scan.hpp"
#include "common/log.hpp"
#include "isa/decoder.hpp"

namespace diag::analysis
{

using namespace diag::isa;

const char *
loadClassName(LoadClass c)
{
    switch (c) {
      case LoadClass::UnknownAlias: return "unknown-alias";
      case LoadClass::LaneForwardable: return "lane-forwardable";
      case LoadClass::LsuSerialized: return "lsu-serialized";
    }
    return "?";
}

namespace
{

/** Value-numbering state: one SymExpr per architectural lane. */
struct SymState
{
    std::array<SymExpr, kNumRegs> reg{};
    u32 next_term = 1;

    /** Seed every lane with a distinct opaque term (x0 stays 0). */
    void
    seed()
    {
        for (unsigned r = 1; r < kNumRegs; ++r)
            reg[r] = {next_term++, 0, 0};
    }

    SymExpr fresh() { return {next_term++, 0, 0}; }

    SymExpr
    read(RegId r) const
    {
        if (r == kNoReg || r == kRegZero)
            return {0, 0, 0};
        return reg[r];
    }
};

/** True iff @p e is a compile-time constant (no base, no rc term). */
bool
isConst(const SymExpr &e)
{
    return e.base == 0 && e.rc_coeff == 0;
}

/**
 * Transfer function of the value numbering: update @p st for @p di.
 * Only the address-forming subset (LUI/AUIPC, add/sub/shift with
 * immediates and constant operands) stays symbolic; everything else
 * produces a fresh opaque term.
 */
void
evalInst(SymState &st, Addr pc, const DecodedInst &di)
{
    if (!di.writesReg())
        return;
    const SymExpr a = st.read(di.rs1);
    const SymExpr b = st.read(di.rs2);
    SymExpr out;
    switch (di.op) {
      case Op::LUI:
        out = {0, 0, static_cast<i64>(static_cast<u32>(di.imm))};
        break;
      case Op::AUIPC:
        out = {0, 0,
               static_cast<i64>(pc + static_cast<u32>(di.imm))};
        break;
      case Op::ADDI:
        out = a;
        out.offset += di.imm;
        break;
      case Op::ADD:
        if (a.base == 0)
            out = {b.base, a.rc_coeff + b.rc_coeff,
                   a.offset + b.offset};
        else if (b.base == 0)
            out = {a.base, a.rc_coeff + b.rc_coeff,
                   a.offset + b.offset};
        else
            out = st.fresh();
        break;
      case Op::SUB:
        if (isConst(b)) {
            out = a;
            out.offset -= b.offset;
        } else if (a.sameBase(b) && a.rc_coeff == b.rc_coeff) {
            out = {0, 0, a.offset - b.offset};
        } else {
            out = st.fresh();
        }
        break;
      case Op::SLLI:
        if (a.base == 0 && di.imm >= 0 && di.imm < 32)
            out = {0, a.rc_coeff << di.imm, a.offset << di.imm};
        else
            out = st.fresh();
        break;
      default:
        out = st.fresh();
        break;
    }
    st.reg[di.rd] = out;
}

/** One memory access with its reconstructed address expression. */
struct MemAccess
{
    Addr pc = 0;
    SymExpr ea;
    u8 size = 0;
    bool is_store = false;
};

/** Byte-range relation of a load against one store (same base). */
enum class Overlap
{
    Disjoint,
    Covered,   //!< the store covers every byte the load reads
    Partial,
};

Overlap
classifyOverlap(const SymExpr &load_ea, u8 load_size,
                const SymExpr &store_ea, u8 store_size)
{
    const i64 delta = load_ea.offset - store_ea.offset;
    if (delta >= store_size || delta + load_size <= 0)
        return Overlap::Disjoint;
    if (delta >= 0 && delta + load_size <= store_size)
        return Overlap::Covered;
    return Overlap::Partial;
}

/** Human description of an address expression for diagnostics. */
std::string
describeAddr(const Program &prog, const SymExpr &e)
{
    if (isConst(e))
        return prog.nearestSymbol(static_cast<Addr>(e.offset));
    if (e.rc_coeff != 0)
        return detail::vformat("base+%lld*rc%+lld",
                               static_cast<long long>(e.rc_coeff),
                               static_cast<long long>(e.offset));
    return detail::vformat("base%+lld",
                           static_cast<long long>(e.offset));
}

/**
 * Straight-line scope: classify each load in @p body against the
 * sliding window of older stores, modelling the memory-lane CAM
 * (youngest fully-covering match forwards; a partial overlap blocks
 * forwarding; an opaque store leaves the query undecidable).
 */
void
classifyLoads(const std::vector<MemAccess> &body, unsigned cam_entries,
              const Program &prog, bool emit, MemDepResult &out,
              LintResult &report)
{
    std::deque<const MemAccess *> window;
    for (const MemAccess &m : body) {
        if (m.is_store) {
            window.push_back(&m);
            if (window.size() > cam_entries)
                window.pop_front();
            continue;
        }
        LoadDep dep;
        dep.pc = m.pc;
        dep.ea = m.ea;
        for (auto it = window.rbegin(); it != window.rend(); ++it) {
            const MemAccess &s = **it;
            if (!m.ea.sameBase(s.ea) ||
                m.ea.rc_coeff != s.ea.rc_coeff) {
                // Undecidable pair: the CAM may or may not match at
                // run time, so no younger decision is provable.
                dep.cls = LoadClass::UnknownAlias;
                dep.store_pc = s.pc;
                break;
            }
            const Overlap ov =
                classifyOverlap(m.ea, m.size, s.ea, s.size);
            if (ov == Overlap::Disjoint)
                continue;
            dep.store_pc = s.pc;
            if (ov == Overlap::Covered) {
                dep.cls = LoadClass::LaneForwardable;
                if (emit)
                    report.add(
                        Severity::Note, m.pc, "memdep",
                        detail::vformat(
                            "load forwards from the store at 0x%08x "
                            "through the memory lanes "
                            "(store-to-load hit on %s)",
                            s.pc, describeAddr(prog, m.ea).c_str()));
            } else {
                dep.cls = LoadClass::LsuSerialized;
                if (emit)
                    report.add(
                        Severity::Note, m.pc, "memdep",
                        detail::vformat(
                            "load overlaps the %u-byte store at "
                            "0x%08x only partially: the memory lanes "
                            "cannot forward a partial value, so the "
                            "load serializes through the LSU behind "
                            "the store",
                            s.size, s.pc));
            }
            break;
        }
        out.loads.push_back(dep);
    }
}

/** Collect the memory accesses of one basic block, symbolically. */
std::vector<MemAccess>
blockAccesses(const Cfg &cfg, const BasicBlock &bb, SymState &st)
{
    std::vector<MemAccess> body;
    for (Addr pc = bb.first; pc <= bb.last; pc += 4) {
        const auto it = cfg.insts.find(pc);
        if (it == cfg.insts.end())
            break;
        const DecodedInst &di = it->second;
        if (di.isMem()) {
            MemAccess m;
            m.pc = pc;
            m.ea = st.read(di.rs1);
            m.ea.offset += di.imm;
            m.size = di.info().memBytes;
            m.is_store = di.isStore();
            body.push_back(m);
        }
        evalInst(st, pc, di);
    }
    return body;
}

/**
 * Region scope: pairwise store->load dependence tests under the
 * per-iteration address map `base + rc_coeff*rc + offset`, where rc
 * takes a different value in every pipelined thread.
 */
void
analyzeRegion(const Program &prog, const LintOptions &opt,
              Addr simt_s_pc, const SimtScan &scan,
              MemDepResult &out, LintResult &report)
{
    const DecodedInst start = decode(prog.word(simt_s_pc));
    const SimtStartFields f = simtStartFields(start);

    SymState st;
    st.seed();
    // The loop-control lane is the region's induction variable.
    if (f.rc != kRegZero && f.rc != kNoReg)
        st.reg[f.rc] = {0, 1, 0};

    RegionMemDep region;
    region.simt_s_pc = simt_s_pc;
    region.simt_e_pc = scan.simt_e_pc;

    std::vector<MemAccess> body;
    for (Addr pc = simt_s_pc + 4; pc <= scan.simt_e_pc; pc += 4) {
        const DecodedInst di = decode(prog.word(pc));
        if (di.isMem()) {
            MemAccess m;
            m.pc = pc;
            m.ea = st.read(di.rs1);
            m.ea.offset += di.imm;
            m.size = di.info().memBytes;
            m.is_store = di.isStore();
            body.push_back(m);
            if (m.is_store) {
                ++region.stores_per_iter;
                region.stores.push_back({pc, m.ea});
            } else {
                ++region.loads_per_iter;
            }
        }
        evalInst(st, pc, di);
    }

    // Same-iteration classification (the per-thread CAM view).
    classifyLoads(body, opt.timing.mem_lane_entries, prog,
                  /*emit=*/true, out, report);
    region.loads.assign(out.loads.end() - region.loads_per_iter,
                        out.loads.end());
    out.loads.resize(out.loads.size() - region.loads_per_iter);

    // Cross-iteration store->load tests.
    for (const MemAccess &s : body) {
        if (!s.is_store)
            continue;
        for (const MemAccess &l : body) {
            if (l.is_store || !l.ea.sameBase(s.ea))
                continue;
            if (l.ea.rc_coeff == 0 && s.ea.rc_coeff == 0) {
                // Both accesses hit the same fixed address in every
                // iteration: a definite pipelined-thread race.
                if (classifyOverlap(l.ea, l.size, s.ea, s.size) ==
                    Overlap::Disjoint)
                    continue;
                region.carried_race = true;
                report.add(
                    Severity::Error, l.pc, "memdep",
                    detail::vformat(
                        "cross-iteration store-to-load race in the "
                        "simt region at 0x%08x: the store at 0x%08x "
                        "and this load address %s in every iteration, "
                        "but pipelined threads snapshot the lanes at "
                        "simt_s and interleave their memory accesses "
                        "freely, so the value read depends on thread "
                        "timing; rewrite the reduction with a "
                        "per-iteration address or drop the simt "
                        "markers",
                        simt_s_pc, s.pc,
                        describeAddr(prog, l.ea).c_str()));
            } else if (l.ea.rc_coeff != s.ea.rc_coeff ||
                       (l.ea.offset != s.ea.offset &&
                        classifyOverlap(l.ea, l.size, s.ea, s.size) ==
                            Overlap::Disjoint)) {
                // Same base, different stride or a non-overlapping
                // offset gap: whether two *different* iterations
                // collide depends on the step value, which is only
                // known at run time.
                if (l.ea.rc_coeff == s.ea.rc_coeff)
                    continue;  // equal stride, disjoint offsets: the
                               // gap is constant across iterations
                report.add(
                    Severity::Warning, l.pc, "memdep",
                    detail::vformat(
                        "store at 0x%08x (stride %lld per iteration) "
                        "and this load (stride %lld) share a base "
                        "address: iterations may alias depending on "
                        "the simt step value, and pipelined threads "
                        "give no cross-iteration memory ordering",
                        s.pc,
                        static_cast<long long>(s.ea.rc_coeff),
                        static_cast<long long>(l.ea.rc_coeff)));
            }
        }
    }

    // Memory-lane CAM pressure: the lanes are shared by every thread
    // in flight, so each iteration's stores occupy entries for about
    // one pipeline-fill worth of threads.
    const unsigned body_insts =
        static_cast<unsigned>((scan.simt_e_pc - simt_s_pc) / 4);
    const unsigned interval = std::max(1u, scan.fields.interval);
    const unsigned inflight = body_insts / interval + 1;
    region.cam_demand = region.stores_per_iter * inflight;
    if (region.stores_per_iter > 0 &&
        region.cam_demand > opt.timing.mem_lane_entries) {
        report.add(
            Severity::Note, simt_s_pc, "memdep",
            detail::vformat(
                "memory-lane pressure: %u store(s)/iteration with "
                "~%u threads in flight demands ~%u CAM entries but "
                "the lanes hold %u; store-to-load forwarding hits "
                "will be lost to capacity evictions",
                region.stores_per_iter, inflight, region.cam_demand,
                opt.timing.mem_lane_entries));
    }

    out.regions.push_back(std::move(region));
}

} // namespace

MemDepResult
checkMemDep(const Cfg &cfg, const Program &prog,
            const LintOptions &opt, LintResult &report)
{
    MemDepResult out;

    // Pipelinable regions get the cross-iteration treatment; their
    // span is excluded from the straight-line pass below so each load
    // is classified exactly once.
    std::vector<std::pair<Addr, Addr>> region_spans;
    if (opt.simt_enabled) {
        for (const auto &[pc, di] : cfg.insts) {
            if (di.op != Op::SIMT_S)
                continue;
            const SimtScan scan = scanSimtRegion(
                pc, prog.image, opt.line_bytes, opt.clusters_per_ring);
            if (!scan.ok())
                continue;  // serializes: the block pass covers it
            region_spans.emplace_back(pc + 4, scan.simt_e_pc);
            analyzeRegion(prog, opt, pc, scan, out, report);
        }
    }
    auto in_region = [&](Addr pc) {
        for (const auto &[lo, hi] : region_spans)
            if (pc >= lo && pc <= hi)
                return true;
        return false;
    };

    SymState st;
    for (const BasicBlock &bb : cfg.blocks) {
        if (in_region(bb.first))
            continue;
        // Lanes carry unknown values at block entry: reseed so no
        // expression leaks across a control-flow join.
        st.seed();
        const std::vector<MemAccess> body = blockAccesses(cfg, bb, st);
        classifyLoads(body, opt.timing.mem_lane_entries, prog,
                      /*emit=*/true, out, report);
    }
    return out;
}

} // namespace diag::analysis
