#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <tuple>

#include "common/log.hpp"

namespace diag::analysis
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Error: return "error";
      case Severity::Warning: return "warning";
      case Severity::Note: return "note";
    }
    return "?";
}

unsigned
LintResult::count(Severity s) const
{
    unsigned n = 0;
    for (const Diagnostic &d : diags)
        if (d.severity == s)
            ++n;
    return n;
}

void
LintResult::finalize()
{
    auto key = [](const Diagnostic &d) {
        return std::tie(d.pc, d.pass, d.severity, d.message);
    };
    std::stable_sort(diags.begin(), diags.end(),
                     [&](const Diagnostic &a, const Diagnostic &b) {
                         return key(a) < key(b);
                     });
    diags.erase(std::unique(diags.begin(), diags.end(),
                            [&](const Diagnostic &a,
                                const Diagnostic &b) {
                                return key(a) == key(b);
                            }),
                diags.end());
}

std::string
renderText(const LintResult &result)
{
    std::string out;
    for (const Diagnostic &d : result.diags) {
        out += detail::vformat("0x%08x: %s: [%s] %s\n", d.pc,
                               severityName(d.severity), d.pass.c_str(),
                               d.message.c_str());
    }
    out += detail::vformat(
        "%u error(s), %u warning(s), %u note(s)\n", result.errors(),
        result.warnings(), result.count(Severity::Note));
    return out;
}

namespace
{

/** Escape a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += detail::vformat("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
renderJson(const LintResult &result)
{
    std::string out = detail::vformat(
        "{\"errors\": %u, \"warnings\": %u, \"notes\": %u, "
        "\"diagnostics\": [",
        result.errors(), result.warnings(),
        result.count(Severity::Note));
    bool first = true;
    for (const Diagnostic &d : result.diags) {
        if (!first)
            out += ", ";
        first = false;
        out += detail::vformat(
            "{\"severity\": \"%s\", \"pc\": %u, \"pass\": \"%s\", "
            "\"message\": \"%s\"}",
            severityName(d.severity), d.pc,
            jsonEscape(d.pass).c_str(), jsonEscape(d.message).c_str());
    }
    out += "]}\n";
    return out;
}

std::string
renderSarif(const std::vector<std::pair<std::string, LintResult>> &units,
            const std::string &tool_name)
{
    auto sarif_level = [](Severity s) {
        switch (s) {
          case Severity::Error: return "error";
          case Severity::Warning: return "warning";
          case Severity::Note: return "note";
        }
        return "none";
    };
    std::string out =
        "{\"version\": \"2.1.0\", "
        "\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\", "
        "\"runs\": [{\"tool\": {\"driver\": {\"name\": \"";
    out += jsonEscape(tool_name);
    out += "\", \"rules\": []}}, \"results\": [";
    bool first = true;
    for (const auto &[uri, result] : units) {
        for (const Diagnostic &d : result.diags) {
            if (!first)
                out += ", ";
            first = false;
            // No source mapping exists for assembled images: anchor
            // each finding at instruction granularity (word index as
            // a line).
            out += detail::vformat(
                "{\"ruleId\": \"%s\", \"level\": \"%s\", "
                "\"message\": {\"text\": \"0x%08x: %s\"}, "
                "\"locations\": [{\"physicalLocation\": "
                "{\"artifactLocation\": {\"uri\": \"%s\"}, "
                "\"region\": {\"startLine\": %u}}}]}",
                jsonEscape(d.pass).c_str(), sarif_level(d.severity),
                d.pc, jsonEscape(d.message).c_str(),
                jsonEscape(uri).c_str(), d.pc / 4 + 1);
        }
    }
    out += "]}]}\n";
    return out;
}

} // namespace diag::analysis
