/**
 * @file
 * Static stream & locality analysis (`diag-stream`).
 *
 * The paper's stall breakdown puts memory at 73.6 % of lost cycles
 * (§7.2); a stream prefetch/access layer needs to know, *statically*,
 * which address streams a region generates. This pass derives a
 * symbolic address map per memory instruction — extending the memdep
 * value numbering with a base-term scale, a thread-id coefficient, and
 * load-derivation depth — and resolves the map's free parameters (the
 * simt step, trip count, and address phase) against the diag-verify
 * abstract-interpretation fixpoint. Each access is classified as
 *
 *  - **affine**: `base + i*stride + tid*tstride` with the base value
 *    fixed for the whole region entry (prefetchable by a stride
 *    engine when the stride is proven),
 *  - **indirect**: the address is one load away from affine — an
 *    affine index stream feeding a gather/scatter,
 *  - **pointer-chase**: two or more loads deep, or a loop-carried
 *    `p = load(p + c)` recurrence (prefetch-hostile serial chain),
 *  - **unknown**: the base is minted in-scope by an operation the
 *    value numbering does not model.
 *
 * On top of the classification the pass predicts L1D bank-conflict
 * pressure under the cache model's word-interleaved mapping
 * (`bank = (addr/8) & (banks-1)`), per-stream footprint and
 * reuse-per-line estimates, and a prefetchability verdict. Every
 * affine verdict — region- and loop-scope alike — is differentially
 * validated against recorded address sequences by
 * `harness::validateStream` (DESIGN.md §14).
 */
#ifndef DIAG_ANALYSIS_STREAM_HPP
#define DIAG_ANALYSIS_STREAM_HPP

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "asm/program.hpp"

namespace diag::analysis
{

struct LintOptions;

/** Classification lattice of one memory access's address stream. */
enum class StreamKind : u8
{
    Affine,       //!< base + i*stride (+ tid*tstride), base invariant
    Indirect,     //!< gather/scatter indexed by an affine load stream
    PointerChase, //!< serial load-to-address dependence chain
    Unknown,      //!< opaque base minted inside the scope
};

/** Printable name of a stream kind. */
const char *streamKindName(StreamKind k);

/** How a prefetcher could cover the stream. */
enum class PrefetchClass : u8
{
    None,   //!< not prefetchable (chase/unknown or unproven stride)
    Scalar, //!< one address, resident after the first access
    Stride, //!< proven constant stride: classic stride prefetch
    Index,  //!< indirect over a proven-stride index stream
};

/** Printable name of a prefetch class. */
const char *prefetchClassName(PrefetchClass p);

/** One memory instruction's address stream within its scope. */
struct StreamInfo
{
    Addr pc = 0;
    bool is_store = false;
    u8 size = 0;            //!< access bytes
    StreamKind kind = StreamKind::Unknown;

    /**
     * Affine map coefficients. `rc_coeff` multiplies the scope's
     * induction value (the rc lane for simt regions, the iteration
     * counter for serial loops); `tid_coeff` multiplies the a0 lane
     * as the region entered it (the ABI thread-id register unless the
     * kernel clobbered it). `stride` is the proven byte delta between
     * consecutive iterations/threads — for simt regions that is
     * rc_coeff times the proven step constant.
     */
    i64 rc_coeff = 0;
    i64 tid_coeff = 0;
    bool stride_known = false;
    i64 stride = 0;

    /** Indirect/PointerChase: the load producing the address input. */
    Addr feeder_pc = 0;

    /** Footprint/locality estimates (affine with proven stride+trips). */
    bool footprint_known = false;
    u64 footprint_bytes = 0;
    u64 lines_touched = 0;     //!< distinct L1D lines spanned
    double reuse_per_line = 0; //!< accesses per distinct line

    /**
     * L1D banking verdicts under `bank = (addr/8) & (banks-1)`.
     * `bank_conflict_free` is only set when *provable*: no two
     * accesses of the stream close enough to hold a bank concurrently
     * — any distance up to the bank-occupancy in-flight window, with
     * accesses launching at least a cycle apart — can hit the same
     * bank from different 8-byte words, for any base alignment.
     * `bank_serialized` is the proven worst case: every distinct-word
     * access lands on one bank (stride a multiple of 8*banks).
     */
    bool bank_conflict_free = false;
    bool bank_serialized = false;

    PrefetchClass prefetch = PrefetchClass::None;
};

/** Stream table of one pipelinable simt_s/simt_e region. */
struct RegionStreams
{
    Addr simt_s_pc = 0;
    Addr simt_e_pc = 0;
    /**
     * No control flow inside the body: every access executes exactly
     * once per pipelined thread, so an affine stream's observed
     * sequence must equal the predicted map point for point.
     */
    bool straightline = true;
    /** simt_s operands resolved by abstract interpretation. */
    bool step_known = false;
    i64 step = 0;
    bool trips_known = false;
    u64 trips = 0;
    /** Classification tallies over `streams`. */
    unsigned affine = 0;
    unsigned indirect = 0;
    unsigned chase = 0;
    unsigned unknown = 0;
    std::vector<StreamInfo> streams; //!< program order
};

/** Stream table of one serial single-block backward-branch loop. */
struct LoopStreams
{
    Addr head = 0; //!< loop entry (branch target)
    Addr tail = 0; //!< the backward branch
    std::vector<StreamInfo> streams; //!< program order
};

/** Whole-program stream analysis. */
struct StreamResult
{
    std::vector<RegionStreams> regions; //!< by simt_s pc
    std::vector<LoopStreams> loops;     //!< by head pc
};

/**
 * Run the stream classification over @p prog, appending diagnostics
 * (pass "stream") to @p report: a per-region summary note, warnings
 * for proven bank-serialized streams, and notes for pointer-chase /
 * indirect / unclassified streams. Kept separate from analyzeProgram
 * so diag-lint/diag-bound output (and their goldens) is unchanged.
 */
StreamResult analyzeStreams(const Program &prog, const LintOptions &opt,
                            LintResult &report);

/** Deterministic fixed-format table, one line per stream. */
std::string renderStreamText(const StreamResult &r);

/** Deterministic JSON document for goldens and tooling. */
std::string renderStreamJson(const StreamResult &r);

} // namespace diag::analysis

#endif // DIAG_ANALYSIS_STREAM_HPP
