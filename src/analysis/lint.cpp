#include "analysis/lint.hpp"

#include <algorithm>

#include "analysis/simt_scan.hpp"
#include "common/bits.hpp"
#include "common/log.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"

namespace diag::analysis
{

using namespace diag::isa;

void
checkSimt(const Cfg &cfg, const Program &prog, const LintOptions &opt,
          LintResult &report)
{
    for (const auto &[pc, di] : cfg.insts) {
        if (di.op == Op::SIMT_E) {
            // An unmatched simt_e: its l_offset must point back at a
            // reachable simt_s.
            const Addr s_pc = pc - simtEndFields(di).lOffset;
            auto it = cfg.insts.find(s_pc);
            if (it == cfg.insts.end() ||
                it->second.op != Op::SIMT_S) {
                report.add(
                    Severity::Warning, pc, "simt",
                    detail::vformat("unmatched simt_e: l_offset "
                                    "points at 0x%08x, which is not "
                                    "a reachable simt_s",
                                    s_pc));
            }
            continue;
        }
        if (di.op != Op::SIMT_S)
            continue;
        const SimtScan scan = scanSimtRegion(
            pc, prog.image, opt.line_bytes, opt.clusters_per_ring);
        switch (scan.status) {
          case SimtScan::Status::Ok:
          case SimtScan::Status::NotSimtS:
            break;
          case SimtScan::Status::Unterminated:
            report.add(
                Severity::Warning, pc, "simt",
                detail::vformat(
                    "simt_s has no matching simt_e within %u "
                    "instructions (ring capacity): the region cannot "
                    "pipeline and executes serially",
                    opt.clusters_per_ring * (opt.line_bytes / 4)));
            break;
          case SimtScan::Status::MismatchedEnd:
            report.add(
                Severity::Warning, pc, "simt",
                detail::vformat("simt_e at 0x%08x closes a different "
                                "simt_s: unmatched/nested region "
                                "markers, the region executes serially",
                                scan.fault_pc));
            break;
          case SimtScan::Status::TooManyLines:
            report.add(
                Severity::Warning, pc, "simt",
                detail::vformat(
                    "simt region spans %u I-lines but the ring has "
                    "only %u clusters: the thread pipeline cannot be "
                    "laid out and the region executes serially",
                    scan.lines, opt.clusters_per_ring));
            break;
          case SimtScan::Status::NestedStart:
            report.add(
                Severity::Warning, pc, "simt",
                detail::vformat("nested simt_s at 0x%08x inside the "
                                "region: regions cannot nest, the "
                                "outer region executes serially",
                                scan.fault_pc));
            break;
          case SimtScan::Status::IllegalInst:
            report.add(
                Severity::Warning, pc, "simt",
                detail::vformat(
                    "illegal instruction inside simt region at "
                    "0x%08x (`%s`): indirect jumps, ebreak/ecall and "
                    "invalid encodings cannot pipeline, the region "
                    "executes serially",
                    scan.fault_pc,
                    disassemble(decode(prog.word(scan.fault_pc)),
                                scan.fault_pc)
                        .c_str()));
            break;
          case SimtScan::Status::BackwardBranch:
            report.add(
                Severity::Warning, pc, "simt",
                detail::vformat("backward branch at 0x%08x inside "
                                "simt region: inner loops cannot "
                                "pipeline, the region executes "
                                "serially",
                                scan.fault_pc));
            break;
          case SimtScan::Status::LoopCarriedDep:
            report.add(
                Severity::Warning, pc, "simt",
                detail::vformat(
                    "register %s carries a value across iterations "
                    "(read before any unconditional write in the "
                    "body): threads would observe the previous "
                    "iteration's value, the region executes serially",
                    regName(scan.dep_reg).c_str()));
            break;
        }
    }
}

void
checkReuse(const Cfg &cfg, const LintOptions &opt, LintResult &report)
{
    for (const auto &[pc, di] : cfg.insts) {
        // Backward control transfers are the datapath-reuse case
        // (paper §4.3): the loop body must still be resident.
        const bool backward =
            (di.isBranch() || di.op == Op::JAL) && di.imm < 0;
        if (!backward)
            continue;
        const Addr target = pc + static_cast<u32>(di.imm);
        const Addr head_line = alignDown(target, opt.line_bytes);
        const Addr tail_line = alignDown(pc, opt.line_bytes);
        const unsigned lines =
            static_cast<unsigned>((tail_line - head_line) /
                                  opt.line_bytes) +
            1;
        const u32 body_bytes = pc + 4 - target;
        if (lines > opt.clusters_per_ring) {
            report.add(
                Severity::Warning, pc, "reuse",
                detail::vformat(
                    "backward branch to 0x%08x spans %u I-lines but "
                    "the ring holds %u clusters: the loop cannot stay "
                    "resident, so every iteration re-fetches and "
                    "re-decodes its lines (~%u cycles/iteration of "
                    "lost datapath reuse)",
                    target, lines, opt.clusters_per_ring,
                    lines * opt.iline_fetch_cycles));
        } else if (body_bytes <= opt.line_bytes && lines == 2) {
            report.add(
                Severity::Note, pc, "reuse",
                detail::vformat(
                    "loop body of %u bytes straddles an I-line "
                    "boundary: it occupies 2 clusters where an "
                    "aligned placement needs 1 (costs one extra "
                    "inter-cluster latch per iteration; consider "
                    "aligning the loop head to %u bytes)",
                    body_bytes, opt.line_bytes));
        }
    }
}

LintResult
lintProgram(const Program &prog, const LintOptions &opt)
{
    return analyzeProgram(prog, opt).lint;
}

ProgramAnalysis
analyzeProgram(const Program &prog, const LintOptions &opt)
{
    ProgramAnalysis out;
    LintResult &report = out.lint;
    const Cfg cfg = buildCfg(prog, report);
    if (cfg.blocks.empty()) {
        report.finalize();
        return out;  // entry outside the image: nothing to analyze
    }
    checkUnreachable(cfg, prog, report);
    checkLiveness(cfg, opt.entry_defined, report);
    if (opt.simt_enabled)
        checkSimt(cfg, prog, opt, report);
    checkReuse(cfg, opt, report);
    out.memdep = checkMemDep(cfg, prog, opt, report);
    out.bound = analyzeBound(cfg, prog, out.memdep, opt, &report);
    report.finalize();
    return out;
}

} // namespace diag::analysis
