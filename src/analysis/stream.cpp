#include "analysis/stream.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "analysis/absint.hpp"
#include "analysis/lint.hpp"
#include "analysis/simt_scan.hpp"
#include "common/log.hpp"
#include "isa/decoder.hpp"

namespace diag::analysis
{

using namespace diag::isa;

const char *
streamKindName(StreamKind k)
{
    switch (k) {
      case StreamKind::Affine: return "affine";
      case StreamKind::Indirect: return "indirect";
      case StreamKind::PointerChase: return "pointer-chase";
      case StreamKind::Unknown: return "unknown";
    }
    return "?";
}

const char *
prefetchClassName(PrefetchClass p)
{
    switch (p) {
      case PrefetchClass::None: return "none";
      case PrefetchClass::Scalar: return "scalar";
      case PrefetchClass::Stride: return "stride";
      case PrefetchClass::Index: return "index";
    }
    return "?";
}

namespace
{

/**
 * A symbolic value: `scale*term(base) + rc_coeff*i + tid_coeff*tid +
 * offset`, where `i` is the scope's induction index (the rc lane for
 * simt regions, the iteration counter for serial loops) and `tid` is
 * the a0 lane as the scope entered it. base 0 means no opaque part.
 * This extends memdep's SymExpr with the scale (so `slli` on a based
 * value stays linear) and the tid axis.
 */
struct SVal
{
    u32 base = 0;
    i64 scale = 1;
    i64 rc = 0;
    i64 tid = 0;
    i64 off = 0;
};

/** Provenance of one opaque term. */
struct TermMeta
{
    unsigned depth = 0; //!< loads on the derivation chain
    Addr feeder_pc = 0; //!< deepest producing load (0 = none)
    u32 parent = 0;     //!< term the derivation chain continues through
    bool invariant = true; //!< fixed across iterations of the scope
};

/** Value-numbering state over the unified lane file. */
struct SState
{
    std::array<SVal, kNumRegs> reg{};
    std::vector<TermMeta> meta{TermMeta{}}; //!< meta[0] unused
    /** (term,scale,term,scale) -> combined term, so two computations
     *  of the same two-base sum compare equal. */
    std::map<std::tuple<u32, i64, u32, i64>, u32> combined;

    u32
    newTerm(const TermMeta &m)
    {
        meta.push_back(m);
        return static_cast<u32>(meta.size() - 1);
    }

    /** Seed every lane with a distinct invariant term (x0 stays 0).
     *  Term ids are assigned in register order, so two states seeded
     *  back to back give the same register the same term id. */
    void
    seed()
    {
        for (unsigned r = 1; r < kNumRegs; ++r)
            reg[r] = {newTerm({}), 1, 0, 0, 0};
    }

    SVal
    read(RegId r) const
    {
        if (r == kNoReg || r == kRegZero)
            return {0, 1, 0, 0, 0};
        return reg[r];
    }

    /** The value is provably the same in every iteration/thread. */
    bool
    valInvariant(const SVal &v) const
    {
        return v.rc == 0 && v.tid == 0 &&
               (v.base == 0 || meta[v.base].invariant);
    }

    unsigned
    depthOf(const SVal &v) const
    {
        return v.base ? meta[v.base].depth : 0;
    }

    Addr
    feederOf(const SVal &v) const
    {
        return v.base ? meta[v.base].feeder_pc : 0;
    }

    /** Result of an operation outside the address algebra. */
    SVal
    opaque(const SVal &a, const SVal &b)
    {
        TermMeta m;
        const unsigned da = depthOf(a);
        const unsigned db = depthOf(b);
        m.depth = std::max(da, db);
        m.feeder_pc = da >= db ? feederOf(a) : feederOf(b);
        m.parent = da >= db ? a.base : b.base;
        m.invariant = valInvariant(a) && valInvariant(b);
        return {newTerm(m), 1, 0, 0, 0};
    }

    /** Combined term for `sa*term(ta) + sb*term(tb)` (ADD of two
     *  based values), memoized for equality of repeated sums. */
    u32
    combine(u32 ta, i64 sa, u32 tb, i64 sb)
    {
        if (ta > tb || (ta == tb && sa > sb)) {
            std::swap(ta, tb);
            std::swap(sa, sb);
        }
        const auto key = std::make_tuple(ta, sa, tb, sb);
        const auto it = combined.find(key);
        if (it != combined.end())
            return it->second;
        TermMeta m;
        const TermMeta &ma = meta[ta];
        const TermMeta &mb = meta[tb];
        m.depth = std::max(ma.depth, mb.depth);
        m.feeder_pc = ma.depth >= mb.depth ? ma.feeder_pc : mb.feeder_pc;
        m.parent = ma.depth >= mb.depth ? ta : tb;
        m.invariant = ma.invariant && mb.invariant;
        const u32 t = newTerm(m);
        combined.emplace(key, t);
        return t;
    }

    /** Bottom of the derivation chain (a seed term). */
    u32
    chainRoot(u32 t) const
    {
        while (t != 0 && meta[t].parent != 0)
            t = meta[t].parent;
        return t;
    }
};

/**
 * Transfer function for non-load instructions: the address-forming
 * subset stays linear, everything else mints an opaque term that
 * remembers depth/feeder/invariance.
 */
void
evalNonLoad(SState &st, Addr pc, const DecodedInst &di)
{
    if (!di.writesReg())
        return;
    const SVal a = st.read(di.rs1);
    const SVal b = st.read(di.rs2);
    SVal out;
    switch (di.op) {
      case Op::LUI:
        out = {0, 1, 0, 0, static_cast<i64>(static_cast<u32>(di.imm))};
        break;
      case Op::AUIPC:
        out = {0, 1, 0, 0,
               static_cast<i64>(pc + static_cast<u32>(di.imm))};
        break;
      case Op::ADDI:
        out = a;
        out.off += di.imm;
        break;
      case Op::ADD:
        if (a.base == 0)
            out = {b.base, b.scale, a.rc + b.rc, a.tid + b.tid,
                   a.off + b.off};
        else if (b.base == 0)
            out = {a.base, a.scale, a.rc + b.rc, a.tid + b.tid,
                   a.off + b.off};
        else
            out = {st.combine(a.base, a.scale, b.base, b.scale), 1,
                   a.rc + b.rc, a.tid + b.tid, a.off + b.off};
        break;
      case Op::SUB:
        if (b.base == 0) {
            out = a;
            out.rc -= b.rc;
            out.tid -= b.tid;
            out.off -= b.off;
        } else if (a.base == b.base && a.scale == b.scale) {
            out = {0, 1, a.rc - b.rc, a.tid - b.tid, a.off - b.off};
        } else {
            out = st.opaque(a, b);
        }
        break;
      case Op::SLLI:
        if (di.imm >= 0 && di.imm < 32)
            out = {a.base, a.scale << di.imm, a.rc << di.imm,
                   a.tid << di.imm, a.off << di.imm};
        else
            out = st.opaque(a, b);
        break;
      default:
        out = st.opaque(a, b);
        break;
    }
    st.reg[di.rd] = out;
}

/** One memory access with its reconstructed address value. */
struct RawAccess
{
    Addr pc = 0;
    SVal ea;
    u8 size = 0;
    bool is_store = false;
};

/**
 * Walk [first, last], collecting accesses and updating @p st. A load
 * mints a non-invariant term one level deeper than its address, with
 * the load pc as feeder — the backbone of indirect/chase detection.
 */
std::vector<RawAccess>
walkRange(SState &st, const Program &prog, Addr first, Addr last)
{
    std::vector<RawAccess> body;
    for (Addr pc = first; pc <= last; pc += 4) {
        const DecodedInst di = decode(prog.word(pc));
        if (di.isMem()) {
            RawAccess ra;
            ra.pc = pc;
            ra.ea = st.read(di.rs1);
            ra.ea.off += di.imm;
            ra.size = di.info().memBytes;
            ra.is_store = di.isStore();
            body.push_back(ra);
            if (di.isLoad() && di.writesReg()) {
                TermMeta m;
                m.depth = st.depthOf(ra.ea) + 1;
                m.feeder_pc = pc;
                m.parent = ra.ea.base;
                m.invariant = false;
                st.reg[di.rd] = {st.newTerm(m), 1, 0, 0, 0};
            }
            continue;
        }
        evalNonLoad(st, pc, di);
    }
    return body;
}

/**
 * Classify one access's address value against the lattice. @p kinds
 * maps already-classified load pcs (program order guarantees a feeder
 * load precedes its consumers); @p chase_seeds holds seed terms of
 * loop-carried chase pointers (empty for simt regions, whose scan
 * forbids loop-carried register dependences).
 */
StreamKind
classify(const SState &st, const SVal &ea,
         const std::set<u32> &chase_seeds,
         const std::map<Addr, StreamKind> &kinds, Addr *feeder_out)
{
    if (ea.base != 0 && chase_seeds.count(st.chainRoot(ea.base))) {
        *feeder_out = st.feederOf(ea);
        return StreamKind::PointerChase;
    }
    const unsigned d = st.depthOf(ea);
    if (ea.base == 0 || (d == 0 && st.meta[ea.base].invariant))
        return StreamKind::Affine;
    *feeder_out = st.feederOf(ea);
    if (d >= 2)
        return StreamKind::PointerChase;
    if (d == 1) {
        const auto it = kinds.find(st.feederOf(ea));
        if (it != kinds.end() && it->second == StreamKind::Affine)
            return StreamKind::Indirect;
    }
    return StreamKind::Unknown;
}

/**
 * Build the full StreamInfo for @p ra. @p step_known/@p step describe
 * the scope's induction advance (the proven simt step, or 1 for a
 * serial loop's iteration counter); @p by_pc holds the streams built
 * so far (feeder lookup for the Index prefetch class).
 */
StreamInfo
makeStream(const SState &st, const RawAccess &ra, bool step_known,
           i64 step, bool trips_known, u64 trips,
           const LintOptions &opt, const std::set<u32> &chase_seeds,
           const std::map<Addr, StreamKind> &kinds,
           const std::map<Addr, StreamInfo> &by_pc)
{
    StreamInfo si;
    si.pc = ra.pc;
    si.is_store = ra.is_store;
    si.size = ra.size;
    si.kind = classify(st, ra.ea, chase_seeds, kinds, &si.feeder_pc);
    if (si.kind != StreamKind::Affine) {
        if (si.kind == StreamKind::Indirect) {
            const auto it = by_pc.find(si.feeder_pc);
            if (it != by_pc.end() && it->second.stride_known &&
                it->second.stride != 0)
                si.prefetch = PrefetchClass::Index;
        }
        return si;
    }

    si.rc_coeff = ra.ea.rc;
    si.tid_coeff = ra.ea.tid;
    si.stride_known = ra.ea.rc == 0 || step_known;
    si.stride = si.stride_known ? ra.ea.rc * step : 0;
    if (!si.stride_known)
        return si;
    si.prefetch =
        si.stride == 0 ? PrefetchClass::Scalar : PrefetchClass::Stride;

    // Bank verdicts under the cache model's word-interleaved mapping
    // `bank = (addr/8) & (banks-1)`: accesses k apart in the stream
    // land on word indices differing by k*s/8 or k*s/8+1 (the latter
    // only when k*s % 8 != 0, depending on the base alignment). A
    // conflict needs a *different* word on the *same* bank while both
    // accesses hold the bank; the pipeline launches accesses of one
    // stream at least a cycle apart and a bank is held for
    // l1d_bank_occupancy cycles, so only distances k < occupancy + 1
    // can overlap in flight. The stream is proven conflict-free when
    // no distance in that window yields a word delta that is a
    // nonzero multiple of the bank count — for any base alignment.
    // (The bank pattern of k*s repeats with period ≤ 8*banks, so two
    // full periods bound the scan for any occupancy.)
    const u64 banks = opt.timing.l1d_banks;
    const u64 s =
        static_cast<u64>(si.stride < 0 ? -si.stride : si.stride);
    if (banks > 0) {
        if (s == 0) {
            si.bank_conflict_free = true;
        } else {
            const u64 window = std::min<u64>(
                std::max<Cycle>(1, opt.timing.l1d_bank_occupancy),
                16 * banks);
            bool conflict = false;
            for (u64 k = 1; k <= window && !conflict; ++k) {
                const u64 d0 = k * s / 8;
                const u64 rem = k * s % 8;
                conflict = (d0 > 0 && d0 % banks == 0) ||
                           (rem != 0 && (d0 + 1) % banks == 0);
            }
            si.bank_conflict_free = !conflict;
            si.bank_serialized =
                s % 8 == 0 && s / 8 > 0 && (s / 8) % banks == 0;
        }
    }

    // Footprint / reuse estimates need the trip count too.
    if (trips_known && trips > 0) {
        const u64 line = std::max(1u, opt.timing.l1d_line_bytes);
        if (s == 0) {
            si.footprint_bytes = ra.size;
            si.lines_touched = 1;
        } else {
            const u64 span = s * (trips - 1) + ra.size;
            si.footprint_bytes = std::min(trips * ra.size, span);
            si.lines_touched = span / line + 1;
        }
        si.reuse_per_line = static_cast<double>(trips) /
                            static_cast<double>(si.lines_touched);
        si.footprint_known = true;
    }
    return si;
}

/** Per-stream diagnostics shared by the region and loop scopes. */
void
emitStreamDiags(const StreamInfo &si, bool in_region,
                const LintOptions &opt, LintResult &report)
{
    switch (si.kind) {
      case StreamKind::PointerChase:
        report.add(Severity::Note, si.pc, "stream",
                   detail::vformat(
                       "pointer-chase stream via the load at 0x%08x: "
                       "each address depends on the previous load's "
                       "data, so no prefetcher can run ahead",
                       si.feeder_pc));
        break;
      case StreamKind::Indirect:
        report.add(Severity::Note, si.pc, "stream",
                   detail::vformat(
                       "indirect stream: %s indexed by the affine "
                       "load stream at 0x%08x%s",
                       si.is_store ? "scatter" : "gather",
                       si.feeder_pc,
                       si.prefetch == PrefetchClass::Index
                           ? " (index-prefetchable)"
                           : ""));
        break;
      case StreamKind::Unknown:
        if (in_region)
            report.add(Severity::Note, si.pc, "stream",
                       "unclassified address stream: the base value "
                       "is computed in-region by an operation outside "
                       "the address algebra");
        break;
      case StreamKind::Affine:
        if (si.bank_serialized)
            report.add(
                Severity::Warning, si.pc, "stream",
                detail::vformat(
                    "affine stream with stride %lld lands every "
                    "access on a single one of %u L1D banks "
                    "(8-byte interleave): concurrent accesses "
                    "serialize at %llu cycle(s) of bank occupancy "
                    "each",
                    static_cast<long long>(si.stride),
                    opt.timing.l1d_banks,
                    static_cast<unsigned long long>(
                        opt.timing.l1d_bank_occupancy)));
        break;
    }
}

/** Analyze one pipelinable simt region. */
void
analyzeRegion(const Program &prog, const LintOptions &opt,
              Addr simt_s_pc, const SimtScan &scan,
              const AbsIntResult &ai, StreamResult &out,
              LintResult &report)
{
    RegionStreams rs;
    rs.simt_s_pc = simt_s_pc;
    rs.simt_e_pc = scan.simt_e_pc;

    // Resolve simt_s operands in the abstract entry state. Values are
    // signed 32-bit by the region's do-while semantics.
    i64 rc0 = 0;
    i64 end = 0;
    bool rc0_known = false;
    bool end_known = false;
    const auto ae = ai.simt_entry.find(simt_s_pc);
    if (ae != ai.simt_entry.end()) {
        const auto cst = [&](RegId r, i64 *v) {
            if (r == kRegZero) {
                *v = 0;
                return true;
            }
            if (r == kNoReg)
                return false;
            const AbsVal &av = ae->second[r];
            if (!av.isConst())
                return false;
            *v = static_cast<i64>(
                static_cast<i32>(av.constVal()));
            return true;
        };
        rs.step_known = cst(scan.fields.rStep, &rs.step);
        rc0_known = cst(scan.fields.rc, &rc0);
        end_known = cst(scan.fields.rEnd, &end);
    }
    if (rs.step_known && rc0_known && end_known) {
        // Trip count with do-while semantics, mirroring
        // Ring::runSimtPipeline (including the 2^20 cap): computed in
        // closed form, since rc0/step/end are known constants. The
        // mirror must only fall back to literal iteration when the
        // u32 counter wraps past the i32 range the ring's signed
        // continue-test sees — the closed form is exact otherwise.
        const u64 cap = u64{1} << 20;
        u64 trips = 0;
        if (rs.step == 0) {
            // The counter never moves: the do-while body runs once,
            // then spins to the cap iff the entry test holds.
            trips = rc0 < end ? cap : 1;
        } else {
            const i64 span = rs.step > 0 ? end - rc0 : rc0 - end;
            const i64 mag = rs.step > 0 ? rs.step : -rs.step;
            const i64 need = std::max<i64>(1, (span + mag - 1) / mag);
            const u64 t = std::min<u64>(static_cast<u64>(need), cap);
            const i64 fin = rc0 + static_cast<i64>(t) * rs.step;
            if (fin >= -(i64{1} << 31) && fin < (i64{1} << 31)) {
                trips = t;
            } else {
                // Wraparound path: replay the ring's loop literally.
                u32 v = static_cast<u32>(rc0);
                const u32 stepv = static_cast<u32>(rs.step);
                for (;;) {
                    ++trips;
                    v += stepv;
                    const bool more =
                        static_cast<i32>(stepv) >= 0
                            ? static_cast<i32>(v) < static_cast<i32>(end)
                            : static_cast<i32>(v) > static_cast<i32>(end);
                    if (!more || trips >= cap)
                        break;
                }
            }
        }
        rs.trips_known = true;
        rs.trips = trips;
    }

    for (Addr pc = simt_s_pc + 4; pc < scan.simt_e_pc; pc += 4) {
        const DecodedInst di = decode(prog.word(pc));
        if (di.isBranch() || di.isJump())
            rs.straightline = false;
    }

    SState st;
    st.seed();
    // a0 is the launch frame's thread-id lane; its coefficient is the
    // region's tid*tstride axis (constant within one region entry, so
    // the per-i validation below is unaffected even if the kernel
    // repurposed the register).
    st.reg[10] = {0, 1, 0, 1, 0};
    // The loop-control lane is the region's induction variable.
    if (scan.fields.rc != kRegZero && scan.fields.rc != kNoReg)
        st.reg[scan.fields.rc] = {0, 1, 1, 0, 0};

    const std::vector<RawAccess> body =
        walkRange(st, prog, simt_s_pc + 4, scan.simt_e_pc);

    const std::set<u32> no_chase;
    std::map<Addr, StreamKind> kinds;
    std::map<Addr, StreamInfo> by_pc;
    for (const RawAccess &ra : body) {
        const StreamInfo si =
            makeStream(st, ra, rs.step_known, rs.step, rs.trips_known,
                       rs.trips, opt, no_chase, kinds, by_pc);
        kinds[ra.pc] = si.kind;
        by_pc[ra.pc] = si;
        switch (si.kind) {
          case StreamKind::Affine: ++rs.affine; break;
          case StreamKind::Indirect: ++rs.indirect; break;
          case StreamKind::PointerChase: ++rs.chase; break;
          case StreamKind::Unknown: ++rs.unknown; break;
        }
        emitStreamDiags(si, /*in_region=*/true, opt, report);
        rs.streams.push_back(si);
    }

    report.add(
        Severity::Note, simt_s_pc, "stream",
        detail::vformat(
            "stream table: %zu access(es) — %u affine, %u indirect, "
            "%u pointer-chase, %u unknown; step %s, trips %s",
            rs.streams.size(), rs.affine, rs.indirect, rs.chase,
            rs.unknown,
            rs.step_known
                ? detail::vformat("%lld",
                                  static_cast<long long>(rs.step))
                      .c_str()
                : "unproven",
            rs.trips_known
                ? detail::vformat(
                      "%llu",
                      static_cast<unsigned long long>(rs.trips))
                      .c_str()
                : "unproven"));

    out.regions.push_back(std::move(rs));
}

/**
 * Analyze one serial backward-branch loop with a straight-line body.
 * Pass 1 discovers induction registers (`r += c` per iteration) and
 * loop-carried pointer-chase recurrences (`p = load(p + c)`); pass 2
 * re-runs the numbering with induction registers seeded linear in the
 * iteration counter and classifies the accesses.
 */
void
analyzeLoop(const Cfg &cfg, const Program &prog, const LintOptions &opt,
            Addr head, Addr tail, StreamResult &out, LintResult &report)
{
    for (Addr pc = head; pc <= tail; pc += 4) {
        const auto it = cfg.insts.find(pc);
        if (it == cfg.insts.end())
            return; // undecodable body
        const DecodedInst &di = it->second;
        const bool control = di.isBranch() || di.isJump() ||
                             di.op == Op::SIMT_S || di.op == Op::SIMT_E;
        if (control && pc != tail)
            return; // only single-block do-while loops are analyzable
    }

    // Pass 1: induction / chase discovery. seed() assigns term ids in
    // register order, so pass-2 seed terms coincide with these.
    SState st1;
    st1.seed();
    std::array<u32, kNumRegs> seed_term{};
    for (unsigned r = 1; r < kNumRegs; ++r)
        seed_term[r] = st1.reg[r].base;
    walkRange(st1, prog, head, tail);

    std::array<i64, kNumRegs> delta{};
    std::array<bool, kNumRegs> induct{};
    std::array<bool, kNumRegs> varying{};
    std::set<u32> chase_seeds;
    for (unsigned r = 1; r < kNumRegs; ++r) {
        const SVal &f = st1.reg[r];
        if (f.base == seed_term[r] && f.scale == 1 && f.rc == 0 &&
            f.tid == 0) {
            if (f.off != 0) {
                induct[r] = true;
                delta[r] = f.off;
            }
        } else if (f.base != 0 && st1.meta[f.base].depth >= 1 &&
                   st1.chainRoot(f.base) == seed_term[r]) {
            // The register's next value is loaded through its own
            // previous value: a pointer-chase recurrence.
            chase_seeds.insert(seed_term[r]);
        } else {
            // Updated per iteration, but neither a constant-offset
            // induction nor a self-rooted chase: register-stride
            // steps (`add r,r,rs`), rescaling (`slli r,r,1`), loads
            // off another pointer, ... The value changes every
            // iteration in a way the algebra does not model.
            varying[r] = true;
        }
    }

    // Pass 2: classification with induction registers linear in the
    // iteration counter (stride comes out directly in bytes). A
    // varying register's seed term is poisoned non-invariant — and so
    // is a chase register's, for uses that reach an access through a
    // combined term whose chain root is the *other* operand — so
    // anything derived from either classifies Unknown rather than
    // falsely loop-invariant Affine.
    SState st;
    st.seed();
    for (unsigned r = 1; r < kNumRegs; ++r) {
        if (induct[r])
            st.reg[r].rc = delta[r];
        else if (varying[r] || chase_seeds.count(seed_term[r]))
            st.meta[st.reg[r].base].invariant = false;
    }
    const std::vector<RawAccess> body = walkRange(st, prog, head, tail);

    LoopStreams ls;
    ls.head = head;
    ls.tail = tail;
    std::map<Addr, StreamKind> kinds;
    std::map<Addr, StreamInfo> by_pc;
    for (const RawAccess &ra : body) {
        const StreamInfo si = makeStream(
            st, ra, /*step_known=*/true, /*step=*/1,
            /*trips_known=*/false, 0, opt, chase_seeds, kinds, by_pc);
        kinds[ra.pc] = si.kind;
        by_pc[ra.pc] = si;
        emitStreamDiags(si, /*in_region=*/false, opt, report);
        ls.streams.push_back(si);
    }
    if (!ls.streams.empty())
        out.loops.push_back(std::move(ls));
}

} // namespace

StreamResult
analyzeStreams(const Program &prog, const LintOptions &opt,
               LintResult &report)
{
    StreamResult out;
    const Cfg cfg = buildCfg(prog, report);
    const AbsIntResult ai = runAbsInt(cfg);

    std::vector<std::pair<Addr, Addr>> region_spans;
    if (opt.simt_enabled) {
        for (const auto &[pc, di] : cfg.insts) {
            if (di.op != Op::SIMT_S)
                continue;
            const SimtScan scan = scanSimtRegion(
                pc, prog.image, opt.line_bytes, opt.clusters_per_ring);
            if (!scan.ok())
                continue; // serializes: no pipelined streams
            region_spans.emplace_back(pc, scan.simt_e_pc);
            analyzeRegion(prog, opt, pc, scan, ai, out, report);
        }
    }
    const auto in_region = [&](Addr pc) {
        for (const auto &[lo, hi] : region_spans)
            if (pc >= lo && pc <= hi)
                return true;
        return false;
    };

    std::set<std::pair<Addr, Addr>> seen;
    for (const auto &[pc, di] : cfg.insts) {
        const bool backward =
            (di.isBranch() || di.op == Op::JAL) && di.imm < 0;
        if (!backward)
            continue;
        const Addr head = pc + static_cast<u32>(di.imm);
        if (in_region(pc) || in_region(head))
            continue;
        if (!seen.insert({head, pc}).second)
            continue;
        analyzeLoop(cfg, prog, opt, head, pc, out, report);
    }

    report.finalize();
    return out;
}

namespace
{

/** Shared per-stream line for the text table. */
std::string
streamLine(const StreamInfo &s)
{
    std::string out = detail::vformat(
        "  0x%08x %-5s %uB %-13s", s.pc, s.is_store ? "store" : "load",
        s.size, streamKindName(s.kind));
    if (s.kind == StreamKind::Affine) {
        if (s.stride_known)
            out += detail::vformat(
                " stride %lld", static_cast<long long>(s.stride));
        else
            out += detail::vformat(
                " stride %lld*step (unproven)",
                static_cast<long long>(s.rc_coeff));
        if (s.tid_coeff != 0)
            out += detail::vformat(
                " tid*%lld", static_cast<long long>(s.tid_coeff));
        if (s.footprint_known)
            out += detail::vformat(
                " footprint %lluB lines %llu reuse %.2f",
                static_cast<unsigned long long>(s.footprint_bytes),
                static_cast<unsigned long long>(s.lines_touched),
                s.reuse_per_line);
    } else if (s.feeder_pc != 0) {
        out += detail::vformat(" feeder 0x%08x", s.feeder_pc);
    }
    out += detail::vformat(" prefetch %s",
                           prefetchClassName(s.prefetch));
    if (s.bank_serialized)
        out += " bank-serialized";
    else if (s.bank_conflict_free)
        out += " bank-ok";
    else
        out += " bank-?";
    return out + "\n";
}

/** Shared per-stream JSON object. */
std::string
streamJson(const StreamInfo &s)
{
    std::string out = detail::vformat(
        "{\"pc\": \"0x%08x\", \"store\": %s, \"size\": %u, "
        "\"kind\": \"%s\", \"rc_coeff\": %lld, \"tid_coeff\": %lld, ",
        s.pc, s.is_store ? "true" : "false", s.size,
        streamKindName(s.kind), static_cast<long long>(s.rc_coeff),
        static_cast<long long>(s.tid_coeff));
    out += s.stride_known
               ? detail::vformat("\"stride\": %lld, ",
                                 static_cast<long long>(s.stride))
               : "\"stride\": null, ";
    out += s.feeder_pc != 0
               ? detail::vformat("\"feeder\": \"0x%08x\", ",
                                 s.feeder_pc)
               : "\"feeder\": null, ";
    out += s.footprint_known
               ? detail::vformat(
                     "\"footprint\": %llu, \"lines\": %llu, "
                     "\"reuse\": %.2f, ",
                     static_cast<unsigned long long>(
                         s.footprint_bytes),
                     static_cast<unsigned long long>(s.lines_touched),
                     s.reuse_per_line)
               : "\"footprint\": null, \"lines\": null, "
                 "\"reuse\": null, ";
    out += detail::vformat(
        "\"bank_conflict_free\": %s, \"bank_serialized\": %s, "
        "\"prefetch\": \"%s\"}",
        s.bank_conflict_free ? "true" : "false",
        s.bank_serialized ? "true" : "false",
        prefetchClassName(s.prefetch));
    return out;
}

} // namespace

std::string
renderStreamText(const StreamResult &r)
{
    std::string out;
    for (const RegionStreams &rg : r.regions) {
        out += detail::vformat(
            "simt region 0x%08x..0x%08x: %zu stream(s) — %u affine, "
            "%u indirect, %u pointer-chase, %u unknown; step %s, "
            "trips %s%s\n",
            rg.simt_s_pc, rg.simt_e_pc, rg.streams.size(), rg.affine,
            rg.indirect, rg.chase, rg.unknown,
            rg.step_known
                ? detail::vformat("%lld",
                                  static_cast<long long>(rg.step))
                      .c_str()
                : "unproven",
            rg.trips_known
                ? detail::vformat(
                      "%llu",
                      static_cast<unsigned long long>(rg.trips))
                      .c_str()
                : "unproven",
            rg.straightline ? ", straight-line" : "");
        for (const StreamInfo &s : rg.streams)
            out += streamLine(s);
    }
    for (const LoopStreams &lp : r.loops) {
        out += detail::vformat("loop 0x%08x..0x%08x: %zu stream(s)\n",
                               lp.head, lp.tail, lp.streams.size());
        for (const StreamInfo &s : lp.streams)
            out += streamLine(s);
    }
    if (out.empty())
        out = "no streams identified\n";
    return out;
}

std::string
renderStreamJson(const StreamResult &r)
{
    std::string out = "{\"regions\": [";
    bool first = true;
    for (const RegionStreams &rg : r.regions) {
        out += first ? "\n" : ",\n";
        first = false;
        out += detail::vformat(
            "  {\"simt_s\": \"0x%08x\", \"simt_e\": \"0x%08x\", "
            "\"straightline\": %s, ",
            rg.simt_s_pc, rg.simt_e_pc,
            rg.straightline ? "true" : "false");
        out += rg.step_known
                   ? detail::vformat("\"step\": %lld, ",
                                     static_cast<long long>(rg.step))
                   : "\"step\": null, ";
        out += rg.trips_known
                   ? detail::vformat(
                         "\"trips\": %llu, ",
                         static_cast<unsigned long long>(rg.trips))
                   : "\"trips\": null, ";
        out += detail::vformat(
            "\"affine\": %u, \"indirect\": %u, \"chase\": %u, "
            "\"unknown\": %u, \"streams\": [",
            rg.affine, rg.indirect, rg.chase, rg.unknown);
        bool sfirst = true;
        for (const StreamInfo &s : rg.streams) {
            out += sfirst ? "\n    " : ",\n    ";
            sfirst = false;
            out += streamJson(s);
        }
        out += sfirst ? "]}" : "\n  ]}";
    }
    out += first ? "], \"loops\": [" : "\n], \"loops\": [";
    first = true;
    for (const LoopStreams &lp : r.loops) {
        out += first ? "\n" : ",\n";
        first = false;
        out += detail::vformat(
            "  {\"head\": \"0x%08x\", \"tail\": \"0x%08x\", "
            "\"streams\": [",
            lp.head, lp.tail);
        bool sfirst = true;
        for (const StreamInfo &s : lp.streams) {
            out += sfirst ? "\n    " : ",\n    ";
            sfirst = false;
            out += streamJson(s);
        }
        out += sfirst ? "]}" : "\n  ]}";
    }
    out += first ? "]}\n" : "\n]}\n";
    return out;
}

} // namespace diag::analysis
