#include "analysis/verify.hpp"

#include <algorithm>

#include "analysis/simt_scan.hpp"
#include "common/log.hpp"
#include "isa/decoder.hpp"

namespace diag::analysis
{

using namespace diag::isa;

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Proven: return "proven";
      case Verdict::Refuted: return "refuted";
      case Verdict::Unknown: return "unknown";
    }
    return "?";
}

const char *
propertyName(PropertyKind k)
{
    switch (k) {
      case PropertyKind::ControlSafe: return "control-safe";
      case PropertyKind::NoDivByZero: return "no-div-by-zero";
      case PropertyKind::NoMisaligned: return "no-misaligned";
      case PropertyKind::NoOutOfBounds: return "no-out-of-bounds";
      default: break;
    }
    return "?";
}

const PropertyVerdict &
VerifyResult::prop(PropertyKind k) const
{
    return props[static_cast<size_t>(k)];
}

bool
VerifyResult::clean() const
{
    if (report.errors() > 0)
        return false;
    for (const PropertyVerdict &p : props)
        if (p.verdict == Verdict::Refuted)
            return false;
    for (const RegionVerify &r : regions)
        if (r.race == Verdict::Refuted ||
            r.deadlock == Verdict::Refuted)
            return false;
    return true;
}

namespace
{

/** The program's legal memory footprint: emitted chunks + extras. */
struct RangeMap
{
    std::vector<std::pair<u64, u64>> ranges;  //!< [lo, hi) pairs

    /** Every byte of [lo, hi) lies inside one legal range. */
    bool
    contains(u64 lo, u64 hi) const
    {
        for (const auto &[rlo, rhi] : ranges)
            if (lo >= rlo && hi <= rhi)
                return true;
        return false;
    }

    /** [lo, hi) overlaps no legal range at all. */
    bool
    disjoint(u64 lo, u64 hi) const
    {
        for (const auto &[rlo, rhi] : ranges)
            if (lo < rhi && rlo < hi)
                return false;
        return true;
    }
};

RangeMap
buildMap(const Program &prog, const VerifyOptions &opt)
{
    RangeMap map;
    for (const ProgramChunk &c : prog.chunks)
        map.ranges.emplace_back(c.base,
                                static_cast<u64>(c.base) + c.size);
    for (const auto &[base, size] : opt.extra_ranges)
        map.ranges.emplace_back(base, static_cast<u64>(base) + size);
    return map;
}

/** Accumulates per-site outcomes into one program-scope verdict. */
struct PropAcc
{
    PropertyKind kind;
    unsigned discharged = 0;
    bool unknown = false;
    bool violated = false;
    bool refuted = false;
    Addr pc = 0;
    std::string detail;

    explicit PropAcc(PropertyKind k) : kind(k) {}

    void
    noteUnknown(Addr p, std::string d)
    {
        if (!violated && !unknown) {
            pc = p;
            detail = std::move(d);
        }
        unknown = true;
    }

    void
    noteViolation(Addr p, std::string d, bool must_execute)
    {
        if (!violated) {
            pc = p;
            detail = std::move(d);
        }
        violated = true;
        refuted |= must_execute;
    }

    PropertyVerdict
    finish(std::string proof_detail) const
    {
        PropertyVerdict v;
        v.kind = kind;
        if (refuted) {
            v.verdict = Verdict::Refuted;
            v.pc = pc;
            v.detail = detail;
        } else if (violated || unknown) {
            v.verdict = Verdict::Unknown;
            v.pc = pc;
            v.detail = detail;
        } else {
            v.verdict = Verdict::Proven;
            v.detail = std::move(proof_detail);
        }
        return v;
    }
};

/** Positive remainder of @p a modulo @p m (m > 0). */
i64
posMod(i64 a, i64 m)
{
    const i64 r = a % m;
    return r < 0 ? r + m : r;
}

/** Floor division for i64. */
i64
floorDiv(i64 a, i64 b)
{
    i64 q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

/** Resolved simt_s launch parameters (signed 32-bit semantics). */
struct RegionCtx
{
    bool resolved = false;
    bool infinite = false;  //!< zero step that never meets r_end
    i64 rc0 = 0;
    i64 step = 0;
    i64 end = 0;
    u64 n = 0;  //!< executed thread count when resolved && !infinite
};

i64
signedConst(const AbsVal &v)
{
    return static_cast<i64>(static_cast<i32>(v.constVal()));
}

/**
 * Resolve rc/step/end from the abstract register file at simt_s and
 * derive the executed thread count under simt_e's do-while semantics
 * (the body always runs once; it re-runs while rc+step is short of
 * r_end in the step's direction).
 */
RegionCtx
resolveRegion(const SimtStartFields &f, const AbsRegs &entry,
              u64 max_n)
{
    auto regVal = [&](RegId r, i64 *out) {
        if (r == kNoReg || r == kRegZero) {
            *out = 0;
            return true;
        }
        if (!entry[r].isConst())
            return false;
        *out = signedConst(entry[r]);
        return true;
    };
    RegionCtx ctx;
    if (!regVal(f.rc, &ctx.rc0) || !regVal(f.rStep, &ctx.step) ||
        !regVal(f.rEnd, &ctx.end))
        return ctx;
    if (ctx.step == 0) {
        ctx.resolved = true;
        if (ctx.rc0 < ctx.end) {
            ctx.infinite = true;
        } else {
            ctx.n = 1;
        }
        return ctx;
    }
    const i64 gap =
        ctx.step > 0 ? ctx.end - ctx.rc0 : ctx.rc0 - ctx.end;
    const i64 mag = ctx.step > 0 ? ctx.step : -ctx.step;
    const i64 n = gap <= 0 ? 1 : (gap + mag - 1) / mag;
    // Reject counts whose rc excursion could wrap 32-bit arithmetic
    // mid-loop, and anything beyond the enumeration cap.
    const i64 final_rc = ctx.rc0 + n * ctx.step;
    if (static_cast<u64>(n) > max_n || final_rc > 0x7fffffffll ||
        final_rc < -0x80000000ll)
        return ctx;
    ctx.resolved = true;
    ctx.n = static_cast<u64>(n);
    return ctx;
}

/**
 * One region access lowered to an affine per-thread address map:
 * address(i) = K + d*i for thread i in [0, n), where K is either
 * absolute or relative to an unresolved base term shared with other
 * accesses of the same term.
 */
struct AffineAccess
{
    Addr pc = 0;
    bool is_store = false;
    u8 size = 0;
    u32 term = 0;       //!< 0 = absolute; else the unresolved base term
    bool lowered = false;
    i64 k = 0;          //!< address of thread 0 (absolute or relative)
    i64 d = 0;          //!< per-thread stride (rc_coeff * step)
};

/**
 * Lower @p ea against the resolved region context. The base term
 * resolves through the absint entry state when it names a register
 * (memdep seeds term r for register r, r = 1..kNumRegs-1) whose value
 * at simt_s is proven constant; otherwise the access stays relative
 * to the term.
 */
AffineAccess
lowerAccess(Addr pc, const SymExpr &ea, u8 size, bool is_store,
            const RegionCtx &ctx, const AbsRegs &entry)
{
    AffineAccess a;
    a.pc = pc;
    a.is_store = is_store;
    a.size = size;
    if (!ctx.resolved || ctx.infinite)
        return a;
    i64 base = 0;
    if (ea.base == 0) {
        a.term = 0;
    } else if (ea.base < kNumRegs &&
               entry[ea.base].isConst()) {
        a.term = 0;
        base = static_cast<i64>(
            static_cast<u64>(entry[ea.base].constVal()));
    } else {
        a.term = ea.base;
    }
    a.lowered = true;
    a.k = base + ea.offset + ea.rc_coeff * ctx.rc0;
    a.d = ea.rc_coeff * ctx.step;
    return a;
}

/** Byte ranges [a, a+za) and [b, b+zb) overlap. */
bool
bytesOverlap(i64 a, u8 za, i64 b, u8 zb)
{
    return a < b + zb && b < a + za;
}

/**
 * True iff two threads i != j in [0, n) collide: the bytes of s in
 * thread i overlap the bytes of x in thread j. Both accesses must be
 * comparable (same term). O(n) with a solved candidate window per i.
 */
bool
threadsCollide(const AffineAccess &s, const AffineAccess &x, u64 n)
{
    for (u64 i = 0; i < n; ++i) {
        const i64 si = s.k + s.d * static_cast<i64>(i);
        if (x.d == 0) {
            if (bytesOverlap(si, s.size, x.k, x.size) && n >= 2)
                return true;
            continue;
        }
        // x.k + x.d*j must land within (si - x.size, si + s.size):
        // solve both window edges for j and scan the short range.
        const i64 w_lo = si - x.size + 1;
        const i64 w_hi = si + s.size - 1;
        i64 j_a = floorDiv(w_lo - x.k, x.d);
        i64 j_b = floorDiv(w_hi - x.k, x.d) + 1;
        if (j_a > j_b)
            std::swap(j_a, j_b);
        for (i64 j = j_a; j <= j_b + 1; ++j) {
            if (j < 0 || j >= static_cast<i64>(n) ||
                j == static_cast<i64>(i))
                continue;
            if (bytesOverlap(si, s.size, x.k + x.d * j, x.size))
                return true;
        }
    }
    return false;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

VerifyResult
verifyProgram(const Program &prog, const VerifyOptions &opt)
{
    VerifyResult out;

    LintResult structural;
    const Cfg cfg = buildCfg(prog, structural);
    LintResult md_report;
    const MemDepResult md =
        checkMemDep(cfg, prog, opt.lint, md_report);
    const AbsIntResult ai = runAbsInt(cfg);
    out.aborted = !ai.converged;
    const RangeMap map = buildMap(prog, opt);

    // Pipelinable region spans: their memory sites are judged by the
    // affine per-thread path below, not the scalar per-site path.
    std::vector<std::pair<Addr, Addr>> spans;
    for (const RegionMemDep &r : md.regions)
        spans.emplace_back(r.simt_s_pc + 4, r.simt_e_pc);
    const auto inRegion = [&](Addr pc) {
        for (const auto &[lo, hi] : spans)
            if (pc >= lo && pc <= hi)
                return true;
        return false;
    };

    PropAcc control(PropertyKind::ControlSafe);
    PropAcc div0(PropertyKind::NoDivByZero);
    PropAcc align(PropertyKind::NoMisaligned);
    PropAcc bounds(PropertyKind::NoOutOfBounds);

    // ---- control safety ----
    if (structural.errors() > 0) {
        Addr first_pc = 0;
        for (const Diagnostic &d : structural.diags)
            if (d.severity == Severity::Error) {
                first_pc = d.pc;
                break;
            }
        control.noteViolation(
            first_pc,
            detail::vformat("%u structural control-flow error(s); "
                            "execution can trap or leave the image "
                            "(run diag-lint for the full list)",
                            structural.errors()),
            /*must_execute=*/false);
        out.report.add(Severity::Error, first_pc, "verify",
                       control.detail);
    } else {
        for (const BasicBlock &bb : cfg.blocks)
            if (bb.unknown_succ) {
                control.noteUnknown(
                    bb.last,
                    detail::vformat(
                        "indirect jump at 0x%08x: the target set is "
                        "not statically resolved",
                        bb.last));
            }
    }

    // ---- scalar sites: divide-by-zero, alignment, bounds ----
    for (const auto &[pc, site] : ai.sites) {
        if (site.is_div) {
            ++div0.discharged;
            if (site.divisor.excludes(0))
                continue;
            if (site.divisor.isConst() &&
                site.divisor.constVal() == 0) {
                const std::string msg = detail::vformat(
                    "proven divide-by-zero at 0x%08x: the divisor is "
                    "0 on every execution reaching it (RV32M defines "
                    "the result, but no meaningful quotient exists)",
                    pc);
                div0.noteViolation(pc, msg, site.must_execute);
                out.report.add(Severity::Error, pc, "verify", msg);
            } else {
                div0.noteUnknown(
                    pc, detail::vformat(
                            "divisor at 0x%08x not proven nonzero",
                            pc));
            }
            continue;
        }
        if (!site.is_mem || inRegion(pc))
            continue;

        // alignment
        ++align.discharged;
        if (site.mem_bytes > 1) {
            const int rem = site.addr.remainder(site.mem_bytes);
            if (rem < 0) {
                align.noteUnknown(
                    pc,
                    detail::vformat("address alignment at 0x%08x not "
                                    "statically known",
                                    pc));
            } else if (rem != 0) {
                const std::string msg = detail::vformat(
                    "proven misaligned access at 0x%08x: the address "
                    "is %d (mod %u) on every execution reaching it",
                    pc, rem, site.mem_bytes);
                align.noteViolation(pc, msg, site.must_execute);
                out.report.add(Severity::Error, pc, "verify", msg);
            }
        }

        // bounds
        ++bounds.discharged;
        const u64 flo = site.addr.lo;
        const u64 fhi = site.addr.hi + site.mem_bytes;
        if (map.contains(flo, fhi))
            continue;
        if (map.disjoint(flo, fhi)) {
            const std::string msg = detail::vformat(
                "proven out-of-bounds access at 0x%08x: "
                "[0x%08llx, 0x%08llx) lies outside the program's "
                "data map",
                pc, static_cast<unsigned long long>(flo),
                static_cast<unsigned long long>(fhi));
            bounds.noteViolation(pc, msg, site.must_execute);
            out.report.add(Severity::Error, pc, "verify", msg);
        } else {
            bounds.noteUnknown(
                pc, detail::vformat(
                        "address range at 0x%08x not proven inside "
                        "the data map",
                        pc));
        }
    }

    // ---- pipelinable regions: affine per-thread analysis ----
    for (const RegionMemDep &rd : md.regions) {
        RegionVerify rv;
        rv.simt_s_pc = rd.simt_s_pc;
        rv.simt_e_pc = rd.simt_e_pc;

        const DecodedInst start = decode(prog.word(rd.simt_s_pc));
        const SimtStartFields f = simtStartFields(start);
        const auto entry_it = ai.simt_entry.find(rd.simt_s_pc);
        static const AbsRegs kTopRegs = [] {
            AbsRegs r;
            r.fill(AbsVal::top());
            r[kRegZero] = AbsVal::constant(0);
            return r;
        }();
        const AbsRegs &entry = entry_it != ai.simt_entry.end()
                                   ? entry_it->second
                                   : kTopRegs;
        const RegionCtx ctx =
            resolveRegion(f, entry, opt.max_threads_enumerated);

        const unsigned body_insts = static_cast<unsigned>(
            (rd.simt_e_pc - rd.simt_s_pc) / 4);
        const unsigned interval =
            std::max(1u, simtStartFields(start).interval);
        rv.capacity =
            opt.lint.clusters_per_ring * (opt.lint.line_bytes / 4);

        // Deadlock freedom / token conservation. The proof needs the
        // launch triple constant and un-redefined inside the body.
        bool body_writes_ctl = false;
        for (Addr pc = rd.simt_s_pc + 4; pc < rd.simt_e_pc; pc += 4) {
            const auto it = cfg.insts.find(pc);
            if (it == cfg.insts.end())
                continue;
            const RegId rd_reg = it->second.rd;
            if (rd_reg != kNoReg &&
                (rd_reg == f.rc || rd_reg == f.rStep ||
                 rd_reg == f.rEnd)) {
                body_writes_ctl = true;
                break;
            }
        }
        if (body_writes_ctl) {
            rv.deadlock = Verdict::Unknown;
            rv.deadlock_detail =
                "the body redefines a simt control register";
        } else if (!ctx.resolved) {
            rv.deadlock = Verdict::Unknown;
            rv.deadlock_detail = "rc/r_step/r_end not resolved to "
                                 "constants at simt_s";
        } else if (ctx.infinite) {
            rv.deadlock = Verdict::Refuted;
            rv.deadlock_detail = detail::vformat(
                "proven livelock: step is 0 with rc (%lld) < r_end "
                "(%lld), so the simt_e at 0x%08x redirects forever",
                static_cast<long long>(ctx.rc0),
                static_cast<long long>(ctx.end), rd.simt_e_pc);
            out.report.add(
                Severity::Error, rd.simt_s_pc, "verify",
                detail::vformat("simt region at 0x%08x: %s",
                                rd.simt_s_pc,
                                rv.deadlock_detail.c_str()));
        } else {
            rv.deadlock = Verdict::Proven;
            rv.threads = ctx.n;
            rv.inflight_bound = static_cast<unsigned>(std::min<u64>(
                ctx.n, body_insts / interval + 1));
            rv.deadlock_detail = detail::vformat(
                "%llu thread(s) launch and retire (token "
                "conservation); <= %u in flight vs lane-buffer "
                "capacity %u",
                static_cast<unsigned long long>(ctx.n),
                rv.inflight_bound, rv.capacity);
            out.report.add(
                Severity::Note, rd.simt_s_pc, "verify",
                detail::vformat(
                    "simt region at 0x%08x: deadlock-freedom proven: "
                    "%s",
                    rd.simt_s_pc, rv.deadlock_detail.c_str()));
        }

        // Race freedom.
        if (rd.carried_race) {
            rv.race = Verdict::Refuted;
            rv.race_detail =
                "definite cross-iteration store-to-load race "
                "(see the memdep error)";
            out.report.add(
                Severity::Error, rd.simt_s_pc, "verify",
                detail::vformat(
                    "proven cross-thread race in the simt region at "
                    "0x%08x: a store and a load hit the same fixed "
                    "address in different pipelined threads",
                    rd.simt_s_pc));
        } else if (!ctx.resolved || ctx.infinite) {
            rv.race = Verdict::Unknown;
            rv.race_detail = "thread count / step not statically "
                             "resolved";
        } else if (ctx.n <= 1) {
            rv.race = Verdict::Proven;
            rv.race_detail = "single thread: no cross-thread "
                             "interleaving";
        } else {
            std::vector<AffineAccess> accs;
            auto memBytesAt = [&](Addr pc) -> u8 {
                const auto it = cfg.insts.find(pc);
                return it == cfg.insts.end()
                           ? 4
                           : it->second.info().memBytes;
            };
            for (const StoreRef &s : rd.stores)
                accs.push_back(lowerAccess(s.pc, s.ea,
                                           memBytesAt(s.pc), true,
                                           ctx, entry));
            for (const LoadDep &l : rd.loads)
                accs.push_back(lowerAccess(l.pc, l.ea,
                                           memBytesAt(l.pc), false,
                                           ctx, entry));
            bool unknown_pair = false;
            Addr race_store = 0, race_access = 0;
            bool definite_race = false;
            for (const AffineAccess &s : accs) {
                if (!s.is_store)
                    continue;
                for (const AffineAccess &x : accs) {
                    if (x.is_store && x.pc < s.pc)
                        continue;  // each store pair once
                    if (!s.lowered || !x.lowered ||
                        s.term != x.term) {
                        unknown_pair = true;
                        continue;
                    }
                    if (!threadsCollide(s, x, ctx.n)) {
                        ++rv.pairs_proven;
                        continue;
                    }
                    if (!x.is_store) {
                        // A store in one thread reaches a load in
                        // another: definite nondeterminism.
                        definite_race = true;
                        race_store = s.pc;
                        race_access = x.pc;
                    } else {
                        // Colliding stores: racy only if the stored
                        // values can differ, which we do not track.
                        unknown_pair = true;
                    }
                }
            }
            if (definite_race) {
                rv.race = Verdict::Refuted;
                rv.race_detail = detail::vformat(
                    "proven cross-thread race: the store at 0x%08x "
                    "and the load at 0x%08x collide in different "
                    "threads",
                    race_store, race_access);
                out.report.add(
                    Severity::Error, race_access, "verify",
                    detail::vformat(
                        "proven cross-thread race in the simt region "
                        "at 0x%08x: the store at 0x%08x and this "
                        "load touch the same bytes in different "
                        "pipelined threads; the value read depends "
                        "on thread timing",
                        rd.simt_s_pc, race_store));
            } else if (unknown_pair) {
                rv.race = Verdict::Unknown;
                rv.race_detail = "an access pair could not be "
                                 "compared statically";
            } else {
                rv.race = Verdict::Proven;
                rv.race_detail = detail::vformat(
                    "%u access pair(s) proven disjoint across %llu "
                    "threads",
                    rv.pairs_proven,
                    static_cast<unsigned long long>(ctx.n));
                out.report.add(
                    Severity::Note, rd.simt_s_pc, "verify",
                    detail::vformat(
                        "simt region at 0x%08x: cross-thread race "
                        "freedom proven: %s",
                        rd.simt_s_pc, rv.race_detail.c_str()));
            }

            // Affine in-bounds / alignment for the region's accesses.
            for (const AffineAccess &a : accs) {
                if (!a.lowered || a.term != 0)
                    continue;
                ++align.discharged;
                ++bounds.discharged;
                const bool must =
                    ai.sites.count(a.pc) != 0 &&
                    ai.sites.at(a.pc).must_execute;
                if (a.size > 1) {
                    const i64 k_rem = posMod(a.k, a.size);
                    const i64 d_rem = posMod(a.d, a.size);
                    if (d_rem == 0 && k_rem != 0) {
                        const std::string msg = detail::vformat(
                            "proven misaligned access at 0x%08x: "
                            "every thread's address is %lld (mod "
                            "%u)",
                            a.pc, static_cast<long long>(k_rem),
                            a.size);
                        align.noteViolation(a.pc, msg, must);
                        out.report.add(Severity::Error, a.pc,
                                       "verify", msg);
                    } else if (d_rem != 0) {
                        align.noteUnknown(
                            a.pc,
                            detail::vformat(
                                "per-thread stride at 0x%08x not a "
                                "multiple of the access size",
                                a.pc));
                    }
                }
                const i64 first = a.k;
                const i64 last =
                    a.k + a.d * static_cast<i64>(ctx.n - 1);
                const i64 f_lo = std::min(first, last);
                const i64 f_hi = std::max(first, last) + a.size;
                if (f_lo < 0 || f_hi > 0x100000000ll) {
                    bounds.noteUnknown(
                        a.pc, detail::vformat("thread address range "
                                              "at 0x%08x overflows "
                                              "32 bits",
                                              a.pc));
                } else if (map.contains(static_cast<u64>(f_lo),
                                        static_cast<u64>(f_hi))) {
                    // in bounds
                } else if (map.disjoint(static_cast<u64>(f_lo),
                                        static_cast<u64>(f_hi))) {
                    const std::string msg = detail::vformat(
                        "proven out-of-bounds access at 0x%08x: the "
                        "thread address range [0x%08llx, 0x%08llx) "
                        "lies outside the program's data map",
                        a.pc, static_cast<unsigned long long>(f_lo),
                        static_cast<unsigned long long>(f_hi));
                    bounds.noteViolation(a.pc, msg, must);
                    out.report.add(Severity::Error, a.pc, "verify",
                                   msg);
                } else {
                    bounds.noteUnknown(
                        a.pc, detail::vformat(
                                  "thread address range at 0x%08x "
                                  "not proven inside the data map",
                                  a.pc));
                }
            }
        }
        if (rv.race != Verdict::Proven && rv.race != Verdict::Refuted)
            // Unlowered region accesses were never bounds-checked.
            for (const StoreRef &s : rd.stores)
                bounds.noteUnknown(
                    s.pc, detail::vformat("region access at 0x%08x "
                                          "not statically lowered",
                                          s.pc));

        out.regions.push_back(std::move(rv));
    }
    std::sort(out.regions.begin(), out.regions.end(),
              [](const RegionVerify &a, const RegionVerify &b) {
                  return a.simt_s_pc < b.simt_s_pc;
              });

    if (out.aborted) {
        const char *why = "abstract interpretation hit its iteration "
                          "cap; values degraded to top";
        control.noteUnknown(0, why);
        div0.noteUnknown(0, why);
        align.noteUnknown(0, why);
        bounds.noteUnknown(0, why);
    }

    out.props.push_back(control.finish(
        "every reachable control transfer targets decoded code in "
        "the image"));
    out.props.push_back(div0.finish(detail::vformat(
        "%u divide site(s) discharged: divisor proven nonzero",
        div0.discharged)));
    out.props.push_back(align.finish(detail::vformat(
        "%u access(es) discharged: address alignment proven",
        align.discharged)));
    out.props.push_back(bounds.finish(detail::vformat(
        "%u access(es) discharged: footprint inside the data map",
        bounds.discharged)));
    out.report.finalize();
    return out;
}

std::string
renderVerifyText(const VerifyResult &r)
{
    std::string out;
    for (const PropertyVerdict &p : r.props) {
        out += detail::vformat("property %-16s %s",
                               propertyName(p.kind),
                               verdictName(p.verdict));
        if (!p.detail.empty())
            out += " — " + p.detail;
        out += "\n";
    }
    for (const RegionVerify &v : r.regions) {
        out += detail::vformat(
            "region 0x%08x..0x%08x: race-freedom %s (%s); "
            "deadlock-freedom %s (%s)\n",
            v.simt_s_pc, v.simt_e_pc, verdictName(v.race),
            v.race_detail.c_str(), verdictName(v.deadlock),
            v.deadlock_detail.c_str());
    }
    out += renderText(r.report);
    return out;
}

std::string
renderVerifyJson(const VerifyResult &r)
{
    std::string out = "{\n\"properties\": {";
    bool first = true;
    for (const PropertyVerdict &p : r.props) {
        if (!first)
            out += ",";
        first = false;
        out += detail::vformat(
            "\n  \"%s\": {\"verdict\": \"%s\", \"pc\": %u, "
            "\"detail\": \"%s\"}",
            propertyName(p.kind), verdictName(p.verdict), p.pc,
            jsonEscape(p.detail).c_str());
    }
    out += "\n},\n\"regions\": [";
    first = true;
    for (const RegionVerify &v : r.regions) {
        if (!first)
            out += ",";
        first = false;
        out += detail::vformat(
            "\n  {\"simt_s\": %u, \"simt_e\": %u, \"race\": \"%s\", "
            "\"race_detail\": \"%s\", \"deadlock\": \"%s\", "
            "\"deadlock_detail\": \"%s\", \"threads\": %llu, "
            "\"inflight_bound\": %u, \"capacity\": %u, "
            "\"pairs_proven\": %u}",
            v.simt_s_pc, v.simt_e_pc, verdictName(v.race),
            jsonEscape(v.race_detail).c_str(),
            verdictName(v.deadlock),
            jsonEscape(v.deadlock_detail).c_str(),
            static_cast<unsigned long long>(v.threads),
            v.inflight_bound, v.capacity, v.pairs_proven);
    }
    out += detail::vformat("\n],\n\"aborted\": %s,\n\"findings\": %s\n}",
                           r.aborted ? "true" : "false",
                           renderJson(r.report).c_str());
    return out;
}

} // namespace diag::analysis
