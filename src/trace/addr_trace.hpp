/**
 * @file
 * Lightweight per-run address recorder for the stream-analysis
 * differential validator (`harness::validateStream`, DESIGN.md §14).
 *
 * Unlike the event Tracer's RingBufferSink — which drops oldest events
 * under pressure — validation needs every address of every region in
 * order, so this recorder is its own lossless structure, bounded by a
 * generous per-instruction cap (overflow keeps counting but stops
 * storing, and the validator checks only the stored prefix).
 *
 * Hook contract (same as trace::Tracer, DESIGN.md §11): the engine
 * holds a nullable pointer and every hook costs one null check when
 * detached; hooks observe computed values only and never feed back
 * into Cycle arithmetic, so a recorded run retires on exactly the
 * cycles of an unrecorded one. The recorder is unsynchronized: it must
 * stay confined to the host worker that owns the processor
 * (RunSpec::record_addrs creates it inside that worker).
 */
#ifndef DIAG_TRACE_ADDR_TRACE_HPP
#define DIAG_TRACE_ADDR_TRACE_HPP

#include <map>
#include <vector>

#include "common/types.hpp"

namespace diag::trace
{

/** Records per-instruction address sequences inside simt regions,
 *  plus serial accesses and loop-back branches outside them (the
 *  serial-loop half of the stream validator). */
class AddrTrace
{
  public:
    /** Stored addresses per memory pc (beyond this, only counted). */
    static constexpr u64 kMaxPerPc = u64{1} << 16;

    /** Stored loop-back events (beyond this, only counted). */
    static constexpr u64 kMaxLoopBacks = u64{1} << 22;

    /** One pipelined entry of one region: the launch parameters the
     *  ring computed plus every address each memory pc issued, in
     *  thread order (the pipeline launches threads sequentially). */
    struct Region
    {
        Addr simt_s_pc = 0;
        u32 rc0 = 0;
        u32 step = 0;
        u64 trips = 0;
        std::map<Addr, std::vector<u32>> addrs; //!< stored prefix
        std::map<Addr, u64> counts;             //!< true totals
    };

    std::vector<Region> regions;

    /**
     * Serially executed accesses (outside any pipelined region), per
     * memory pc: (sequence number, effective address) in execution
     * order. Loop-back events draw from the same sequence counter, so
     * the validator can split a pc's sequence into loop entries: two
     * consecutive executions belong to the same entry iff the loop's
     * backward branch was taken between them.
     */
    std::map<Addr, std::vector<std::pair<u64, u32>>> serial_addrs;
    std::map<Addr, u64> serial_counts; //!< true totals per pc
    /** Taken backward branches in serial flow: (seq, branch pc). */
    std::vector<std::pair<u64, Addr>> loop_backs;
    u64 loop_back_count = 0; //!< true total

    void
    regionEnter(Addr simt_s_pc, u32 rc0, u32 step, u64 trips)
    {
        Region r;
        r.simt_s_pc = simt_s_pc;
        r.rc0 = rc0;
        r.step = step;
        r.trips = trips;
        regions.push_back(std::move(r));
        open_ = true;
    }

    void regionExit() { open_ = false; }

    /** Record one executed access (@p pc the instruction, @p ea the
     *  effective address). Inside a region it lands in the open entry
     *  record; outside, in the serial per-pc log. */
    void
    access(Addr pc, Addr ea)
    {
        if (open_) {
            Region &r = regions.back();
            if (r.counts[pc]++ < kMaxPerPc)
                r.addrs[pc].push_back(ea);
            return;
        }
        const u64 seq = seq_++;
        if (serial_counts[pc]++ < kMaxPerPc)
            serial_addrs[pc].emplace_back(seq, ea);
    }

    /** Record a taken backward branch/jump in serial flow (no-op
     *  inside a pipelined region, whose iterations the Region record
     *  already delimits). */
    void
    loopBack(Addr pc)
    {
        if (open_)
            return;
        const u64 seq = seq_++;
        if (loop_back_count++ < kMaxLoopBacks)
            loop_backs.emplace_back(seq, pc);
    }

  private:
    bool open_ = false; //!< between regionEnter and regionExit
    u64 seq_ = 0;       //!< shared serial event order
};

} // namespace diag::trace

#endif // DIAG_TRACE_ADDR_TRACE_HPP
