/**
 * @file
 * Lightweight per-run address recorder for the stream-analysis
 * differential validator (`harness::validateStream`, DESIGN.md §14).
 *
 * Unlike the event Tracer's RingBufferSink — which drops oldest events
 * under pressure — validation needs every address of every region in
 * order, so this recorder is its own lossless structure, bounded by a
 * generous per-instruction cap (overflow keeps counting but stops
 * storing, and the validator checks only the stored prefix).
 *
 * Hook contract (same as trace::Tracer, DESIGN.md §11): the engine
 * holds a nullable pointer and every hook costs one null check when
 * detached; hooks observe computed values only and never feed back
 * into Cycle arithmetic, so a recorded run retires on exactly the
 * cycles of an unrecorded one. The recorder is unsynchronized: it must
 * stay confined to the host worker that owns the processor
 * (RunSpec::record_addrs creates it inside that worker).
 */
#ifndef DIAG_TRACE_ADDR_TRACE_HPP
#define DIAG_TRACE_ADDR_TRACE_HPP

#include <map>
#include <vector>

#include "common/types.hpp"

namespace diag::trace
{

/** Records per-instruction address sequences inside simt regions. */
class AddrTrace
{
  public:
    /** Stored addresses per memory pc (beyond this, only counted). */
    static constexpr u64 kMaxPerPc = u64{1} << 16;

    /** One pipelined entry of one region: the launch parameters the
     *  ring computed plus every address each memory pc issued, in
     *  thread order (the pipeline launches threads sequentially). */
    struct Region
    {
        Addr simt_s_pc = 0;
        u32 rc0 = 0;
        u32 step = 0;
        u64 trips = 0;
        std::map<Addr, std::vector<u32>> addrs; //!< stored prefix
        std::map<Addr, u64> counts;             //!< true totals
    };

    std::vector<Region> regions;

    void
    regionEnter(Addr simt_s_pc, u32 rc0, u32 step, u64 trips)
    {
        Region r;
        r.simt_s_pc = simt_s_pc;
        r.rc0 = rc0;
        r.step = step;
        r.trips = trips;
        regions.push_back(std::move(r));
        open_ = true;
    }

    void regionExit() { open_ = false; }

    /** Record one executed access (@p pc the instruction, @p ea the
     *  effective address). No-op outside a region. */
    void
    access(Addr pc, Addr ea)
    {
        if (!open_)
            return;
        Region &r = regions.back();
        if (r.counts[pc]++ < kMaxPerPc)
            r.addrs[pc].push_back(ea);
    }

  private:
    bool open_ = false; //!< between regionEnter and regionExit
};

} // namespace diag::trace

#endif // DIAG_TRACE_ADDR_TRACE_HPP
