#include "trace/events.hpp"

namespace diag::trace
{

namespace
{

const char *const kNames[kNumEventKinds] = {
    "activation",   "lane-write",    "pc-redirect",  "reuse-hit",
    "simt-stage",   "lsu-queue",     "memlane-hit",  "memlane-evict",
    "bank-conflict", "checkpoint",   "rollback",     "region-enter",
    "region-exit",  "thread",
};

} // namespace

const char *
eventName(EventKind k)
{
    const auto i = static_cast<unsigned>(k);
    return i < kNumEventKinds ? kNames[i] : "unknown";
}

bool
parseEventMask(const std::string &list, u32 &mask, std::string &bad)
{
    u32 out = 0;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string tok = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        if (tok == "all") {
            out |= kAllEvents;
            continue;
        }
        if (tok == "default") {
            out |= kDefaultEvents;
            continue;
        }
        bool found = false;
        for (unsigned i = 0; i < kNumEventKinds; ++i) {
            if (tok == kNames[i]) {
                out |= u32{1} << i;
                found = true;
                break;
            }
        }
        if (!found) {
            bad = tok;
            return false;
        }
    }
    mask = out;
    return true;
}

} // namespace diag::trace
