/**
 * @file
 * Tracer: the always-compiled, off-by-default observation layer. The
 * execution engines hold a nullable `Tracer *`; every hook on the hot
 * path costs exactly one null check when tracing is off (the same
 * pattern as the fault controller). When on, a hook filters by event
 * mask, records into the attached sink, and feeds the time-series
 * metrics accumulator — it NEVER changes any Cycle computation, so an
 * attached tracer is architecturally invisible (the determinism tests
 * assert counter-level cycle equality with tracing on vs off).
 *
 * Concurrency contract: a Tracer is unsynchronized, like the StatGroup
 * it observes alongside; it must stay confined to the host worker that
 * owns its simulator instance (DESIGN.md §10, §11). Parallel drivers
 * create one tracer per run, inside the owning task.
 */
#ifndef DIAG_TRACE_TRACER_HPP
#define DIAG_TRACE_TRACER_HPP

#include <memory>
#include <vector>

#include "trace/sink.hpp"

namespace diag::trace
{

/** What to trace and how finely to sample the time series. */
struct TraceConfig
{
    u32 event_mask = kDefaultEvents;  //!< EventKind bit set
    /** Time-series bucket width in cycles; 0 disables sampling. */
    u64 metrics_stride = 0;
    /** Ring-buffer capacity in events (oldest dropped on overflow). */
    size_t buffer_events = size_t{1} << 20;
};

/** One time-series bucket of stride cycles. */
struct MetricsSample
{
    Cycle cycle = 0;           //!< bucket start cycle
    double retired = 0;        //!< instructions retired in the bucket
    double cluster_busy = 0;   //!< summed cluster-active cycles
    double lane_writes = 0;    //!< register-lane writes
    Addr region = 0;           //!< simt region live here (0 = serial)
};

/** Bucketed counters accumulated while tracing. */
class MetricsSeries
{
  public:
    explicit MetricsSeries(u64 stride) : stride_(stride) {}

    u64 stride() const { return stride_; }
    bool enabled() const { return stride_ != 0; }

    /** Credit @p n retired instructions to the bucket of @p at. */
    void
    addRetired(Cycle at, double n)
    {
        if (MetricsSample *s = bucket(at))
            s->retired += n;
    }

    /** Spread one busy unit over [start, end) across buckets. */
    void
    addBusy(Cycle start, Cycle end)
    {
        if (!enabled() || end <= start)
            return;
        for (Cycle c = start - start % stride_; c < end; c += stride_) {
            MetricsSample *s = bucket(c);
            if (!s)
                return;
            const Cycle lo = c < start ? start : c;
            const Cycle hi = end < c + stride_ ? end : c + stride_;
            s->cluster_busy += static_cast<double>(hi - lo);
        }
    }

    void
    addLaneWrite(Cycle at)
    {
        if (MetricsSample *s = bucket(at))
            s->lane_writes += 1;
    }

    /** Tag buckets overlapping [start, end) with simt region @p pc. */
    void
    markRegion(Addr pc, Cycle start, Cycle end)
    {
        if (!enabled())
            return;
        for (Cycle c = start - start % stride_; c < end; c += stride_) {
            MetricsSample *s = bucket(c);
            if (!s)
                return;
            s->region = pc;
        }
    }

    const std::vector<MetricsSample> &samples() const { return buf_; }

    /**
     * Bucket-wise sum of another series into this one (retired, busy,
     * and lane-write totals add; a bucket's region tag is kept if
     * already set, else taken from @p o). Commutative apart from the
     * region tag, which is only used for labeling. Strides must match;
     * a mismatched merge is ignored. Used by diag-serve --batch to
     * fold per-attempt series into one service-wide time series.
     */
    void
    merge(const MetricsSeries &o)
    {
        if (stride_ != o.stride_ || !enabled())
            return;
        for (const MetricsSample &src : o.buf_) {
            MetricsSample *s = bucket(src.cycle);
            if (!s)
                return;
            s->retired += src.retired;
            s->cluster_busy += src.cluster_busy;
            s->lane_writes += src.lane_writes;
            if (s->region == 0)
                s->region = src.region;
        }
    }

  private:
    /** Bucket holding cycle @p at; nullptr when sampling is off or
     *  the index is implausible (corrupted-cycle guard). */
    MetricsSample *
    bucket(Cycle at)
    {
        if (!enabled())
            return nullptr;
        const u64 idx = at / stride_;
        if (idx > kMaxBuckets)
            return nullptr;
        if (buf_.size() <= idx) {
            const size_t old = buf_.size();
            buf_.resize(idx + 1);
            for (size_t i = old; i < buf_.size(); ++i)
                buf_[i].cycle = static_cast<Cycle>(i) * stride_;
        }
        return &buf_[idx];
    }

    static constexpr u64 kMaxBuckets = u64{1} << 27;

    u64 stride_;
    std::vector<MetricsSample> buf_;
};

/** The observation front-end the engine hooks talk to. */
class Tracer
{
  public:
    explicit Tracer(const TraceConfig &cfg = {})
        : cfg_(cfg), sink_(cfg.buffer_events),
          metrics_(cfg.metrics_stride)
    {}

    const TraceConfig &config() const { return cfg_; }
    bool wants(EventKind k) const { return cfg_.event_mask & eventBit(k); }
    const RingBufferSink &sink() const { return sink_; }
    MetricsSeries &metrics() { return metrics_; }
    const MetricsSeries &metrics() const { return metrics_; }

    /** Total clusters of the traced processor (set on attach; used by
     *  exporters to normalize occupancy). */
    void setClusters(unsigned n) { clusters_ = n; }
    unsigned clusters() const { return clusters_; }

    // ---- hook emitters (names match the EventKind taxonomy) ----

    void
    activation(u8 ring, u16 cluster, Addr pc, Cycle start, Cycle end,
               bool reused, u64 retired)
    {
        if (wants(EventKind::Activation))
            sink_.record({EventKind::Activation, ring, cluster, pc,
                          start, end - start, retired});
        metrics_.addBusy(start, end);
        metrics_.addRetired(end, static_cast<double>(retired));
        if (reused)
            reuseHit(ring, cluster, pc, start);
    }

    void
    reuseHit(u8 ring, u16 cluster, Addr pc, Cycle at)
    {
        if (wants(EventKind::ReuseHit))
            sink_.record({EventKind::ReuseHit, ring, cluster, pc, at,
                          0, 0});
    }

    void
    laneWrite(u8 ring, u16 lane, Addr pc, Cycle at, u32 value)
    {
        if (wants(EventKind::LaneWrite))
            sink_.record({EventKind::LaneWrite, ring, lane, pc, at, 0,
                          value});
        metrics_.addLaneWrite(at);
    }

    void
    pcRedirect(u8 ring, u16 cluster, Addr pc, Cycle resolve,
               Addr target)
    {
        if (wants(EventKind::PcRedirect))
            sink_.record({EventKind::PcRedirect, ring, cluster, pc,
                          resolve, 0, target});
    }

    void
    simtStage(u8 ring, u16 cluster, Addr pc, Cycle start, Cycle end,
              u64 thread)
    {
        if (wants(EventKind::SimtStage))
            sink_.record({EventKind::SimtStage, ring, cluster, pc,
                          start, end - start, thread});
        metrics_.addBusy(start, end);
    }

    /** Stage-mode retirement credit (no per-stage event needed). */
    void
    retired(Cycle at, u64 n)
    {
        metrics_.addRetired(at, static_cast<double>(n));
    }

    void
    lsuQueue(u8 ring, u16 cluster, Addr pc, Cycle at, Cycle stall,
             u64 depth)
    {
        if (wants(EventKind::LsuQueue))
            sink_.record({EventKind::LsuQueue, ring, cluster, pc, at,
                          stall, depth});
    }

    void
    memLaneHit(u8 ring, Addr pc, Cycle at, u16 entries)
    {
        if (wants(EventKind::MemLaneHit))
            sink_.record({EventKind::MemLaneHit, ring, entries, pc, at,
                          0, 0});
    }

    void
    memLaneEvict(u8 ring, Addr pc, Cycle at, u16 entries)
    {
        if (wants(EventKind::MemLaneEvict))
            sink_.record({EventKind::MemLaneEvict, ring, entries, pc,
                          at, 0, 0});
    }

    void
    bankConflict(u16 bank, Addr addr, Cycle at, Cycle wait)
    {
        if (wants(EventKind::BankConflict))
            sink_.record({EventKind::BankConflict, 0, bank, addr, at,
                          wait, 0});
    }

    void
    checkpoint(u8 ring, Addr pc, Cycle at, u64 retired)
    {
        if (wants(EventKind::Checkpoint))
            sink_.record({EventKind::Checkpoint, ring, 0, pc, at, 0,
                          retired});
    }

    void
    rollback(u8 ring, Addr pc, Cycle at, u64 recoveries)
    {
        if (wants(EventKind::Rollback))
            sink_.record({EventKind::Rollback, ring, 0, pc, at, 0,
                          recoveries});
    }

    void
    regionEnter(u8 ring, Addr pc, Cycle at, u64 threads)
    {
        if (wants(EventKind::RegionEnter))
            sink_.record({EventKind::RegionEnter, ring, 0, pc, at, 0,
                          threads});
    }

    void
    regionExit(u8 ring, Addr pc, Cycle start, Cycle end)
    {
        if (wants(EventKind::RegionExit))
            sink_.record({EventKind::RegionExit, ring, 0, pc, end, 0,
                          end - start});
        metrics_.markRegion(pc, start, end);
    }

    void
    thread(u8 ring, u16 slot, Addr entry, Cycle start, Cycle end,
           u64 retired)
    {
        if (wants(EventKind::Thread))
            sink_.record({EventKind::Thread, ring, slot, entry, start,
                          end - start, retired});
    }

  private:
    TraceConfig cfg_;
    RingBufferSink sink_;
    MetricsSeries metrics_;
    unsigned clusters_ = 0;
};

} // namespace diag::trace

#endif // DIAG_TRACE_TRACER_HPP
