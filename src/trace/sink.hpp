/**
 * @file
 * TraceSink: where recorded events go. The standard implementation is
 * a fixed-capacity binary ring buffer — recording is one store plus an
 * index increment, the buffer never reallocates mid-run, and when it
 * wraps the oldest events are dropped (counted, so exporters can say
 * so) rather than stalling the simulation.
 *
 * Concurrency contract: sinks follow the StatGroup confinement rule
 * (DESIGN.md §10) — a sink is unsynchronized and must stay confined to
 * the host worker that owns its simulator instance. Parallel drivers
 * give every worker its own tracer + sink and serialize after the
 * owning task completes.
 */
#ifndef DIAG_TRACE_SINK_HPP
#define DIAG_TRACE_SINK_HPP

#include <vector>

#include "trace/events.hpp"

namespace diag::trace
{

/** Abstract event consumer. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Record one event (hot path; must not throw). */
    virtual void record(const TraceEvent &ev) = 0;
};

/** Bounded in-memory recorder; drops the oldest events when full. */
class RingBufferSink : public TraceSink
{
  public:
    explicit RingBufferSink(size_t capacity = size_t{1} << 20)
        : capacity_(capacity ? capacity : 1)
    {
        buf_.reserve(capacity_ < 4096 ? capacity_ : 4096);
    }

    void
    record(const TraceEvent &ev) override
    {
        if (buf_.size() < capacity_) {
            buf_.push_back(ev);
            return;
        }
        buf_[head_] = ev;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }

    /** Events recorded and still resident (<= capacity). */
    size_t size() const { return buf_.size(); }

    size_t capacity() const { return capacity_; }

    /** Events lost to wrap-around (oldest-first eviction). */
    u64 dropped() const { return dropped_; }

    /** Resident events in record order (oldest first). */
    std::vector<TraceEvent>
    events() const
    {
        std::vector<TraceEvent> out;
        out.reserve(buf_.size());
        for (size_t i = 0; i < buf_.size(); ++i)
            out.push_back(buf_[(head_ + i) % buf_.size()]);
        return out;
    }

    void
    clear()
    {
        buf_.clear();
        head_ = 0;
        dropped_ = 0;
    }

  private:
    size_t capacity_;
    size_t head_ = 0;  //!< oldest element once the buffer wrapped
    u64 dropped_ = 0;
    std::vector<TraceEvent> buf_;
};

} // namespace diag::trace

#endif // DIAG_TRACE_SINK_HPP
