/**
 * @file
 * Typed cycle-level trace events. The taxonomy mirrors the places the
 * DiAG model makes a scheduling decision: cluster activations, lane
 * writes, PC-lane rewrites, datapath-reuse hits, thread-pipeline stage
 * advances, LSU queue pressure, memory-lane CAM behaviour, L1D bank
 * conflicts, and checkpoint/rollback recovery. Events are fixed-size
 * PODs so the ring-buffer recorder is a plain array with no per-event
 * allocation on the simulators' hot path.
 */
#ifndef DIAG_TRACE_EVENTS_HPP
#define DIAG_TRACE_EVENTS_HPP

#include <string>

#include "common/types.hpp"

namespace diag::trace
{

/** Every traceable event class, in stable wire order. */
enum class EventKind : u8
{
    Activation = 0,  //!< one PC-lane pass through a cluster
    LaneWrite,       //!< destination register-lane write
    PcRedirect,      //!< PC-lane branch rewrite (taken control flow)
    ReuseHit,        //!< backward branch into a resident datapath
    SimtStage,       //!< thread-pipeline stage advance (simt mode)
    LsuQueue,        //!< cluster LSU request-queue admission stall
    MemLaneHit,      //!< memory-lane CAM store-to-load forwarding hit
    MemLaneEvict,    //!< memory-lane CAM entry displaced (window full)
    BankConflict,    //!< L1D bank busy at access time
    Checkpoint,      //!< activation-boundary checkpoint taken
    Rollback,        //!< fault recovery restored a checkpoint
    RegionEnter,     //!< simt region pipeline entry
    RegionExit,      //!< simt region pipeline exit (serial resume)
    Thread,          //!< one software thread's whole lifetime
    Count            //!< number of kinds (not an event)
};

inline constexpr unsigned kNumEventKinds =
    static_cast<unsigned>(EventKind::Count);

/** Bit for @p k in an event mask. */
inline constexpr u32
eventBit(EventKind k)
{
    return u32{1} << static_cast<unsigned>(k);
}

/** Mask with every event kind enabled. */
inline constexpr u32 kAllEvents = (u32{1} << kNumEventKinds) - 1;

/**
 * Default mask: everything except the per-instruction LaneWrite
 * firehose (a 16-PE cluster writes a lane nearly every instruction;
 * opt in with --trace-events=...,lane-write when needed).
 */
inline constexpr u32 kDefaultEvents =
    kAllEvents & ~eventBit(EventKind::LaneWrite);

/** Stable lowercase-kebab name of @p k ("pc-redirect", ...). */
const char *eventName(EventKind k);

/**
 * Parse a comma-separated event list ("activation,reuse-hit", "all",
 * "default") into a mask. Returns false (mask untouched) when any
 * name is unknown; @p bad then holds the offending token.
 */
bool parseEventMask(const std::string &list, u32 &mask,
                    std::string &bad);

/**
 * One recorded event. Semantics of the generic fields per kind:
 *  - unit: cluster index (Activation/SimtStage/LsuQueue/ReuseHit),
 *    destination lane (LaneWrite), CAM entry count (MemLane*),
 *    L1D bank (BankConflict), ring-local thread slot (Thread).
 *  - pc: the instruction or region address the event is about.
 *  - start/dur: cycle span ([start, start+dur)); instant events
 *    record dur = 0.
 *  - arg: payload — retired instructions (Activation/Thread), value
 *    written (LaneWrite), redirect target (PcRedirect), pipelined
 *    thread index (SimtStage), queue depth (LsuQueue), thread count
 *    (RegionEnter), recovery count (Rollback).
 */
struct TraceEvent
{
    EventKind kind = EventKind::Activation;
    u8 ring = 0;
    u16 unit = 0;
    Addr pc = 0;
    Cycle start = 0;
    Cycle dur = 0;
    u64 arg = 0;
};

} // namespace diag::trace

#endif // DIAG_TRACE_EVENTS_HPP
