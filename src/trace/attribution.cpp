#include "trace/attribution.hpp"

#include "common/log.hpp"

namespace diag::trace
{

AttributionReport
attributeRegions(const analysis::BoundResult &bound,
                 const StatGroup &counters, double total_cycles,
                 double instructions)
{
    AttributionReport rep;
    rep.total_cycles = total_cycles;
    rep.instructions = instructions;
    for (const analysis::RegionBound &r : bound.regions) {
        RegionAttribution a;
        a.pc = r.simt_s_pc;
        a.entries = counters.get(
            detail::vformat("simt_region_%08x_entries", r.simt_s_pc));
        a.threads = counters.get(
            detail::vformat("simt_region_%08x_threads", r.simt_s_pc));
        a.measured = counters.get(
            detail::vformat("simt_region_%08x_cycles", r.simt_s_pc));
        a.pipelined = a.entries > 0;
        if (!a.pipelined) {
            // Static-only attribution: model one entry with enough
            // threads to reach steady state, so the report still
            // names the limiter the model expects for this region.
            a.bottleneck = r.bottleneck(64, 1);
            rep.regions.push_back(a);
            continue;
        }
        a.lower_bound = r.lowerBound(a.threads, a.entries);
        a.predicted = r.predict(a.threads, a.entries);
        a.bottleneck = r.bottleneck(a.threads, a.entries);
        // Mirror RegionBound::predict()'s decomposition.
        const unsigned replicas = r.replicasFor(a.threads, a.entries);
        a.fill_cycles = a.entries * r.fill_pred;
        a.steady_cycles = (a.threads - a.entries) *
                          r.iiPred(a.threads, a.entries);
        a.setup_cycles =
            replicas > 1
                ? a.entries *
                      (static_cast<double>(replicas - 1) * r.lines *
                           r.setup_per_line +
                       r.setup_fixed)
                : 0;
        a.gap = a.measured - a.predicted;
        a.gap_frac = a.measured > 0 ? a.gap / a.measured : 0;
        a.dominant = "fill";
        double best = a.fill_cycles;
        if (a.steady_cycles > best) {
            a.dominant = "steady";
            best = a.steady_cycles;
        }
        if (a.setup_cycles > best)
            a.dominant = "setup";
        rep.region_cycles += a.measured;
        rep.regions.push_back(a);
    }
    rep.serial_cycles = total_cycles > rep.region_cycles
                            ? total_cycles - rep.region_cycles
                            : 0;
    return rep;
}

std::string
renderAttribution(const AttributionReport &r)
{
    std::string out = detail::vformat(
        "%s [%s]%s: %.0f cycles total = %.0f in %zu simt region(s) + "
        "%.0f serial\n",
        r.workload.c_str(), r.config.c_str(), r.simt ? " (simt)" : "",
        r.total_cycles, r.region_cycles, r.regions.size(),
        r.serial_cycles);
    for (const RegionAttribution &a : r.regions) {
        if (!a.pipelined) {
            out += detail::vformat(
                "  region 0x%08x: never pipelined at run time "
                "(model expects bottleneck: %s)\n",
                a.pc, a.bottleneck.c_str());
            continue;
        }
        out += detail::vformat(
            "  region 0x%08x: %.0f entries, %.0f threads\n"
            "    measured %.0f  predicted %.0f  bound %.0f  "
            "gap %+.0f (%+.1f%%)\n"
            "    model: fill %.0f, steady %.0f, setup %.0f -> "
            "dominant %s, bottleneck %s\n",
            a.pc, a.entries, a.threads, a.measured, a.predicted,
            a.lower_bound, a.gap, a.gap_frac * 100.0, a.fill_cycles,
            a.steady_cycles, a.setup_cycles, a.dominant.c_str(),
            a.bottleneck.c_str());
    }
    return out;
}

std::string
renderAttributionJson(const AttributionReport &r)
{
    std::string out = detail::vformat(
        "{\n  \"workload\": \"%s\",\n  \"config\": \"%s\",\n"
        "  \"simt\": %s,\n  \"total_cycles\": %.0f,\n"
        "  \"instructions\": %.0f,\n  \"region_cycles\": %.0f,\n"
        "  \"serial_cycles\": %.0f,\n  \"regions\": [",
        r.workload.c_str(), r.config.c_str(),
        r.simt ? "true" : "false", r.total_cycles, r.instructions,
        r.region_cycles, r.serial_cycles);
    bool first = true;
    for (const RegionAttribution &a : r.regions) {
        out += first ? "\n" : ",\n";
        first = false;
        out += detail::vformat(
            "    {\"pc\": \"0x%08x\", \"pipelined\": %s, "
            "\"entries\": %.0f, \"threads\": %.0f, "
            "\"measured\": %.0f, \"predicted\": %.0f, "
            "\"lower_bound\": %.0f, \"fill\": %.1f, "
            "\"steady\": %.1f, \"setup\": %.1f, \"gap\": %.0f, "
            "\"gap_frac\": %.4f, \"dominant\": \"%s\", "
            "\"bottleneck\": \"%s\"}",
            a.pc, a.pipelined ? "true" : "false", a.entries,
            a.threads, a.measured, a.predicted, a.lower_bound,
            a.fill_cycles, a.steady_cycles, a.setup_cycles, a.gap,
            a.gap_frac, a.dominant.c_str(), a.bottleneck.c_str());
    }
    out += first ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

} // namespace diag::trace
