#include "trace/export.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace diag::trace
{

namespace
{

/** Track ids within a ring's process (clusters use their own index). */
constexpr unsigned kTidControl = 200;
constexpr unsigned kTidMemLanes = 201;
constexpr unsigned kTidThreads = 202;
constexpr unsigned kTidLanes = 203;

/** pid 0 is the shared memory system; rings are pid 1 + ring. */
unsigned
pidOf(const TraceEvent &ev)
{
    return ev.kind == EventKind::BankConflict ? 0 : 1u + ev.ring;
}

unsigned
tidOf(const TraceEvent &ev)
{
    switch (ev.kind) {
      case EventKind::Activation:
      case EventKind::SimtStage:
      case EventKind::ReuseHit:
      case EventKind::LsuQueue:
        return ev.unit;
      case EventKind::LaneWrite:
        return kTidLanes;
      case EventKind::PcRedirect:
      case EventKind::Checkpoint:
      case EventKind::Rollback:
      case EventKind::RegionEnter:
      case EventKind::RegionExit:
        return kTidControl;
      case EventKind::MemLaneHit:
      case EventKind::MemLaneEvict:
        return kTidMemLanes;
      case EventKind::Thread:
        return kTidThreads;
      case EventKind::BankConflict:
        return ev.unit;
      case EventKind::Count:
        break;
    }
    return kTidControl;
}

std::string
trackName(unsigned pid, unsigned tid)
{
    if (pid == 0)
        return detail::vformat("l1d bank %u", tid);
    switch (tid) {
      case kTidControl: return "control";
      case kTidMemLanes: return "mem-lanes";
      case kTidThreads: return "threads";
      case kTidLanes: return "lanes";
      default: return detail::vformat("cluster %u", tid);
    }
}

std::string
eventJson(const TraceEvent &ev)
{
    const unsigned pid = pidOf(ev);
    const unsigned tid = tidOf(ev);
    const auto ts = static_cast<unsigned long long>(ev.start);
    const auto dur = static_cast<unsigned long long>(ev.dur);
    const auto arg = static_cast<unsigned long long>(ev.arg);
    const char *cat = eventName(ev.kind);
    switch (ev.kind) {
      case EventKind::Activation:
        return detail::vformat(
            "{\"name\":\"act 0x%08x\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%llu,\"dur\":%llu,\"pid\":%u,\"tid\":%u,"
            "\"args\":{\"pc\":\"0x%08x\",\"retired\":%llu}}",
            ev.pc, cat, ts, dur, pid, tid, ev.pc, arg);
      case EventKind::SimtStage:
        return detail::vformat(
            "{\"name\":\"thr %llu 0x%08x\",\"cat\":\"%s\","
            "\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,\"pid\":%u,"
            "\"tid\":%u,\"args\":{\"thread\":%llu,"
            "\"pc\":\"0x%08x\"}}",
            arg, ev.pc, cat, ts, dur, pid, tid, arg, ev.pc);
      case EventKind::LsuQueue:
        return detail::vformat(
            "{\"name\":\"lsq stall\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%llu,\"dur\":%llu,\"pid\":%u,\"tid\":%u,"
            "\"args\":{\"pc\":\"0x%08x\",\"depth\":%llu}}",
            cat, ts, dur, pid, tid, ev.pc, arg);
      case EventKind::Thread:
        return detail::vformat(
            "{\"name\":\"thread %u\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%llu,\"dur\":%llu,\"pid\":%u,\"tid\":%u,"
            "\"args\":{\"entry\":\"0x%08x\",\"retired\":%llu}}",
            ev.unit, cat, ts, dur, pid, tid, ev.pc, arg);
      case EventKind::RegionExit:
        // The exit event carries the span length; render the whole
        // region occupancy as a complete event ending at `start`.
        return detail::vformat(
            "{\"name\":\"region 0x%08x\",\"cat\":\"%s\","
            "\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,\"pid\":%u,"
            "\"tid\":%u,\"args\":{\"pc\":\"0x%08x\"}}",
            ev.pc, cat, static_cast<unsigned long long>(ev.start -
                                                        ev.dur),
            dur, pid, tid, ev.pc);
      case EventKind::BankConflict:
        return detail::vformat(
            "{\"name\":\"conflict\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%llu,\"dur\":%llu,\"pid\":%u,\"tid\":%u,"
            "\"args\":{\"addr\":\"0x%08x\"}}",
            cat, ts, dur, pid, tid, ev.pc);
      case EventKind::LaneWrite:
        return detail::vformat(
            "{\"name\":\"x%u\",\"cat\":\"%s\",\"ph\":\"i\","
            "\"s\":\"t\",\"ts\":%llu,\"pid\":%u,\"tid\":%u,"
            "\"args\":{\"pc\":\"0x%08x\",\"value\":%llu}}",
            ev.unit, cat, ts, pid, tid, ev.pc, arg);
      case EventKind::PcRedirect:
        return detail::vformat(
            "{\"name\":\"redirect\",\"cat\":\"%s\",\"ph\":\"i\","
            "\"s\":\"t\",\"ts\":%llu,\"pid\":%u,\"tid\":%u,"
            "\"args\":{\"from\":\"0x%08x\",\"to\":\"0x%08llx\"}}",
            cat, ts, pid, tid, ev.pc, arg);
      case EventKind::ReuseHit:
      case EventKind::MemLaneHit:
      case EventKind::MemLaneEvict:
      case EventKind::Checkpoint:
      case EventKind::Rollback:
      case EventKind::RegionEnter:
        return detail::vformat(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
            "\"s\":\"t\",\"ts\":%llu,\"pid\":%u,\"tid\":%u,"
            "\"args\":{\"pc\":\"0x%08x\",\"arg\":%llu}}",
            eventName(ev.kind), cat, ts, pid, tid, ev.pc, arg);
      case EventKind::Count:
        break;
    }
    panic("unreachable event kind %u", static_cast<unsigned>(ev.kind));
}

} // namespace

void
writeChromeTrace(std::ostream &os, const Tracer &tracer,
                 const TraceMeta &meta)
{
    const std::vector<TraceEvent> events = tracer.sink().events();

    // Track inventory first (sorted), so viewers label every row and
    // the file layout is deterministic.
    std::set<std::pair<unsigned, unsigned>> tracks;
    for (const TraceEvent &ev : events)
        tracks.insert({pidOf(ev), tidOf(ev)});

    os << "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string &obj) {
        os << (first ? "\n" : ",\n") << obj;
        first = false;
    };
    std::set<unsigned> pids;
    for (const auto &[pid, tid] : tracks)
        pids.insert(pid);
    for (const unsigned pid : pids)
        emit(detail::vformat(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
            "\"args\":{\"name\":\"%s\"}}",
            pid,
            pid == 0 ? "memory"
                     : detail::vformat("ring%u", pid - 1).c_str()));
    for (const auto &[pid, tid] : tracks)
        emit(detail::vformat(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
            "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
            pid, tid, trackName(pid, tid).c_str()));
    for (const TraceEvent &ev : events)
        emit(eventJson(ev));
    os << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
       << detail::vformat(
              "\"workload\":\"%s\",\"config\":\"%s\",\"simt\":%s,"
              "\"time_unit\":\"1 ts = 1 cycle\","
              "\"events\":%llu,\"dropped\":%llu}",
              meta.workload.c_str(), meta.config.c_str(),
              meta.simt ? "true" : "false",
              static_cast<unsigned long long>(events.size()),
              static_cast<unsigned long long>(tracer.sink().dropped()))
       << "}\n";
}

void
writeMetricsJson(std::ostream &os, const Tracer &tracer,
                 const TraceMeta &meta)
{
    writeMetricsJson(os, tracer.metrics(), tracer.clusters(), meta);
}

void
writeMetricsJson(std::ostream &os, const MetricsSeries &m,
                 unsigned clusters, const TraceMeta &meta)
{
    const double stride = static_cast<double>(m.stride());
    os << detail::vformat(
        "{\n\"workload\":\"%s\",\n\"config\":\"%s\",\n\"simt\":%s,\n"
        "\"stride\":%llu,\n\"clusters\":%u,\n\"samples\":[",
        meta.workload.c_str(), meta.config.c_str(),
        meta.simt ? "true" : "false",
        static_cast<unsigned long long>(m.stride()), clusters);
    bool first = true;
    for (const MetricsSample &s : m.samples()) {
        const double ipc = stride > 0 ? s.retired / stride : 0;
        const double occ =
            stride > 0 && clusters > 0
                ? s.cluster_busy / (stride * clusters)
                : 0;
        const double lane_util =
            stride > 0 ? s.lane_writes / stride : 0;
        os << (first ? "\n" : ",\n")
           << detail::vformat(
                  "{\"cycle\":%llu,\"retired\":%.6g,\"ipc\":%.6g,"
                  "\"cluster_busy\":%.6g,\"occupancy\":%.6g,"
                  "\"lane_writes\":%.6g,\"lane_util\":%.6g,"
                  "\"region\":\"0x%08x\"}",
                  static_cast<unsigned long long>(s.cycle), s.retired,
                  ipc, s.cluster_busy, occ, s.lane_writes, lane_util,
                  s.region);
        first = false;
    }
    os << "\n]\n}\n";
}

void
writeSpanTrace(std::ostream &os, const std::vector<SpanEvent> &spans,
               const TraceMeta &meta)
{
    // All spans live in one "serve" process; pick a pid clear of the
    // ring pids so a span trace can be concatenated with a sim trace
    // in a viewer without track collisions.
    constexpr unsigned kServePid = 100;
    std::set<unsigned> tracks;
    for (const SpanEvent &sp : spans)
        tracks.insert(sp.track);

    os << "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string &obj) {
        os << (first ? "\n" : ",\n") << obj;
        first = false;
    };
    emit(detail::vformat(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
        "\"args\":{\"name\":\"serve\"}}",
        kServePid));
    for (const unsigned tid : tracks)
        emit(detail::vformat(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
            "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
            kServePid, tid,
            tid == kSpanTrackQueue
                ? "queue"
                : detail::vformat("worker %u", tid).c_str()));
    for (const SpanEvent &sp : spans)
        emit(detail::vformat(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%llu,\"dur\":%llu,\"pid\":%u,\"tid\":%u,"
            "\"args\":{\"request\":%llu}}",
            jsonEscape(sp.name).c_str(), jsonEscape(sp.cat).c_str(),
            static_cast<unsigned long long>(sp.ts_us),
            static_cast<unsigned long long>(sp.dur_us), kServePid,
            sp.track, static_cast<unsigned long long>(sp.arg)));
    os << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
       << detail::vformat(
              "\"workload\":\"%s\",\"config\":\"%s\","
              "\"time_unit\":\"1 ts = 1 us\",\"spans\":%llu}",
              meta.workload.c_str(), meta.config.c_str(),
              static_cast<unsigned long long>(spans.size()))
       << "}\n";
}

} // namespace diag::trace
