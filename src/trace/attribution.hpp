/**
 * @file
 * Bottleneck attribution: align the cycles a run actually spent in
 * each simt region (the ring's per-region counters) against the §9
 * static bound model's prediction, decompose the predicted schedule
 * into fill vs steady-state vs replica-setup components, name the
 * model's dominant limiter, and quantify the measured-vs-predicted
 * gap. This is the closing of the loop between diag-bound and the
 * simulator that every later performance PR measures against.
 */
#ifndef DIAG_TRACE_ATTRIBUTION_HPP
#define DIAG_TRACE_ATTRIBUTION_HPP

#include <string>
#include <vector>

#include "analysis/bound.hpp"
#include "common/stats.hpp"

namespace diag::trace
{

/** One region's measured-vs-model decomposition. */
struct RegionAttribution
{
    Addr pc = 0;              //!< simt_s address
    double entries = 0;       //!< pipeline entries observed
    double threads = 0;       //!< threads launched
    double measured = 0;      //!< summed measured region cycles
    double lower_bound = 0;   //!< provable minimum for those counts
    double predicted = 0;     //!< model estimate for those counts
    double fill_cycles = 0;   //!< predicted fill component
    double steady_cycles = 0; //!< predicted steady-state component
    double setup_cycles = 0;  //!< predicted replica line-load component
    double gap = 0;           //!< measured - predicted (signed)
    double gap_frac = 0;      //!< gap / measured (0 when measured = 0)
    /** The model's dominant limiter of the initiation interval:
     *  "recurrence", "memory-order", "memory-bandwidth",
     *  "memory-lane", "compute", or "cluster-fit". */
    std::string bottleneck;
    /** Largest predicted component: "fill", "steady", or "setup". */
    std::string dominant;
    bool pipelined = false;   //!< region actually entered at run time
};

/** Whole-run attribution. */
struct AttributionReport
{
    std::string workload;
    std::string config;
    bool simt = false;
    double total_cycles = 0;
    double instructions = 0;
    double region_cycles = 0;  //!< sum of measured region cycles
    double serial_cycles = 0;  //!< total - region (serial sections)
    std::vector<RegionAttribution> regions;
};

/**
 * Build the attribution from the static model and the run counters
 * (the `simt_region_<pc>_{entries,threads,cycles}` keys the ring
 * records). Regions the bound model covers but the run never
 * pipelined are reported with pipelined = false.
 */
AttributionReport
attributeRegions(const analysis::BoundResult &bound,
                 const StatGroup &counters, double total_cycles,
                 double instructions);

/** Human-readable report (one block per region, aligned columns). */
std::string renderAttribution(const AttributionReport &r);

/** Deterministic JSON rendering. */
std::string renderAttributionJson(const AttributionReport &r);

} // namespace diag::trace

#endif // DIAG_TRACE_ATTRIBUTION_HPP
