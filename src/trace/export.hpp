/**
 * @file
 * Trace exporters: Chrome trace-event / Perfetto-compatible JSON and
 * time-series metrics. Both renderers are deterministic — events are
 * written in record order with fixed formatting, so a trace of the
 * same run is byte-identical regardless of host job count.
 */
#ifndef DIAG_TRACE_EXPORT_HPP
#define DIAG_TRACE_EXPORT_HPP

#include <ostream>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace diag::trace
{

/** Free-form run description stamped into the trace's otherData. */
struct TraceMeta
{
    std::string workload;  //!< workload or program name
    std::string config;    //!< engine configuration name
    bool simt = false;     //!< simt-annotated variant
};

/**
 * Render the recorded events as Chrome trace-event JSON (the object
 * form: {"traceEvents": [...], ...}), loadable in Perfetto and
 * chrome://tracing. Timestamps are simulated cycles presented as
 * microseconds (1 cycle = 1 us in the viewer). Track layout: one
 * process per ring with one thread-track per cluster, plus per-ring
 * "control", "lsu", and "mem-lanes" tracks; L1D bank conflicts land
 * in a shared "memory" process with one track per bank.
 */
void writeChromeTrace(std::ostream &os, const Tracer &tracer,
                      const TraceMeta &meta);

/**
 * Render the bucketed time series as JSON: per-bucket retired
 * instructions (→ IPC), summed cluster-busy cycles (→ occupancy when
 * divided by stride * clusters), lane writes, and the simt region
 * live in the bucket.
 */
void writeMetricsJson(std::ostream &os, const Tracer &tracer,
                      const TraceMeta &meta);

/**
 * Render a bare MetricsSeries with the same schema as the tracer
 * overload — the path diag-serve --batch uses after folding
 * per-attempt series into one service-wide series.
 */
void writeMetricsJson(std::ostream &os, const MetricsSeries &series,
                      unsigned clusters, const TraceMeta &meta);

/**
 * One request-lifecycle span on a service worker track (DESIGN.md
 * §16). Spans are generic — the exporter knows nothing about the
 * serve layer beyond the track naming convention below.
 */
struct SpanEvent
{
    unsigned track = 0;  //!< worker index, or kSpanTrackQueue
    std::string name;    //!< label, e.g. "req 3 attempt 1"
    std::string cat;     //!< stage taxonomy: queue|attempt|backoff
    u64 ts_us = 0;       //!< start (virtual or wall microseconds)
    u64 dur_us = 0;      //!< duration
    u64 arg = 0;         //!< request index
};

/** Track id rendered as "queue" instead of "worker N". */
constexpr unsigned kSpanTrackQueue = 250;

/**
 * Render spans as Chrome trace-event JSON: one "serve" process with a
 * thread track per worker plus the queue track. Spans are written in
 * record order with fixed formatting — byte-identical output for the
 * same span list regardless of host job count.
 */
void writeSpanTrace(std::ostream &os,
                    const std::vector<SpanEvent> &spans,
                    const TraceMeta &meta);

} // namespace diag::trace

#endif // DIAG_TRACE_EXPORT_HPP
