#include "fault/controller.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace diag::fault
{

namespace
{

/** Per-event lifecycle. */
enum : u8
{
    kPending = 0, //!< trigger not reached yet
    kArmed = 1,   //!< waiting for a matching per-instruction hook
    kSpent = 2,   //!< applied (one-shot events never re-fire)
};

} // namespace

FaultController::FaultController(FaultPlan plan,
                                 const DetectConfig &detect)
    : plan_(std::move(plan)), detect_(detect),
      events_(plan_.events.size()), status_(plan_.events.size(),
                                            kPending)
{}

void
FaultController::onBoundary(core::LaneFile &regs,
                            sim::StoreTracker &mem_lanes,
                            SparseMemory &mem, mem::MemHierarchy &mh,
                            u64 retired)
{
    for (size_t i = 0; i < plan_.events.size(); ++i) {
        if (status_[i] != kPending)
            continue;
        if (retired < plan_.events[i].trigger)
            continue;
        applyBoundaryEvent(i, regs, mem_lanes, mem, mh);
    }
}

void
FaultController::applyBoundaryEvent(size_t idx, core::LaneFile &regs,
                                    sim::StoreTracker &mem_lanes,
                                    SparseMemory &mem,
                                    mem::MemHierarchy &mh)
{
    const FaultEvent &ev = plan_.events[idx];
    EventLog &log = events_[idx];
    switch (ev.site) {
      case FaultSite::RegLaneValue:
        // Flip the value latch but not the stored parity bit: the
        // mismatch is exactly what the parity sweep detects.
        regs[ev.lane].value ^= 1u << ev.bit;
        log.note = detail::vformat("lane x%u value bit %u flipped",
                                   ev.lane, ev.bit);
        break;
      case FaultSite::RegLaneTiming:
        regs[ev.lane].ready ^= Cycle{1} << (ev.bit % 24);
        log.note = detail::vformat("lane x%u ready bit %u flipped",
                                   ev.lane, ev.bit % 24);
        break;
      case FaultSite::PeResult:
      case FaultSite::PeStuck:
        status_[idx] = kArmed;
        pe_armed_ = true;
        return; // fires later, through onPeResult()
      case FaultSite::MemLaneEntry: {
        auto &entries = mem_lanes.entries();
        if (entries.empty())
            return; // CAM empty this boundary; retry at the next one
        auto &entry = entries[ev.pick % entries.size()];
        entry.addr ^= 1u << ev.bit;
        log.note = detail::vformat(
            "mem-lane entry %llu addr bit %u flipped (now 0x%x)",
            static_cast<unsigned long long>(ev.pick % entries.size()),
            ev.bit, entry.addr);
        break;
      }
      case FaultSite::MemData: {
        // Deterministic target pick: sorted resident-page list (the
        // underlying map iterates in unspecified order).
        std::vector<Addr> pages;
        mem.forEachPage([&](Addr base) { pages.push_back(base); });
        if (pages.empty())
            return;
        std::sort(pages.begin(), pages.end());
        const Addr base = pages[ev.pick % pages.size()];
        const Addr addr =
            base + static_cast<Addr>((ev.pick / pages.size()) %
                                     SparseMemory::kPageSize);
        const u8 old = mem.read8(addr);
        mem.write8(addr, static_cast<u8>(old ^ (1u << (ev.bit % 8))));
        log.note = detail::vformat(
            "memory byte [0x%x] bit %u flipped (0x%02x -> 0x%02x)",
            addr, ev.bit % 8, old, old ^ (1u << (ev.bit % 8)));
        break;
      }
      case FaultSite::CacheTag: {
        mem::Cache &victim = (ev.pick & 1) ? mh.l2() : mh.l1d(0);
        log.note = victim.corruptWay(ev.pick >> 1, ev.bit);
        break;
      }
      case FaultSite::Count:
        panic("invalid fault site");
    }
    status_[idx] = kSpent;
    log.fired = true;
    ++tally_.injected;
}

void
FaultController::applyPeFault(unsigned cluster, unsigned pe, u32 &value)
{
    bool any_armed = false;
    for (size_t i = 0; i < plan_.events.size(); ++i) {
        if (status_[i] != kArmed)
            continue;
        const FaultEvent &ev = plan_.events[i];
        if (ev.site == FaultSite::PeResult) {
            // Transient upset on whichever PE produces the next result.
            value ^= 1u << ev.bit;
            status_[i] = kSpent;
            events_[i].fired = true;
            events_[i].note = detail::vformat(
                "PE cl%u/%u result bit %u flipped", cluster, pe,
                ev.bit);
            ++tally_.injected;
            continue;
        }
        // PeStuck: permanent — stays armed, overrides every result the
        // dead PE produces from its trigger onward.
        if (ev.cluster == cluster && ev.pe == pe) {
            value = ev.stuck_value;
            if (!events_[i].fired) {
                events_[i].fired = true;
                events_[i].note = detail::vformat(
                    "PE cl%u/%u stuck at 0x%x", cluster, pe,
                    ev.stuck_value);
                ++tally_.injected;
            }
        }
        any_armed = true;
    }
    pe_armed_ = any_armed;
}

int
FaultController::paritySweep(const core::LaneFile &regs) const
{
    for (unsigned r = 1; r < regs.size(); ++r) {
        if (core::laneParity(regs[r].value) != regs[r].parity)
            return static_cast<int>(r);
    }
    return -1;
}

bool
FaultController::strike(unsigned cluster)
{
    if (cluster >= strikes_.size())
        strikes_.resize(cluster + 1, 0);
    return ++strikes_[cluster] == detect_.strikes_to_disable;
}

bool
FaultController::allFired() const
{
    for (const EventLog &log : events_) {
        if (!log.fired)
            return false;
    }
    return true;
}

} // namespace diag::fault
