/**
 * @file
 * Golden-lockstep oracle: diffs the DiAG retirement stream against the
 * golden RV32IMF interpreter instruction-by-instruction. A replay
 * buffer lets the ring roll the comparison point back to the last
 * checkpoint after a detected divergence, so re-executed activations
 * are compared against the same golden steps.
 */
#ifndef DIAG_FAULT_LOCKSTEP_HPP
#define DIAG_FAULT_LOCKSTEP_HPP

#include <deque>
#include <string>

#include "sim/golden.hpp"

namespace diag::fault
{

/** What one retired DiAG instruction did (the comparable subset). */
struct RetireRecord
{
    Addr pc = 0;
    bool wrote_reg = false;
    isa::RegId rd = isa::kNoReg;
    u32 rd_value = 0;
    bool is_store = false;
    Addr store_addr = 0;
    u32 store_value = 0;
};

/** Steps a golden simulator in lockstep with DiAG retirement. */
class LockstepOracle
{
  public:
    /** Takes a golden simulator already loaded and input-initialized
     *  exactly like the DiAG run it will shadow. */
    explicit LockstepOracle(sim::GoldenSim golden)
        : gold_(std::move(golden))
    {}

    sim::GoldenSim &golden() { return gold_; }

    /** Commit everything compared so far; rewind() returns here. */
    void
    mark()
    {
        replay_.erase(replay_.begin(),
                      replay_.begin() +
                          static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }

    /** Roll the comparison point back to the last mark(). */
    void rewind() { pos_ = 0; }

    /**
     * Compare one retired DiAG instruction against the next golden
     * step. Returns false on divergence (the reason is retained).
     */
    bool check(const RetireRecord &rec);

    const std::string &divergence() const { return divergence_; }

    /** Instructions compared (including replayed ones). */
    u64 compared() const { return compared_; }

  private:
    const sim::StepInfo &next();

    sim::GoldenSim gold_;
    std::deque<sim::StepInfo> replay_; //!< golden steps since mark()
    size_t pos_ = 0;                   //!< next replay slot to compare
    u64 compared_ = 0;
    std::string divergence_;
};

} // namespace diag::fault

#endif // DIAG_FAULT_LOCKSTEP_HPP
