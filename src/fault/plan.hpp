/**
 * @file
 * Fault plans: seeded (site x trigger x mode) injection schedules for
 * resilience campaigns. A plan is pure data — the FaultController
 * interprets it against the running model — so campaigns are
 * bit-reproducible from the seed alone.
 */
#ifndef DIAG_FAULT_PLAN_HPP
#define DIAG_FAULT_PLAN_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace diag::fault
{

/** Hardware structure a fault strikes. */
enum class FaultSite : u8
{
    RegLaneValue,  //!< bit flip in a register-lane value latch
    RegLaneTiming, //!< bit flip in a lane valid/timing wire
    PeResult,      //!< transient flip on one PE's result bus
    PeStuck,       //!< a PE permanently drives a stuck result value
    MemLaneEntry,  //!< bit flip in a memory-lane address CAM entry
    MemData,       //!< bit flip in a data word of backing memory
    CacheTag,      //!< bit flip in an L1D/L2 tag way
    Count,
};

/** Bit for @p site in a site mask. */
constexpr u32
siteBit(FaultSite site)
{
    return 1u << static_cast<unsigned>(site);
}

/** Mask with every site enabled. */
inline constexpr u32 kAllSites =
    (1u << static_cast<unsigned>(FaultSite::Count)) - 1;

/** Stable lower-case identifier (used in reports and --sites). */
const char *siteName(FaultSite site);

/**
 * Parse a comma-separated site list ("lane,timing,pe,stuck,memlane,
 * memdata,cache" or "all") into a mask. Returns 0 on a bad token.
 */
u32 parseSiteMask(const std::string &list);

/** One scheduled fault. */
struct FaultEvent
{
    FaultSite site = FaultSite::RegLaneValue;
    /** Arms once this many instructions have retired (the campaign
     *  draws it uniformly over the workload's dynamic length). */
    u64 trigger = 0;
    u8 lane = 1;          //!< register lane, 1..63 (RegLane* sites)
    u8 bit = 0;           //!< bit position within the struck word
    unsigned cluster = 0; //!< PE sites: cluster within the ring
    unsigned pe = 0;      //!< PE sites: slot within the cluster
    u32 stuck_value = 0;  //!< PeStuck: value the dead PE drives
    /** Deterministic index used to pick targets that only exist at
     *  run time (resident memory bytes, cache ways, CAM entries). */
    u64 pick = 0;
};

/** Human-readable one-line description of @p ev. */
std::string describeEvent(const FaultEvent &ev);

/** Shape parameters for random plan generation. */
struct PlanSpec
{
    u32 site_mask = kAllSites;
    u64 max_trigger = 1000;       //!< triggers drawn from [0, max]
    unsigned clusters = 2;        //!< clusters per ring
    unsigned pes_per_cluster = 16;
    unsigned events = 1;          //!< single-fault model by default
};

/** A full injection schedule. */
struct FaultPlan
{
    u64 seed = 0;
    std::vector<FaultEvent> events;

    /** Deterministically generate a plan from @p seed. */
    static FaultPlan random(u64 seed, const PlanSpec &spec);
};

} // namespace diag::fault

#endif // DIAG_FAULT_PLAN_HPP
