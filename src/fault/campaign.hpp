/**
 * @file
 * Fault-injection campaigns: N seeded single-fault trials of one
 * workload on the DiAG model, each classified AVF-style against the
 * golden reference (masked / detected / SDC / hang), aggregated into a
 * JSON report. Campaigns are bit-reproducible from the seed: every
 * random choice derives from (seed, trial index), and no wall-clock
 * state leaks into the report.
 *
 * Trials dispatch across host worker threads (CampaignSpec::jobs, see
 * DESIGN.md §10). Each trial owns its entire simulator state — DiAG
 * processor, golden lockstep oracle, fault controller, stat counters —
 * and results merge indexed by trial, so the report (and its JSON) is
 * byte-identical for any job count.
 */
#ifndef DIAG_FAULT_CAMPAIGN_HPP
#define DIAG_FAULT_CAMPAIGN_HPP

#include <string>
#include <vector>

#include "diag/config.hpp"
#include "fault/plan.hpp"
#include "host/cancel.hpp"

namespace diag::fault
{

/** What a campaign should run. */
struct CampaignSpec
{
    std::string workload;      //!< bundled workload name
    core::DiagConfig config = core::DiagConfig::f4c16();
    u64 seed = 1;
    unsigned trials = 20;
    u32 site_mask = kAllSites;
    bool parity = true;
    bool lockstep = true;
    /** Host threads running trials: 1 = serial, 0 = one per hardware
     *  thread. Never affects the report contents, only wall-clock. */
    unsigned jobs = 1;
    /**
     * Wall-clock cap per trial in milliseconds (0 = uncapped). A trial
     * that exceeds it is stopped by the host watchdog and classified
     * Hang with detector "host-watchdog" — a pathological seed can
     * degrade one trial, never wedge the whole campaign (or CI). The
     * default is far above any healthy trial so reports stay
     * byte-identical across machines and job counts.
     */
    u64 host_trial_timeout_ms = 120000;
    /** Optional campaign-level cancel: trials not yet started when the
     *  token fires are recorded as skipped. Must outlive runCampaign. */
    const host::CancelToken *cancel = nullptr;
};

/**
 * Cycle budget for faulty trials: at least 8x the fault-free baseline
 * plus slack so a degraded (slower but recovering) ring can still
 * finish, and never below the user's configured ceiling. The
 * forward-progress watchdog still stops genuine livelocks early.
 */
u64 trialCycleBudget(u64 user_max_cycles, Cycle baseline_cycles);

/** AVF outcome classes. */
enum class Outcome : u8
{
    Masked,   //!< completed, outputs match golden, nothing tripped
    Detected, //!< parity/lockstep/trap/abort fired
    Sdc,      //!< completed with wrong outputs, nothing tripped
    Hang,     //!< watchdog or budget stopped a non-terminating run
};

const char *outcomeName(Outcome o);

/** One trial's result. */
struct TrialRecord
{
    unsigned index = 0;
    u64 seed = 0;
    FaultSite site = FaultSite::RegLaneValue;
    std::string planned;  //!< describeEvent() of the scheduled fault
    std::string observed; //!< what the fault actually hit (if fired)
    bool fired = false;
    Outcome outcome = Outcome::Masked;
    std::string detector; //!< "parity"/"lockstep"/"trap"/"watchdog"/""
    bool recovered = false; //!< detected AND final outputs correct
    Cycle cycles = 0;
    u64 instructions = 0;
    u64 recoveries = 0;
    u64 clusters_disabled = 0;
    /** Host watchdog stopped the trial (wall-clock, not cycles). */
    bool host_timed_out = false;
    /** Trial ran to completion (false = skipped by campaign cancel). */
    bool executed = false;
};

/** Per-site aggregate. */
struct SiteSummary
{
    u64 trials = 0;
    u64 fired = 0;
    u64 masked = 0;
    u64 detected = 0;
    u64 recovered = 0;
    u64 sdc = 0;
    u64 hang = 0;
    u64 host_timed_out = 0; //!< hangs stopped by the host watchdog
};

/** Full campaign result. */
struct CampaignReport
{
    CampaignSpec spec;
    Cycle baseline_cycles = 0;  //!< fault-free DiAG run
    u64 baseline_insts = 0;     //!< golden dynamic instruction count
    std::vector<TrialRecord> trials;
    u64 skipped = 0; //!< trials not run because the campaign cancelled
    SiteSummary total;
    SiteSummary by_site[static_cast<unsigned>(FaultSite::Count)];

    /** Deterministic JSON rendering (byte-stable across runs). */
    std::string renderJson() const;
};

/**
 * Run the campaign. Fatals if the workload is unknown or its fault-free
 * baseline misbehaves; individual faulty trials never fatal.
 */
CampaignReport runCampaign(const CampaignSpec &spec,
                           bool verbose = false);

} // namespace diag::fault

#endif // DIAG_FAULT_CAMPAIGN_HPP
