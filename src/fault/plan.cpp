#include "fault/plan.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"

namespace diag::fault
{

const char *
siteName(FaultSite site)
{
    switch (site) {
      case FaultSite::RegLaneValue: return "reg_lane_value";
      case FaultSite::RegLaneTiming: return "reg_lane_timing";
      case FaultSite::PeResult: return "pe_result";
      case FaultSite::PeStuck: return "pe_stuck";
      case FaultSite::MemLaneEntry: return "mem_lane_entry";
      case FaultSite::MemData: return "mem_data";
      case FaultSite::CacheTag: return "cache_tag";
      case FaultSite::Count: break;
    }
    return "unknown";
}

u32
parseSiteMask(const std::string &list)
{
    if (list == "all")
        return kAllSites;
    u32 mask = 0;
    size_t start = 0;
    while (start <= list.size()) {
        size_t end = list.find(',', start);
        if (end == std::string::npos)
            end = list.size();
        const std::string tok = list.substr(start, end - start);
        if (tok == "lane")
            mask |= siteBit(FaultSite::RegLaneValue);
        else if (tok == "timing")
            mask |= siteBit(FaultSite::RegLaneTiming);
        else if (tok == "pe")
            mask |= siteBit(FaultSite::PeResult);
        else if (tok == "stuck")
            mask |= siteBit(FaultSite::PeStuck);
        else if (tok == "memlane")
            mask |= siteBit(FaultSite::MemLaneEntry);
        else if (tok == "memdata")
            mask |= siteBit(FaultSite::MemData);
        else if (tok == "cache")
            mask |= siteBit(FaultSite::CacheTag);
        else
            return 0;
        start = end + 1;
    }
    return mask;
}

std::string
describeEvent(const FaultEvent &ev)
{
    switch (ev.site) {
      case FaultSite::RegLaneValue:
        return detail::vformat("flip lane %u value bit %u after %llu "
                               "retires",
                               ev.lane, ev.bit,
                               static_cast<unsigned long long>(
                                   ev.trigger));
      case FaultSite::RegLaneTiming:
        return detail::vformat("flip lane %u timing bit %u after %llu "
                               "retires",
                               ev.lane, ev.bit,
                               static_cast<unsigned long long>(
                                   ev.trigger));
      case FaultSite::PeResult:
        return detail::vformat("flip next PE result bit %u after %llu "
                               "retires",
                               ev.bit,
                               static_cast<unsigned long long>(
                                   ev.trigger));
      case FaultSite::PeStuck:
        return detail::vformat("PE cl%u/%u stuck at 0x%x after %llu "
                               "retires",
                               ev.cluster, ev.pe, ev.stuck_value,
                               static_cast<unsigned long long>(
                                   ev.trigger));
      case FaultSite::MemLaneEntry:
        return detail::vformat("flip mem-lane entry addr bit %u after "
                               "%llu retires",
                               ev.bit,
                               static_cast<unsigned long long>(
                                   ev.trigger));
      case FaultSite::MemData:
        return detail::vformat("flip a resident memory bit %u after "
                               "%llu retires",
                               ev.bit % 8,
                               static_cast<unsigned long long>(
                                   ev.trigger));
      case FaultSite::CacheTag:
        return detail::vformat("flip a %s tag bit %u after %llu retires",
                               (ev.pick & 1) ? "L2" : "L1D", ev.bit,
                               static_cast<unsigned long long>(
                                   ev.trigger));
      case FaultSite::Count: break;
    }
    return "unknown fault";
}

FaultPlan
FaultPlan::random(u64 seed, const PlanSpec &spec)
{
    fatal_if((spec.site_mask & kAllSites) == 0,
             "fault plan with an empty site mask");
    std::vector<FaultSite> enabled;
    for (unsigned s = 0; s < static_cast<unsigned>(FaultSite::Count);
         ++s) {
        if (spec.site_mask & (1u << s))
            enabled.push_back(static_cast<FaultSite>(s));
    }

    FaultPlan plan;
    plan.seed = seed;
    Rng rng(seed ^ 0xfa017c0de5eedull);
    for (unsigned e = 0; e < spec.events; ++e) {
        FaultEvent ev;
        ev.site = enabled[rng.below(enabled.size())];
        ev.trigger = rng.below(spec.max_trigger + 1);
        ev.lane = static_cast<u8>(1 + rng.below(63));  // never x0
        ev.bit = static_cast<u8>(rng.below(32));
        ev.cluster = static_cast<unsigned>(rng.below(spec.clusters));
        ev.pe = static_cast<unsigned>(rng.below(spec.pes_per_cluster));
        switch (rng.below(3)) {
          case 0: ev.stuck_value = 0; break;
          case 1: ev.stuck_value = ~u32{0}; break;
          default: ev.stuck_value = rng.next32(); break;
        }
        ev.pick = rng.next64();
        plan.events.push_back(ev);
    }
    return plan;
}

} // namespace diag::fault
