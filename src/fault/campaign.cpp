#include "fault/campaign.hpp"

#include <algorithm>
#include <memory>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/processor.hpp"
#include "fault/controller.hpp"
#include "fault/lockstep.hpp"
#include "host/parallel.hpp"
#include "sim/golden.hpp"
#include "workloads/workload.hpp"

namespace diag::fault
{

namespace
{

/** Bytewise comparison over the union of both resident page sets. */
bool
memoryMatches(const SparseMemory &a, const SparseMemory &b)
{
    std::vector<Addr> pages;
    a.forEachPage([&](Addr base) { pages.push_back(base); });
    b.forEachPage([&](Addr base) { pages.push_back(base); });
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    for (const Addr base : pages) {
        for (Addr off = 0; off < SparseMemory::kPageSize; off += 4) {
            if (a.read32(base + off) != b.read32(base + off))
                return false;
        }
    }
    return true;
}

/** Deterministic per-trial seed derivation (splitmix-style). */
u64
trialSeed(u64 campaign_seed, unsigned trial)
{
    u64 z = campaign_seed + 0x9e3779b97f4a7c15ull * (trial + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += detail::vformat("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
siteMaskNames(u32 mask)
{
    std::string out;
    for (unsigned s = 0; s < static_cast<unsigned>(FaultSite::Count);
         ++s) {
        if (!(mask & (1u << s)))
            continue;
        if (!out.empty())
            out += ',';
        out += siteName(static_cast<FaultSite>(s));
    }
    return out;
}

void
tallyOutcome(SiteSummary &sum, const TrialRecord &rec)
{
    ++sum.trials;
    if (rec.fired)
        ++sum.fired;
    switch (rec.outcome) {
      case Outcome::Masked: ++sum.masked; break;
      case Outcome::Detected:
        ++sum.detected;
        if (rec.recovered)
            ++sum.recovered;
        break;
      case Outcome::Sdc: ++sum.sdc; break;
      case Outcome::Hang:
        ++sum.hang;
        if (rec.host_timed_out)
            ++sum.host_timed_out;
        break;
    }
}

std::string
summaryJson(const SiteSummary &sum)
{
    return detail::vformat(
        "{\"trials\":%llu,\"fired\":%llu,\"masked\":%llu,"
        "\"detected\":%llu,\"recovered\":%llu,\"sdc\":%llu,"
        "\"hang\":%llu,\"host_timed_out\":%llu}",
        static_cast<unsigned long long>(sum.trials),
        static_cast<unsigned long long>(sum.fired),
        static_cast<unsigned long long>(sum.masked),
        static_cast<unsigned long long>(sum.detected),
        static_cast<unsigned long long>(sum.recovered),
        static_cast<unsigned long long>(sum.sdc),
        static_cast<unsigned long long>(sum.hang),
        static_cast<unsigned long long>(sum.host_timed_out));
}

/**
 * Everything a trial reads. Shared across host workers strictly
 * read-only; each trial builds its own processor, oracle, and
 * controller on top (worker confinement, DESIGN.md §10).
 */
struct TrialContext
{
    const CampaignSpec &spec;
    const workloads::Workload &w;
    const Program &prog;
    const SparseMemory &ref_mem;
    core::DiagConfig cfg;
    DetectConfig det;
    PlanSpec pspec;
    u64 inst_budget = 0;
    bool verbose = false;
};

/** One seeded injection trial, confined to the calling host worker. */
TrialRecord
runTrial(const TrialContext &ctx, unsigned t)
{
    TrialRecord rec;
    rec.index = t;
    rec.seed = trialSeed(ctx.spec.seed, t);
    // Campaign-level cancel is honoured at trial boundaries: a trial
    // that never starts stays executed=false (tallied as skipped).
    if (ctx.spec.cancel && ctx.spec.cancel->stopRequested())
        return rec;

    const FaultPlan plan = FaultPlan::random(rec.seed, ctx.pspec);
    rec.site = plan.events[0].site;
    rec.planned = describeEvent(plan.events[0]);

    FaultController fc(plan, ctx.det);
    if (ctx.spec.lockstep) {
        sim::GoldenSim oracle(ctx.prog);
        ctx.w.init(oracle.memory());
        oracle.setReg(isa::RegId{10}, 0);
        oracle.setReg(isa::RegId{11}, 1);
        fc.attachOracle(
            std::make_unique<LockstepOracle>(std::move(oracle)));
    }

    core::DiagProcessor proc(ctx.cfg);
    proc.loadProgram(ctx.prog);
    ctx.w.init(proc.memory());
    proc.warmCaches();
    proc.attachFaults(&fc);
    // Host watchdog: a pathological injected fault can in principle
    // drive the model into a state the in-sim budgets bound only
    // slowly; the wall-clock cap guarantees the campaign finishes.
    host::CancelToken watchdog;
    if (ctx.spec.host_trial_timeout_ms > 0) {
        watchdog =
            host::CancelToken::withTimeout(ctx.spec.host_trial_timeout_ms);
        proc.attachCancel(&watchdog);
    }
    const std::vector<core::ThreadSpec> specs{
        {ctx.prog.entry, {{isa::RegId{10}, 0}, {isa::RegId{11}, 1}}}};
    const sim::RunStats stats =
        proc.runThreads(ctx.prog, specs, ctx.inst_budget);
    proc.attachCancel(nullptr);

    const FaultTally &tally = fc.tally();
    rec.fired = tally.injected > 0;
    for (const EventLog &log : fc.eventLog()) {
        if (!log.note.empty())
            rec.observed += rec.observed.empty() ? log.note
                                                 : "; " + log.note;
    }
    rec.cycles = stats.cycles;
    rec.instructions = stats.instructions;
    rec.recoveries = tally.recoveries;
    rec.clusters_disabled = tally.clusters_disabled;

    const u64 detections =
        tally.parity_detections + tally.lockstep_detections;
    const bool mem_ok = memoryMatches(proc.memory(), ctx.ref_mem);
    if (stats.timed_out) {
        rec.outcome = Outcome::Hang;
        // Substring, not prefix: multi-thread runs wrap the reason
        // as "thread N: host watchdog: ...".
        rec.host_timed_out = stats.stop_reason.find(
                                 "host watchdog") !=
                             std::string::npos;
        rec.detector = rec.host_timed_out ? "host-watchdog"
                                          : "watchdog";
    } else if (stats.aborted) {
        rec.outcome = Outcome::Detected;
        rec.detector = tally.lockstep_detections ? "lockstep"
                                                 : "parity";
    } else if (detections > 0) {
        rec.outcome = Outcome::Detected;
        rec.detector = tally.parity_detections ? "parity"
                                               : "lockstep";
        rec.recovered = stats.halted && mem_ok;
    } else if (stats.faulted) {
        rec.outcome = Outcome::Detected;
        rec.detector = "trap";
    } else if (stats.halted && mem_ok) {
        rec.outcome = Outcome::Masked;
    } else {
        rec.outcome = Outcome::Sdc;
    }

    if (ctx.verbose) {
        inform("trial %u seed 0x%llx: %s -> %s%s%s", t,
               static_cast<unsigned long long>(rec.seed),
               rec.planned.c_str(), outcomeName(rec.outcome),
               rec.detector.empty() ? "" : " by ",
               rec.detector.c_str());
    }
    rec.executed = true;
    return rec;
}

} // namespace

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked: return "masked";
      case Outcome::Detected: return "detected";
      case Outcome::Sdc: return "sdc";
      case Outcome::Hang: return "hang";
    }
    return "unknown";
}

u64
trialCycleBudget(u64 user_max_cycles, Cycle baseline_cycles)
{
    // max, not min: a large user ceiling must never *shrink* the
    // budget, or slow degraded-but-recovering trials misclassify as
    // timeouts. Runaway trials are still bounded by the instruction
    // budget and the forward-progress watchdog.
    return std::max<u64>(user_max_cycles,
                         baseline_cycles * 8 + 100'000);
}

CampaignReport
runCampaign(const CampaignSpec &spec, bool verbose)
{
    const workloads::Workload w = workloads::findWorkload(spec.workload);
    const Program prog = assembler::assemble(w.asm_serial);

    // Golden reference: dynamic length and the correct final memory.
    sim::GoldenSim gold(prog);
    w.init(gold.memory());
    gold.setReg(isa::RegId{10}, 0);
    gold.setReg(isa::RegId{11}, 1);
    const sim::RunResult gres = gold.run(w.max_insts);
    fatal_if(!gres.halted, "golden run of %s did not halt",
             w.name.c_str());
    const SparseMemory ref_mem = gold.memory();

    // Fault-free DiAG baseline: cycle budget and model sanity.
    CampaignReport report;
    report.spec = spec;
    report.baseline_insts = gres.inst_count;
    {
        core::DiagProcessor proc(spec.config);
        proc.loadProgram(prog);
        w.init(proc.memory());
        proc.warmCaches();
        const std::vector<core::ThreadSpec> specs{
            {prog.entry, {{isa::RegId{10}, 0}, {isa::RegId{11}, 1}}}};
        const sim::RunStats base =
            proc.runThreads(prog, specs, w.max_insts);
        fatal_if(!base.halted, "fault-free DiAG run of %s did not halt",
                 w.name.c_str());
        fatal_if(!memoryMatches(proc.memory(), ref_mem),
                 "fault-free DiAG run of %s diverged from golden",
                 w.name.c_str());
        report.baseline_cycles = base.cycles;
    }

    // Trial configuration: generous cycle/instruction budgets so a
    // degraded (slower) ring can still finish, lint off (the program
    // image is identical every trial; one strict pass above suffices).
    TrialContext ctx{.spec = spec,
                     .w = w,
                     .prog = prog,
                     .ref_mem = ref_mem,
                     .cfg = spec.config,
                     .det = {},
                     .pspec = {},
                     .inst_budget = 0,
                     .verbose = verbose};
    ctx.cfg.lint_enabled = false;
    ctx.cfg.max_cycles =
        trialCycleBudget(spec.config.max_cycles, report.baseline_cycles);
    ctx.inst_budget = gres.inst_count * 8 + 10'000;
    ctx.det.parity = spec.parity;
    ctx.det.lockstep = spec.lockstep;
    ctx.pspec.site_mask = spec.site_mask;
    ctx.pspec.max_trigger = gres.inst_count ? gres.inst_count - 1 : 0;
    ctx.pspec.clusters = ctx.cfg.clustersPerRing();
    ctx.pspec.pes_per_cluster = ctx.cfg.pes_per_cluster;

    // Fan trials out across host workers. Every per-trial random
    // choice derives from (spec.seed, trial index) inside runTrial, and
    // parallelMap returns records in trial order, so the report is
    // byte-identical for any spec.jobs.
    report.trials = host::parallelMap<TrialRecord>(
        spec.jobs, spec.trials,
        [&ctx](size_t t) {
            return runTrial(ctx, static_cast<unsigned>(t));
        },
        spec.cancel);

    // Order-dependent aggregation stays on the merging thread. A
    // cancelled campaign leaves default-constructed (or boundary-
    // skipped) records behind; those count only as skipped.
    for (const TrialRecord &rec : report.trials) {
        if (!rec.executed) {
            ++report.skipped;
            continue;
        }
        tallyOutcome(report.total, rec);
        tallyOutcome(
            report.by_site[static_cast<unsigned>(rec.site)], rec);
    }
    return report;
}

std::string
CampaignReport::renderJson() const
{
    std::string out = "{\n";
    out += detail::vformat(
        "  \"workload\": \"%s\",\n  \"config\": \"%s\",\n"
        "  \"seed\": %llu,\n  \"sites\": \"%s\",\n"
        "  \"parity\": %s,\n  \"lockstep\": %s,\n",
        jsonEscape(spec.workload).c_str(),
        jsonEscape(spec.config.name).c_str(),
        static_cast<unsigned long long>(spec.seed),
        siteMaskNames(spec.site_mask).c_str(),
        spec.parity ? "true" : "false",
        spec.lockstep ? "true" : "false");
    out += detail::vformat(
        "  \"baseline\": {\"cycles\": %llu, \"instructions\": %llu},\n",
        static_cast<unsigned long long>(baseline_cycles),
        static_cast<unsigned long long>(baseline_insts));
    out += "  \"summary\": " + summaryJson(total) + ",\n";
    out += detail::vformat(
        "  \"skipped\": %llu,\n",
        static_cast<unsigned long long>(skipped));
    out += "  \"by_site\": {";
    bool first = true;
    for (unsigned s = 0; s < static_cast<unsigned>(FaultSite::Count);
         ++s) {
        if (by_site[s].trials == 0)
            continue;
        out += detail::vformat(
            "%s\n    \"%s\": ", first ? "" : ",",
            siteName(static_cast<FaultSite>(s)));
        out += summaryJson(by_site[s]);
        first = false;
    }
    out += "\n  },\n  \"trials\": [";
    for (size_t i = 0; i < trials.size(); ++i) {
        const TrialRecord &r = trials[i];
        if (!r.executed) {
            out += detail::vformat(
                "%s\n    {\"index\": %zu, \"skipped\": true}",
                i ? "," : "", i);
            continue;
        }
        out += detail::vformat(
            "%s\n    {\"index\": %u, \"seed\": %llu, \"site\": \"%s\", "
            "\"planned\": \"%s\", \"observed\": \"%s\", "
            "\"fired\": %s, \"outcome\": \"%s\", \"detector\": \"%s\", "
            "\"recovered\": %s, \"cycles\": %llu, "
            "\"instructions\": %llu, \"recoveries\": %llu, "
            "\"clusters_disabled\": %llu, \"host_timed_out\": %s}",
            i ? "," : "", r.index,
            static_cast<unsigned long long>(r.seed), siteName(r.site),
            jsonEscape(r.planned).c_str(),
            jsonEscape(r.observed).c_str(), r.fired ? "true" : "false",
            outcomeName(r.outcome), r.detector.c_str(),
            r.recovered ? "true" : "false",
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(r.instructions),
            static_cast<unsigned long long>(r.recoveries),
            static_cast<unsigned long long>(r.clusters_disabled),
            r.host_timed_out ? "true" : "false");
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace diag::fault
