/**
 * @file
 * Checkpoint/rollback support for fault recovery. The ring snapshots
 * architectural thread state at every activation boundary (the natural
 * cluster-granular commit point, paper §4.3); a memory undo log records
 * old values at store-commit time so a detected-divergent activation
 * can be rolled back and re-executed on the surviving ring.
 */
#ifndef DIAG_FAULT_CHECKPOINT_HPP
#define DIAG_FAULT_CHECKPOINT_HPP

#include <deque>
#include <optional>
#include <vector>

#include "common/sparse_mem.hpp"
#include "common/types.hpp"
#include "diag/lanes.hpp"
#include "sim/mem_order.hpp"

namespace diag::fault
{

/** One store's overwritten bytes, for rollback. */
struct MemWrite
{
    Addr addr = 0;
    u8 size = 0;
    u32 old_value = 0;
};

/**
 * Undo log for stores committed since the last checkpoint. Entries are
 * recorded in commit order and rolled back in reverse, so overlapping
 * stores restore the true pre-activation bytes.
 */
class MemUndoLog
{
  public:
    void
    record(Addr addr, u8 size, u32 old_value)
    {
        writes_.push_back({addr, size, old_value});
    }

    /** Restore @p mem to its state at the last clear(). */
    void
    rollback(SparseMemory &mem)
    {
        for (auto it = writes_.rbegin(); it != writes_.rend(); ++it)
            mem.write(it->addr, it->old_value, it->size);
        writes_.clear();
    }

    void clear() { writes_.clear(); }
    size_t size() const { return writes_.size(); }

  private:
    std::vector<MemWrite> writes_;
};

/**
 * Architectural thread state at an activation boundary. Everything a
 * rolled-back thread needs to re-enter the ring as if the faulty
 * activation never ran; the memory image itself is restored separately
 * through the MemUndoLog.
 */
struct ThreadCheckpoint
{
    bool valid = false;
    Addr pc = 0;
    Cycle pc_enter = 0;
    Cycle min_start = 0;
    u64 retired = 0;
    core::LaneFile regs{};
    std::deque<Cycle> inflight;  //!< outstanding-activation window
    std::optional<sim::StoreTracker> mem_lanes; //!< memory-lane CAM
};

} // namespace diag::fault

#endif // DIAG_FAULT_CHECKPOINT_HPP
