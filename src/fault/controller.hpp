/**
 * @file
 * FaultController: interprets a FaultPlan against the running model and
 * hosts the detection machinery (lane parity sweep, golden-lockstep
 * oracle, store undo log, cluster strike counting). The execution
 * engines hold a nullable pointer to one of these; every hook is a
 * single null check when no controller is attached, so the fault
 * subsystem is zero-cost when off.
 */
#ifndef DIAG_FAULT_CONTROLLER_HPP
#define DIAG_FAULT_CONTROLLER_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/sparse_mem.hpp"
#include "diag/lanes.hpp"
#include "fault/checkpoint.hpp"
#include "fault/lockstep.hpp"
#include "fault/plan.hpp"
#include "mem/hierarchy.hpp"
#include "sim/mem_order.hpp"

namespace diag::fault
{

/** Detection/recovery knobs. */
struct DetectConfig
{
    bool parity = false;   //!< per-lane parity bits on the lane file
    bool lockstep = false; //!< golden retirement oracle (needs oracle)
    Cycle recovery_penalty = 64; //!< cycles charged per rollback
    unsigned max_recoveries = 8; //!< rollback budget before abort
    unsigned strikes_to_disable = 2; //!< rollbacks blamed on a cluster
                                     //!< before it is taken offline
};

/** Running detection/recovery counters. */
struct FaultTally
{
    u64 injected = 0;
    u64 parity_detections = 0;
    u64 lockstep_detections = 0;
    u64 recoveries = 0;
    u64 clusters_disabled = 0;
};

/** Per-event outcome, for campaign reports. */
struct EventLog
{
    bool fired = false;
    std::string note; //!< what the event actually hit (resolved picks)
};

/** Interprets a plan and tracks detection state for one run. */
class FaultController
{
  public:
    FaultController(FaultPlan plan, const DetectConfig &detect);

    /** Attach the golden oracle (enables lockstep checking). */
    void
    attachOracle(std::unique_ptr<LockstepOracle> oracle)
    {
        oracle_ = std::move(oracle);
    }

    bool parityEnabled() const { return detect_.parity; }
    bool lockstepEnabled() const
    {
        return detect_.lockstep && oracle_ != nullptr;
    }
    const DetectConfig &detect() const { return detect_; }

    /**
     * Activation-boundary hook: applies every due boundary-scoped event
     * (lane flips, memory-lane CAM flips, memory data flips, cache tag
     * flips) and arms the per-instruction ones (PE result/stuck).
     */
    void onBoundary(core::LaneFile &regs, sim::StoreTracker &mem_lanes,
                    SparseMemory &mem, mem::MemHierarchy &mh,
                    u64 retired);

    /**
     * Parity sweep over the lane file; returns the first lane whose
     * stored parity disagrees with its value, or -1 when clean.
     */
    int paritySweep(const core::LaneFile &regs) const;

    /** PE result-bus hook (hot path: one branch when nothing armed). */
    void
    onPeResult(unsigned cluster, unsigned pe, u32 &value)
    {
        if (pe_armed_)
            applyPeFault(cluster, pe, value);
    }

    /** Store-commit hook: log the overwritten bytes for rollback. */
    void
    onStoreCommit(Addr addr, u8 size, u32 old_value)
    {
        undo_.record(addr, size, old_value);
    }

    /**
     * Retirement hook: lockstep-compare one instruction. On divergence
     * the controller latches a pending-divergence flag the ring acts on
     * at the next boundary (hardware would raise a precise exception).
     */
    void
    onRetire(const RetireRecord &rec)
    {
        if (!lockstepEnabled() || divergence_pending_)
            return;
        if (!oracle_->check(rec))
            divergence_pending_ = true;
    }

    void
    oracleMark()
    {
        if (oracle_)
            oracle_->mark();
    }

    void
    oracleRewind()
    {
        if (oracle_)
            oracle_->rewind();
    }

    bool divergencePending() const { return divergence_pending_; }

    const std::string &
    divergenceReason() const
    {
        static const std::string none;
        return oracle_ ? oracle_->divergence() : none;
    }

    void clearDivergence() { divergence_pending_ = false; }

    /**
     * Blame a rollback on @p cluster. Returns true when the cluster
     * has accumulated enough strikes that it should be disabled.
     */
    bool strike(unsigned cluster);

    void noteRecovery() { ++tally_.recoveries; }
    void noteClusterDisabled() { ++tally_.clusters_disabled; }
    void noteParityDetection() { ++tally_.parity_detections; }
    void noteLockstepDetection() { ++tally_.lockstep_detections; }

    bool recoveryBudgetLeft() const
    {
        return tally_.recoveries < detect_.max_recoveries;
    }

    const FaultTally &tally() const { return tally_; }
    MemUndoLog &undoLog() { return undo_; }
    const FaultPlan &plan() const { return plan_; }
    const std::vector<EventLog> &eventLog() const { return events_; }

    /** True once every planned event has fired. */
    bool allFired() const;

  private:
    void applyBoundaryEvent(size_t idx, core::LaneFile &regs,
                            sim::StoreTracker &mem_lanes,
                            SparseMemory &mem, mem::MemHierarchy &mh);
    void applyPeFault(unsigned cluster, unsigned pe, u32 &value);

    FaultPlan plan_;
    DetectConfig detect_;
    std::vector<EventLog> events_; //!< parallel to plan_.events
    std::vector<u8> status_;       //!< per-event lifecycle state
    std::unique_ptr<LockstepOracle> oracle_;
    MemUndoLog undo_;
    FaultTally tally_;
    bool divergence_pending_ = false;
    bool pe_armed_ = false; //!< any PeResult/PeStuck event active
    std::vector<unsigned> strikes_; //!< per-cluster rollback blame
};

} // namespace diag::fault

#endif // DIAG_FAULT_CONTROLLER_HPP
