#include "fault/lockstep.hpp"

#include "common/log.hpp"

namespace diag::fault
{

const sim::StepInfo &
LockstepOracle::next()
{
    if (pos_ == replay_.size())
        replay_.push_back(gold_.step());
    return replay_[pos_++];
}

bool
LockstepOracle::check(const RetireRecord &rec)
{
    const sim::StepInfo &g = next();
    ++compared_;

    auto diverge = [&](const std::string &what) {
        divergence_ = detail::vformat(
            "lockstep divergence at pc 0x%x (golden pc 0x%x): %s",
            rec.pc, g.pc, what.c_str());
        return false;
    };

    if (g.pc != rec.pc)
        return diverge("retired PC differs");
    if (g.faulted)
        return diverge("golden faulted here");
    if (g.wrote_reg != rec.wrote_reg ||
        (rec.wrote_reg &&
         (g.rd != rec.rd || g.rd_value != rec.rd_value)))
        return diverge(detail::vformat(
            "rd x%u=0x%x vs golden x%u=0x%x", rec.rd, rec.rd_value,
            g.rd, g.rd_value));
    const bool g_store = g.inst.isStore();
    if (g_store != rec.is_store ||
        (rec.is_store && (g.mem_addr != rec.store_addr ||
                          g.mem_value != rec.store_value)))
        return diverge(detail::vformat(
            "store [0x%x]=0x%x vs golden [0x%x]=0x%x", rec.store_addr,
            rec.store_value, g.mem_addr, g.mem_value));
    return true;
}

} // namespace diag::fault
