/**
 * @file
 * Forward-progress watchdog: converts livelocks and runaway executions
 * into structured aborts instead of spinning forever. Two independent
 * tripwires — an absolute cycle ceiling (DiagConfig::max_cycles) and a
 * stagnation counter that fires when the retired-instruction count
 * stops advancing across many activation boundaries.
 */
#ifndef DIAG_FAULT_WATCHDOG_HPP
#define DIAG_FAULT_WATCHDOG_HPP

#include <string>

#include "common/log.hpp"
#include "common/types.hpp"

namespace diag::fault
{

/** Per-thread forward-progress monitor. */
class Watchdog
{
  public:
    explicit Watchdog(u64 max_cycles, u64 stall_limit = 4096)
        : max_cycles_(max_cycles), stall_limit_(stall_limit)
    {}

    /** Check the cycle ceiling; true means "abort now". */
    bool
    onCycle(Cycle now)
    {
        if (max_cycles_ != 0 && now > max_cycles_) {
            reason_ = detail::vformat(
                "watchdog: cycle ceiling exceeded (%llu > max_cycles "
                "%llu)",
                static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(max_cycles_));
            return true;
        }
        return false;
    }

    /**
     * Feed the retirement counter at an activation boundary; true when
     * it has not advanced for stall_limit consecutive observations.
     */
    bool
    onProgress(u64 retired)
    {
        if (retired != last_retired_) {
            last_retired_ = retired;
            stalled_ = 0;
            return false;
        }
        if (++stalled_ < stall_limit_)
            return false;
        reason_ = detail::vformat(
            "watchdog: no forward progress for %llu activation "
            "boundaries (stuck at %llu retired)",
            static_cast<unsigned long long>(stalled_),
            static_cast<unsigned long long>(retired));
        return true;
    }

    const std::string &reason() const { return reason_; }

  private:
    u64 max_cycles_;
    u64 stall_limit_;
    u64 last_retired_ = ~u64{0};
    u64 stalled_ = 0;
    std::string reason_;
};

} // namespace diag::fault

#endif // DIAG_FAULT_WATCHDOG_HPP
