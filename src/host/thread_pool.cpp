#include "host/thread_pool.hpp"

namespace diag::host
{

namespace
{

/** Which pool (if any) owns the current thread, and which of its
 *  queues nested submissions should land on. */
thread_local ThreadPool *tl_pool = nullptr;
thread_local unsigned tl_queue = 0;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    queues_.reserve(threads + 1);
    for (unsigned q = 0; q < threads + 1; ++q)
        queues_.push_back(std::make_unique<TaskQueue>());
    workers_.reserve(threads);
    for (unsigned w = 0; w < threads; ++w)
        workers_.emplace_back([this, w]() { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_release);
    {
        // Empty critical section: a worker between its predicate check
        // and cv_.wait() now either sees stop_ or receives the notify.
        std::lock_guard<std::mutex> lk(sleep_m_);
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    // A well-behaved caller waited on every future, but if tasks are
    // still queued (e.g. unwinding after an exception), run them here
    // rather than dropping their promises.
    while (runOne()) {
    }
}

unsigned
ThreadPool::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
ThreadPool::enqueue(std::function<void()> fn)
{
    const unsigned qi = (tl_pool == this) ? tl_queue : kInjector;
    {
        std::lock_guard<std::mutex> lk(queues_[qi]->m);
        queues_[qi]->tasks.push_back(std::move(fn));
    }
    queued_.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lk(sleep_m_);
    }
    cv_.notify_one();
}

bool
ThreadPool::take(unsigned self, std::function<void()> &out)
{
    if (queued_.load(std::memory_order_acquire) == 0)
        return false;
    // Own queue first. Workers pop their deque newest-first (LIFO:
    // nested fan-out stays on the worker that created it while it is
    // hot); the injector's owner is whatever foreign thread is helping
    // and drains oldest-first, so a single-worker pool preserves
    // external submission order.
    {
        TaskQueue &q = *queues_[self];
        std::lock_guard<std::mutex> lk(q.m);
        if (!q.tasks.empty()) {
            if (self == kInjector) {
                out = std::move(q.tasks.front());
                q.tasks.pop_front();
            } else {
                out = std::move(q.tasks.back());
                q.tasks.pop_back();
            }
            queued_.fetch_sub(1, std::memory_order_release);
            return true;
        }
    }
    // Steal oldest-first from the other queues, starting just past our
    // own slot so thieves spread instead of all hitting queue 0.
    const unsigned n = static_cast<unsigned>(queues_.size());
    for (unsigned k = 1; k <= n; ++k) {
        const unsigned qi = (self + k) % n;
        if (qi == self)
            continue;
        TaskQueue &q = *queues_[qi];
        std::lock_guard<std::mutex> lk(q.m);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            queued_.fetch_sub(1, std::memory_order_release);
            return true;
        }
    }
    return false;
}

bool
ThreadPool::runOne()
{
    // From a foreign thread, behave like the injector owner (steal
    // FIFO from everywhere); from one of our workers, keep its queue.
    const unsigned self = (tl_pool == this) ? tl_queue : kInjector;
    std::function<void()> task;
    if (!take(self, task))
        return false;
    task();
    return true;
}

void
ThreadPool::workerLoop(unsigned index)
{
    tl_pool = this;
    tl_queue = index + 1;
    for (;;) {
        std::function<void()> task;
        if (take(tl_queue, task)) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lk(sleep_m_);
        // The 1 ms timeout bounds any lost-wakeup window; tasks here
        // are whole simulator runs, so the poll cost is noise.
        cv_.wait_for(lk, std::chrono::milliseconds(1), [this]() {
            return stop_.load(std::memory_order_acquire) ||
                   queued_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_acquire) &&
            queued_.load(std::memory_order_acquire) == 0)
            return;
    }
}

} // namespace diag::host
