/**
 * @file
 * Deterministic fan-out/merge on top of host::ThreadPool.
 *
 * parallelMap() is the result-merge layer every multi-run driver
 * (campaigns, validation sweeps, figure benches) goes through: task i
 * writes only slot i of the output, so the merged vector is in task
 * order no matter which worker ran what when. Combined with per-task
 * seeding by index, a driver's output is byte-identical for any job
 * count — `--jobs N` may only change wall-clock time.
 */
#ifndef DIAG_HOST_PARALLEL_HPP
#define DIAG_HOST_PARALLEL_HPP

#include <cstddef>
#include <future>
#include <utility>
#include <vector>

#include "host/cancel.hpp"
#include "host/thread_pool.hpp"

namespace diag::host
{

/** Resolve a --jobs request: 0 means "one per hardware thread". */
inline unsigned
resolveJobs(unsigned requested)
{
    return requested ? requested : ThreadPool::hardwareJobs();
}

/**
 * Evaluate fn(0..n-1) on up to @p jobs host threads and return the
 * results indexed by input. jobs==1 (or n<=1) runs inline with no
 * threads at all — the serial reference path. Otherwise the calling
 * thread participates as one of the @p jobs executors. If any call
 * throws, every task still settles, then the exception of the
 * lowest-indexed failing task is rethrown.
 *
 * @p cancel, when non-null, is polled before each task starts: once
 * it fires, tasks that have not begun are skipped and their output
 * slots stay default-constructed (tasks already running finish — the
 * cancellation is cooperative; bodies that want to stop mid-task must
 * poll the token themselves). Skipping is a pure subset operation:
 * slots that did run hold exactly the bytes an uncancelled run would
 * have produced, so callers can tell skipped from executed by any
 * task-set marker of their own (an index, a nonzero field).
 */
template <class T, class Fn>
std::vector<T>
parallelMap(unsigned jobs, size_t n, Fn fn,
            const CancelToken *cancel = nullptr)
{
    std::vector<T> out(n);
    if (resolveJobs(jobs) <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i) {
            if (cancel && cancel->stopRequested())
                break;
            out[i] = fn(i);
        }
        return out;
    }
    const size_t executors =
        std::min<size_t>(resolveJobs(jobs), n);
    ThreadPool pool(static_cast<unsigned>(executors) - 1);
    std::vector<std::future<void>> pending;
    pending.reserve(n);
    for (size_t i = 0; i < n; ++i)
        pending.push_back(pool.submit([&out, &fn, i, cancel]() {
            if (cancel && cancel->stopRequested())
                return;
            out[i] = fn(i);
        }));
    // Settle everything first (helping), then collect exceptions in
    // index order; rethrowing early would unwind `out` under the
    // feet of still-running tasks.
    using namespace std::chrono_literals;
    for (std::future<void> &f : pending) {
        while (f.wait_for(0s) != std::future_status::ready) {
            if (!pool.runOne())
                f.wait_for(1ms);
        }
    }
    for (std::future<void> &f : pending)
        f.get();
    return out;
}

/** parallelMap for side-effect-only bodies. */
template <class Fn>
void
parallelFor(unsigned jobs, size_t n, Fn fn)
{
    struct Unit
    {
    };
    parallelMap<Unit>(jobs, n, [&fn](size_t i) {
        fn(i);
        return Unit{};
    });
}

} // namespace diag::host

#endif // DIAG_HOST_PARALLEL_HPP
