/**
 * @file
 * Cooperative cancellation for host-side execution: a CancelToken is a
 * small shared flag (plus an optional wall-clock deadline) that long
 * simulator loops poll at activation boundaries and fan-out drivers
 * poll between tasks. Cancellation is *host* policy — it never alters
 * any simulated cycle; a run that observes its token simply stops
 * early with a structured timeout (RunStats::timed_out and a
 * stop_reason naming the token's state).
 *
 * Two stop sources share one token so every polling site stays a
 * single check:
 *  - cancel(): an explicit request (a client abandoned the request,
 *    a service is shutting down);
 *  - a deadline: a steady-clock instant after which the token reports
 *    expired — the wall-clock watchdog that keeps one pathological
 *    seed from wedging a CI job or a service worker.
 *
 * Tokens are copyable handles to shared state; all members are safe to
 * call from any thread. The cancelled flag is a cheap atomic load;
 * expired() reads the steady clock, so hot loops rate-limit it (the
 * ring checks the flag every activation but the clock only every 64th,
 * see Ring::runThread).
 */
#ifndef DIAG_HOST_CANCEL_HPP
#define DIAG_HOST_CANCEL_HPP

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "common/types.hpp"

namespace diag::host
{

class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    CancelToken() : st_(std::make_shared<State>()) {}

    /** Token that is already expired — every poll site stops at its
     *  first check. The deterministic test hook for watchdog paths. */
    static CancelToken
    expiredToken()
    {
        CancelToken t;
        t.setDeadline(Clock::now() - std::chrono::seconds(1));
        return t;
    }

    /** Token that expires @p ms milliseconds from now (0 = already). */
    static CancelToken
    withTimeout(u64 ms)
    {
        CancelToken t;
        t.setDeadline(Clock::now() + std::chrono::milliseconds(ms));
        return t;
    }

    /** Request cancellation; idempotent, visible to every holder. */
    void
    cancel()
    {
        st_->cancelled.store(true, std::memory_order_release);
    }

    /** Arm (or re-arm) the wall-clock deadline. */
    void
    setDeadline(Clock::time_point when)
    {
        st_->deadline_ns.store(
            when.time_since_epoch().count(),
            std::memory_order_release);
    }

    /** Explicitly cancelled (does not consult the clock). */
    bool
    cancelled() const
    {
        return st_->cancelled.load(std::memory_order_acquire);
    }

    /** The armed deadline has passed (false when none is armed). */
    bool
    expired() const
    {
        const auto ns =
            st_->deadline_ns.load(std::memory_order_acquire);
        return ns != kNoDeadline &&
               Clock::now().time_since_epoch().count() >= ns;
    }

    /** Cancelled or expired — the one check poll sites make. */
    bool stopRequested() const { return cancelled() || expired(); }

    /** Why the token fired, for stop_reason strings. */
    const char *
    reason() const
    {
        return cancelled() ? "cancelled" : "host deadline exceeded";
    }

  private:
    static constexpr long long kNoDeadline =
        std::numeric_limits<long long>::max();

    struct State
    {
        std::atomic<bool> cancelled{false};
        std::atomic<long long> deadline_ns{kNoDeadline};
    };

    std::shared_ptr<State> st_;
};

} // namespace diag::host

#endif // DIAG_HOST_CANCEL_HPP
