/**
 * @file
 * Host-side work-stealing thread pool for fan-out drivers (fault
 * campaigns, validation sweeps, figure benches). This is *host*
 * parallelism — it never touches simulated time; each task owns its
 * whole simulator instance and the pool only distributes tasks across
 * host cores.
 *
 * Design:
 *  - one FIFO injector queue for external submissions plus one deque
 *    per worker; owners pop their own deque LIFO (good locality for
 *    nested fan-out), thieves and the injector drain FIFO;
 *  - a single-worker pool therefore executes externally submitted
 *    tasks in submission order;
 *  - tasks may submit nested tasks; a task (or the submitting caller)
 *    that needs a result must block through ThreadPool::wait(), which
 *    keeps executing pending tasks instead of sleeping, so nested
 *    waits cannot deadlock the pool;
 *  - exceptions thrown by a task are captured in its std::future and
 *    rethrown at wait()/get() on the waiting thread.
 *
 * Determinism contract: the pool guarantees nothing about execution
 * order across workers. Callers that need reproducible output must
 * (a) derive any per-task randomness from the task *index*, never
 * from shared mutable state, and (b) merge results indexed by task,
 * as host::parallelMap() does.
 */
#ifndef DIAG_HOST_THREAD_POOL_HPP
#define DIAG_HOST_THREAD_POOL_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace diag::host
{

class ThreadPool
{
  public:
    /**
     * Spawn @p threads worker threads (0 is valid: tasks then only run
     * inside wait()/runOne() on the calling thread).
     */
    explicit ThreadPool(unsigned threads);

    /** Drains every remaining task (on this thread if the workers are
     *  already gone), then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of spawned worker threads. */
    unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Schedule @p fn. From a worker thread the task lands on that
     * worker's own deque (LIFO); from any other thread it lands on the
     * FIFO injector queue. The future carries @p fn's result or its
     * exception. Wait through ThreadPool::wait(), not future::get(),
     * whenever the waiting thread might itself be a pool worker.
     */
    template <class Fn, class R = std::invoke_result_t<Fn &>>
    std::future<R>
    submit(Fn fn)
    {
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> fut = task->get_future();
        enqueue([task]() { (*task)(); });
        return fut;
    }

    /**
     * Bounded submit with explicit backpressure: schedule @p fn only
     * if fewer than @p max_pending tasks are enqueued-but-unstarted,
     * else return nullopt and run nothing. This is the saturation
     * probe service layers use to reject instead of buffering without
     * limit; the count is advisory (concurrent submitters may briefly
     * overshoot by the number of racing threads), which is fine for a
     * watermark but not for an exact cap.
     */
    template <class Fn, class R = std::invoke_result_t<Fn &>>
    std::optional<std::future<R>>
    trySubmit(Fn fn, size_t max_pending)
    {
        if (pending() >= max_pending)
            return std::nullopt;
        return submit(std::move(fn));
    }

    /** Tasks enqueued but not yet started (running tasks excluded). */
    size_t
    pending() const
    {
        return queued_.load(std::memory_order_acquire);
    }

    /**
     * Block until @p fut is ready, executing pending pool tasks on
     * this thread in the meantime; then return the result (rethrowing
     * the task's exception if it threw).
     */
    template <class R>
    R
    wait(std::future<R> fut)
    {
        using namespace std::chrono_literals;
        while (fut.wait_for(0s) != std::future_status::ready) {
            if (!runOne())
                fut.wait_for(1ms);
        }
        return fut.get();
    }

    /** Execute one pending task on the calling thread, if any. */
    bool runOne();

    /** max(1, std::thread::hardware_concurrency()). */
    static unsigned hardwareJobs();

  private:
    struct TaskQueue
    {
        std::mutex m;
        std::deque<std::function<void()>> tasks;
    };

    void enqueue(std::function<void()> fn);
    /** Dequeue for the queue owner @p self (kInjector = no own deque):
     *  own deque back first, then steal round-robin from the front of
     *  the others (injector included). */
    bool take(unsigned self, std::function<void()> &out);
    void workerLoop(unsigned index);

    static constexpr unsigned kInjector = 0;

    /** queues_[0] is the injector; queues_[1 + i] belongs to worker i. */
    std::vector<std::unique_ptr<TaskQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex sleep_m_;
    std::condition_variable cv_;
    std::atomic<bool> stop_{false};
    /** Tasks enqueued but not yet dequeued (wake-up predicate only;
     *  completion is tracked through the futures). */
    std::atomic<size_t> queued_{0};
};

} // namespace diag::host

#endif // DIAG_HOST_THREAD_POOL_HPP
