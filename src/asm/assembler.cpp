#include "asm/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <vector>

#include "asm/regnames.hpp"
#include "common/bits.hpp"
#include "isa/encoder.hpp"

namespace diag::assembler
{

namespace
{

using namespace diag::isa::enc;

// ---------------------------------------------------------------------
// Statement representation
// ---------------------------------------------------------------------

enum class StmtKind : u8 { Instruction, Directive };

struct Stmt
{
    int line = 0;
    StmtKind kind = StmtKind::Instruction;
    std::string mnemonic;            // lowercase
    std::vector<std::string> ops;    // trimmed operand strings
    Addr addr = 0;                   // assigned in pass 1
    u32 size = 0;                    // bytes emitted (fixed in pass 1)
};

struct Section
{
    Addr lc;  // location counter
};

// ---------------------------------------------------------------------
// Small string helpers
// ---------------------------------------------------------------------

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
}

/** Strip comments (#, //, ;) outside of string literals. */
std::string
stripComment(const std::string &line)
{
    bool in_str = false;
    for (size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"')
            in_str = !in_str;
        if (in_str)
            continue;
        if (c == '#' || c == ';')
            return line.substr(0, i);
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
            return line.substr(0, i);
    }
    return line;
}

/** Split operands on commas not inside parentheses or strings. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    int depth = 0;
    bool in_str = false;
    std::string cur;
    for (char c : s) {
        if (c == '"')
            in_str = !in_str;
        if (!in_str) {
            if (c == '(')
                ++depth;
            else if (c == ')')
                --depth;
            else if (c == ',' && depth == 0) {
                out.push_back(trim(cur));
                cur.clear();
                continue;
            }
        }
        cur += c;
    }
    const std::string last = trim(cur);
    if (!last.empty() || !out.empty())
        out.push_back(last);
    return out;
}

// ---------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------

class SymbolTable
{
  public:
    void define(const std::string &name, i64 value)
    {
        table_[name] = value;
    }

    std::optional<i64>
    lookup(const std::string &name) const
    {
        auto it = table_.find(name);
        if (it == table_.end())
            return std::nullopt;
        return it->second;
    }

    bool has(const std::string &name) const
    {
        return table_.count(name) != 0;
    }

    const std::map<std::string, i64> &all() const { return table_; }

  private:
    std::map<std::string, i64> table_;
};

/** Recursive-descent evaluator for `[+-] term ([+-] term)*`. */
class ExprEval
{
  public:
    ExprEval(const std::string &text, const SymbolTable &syms, int line)
        : text_(text), syms_(syms), line_(line)
    {}

    /** Evaluate; throws AsmError on syntax errors or undefined syms. */
    i64
    eval()
    {
        pos_ = 0;
        const i64 v = expr();
        skipWs();
        if (pos_ != text_.size())
            throw AsmError(line_, "trailing junk in expression '" +
                                      text_ + "'");
        return v;
    }

    /** Evaluate, returning nullopt when a symbol is undefined. */
    std::optional<i64>
    tryEval()
    {
        try {
            return eval();
        } catch (const AsmError &) {
            return std::nullopt;
        }
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    i64
    expr()
    {
        skipWs();
        i64 value = 0;
        bool neg = false;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+')) {
            neg = text_[pos_] == '-';
            ++pos_;
        }
        value = neg ? -term() : term();
        for (;;) {
            skipWs();
            if (pos_ >= text_.size())
                break;
            const char c = text_[pos_];
            if (c == '+') {
                ++pos_;
                value += term();
            } else if (c == '-') {
                ++pos_;
                value -= term();
            } else {
                break;
            }
        }
        return value;
    }

    i64
    term()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw AsmError(line_, "expected operand in expression");
        const char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            char *end = nullptr;
            const i64 v = std::strtoll(text_.c_str() + pos_, &end, 0);
            pos_ = static_cast<size_t>(end - text_.c_str());
            return v;
        }
        if (c == '\'') {  // character literal
            if (pos_ + 2 >= text_.size() || text_[pos_ + 2] != '\'')
                throw AsmError(line_, "bad character literal");
            const i64 v = static_cast<unsigned char>(text_[pos_ + 1]);
            pos_ += 3;
            return v;
        }
        if (isIdentChar(c) && !std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = pos_;
            while (pos_ < text_.size() && isIdentChar(text_[pos_]))
                ++pos_;
            const std::string name = text_.substr(start, pos_ - start);
            const auto v = syms_.lookup(name);
            if (!v)
                throw AsmError(line_, "undefined symbol '" + name + "'");
            return *v;
        }
        throw AsmError(line_, std::string("unexpected character '") + c +
                                  "' in expression");
    }

    const std::string &text_;
    const SymbolTable &syms_;
    int line_;
    size_t pos_ = 0;
};

/** %hi/%lo relocation split (RISC-V rules: hi compensates lo's sign). */
u32 relHi(i64 value) { return (static_cast<u32>(value) + 0x800u) >> 12; }
i32
relLo(i64 value)
{
    return static_cast<i32>(sext(static_cast<u32>(value) & 0xfff, 12));
}

// ---------------------------------------------------------------------
// Encoding tables
// ---------------------------------------------------------------------

struct RSpec { u32 f3, f7; };
struct ISpec { u32 opc, f3; };
struct FSpec { u32 f3, f7; };

const std::map<std::string, RSpec> kRType = {
    {"add", {0, 0x00}},  {"sub", {0, 0x20}},  {"sll", {1, 0x00}},
    {"slt", {2, 0x00}},  {"sltu", {3, 0x00}}, {"xor", {4, 0x00}},
    {"srl", {5, 0x00}},  {"sra", {5, 0x20}},  {"or", {6, 0x00}},
    {"and", {7, 0x00}},  {"mul", {0, 0x01}},  {"mulh", {1, 0x01}},
    {"mulhsu", {2, 0x01}}, {"mulhu", {3, 0x01}}, {"div", {4, 0x01}},
    {"divu", {5, 0x01}}, {"rem", {6, 0x01}},  {"remu", {7, 0x01}},
};

const std::map<std::string, u32> kIAlu = {
    {"addi", 0}, {"slti", 2}, {"sltiu", 3}, {"xori", 4}, {"ori", 6},
    {"andi", 7},
};

const std::map<std::string, RSpec> kShiftImm = {
    {"slli", {1, 0x00}}, {"srli", {5, 0x00}}, {"srai", {5, 0x20}},
};

const std::map<std::string, ISpec> kLoads = {
    {"lb", {0x03, 0}}, {"lh", {0x03, 1}}, {"lw", {0x03, 2}},
    {"lbu", {0x03, 4}}, {"lhu", {0x03, 5}}, {"flw", {0x07, 2}},
};

const std::map<std::string, ISpec> kStores = {
    {"sb", {0x23, 0}}, {"sh", {0x23, 1}}, {"sw", {0x23, 2}},
    {"fsw", {0x27, 2}},
};

const std::map<std::string, u32> kBranches = {
    {"beq", 0}, {"bne", 1}, {"blt", 4}, {"bge", 5}, {"bltu", 6},
    {"bgeu", 7},
};

// mnemonic -> {swap operands, base mnemonic}
const std::map<std::string, std::pair<bool, std::string>> kBranchAliases = {
    {"bgt", {true, "blt"}},  {"ble", {true, "bge"}},
    {"bgtu", {true, "bltu"}}, {"bleu", {true, "bgeu"}},
};

// fp3 register-register ops: f7 and f3 fields
const std::map<std::string, FSpec> kFpRR = {
    {"fadd.s", {7, 0x00}},   {"fsub.s", {7, 0x04}},
    {"fmul.s", {7, 0x08}},   {"fdiv.s", {7, 0x0c}},
    {"fsgnj.s", {0, 0x10}},  {"fsgnjn.s", {1, 0x10}},
    {"fsgnjx.s", {2, 0x10}}, {"fmin.s", {0, 0x14}},
    {"fmax.s", {1, 0x14}},
};

// fp compare ops write an integer register
const std::map<std::string, u32> kFpCmp = {
    {"fle.s", 0}, {"flt.s", 1}, {"feq.s", 2},
};

const std::map<std::string, u32> kFma = {
    {"fmadd.s", 0x43}, {"fmsub.s", 0x47}, {"fnmsub.s", 0x4b},
    {"fnmadd.s", 0x4f},
};

// ---------------------------------------------------------------------
// The assembler proper
// ---------------------------------------------------------------------

class Assembler
{
  public:
    Program
    run(const std::string &source)
    {
        parse(source);
        passOne();
        passTwo();
        finalize();
        return std::move(prog_);
    }

  private:
    // ---- parsing ----------------------------------------------------

    void
    parse(const std::string &source)
    {
        int line_no = 0;
        size_t pos = 0;
        while (pos <= source.size()) {
            const size_t nl = source.find('\n', pos);
            std::string line = source.substr(
                pos, nl == std::string::npos ? std::string::npos
                                             : nl - pos);
            pos = nl == std::string::npos ? source.size() + 1 : nl + 1;
            ++line_no;
            line = trim(stripComment(line));
            // Peel off any leading `label:` definitions.
            for (;;) {
                const size_t colon = line.find(':');
                if (colon == std::string::npos)
                    break;
                const std::string head = trim(line.substr(0, colon));
                if (head.empty() || !std::all_of(head.begin(), head.end(),
                                                 isIdentChar))
                    break;
                labels_.push_back({line_no, head,
                                   static_cast<int>(stmts_.size())});
                line = trim(line.substr(colon + 1));
            }
            if (line.empty())
                continue;
            Stmt st;
            st.line = line_no;
            size_t sp = 0;
            while (sp < line.size() &&
                   !std::isspace(static_cast<unsigned char>(line[sp])))
                ++sp;
            st.mnemonic = lower(line.substr(0, sp));
            st.ops = splitOperands(trim(line.substr(sp)));
            if (st.ops.size() == 1 && st.ops[0].empty())
                st.ops.clear();
            st.kind = st.mnemonic[0] == '.' ? StmtKind::Directive
                                            : StmtKind::Instruction;
            stmts_.push_back(std::move(st));
        }
    }

    // ---- pass 1: addresses and sizes --------------------------------

    void
    passOne()
    {
        Section text{kTextBase};
        Section data{kDataBase};
        Section *cur = &text;
        size_t label_idx = 0;
        for (size_t i = 0; i < stmts_.size(); ++i) {
            Stmt &st = stmts_[i];
            // Bind labels that precede this statement.
            while (label_idx < labels_.size() &&
                   labels_[label_idx].stmt_index <= static_cast<int>(i)) {
                defineLabel(labels_[label_idx], cur->lc);
                ++label_idx;
            }
            st.addr = cur->lc;
            if (st.kind == StmtKind::Directive) {
                st.size = directiveSize(st, cur, &text, &data);
            } else {
                st.size = instrSize(st);
            }
            st.addr = cur->lc;  // .org/.align may have moved the counter
            cur->lc += st.size;
        }
        while (label_idx < labels_.size()) {
            defineLabel(labels_[label_idx], cur->lc);
            ++label_idx;
        }
    }

    struct Label
    {
        int line;
        std::string name;
        int stmt_index;
    };

    void
    defineLabel(const Label &lbl, Addr addr)
    {
        if (syms_.has(lbl.name))
            throw AsmError(lbl.line, "duplicate label '" + lbl.name + "'");
        syms_.define(lbl.name, addr);
    }

    i64
    evalNow(const Stmt &st, const std::string &text)
    {
        return ExprEval(text, syms_, st.line).eval();
    }

    /**
     * Apply location-counter effects of a directive and return emitted
     * size at the (possibly updated) counter.
     */
    u32
    directiveSize(const Stmt &st, Section *&cur, Section *text,
                  Section *data)
    {
        const std::string &d = st.mnemonic;
        if (d == ".text") {
            cur = text;
            return 0;
        }
        if (d == ".data") {
            cur = data;
            return 0;
        }
        if (d == ".globl" || d == ".global" || d == ".entry" ||
            d == ".section") {
            return 0;
        }
        if (d == ".equ" || d == ".set") {
            if (st.ops.size() != 2)
                throw AsmError(st.line, d + " needs name, value");
            syms_.define(st.ops[0], evalNow(st, st.ops[1]));
            return 0;
        }
        if (d == ".org") {
            if (st.ops.size() != 1)
                throw AsmError(st.line, ".org needs one operand");
            cur->lc = static_cast<Addr>(evalNow(st, st.ops[0]));
            return 0;
        }
        if (d == ".align") {
            if (st.ops.size() != 1)
                throw AsmError(st.line, ".align needs one operand");
            const i64 p = evalNow(st, st.ops[0]);
            if (p < 0 || p > 16)
                throw AsmError(st.line, "bad .align power");
            cur->lc = static_cast<Addr>(
                alignUp(cur->lc, u64{1} << p));
            return 0;
        }
        if (d == ".space" || d == ".zero") {
            if (st.ops.size() != 1)
                throw AsmError(st.line, d + " needs one operand");
            return static_cast<u32>(evalNow(st, st.ops[0]));
        }
        if (d == ".word" || d == ".float")
            return static_cast<u32>(4 * st.ops.size());
        if (d == ".half")
            return static_cast<u32>(2 * st.ops.size());
        if (d == ".byte")
            return static_cast<u32>(st.ops.size());
        if (d == ".asciz") {
            if (st.ops.size() != 1)
                throw AsmError(st.line, ".asciz needs one string");
            return static_cast<u32>(parseString(st, st.ops[0]).size() + 1);
        }
        throw AsmError(st.line, "unknown directive '" + d + "'");
    }

    /** Instruction byte size, accounting for pseudo-op expansion. */
    u32
    instrSize(const Stmt &st)
    {
        const std::string &m = st.mnemonic;
        if (m == "la")
            return 8;
        if (m == "li") {
            if (st.ops.size() != 2)
                throw AsmError(st.line, "li needs rd, imm");
            const auto v =
                ExprEval(st.ops[1], syms_, st.line).tryEval();
            // Unresolvable (forward label) => conservatively 2 words;
            // pass 2 re-checks against the recorded size.
            if (!v)
                return 8;
            return (*v >= -2048 && *v <= 2047) ? 4 : 8;
        }
        return 4;
    }

    std::string
    parseString(const Stmt &st, const std::string &text)
    {
        const std::string t = trim(text);
        if (t.size() < 2 || t.front() != '"' || t.back() != '"')
            throw AsmError(st.line, "expected string literal");
        std::string out;
        for (size_t i = 1; i + 1 < t.size(); ++i) {
            char c = t[i];
            if (c == '\\' && i + 2 < t.size()) {
                ++i;
                switch (t[i]) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case '0': c = '\0'; break;
                  case '\\': c = '\\'; break;
                  case '"': c = '"'; break;
                  default:
                    throw AsmError(st.line, "bad escape in string");
                }
            }
            out += c;
        }
        return out;
    }

    // ---- pass 2: encoding --------------------------------------------

    void
    passTwo()
    {
        for (const Stmt &st : stmts_) {
            at_ = st.addr;
            if (st.kind == StmtKind::Directive)
                emitDirective(st);
            else
                emitInstr(st);
            if (at_ - st.addr != st.size)
                throw AsmError(st.line,
                               "internal: pass1/pass2 size mismatch");
        }
    }

    void
    emit32(u32 word)
    {
        prog_.image.write32(at_, word);
        noteEmit(at_, 4);
        at_ += 4;
    }

    void
    emitBytes(const void *src, u32 len)
    {
        prog_.image.writeBlock(at_, src, len);
        noteEmit(at_, len);
        at_ += len;
    }

    void
    noteEmit(Addr addr, u32 len)
    {
        emits_.push_back({addr, len});
    }

    void
    emitDirective(const Stmt &st)
    {
        const std::string &d = st.mnemonic;
        if (d == ".word") {
            for (const auto &op : st.ops) {
                const u32 v = static_cast<u32>(evalNow(st, op));
                emit32(v);
            }
        } else if (d == ".half") {
            for (const auto &op : st.ops) {
                const u16 v = static_cast<u16>(evalNow(st, op));
                emitBytes(&v, 2);
            }
        } else if (d == ".byte") {
            for (const auto &op : st.ops) {
                const u8 v = static_cast<u8>(evalNow(st, op));
                emitBytes(&v, 1);
            }
        } else if (d == ".float") {
            for (const auto &op : st.ops) {
                const float f = std::strtof(op.c_str(), nullptr);
                emitBytes(&f, 4);
            }
        } else if (d == ".space" || d == ".zero") {
            const u32 n = static_cast<u32>(evalNow(st, st.ops[0]));
            const std::vector<u8> zeros(n, 0);
            if (n)
                emitBytes(zeros.data(), n);
        } else if (d == ".asciz") {
            const std::string s = parseString(st, st.ops[0]);
            emitBytes(s.c_str(), static_cast<u32>(s.size() + 1));
        } else if (d == ".entry") {
            if (st.ops.size() != 1)
                throw AsmError(st.line, ".entry needs a symbol");
            explicit_entry_ = static_cast<Addr>(evalNow(st, st.ops[0]));
        }
        // .text/.data/.org/.align/.equ/.globl have no pass-2 effect.
    }

    // Operand helpers -------------------------------------------------

    u32
    intReg(const Stmt &st, const std::string &op)
    {
        const int r = parseIntReg(lower(trim(op)));
        if (r < 0)
            throw AsmError(st.line, "expected integer register, got '" +
                                        op + "'");
        return static_cast<u32>(r);
    }

    u32
    fpRegOf(const Stmt &st, const std::string &op)
    {
        const int r = parseFpReg(lower(trim(op)));
        if (r < 0)
            throw AsmError(st.line,
                           "expected FP register, got '" + op + "'");
        return static_cast<u32>(r);
    }

    /** Immediate with %hi/%lo support. */
    i64
    immOf(const Stmt &st, const std::string &op)
    {
        const std::string t = trim(op);
        if (t.rfind("%hi(", 0) == 0 && t.back() == ')')
            throw AsmError(st.line, "%hi() is only valid in lui/auipc");
        if (t.rfind("%lo(", 0) == 0 && t.back() == ')')
            return relLo(evalNow(st, t.substr(4, t.size() - 5)));
        return evalNow(st, t);
    }

    /** U-type immediate: accepts %hi(sym) or a raw 20-bit value. */
    i32
    uimmOf(const Stmt &st, const std::string &op)
    {
        const std::string t = trim(op);
        i64 v;
        if (t.rfind("%hi(", 0) == 0 && t.back() == ')')
            v = relHi(evalNow(st, t.substr(4, t.size() - 5)));
        else
            v = evalNow(st, t);
        if (v < 0 || v > 0xfffff)
            throw AsmError(st.line, "U-immediate out of range");
        return static_cast<i32>(v << 12);
    }

    /** Parse `offset(reg)` memory operands. */
    std::pair<i32, u32>
    memOperand(const Stmt &st, const std::string &op)
    {
        const std::string t = trim(op);
        const size_t open = t.rfind('(');
        if (open == std::string::npos || t.back() != ')')
            throw AsmError(st.line, "expected offset(reg), got '" + op +
                                        "'");
        // Keep %lo(...) intact: the '(' we want is the last one, and for
        // "%lo(sym)(a0)" rfind finds the second-to-last... find the
        // matching open paren of the trailing ')'.
        size_t depth = 1;
        size_t pos = t.size() - 1;
        while (pos > 0) {
            --pos;
            if (t[pos] == ')')
                ++depth;
            else if (t[pos] == '(' && --depth == 0)
                break;
        }
        if (depth != 0)
            throw AsmError(st.line, "unbalanced parens in '" + op + "'");
        const std::string off_text = trim(t.substr(0, pos));
        const std::string reg_text =
            t.substr(pos + 1, t.size() - pos - 2);
        const i64 off = off_text.empty() ? 0 : immOf(st, off_text);
        if (off < -2048 || off > 2047)
            throw AsmError(st.line, "memory offset out of range");
        return {static_cast<i32>(off), intReg(st, reg_text)};
    }

    i32
    branchOffset(const Stmt &st, const std::string &op, Addr pc,
                 i64 limit)
    {
        const i64 target = evalNow(st, op);
        const i64 off = target - static_cast<i64>(pc);
        if (off < -limit || off >= limit || (off & 1))
            throw AsmError(st.line, "branch/jump target out of range");
        return static_cast<i32>(off);
    }

    void
    needOps(const Stmt &st, size_t n)
    {
        if (st.ops.size() != n)
            throw AsmError(st.line, st.mnemonic + " expects " +
                                        std::to_string(n) + " operands");
    }

    // Instruction emission ---------------------------------------------

    void
    emitInstr(const Stmt &st)
    {
        const std::string &m = st.mnemonic;
        const Addr pc = st.addr;

        // ---- pseudo-instructions ----
        if (m == "nop") {
            emit32(iType(0x13, 0, 0, 0, 0));
            return;
        }
        if (m == "mv") {
            needOps(st, 2);
            emit32(iType(0x13, intReg(st, st.ops[0]), 0,
                         intReg(st, st.ops[1]), 0));
            return;
        }
        if (m == "not") {
            needOps(st, 2);
            emit32(iType(0x13, intReg(st, st.ops[0]), 4,
                         intReg(st, st.ops[1]), -1));
            return;
        }
        if (m == "neg") {
            needOps(st, 2);
            emit32(rType(0x33, intReg(st, st.ops[0]), 0, 0,
                         intReg(st, st.ops[1]), 0x20));
            return;
        }
        if (m == "seqz") {
            needOps(st, 2);
            emit32(iType(0x13, intReg(st, st.ops[0]), 3,
                         intReg(st, st.ops[1]), 1));
            return;
        }
        if (m == "snez") {
            needOps(st, 2);
            emit32(rType(0x33, intReg(st, st.ops[0]), 3, 0,
                         intReg(st, st.ops[1]), 0));
            return;
        }
        if (m == "sltz") {
            needOps(st, 2);
            emit32(rType(0x33, intReg(st, st.ops[0]), 2,
                         intReg(st, st.ops[1]), 0, 0));
            return;
        }
        if (m == "sgtz") {
            needOps(st, 2);
            emit32(rType(0x33, intReg(st, st.ops[0]), 2, 0,
                         intReg(st, st.ops[1]), 0));
            return;
        }
        if (m == "li") {
            needOps(st, 2);
            const u32 rd = intReg(st, st.ops[0]);
            const i64 v64 = evalNow(st, st.ops[1]);
            if (v64 < INT32_MIN || v64 > static_cast<i64>(UINT32_MAX))
                throw AsmError(st.line, "li immediate out of range");
            const i32 v = static_cast<i32>(v64);
            if (st.size == 4) {
                emit32(iType(0x13, rd, 0, 0, v));
            } else {
                const u32 hi = relHi(v);
                const i32 lo = relLo(v);
                emit32(uType(0x37, rd, static_cast<i32>(hi << 12)));
                emit32(iType(0x13, rd, 0, rd, lo));
            }
            return;
        }
        if (m == "la") {
            needOps(st, 2);
            const u32 rd = intReg(st, st.ops[0]);
            const i64 v = evalNow(st, st.ops[1]);
            emit32(uType(0x37, rd, static_cast<i32>(relHi(v) << 12)));
            emit32(iType(0x13, rd, 0, rd, relLo(v)));
            return;
        }
        if (m == "j") {
            needOps(st, 1);
            emit32(jType(0x6f, 0,
                         branchOffset(st, st.ops[0], pc, 1 << 20)));
            return;
        }
        if (m == "jr") {
            needOps(st, 1);
            emit32(iType(0x67, 0, 0, intReg(st, st.ops[0]), 0));
            return;
        }
        if (m == "call") {
            needOps(st, 1);
            emit32(jType(0x6f, 1,
                         branchOffset(st, st.ops[0], pc, 1 << 20)));
            return;
        }
        if (m == "ret") {
            needOps(st, 0);
            emit32(iType(0x67, 0, 0, 1, 0));
            return;
        }
        if (m == "beqz" || m == "bnez" || m == "bgez" || m == "bltz") {
            needOps(st, 2);
            const u32 rs = intReg(st, st.ops[0]);
            const i32 off = branchOffset(st, st.ops[1], pc, 4096);
            u32 f3 = 0;
            u32 rs1 = rs;
            u32 rs2 = 0;
            if (m == "beqz") f3 = 0;
            else if (m == "bnez") f3 = 1;
            else if (m == "bgez") f3 = 5;
            else f3 = 4;  // bltz
            emit32(bType(0x63, f3, rs1, rs2, off));
            return;
        }
        if (m == "blez" || m == "bgtz") {
            needOps(st, 2);
            const u32 rs = intReg(st, st.ops[0]);
            const i32 off = branchOffset(st, st.ops[1], pc, 4096);
            // blez rs == bge x0, rs ; bgtz rs == blt x0, rs
            emit32(bType(0x63, m == "blez" ? 5u : 4u, 0, rs, off));
            return;
        }
        if (auto it = kBranchAliases.find(m); it != kBranchAliases.end()) {
            needOps(st, 3);
            const u32 a = intReg(st, st.ops[0]);
            const u32 b = intReg(st, st.ops[1]);
            const i32 off = branchOffset(st, st.ops[2], pc, 4096);
            emit32(bType(0x63, kBranches.at(it->second.second), b, a,
                         off));
            return;
        }
        if (m == "fmv.s" || m == "fabs.s" || m == "fneg.s") {
            needOps(st, 2);
            const u32 rd = fpRegOf(st, st.ops[0]);
            const u32 rs = fpRegOf(st, st.ops[1]);
            u32 f3 = 0;
            if (m == "fabs.s") f3 = 2;
            else if (m == "fneg.s") f3 = 1;
            emit32(rType(0x53, rd, f3, rs, rs, 0x10));
            return;
        }

        // ---- real instructions ----
        if (auto it = kRType.find(m); it != kRType.end()) {
            needOps(st, 3);
            emit32(rType(0x33, intReg(st, st.ops[0]), it->second.f3,
                         intReg(st, st.ops[1]), intReg(st, st.ops[2]),
                         it->second.f7));
            return;
        }
        if (auto it = kIAlu.find(m); it != kIAlu.end()) {
            needOps(st, 3);
            const i64 imm = immOf(st, st.ops[2]);
            if (imm < -2048 || imm > 2047)
                throw AsmError(st.line, "immediate out of range");
            emit32(iType(0x13, intReg(st, st.ops[0]), it->second,
                         intReg(st, st.ops[1]), static_cast<i32>(imm)));
            return;
        }
        if (auto it = kShiftImm.find(m); it != kShiftImm.end()) {
            needOps(st, 3);
            const i64 sh = immOf(st, st.ops[2]);
            if (sh < 0 || sh > 31)
                throw AsmError(st.line, "shift amount out of range");
            emit32(rType(0x13, intReg(st, st.ops[0]), it->second.f3,
                         intReg(st, st.ops[1]), static_cast<u32>(sh),
                         it->second.f7));
            return;
        }
        if (auto it = kLoads.find(m); it != kLoads.end()) {
            needOps(st, 2);
            const auto [off, base] = memOperand(st, st.ops[1]);
            const u32 rd = it->first == "flw" ? fpRegOf(st, st.ops[0])
                                              : intReg(st, st.ops[0]);
            emit32(iType(it->second.opc, rd, it->second.f3, base, off));
            return;
        }
        if (auto it = kStores.find(m); it != kStores.end()) {
            needOps(st, 2);
            const auto [off, base] = memOperand(st, st.ops[1]);
            const u32 rs2 = it->first == "fsw" ? fpRegOf(st, st.ops[0])
                                               : intReg(st, st.ops[0]);
            emit32(sType(it->second.opc, it->second.f3, base, rs2, off));
            return;
        }
        if (auto it = kBranches.find(m); it != kBranches.end()) {
            needOps(st, 3);
            emit32(bType(0x63, it->second, intReg(st, st.ops[0]),
                         intReg(st, st.ops[1]),
                         branchOffset(st, st.ops[2], pc, 4096)));
            return;
        }
        if (m == "lui" || m == "auipc") {
            needOps(st, 2);
            emit32(uType(m == "lui" ? 0x37u : 0x17u,
                         intReg(st, st.ops[0]), uimmOf(st, st.ops[1])));
            return;
        }
        if (m == "jal") {
            // `jal label` (rd=ra) or `jal rd, label`
            if (st.ops.size() == 1) {
                emit32(jType(0x6f, 1,
                             branchOffset(st, st.ops[0], pc, 1 << 20)));
            } else {
                needOps(st, 2);
                emit32(jType(0x6f, intReg(st, st.ops[0]),
                             branchOffset(st, st.ops[1], pc, 1 << 20)));
            }
            return;
        }
        if (m == "jalr") {
            // `jalr rs`, `jalr rd, imm(rs)`, or `jalr rd, rs, imm`
            if (st.ops.size() == 1) {
                emit32(iType(0x67, 1, 0, intReg(st, st.ops[0]), 0));
            } else if (st.ops.size() == 2) {
                const auto [off, base] = memOperand(st, st.ops[1]);
                emit32(iType(0x67, intReg(st, st.ops[0]), 0, base, off));
            } else {
                needOps(st, 3);
                const i64 imm = immOf(st, st.ops[2]);
                emit32(iType(0x67, intReg(st, st.ops[0]), 0,
                             intReg(st, st.ops[1]),
                             static_cast<i32>(imm)));
            }
            return;
        }
        if (m == "fence") {
            emit32(0x0000000f);
            return;
        }
        if (m == "ecall") {
            emit32(0x00000073);
            return;
        }
        if (m == "ebreak") {
            emit32(0x00100073);
            return;
        }
        if (auto it = kFpRR.find(m); it != kFpRR.end()) {
            needOps(st, 3);
            emit32(rType(0x53, fpRegOf(st, st.ops[0]), it->second.f3,
                         fpRegOf(st, st.ops[1]), fpRegOf(st, st.ops[2]),
                         it->second.f7));
            return;
        }
        if (auto it = kFpCmp.find(m); it != kFpCmp.end()) {
            needOps(st, 3);
            emit32(rType(0x53, intReg(st, st.ops[0]), it->second,
                         fpRegOf(st, st.ops[1]), fpRegOf(st, st.ops[2]),
                         0x50));
            return;
        }
        if (m == "fsqrt.s") {
            needOps(st, 2);
            emit32(rType(0x53, fpRegOf(st, st.ops[0]), 7,
                         fpRegOf(st, st.ops[1]), 0, 0x2c));
            return;
        }
        if (m == "fcvt.w.s" || m == "fcvt.wu.s") {
            needOps(st, 2);
            emit32(rType(0x53, intReg(st, st.ops[0]), 1,
                         fpRegOf(st, st.ops[1]),
                         m == "fcvt.w.s" ? 0u : 1u, 0x60));
            return;
        }
        if (m == "fcvt.s.w" || m == "fcvt.s.wu") {
            needOps(st, 2);
            emit32(rType(0x53, fpRegOf(st, st.ops[0]), 7,
                         intReg(st, st.ops[1]),
                         m == "fcvt.s.w" ? 0u : 1u, 0x68));
            return;
        }
        if (m == "fmv.x.w") {
            needOps(st, 2);
            emit32(rType(0x53, intReg(st, st.ops[0]), 0,
                         fpRegOf(st, st.ops[1]), 0, 0x70));
            return;
        }
        if (m == "fclass.s") {
            needOps(st, 2);
            emit32(rType(0x53, intReg(st, st.ops[0]), 1,
                         fpRegOf(st, st.ops[1]), 0, 0x70));
            return;
        }
        if (m == "fmv.w.x") {
            needOps(st, 2);
            emit32(rType(0x53, fpRegOf(st, st.ops[0]), 0,
                         intReg(st, st.ops[1]), 0, 0x78));
            return;
        }
        if (auto it = kFma.find(m); it != kFma.end()) {
            needOps(st, 4);
            emit32(r4Type(it->second, fpRegOf(st, st.ops[0]), 0,
                          fpRegOf(st, st.ops[1]), fpRegOf(st, st.ops[2]),
                          0, fpRegOf(st, st.ops[3])));
            return;
        }
        if (m == "simt_s") {
            needOps(st, 4);
            const i64 interval = immOf(st, st.ops[3]);
            if (interval < 0 || interval > 127)
                throw AsmError(st.line, "simt_s interval out of range");
            emit32(simtS(intReg(st, st.ops[0]), intReg(st, st.ops[1]),
                         intReg(st, st.ops[2]),
                         static_cast<u32>(interval)));
            return;
        }
        if (m == "simt_e") {
            needOps(st, 3);
            const i64 target = evalNow(st, st.ops[2]);
            const i64 l_offset = static_cast<i64>(pc) - target;
            if (l_offset <= 0 || l_offset > 2047)
                throw AsmError(st.line,
                               "simt_e must follow its simt_s within "
                               "2047 bytes");
            emit32(simtE(intReg(st, st.ops[0]), intReg(st, st.ops[1]),
                         static_cast<u32>(l_offset)));
            return;
        }
        throw AsmError(st.line, "unknown mnemonic '" + m + "'");
    }

    // ---- finalize -----------------------------------------------------

    void
    finalize()
    {
        for (const auto &kv : syms_.all())
            prog_.symbols[kv.first] = static_cast<Addr>(kv.second);
        // Merge emitted ranges into chunks.
        std::sort(emits_.begin(), emits_.end(),
                  [](const ProgramChunk &a, const ProgramChunk &b) {
                      return a.base < b.base;
                  });
        for (const auto &e : emits_) {
            if (!prog_.chunks.empty()) {
                auto &last = prog_.chunks.back();
                if (last.base + last.size >= e.base) {
                    const u32 end =
                        std::max(last.base + last.size, e.base + e.size);
                    last.size = end - last.base;
                    continue;
                }
            }
            prog_.chunks.push_back(e);
        }
        if (prog_.hasSymbol("_start"))
            prog_.entry = prog_.symbol("_start");
        else if (explicit_entry_)
            prog_.entry = *explicit_entry_;
        else
            prog_.entry = kTextBase;
    }

    std::vector<Stmt> stmts_;
    std::vector<Label> labels_;
    SymbolTable syms_;
    Program prog_;
    std::vector<ProgramChunk> emits_;
    Addr at_ = 0;
    std::optional<Addr> explicit_entry_;
};

} // namespace

Program
assemble(const std::string &source)
{
    Assembler as;
    return as.run(source);
}

} // namespace diag::assembler
