/**
 * @file
 * Register-name parsing: architectural (x0/f0) and ABI (a0, t1, fs2…)
 * names for the assembler front-end.
 */
#ifndef DIAG_ASM_REGNAMES_HPP
#define DIAG_ASM_REGNAMES_HPP

#include <string>

namespace diag::assembler
{

/** Parse an integer register name; returns -1 if not one. */
int parseIntReg(const std::string &name);

/** Parse an FP register name (0..31 in the FP file); -1 if not one. */
int parseFpReg(const std::string &name);

} // namespace diag::assembler

#endif // DIAG_ASM_REGNAMES_HPP
