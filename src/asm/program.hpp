/**
 * @file
 * An assembled program image: code/data bytes, symbol table, and entry
 * point. Produced by the assembler, consumed by every execution engine.
 */
#ifndef DIAG_ASM_PROGRAM_HPP
#define DIAG_ASM_PROGRAM_HPP

#include <map>
#include <string>
#include <vector>

#include "common/sparse_mem.hpp"
#include "common/types.hpp"

namespace diag
{

/** A contiguous run of emitted bytes. */
struct ProgramChunk
{
    Addr base = 0;
    u32 size = 0;
};

/** Assembled program image. */
struct Program
{
    /** First instruction to execute. */
    Addr entry = 0;
    /** All emitted bytes (code and data). */
    SparseMemory image;
    /** Label name -> address. */
    std::map<std::string, Addr> symbols;
    /** Emitted regions, merged and sorted by base. */
    std::vector<ProgramChunk> chunks;

    /** Address of @p name; fatal() if the label was never defined. */
    Addr symbol(const std::string &name) const;

    /** True iff a label @p name exists. */
    bool hasSymbol(const std::string &name) const;

    /**
     * Symbolic description of @p addr for diagnostics: the closest
     * label at or below it ("buf", "buf+0x40"), or a bare hex
     * address when no label precedes it.
     */
    std::string nearestSymbol(Addr addr) const;

    /** Fetch the instruction word at @p addr. */
    u32 word(Addr addr) const { return image.read32(addr); }

    /** Copy every emitted chunk into @p mem (program loading). */
    void loadInto(SparseMemory &mem) const;

    /** Total bytes emitted across all chunks. */
    u32 totalBytes() const;

    /**
     * Content fingerprint (FNV-1a over the entry point, the chunk
     * layout, and every emitted byte). Two programs with equal
     * fingerprints load identical images; the processors use this to
     * notice when a reused instance is handed a different program.
     */
    u64 fingerprint() const;
};

} // namespace diag

#endif // DIAG_ASM_PROGRAM_HPP
