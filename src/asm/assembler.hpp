/**
 * @file
 * Two-pass RISC-V (RV32IMF + DiAG simt extensions) assembler.
 *
 * Supported syntax:
 *  - labels (`loop:`), `#`, `//`, and `;` comments
 *  - directives: .text .data .org .align .word .half .byte .float
 *    .space .asciz .equ .globl (ignored) .entry
 *  - all RV32IMF mnemonics plus simt_s/simt_e
 *  - common pseudo-instructions: nop mv not neg seqz snez sltz sgtz li
 *    la j jr jalr(1-op) call ret beqz bnez blez bgez bltz bgtz bgt ble
 *    bgtu bleu fmv.s fabs.s fneg.s
 *  - ABI and architectural register names
 *  - operand expressions over literals and labels with + and -, and
 *    %hi()/%lo() relocation operators
 */
#ifndef DIAG_ASM_ASSEMBLER_HPP
#define DIAG_ASM_ASSEMBLER_HPP

#include <stdexcept>
#include <string>

#include "asm/program.hpp"

namespace diag::assembler
{

/** Assembly failure, carrying the 1-based source line. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(int line, const std::string &msg)
        : std::runtime_error("line " + std::to_string(line) + ": " + msg),
          line_(line)
    {}

    int line() const { return line_; }

  private:
    int line_;
};

/** Default base address of the .text section. */
inline constexpr Addr kTextBase = 0x00001000;
/** Default base address of the .data section. */
inline constexpr Addr kDataBase = 0x00100000;

/**
 * Assemble @p source into a program image. The entry point is the
 * `_start` label if defined, else the `.entry <sym>` directive, else
 * the start of .text. Throws AsmError on any syntax or range error.
 */
Program assemble(const std::string &source);

} // namespace diag::assembler

#endif // DIAG_ASM_ASSEMBLER_HPP
