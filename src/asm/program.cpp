#include "asm/program.hpp"

#include "common/log.hpp"

namespace diag
{

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    fatal_if(it == symbols.end(), "undefined symbol '%s'", name.c_str());
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.find(name) != symbols.end();
}

std::string
Program::nearestSymbol(Addr addr) const
{
    const std::string *best = nullptr;
    Addr best_addr = 0;
    for (const auto &[name, at] : symbols) {
        if (at > addr)
            continue;
        if (!best || at > best_addr ||
            (at == best_addr && name < *best)) {
            best = &name;
            best_addr = at;
        }
    }
    if (!best)
        return detail::vformat("0x%08x", addr);
    if (addr == best_addr)
        return *best;
    return detail::vformat("%s+0x%x", best->c_str(),
                           addr - best_addr);
}

void
Program::loadInto(SparseMemory &mem) const
{
    for (const auto &chunk : chunks) {
        for (u32 off = 0; off < chunk.size; ++off)
            mem.write8(chunk.base + off, image.read8(chunk.base + off));
    }
}

u32
Program::totalBytes() const
{
    u32 total = 0;
    for (const auto &chunk : chunks)
        total += chunk.size;
    return total;
}

u64
Program::fingerprint() const
{
    // FNV-1a over the entry point, the chunk layout, and every image
    // byte: cheap next to simulating the program, and any difference a
    // simulation could observe changes at least one hashed byte.
    u64 h = 14695981039346656037ull;
    auto mix = [&h](u64 v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(entry);
    for (const ProgramChunk &ch : chunks) {
        mix(ch.base);
        mix(ch.size);
        for (u32 off = 0; off < ch.size; ++off) {
            h ^= image.read8(ch.base + off);
            h *= 1099511628211ull;
        }
    }
    return h;
}

} // namespace diag
