#include "asm/program.hpp"

#include "common/log.hpp"

namespace diag
{

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    fatal_if(it == symbols.end(), "undefined symbol '%s'", name.c_str());
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.find(name) != symbols.end();
}

void
Program::loadInto(SparseMemory &mem) const
{
    for (const auto &chunk : chunks) {
        for (u32 off = 0; off < chunk.size; ++off)
            mem.write8(chunk.base + off, image.read8(chunk.base + off));
    }
}

u32
Program::totalBytes() const
{
    u32 total = 0;
    for (const auto &chunk : chunks)
        total += chunk.size;
    return total;
}

} // namespace diag
