#include "asm/regnames.hpp"

#include <cstdlib>

namespace diag::assembler
{

namespace
{

/** Parse "<prefix><n>" with n in [0, limit); -1 on mismatch. */
int
numbered(const std::string &name, char prefix, int limit)
{
    if (name.size() < 2 || name[0] != prefix)
        return -1;
    int value = 0;
    for (size_t i = 1; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9')
            return -1;
        value = value * 10 + (name[i] - '0');
        if (value >= limit)
            return -1;
    }
    return value;
}

} // namespace

int
parseIntReg(const std::string &name)
{
    const int direct = numbered(name, 'x', 32);
    if (direct >= 0)
        return direct;
    if (name == "zero") return 0;
    if (name == "ra") return 1;
    if (name == "sp") return 2;
    if (name == "gp") return 3;
    if (name == "tp") return 4;
    if (name == "fp") return 8;
    int n = numbered(name, 't', 7);
    if (n >= 0)
        return n <= 2 ? 5 + n : 25 + n;  // t0-2 -> x5-7, t3-6 -> x28-31
    n = numbered(name, 's', 12);
    if (n >= 0)
        return n <= 1 ? 8 + n : 16 + n;  // s0-1 -> x8-9, s2-11 -> x18-27
    n = numbered(name, 'a', 8);
    if (n >= 0)
        return 10 + n;  // a0-7 -> x10-17
    return -1;
}

int
parseFpReg(const std::string &name)
{
    const int direct = numbered(name, 'f', 32);
    if (direct >= 0)
        return direct;
    if (name.size() >= 3 && name[0] == 'f') {
        const std::string rest = name.substr(1);
        int n = numbered(rest, 't', 12);
        if (n >= 0)
            return n <= 7 ? n : 20 + n;  // ft0-7 -> f0-7, ft8-11 -> f28-31
        n = numbered(rest, 's', 12);
        if (n >= 0)
            return n <= 1 ? 8 + n : 16 + n;
        n = numbered(rest, 'a', 8);
        if (n >= 0)
            return 10 + n;
    }
    return -1;
}

} // namespace diag::assembler
