/**
 * @file
 * Set-associative cache timing model with per-bank contention. The model
 * tracks tags (true hit/miss behaviour, LRU replacement, write-back
 * dirty state) but not data: data always comes from the functional
 * memory image, so timing and functionality cannot diverge.
 */
#ifndef DIAG_MEM_CACHE_HPP
#define DIAG_MEM_CACHE_HPP

#include <string>
#include <vector>

#include "common/calendar.hpp"
#include "common/stats.hpp"
#include "mem/params.hpp"
#include "trace/tracer.hpp"

namespace diag::mem
{

/** Outcome of a cache lookup. */
struct CacheLookup
{
    bool hit = false;
    Cycle grant = 0;  //!< when the bank accepted the access
    Cycle done = 0;   //!< when data is available (valid iff hit)
};

/** One cache level. */
class Cache
{
  public:
    Cache(std::string name, const CacheParams &params);

    /**
     * Probe the cache at @p now. On a hit, `done` is the data-ready
     * cycle. On a miss the caller must consult the next level starting
     * at `grant + hit_latency` (tag-check time) and then call fill().
     */
    CacheLookup access(Addr addr, bool is_write, Cycle now);

    /**
     * Install the line containing @p addr (miss handling complete at
     * @p now). Returns true if a dirty line was evicted (write-back
     * traffic for the next level).
     */
    bool fill(Addr addr, bool is_write, Cycle now);

    /** Invalidate everything (used between benchmark runs). */
    void reset();

    /**
     * Install the line containing @p addr without touching timing
     * state or statistics (benchmark cache warming).
     */
    void warmFill(Addr addr) { fillQuiet(addr); }

    /**
     * Flip bit @p bit of one way's stored tag (fault injection). The
     * way is picked as @p pick modulo the tag array size. Data always
     * comes from the functional image, so a corrupted tag perturbs
     * timing (spurious hits/misses), never values. Returns a one-line
     * description of what was hit.
     */
    std::string corruptWay(u64 pick, unsigned bit);

    const CacheParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Attach (or detach with nullptr) a tracer: bank-conflict events
     *  are emitted from access(); one null check when detached. */
    void setTracer(trace::Tracer *t) { tracer_ = t; }

  private:
    struct Way
    {
        u32 tag = 0;
        bool valid = false;
        bool dirty = false;
        u64 last_use = 0;
    };

    void fillQuiet(Addr addr);

    u32 setIndex(Addr addr) const;
    u32 tagOf(Addr addr) const;
    u32 bankOf(Addr addr) const;

    std::string name_;
    CacheParams params_;
    u32 num_sets_;
    std::vector<Way> ways_;            // num_sets * assoc
    std::vector<BusyCalendar> bank_busy_;  // per bank
    u64 use_counter_ = 0;
    StatGroup stats_;
    // Lazy-bound counter handles for the per-access hot path.
    StatCounter st_bank_conflict_cycles_{stats_, "bank_conflict_cycles"};
    StatCounter st_reads_{stats_, "reads"};
    StatCounter st_writes_{stats_, "writes"};
    StatCounter st_hits_{stats_, "hits"};
    StatCounter st_misses_{stats_, "misses"};
    StatCounter st_writebacks_{stats_, "writebacks"};
    StatCounter st_fills_{stats_, "fills"};
    trace::Tracer *tracer_ = nullptr;  //!< null = tracing off
};

} // namespace diag::mem

#endif // DIAG_MEM_CACHE_HPP
