#include "mem/hierarchy.hpp"

#include "common/bits.hpp"

namespace diag::mem
{

MemHierarchy::MemHierarchy(const MemParams &params, unsigned ports)
    : params_(params), dram_(params.dram)
{
    for (unsigned p = 0; p < ports; ++p) {
        l1i_.push_back(std::make_unique<Cache>(
            "l1i" + std::to_string(p), params.l1i));
        l1d_.push_back(std::make_unique<Cache>(
            "l1d" + std::to_string(p), params.l1d));
    }
    l2_ = std::make_unique<Cache>("l2", params.l2);
}

MemResult
MemHierarchy::descend(Cache &l1, Addr addr, bool is_write, Cycle now)
{
    MemResult res;
    const CacheLookup first = l1.access(addr, is_write, now);
    if (first.hit) {
        res.done = first.done;
        res.level = ServedBy::L1;
        return res;
    }
    // L1 miss: probe L2 after the L1 tag check.
    const Cycle l2_start = first.grant + l1.params().hit_latency;
    const CacheLookup second = l2_->access(addr, false, l2_start);
    Cycle data_ready;
    if (second.hit) {
        data_ready = second.done;
        res.level = ServedBy::L2;
    } else {
        const Cycle dram_start =
            second.grant + l2_->params().hit_latency;
        data_ready = dram_.access(dram_start);
        l2_->fill(addr, false, data_ready);
        res.level = ServedBy::Dram;
    }
    // Fill L1; evicted dirty lines consume an L2 write slot.
    if (l1.fill(addr, is_write, data_ready))
        l2_->access(alignDown(addr, l1.params().line_bytes), true,
                    data_ready);
    res.done = data_ready + 1;  // fill-to-use forwarding
    return res;
}

MemResult
MemHierarchy::fetchLine(unsigned port, Addr addr, Cycle now)
{
    return descend(*l1i_[port], addr, false, now);
}

MemResult
MemHierarchy::dataAccess(unsigned port, Addr addr, bool is_write,
                         Cycle now)
{
    return descend(*l1d_[port], addr, is_write, now);
}

void
MemHierarchy::reset()
{
    for (auto &cache : l1i_)
        cache->reset();
    for (auto &cache : l1d_)
        cache->reset();
    l2_->reset();
    dram_.reset();
}

void
MemHierarchy::mergeStats(StatGroup &out) const
{
    StatGroup l1i_total("l1i");
    StatGroup l1d_total("l1d");
    for (const auto &cache : l1i_)
        l1i_total.merge(cache->stats());
    for (const auto &cache : l1d_)
        l1d_total.merge(cache->stats());
    for (const auto &kv : l1i_total.all())
        out.set("l1i." + kv.first, kv.second);
    for (const auto &kv : l1d_total.all())
        out.set("l1d." + kv.first, kv.second);
    for (const auto &kv : l2_->stats().all())
        out.set("l2." + kv.first, kv.second);
    for (const auto &kv : dram_.stats().all())
        out.set("dram." + kv.first, kv.second);
}

} // namespace diag::mem
