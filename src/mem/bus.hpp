/**
 * @file
 * Occupancy model of a shared on-chip bus. DiAG uses one 512-bit bus per
 * processor for both I-cache line delivery and partial-register-file
 * transfers between non-adjacent clusters (paper §5.1.3); contention on
 * it is one source of the "other stalls" in §7.3.2.
 */
#ifndef DIAG_MEM_BUS_HPP
#define DIAG_MEM_BUS_HPP

#include <string>

#include "common/calendar.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace diag::mem
{

/** Single-requester-at-a-time bus with FCFS arbitration. */
class Bus
{
  public:
    explicit Bus(std::string name) : stats_(std::move(name)) {}

    /**
     * Request the bus at @p now for @p occupancy cycles. Returns the
     * grant cycle; the transfer completes at grant + occupancy.
     */
    Cycle
    request(Cycle now, Cycle occupancy)
    {
        const Cycle grant = calendar_.reserve(now, occupancy);
        st_transfers_.inc();
        st_busy_cycles_.inc(static_cast<double>(occupancy));
        if (grant > now)
            st_wait_cycles_.inc(static_cast<double>(grant - now));
        return grant;
    }

    /** True iff a request granted at @p now would have to wait. */
    bool busyAt(Cycle now) const { return calendar_.busyAt(now); }

    void reset() { calendar_.clear(); stats_.clear(); }

    StatGroup &stats() { return stats_; }

  private:
    BusyCalendar calendar_;
    StatGroup stats_;
    // Lazy-bound counter handles for the per-request hot path.
    StatCounter st_transfers_{stats_, "transfers"};
    StatCounter st_busy_cycles_{stats_, "busy_cycles"};
    StatCounter st_wait_cycles_{stats_, "wait_cycles"};
};

} // namespace diag::mem

#endif // DIAG_MEM_BUS_HPP
