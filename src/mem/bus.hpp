/**
 * @file
 * Occupancy model of a shared on-chip bus. DiAG uses one 512-bit bus per
 * processor for both I-cache line delivery and partial-register-file
 * transfers between non-adjacent clusters (paper §5.1.3); contention on
 * it is one source of the "other stalls" in §7.3.2.
 */
#ifndef DIAG_MEM_BUS_HPP
#define DIAG_MEM_BUS_HPP

#include <string>

#include "common/calendar.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace diag::mem
{

/** Single-requester-at-a-time bus with FCFS arbitration. */
class Bus
{
  public:
    explicit Bus(std::string name) : stats_(std::move(name)) {}

    /**
     * Request the bus at @p now for @p occupancy cycles. Returns the
     * grant cycle; the transfer completes at grant + occupancy.
     */
    Cycle
    request(Cycle now, Cycle occupancy)
    {
        const Cycle grant = calendar_.reserve(now, occupancy);
        stats_.inc("transfers");
        stats_.inc("busy_cycles", static_cast<double>(occupancy));
        if (grant > now)
            stats_.inc("wait_cycles", static_cast<double>(grant - now));
        return grant;
    }

    /** True iff a request granted at @p now would have to wait. */
    bool busyAt(Cycle now) const { return calendar_.busyAt(now); }

    void reset() { calendar_.clear(); stats_.clear(); }

    StatGroup &stats() { return stats_; }

  private:
    BusyCalendar calendar_;
    StatGroup stats_;
};

} // namespace diag::mem

#endif // DIAG_MEM_BUS_HPP
