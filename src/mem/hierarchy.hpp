/**
 * @file
 * Composed memory hierarchy: per-port L1I/L1D caches over a shared,
 * banked L2 and one DRAM channel. "Port" means a requester with private
 * L1s — a core in the OoO baseline, or the (single) cache interface of
 * a DiAG processor whose banked L1D is shared by all clusters.
 */
#ifndef DIAG_MEM_HIERARCHY_HPP
#define DIAG_MEM_HIERARCHY_HPP

#include <memory>
#include <vector>

#include "common/calendar.hpp"
#include "mem/cache.hpp"

namespace diag::mem
{

/** Which level served an access. */
enum class ServedBy : u8 { L1 = 1, L2 = 2, Dram = 3 };

/** Timing outcome of one memory access. */
struct MemResult
{
    Cycle done = 0;
    ServedBy level = ServedBy::L1;
};

/** DRAM channel with bandwidth occupancy. */
class MainMemory
{
  public:
    explicit MainMemory(const MainMemoryParams &params)
        : params_(params), stats_("dram")
    {}

    /** Line fetch starting at @p now; returns data-ready cycle. */
    Cycle
    access(Cycle now)
    {
        const Cycle grant =
            channel_.reserve(now, params_.line_occupancy);
        st_accesses_.inc();
        if (grant > now)
            st_wait_cycles_.inc(static_cast<double>(grant - now));
        return grant + params_.latency;
    }

    void reset() { channel_.clear(); stats_.clear(); }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    MainMemoryParams params_;
    BusyCalendar channel_;
    StatGroup stats_;
    // Lazy-bound counter handles for the per-access hot path.
    StatCounter st_accesses_{stats_, "accesses"};
    StatCounter st_wait_cycles_{stats_, "wait_cycles"};
};

/**
 * The full hierarchy. Data values always come from the functional
 * memory image owned by the execution engine; this class provides
 * timing and occupancy only.
 */
class MemHierarchy
{
  public:
    /** @p ports requesters, each with private L1I + L1D. */
    MemHierarchy(const MemParams &params, unsigned ports);

    /** Instruction-line fetch from port @p port. */
    MemResult fetchLine(unsigned port, Addr addr, Cycle now);

    /** Data access (read or write) from port @p port. */
    MemResult dataAccess(unsigned port, Addr addr, bool is_write,
                         Cycle now);

    /** Invalidate all levels and clear statistics. */
    void reset();

    /**
     * Pre-install the line containing @p addr into the shared L2
     * (steady-state cache warming before a timed benchmark run).
     */
    void warmLine(Addr addr) { l2_->warmFill(addr); }

    /**
     * Attach (or detach with nullptr) a tracer to the data-side L1s:
     * bank-conflict events become visible on the trace's memory
     * tracks. The instruction L1s and L2 stay untraced (their
     * contention already shows up as fetch-wait on the ring tracks).
     */
    void
    setTracer(trace::Tracer *t)
    {
        for (auto &c : l1d_)
            c->setTracer(t);
    }

    unsigned ports() const { return static_cast<unsigned>(l1i_.size()); }
    Cache &l1i(unsigned port) { return *l1i_[port]; }
    Cache &l1d(unsigned port) { return *l1d_[port]; }
    Cache &l2() { return *l2_; }
    MainMemory &dram() { return dram_; }

    /** Aggregate stats across all levels into @p out. */
    void mergeStats(StatGroup &out) const;

  private:
    MemResult descend(Cache &l1, Addr addr, bool is_write, Cycle now);

    MemParams params_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::unique_ptr<Cache> l2_;
    MainMemory dram_;
};

} // namespace diag::mem

#endif // DIAG_MEM_HIERARCHY_HPP
