/**
 * @file
 * Memory-system parameter structures. Defaults follow the paper's
 * Table 2 configurations (32-128 KB L1D, 32 KB L1I, 4 MB L2) with hit
 * latencies appropriate for the 2 GHz simulated clock.
 */
#ifndef DIAG_MEM_PARAMS_HPP
#define DIAG_MEM_PARAMS_HPP

#include "common/types.hpp"

namespace diag::mem
{

/** Parameters of one cache level. */
struct CacheParams
{
    u32 size_bytes = 32 * 1024;
    u32 assoc = 4;          //!< 1 = direct-mapped
    u32 line_bytes = 64;
    u32 banks = 1;          //!< independently accessible banks
    Cycle hit_latency = 4;  //!< cycles from bank grant to data
    Cycle bank_occupancy = 1;  //!< cycles a bank is held per access
};

/** Main-memory (DRAM) channel parameters. */
struct MainMemoryParams
{
    Cycle latency = 120;       //!< cycles from request to first data
    Cycle line_occupancy = 8;  //!< channel cycles consumed per line
};

/** Full hierarchy: per-port L1s, a shared L2, and DRAM. */
struct MemParams
{
    CacheParams l1i{32 * 1024, 1, 64, 1, 2, 1};   // direct-mapped L1I
    CacheParams l1d{64 * 1024, 4, 64, 4, 4, 1};
    CacheParams l2{4 * 1024 * 1024, 8, 64, 8, 20, 2};
    MainMemoryParams dram;
};

} // namespace diag::mem

#endif // DIAG_MEM_PARAMS_HPP
