#include "mem/cache.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace diag::mem
{

Cache::Cache(std::string name, const CacheParams &params)
    : name_(std::move(name)), params_(params), stats_(name_)
{
    fatal_if(!isPow2(params_.line_bytes), "%s: line size not power of 2",
             name_.c_str());
    fatal_if(params_.assoc == 0, "%s: zero associativity", name_.c_str());
    num_sets_ = params_.size_bytes / (params_.line_bytes * params_.assoc);
    fatal_if(num_sets_ == 0 || !isPow2(num_sets_),
             "%s: set count %u must be a nonzero power of 2",
             name_.c_str(), num_sets_);
    fatal_if(!isPow2(params_.banks), "%s: bank count not power of 2",
             name_.c_str());
    ways_.resize(static_cast<size_t>(num_sets_) * params_.assoc);
    bank_busy_.assign(params_.banks, BusyCalendar{});
}

u32
Cache::setIndex(Addr addr) const
{
    return (addr / params_.line_bytes) & (num_sets_ - 1);
}

u32
Cache::tagOf(Addr addr) const
{
    return addr / params_.line_bytes / num_sets_;
}

u32
Cache::bankOf(Addr addr) const
{
    // Word-interleaved banking (8-byte grain): accesses to different
    // words of the same line proceed in parallel, as in real L1s.
    return (addr / 8) & (params_.banks - 1);
}

CacheLookup
Cache::access(Addr addr, bool is_write, Cycle now)
{
    CacheLookup res;
    const u32 bank = bankOf(addr);
    res.grant = bank_busy_[bank].reserve(now, params_.bank_occupancy);
    if (res.grant > now) {
        st_bank_conflict_cycles_.inc(
            static_cast<double>(res.grant - now));
        if (tracer_)
            tracer_->bankConflict(static_cast<u16>(bank), addr, now,
                                  res.grant - now);
    }
    if (is_write)
        st_writes_.inc();
    else
        st_reads_.inc();

    const u32 set = setIndex(addr);
    const u32 tag = tagOf(addr);
    Way *base = &ways_[static_cast<size_t>(set) * params_.assoc];
    for (u32 w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.last_use = ++use_counter_;
            if (is_write)
                way.dirty = true;
            res.hit = true;
            res.done = res.grant + params_.hit_latency;
            st_hits_.inc();
            return res;
        }
    }
    st_misses_.inc();
    return res;
}

void
Cache::fillQuiet(Addr addr)
{
    const u32 set = setIndex(addr);
    const u32 tag = tagOf(addr);
    Way *base = &ways_[static_cast<size_t>(set) * params_.assoc];
    Way *victim = base;
    for (u32 w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag)
            return;  // already resident
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.last_use < victim->last_use)
            victim = &way;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = false;
    victim->last_use = ++use_counter_;
}

bool
Cache::fill(Addr addr, bool is_write, Cycle)
{
    const u32 set = setIndex(addr);
    const u32 tag = tagOf(addr);
    Way *base = &ways_[static_cast<size_t>(set) * params_.assoc];
    Way *victim = base;
    for (u32 w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.last_use < victim->last_use)
            victim = &way;
    }
    const bool writeback = victim->valid && victim->dirty;
    if (writeback)
        st_writebacks_.inc();
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->last_use = ++use_counter_;
    st_fills_.inc();
    return writeback;
}

std::string
Cache::corruptWay(u64 pick, unsigned bit)
{
    const size_t idx = static_cast<size_t>(pick % ways_.size());
    Way &way = ways_[idx];
    way.tag ^= 1u << (bit % 32);
    return detail::vformat("%s way %zu tag bit %u flipped%s",
                           name_.c_str(), idx, bit % 32,
                           way.valid ? "" : " (way was invalid)");
}

void
Cache::reset()
{
    for (Way &way : ways_)
        way = Way{};
    for (BusyCalendar &bank : bank_busy_)
        bank.clear();
    use_counter_ = 0;
    stats_.clear();
}

} // namespace diag::mem
