/**
 * @file
 * Workload suite registry.
 */
#include "workloads/workload.hpp"

#include <utility>

#include "common/log.hpp"

namespace diag::workloads
{

// Factories defined in rodinia_*.cpp / spec_*.cpp.
Workload workloadBackprop();
Workload workloadBfs();
Workload workloadHeartwall();
Workload workloadHotspot();
Workload workloadKmeans();
Workload workloadLavamd();
Workload workloadLud();
Workload workloadNn();
Workload workloadNw();
Workload workloadParticlefilter();
Workload workloadPathfinder();
Workload workloadSrad();
Workload workloadMcf();
Workload workloadLbm();
Workload workloadX264();
Workload workloadDeepsjeng();
Workload workloadLeela();
Workload workloadNab();
Workload workloadXz();
Workload workloadImagick();

std::vector<Workload>
rodiniaSuite()
{
    std::vector<Workload> suite;
    suite.push_back(workloadBackprop());
    suite.push_back(workloadBfs());
    suite.push_back(workloadHeartwall());
    suite.push_back(workloadHotspot());
    suite.push_back(workloadKmeans());
    suite.push_back(workloadLavamd());
    suite.push_back(workloadLud());
    suite.push_back(workloadNn());
    suite.push_back(workloadNw());
    suite.push_back(workloadParticlefilter());
    suite.push_back(workloadPathfinder());
    suite.push_back(workloadSrad());
    return suite;
}

std::vector<Workload>
specSuite()
{
    std::vector<Workload> suite;
    suite.push_back(workloadMcf());
    suite.push_back(workloadLbm());
    suite.push_back(workloadX264());
    suite.push_back(workloadDeepsjeng());
    suite.push_back(workloadLeela());
    suite.push_back(workloadNab());
    suite.push_back(workloadXz());
    suite.push_back(workloadImagick());
    return suite;
}

bool
tryFindWorkload(const std::string &name, Workload *out)
{
    for (auto &w : rodiniaSuite())
        if (w.name == name) {
            *out = std::move(w);
            return true;
        }
    for (auto &w : specSuite())
        if (w.name == name) {
            *out = std::move(w);
            return true;
        }
    return false;
}

Workload
findWorkload(const std::string &name)
{
    Workload w;
    fatal_if(!tryFindWorkload(name, &w), "unknown workload '%s'",
             name.c_str());
    return w;
}

} // namespace diag::workloads
