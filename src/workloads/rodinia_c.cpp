/**
 * @file
 * Rodinia-class workloads, part C: nw, particlefilter, pathfinder,
 * srad.
 */
#include "workloads/workload.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "workloads/common.hpp"

namespace diag::workloads
{

using detail::closeF32;
using detail::partitionBounds;
using detail::readF32;
using detail::writeF32;

namespace
{

// ---------------------------------------------------------------------
// nw: Needleman-Wunsch sequence alignment DP over independent tiles
// ---------------------------------------------------------------------

constexpr u32 kNwTiles = 48;
constexpr u32 kNwN = 16;              // sequence length per tile
constexpr u32 kNwStride = kNwN * 4;   // table row stride in bytes
constexpr Addr kNwSeq = 0x100000;     // per tile: ref then qry(+32)
constexpr Addr kNwTab = 0x110000;     // per-tile tables, 4KB apart
constexpr i32 kNwMatch = 5;
constexpr i32 kNwMismatch = -3;
constexpr i32 kNwGap = 2;

Workload
makeNw()
{
    Workload w;
    w.name = "nw";
    w.suite = "rodinia";
    w.data_ranges = {{kNwSeq, 0x10000}, {kNwTab, 0x40000}};
    w.description = "Needleman-Wunsch alignment DP (" +
                    std::to_string(kNwTiles) + " independent " +
                    std::to_string(kNwN) + "x" + std::to_string(kNwN) +
                    " tiles, branchy max3)";
    w.profile = Profile::Control;

    w.asm_serial = "_start:\n" + partitionBounds(kNwTiles) + R"(
tile_loop:
    slli t0, s2, 6
    li s4, )" + std::to_string(kNwSeq) + R"(
    add s4, s4, t0         # ref base (qry at +32)
    slli t0, s2, 12
    li s5, )" + std::to_string(kNwTab) + R"(
    add s5, s5, t0         # table base
    li s6, 1               # i
iloop:
    # ref[i-1]
    add t0, s4, s6
    lbu s9, -1(t0)
    li s7, 1               # j
jloop:
    # score: match/mismatch of ref[i-1] vs qry[j-1]
    add t0, s4, s7
    lbu t1, 31(t0)         # qry[j-1] at base+32+(j-1)
    li t2, )" + std::to_string(kNwMismatch) + R"(
    bne t1, s9, scored
    li t2, )" + std::to_string(kNwMatch) + R"(
scored:
    # addresses of t[i-1][j-1]
    addi t0, s6, -1
    li t3, )" + std::to_string(kNwStride) + R"(
    mul t0, t0, t3
    add t0, t0, s5
    slli t4, s7, 2
    add t0, t0, t4         # &t[i-1][j]
    lw t5, -4(t0)          # diag
    add t5, t5, t2         # m = diag + score
    lw t6, 0(t0)           # up
    addi t6, t6, -)" + std::to_string(kNwGap) + R"(
    blt t6, t5, no_up
    mv t5, t6
no_up:
    add t0, t0, t3         # &t[i][j]
    lw t6, -4(t0)          # left
    addi t6, t6, -)" + std::to_string(kNwGap) + R"(
    blt t6, t5, no_left
    mv t5, t6
no_left:
    sw t5, 0(t0)
    addi s7, s7, 1
    li t0, )" + std::to_string(kNwN) + R"(
    blt s7, t0, jloop
    addi s6, s6, 1
    blt s6, t0, iloop
    addi s2, s2, 1
    blt s2, s3, tile_loop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x9999);
        for (u32 t = 0; t < kNwTiles; ++t) {
            for (u32 i = 0; i < kNwN; ++i) {
                mem.write8(kNwSeq + 64 * t + i,
                           static_cast<u8>(rng.below(4)));
                mem.write8(kNwSeq + 64 * t + 32 + i,
                           static_cast<u8>(rng.below(4)));
            }
            // Table borders: t[0][j] = -gap*j, t[i][0] = -gap*i.
            const Addr tab = kNwTab + 0x1000 * t;
            for (u32 j = 0; j < kNwN; ++j)
                mem.write32(tab + 4 * j,
                            static_cast<u32>(-kNwGap *
                                             static_cast<i32>(j)));
            for (u32 i = 0; i < kNwN; ++i)
                mem.write32(tab + kNwStride * i,
                            static_cast<u32>(-kNwGap *
                                             static_cast<i32>(i)));
        }
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 t = 0; t < kNwTiles; ++t) {
            const Addr seq = kNwSeq + 64 * t;
            const Addr tab = kNwTab + 0x1000 * t;
            std::vector<i32> ref_tab(kNwN * kNwN);
            for (u32 j = 0; j < kNwN; ++j)
                ref_tab[j] = -kNwGap * static_cast<i32>(j);
            for (u32 i = 0; i < kNwN; ++i)
                ref_tab[i * kNwN] = -kNwGap * static_cast<i32>(i);
            for (u32 i = 1; i < kNwN; ++i) {
                for (u32 j = 1; j < kNwN; ++j) {
                    const i32 s =
                        mem.read8(seq + i - 1) ==
                                mem.read8(seq + 32 + j - 1)
                            ? kNwMatch
                            : kNwMismatch;
                    const i32 m = std::max(
                        {ref_tab[(i - 1) * kNwN + j - 1] + s,
                         ref_tab[(i - 1) * kNwN + j] - kNwGap,
                         ref_tab[i * kNwN + j - 1] - kNwGap});
                    ref_tab[i * kNwN + j] = m;
                }
            }
            for (u32 i = 0; i < kNwN; ++i)
                for (u32 j = 0; j < kNwN; ++j)
                    if (static_cast<i32>(mem.read32(
                            tab + kNwStride * i + 4 * j)) !=
                        ref_tab[i * kNwN + j])
                        return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// particlefilter: likelihood weight update + per-thread normalization
// ---------------------------------------------------------------------

constexpr u32 kPfN = 768;
constexpr Addr kPfX = 0x100000;    // particle positions (floats)
constexpr Addr kPfW = 0x104000;    // weights (output)
constexpr Addr kPfSum = 0x110000;  // per-thread weight sums
constexpr float kPfObs = 3.75f;

std::string
pfPrologue()
{
    return "_start:\n"
           "    li s4, " + std::to_string(kPfX) + "\n" +
           "    li s5, " + std::to_string(kPfW) + "\n" +
           "    li t1, 0x40700000\n"  // 3.75f observation
           "    fmv.w.x f14, t1\n"
           "    li t1, 0x3f800000\n"  // 1.0f
           "    fmv.w.x f15, t1\n" +
           partitionBounds(kPfN);
}

std::string
pfReduce()
{
    return R"(
    fmv.w.x fa2, x0
    mv s7, s2
sloop:
    slli t0, s7, 2
    add t0, t0, s5
    flw ft0, 0(t0)
    fadd.s fa2, fa2, ft0
    addi s7, s7, 1
    bne s7, s3, sloop
    li t0, )" + std::to_string(kPfSum) + R"(
    slli t1, a0, 2
    add t0, t0, t1
    fsw fa2, 0(t0)
    ebreak
)";
}

Workload
makeParticlefilter()
{
    Workload w;
    w.name = "particlefilter";
    w.suite = "rodinia";
    w.data_ranges = {{kPfX, 0x4000},
                     {kPfW, 0xc000},
                     {kPfSum, 0x10000}};
    w.description = "particle-filter likelihood weights (Cauchy "
                    "kernel) + per-thread weight sums, 768 particles";
    w.profile = Profile::Compute;

    w.asm_serial = pfPrologue() + R"(
    mv s7, s2
ploop:
    slli t0, s7, 2
    add t0, t0, s4
    flw ft0, 0(t0)
    fsub.s ft0, ft0, f14
    fmadd.s ft1, ft0, ft0, f15   # 1 + (x-obs)^2
    fdiv.s ft1, f15, ft1
    slli t0, s7, 2
    add t0, t0, s5
    fsw ft1, 0(t0)
    addi s7, s7, 1
    bne s7, s3, ploop
)" + pfReduce();

    w.asm_simt = pfPrologue() + R"(
    slli t4, s2, 2
    slli t6, s3, 2
    li t5, 4
head:
    simt_s t4, t5, t6, 1
    add t0, t4, s4
    flw ft0, 0(t0)
    fsub.s ft0, ft0, f14
    fmadd.s ft1, ft0, ft0, f15
    fdiv.s ft1, f15, ft1
    add t0, t4, s5
    fsw ft1, 0(t0)
    simt_e t4, t6, head
)" + pfReduce();

    w.init = [](SparseMemory &mem) {
        Rng rng(0x9f01);
        for (u32 p = 0; p < kPfN; ++p)
            writeF32(mem, kPfX + 4 * p, rng.uniform() * 8.0f);
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 p = 0; p < kPfN; ++p) {
            const float x = readF32(mem, kPfX + 4 * p);
            const float d = x - kPfObs;
            const float want = 1.0f / std::fmaf(d, d, 1.0f);
            if (!closeF32(readF32(mem, kPfW + 4 * p), want))
                return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// pathfinder: row-by-row grid DP with min3 (independent column tiles)
// ---------------------------------------------------------------------

constexpr u32 kPfTiles = 48;
constexpr u32 kPfCols = 24;   // real columns per tile
constexpr u32 kPfRows = 16;
constexpr u32 kPfStrideW = kPfCols + 2;  // halo columns on both sides
constexpr Addr kPfWall = 0x100000;  // per tile: rows x cols ints
constexpr Addr kPfBufA = 0x140000;  // per tile: stride words
constexpr Addr kPfBufB = 0x150000;
constexpr u32 kPfTileWall = kPfRows * kPfCols * 4;
constexpr u32 kPfTileBuf = kPfStrideW * 4;

Workload
makePathfinder()
{
    Workload w;
    w.name = "pathfinder";
    w.suite = "rodinia";
    w.data_ranges = {{kPfWall, 0x40000},
                     {kPfBufA, 0x10000},
                     {kPfBufB, 0x10000}};
    w.description = "grid dynamic programming: dst[j] = wall[r][j] + "
                    "min3(src[j-1..j+1]) over " +
                    std::to_string(kPfTiles) + " column tiles";
    w.profile = Profile::Mixed;

    const std::string cell = R"(
    lw t1, -4(t3)
    lw t2, 0(t3)
    lw t4, 4(t3)
    blt t1, t2, pmin1
    mv t1, t2
pmin1:
    blt t1, t4, pmin2
    mv t1, t4
pmin2:
    lw t2, 0(t5)           # wall value
    add t1, t1, t2
    sw t1, 0(t6)
)";

    const std::string tile_head =
        "tile_loop:\n"
        "    li t0, " + std::to_string(kPfTileWall) + "\n" +
        "    mul s9, s2, t0\n"
        "    li s4, " + std::to_string(kPfWall) + "\n" +
        "    add s4, s4, s9         # wall tile\n"
        "    li t0, " + std::to_string(kPfTileBuf) + "\n" +
        "    mul s9, s2, t0\n"
        "    li s5, " + std::to_string(kPfBufA) + "\n" +
        "    add s5, s5, s9         # src row buffer\n"
        "    li s6, " + std::to_string(kPfBufB) + "\n" +
        "    add s6, s6, s9         # dst row buffer\n"
        "    li s10, 0              # row\n";

    w.asm_serial = "_start:\n" + partitionBounds(kPfTiles) +
                   tile_head + R"(
row_loop:
    li t0, )" + std::to_string(kPfCols * 4) + R"(
    mul t5, s10, t0
    add t5, t5, s4         # wall row
    addi t3, s5, 4         # src (first real column)
    addi t6, s6, 4         # dst
    li s11, )" + std::to_string(kPfCols) + R"(
col_loop:
)" + cell + R"(
    addi t3, t3, 4
    addi t5, t5, 4
    addi t6, t6, 4
    addi s11, s11, -1
    bnez s11, col_loop
    mv t0, s5
    mv s5, s6
    mv s6, t0
    addi s10, s10, 1
    li t0, )" + std::to_string(kPfRows) + R"(
    blt s10, t0, row_loop
    addi s2, s2, 1
    blt s2, s3, tile_loop
    ebreak
)";

    // SIMT: the per-row column sweep is the pipelined region.
    w.asm_simt = "_start:\n" + partitionBounds(kPfTiles) +
                 tile_head + R"(
row_loop:
    li t0, )" + std::to_string(kPfCols * 4) + R"(
    mul s7, s10, t0
    add s7, s7, s4         # wall row base
    li s9, 0               # rc: column byte offset
    li s8, 4
    li s11, )" + std::to_string(kPfCols * 4) + R"(
head:
    simt_s s9, s8, s11, 1
    add t3, s5, s9
    addi t3, t3, 4
    add t5, s7, s9
    add t6, s6, s9
    addi t6, t6, 4
)" + cell + R"(
    simt_e s9, s11, head
    mv t0, s5
    mv s5, s6
    mv s6, t0
    addi s10, s10, 1
    li t0, )" + std::to_string(kPfRows) + R"(
    blt s10, t0, row_loop
    addi s2, s2, 1
    blt s2, s3, tile_loop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x9a7f);
        for (u32 t = 0; t < kPfTiles; ++t) {
            for (u32 i = 0; i < kPfRows * kPfCols; ++i)
                mem.write32(kPfWall + t * kPfTileWall + 4 * i,
                            static_cast<u32>(rng.below(10)));
            // Row buffers: halo columns hold a large sentinel.
            for (u32 j = 0; j < kPfStrideW; ++j) {
                const bool halo = j == 0 || j == kPfStrideW - 1;
                const u32 v = halo ? 0x00ffffffu : 0;
                mem.write32(kPfBufA + t * kPfTileBuf + 4 * j, v);
                mem.write32(kPfBufB + t * kPfTileBuf + 4 * j, v);
            }
        }
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 t = 0; t < kPfTiles; ++t) {
            std::vector<i32> src(kPfStrideW, 0);
            std::vector<i32> dst(kPfStrideW, 0);
            src[0] = src[kPfStrideW - 1] = 0x00ffffff;
            dst[0] = dst[kPfStrideW - 1] = 0x00ffffff;
            for (u32 r = 0; r < kPfRows; ++r) {
                for (u32 j = 0; j < kPfCols; ++j) {
                    const i32 m = std::min(
                        {src[j], src[j + 1], src[j + 2]});
                    dst[j + 1] =
                        m + static_cast<i32>(mem.read32(
                                kPfWall + t * kPfTileWall +
                                4 * (r * kPfCols + j)));
                }
                std::swap(src, dst);
            }
            // Final row lives in the buffer written last (src after
            // the final swap).
            const Addr base =
                (kPfRows % 2 ? kPfBufB : kPfBufA) + t * kPfTileBuf;
            for (u32 j = 0; j < kPfCols; ++j) {
                if (static_cast<i32>(mem.read32(base + 4 * (j + 1))) !=
                    src[j + 1])
                    return false;
            }
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// srad: speckle-reducing anisotropic diffusion (single local pass)
// ---------------------------------------------------------------------

constexpr u32 kSrW = 64;   // image width
constexpr u32 kSrH = 50;   // image height (48 interior rows)
constexpr Addr kSrIn = 0x100000;   // kSrH x 64 floats
constexpr Addr kSrOut = 0x108000;

Workload
makeSrad()
{
    Workload w;
    w.name = "srad";
    w.suite = "rodinia";
    w.data_ranges = {{kSrIn, 0x8000}, {kSrOut, 0x10000}};
    w.description = "speckle-reducing diffusion: per-pixel gradient, "
                    "diffusion coefficient, and update on a " +
                    std::to_string(kSrW) + "x" + std::to_string(kSrH) +
                    " image";
    w.profile = Profile::Compute;

    const std::string prologue =
        "_start:\n"
        "    li s4, " + std::to_string(kSrIn) + "\n" +
        "    li s5, " + std::to_string(kSrOut) + "\n" +
        "    li t1, 0x3f800000\n"   // 1.0f
        "    fmv.w.x f15, t1\n"
        "    li t1, 0x3e800000\n"   // 0.25f (lambda)
        "    fmv.w.x f14, t1\n"
        "    li t1, 0x3dcccccd\n"   // 0.1f (eps)
        "    fmv.w.x f13, t1\n" +
        partitionBounds(kSrH - 2);

    // Per-pixel body: expects t3 = &in[cell], t4 = &out[cell].
    const std::string cell = R"(
    flw ft0, 0(t3)          # J
    flw ft1, -256(t3)       # N
    flw ft2, 256(t3)        # S
    flw ft3, -4(t3)         # W
    flw ft4, 4(t3)          # E
    fsub.s ft1, ft1, ft0    # dN
    fsub.s ft2, ft2, ft0    # dS
    fsub.s ft3, ft3, ft0    # dW
    fsub.s ft4, ft4, ft0    # dE
    fmul.s ft5, ft1, ft1
    fmadd.s ft5, ft2, ft2, ft5
    fmadd.s ft5, ft3, ft3, ft5
    fmadd.s ft5, ft4, ft4, ft5   # G2
    fmadd.s ft6, ft0, ft0, f13   # J^2 + eps
    fdiv.s ft5, ft5, ft6         # q
    fadd.s ft5, ft5, f15
    fdiv.s ft5, f15, ft5         # c = 1 / (1 + q)
    fadd.s ft1, ft1, ft2
    fadd.s ft1, ft1, ft3
    fadd.s ft1, ft1, ft4         # div
    fmul.s ft1, ft1, ft5
    fmadd.s ft0, ft1, f14, ft0   # J + lambda*c*div
    fsw ft0, 0(t4)
)";

    w.asm_serial = prologue + R"(
    mv s7, s2
rloop:
    addi t0, s7, 1
    slli t0, t0, 8         # row * 64 * 4
    addi t0, t0, 4
    add t3, s4, t0
    add t4, s5, t0
    li t6, )" + std::to_string(kSrW - 2) + R"(
closs:
)" + cell + R"(
    addi t3, t3, 4
    addi t4, t4, 4
    addi t6, t6, -1
    bnez t6, closs
    addi s7, s7, 1
    bne s7, s3, rloop
    ebreak
)";

    // SIMT variant: each row's interior column sweep is a simt region.
    w.asm_simt = prologue + R"(
    mv s7, s2
rloop:
    addi t0, s7, 1
    slli t0, t0, 8         # row * 64 * 4
    addi t0, t0, 4
    add a5, s4, t0         # src row
    add a6, s5, t0         # dst row
    li a2, 0               # rc: column byte offset
    li a3, 4
    li a4, )" + std::to_string((kSrW - 2) * 4) + R"(
head:
    simt_s a2, a3, a4, 1
    add t3, a5, a2
    add t4, a6, a2
)" + cell + R"(
    simt_e a2, a4, head
    addi s7, s7, 1
    bne s7, s3, rloop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x5bad);
        for (u32 i = 0; i < kSrH * kSrW; ++i)
            writeF32(mem, kSrIn + 4 * i, rng.uniform() * 255.0f);
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 r = 1; r + 1 < kSrH; ++r) {
            for (u32 c = 1; c + 1 < kSrW; ++c) {
                const u32 i = r * kSrW + c;
                const float j0 = readF32(mem, kSrIn + 4 * i);
                const float dn =
                    readF32(mem, kSrIn + 4 * (i - kSrW)) - j0;
                const float ds =
                    readF32(mem, kSrIn + 4 * (i + kSrW)) - j0;
                const float dw = readF32(mem, kSrIn + 4 * (i - 1)) - j0;
                const float de = readF32(mem, kSrIn + 4 * (i + 1)) - j0;
                float g2 = dn * dn;
                g2 = std::fmaf(ds, ds, g2);
                g2 = std::fmaf(dw, dw, g2);
                g2 = std::fmaf(de, de, g2);
                const float q = g2 / std::fmaf(j0, j0, 0.1f);
                const float cdiff = 1.0f / (q + 1.0f);
                const float div = dn + ds + dw + de;
                const float want =
                    std::fmaf(div * cdiff, 0.25f, j0);
                if (!closeF32(readF32(mem, kSrOut + 4 * i), want))
                    return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace

Workload workloadNw() { return makeNw(); }
Workload workloadParticlefilter() { return makeParticlefilter(); }
Workload workloadPathfinder() { return makePathfinder(); }
Workload workloadSrad() { return makeSrad(); }

} // namespace diag::workloads
